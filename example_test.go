package graphhd_test

import (
	"fmt"

	"graphhd"
)

// Example demonstrates the smallest train-and-predict loop: two structural
// families (triangles-with-tails vs stars) classified from topology alone.
func Example() {
	var graphs []*graphhd.Graph
	var labels []int
	for n := 6; n <= 12; n++ {
		graphs = append(graphs, lollipop(n), star(n))
		labels = append(labels, 0, 1)
	}
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 2048 // plenty for a toy problem
	model, err := graphhd.Train(cfg, graphs, labels)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("lollipop:", model.Predict(lollipop(9)))
	fmt.Println("star:    ", model.Predict(star(9)))
	// Output:
	// lollipop: 0
	// star:     1
}

// ExampleModel_Learn shows online learning: the model ingests one labeled
// sample at a time with O(dimension) memory.
func ExampleModel_Learn() {
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 2048
	enc, _ := graphhd.NewEncoder(cfg)
	model, _ := graphhd.NewModel(enc, 2)
	for n := 5; n <= 10; n++ {
		model.Learn(lollipop(n), 0)
		model.Learn(star(n), 1)
	}
	fmt.Println(model.Predict(star(8)))
	// Output: 1
}

// ExamplePageRankRanks shows the vertex identifier GraphHD builds on: the
// hub of a star is the most central vertex (rank 0).
func ExamplePageRankRanks() {
	g := star(6)
	ranks := graphhd.PageRankRanks(g, graphhd.PageRankOptions{})
	fmt.Println("hub rank:", ranks[0])
	// Output: hub rank: 0
}

// lollipop is a triangle with a pendant path.
func lollipop(n int) *graphhd.Graph {
	b := graphhd.NewGraphBuilder(n)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 0)
	for v := 2; v+1 < n; v++ {
		b.MustAddEdge(v, v+1)
	}
	return b.Build()
}

func star(n int) *graphhd.Graph {
	b := graphhd.NewGraphBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v)
	}
	return b.Build()
}
