// Command table1 regenerates the paper's Table I: the statistics of the
// six benchmark datasets, printed side by side with the published values
// so the calibration of the synthetic substitutes is auditable.
//
// Usage:
//
//	table1                 # full-size datasets
//	table1 -count 200      # statistics from 200 graphs per dataset
package main

import (
	"flag"
	"fmt"
	"os"

	"graphhd"
	"graphhd/internal/experiments"
)

func main() {
	var (
		count    = flag.Int("count", 0, "graphs per dataset (0 = paper size)")
		seed     = flag.Uint64("seed", 1, "random seed")
		extended = flag.Bool("extended", false, "also print diameter/clustering/degeneracy/triangle statistics")
	)
	flag.Parse()

	rows, err := experiments.RunTable1(*seed, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	experiments.WriteTable1(os.Stdout, rows)

	if *extended {
		fmt.Printf("\n%-10s %7s %8s %10s %10s %9s %8s %7s %8s\n",
			"Dataset", "Graphs", "Classes", "AvgV", "AvgE", "AvgDiam", "AvgClus", "AvgCore", "AvgTri")
		for _, name := range graphhd.DatasetNames() {
			ds, err := graphhd.GenerateDataset(name, graphhd.DatasetOptions{Seed: *seed, GraphCount: *count})
			if err != nil {
				fmt.Fprintln(os.Stderr, "table1:", err)
				os.Exit(1)
			}
			fmt.Println(graphhd.ComputeExtendedDatasetStats(ds).ExtendedRow())
		}
	}
}
