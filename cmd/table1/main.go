// Command table1 regenerates the paper's Table I: the statistics of the
// six benchmark datasets, printed side by side with the published values
// so the calibration of the synthetic substitutes is auditable.
//
// With -pareto it additionally runs the accuracy–latency Pareto sweep —
// prefix-width, full-dimension, and calibrated-cascade classification on
// every dataset — and writes the machine-readable JSON artifact next to
// the table.
//
// Usage:
//
//	table1                 # full-size datasets
//	table1 -count 200      # statistics from 200 graphs per dataset
//	table1 -count 120 -pareto pareto.json -pareto-dim 4096
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphhd"
	"graphhd/internal/experiments"
)

func main() {
	var (
		count      = flag.Int("count", 0, "graphs per dataset (0 = paper size)")
		seed       = flag.Uint64("seed", 1, "random seed")
		extended   = flag.Bool("extended", false, "also print diameter/clustering/degeneracy/triangle statistics")
		pareto     = flag.String("pareto", "", "also run the d-vs-accuracy-vs-latency Pareto sweep and write its JSON artifact to this path")
		paretoDim  = flag.Int("pareto-dim", 0, "full model dimension for the Pareto sweep (0 = paper's 10000)")
		paretoDims = flag.String("pareto-dims", "", "comma-separated prefix widths for the sweep (default 1024,2048)")
	)
	flag.Parse()

	rows, err := experiments.RunTable1(*seed, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	experiments.WriteTable1(os.Stdout, rows)

	if *pareto != "" {
		var dims []int
		if *paretoDims != "" {
			for _, s := range strings.Split(*paretoDims, ",") {
				d, err := strconv.Atoi(strings.TrimSpace(s))
				if err != nil {
					fmt.Fprintf(os.Stderr, "table1: bad -pareto-dims entry %q: %v\n", s, err)
					os.Exit(2)
				}
				dims = append(dims, d)
			}
		}
		pts, err := experiments.RunPareto(experiments.ParetoOptions{
			Seed:       *seed,
			GraphCount: *count,
			FullDim:    *paretoDim,
			PrefixDims: dims,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		fmt.Println()
		experiments.WritePareto(os.Stdout, pts)
		f, err := os.Create(*pareto)
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		if err := experiments.WriteParetoJSON(f, pts); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "table1:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Pareto sweep artifact to %s (%d points)\n", *pareto, len(pts))
	}

	if *extended {
		fmt.Printf("\n%-10s %7s %8s %10s %10s %9s %8s %7s %8s\n",
			"Dataset", "Graphs", "Classes", "AvgV", "AvgE", "AvgDiam", "AvgClus", "AvgCore", "AvgTri")
		for _, name := range graphhd.DatasetNames() {
			ds, err := graphhd.GenerateDataset(name, graphhd.DatasetOptions{Seed: *seed, GraphCount: *count})
			if err != nil {
				fmt.Fprintln(os.Stderr, "table1:", err)
				os.Exit(1)
			}
			fmt.Println(graphhd.ComputeExtendedDatasetStats(ds).ExtendedRow())
		}
	}
}
