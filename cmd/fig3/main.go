// Command fig3 regenerates the paper's Figure 3: accuracy (left),
// training time per fold (middle) and inference time per graph (right)
// for GraphHD, the 1-WL and WL-OA kernel SVMs and the GIN-ε / GIN-ε-JK
// networks on the six benchmark datasets.
//
// The full experiment at paper-scale dataset sizes takes a long time on a
// laptop (the kernels are quadratic in dataset size); -quick runs a
// reduced protocol that preserves the comparison's shape.
//
// Usage:
//
//	fig3 -quick                               # reduced protocol, all cells
//	fig3 -datasets MUTAG,PTC_FM -methods GraphHD,1-WL
//	fig3 -count 200 -folds 10 -reps 1         # custom scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"graphhd/internal/eval"
	"graphhd/internal/experiments"
)

func main() {
	var (
		datasets = flag.String("datasets", "", "comma-separated dataset names (default: all six)")
		methods  = flag.String("methods", "", "comma-separated methods (default: all five)")
		count    = flag.Int("count", 0, "graphs per dataset (0 = paper size)")
		folds    = flag.Int("folds", 10, "cross-validation folds")
		reps     = flag.Int("reps", 3, "cross-validation repetitions")
		quick    = flag.Bool("quick", false, "reduced protocol: 300 graphs/dataset, 3 folds, 1 rep, smaller models")
		seed     = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := experiments.Fig3Options{
		GraphCount: *count,
		CV:         eval.CrossValidateOptions{Folds: *folds, Repetitions: *reps, Seed: *seed},
		Seed:       *seed,
		Progress:   os.Stderr,
	}
	if *datasets != "" {
		opts.Datasets = strings.Split(*datasets, ",")
	}
	if *methods != "" {
		opts.Methods = strings.Split(*methods, ",")
	}
	if *quick {
		opts.Quick = true
		if opts.GraphCount == 0 {
			opts.GraphCount = 300
		}
		opts.CV = eval.CrossValidateOptions{Folds: 3, Repetitions: 1, Seed: *seed}
	}

	cells, err := experiments.RunFig3(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig3:", err)
		os.Exit(1)
	}
	experiments.WriteFig3(os.Stdout, cells)
}
