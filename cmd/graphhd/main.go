// Command graphhd trains a GraphHD model on a TUDataset-format directory
// and reports cross-validated accuracy and timing, or classifies a second
// dataset with a model trained on the first.
//
// Usage:
//
//	graphhd -data ./data -name MUTAG                 # 10-fold CV report
//	graphhd -data ./data -name MUTAG -folds 5 -reps 1
//	graphhd -data ./data -name MUTAG -dim 4096 -pr-iters 5
//	graphhd -data ./data -name MUTAG -predict ./data2 -predict-name TEST
//	graphhd -data ./data -name MUTAG -save-packed model.ghdp   # packed deployment artifact
//	graphhd -data ./data -name MUTAG -load model.ghdp          # packed-path inference
//	graphhd -data ./data -name MUTAG -load model.ghdp -workers -1  # parallel batch inference
//	graphhd -data ./data -name MUTAG -cv-workers -1            # parallel CV folds
//
// The directory layout is <data>/<name>/<name>_*.txt as produced by
// cmd/datagen or an unzipped TUDataset archive.
//
// For online inference over HTTP — micro-batching, hot model reload and
// metrics — serve a saved artifact with cmd/graphhd-serve instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"graphhd"
	"graphhd/internal/eval"
	"graphhd/internal/parallel"
)

func main() {
	var (
		data        = flag.String("data", ".", "directory containing the dataset folder")
		name        = flag.String("name", "", "dataset name (required)")
		dim         = flag.Int("dim", 10000, "hypervector dimension")
		prIters     = flag.Int("pr-iters", 10, "PageRank iterations")
		folds       = flag.Int("folds", 10, "cross-validation folds")
		reps        = flag.Int("reps", 3, "cross-validation repetitions")
		seed        = flag.Uint64("seed", 1, "random seed")
		retrain     = flag.Int("retrain", 0, "retraining epochs after initial fit (0 = off)")
		useLabels   = flag.Bool("use-labels", false, "use vertex labels when present (extension)")
		predict     = flag.String("predict", "", "train on -data and classify this directory instead of CV")
		predictName = flag.String("predict-name", "", "dataset name under -predict (defaults to -name)")
		saveModel   = flag.String("save", "", "train on the full dataset and save the model to this path")
		savePacked  = flag.String("save-packed", "", "train on the full dataset and save the packed query predictor to this path")
		loadModel   = flag.String("load", "", "load a saved model or packed predictor and classify -data/-name with it")
		cvWorkers   = flag.Int("cv-workers", 1, "concurrent CV folds (-1 = all cores; timings are contended unless 1)")
		workers     = flag.Int("workers", 1, "-load classification workers (-1 = all cores; per-graph timing is contended unless 1)")
	)
	flag.Parse()
	if *name == "" {
		fmt.Fprintln(os.Stderr, "graphhd: -name is required")
		flag.Usage()
		os.Exit(2)
	}

	ds, err := graphhd.ReadTUDataset(*data, *name)
	if err != nil {
		fatal(err)
	}
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = *dim
	cfg.PageRankIterations = *prIters
	cfg.Seed = *seed
	cfg.UseVertexLabels = *useLabels

	st := graphhd.ComputeDatasetStats(ds)
	fmt.Printf("dataset %s: %d graphs, %d classes, avg |V|=%.2f, avg |E|=%.2f\n",
		st.Name, st.Graphs, st.Classes, st.AvgVertices, st.AvgEdges)

	if *loadModel != "" {
		// LoadPredictorFile accepts both the full-model and the packed
		// record, so inference always runs on the packed path.
		pred, err := graphhd.LoadPredictorFile(*loadModel)
		if err != nil {
			fatal(err)
		}
		t0 := time.Now()
		preds := pred.PredictAllWorkers(ds.Graphs, *workers)
		elapsed := time.Since(t0)
		correct := 0
		for i, p := range preds {
			if p == ds.Labels[i] {
				correct++
			}
		}
		fmt.Printf("loaded model accuracy on %s: %.4f (%d graphs)\n",
			*name, float64(correct)/float64(len(preds)), len(preds))
		fmt.Printf("batch inference (%d workers): %v total, %v per graph (scratch-reuse path, zero allocations per graph)\n",
			parallel.Workers(*workers, len(preds)), elapsed, elapsed/time.Duration(len(preds)))
		fmt.Println("inference: packed majority-voted class vectors (full-model records are snapshotted on load)")
		fmt.Printf("query memory: %d bytes packed (int32 accumulators would use %d bytes, %.1f× more)\n",
			pred.MemoryBytes(), pred.NumClasses()*pred.Encoder().Dimension()*4,
			float64(pred.NumClasses()*pred.Encoder().Dimension()*4)/float64(pred.MemoryBytes()))
		return
	}
	if *saveModel != "" || *savePacked != "" {
		model, err := graphhd.Train(cfg, ds.Graphs, ds.Labels)
		if err != nil {
			fatal(err)
		}
		if *retrain > 0 {
			updates, err := model.Retrain(ds.Graphs, ds.Labels, graphhd.RetrainOptions{Epochs: *retrain})
			if err != nil {
				fatal(err)
			}
			fmt.Print(retrainSummary(updates, *retrain))
		}
		if *saveModel != "" {
			if err := model.SaveFile(*saveModel); err != nil {
				fatal(err)
			}
			fmt.Printf("saved model to %s (%d bytes of accumulator state)\n", *saveModel, model.MemoryBytes())
		}
		if *savePacked != "" {
			pred := model.Snapshot()
			if err := pred.SaveFile(*savePacked); err != nil {
				fatal(err)
			}
			fmt.Printf("saved packed predictor to %s (%d bytes of class vectors, %.1f× smaller than accumulators)\n",
				*savePacked, pred.MemoryBytes(), float64(model.MemoryBytes())/float64(pred.MemoryBytes()))
		}
		return
	}

	if *predict != "" {
		runPredict(cfg, ds, *predict, *predictName, *name, *retrain)
		return
	}

	res, err := graphhd.CrossValidate("GraphHD", ds, func(fold int, s uint64) graphhd.Classifier {
		c := cfg
		c.Seed = s
		if *retrain > 0 {
			return &retrainingClassifier{cfg: c, epochs: *retrain}
		}
		return graphhd.NewGraphHDClassifier(c)
	}, graphhd.CVOptions{Folds: *folds, Repetitions: *reps, Seed: *seed, Workers: *cvWorkers})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("accuracy: %.4f ± %.4f (%d folds)\n", res.MeanAccuracy(), res.StdAccuracy(), len(res.Folds))
	fmt.Printf("training time per fold: %v\n", res.MeanTrainTime())
	fmt.Printf("inference time per graph: %v\n", res.MeanInferTimePerGraph())
}

// runPredict trains on the full training dataset and labels another one,
// classifying through the packed query snapshot.
func runPredict(cfg graphhd.Config, train *graphhd.Dataset, dir, name, fallback string, retrain int) {
	if name == "" {
		name = fallback
	}
	test, err := graphhd.ReadTUDataset(dir, name)
	if err != nil {
		fatal(err)
	}
	model, err := graphhd.Train(cfg, train.Graphs, train.Labels)
	if err != nil {
		fatal(err)
	}
	if retrain > 0 {
		updates, err := model.Retrain(train.Graphs, train.Labels, graphhd.RetrainOptions{Epochs: retrain})
		if err != nil {
			fatal(err)
		}
		fmt.Print(retrainSummary(updates, retrain))
	}
	preds := model.Snapshot().PredictAll(test.Graphs)
	correct := 0
	for i, p := range preds {
		fmt.Printf("graph %d: predicted class %s\n", i, train.ClassNames[p])
		if i < len(test.Labels) && p == test.Labels[i] {
			correct++
		}
	}
	if len(test.Labels) == len(preds) {
		fmt.Printf("accuracy vs provided labels: %.4f\n", float64(correct)/float64(len(preds)))
	}
}

// retrainSummary renders the per-epoch update counts Retrain returns.
// The slice's length is the number of epochs actually run — Retrain stops
// early after an error-free pass — so it, not the requested budget, bounds
// any per-epoch iteration.
func retrainSummary(updates []int, budget int) string {
	total := 0
	for _, n := range updates {
		total += n
	}
	s := fmt.Sprintf("retraining: %d corrective updates over %d epoch(s)", total, len(updates))
	if len(updates) < budget {
		s += fmt.Sprintf(" (early stop, budget %d)", budget)
	}
	return s + "\n"
}

// retrainingClassifier adapts retraining into the CV harness. Inference
// runs on the packed snapshot, the same query semantics as the
// non-retraining GraphHD adapter, so -retrain comparisons measure
// retraining alone.
type retrainingClassifier struct {
	cfg    graphhd.Config
	epochs int
	pred   *graphhd.Predictor
}

func (c *retrainingClassifier) Fit(gs []*graphhd.Graph, labels []int) error {
	m, err := graphhd.Train(c.cfg, gs, labels)
	if err != nil {
		return err
	}
	if _, err := m.Retrain(gs, labels, graphhd.RetrainOptions{Epochs: c.epochs}); err != nil {
		return err
	}
	c.pred = m.Snapshot()
	return nil
}

func (c *retrainingClassifier) PredictAll(gs []*graphhd.Graph) []int {
	return c.pred.PredictAll(gs)
}

var _ eval.Classifier = (*retrainingClassifier)(nil)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphhd:", err)
	os.Exit(1)
}
