// Command fig4 regenerates the paper's Figure 4: the training-time
// scaling profile of GraphHD vs GIN-ε vs WL-OA on synthetic Erdős–Rényi
// datasets (100 graphs, p = 0.05, vertex counts up to 980).
//
// Usage:
//
//	fig4                          # paper sweep {20..980}, all three methods
//	fig4 -quick                   # smaller models, same sweep
//	fig4 -sizes 20,80,320 -methods GraphHD
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"graphhd/internal/experiments"
)

func main() {
	var (
		sizes   = flag.String("sizes", "", "comma-separated vertex counts (default: 20,40,80,160,320,640,980)")
		methods = flag.String("methods", "", "comma-separated methods (default: GraphHD,GIN-e,WL-OA)")
		graphs  = flag.Int("graphs", 100, "graphs per dataset")
		quick   = flag.Bool("quick", false, "smaller models and grids")
		seed    = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	opts := experiments.Fig4Options{
		GraphsPerDataset: *graphs,
		Quick:            *quick,
		Seed:             *seed,
		Progress:         os.Stderr,
	}
	if *sizes != "" {
		for _, s := range strings.Split(*sizes, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintln(os.Stderr, "fig4: bad size:", err)
				os.Exit(2)
			}
			opts.Sizes = append(opts.Sizes, v)
		}
	}
	if *methods != "" {
		opts.Methods = strings.Split(*methods, ",")
	}

	cells, err := experiments.RunFig4(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig4:", err)
		os.Exit(1)
	}
	experiments.WriteFig4(os.Stdout, cells)
}
