package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunGolden pins the tool's stdin→stdout behavior against checked-in
// fixtures: <name>.txt is raw `go test -bench` output, <name>.golden the
// exact JSON the tool must emit. The kernel stamp is fixed to "portable"
// here so goldens don't vary by host CPU; regenerate one with
// `GRAPHHD_KERNEL=portable go run ./cmd/benchjson < testdata/<name>.txt`
// after a reviewed change.
func TestRunGolden(t *testing.T) {
	fixtures, err := filepath.Glob(filepath.Join("testdata", "*.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if len(fixtures) == 0 {
		t.Fatal("no fixtures found")
	}
	for _, fixture := range fixtures {
		name := strings.TrimSuffix(filepath.Base(fixture), ".txt")
		t.Run(name, func(t *testing.T) {
			in, err := os.ReadFile(fixture)
			if err != nil {
				t.Fatal(err)
			}
			want, err := os.ReadFile(filepath.Join("testdata", name+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			if err := run(bytes.NewReader(in), &out, "portable"); err != nil {
				t.Fatalf("run: %v", err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("output differs from %s.golden:\ngot:\n%s\nwant:\n%s", name, out.Bytes(), want)
			}
		})
	}
}

// TestRunErrors pins the failure modes that previously produced silently
// wrong artifacts: unattributed benchmark lines and malformed numerics
// must error instead of emitting zeroed or empty-package results.
func TestRunErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{
			name:    "bench line before pkg header",
			in:      "goos: linux\nBenchmarkOrphan-4   100   5 ns/op\n",
			wantErr: "before any pkg: header",
		},
		{
			name:    "malformed B/op",
			in:      "pkg: example\nBenchmarkX-4   100   5 ns/op   1.2.3 B/op   0 allocs/op\n",
			wantErr: "B/op",
		},
		{
			name:    "iteration count overflow",
			in:      "pkg: example\nBenchmarkX-4   99999999999999999999   5 ns/op\n",
			wantErr: "iterations",
		},
		{
			name:    "malformed ns/op",
			in:      "pkg: example\nBenchmarkX-4   100   5.5.5 ns/op\n",
			wantErr: "ns/op",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(strings.NewReader(tc.in), &out, "")
			if err == nil {
				t.Fatalf("expected error containing %q, got none; output:\n%s", tc.wantErr, out.Bytes())
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestRunEmptyInput keeps the empty-array contract: no results is valid
// output (an empty JSON array), not an error — CI treats a missing
// benchmark as a separate failure.
func TestRunEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("goos: linux\n"), &out, ""); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Fatalf("empty input produced %q, want []", got)
	}
}
