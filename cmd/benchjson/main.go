// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON array on stdout, one object per benchmark result:
//
//	{"package": "graphhd/internal/core", "name": "BenchmarkEncodeScratchPacked-4",
//	 "ns_per_op": 34357, "b_per_op": 0, "allocs_per_op": 0}
//
// b_per_op / allocs_per_op are -1 when the benchmark did not report
// allocations. The CI benchmark-smoke job pipes the Encode/Predict/
// ServePredict benchmarks through this tool into BENCH_<pr>.json so the
// perf trajectory of the hot paths is tracked as an artifact from every
// run.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)
	pkgLine   = regexp.MustCompile(`^pkg:\s+(\S+)$`)
	bPerOp    = regexp.MustCompile(`([\d.]+) B/op`)
	allocsOp  = regexp.MustCompile(`(\d+) allocs/op`)
)

func main() {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		r := Result{Package: pkg, Name: m[1], Iterations: iters, NsPerOp: ns, BPerOp: -1, AllocsPerOp: -1}
		rest := m[4]
		if bm := bPerOp.FindStringSubmatch(rest); bm != nil {
			b, _ := strconv.ParseFloat(bm[1], 64)
			r.BPerOp = int64(b)
		}
		if am := allocsOp.FindStringSubmatch(rest); am != nil {
			r.AllocsPerOp, _ = strconv.ParseInt(am[1], 10, 64)
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if results == nil {
		results = []Result{}
	}
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
