// Command benchjson converts `go test -bench` output on stdin into a
// machine-readable JSON array on stdout, one object per benchmark result:
//
//	{"package": "graphhd/internal/core", "name": "BenchmarkEncodeScratchPacked-4",
//	 "ns_per_op": 34357, "b_per_op": 0, "allocs_per_op": 0, "kernel": "avx512"}
//
// b_per_op / allocs_per_op are -1 when the benchmark did not report
// allocations. Malformed numeric fields and benchmark lines appearing
// before any `pkg:` header are reported as errors (exit status 1) rather
// than silently producing zeroed or unattributed results — CI consumes
// this output as an artifact, and a silently wrong artifact is worse
// than a failed job. The CI benchmark-smoke job pipes the Encode/Predict/
// ServePredict benchmarks through this tool into BENCH_<pr>.json so the
// perf trajectory of the hot paths is tracked from every run.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"

	"graphhd/internal/hdc"
)

// Result is one parsed benchmark line. Kernel records the SIMD kernel
// tier active in the process that emitted the benchmark output (numbers
// from different tiers are not comparable), so BENCH_*.json artifacts
// carry their own provenance.
type Result struct {
	Package     string  `json:"package"`
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BPerOp      int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Kernel      string  `json:"kernel,omitempty"`
	// Metrics carries any custom b.ReportMetric columns — ns/graph on
	// the batch benchmarks, stage1-hit-rate on the cascade benchmark —
	// keyed by their unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+([\d.]+) ns/op(.*)$`)
	pkgLine   = regexp.MustCompile(`^pkg:\s+(\S+)$`)
	bPerOp    = regexp.MustCompile(`([\d.]+) B/op`)
	allocsOp  = regexp.MustCompile(`(\d+) allocs/op`)
	metricCol = regexp.MustCompile(`([\d.]+) (\S+)`)
)

// run parses benchmark output from r and writes the JSON array to w.
// kernel, when non-empty, is stamped on every result; main passes the
// tier the benchmarks ran under (benchjson runs in the same pipeline, on
// the same machine, with the same GRAPHHD_KERNEL environment).
func run(r io.Reader, w io.Writer, kernel string) error {
	results := []Result{}
	pkg := ""
	lineNo := 0
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if m := pkgLine.FindStringSubmatch(line); m != nil {
			pkg = m[1]
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		if pkg == "" {
			return fmt.Errorf("line %d: benchmark %q before any pkg: header; results would be unattributed", lineNo, m[1])
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: iterations %q: %w", lineNo, m[2], err)
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return fmt.Errorf("line %d: ns/op %q: %w", lineNo, m[3], err)
		}
		res := Result{Package: pkg, Name: m[1], Iterations: iters, NsPerOp: ns, BPerOp: -1, AllocsPerOp: -1, Kernel: kernel}
		rest := m[4]
		if bm := bPerOp.FindStringSubmatch(rest); bm != nil {
			// B/op can legitimately be fractional (amortized bytes);
			// round to the nearest byte rather than truncating.
			b, err := strconv.ParseFloat(bm[1], 64)
			if err != nil {
				return fmt.Errorf("line %d: B/op %q: %w", lineNo, bm[1], err)
			}
			res.BPerOp = int64(math.Round(b))
		}
		if am := allocsOp.FindStringSubmatch(rest); am != nil {
			res.AllocsPerOp, err = strconv.ParseInt(am[1], 10, 64)
			if err != nil {
				return fmt.Errorf("line %d: allocs/op %q: %w", lineNo, am[1], err)
			}
		}
		// Everything else in the tail is a custom b.ReportMetric column.
		for _, mc := range metricCol.FindAllStringSubmatch(rest, -1) {
			unit := mc[2]
			if unit == "B/op" || unit == "allocs/op" {
				continue
			}
			v, err := strconv.ParseFloat(mc[1], 64)
			if err != nil {
				return fmt.Errorf("line %d: metric %s %q: %w", lineNo, unit, mc[1], err)
			}
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

func main() {
	if err := run(os.Stdin, os.Stdout, hdc.ActiveKernel().String()); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
