// Command inspect prints structural analysis of a TUDataset-format
// dataset — Table-I statistics, extended measures (diameter, clustering,
// degeneracy, triangles), per-class breakdowns and, optionally, the
// centrality profile of a single graph — or, with -model, the card of a
// saved model artifact; the inspection companion to cmd/graphhd.
//
// Usage:
//
//	inspect -data ./data -name MUTAG
//	inspect -data ./data -name MUTAG -graph 3          # one graph in depth
//	inspect -data ./data -name MUTAG -per-class
//	inspect -model model.ghdp                          # model artifact card
//	inspect -traces http://127.0.0.1:8080              # server flight recorder
//	inspect -models http://127.0.0.1:8080              # server registry table
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"time"

	"graphhd"
	"graphhd/internal/centrality"
	"graphhd/internal/core"
	"graphhd/internal/graph"
	"graphhd/internal/serve"
)

func main() {
	var (
		data      = flag.String("data", ".", "directory containing the dataset folder")
		name      = flag.String("name", "", "dataset name (required unless -model is given)")
		graphIdx  = flag.Int("graph", -1, "inspect a single graph by index")
		perClass  = flag.Bool("per-class", false, "break extended statistics down by class")
		modelPath = flag.String("model", "", "inspect a saved model artifact (GRAPHHD1/GRAPHHD2/GRAPHHD3) instead of a dataset")
		tracesURL = flag.String("traces", "", "dump the flight recorder of a running graphhd-serve (base URL, e.g. http://127.0.0.1:8080)")
		modelsURL = flag.String("models", "", "dump the model registry of a running graphhd-serve (base URL, e.g. http://127.0.0.1:8080)")
	)
	flag.Parse()
	if *tracesURL != "" {
		inspectTraces(*tracesURL)
		return
	}
	if *modelsURL != "" {
		inspectModels(*modelsURL)
		return
	}
	if *modelPath != "" {
		inspectModel(*modelPath)
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "inspect: -name is required")
		flag.Usage()
		os.Exit(2)
	}
	ds, err := graphhd.ReadTUDataset(*data, *name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}

	if *graphIdx >= 0 {
		inspectGraph(ds, *graphIdx)
		return
	}

	st := graph.ComputeExtendedStats(ds)
	fmt.Printf("dataset %s\n", st.Name)
	fmt.Printf("  graphs: %d   classes: %d\n", st.Graphs, st.Classes)
	fmt.Printf("  avg |V|: %.2f (max %d)   avg |E|: %.2f (max %d)\n",
		st.AvgVertices, st.MaxVertices, st.AvgEdges, st.MaxEdges)
	fmt.Printf("  avg density: %.4f   avg diameter: %.2f\n", st.AvgDensity, st.AvgDiameter)
	fmt.Printf("  avg clustering: %.3f   avg degeneracy: %.2f   avg triangles: %.1f\n",
		st.AvgClustering, st.AvgDegeneracy, st.AvgTriangles)
	fmt.Printf("  class sizes: %v\n", st.PerClass)

	if *perClass {
		fmt.Println()
		for c := 0; c < ds.NumClasses(); c++ {
			var idx []int
			for i, l := range ds.Labels {
				if l == c {
					idx = append(idx, i)
				}
			}
			sub := ds.Subset(idx)
			sub.Name = fmt.Sprintf("%s[class %s]", ds.Name, ds.ClassNames[c])
			cst := graph.ComputeExtendedStats(sub)
			fmt.Printf("%-22s |V| %7.2f  |E| %8.2f  diam %6.2f  clus %6.3f  core %5.2f  tri %7.1f\n",
				cst.Name, cst.AvgVertices, cst.AvgEdges, cst.AvgDiameter,
				cst.AvgClustering, cst.AvgDegeneracy, cst.AvgTriangles)
		}
	}
}

// inspectModel prints the card of a saved model artifact: dimension,
// classes, packed query footprint, encoder configuration, and — for
// GRAPHHD3 records — the cascade configuration.
func inspectModel(path string) {
	pred, err := core.LoadPredictorFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
	cfg := pred.Encoder().Config()
	fmt.Printf("model %s\n", path)
	fmt.Printf("  dimension: %d   classes: %d\n", pred.Dimension(), pred.NumClasses())
	fmt.Printf("  packed footprint: %d bytes (%d per class vector)\n",
		pred.MemoryBytes(), pred.MemoryBytes()/pred.NumClasses())
	fmt.Printf("  centrality: %s   pagerank iters: %d   damping: %.2f\n",
		cfg.Centrality, cfg.PageRankIterations, cfg.PageRankDamping)
	fmt.Printf("  seed: %#x   vertex labels: %v\n", cfg.Seed, cfg.UseVertexLabels)
	if c, ok := pred.Cascade(); ok {
		fmt.Printf("  cascade: stage-1 d=%d, escalation margin %d\n", c.DPrefix, c.Margin)
	} else {
		fmt.Printf("  cascade: none\n")
	}
}

// inspectTraces fetches a running server's flight recorder
// (GET /debug/traces) and prints the retained per-batch records as a
// table, newest first: where each batch's microseconds went
// (queue/dispatch/plan/encode/classify/escalate), its shape (graphs,
// coalesced tasks, plan dedup ratio) and its cascade outcome.
func inspectTraces(base string) {
	url := strings.TrimRight(base, "/") + "/debug/traces"
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "inspect: GET %s: %s\n", url, resp.Status)
		os.Exit(1)
	}
	var tr serve.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		fmt.Fprintf(os.Stderr, "inspect: decode %s: %v\n", url, err)
		os.Exit(1)
	}
	fmt.Printf("flight recorder at %s: %d of %d records retained\n",
		base, len(tr.Traces), tr.Depth)
	if len(tr.Traces) == 0 {
		return
	}
	us := func(ns int64) float64 { return float64(ns) / 1e3 }
	fmt.Printf("%8s %-15s %6s %5s %9s %9s %8s %8s %9s %9s %9s %6s %-14s %s\n",
		"seq", "time", "graphs", "tasks", "queue_us", "disp_us", "plan_us",
		"enc_us", "class_us", "esc_us", "total_us", "dedup", "cascade", "kern")
	for _, r := range tr.Traces {
		dedup := "-"
		if r.PlanPairs > 0 {
			dedup = fmt.Sprintf("%.2f", float64(r.PlanDistinct)/float64(r.PlanPairs))
		}
		casc := "off"
		if r.Cascade {
			casc = fmt.Sprintf("%d+%d esc", r.Stage1, r.Escalated)
		}
		fmt.Printf("%8d %-15s %6d %5d %9.1f %9.1f %8.1f %8.1f %9.1f %9.1f %9.1f %6s %-14s %s\n",
			r.Seq, r.Time.Format("15:04:05.000"), r.BatchSize, r.Tasks,
			us(r.QueueWaitNanos), us(r.DispatchNanos), us(r.PlanNanos),
			us(r.EncodeNanos), us(r.ClassifyNanos), us(r.EscalateNanos),
			us(r.TotalNanos), dedup, casc, r.Kernel)
	}
}

// inspectModels fetches a running server's registry table
// (GET /v1/models) and prints one row per model — name, version,
// dimension, classes, packed bytes, cascade config — with per-replica
// in-flight/accepted/processed counts, plus the tenant admission
// accounts.
func inspectModels(base string) {
	url := strings.TrimRight(base, "/") + "/v1/models"
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		fmt.Fprintln(os.Stderr, "inspect:", err)
		os.Exit(1)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "inspect: GET %s: %s\n", url, resp.Status)
		os.Exit(1)
	}
	var mr serve.ModelsResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		fmt.Fprintf(os.Stderr, "inspect: decode %s: %v\n", url, err)
		os.Exit(1)
	}
	reg := mr.Registry
	budget := "unbounded"
	if reg.MaxBytes > 0 {
		budget = fmt.Sprintf("%d", reg.MaxBytes)
	}
	fmt.Printf("registry at %s: %d models, %d bytes resident (budget %s), %d evicted, %d replicas/model, default %q\n",
		base, len(reg.Models), reg.TotalBytes, budget, reg.Evictions, reg.ReplicasPerModel, mr.DefaultModel)
	if len(reg.Models) > 0 {
		fmt.Printf("%-16s %4s %4s %7s %7s %9s %-14s %s\n",
			"model", "ver", "rev", "dim", "classes", "bytes", "cascade", "replicas (inflight/accepted/processed)")
		for _, m := range reg.Models {
			casc := "off"
			if m.CascadePrefix > 0 {
				casc = fmt.Sprintf("d=%d m=%d", m.CascadePrefix, m.CascadeMargin)
			}
			reps := make([]string, 0, len(m.Replicas))
			for _, r := range m.Replicas {
				reps = append(reps, fmt.Sprintf("#%d %d/%d/%d", r.Replica, r.InFlight, r.Accepted, r.Processed))
			}
			name := m.Name
			if m.ShadowActive {
				name += "*" // a candidate is shadow-mirroring live traffic
			}
			fmt.Printf("%-16s %4d %4d %7d %7d %9d %-14s %s\n",
				name, m.Version, m.Revision, m.Dimension, m.Classes, m.PackedBytes, casc,
				strings.Join(reps, "  "))
		}
	}
	if len(mr.Trainers) > 0 {
		fmt.Println("online trainers:")
		for _, tr := range mr.Trainers {
			shadow := ""
			if tr.ShadowActive {
				shadow = "   [shadow phase active]"
			}
			fmt.Printf("  %-16s buffer %d/%d   ingested %d (dropped %d)   trained %d (updates %d)   holdout %d%s\n",
				tr.Model, tr.BufferLen, tr.BufferCap, tr.Ingested, tr.Dropped, tr.Trained, tr.Updates, tr.Holdout, shadow)
			fmt.Printf("  %-16s revision %d (serving %d)   snapshots %d   promotions %d   rollbacks %d   shadow %d mirrored, %d/%d agree/disagree\n",
				"", tr.Revision, tr.ServingRevision, tr.Snapshots, tr.Promotions, tr.Rollbacks,
				tr.ShadowMirrored, tr.ShadowAgreed, tr.ShadowDisagreed)
			if tr.LastOutcome != "" {
				fmt.Printf("  %-16s last: %s (%s)\n", "", tr.LastOutcome, tr.LastOutcomeTime.Format("15:04:05"))
			}
		}
	}
	if len(mr.Tenants) > 0 {
		fmt.Println("tenants:")
		for _, t := range mr.Tenants {
			fmt.Printf("  %-16s in-flight %6d   quota-rejected %6d\n", t.Tenant, t.InFlight, t.Rejected)
		}
	}
}

// inspectGraph prints one graph's structural profile including centrality
// rankings under all supported metrics.
func inspectGraph(ds *graphhd.Dataset, idx int) {
	if idx >= ds.Len() {
		fmt.Fprintf(os.Stderr, "inspect: graph %d out of range [0,%d)\n", idx, ds.Len())
		os.Exit(1)
	}
	g := ds.Graphs[idx]
	fmt.Printf("graph %d of %s (class %s)\n", idx, ds.Name, ds.ClassNames[ds.Labels[idx]])
	fmt.Printf("  |V| = %d, |E| = %d, density %.4f\n", g.NumVertices(), g.NumEdges(), g.Density())
	nc, _ := g.ConnectedComponents()
	fmt.Printf("  components: %d   diameter: %d   triangles: %d\n", nc, g.Diameter(), g.Triangles())
	fmt.Printf("  max degree: %d   degeneracy: %d   avg clustering: %.3f\n",
		g.MaxDegree(), g.Degeneracy(), g.AverageClustering())
	fmt.Printf("  degree histogram: %v\n", g.DegreeHistogram())

	fmt.Println("  most central vertices (rank 0..4):")
	for _, m := range centrality.AllMetrics() {
		ranks := centrality.Ranks(g, m, centrality.Options{})
		top := make([]int, 0, 5)
		for want := 0; want < 5 && want < len(ranks); want++ {
			for v, r := range ranks {
				if r == want {
					top = append(top, v)
					break
				}
			}
		}
		fmt.Printf("    %-12s %v\n", m, top)
	}
}
