// Command graphhd-serve is the online inference server: it loads packed
// GraphHD model artifacts (GRAPHHD1, GRAPHHD2 or GRAPHHD3, see cmd/graphhd
// -save / -save-packed) into a multi-tenant model registry and serves
// classifications over HTTP through a router that fans requests across
// per-model engine replicas (internal/serve).
//
// Usage:
//
//	graphhd-serve -model model.ghdp                     # one model, listen on :8080
//	graphhd-serve -models models/                       # every artifact in a directory
//	graphhd-serve -models alpha=a.ghdp,beta=b.ghdp -default-model alpha
//	graphhd-serve -model model.ghdp -replicas 4 -tenant-quota 4096
//	graphhd-serve -models models/ -max-resident-bytes 67108864
//	graphhd-serve -model model.ghdp -workers 4 -max-batch 32 -max-delay 500us
//	graphhd-serve -model model.ghdp -class-names mutagenic,non-mutagenic
//	graphhd-serve -model model.ghdp -cascade-prefix 1024 -cascade-margin 12
//	graphhd-serve -model model.ghdp -debug-addr 127.0.0.1:6060 -log-json
//	graphhd-serve -model model.ghdp -feedback-model model.ghd   # online learning loop
//	graphhd-serve -model m.ghdp -feedback-model m.ghd -snapshot-every 64 -shadow-fraction 0.25
//
// Endpoints:
//
//	POST /v1/predict                       predict against the default model
//	POST /v1/predict/batch                 {"graphs": [...]}
//	POST /v1/models/{name}/predict         predict against a named model
//	POST /v1/models/{name}/predict/batch
//	POST /v1/feedback                      labeled feedback → online trainer
//	POST /v1/models/{name}/feedback
//	GET  /v1/model          default model card (config, build identity)
//	GET  /v1/models         registry table: models, replicas, tenants
//	GET  /healthz           liveness probe (+ resident-model summary)
//	GET  /metrics           Prometheus text metrics, {model,replica} labeled
//	GET  /debug/traces      flight recorder, merged across replicas
//	POST /admin/reload      rolling-reload every file-backed model
//	POST /admin/models      load/evict/reload one model by name
//
// Tenancy rides on the X-Tenant request header; -tenant-quota bounds each
// tenant's in-flight graphs, shedding excess with 429 before it can touch
// a replica queue.
//
// -feedback-model attaches the online learning loop: it loads a trainable
// full-model artifact (GRAPHHD1, cmd/graphhd -save) beside the packed
// serving predictor, drains POSTed feedback into it as perceptron-style
// updates, and — on the -snapshot-every / -snapshot-interval triggers —
// validates a candidate snapshot on held-out feedback, shadow-mirrors
// -shadow-fraction of live traffic through it, and promotes via the
// rolling swap or rolls back (reasons surface at GET /v1/models and in
// cmd/inspect -models). A single path attaches to the default model; use
// name=path,name=path to attach trainers to named models.
//
// With -debug-addr a second listener serves the diagnostics surface
// (/debug/pprof/*, /debug/vars, /debug/runtime, plus /debug/traces and
// /metrics). Profiling endpoints can stall the process and leak
// operational detail — bind -debug-addr to loopback or an operator-only
// network, never the public serving address (DESIGN.md §5).
//
// Logs are structured (log/slog, text by default, JSON with -log-json);
// per-request access logs carry the X-Request-Id echoed to clients and
// appear at -log-level debug.
//
// SIGHUP rolling-reloads every file-backed model across its replicas;
// in-flight requests never fail during a swap. SIGINT/SIGTERM shut down
// gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/serve"
)

// parseModelSpec resolves -models: either a directory (every *.ghdp/*.ghd
// file becomes a model named after its basename) or a comma-separated
// name=path list. Returns name→path pairs sorted by name.
func parseModelSpec(spec string) ([][2]string, error) {
	if fi, err := os.Stat(spec); err == nil && fi.IsDir() {
		entries, err := os.ReadDir(spec)
		if err != nil {
			return nil, err
		}
		var out [][2]string
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			ext := filepath.Ext(e.Name())
			if ext != ".ghdp" && ext != ".ghd" {
				continue
			}
			name := strings.TrimSuffix(e.Name(), ext)
			out = append(out, [2]string{name, filepath.Join(spec, e.Name())})
		}
		if len(out) == 0 {
			return nil, fmt.Errorf("no *.ghdp/*.ghd artifacts in %s", spec)
		}
		return out, nil
	}
	var out [][2]string
	for _, ent := range strings.Split(spec, ",") {
		name, path, ok := strings.Cut(strings.TrimSpace(ent), "=")
		if !ok || name == "" || path == "" {
			return nil, fmt.Errorf("bad -models entry %q (want name=path or a directory)", ent)
		}
		out = append(out, [2]string{name, path})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out, nil
}

// parseFeedbackSpec resolves -feedback-model: a bare path attaches to the
// default model, name=path entries to named models.
func parseFeedbackSpec(spec, defaultModel string) [][2]string {
	var out [][2]string
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		if name, path, ok := strings.Cut(ent, "="); ok && name != "" && path != "" {
			out = append(out, [2]string{name, path})
		} else {
			out = append(out, [2]string{defaultModel, ent})
		}
	}
	return out
}

func main() {
	var (
		model       = flag.String("model", "", "single model artifact served as \"default\" (this or -models is required)")
		models      = flag.String("models", "", "multi-model spec: a directory of *.ghdp/*.ghd artifacts, or name=path,name=path")
		defModel    = flag.String("default-model", "", "model the unnamed /v1/predict routes serve (default \"default\", else the first -models entry)")
		replicas    = flag.Int("replicas", 1, "engine replicas per model")
		maxResident = flag.Int64("max-resident-bytes", 0, "total packed bytes of resident models; loading past it evicts least-recently-used models (0 = unbounded)")
		tenantQuota = flag.Int("tenant-quota", 0, "per-tenant in-flight graph quota, shed with 429 before queueing (0 = unlimited)")
		addr        = flag.String("addr", ":8080", "HTTP listen address")
		debugAddr   = flag.String("debug-addr", "", "diagnostics listen address (pprof, expvar, runtime stats); keep it loopback/operator-only — empty disables")
		workers     = flag.Int("workers", 0, "inference workers per replica (0 = all cores)")
		maxBatch    = flag.Int("max-batch", 0, "micro-batch flush size (0 = default)")
		maxDelay    = flag.Duration("max-delay", 0, "micro-batch flush deadline (0 = default)")
		queueSize   = flag.Int("queue", 0, "admission queue bound in graphs per replica (0 = default)")
		traceDepth  = flag.Int("trace-depth", 0, "flight-recorder capacity per replica in per-batch trace records, rounded up to a power of two (0 = default 256)")
		classNames  = flag.String("class-names", "", "comma-separated class names echoed in default-model responses")
		maxVerts    = flag.Int("max-vertices", 0, "per-request vertex cap (0 = default; bounds server-side basis-vector memory)")
		maxEdges    = flag.Int("max-edges", 0, "per-request edge cap (0 = default)")
		cascPrefix  = flag.Int("cascade-prefix", 0, "stage-1 dimension for two-stage cascade classification, applied to every loaded model (0 = off, or as saved in a GRAPHHD3 artifact; must be in [64, model dimension))")
		cascMargin  = flag.Int("cascade-margin", 0, "cascade escalation margin: stage-1 decisions with top-two Hamming margin at most this re-decide at full dimension (calibrate with cmd/graphhd -calibrate-cascade)")
		logLevel    = flag.String("log-level", "info", "log level: debug, info, warn or error (debug enables per-request access logs)")
		logJSON     = flag.Bool("log-json", false, "emit logs as JSON instead of text")

		feedbackModel = flag.String("feedback-model", "", "trainable full-model artifact (GRAPHHD1, cmd/graphhd -save) enabling the online learning loop: a path (attaches to the default model) or name=path,name=path")
		feedbackBuf   = flag.Int("feedback-buffer", 0, "feedback buffer bound in samples; a full buffer sheds with 429 (0 = default 1024)")
		snapEvery     = flag.Int("snapshot-every", 0, "validate a candidate snapshot after this many trained feedback samples (0 = default 256)")
		snapInterval  = flag.Duration("snapshot-interval", 0, "additionally validate on this timer, catching trickle feedback (0 = off)")
		holdoutEvery  = flag.Int("holdout-every", 0, "divert every Nth feedback sample to the validation holdout instead of training (0 = default 8)")
		valTolerance  = flag.Float64("validation-tolerance", 0, "how far candidate holdout accuracy may trail the serving predictor before rollback (0 = default 0.02)")
		shadowFrac    = flag.Float64("shadow-fraction", 0, "fraction of live predict traffic mirrored to a candidate during its shadow phase (0 = default 0.1)")
		shadowMinN    = flag.Int("shadow-min-samples", 0, "mirrored graphs the shadow phase waits for before deciding (0 = default 64)")
		shadowWindow  = flag.Duration("shadow-window", 0, "shadow phase time bound (0 = default 3s)")
		shadowMinAgr  = flag.Float64("shadow-min-agreement", 0, "roll back when shadow agreement with the primary falls below this over the mirrored sample (0 = observability only)")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "graphhd-serve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var lh slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		lh = slog.NewJSONHandler(os.Stderr, hopts)
	}
	log := slog.New(lh)
	fatal := func(msg string, err error) {
		log.Error(msg, "err", err)
		os.Exit(1)
	}

	if *model == "" && *models == "" {
		fmt.Fprintln(os.Stderr, "graphhd-serve: -model or -models is required")
		flag.Usage()
		os.Exit(2)
	}
	if *cascPrefix == 0 && *cascMargin != 0 {
		fmt.Fprintln(os.Stderr, "graphhd-serve: -cascade-margin requires -cascade-prefix")
		flag.Usage()
		os.Exit(2)
	}

	// prepare applies operator cascade flags to every model the registry
	// loads from disk; it runs at startup and again on every SIGHUP /
	// POST /admin/reload|/admin/models, so flag config survives hot
	// swaps. Without flags, whatever cascade the artifact itself carries
	// (GRAPHHD3) stays as loaded.
	prepare := func(name string, p *core.Predictor) error {
		if *cascPrefix == 0 {
			return nil
		}
		return p.SetCascade(core.Cascade{DPrefix: *cascPrefix, Margin: *cascMargin})
	}

	registry := serve.NewRegistry(serve.RegistryOptions{
		Replicas: *replicas,
		Engine: serve.Options{
			Workers:    *workers,
			MaxBatch:   *maxBatch,
			MaxDelay:   *maxDelay,
			QueueSize:  *queueSize,
			TraceDepth: *traceDepth,
		},
		MaxResidentBytes: *maxResident,
		PrepareModel:     prepare,
	})
	defer registry.Close()

	var entries [][2]string
	if *model != "" {
		entries = append(entries, [2]string{"default", *model})
	}
	if *models != "" {
		more, err := parseModelSpec(*models)
		if err != nil {
			fatal("parse -models", err)
		}
		entries = append(entries, more...)
	}
	for _, ent := range entries {
		if err := registry.LoadFile(ent[0], ent[1]); err != nil {
			fatal("load model", err)
		}
	}
	defaultModel := *defModel
	if defaultModel == "" {
		defaultModel = entries[0][0]
	}

	router := serve.NewRouter(registry, serve.RouterOptions{
		DefaultModel: defaultModel,
		TenantQuota:  *tenantQuota,
	})

	// Attach online trainers. The trainable artifact is loaded beside the
	// packed serving predictor; the registry owns the trainer's lifecycle
	// from here (it stops when the model is evicted or the registry
	// closes).
	if *feedbackModel != "" {
		topts := serve.TrainerOptions{
			BufferSize:          *feedbackBuf,
			SnapshotEvery:       *snapEvery,
			SnapshotInterval:    *snapInterval,
			HoldoutEvery:        *holdoutEvery,
			ValidationTolerance: *valTolerance,
			ShadowFraction:      *shadowFrac,
			ShadowMinSamples:    *shadowMinN,
			ShadowWindow:        *shadowWindow,
			ShadowMinAgreement:  *shadowMinAgr,
		}
		for _, ent := range parseFeedbackSpec(*feedbackModel, defaultModel) {
			m, err := core.LoadModelFile(ent[1])
			if err != nil {
				fatal("load -feedback-model", err)
			}
			tr, err := registry.AttachTrainer(ent[0], m, topts)
			if err != nil {
				fatal("attach trainer", err)
			}
			// Log the trainer's resolved options, not the zero flags.
			eff := tr.Options()
			log.Info("online trainer attached", "model", ent[0], "artifact", ent[1],
				"buffer", eff.BufferSize, "snapshot_every", eff.SnapshotEvery,
				"shadow_fraction", eff.ShadowFraction)
		}
	}

	var names []string
	if *classNames != "" {
		names = strings.Split(*classNames, ",")
	}
	srv := &http.Server{
		Addr: *addr,
		Handler: serve.NewHandler(router, serve.HandlerOptions{
			ClassNames: names,
			Limits:     graph.CodecLimits{MaxVertices: *maxVerts, MaxEdges: *maxEdges},
			Logger:     log,
		}),
	}

	// The diagnostics surface gets its own listener and server so its
	// security posture (loopback-only bind) is independent of the
	// serving address.
	var dbgSrv *http.Server
	if *debugAddr != "" {
		dbgSrv = &http.Server{Addr: *debugAddr, Handler: serve.NewDebugHandler(router)}
		go func() {
			log.Info("debug listener up", "addr", *debugAddr)
			if err := dbgSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Error("debug listener", "err", err)
			}
		}()
	}

	// SIGHUP rolling-reloads every file-backed model; SIGINT/SIGTERM
	// drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			n, err := registry.ReloadAll()
			if err != nil {
				log.Warn("SIGHUP reload failed", "err", err, "reloaded", n)
				continue
			}
			log.Info("models reloaded", "models", n)
		}
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		<-stop
		log.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Warn("shutdown", "err", err)
		}
		if dbgSrv != nil {
			dbgSrv.Shutdown(ctx)
		}
		close(shutdownDone)
	}()

	ks := hdc.Kernels()
	bi := serve.Build()
	log.Info("starting",
		"build", bi.GoVersion, "revision", bi.VCSRevision,
		"kernel", ks.Active.String(), "cpu", ks.CPUFeatures,
	)
	st := registry.Status()
	log.Info("registry",
		"addr", *addr,
		"models", len(st.Models),
		"replicas_per_model", st.ReplicasPerModel,
		"resident_bytes", st.TotalBytes,
		"max_resident_bytes", *maxResident,
		"default_model", defaultModel,
		"tenant_quota", *tenantQuota,
	)
	for _, ms := range st.Models {
		args := []any{
			"model", ms.Name, "path", ms.Path,
			"dimension", ms.Dimension, "classes", ms.Classes,
			"packed_bytes", ms.PackedBytes,
		}
		if ms.CascadePrefix > 0 {
			args = append(args, "cascade_prefix", ms.CascadePrefix, "cascade_margin", ms.CascadeMargin)
		}
		log.Info("model loaded", args...)
	}
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal("listen", err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight responses before Close tears
	// the registry down.
	<-shutdownDone
}
