// Command graphhd-serve is the online inference server: it loads a packed
// GraphHD model artifact (GRAPHHD1, GRAPHHD2 or GRAPHHD3, see cmd/graphhd
// -save / -save-packed) and serves classifications over HTTP through the
// micro-batching engine in internal/serve.
//
// Usage:
//
//	graphhd-serve -model model.ghdp                     # listen on :8080
//	graphhd-serve -model model.ghdp -addr 127.0.0.1:9090
//	graphhd-serve -model model.ghdp -workers 4 -max-batch 32 -max-delay 500us
//	graphhd-serve -model model.ghdp -class-names mutagenic,non-mutagenic
//	graphhd-serve -model model.ghdp -cascade-prefix 1024 -cascade-margin 12
//	graphhd-serve -model model.ghdp -debug-addr 127.0.0.1:6060 -log-json
//
// Endpoints:
//
//	POST /v1/predict        {"graph": {"num_vertices": n, "edges": [[u,v],...]}}
//	POST /v1/predict/batch  {"graphs": [...]}
//	GET  /v1/model          model card (config, build identity)
//	GET  /healthz           liveness probe
//	GET  /metrics           Prometheus text metrics (incl. per-stage histograms)
//	GET  /debug/traces      flight recorder: last-N per-batch trace records
//	POST /admin/reload      hot-swap the model from -model
//
// With -debug-addr a second listener serves the diagnostics surface
// (/debug/pprof/*, /debug/vars, /debug/runtime, plus /debug/traces and
// /metrics). Profiling endpoints can stall the process and leak
// operational detail — bind -debug-addr to loopback or an operator-only
// network, never the public serving address (DESIGN.md §5).
//
// Logs are structured (log/slog, text by default, JSON with -log-json);
// per-request access logs carry the X-Request-Id echoed to clients and
// appear at -log-level debug.
//
// SIGHUP also hot-swaps the model; in-flight requests never fail during a
// swap. SIGINT/SIGTERM shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/serve"
)

func main() {
	var (
		model      = flag.String("model", "", "model artifact to serve (required; GRAPHHD1 or GRAPHHD2)")
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		debugAddr  = flag.String("debug-addr", "", "diagnostics listen address (pprof, expvar, runtime stats); keep it loopback/operator-only — empty disables")
		workers    = flag.Int("workers", 0, "inference workers (0 = all cores)")
		maxBatch   = flag.Int("max-batch", 0, "micro-batch flush size (0 = default)")
		maxDelay   = flag.Duration("max-delay", 0, "micro-batch flush deadline (0 = default)")
		queueSize  = flag.Int("queue", 0, "admission queue bound in graphs (0 = default)")
		traceDepth = flag.Int("trace-depth", 0, "flight-recorder capacity in per-batch trace records, rounded up to a power of two (0 = default 256)")
		classNames = flag.String("class-names", "", "comma-separated class names echoed in responses")
		maxVerts   = flag.Int("max-vertices", 0, "per-request vertex cap (0 = default; bounds server-side basis-vector memory)")
		maxEdges   = flag.Int("max-edges", 0, "per-request edge cap (0 = default)")
		cascPrefix = flag.Int("cascade-prefix", 0, "stage-1 dimension for two-stage cascade classification (0 = off, or as saved in a GRAPHHD3 artifact; must be in [64, model dimension))")
		cascMargin = flag.Int("cascade-margin", 0, "cascade escalation margin: stage-1 decisions with top-two Hamming margin at most this re-decide at full dimension (calibrate with cmd/graphhd -calibrate-cascade)")
		logLevel   = flag.String("log-level", "info", "log level: debug, info, warn or error (debug enables per-request access logs)")
		logJSON    = flag.Bool("log-json", false, "emit logs as JSON instead of text")
	)
	flag.Parse()

	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "graphhd-serve: bad -log-level %q: %v\n", *logLevel, err)
		os.Exit(2)
	}
	hopts := &slog.HandlerOptions{Level: level}
	var lh slog.Handler = slog.NewTextHandler(os.Stderr, hopts)
	if *logJSON {
		lh = slog.NewJSONHandler(os.Stderr, hopts)
	}
	log := slog.New(lh)
	fatal := func(msg string, err error) {
		log.Error(msg, "err", err)
		os.Exit(1)
	}

	if *model == "" {
		fmt.Fprintln(os.Stderr, "graphhd-serve: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	if *cascPrefix == 0 && *cascMargin != 0 {
		fmt.Fprintln(os.Stderr, "graphhd-serve: -cascade-margin requires -cascade-prefix")
		flag.Usage()
		os.Exit(2)
	}

	// prepare applies operator cascade flags to a freshly loaded model; it
	// runs at startup and again on every SIGHUP / POST /admin/reload via
	// the engine's PrepareModel hook, so flag config survives hot swaps.
	// Without flags, whatever cascade the artifact itself carries
	// (GRAPHHD3) stays as loaded.
	prepare := func(p *core.Predictor) error {
		if *cascPrefix == 0 {
			return nil
		}
		return p.SetCascade(core.Cascade{DPrefix: *cascPrefix, Margin: *cascMargin})
	}

	pred, err := core.LoadPredictorFile(*model)
	if err != nil {
		fatal("load model", err)
	}
	if err := prepare(pred); err != nil {
		fatal("configure cascade", err)
	}
	engine, err := serve.NewEngine(pred, serve.Options{
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		MaxDelay:     *maxDelay,
		QueueSize:    *queueSize,
		TraceDepth:   *traceDepth,
		PrepareModel: prepare,
	})
	if err != nil {
		fatal("start engine", err)
	}
	defer engine.Close()

	var names []string
	if *classNames != "" {
		names = strings.Split(*classNames, ",")
	}
	srv := &http.Server{
		Addr: *addr,
		Handler: serve.NewHandler(engine, serve.HandlerOptions{
			ModelPath:  *model,
			ClassNames: names,
			Limits:     graph.CodecLimits{MaxVertices: *maxVerts, MaxEdges: *maxEdges},
			Logger:     log,
		}),
	}

	// The diagnostics surface gets its own listener and server so its
	// security posture (loopback-only bind) is independent of the
	// serving address.
	var dbgSrv *http.Server
	if *debugAddr != "" {
		dbgSrv = &http.Server{Addr: *debugAddr, Handler: serve.NewDebugHandler(engine)}
		go func() {
			log.Info("debug listener up", "addr", *debugAddr)
			if err := dbgSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				log.Error("debug listener", "err", err)
			}
		}()
	}

	// SIGHUP hot-swaps the model; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := engine.SwapFromFile(*model); err != nil {
				log.Warn("SIGHUP reload failed", "err", err)
				continue
			}
			log.Info("model reloaded",
				"model", *model,
				"classes", engine.Predictor().NumClasses(),
				"dimension", engine.Predictor().Encoder().Dimension(),
				"reloads", engine.Reloads(),
			)
		}
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		<-stop
		log.Info("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Warn("shutdown", "err", err)
		}
		if dbgSrv != nil {
			dbgSrv.Shutdown(ctx)
		}
		close(shutdownDone)
	}()

	opts := engine.Options()
	ks := hdc.Kernels()
	bi := serve.Build()
	log.Info("starting",
		"build", bi.GoVersion, "revision", bi.VCSRevision,
		"kernel", ks.Active.String(), "cpu", ks.CPUFeatures,
	)
	log.Info("serving",
		"model", *model, "addr", *addr,
		"dimension", pred.Encoder().Dimension(),
		"classes", pred.NumClasses(),
		"packed_bytes", pred.MemoryBytes(),
		"workers", opts.Workers, "max_batch", opts.MaxBatch,
		"max_delay", opts.MaxDelay, "queue", opts.QueueSize,
		"trace_depth", engine.TraceDepth(),
	)
	if c, ok := pred.Cascade(); ok {
		log.Info("cascade enabled", "stage1_dimension", c.DPrefix, "margin", c.Margin)
	}
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		fatal("listen", err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight responses before Close tears
	// the engine down.
	<-shutdownDone
}
