// Command graphhd-serve is the online inference server: it loads a packed
// GraphHD model artifact (GRAPHHD1, GRAPHHD2 or GRAPHHD3, see cmd/graphhd
// -save / -save-packed) and serves classifications over HTTP through the
// micro-batching engine in internal/serve.
//
// Usage:
//
//	graphhd-serve -model model.ghdp                     # listen on :8080
//	graphhd-serve -model model.ghdp -addr 127.0.0.1:9090
//	graphhd-serve -model model.ghdp -workers 4 -max-batch 32 -max-delay 500us
//	graphhd-serve -model model.ghdp -class-names mutagenic,non-mutagenic
//	graphhd-serve -model model.ghdp -cascade-prefix 1024 -cascade-margin 12
//
// Endpoints:
//
//	POST /v1/predict        {"graph": {"num_vertices": n, "edges": [[u,v],...]}}
//	POST /v1/predict/batch  {"graphs": [...]}
//	GET  /v1/model          model card
//	GET  /healthz           liveness probe
//	GET  /metrics           Prometheus text metrics
//	POST /admin/reload      hot-swap the model from -model
//
// SIGHUP also hot-swaps the model; in-flight requests never fail during a
// swap. SIGINT/SIGTERM shut down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/serve"
)

func main() {
	var (
		model      = flag.String("model", "", "model artifact to serve (required; GRAPHHD1 or GRAPHHD2)")
		addr       = flag.String("addr", ":8080", "HTTP listen address")
		workers    = flag.Int("workers", 0, "inference workers (0 = all cores)")
		maxBatch   = flag.Int("max-batch", 0, "micro-batch flush size (0 = default)")
		maxDelay   = flag.Duration("max-delay", 0, "micro-batch flush deadline (0 = default)")
		queueSize  = flag.Int("queue", 0, "admission queue bound in graphs (0 = default)")
		classNames = flag.String("class-names", "", "comma-separated class names echoed in responses")
		maxVerts   = flag.Int("max-vertices", 0, "per-request vertex cap (0 = default; bounds server-side basis-vector memory)")
		maxEdges   = flag.Int("max-edges", 0, "per-request edge cap (0 = default)")
		cascPrefix = flag.Int("cascade-prefix", 0, "stage-1 dimension for two-stage cascade classification (0 = off, or as saved in a GRAPHHD3 artifact; must be in [64, model dimension))")
		cascMargin = flag.Int("cascade-margin", 0, "cascade escalation margin: stage-1 decisions with top-two Hamming margin at most this re-decide at full dimension (calibrate with cmd/graphhd -calibrate-cascade)")
	)
	flag.Parse()
	if *model == "" {
		fmt.Fprintln(os.Stderr, "graphhd-serve: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	if *cascPrefix == 0 && *cascMargin != 0 {
		fmt.Fprintln(os.Stderr, "graphhd-serve: -cascade-margin requires -cascade-prefix")
		flag.Usage()
		os.Exit(2)
	}

	// prepare applies operator cascade flags to a freshly loaded model; it
	// runs at startup and again on every SIGHUP / POST /admin/reload via
	// the engine's PrepareModel hook, so flag config survives hot swaps.
	// Without flags, whatever cascade the artifact itself carries
	// (GRAPHHD3) stays as loaded.
	prepare := func(p *core.Predictor) error {
		if *cascPrefix == 0 {
			return nil
		}
		return p.SetCascade(core.Cascade{DPrefix: *cascPrefix, Margin: *cascMargin})
	}

	pred, err := core.LoadPredictorFile(*model)
	if err != nil {
		log.Fatalf("graphhd-serve: %v", err)
	}
	if err := prepare(pred); err != nil {
		log.Fatalf("graphhd-serve: %v", err)
	}
	engine, err := serve.NewEngine(pred, serve.Options{
		Workers:      *workers,
		MaxBatch:     *maxBatch,
		MaxDelay:     *maxDelay,
		QueueSize:    *queueSize,
		PrepareModel: prepare,
	})
	if err != nil {
		log.Fatalf("graphhd-serve: %v", err)
	}
	defer engine.Close()

	var names []string
	if *classNames != "" {
		names = strings.Split(*classNames, ",")
	}
	srv := &http.Server{
		Addr: *addr,
		Handler: serve.NewHandler(engine, serve.HandlerOptions{
			ModelPath:  *model,
			ClassNames: names,
			Limits:     graph.CodecLimits{MaxVertices: *maxVerts, MaxEdges: *maxEdges},
		}),
	}

	// SIGHUP hot-swaps the model; SIGINT/SIGTERM drain and exit.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := engine.SwapFromFile(*model); err != nil {
				log.Printf("graphhd-serve: SIGHUP reload failed: %v", err)
				continue
			}
			log.Printf("graphhd-serve: reloaded %s (%d classes, d=%d)",
				*model, engine.Predictor().NumClasses(), engine.Predictor().Encoder().Dimension())
		}
	}()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	shutdownDone := make(chan struct{})
	go func() {
		<-stop
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("graphhd-serve: shutdown: %v", err)
		}
		close(shutdownDone)
	}()

	opts := engine.Options()
	ks := hdc.Kernels()
	log.Printf("graphhd-serve: kernel %s (cpu: %s)", ks.Active, ks.CPUFeatures)
	log.Printf("graphhd-serve: serving %s on %s (d=%d, %d classes, %d bytes packed; workers=%d max-batch=%d max-delay=%v queue=%d)",
		*model, *addr, pred.Encoder().Dimension(), pred.NumClasses(), pred.MemoryBytes(),
		opts.Workers, opts.MaxBatch, opts.MaxDelay, opts.QueueSize)
	if c, ok := pred.Cascade(); ok {
		log.Printf("graphhd-serve: cascade enabled (stage-1 d=%d, margin=%d)", c.DPrefix, c.Margin)
	}
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("graphhd-serve: %v", err)
	}
	// ListenAndServe returns as soon as the listener closes; wait for
	// Shutdown to finish draining in-flight responses before Close tears
	// the engine down.
	<-shutdownDone
}
