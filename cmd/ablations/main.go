// Command ablations runs the ablation and extension experiments indexed
// in DESIGN.md: hypervector dimension (A1), PageRank iterations (A2), the
// retraining / multi-prototype extensions (A3, the paper's Future Work 1),
// the vertex-label extension (A4, Future Work 2) and the bipolar vs
// bit-packed binary backend (A5).
//
// Usage:
//
//	ablations                 # all ablations at moderate scale
//	ablations -run dimension  # one ablation
//	ablations -count 100      # graphs per dataset
package main

import (
	"flag"
	"fmt"
	"os"

	"graphhd/internal/experiments"
)

func main() {
	var (
		run   = flag.String("run", "all", "which ablation: dimension|pagerank|extensions|labels|backend|centrality|noise|all")
		count = flag.Int("count", 120, "graphs per dataset")
		seed  = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	type job struct {
		name string
		fn   func() ([]experiments.AblationCell, error)
	}
	jobs := []job{
		{"dimension", func() ([]experiments.AblationCell, error) {
			return experiments.RunDimensionAblation(nil, *count, *seed)
		}},
		{"pagerank", func() ([]experiments.AblationCell, error) {
			return experiments.RunPageRankIterAblation(nil, *count, *seed)
		}},
		{"extensions", func() ([]experiments.AblationCell, error) {
			return experiments.RunExtensionComparison(*count, *seed)
		}},
		{"labels", func() ([]experiments.AblationCell, error) {
			return experiments.RunLabelExtension(*count, *seed)
		}},
		{"backend", func() ([]experiments.AblationCell, error) {
			return experiments.RunBackendComparison(*count, *seed)
		}},
		{"centrality", func() ([]experiments.AblationCell, error) {
			return experiments.RunCentralityAblation(*count, *seed)
		}},
	}
	if *run == "all" || *run == "noise" {
		cells, err := experiments.RunNoiseRobustness(nil, *count, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			os.Exit(1)
		}
		experiments.WriteNoise(os.Stdout, cells)
		fmt.Println()
		if *run == "noise" {
			return
		}
	}
	ran := false
	for _, j := range jobs {
		if *run != "all" && *run != j.name {
			continue
		}
		ran = true
		cells, err := j.fn()
		if err != nil {
			fmt.Fprintln(os.Stderr, "ablations:", err)
			os.Exit(1)
		}
		experiments.WriteAblation(os.Stdout, j.name, cells)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "ablations: unknown -run %q\n", *run)
		os.Exit(2)
	}
}
