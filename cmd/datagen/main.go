// Command datagen synthesizes the benchmark datasets of the paper's
// Table I (calibrated to the published statistics; see DESIGN.md) and
// writes them in TUDataset flat-file format, interchangeable with real
// TUDataset downloads.
//
// Usage:
//
//	datagen -out ./data                      # all six datasets, full size
//	datagen -out ./data -name MUTAG          # one dataset
//	datagen -out ./data -count 100           # shrink each dataset
//	datagen -out ./data -scaling 320         # Figure 4 ER dataset, n=320
package main

import (
	"flag"
	"fmt"
	"os"

	"graphhd"
)

func main() {
	var (
		out     = flag.String("out", "data", "output directory")
		name    = flag.String("name", "", "single dataset to generate (default: all six)")
		count   = flag.Int("count", 0, "override graph count per dataset (0 = paper size)")
		seed    = flag.Uint64("seed", 1, "random seed")
		scaling = flag.Int("scaling", 0, "instead generate the Figure 4 ER dataset with this many vertices per graph")
		sgraphs = flag.Int("scaling-graphs", 100, "graph count for -scaling")
	)
	flag.Parse()

	if *scaling > 0 {
		ds := graphhd.ScalingDataset(*scaling, *sgraphs, *seed)
		write(*out, ds)
		return
	}

	names := graphhd.DatasetNames()
	if *name != "" {
		names = []string{*name}
	}
	for _, n := range names {
		ds, err := graphhd.GenerateDataset(n, graphhd.DatasetOptions{Seed: *seed, GraphCount: *count})
		if err != nil {
			fatal(err)
		}
		write(*out, ds)
	}
}

func write(dir string, ds *graphhd.Dataset) {
	if err := graphhd.WriteTUDataset(dir, ds); err != nil {
		fatal(err)
	}
	st := graphhd.ComputeDatasetStats(ds)
	fmt.Printf("wrote %s/%s: %d graphs, %d classes, avg |V|=%.2f, avg |E|=%.2f\n",
		dir, ds.Name, st.Graphs, st.Classes, st.AvgVertices, st.AvgEdges)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "datagen:", err)
	os.Exit(1)
}
