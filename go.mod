module graphhd

go 1.24
