// Package graphhd is a pure-Go implementation of GraphHD (Nunes et al.,
// DATE 2022): efficient graph classification with hyperdimensional
// computing. A graph is encoded into a single high-dimensional bipolar
// hypervector — PageRank centrality ranks identify vertices, binding
// encodes edges, bundling aggregates a whole graph — and classification is
// a nearest-class-vector query.
//
// The package also ships everything needed to reproduce the paper's
// evaluation: the 1-WL and WL-OA graph kernel baselines with an SMO-based
// SVM, the GIN-ε and GIN-ε-JK graph neural network baselines on a
// from-scratch neural substrate, synthetic TUDataset-calibrated benchmark
// generators, the TUDataset flat-file format, and a cross-validation
// harness with the paper's timing protocol.
//
// Quick start:
//
//	ds := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 1})
//	model, err := graphhd.Train(graphhd.DefaultConfig(), ds.Graphs, ds.Labels)
//	if err != nil { ... }
//	class := model.Predict(ds.Graphs[0])
//
// See the examples/ directory for runnable programs and DESIGN.md for the
// system inventory.
package graphhd

import (
	"io"

	"graphhd/internal/centrality"
	"graphhd/internal/core"
	"graphhd/internal/dataset"
	"graphhd/internal/eval"
	"graphhd/internal/gin"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/pagerank"
	"graphhd/internal/wl"
)

// Core GraphHD types.
type (
	// Config holds GraphHD hyper-parameters; see DefaultConfig.
	Config = core.Config
	// Model is a trained GraphHD classifier.
	Model = core.Model
	// Encoder maps graphs to hypervectors.
	Encoder = core.Encoder
	// Predictor is the packed query snapshot of a trained model: class
	// vectors majority-voted to bit-packed form, inference entirely in the
	// packed domain (see Model.Snapshot).
	Predictor = core.Predictor
	// MultiPrototypeModel is the multiple-class-vectors extension.
	MultiPrototypeModel = core.MultiPrototypeModel
	// RetrainOptions configures perceptron-style retraining.
	RetrainOptions = core.RetrainOptions
	// Cascade configures two-stage prefix-sliced classification: decide
	// at the first DPrefix components of the basis, escalate to full
	// dimension when the top-two Hamming margin is at most Margin. See
	// Predictor.SetCascade and CalibrateCascade.
	Cascade = core.Cascade
)

// Graph substrate types.
type (
	// Graph is an immutable simple undirected graph.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and produces a Graph.
	GraphBuilder = graph.Builder
	// Dataset is a labeled collection of graphs.
	Dataset = graph.Dataset
	// DatasetStats summarizes a dataset Table-I style.
	DatasetStats = graph.Stats
)

// HDC substrate types.
type (
	// Hypervector is a bipolar (-1/+1) hypervector.
	Hypervector = hdc.Bipolar
	// BinaryHypervector is the bit-packed binary variant.
	BinaryHypervector = hdc.Binary
	// RNG is the deterministic random generator used everywhere.
	RNG = hdc.RNG
)

// Evaluation harness types.
type (
	// Classifier is the harness interface all compared methods implement.
	Classifier = eval.Classifier
	// CVOptions configures cross-validation.
	CVOptions = eval.CrossValidateOptions
	// CVResult aggregates a cross-validation run.
	CVResult = eval.Result
	// GINConfig configures the GIN baselines.
	GINConfig = gin.Config
	// PageRankOptions configures centrality computation.
	PageRankOptions = pagerank.Options
	// WLOptions configures Weisfeiler-Leman refinement.
	WLOptions = wl.Options
	// DatasetOptions configures synthetic dataset generation.
	DatasetOptions = dataset.Options
)

// NewRNG returns the deterministic splitmix64 generator used throughout
// the repository.
func NewRNG(seed uint64) *RNG { return hdc.NewRNG(seed) }

// HypervectorFromComponents builds a bipolar hypervector from explicit
// -1/+1 components (copied).
func HypervectorFromComponents(comps []int8) (*Hypervector, error) {
	return hdc.FromComponents(comps)
}

// DefaultConfig returns the configuration used in every paper experiment:
// 10,000-dimensional bipolar hypervectors and 10 PageRank iterations.
func DefaultConfig() Config { return core.DefaultConfig() }

// Train builds and fits a GraphHD model in one call.
func Train(cfg Config, graphs []*Graph, labels []int) (*Model, error) {
	return core.Train(cfg, graphs, labels)
}

// NewEncoder builds a graph-to-hypervector encoder from cfg.
func NewEncoder(cfg Config) (*Encoder, error) { return core.NewEncoder(cfg) }

// NewModel returns an untrained model for k classes over enc.
func NewModel(enc *Encoder, k int) (*Model, error) { return core.NewModel(enc, k) }

// NewMultiPrototypeModel returns the multiple-class-vectors extension with
// up to protos prototypes per class.
func NewMultiPrototypeModel(enc *Encoder, k, protos int) (*MultiPrototypeModel, error) {
	return core.NewMultiPrototypeModel(enc, k, protos)
}

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphFromEdges builds a graph directly from an edge list.
func GraphFromEdges(n int, edges [][2]int) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadTUDataset loads a dataset in TUDataset flat-file format from
// dir/name.
func ReadTUDataset(dir, name string) (*Dataset, error) { return graph.ReadTUDataset(dir, name) }

// WriteTUDataset writes ds to dir/ds.Name in TUDataset flat-file format.
func WriteTUDataset(dir string, ds *Dataset) error { return graph.WriteTUDataset(dir, ds) }

// GenerateDataset synthesizes one of the six Table I benchmark datasets
// ("DD", "ENZYMES", "MUTAG", "NCI1", "PROTEINS", "PTC_FM").
func GenerateDataset(name string, opts DatasetOptions) (*Dataset, error) {
	return dataset.Generate(name, opts)
}

// MustGenerateDataset is GenerateDataset that panics on error.
func MustGenerateDataset(name string, opts DatasetOptions) *Dataset {
	return dataset.MustGenerate(name, opts)
}

// DatasetNames returns the six benchmark dataset names.
func DatasetNames() []string { return dataset.Names() }

// ScalingDataset builds the Figure 4 Erdős–Rényi scaling dataset with n
// vertices per graph.
func ScalingDataset(n, graphs int, seed uint64) *Dataset { return dataset.Scaling(n, graphs, seed) }

// ComputeDatasetStats derives Table-I-style statistics.
func ComputeDatasetStats(ds *Dataset) DatasetStats { return graph.ComputeStats(ds) }

// ExtendedDatasetStats adds diameter/clustering/degeneracy measures.
type ExtendedDatasetStats = graph.ExtendedStats

// ComputeExtendedDatasetStats derives the extended statistics (O(V·E) per
// graph; offline analysis).
func ComputeExtendedDatasetStats(ds *Dataset) ExtendedDatasetStats {
	return graph.ComputeExtendedStats(ds)
}

// PageRankScores returns PageRank centrality scores for every vertex.
func PageRankScores(g *Graph, opts PageRankOptions) []float64 { return pagerank.Scores(g, opts) }

// PageRankRanks returns each vertex's centrality rank, GraphHD's vertex
// identifier.
func PageRankRanks(g *Graph, opts PageRankOptions) []int { return pagerank.Ranks(g, opts) }

// LoadModelFile reads a model saved with Model.SaveFile.
func LoadModelFile(path string) (*Model, error) { return core.LoadModelFile(path) }

// ReadModel deserializes a model from r (see Model.WriteTo).
func ReadModel(r io.Reader) (*Model, error) { return core.ReadModel(r) }

// LoadPredictorFile reads a packed predictor saved with Predictor.SaveFile
// (it also accepts full-model files, snapshotting them on load).
func LoadPredictorFile(path string) (*Predictor, error) { return core.LoadPredictorFile(path) }

// ReadPredictor deserializes a packed predictor from r (see
// Predictor.WriteTo).
func ReadPredictor(r io.Reader) (*Predictor, error) { return core.ReadPredictor(r) }

// CascadeReport summarizes a cascade margin calibration; see
// CalibrateCascade.
type CascadeReport = eval.CascadeReport

// CalibrateCascade chooses the smallest escalation margin whose cascade
// keeps holdout accuracy within tol (a fraction, e.g. 0.005 for half a
// point) of the full-dimension baseline, returning the calibrated
// configuration ready for Predictor.SetCascade.
func CalibrateCascade(p *Predictor, graphs []*Graph, labels []int, dPrefix int, tol float64) (Cascade, *CascadeReport, error) {
	return eval.CalibrateCascade(p, graphs, labels, dPrefix, tol)
}

// OnlineLearner is the predict-then-learn interface of the streaming
// harness.
type OnlineLearner = eval.OnlineLearner

// NewOnlineGraphHD adapts a model for streaming: packed-path predictions
// against a snapshot that refreshes after every Learn.
func NewOnlineGraphHD(m *Model) OnlineLearner { return eval.OnlineGraphHD(m) }

// CentralityMetric selects the vertex-identifier metric for Config.Centrality.
type CentralityMetric = centrality.Metric

// Centrality metric values for Config.Centrality.
const (
	CentralityPageRank    = centrality.PageRank
	CentralityDegree      = centrality.Degree
	CentralityEigenvector = centrality.Eigenvector
	CentralityCloseness   = centrality.Closeness
)

// CrossValidate runs the paper's repeated stratified k-fold protocol.
func CrossValidate(method string, ds *Dataset, factory func(fold int, seed uint64) Classifier, opts CVOptions) (*CVResult, error) {
	return eval.CrossValidate(method, ds, eval.Factory(factory), opts)
}

// DefaultCVOptions returns the paper protocol: 3 repetitions of 10-fold CV.
func DefaultCVOptions() CVOptions { return eval.DefaultCVOptions() }

// NewGraphHDClassifier adapts GraphHD to the harness interface.
func NewGraphHDClassifier(cfg Config) Classifier { return eval.NewGraphHDClassifier(cfg) }

// NewWLSubtreeClassifier adapts the 1-WL kernel SVM baseline.
func NewWLSubtreeClassifier(seed uint64) Classifier {
	return eval.NewKernelSVMClassifier(eval.KernelWLSubtree, seed)
}

// NewWLOAClassifier adapts the WL-OA kernel SVM baseline.
func NewWLOAClassifier(seed uint64) Classifier {
	return eval.NewKernelSVMClassifier(eval.KernelWLOA, seed)
}

// NewGINClassifier adapts the GIN baselines; jk selects GIN-ε-JK.
func NewGINClassifier(jk bool, seed uint64) Classifier { return eval.NewGINClassifier(jk, seed) }
