// Benchmark harness regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §4 for the experiment index):
//
//	BenchmarkTable1Stats        — Table I dataset statistics
//	BenchmarkFig3/...           — Fig 3: per-fold train + per-graph infer
//	                              time and accuracy, 6 datasets × 5 methods
//	BenchmarkFig4Scaling/...    — Fig 4: training-time scaling profile
//	BenchmarkAblation*/...      — A1–A5 ablations and extensions
//	BenchmarkEncode*, etc.      — substrate micro-benchmarks
//
// Benchmarks run on reduced dataset sizes (quick mode) so the full suite
// finishes in minutes; the cmd/fig3 and cmd/fig4 binaries run the
// paper-scale protocol. Custom metrics: "acc" is fold accuracy,
// "infer-ns/graph" is per-graph inference latency.
package graphhd_test

import (
	"fmt"
	"testing"
	"time"

	"graphhd"
	"graphhd/internal/core"
	"graphhd/internal/dataset"
	"graphhd/internal/eval"
	"graphhd/internal/experiments"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/pagerank"
	"graphhd/internal/wl"
)

// benchGraphCount keeps the quadratic kernel baselines affordable while
// leaving every code path identical to the paper-scale runs.
const benchGraphCount = 60

// --- Table I -------------------------------------------------------------

func BenchmarkTable1Stats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunTable1(1, benchGraphCount)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("missing datasets")
		}
	}
}

// --- Figure 3 ------------------------------------------------------------

// benchFold returns a deterministic 80/20 train/test split of ds.
func benchFold(ds *graph.Dataset) (train, test *graph.Dataset) {
	folds, err := eval.StratifiedKFold(ds.Labels, 5, 0xbe4c)
	if err != nil {
		panic(err)
	}
	var trainIdx []int
	for _, f := range folds[1:] {
		trainIdx = append(trainIdx, f...)
	}
	return ds.Subset(trainIdx), ds.Subset(folds[0])
}

func BenchmarkFig3(b *testing.B) {
	for _, name := range dataset.Names() {
		ds := dataset.MustGenerate(name, dataset.Options{Seed: 1, GraphCount: benchGraphCount})
		train, test := benchFold(ds)
		for _, method := range experiments.MethodNames {
			b.Run(fmt.Sprintf("%s/%s", name, method), func(b *testing.B) {
				var acc float64
				var inferNs float64
				for i := 0; i < b.N; i++ {
					clf, err := experiments.NewClassifier(method, 7, true)
					if err != nil {
						b.Fatal(err)
					}
					// The timed body is one fold of training, the Fig 3
					// (middle) quantity.
					if err := clf.Fit(train.Graphs, train.Labels); err != nil {
						b.Fatal(err)
					}
					b.StopTimer()
					preds, dt := timedPredict(clf, test.Graphs)
					acc = eval.Accuracy(preds, test.Labels)
					inferNs = float64(dt) / float64(len(test.Graphs))
					b.StartTimer()
				}
				b.ReportMetric(acc, "acc")
				b.ReportMetric(inferNs, "infer-ns/graph")
			})
		}
	}
}

// --- Figure 4 ------------------------------------------------------------

func BenchmarkFig4Scaling(b *testing.B) {
	sizes := []int{20, 80, 320, 980}
	for _, method := range []string{"GraphHD", "GIN-e", "WL-OA"} {
		for _, n := range sizes {
			// The two slow baselines stop at 320 vertices in the bench
			// suite; cmd/fig4 runs the full sweep.
			if n > 320 && method != "GraphHD" {
				continue
			}
			ds := dataset.Scaling(n, 30, 1)
			b.Run(fmt.Sprintf("%s/n=%d", method, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					clf, err := experiments.NewClassifier(method, 7, true)
					if err != nil {
						b.Fatal(err)
					}
					if err := clf.Fit(ds.Graphs, ds.Labels); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Ablations (A1–A5) ----------------------------------------------------

func BenchmarkAblationDimension(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 1, GraphCount: benchGraphCount})
	train, test := benchFold(ds)
	for _, dim := range []int{512, 2048, 10000} {
		b.Run(fmt.Sprintf("d=%d", dim), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Dimension = dim
				m, err := core.Train(cfg, train.Graphs, train.Labels)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				acc = eval.Accuracy(m.PredictAll(test.Graphs), test.Labels)
				b.StartTimer()
			}
			b.ReportMetric(acc, "acc")
		})
	}
}

func BenchmarkAblationPageRankIters(b *testing.B) {
	ds := dataset.MustGenerate("ENZYMES", dataset.Options{Seed: 1, GraphCount: 2 * benchGraphCount})
	train, test := benchFold(ds)
	for _, iters := range []int{1, 5, 10, 20} {
		b.Run(fmt.Sprintf("iters=%d", iters), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Dimension = 2048
				cfg.PageRankIterations = iters
				m, err := core.Train(cfg, train.Graphs, train.Labels)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				acc = eval.Accuracy(m.PredictAll(test.Graphs), test.Labels)
				b.StartTimer()
			}
			b.ReportMetric(acc, "acc")
		})
	}
}

func BenchmarkExtensionRetraining(b *testing.B) {
	ds := dataset.MustGenerate("NCI1", dataset.Options{Seed: 1, GraphCount: benchGraphCount})
	train, test := benchFold(ds)
	for _, epochs := range []int{0, 5, 20} {
		b.Run(fmt.Sprintf("epochs=%d", epochs), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Dimension = 2048
				m, err := core.Train(cfg, train.Graphs, train.Labels)
				if err != nil {
					b.Fatal(err)
				}
				if epochs > 0 {
					if _, err := m.Retrain(train.Graphs, train.Labels, core.RetrainOptions{Epochs: epochs}); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				acc = eval.Accuracy(m.PredictAll(test.Graphs), test.Labels)
				b.StartTimer()
			}
			b.ReportMetric(acc, "acc")
		})
	}
}

func BenchmarkExtensionLabels(b *testing.B) {
	for _, useLabels := range []bool{false, true} {
		b.Run(fmt.Sprintf("labels=%v", useLabels), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cells, err := experiments.RunLabelExtension(benchGraphCount, 3)
				if err != nil {
					b.Fatal(err)
				}
				want := fmt.Sprint(useLabels)
				for _, c := range cells {
					if c.Value == want {
						b.ReportMetric(c.Accuracy, "acc")
					}
				}
			}
		})
	}
}

func BenchmarkAblationBackend(b *testing.B) {
	ds := dataset.MustGenerate("PROTEINS", dataset.Options{Seed: 1, GraphCount: 20})
	const dim = 10000
	b.Run("bipolar", func(b *testing.B) {
		enc := core.MustNewEncoder(core.Config{Dimension: dim, PageRankIterations: 10, PageRankDamping: 0.85, Seed: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, g := range ds.Graphs {
				enc.EncodeGraph(g)
			}
		}
	})
	b.Run("binary", func(b *testing.B) {
		rng := hdc.NewRNG(1)
		var basis []*hdc.Binary
		basisFor := func(rank int) *hdc.Binary {
			for rank >= len(basis) {
				basis = append(basis, hdc.RandomBinary(dim, rng))
			}
			return basis[rank]
		}
		ranks := make([][]int, len(ds.Graphs))
		for i, g := range ds.Graphs {
			ranks[i] = pagerank.Ranks(g, pagerank.Options{})
			basisFor(g.NumVertices())
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for gi, g := range ds.Graphs {
				acc := hdc.NewBinaryAccumulator(dim)
				for _, e := range g.Edges() {
					acc.Add(basisFor(ranks[gi][e.U]).Bind(basisFor(ranks[gi][e.V])))
				}
				acc.Majority(basisFor(0))
			}
		}
	})
}

// --- substrate micro-benchmarks -------------------------------------------

func BenchmarkEncodeGraph(b *testing.B) {
	enc := core.MustNewEncoder(core.DefaultConfig())
	for _, n := range []int{20, 100, 500} {
		g := graph.ErdosRenyi(n, 0.05, hdc.NewRNG(1))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				enc.EncodeGraph(g)
			}
		})
	}
}

// BenchmarkEncodeGraphScratch is BenchmarkEncodeGraph on a reused
// EncoderScratch — the steady-state serving path, 0 allocs/op.
func BenchmarkEncodeGraphScratch(b *testing.B) {
	enc := core.MustNewEncoder(core.DefaultConfig())
	for _, n := range []int{20, 100, 500} {
		g := graph.ErdosRenyi(n, 0.05, hdc.NewRNG(1))
		s := enc.NewScratch()
		s.EncodeGraphPacked(g)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.EncodeGraphPacked(g)
			}
		})
	}
}

func BenchmarkBindBipolar(b *testing.B) {
	rng := hdc.NewRNG(1)
	v := hdc.RandomBipolar(10000, rng)
	w := hdc.RandomBipolar(10000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Bind(w)
	}
}

func BenchmarkBindBinary(b *testing.B) {
	rng := hdc.NewRNG(1)
	v := hdc.RandomBinary(10000, rng)
	w := hdc.RandomBinary(10000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Bind(w)
	}
}

func BenchmarkCosine(b *testing.B) {
	rng := hdc.NewRNG(1)
	v := hdc.RandomBipolar(10000, rng)
	w := hdc.RandomBipolar(10000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Cosine(w)
	}
}

func BenchmarkPageRank(b *testing.B) {
	for _, n := range []int{50, 500} {
		g := graph.ErdosRenyi(n, 0.05, hdc.NewRNG(1))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pagerank.Ranks(g, pagerank.Options{})
			}
		})
	}
}

// BenchmarkPageRankInto is BenchmarkPageRank through the caller-owned
// buffer API — zero allocations once the scratch has warmed.
func BenchmarkPageRankInto(b *testing.B) {
	for _, n := range []int{50, 500} {
		g := graph.ErdosRenyi(n, 0.05, hdc.NewRNG(1))
		var s pagerank.Scratch
		dst := pagerank.RanksInto(g, pagerank.Options{}, nil, &s)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dst = pagerank.RanksInto(g, pagerank.Options{}, dst, &s)
			}
		})
	}
}

func BenchmarkWLRefine(b *testing.B) {
	var gs []*graph.Graph
	rng := hdc.NewRNG(1)
	for i := 0; i < 30; i++ {
		gs = append(gs, graph.ErdosRenyi(40, 0.08, rng))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wl.Refine(gs, wl.Options{Iterations: 3})
	}
}

func BenchmarkGraphHDTrainFull(b *testing.B) {
	ds := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 1, GraphCount: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphhd.Train(graphhd.DefaultConfig(), ds.Graphs, ds.Labels); err != nil {
			b.Fatal(err)
		}
	}
}

// timedPredict measures wall-clock prediction like the harness does.
func timedPredict(clf eval.Classifier, gs []*graph.Graph) ([]int, time.Duration) {
	t0 := time.Now()
	preds := clf.PredictAll(gs)
	return preds, time.Since(t0)
}

func BenchmarkNoiseRobustness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cells, err := experiments.RunNoiseRobustness([]float64{0, 0.2, 0.4}, 40, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cells[0].Accuracy, "acc-clean")
		b.ReportMetric(cells[1].Accuracy, "acc-20pct")
	}
}

func BenchmarkAblationCentrality(b *testing.B) {
	ds := dataset.MustGenerate("ENZYMES", dataset.Options{Seed: 1, GraphCount: 2 * benchGraphCount})
	train, test := benchFold(ds)
	for _, metric := range []graphhd.CentralityMetric{
		graphhd.CentralityPageRank, graphhd.CentralityDegree,
		graphhd.CentralityEigenvector, graphhd.CentralityCloseness,
	} {
		b.Run(metric.String(), func(b *testing.B) {
			var acc float64
			for i := 0; i < b.N; i++ {
				cfg := core.DefaultConfig()
				cfg.Dimension = 2048
				cfg.Centrality = metric
				m, err := core.Train(cfg, train.Graphs, train.Labels)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				acc = eval.Accuracy(m.PredictAll(test.Graphs), test.Labels)
				b.StartTimer()
			}
			b.ReportMetric(acc, "acc")
		})
	}
}
