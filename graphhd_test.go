package graphhd_test

import (
	"os"
	"testing"

	"graphhd"
)

// The facade tests exercise the public API end to end the way a downstream
// user would, without touching internal packages.

func TestFacadeTrainPredict(t *testing.T) {
	ds := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 1, GraphCount: 60})
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 2048
	model, err := graphhd.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	preds := model.PredictAll(ds.Graphs)
	correct := 0
	for i, p := range preds {
		if p == ds.Labels[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(preds)); acc < 0.8 {
		t.Fatalf("training accuracy = %f", acc)
	}
}

func TestFacadeGraphBuilding(t *testing.T) {
	g, err := graphhd.GraphFromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("graph = %v", g)
	}
	b := graphhd.NewGraphBuilder(3)
	b.MustAddEdge(0, 2)
	if got := b.Build().NumEdges(); got != 1 {
		t.Fatalf("edges = %d", got)
	}
}

func TestFacadePageRank(t *testing.T) {
	g, err := graphhd.GraphFromEdges(5, [][2]int{{0, 1}, {0, 2}, {0, 3}, {0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	scores := graphhd.PageRankScores(g, graphhd.PageRankOptions{})
	ranks := graphhd.PageRankRanks(g, graphhd.PageRankOptions{})
	if ranks[0] != 0 {
		t.Fatalf("hub rank = %d", ranks[0])
	}
	if scores[0] <= scores[1] {
		t.Fatal("hub score should dominate")
	}
}

func TestFacadeDatasetIO(t *testing.T) {
	dir := t.TempDir()
	ds := graphhd.MustGenerateDataset("PTC_FM", graphhd.DatasetOptions{Seed: 2, GraphCount: 20})
	if err := graphhd.WriteTUDataset(dir, ds); err != nil {
		t.Fatal(err)
	}
	back, err := graphhd.ReadTUDataset(dir, "PTC_FM")
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() {
		t.Fatalf("round trip: %d vs %d", back.Len(), ds.Len())
	}
	st := graphhd.ComputeDatasetStats(back)
	if st.Graphs != 20 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFacadeCrossValidateAllMethods(t *testing.T) {
	ds := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 3, GraphCount: 30})
	factories := map[string]func(fold int, seed uint64) graphhd.Classifier{
		"GraphHD": func(fold int, seed uint64) graphhd.Classifier {
			cfg := graphhd.DefaultConfig()
			cfg.Dimension = 1024
			cfg.Seed = seed
			return graphhd.NewGraphHDClassifier(cfg)
		},
		"WL-OA": func(fold int, seed uint64) graphhd.Classifier {
			return graphhd.NewWLOAClassifier(seed)
		},
	}
	for name, f := range factories {
		res, err := graphhd.CrossValidate(name, ds, f, graphhd.CVOptions{Folds: 3, Repetitions: 1, Seed: 4})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.MeanAccuracy() < 0.6 {
			t.Errorf("%s accuracy = %f", name, res.MeanAccuracy())
		}
	}
}

func TestFacadeOnlineLearning(t *testing.T) {
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 1024
	enc, err := graphhd.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	model, err := graphhd.NewModel(enc, 2)
	if err != nil {
		t.Fatal(err)
	}
	ds := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 5, GraphCount: 40})
	for i, g := range ds.Graphs {
		if _, err := model.Learn(g, ds.Labels[i]); err != nil {
			t.Fatal(err)
		}
	}
	if acc := trainAcc(model, ds); acc < 0.8 {
		t.Fatalf("online training accuracy = %f", acc)
	}
}

func TestFacadeScalingDataset(t *testing.T) {
	ds := graphhd.ScalingDataset(30, 20, 1)
	if ds.Len() != 20 {
		t.Fatalf("len = %d", ds.Len())
	}
	names := graphhd.DatasetNames()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	if graphhd.DefaultCVOptions().Folds != 10 {
		t.Fatal("CV defaults wrong")
	}
}

func TestFacadeMultiPrototype(t *testing.T) {
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 1024
	enc, err := graphhd.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mp, err := graphhd.NewMultiPrototypeModel(enc, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	ds := graphhd.MustGenerateDataset("PTC_FM", graphhd.DatasetOptions{Seed: 6, GraphCount: 40})
	if err := mp.Fit(ds.Graphs, ds.Labels); err != nil {
		t.Fatal(err)
	}
	preds := mp.PredictAll(ds.Graphs)
	if len(preds) != ds.Len() {
		t.Fatal("prediction count mismatch")
	}
}

func trainAcc(m *graphhd.Model, ds *graphhd.Dataset) float64 {
	preds := m.PredictAll(ds.Graphs)
	c := 0
	for i, p := range preds {
		if p == ds.Labels[i] {
			c++
		}
	}
	return float64(c) / float64(len(preds))
}

func TestFacadeModelSerialization(t *testing.T) {
	ds := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 8, GraphCount: 20})
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 1024
	m, err := graphhd.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/m.ghd"
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := graphhd.LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range ds.Graphs[:5] {
		if m.Predict(g) != m2.Predict(g) {
			t.Fatal("facade round trip changed predictions")
		}
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := graphhd.ReadModel(f); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeHypervectorFromComponents(t *testing.T) {
	hv, err := graphhd.HypervectorFromComponents([]int8{1, -1, 1, -1})
	if err != nil {
		t.Fatal(err)
	}
	if hv.Dim() != 4 || hv.At(1) != -1 {
		t.Fatal("components not preserved")
	}
	if _, err := graphhd.HypervectorFromComponents([]int8{0}); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeCentralityConfig(t *testing.T) {
	ds := graphhd.MustGenerateDataset("PTC_FM", graphhd.DatasetOptions{Seed: 9, GraphCount: 20})
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 1024
	cfg.Centrality = graphhd.CentralityDegree
	m, err := graphhd.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.PredictAll(ds.Graphs)) != ds.Len() {
		t.Fatal("prediction count")
	}
}

func TestFacadeGINAndWLClassifiers(t *testing.T) {
	ds := graphhd.MustGenerateDataset("PTC_FM", graphhd.DatasetOptions{Seed: 10, GraphCount: 24})
	for name, clf := range map[string]graphhd.Classifier{
		"1-WL": graphhd.NewWLSubtreeClassifier(1),
		"GIN":  graphhd.NewGINClassifier(true, 1),
	} {
		if err := clf.Fit(ds.Graphs, ds.Labels); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(clf.PredictAll(ds.Graphs)) != ds.Len() {
			t.Fatalf("%s: prediction count", name)
		}
	}
}

func TestFacadeExtendedStats(t *testing.T) {
	ds := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 11, GraphCount: 10})
	st := graphhd.ComputeExtendedDatasetStats(ds)
	if st.AvgDiameter <= 0 || st.Graphs != 10 {
		t.Fatalf("extended stats = %+v", st)
	}
}
