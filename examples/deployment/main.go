// Deployment: the embedded/IoT story that motivates the paper. A model is
// trained "in the datacenter", serialized to a ~80 KB file, reloaded as if
// on a device, and then queried while hypervector memory suffers random
// bit-flips — demonstrating both the tiny model footprint (class
// accumulators only; basis vectors regenerate from the seed) and the
// holographic robustness HDC promises for faulty hardware.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"graphhd"
)

func main() {
	// --- datacenter side -------------------------------------------------
	train := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 9})
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 4096
	model, err := graphhd.Train(cfg, train.Graphs, train.Labels)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := model.Retrain(train.Graphs, train.Labels, graphhd.RetrainOptions{Epochs: 5}); err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "graphhd-deploy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "model.ghd")
	if err := model.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model serialized to %d bytes (%d classes × %d dims of int32 + header)\n",
		info.Size(), model.NumClasses(), cfg.Dimension)

	// --- device side ------------------------------------------------------
	device, err := graphhd.LoadModelFile(path)
	if err != nil {
		log.Fatal(err)
	}
	test := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 90, GraphCount: 80})

	clean := accuracy(device, test)
	fmt.Printf("device accuracy, clean memory:      %.3f\n", clean)

	// Simulate faulty hypervector memory: corrupt a fraction of each
	// query encoding's components before the associative-memory lookup.
	rng := graphhd.NewRNG(123)
	enc := device.Encoder()
	for _, flip := range []float64{0.10, 0.25} {
		correct := 0
		for i, g := range test.Graphs {
			hv := corrupt(enc.EncodeGraph(g), flip, rng)
			if device.PredictEncoded(hv) == test.Labels[i] {
				correct++
			}
		}
		fmt.Printf("device accuracy, %2.0f%% bits flipped: %.3f\n",
			flip*100, float64(correct)/float64(test.Len()))
	}
}

func accuracy(m *graphhd.Model, ds *graphhd.Dataset) float64 {
	preds := m.PredictAll(ds.Graphs)
	c := 0
	for i, p := range preds {
		if p == ds.Labels[i] {
			c++
		}
	}
	return float64(c) / float64(len(preds))
}

// corrupt returns hv with a random fraction of components negated.
func corrupt(hv *graphhd.Hypervector, fraction float64, rng *graphhd.RNG) *graphhd.Hypervector {
	d := hv.Dim()
	comps := make([]int8, d)
	for i := 0; i < d; i++ {
		comps[i] = hv.At(i)
	}
	for _, idx := range rng.Perm(d)[:int(fraction*float64(d))] {
		comps[idx] = -comps[idx]
	}
	out, err := graphhd.HypervectorFromComponents(comps)
	if err != nil {
		log.Fatal(err)
	}
	return out
}
