// Deployment: the embedded/IoT story that motivates the paper. A model is
// trained "in the datacenter", collapsed to a bit-packed query predictor,
// serialized to a few-KB file, reloaded as if on a device, and then
// queried while hypervector memory suffers random bit-flips. The demo
// shows all three deployment wins at once: the tiny packed model footprint
// (majority-voted class vectors at one bit per component; basis vectors
// regenerate from the seed), the popcount-Hamming query path that never
// unpacks a hypervector, and the holographic robustness HDC promises for
// faulty hardware.
//
// The final act is the online story: the same packed artifact is mounted
// behind the micro-batching HTTP server (internal/serve, the engine under
// cmd/graphhd-serve), a batch of graphs goes over the wire as JSON, and
// the served classes are asserted identical to the offline packed path.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"

	"graphhd"
	"graphhd/internal/graph"
	"graphhd/internal/serve"
)

func main() {
	// --- datacenter side -------------------------------------------------
	train := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 9})
	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 4096
	model, err := graphhd.Train(cfg, train.Graphs, train.Labels)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := model.Retrain(train.Graphs, train.Labels, graphhd.RetrainOptions{Epochs: 5}); err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "graphhd-deploy")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Full model (live int32 accumulators, can keep learning) vs packed
	// predictor (majority-voted bit vectors, query only): the deployment
	// artifact is ~32× smaller on disk and 32× smaller in memory.
	fullPath := filepath.Join(dir, "model.ghd")
	if err := model.SaveFile(fullPath); err != nil {
		log.Fatal(err)
	}
	packed := model.Snapshot()
	packedPath := filepath.Join(dir, "model.ghdp")
	if err := packed.SaveFile(packedPath); err != nil {
		log.Fatal(err)
	}
	fullInfo, err := os.Stat(fullPath)
	if err != nil {
		log.Fatal(err)
	}
	packedInfo, err := os.Stat(packedPath)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model footprint before packing: %6d bytes on disk, %6d bytes of query memory\n",
		fullInfo.Size(), model.MemoryBytes())
	fmt.Printf("model footprint after packing:  %6d bytes on disk, %6d bytes of query memory (%.1f× smaller)\n",
		packedInfo.Size(), packed.MemoryBytes(),
		float64(model.MemoryBytes())/float64(packed.MemoryBytes()))

	// --- device side ------------------------------------------------------
	device, err := graphhd.LoadPredictorFile(packedPath)
	if err != nil {
		log.Fatal(err)
	}
	test := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 90, GraphCount: 80})

	preds := device.PredictAll(test.Graphs)
	correct := 0
	for i, p := range preds {
		if p == test.Labels[i] {
			correct++
		}
	}
	fmt.Printf("device accuracy, clean memory:      %.3f\n", float64(correct)/float64(test.Len()))

	// Simulate faulty hypervector memory: flip a fraction of each packed
	// query encoding's bits before the associative-memory lookup. The
	// encoding stays bit-packed end to end — corruption is a word-level
	// XOR away, and classification degrades gracefully.
	rng := graphhd.NewRNG(123)
	enc := device.Encoder()
	for _, flip := range []float64{0.10, 0.25} {
		correct := 0
		for i, g := range test.Graphs {
			hv := enc.EncodeGraphPacked(g)
			for _, idx := range rng.Perm(hv.Dim())[:int(flip*float64(hv.Dim()))] {
				hv.Flip(idx)
			}
			if device.PredictEncoded(hv) == test.Labels[i] {
				correct++
			}
		}
		fmt.Printf("device accuracy, %2.0f%% bits flipped: %.3f\n",
			flip*100, float64(correct)/float64(test.Len()))
	}

	// --- cascade side -----------------------------------------------------
	// Two-stage classification for latency-bound devices: decide at a
	// 512-bit prefix of the same basis (no second model, no re-encode)
	// and escalate only margin-ambiguous graphs to full width. The
	// escalation margin comes from a holdout calibration that keeps
	// accuracy within half a point of the full-dimension path.
	hold := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 91, GraphCount: 60})
	casc, rep, err := graphhd.CalibrateCascade(device, hold.Graphs, hold.Labels, 512, 0.005)
	if err != nil {
		log.Fatal(err)
	}
	if err := device.SetCascade(casc); err != nil {
		log.Fatal(err)
	}
	scratch := enc.NewScratch()
	cascCorrect, escalated := 0, 0
	for i, g := range test.Graphs {
		cls, esc := device.PredictCascadeWith(scratch, g)
		if cls == test.Labels[i] {
			cascCorrect++
		}
		if esc {
			escalated++
		}
	}
	fmt.Printf("cascade (stage-1 d=%d, margin %d): accuracy %.3f, %d of %d decided at stage 1 (calibration hit rate %.0f%%)\n",
		casc.DPrefix, casc.Margin, float64(cascCorrect)/float64(test.Len()),
		test.Len()-escalated, test.Len(), 100*rep.Stage1HitRate)
	device.ClearCascade() // the serving act below asserts full-dimension parity

	// --- serving side -----------------------------------------------------
	// Mount the same artifact behind the online inference server and check
	// that a batch served over HTTP is bit-identical to the offline path.
	registry := serve.NewRegistry(serve.RegistryOptions{})
	defer registry.Close()
	if err := registry.LoadFile("default", packedPath); err != nil {
		log.Fatal(err)
	}
	router := serve.NewRouter(registry, serve.RouterOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: serve.NewHandler(router, serve.HandlerOptions{
		ClassNames: test.ClassNames,
	})}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	req := serve.PredictBatchRequest{Graphs: make([]*graph.GraphJSON, test.Len())}
	for i, g := range test.Graphs {
		req.Graphs[i] = graph.ToJSON(g)
	}
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/predict/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		log.Fatalf("predict/batch: status %d, err %v: %s", resp.StatusCode, err, raw)
	}
	var batch serve.PredictBatchResponse
	if err := json.Unmarshal(raw, &batch); err != nil {
		log.Fatal(err)
	}
	for i, c := range batch.Classes {
		if c != preds[i] {
			log.Fatalf("served class %d for graph %d; offline path said %d", c, i, preds[i])
		}
	}
	fmt.Printf("served %d graphs over HTTP (%s): all classes match the offline packed path\n",
		len(batch.Classes), base)

	var card serve.ModelInfo
	if resp, err = http.Get(base + "/v1/model"); err != nil {
		log.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&card)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model card: d=%d, %d classes, %d bytes packed, centrality=%s\n",
		card.Dimension, card.Classes, card.MemoryBytes, card.Centrality)
}
