// IoT stream: the resource-constrained online-learning scenario that
// motivates GraphHD in the paper's introduction (e.g. IoT malware call
// graphs). Graphs arrive one at a time; the model classifies each sample
// BEFORE learning from it (progressive validation), so the running
// accuracy shows the classifier improving on-line — something the paper
// notes kernel methods cannot do at all.
package main

import (
	"fmt"
	"log"

	"graphhd"
)

func main() {
	const streamLen = 400

	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 4096
	enc, err := graphhd.NewEncoder(cfg)
	if err != nil {
		log.Fatal(err)
	}
	model, err := graphhd.NewModel(enc, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Simulated device stream: class 0 = benign communication graphs
	// (sparse, flat), class 1 = malware-like graphs (hub-dominated
	// command-and-control shape). PTC_FM-scale graphs keep each step a
	// few hundred microseconds.
	stream := graphhd.MustGenerateDataset("PROTEINS", graphhd.DatasetOptions{Seed: 11, GraphCount: streamLen})

	correct, seen := 0, 0
	for i, g := range stream.Graphs {
		label := stream.Labels[i]
		// Progressive validation: predict first (skip the cold start
		// before both classes have been observed). Prediction runs on the
		// packed path — bit-packed encoding, popcount-Hamming query
		// against a majority-voted snapshot refreshed after each Learn...
		if i >= 2 {
			if model.PredictPacked(g) == label {
				correct++
			}
			seen++
		}
		// ...then learn from the sample in O(|E|) — one encode + bundle.
		if _, err := model.Learn(g, label); err != nil {
			log.Fatal(err)
		}
		if seen > 0 && (i+1)%100 == 0 {
			fmt.Printf("after %3d samples: running accuracy %.3f\n", i+1, float64(correct)/float64(seen))
		}
	}
	fmt.Printf("\nfinal progressive accuracy over %d predictions: %.3f\n", seen, float64(correct)/float64(seen))
	fmt.Println("model state: one accumulator per class — memory is O(classes × dimension), independent of stream length")
}
