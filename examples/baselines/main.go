// Baselines: a miniature of the paper's Figure 3 — all five methods
// (GraphHD, 1-WL, WL-OA, GIN-ε, GIN-ε-JK) cross-validated on one dataset,
// printing the accuracy / training time / inference time trade-off that is
// the paper's headline result.
package main

import (
	"fmt"
	"log"
	"os"

	"graphhd/internal/eval"
	"graphhd/internal/experiments"
)

func main() {
	cells, err := experiments.RunFig3(experiments.Fig3Options{
		Datasets:   []string{"PTC_FM"},
		GraphCount: 120, // keep the quadratic kernels interactive
		Quick:      true,
		CV:         eval.CrossValidateOptions{Folds: 5, Repetitions: 1, Seed: 3},
		Seed:       3,
		Progress:   os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	experiments.WriteFig3(os.Stdout, cells)

	// Headline ratios, paper-style.
	var hd, slowestTrain, slowestInfer experiments.Fig3Cell
	for _, c := range cells {
		if c.Method == "GraphHD" {
			hd = c
		}
		if c.TrainTime > slowestTrain.TrainTime {
			slowestTrain = c
		}
		if c.InferPerG > slowestInfer.InferPerG {
			slowestInfer = c
		}
	}
	if hd.TrainTime > 0 {
		fmt.Printf("\nGraphHD trains %.1fx faster than %s and infers %.1fx faster than %s on this dataset\n",
			float64(slowestTrain.TrainTime)/float64(hd.TrainTime), slowestTrain.Method,
			float64(slowestInfer.InferPerG)/float64(hd.InferPerG), slowestInfer.Method)
	}
}
