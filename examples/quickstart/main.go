// Quickstart: build a few graphs by hand, train a GraphHD model, and
// classify a new graph — the smallest end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"graphhd"
)

func main() {
	// Two structural families: cycles and stars. GraphHD sees topology
	// only, so these are perfectly distinguishable.
	var graphs []*graphhd.Graph
	var labels []int
	for n := 6; n <= 15; n++ {
		graphs = append(graphs, cycle(n), star(n))
		labels = append(labels, 0, 1)
	}

	cfg := graphhd.DefaultConfig() // d = 10,000, 10 PageRank iterations
	model, err := graphhd.Train(cfg, graphs, labels)
	if err != nil {
		log.Fatal(err)
	}

	names := []string{"cycle", "star"}
	for _, n := range []int{9, 20} {
		for i, g := range []*graphhd.Graph{cycle(n), star(n)} {
			pred := model.Predict(g)
			fmt.Printf("%-5s with %2d vertices -> predicted %q (similarities %v)\n",
				names[i], n, names[pred], round3(model.Similarities(g)))
		}
	}
}

func cycle(n int) *graphhd.Graph {
	b := graphhd.NewGraphBuilder(n)
	for v := 0; v < n; v++ {
		b.MustAddEdge(v, (v+1)%n)
	}
	return b.Build()
}

func star(n int) *graphhd.Graph {
	b := graphhd.NewGraphBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v)
	}
	return b.Build()
}

func round3(xs []float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(int(x*1000)) / 1000
	}
	return out
}
