// Molecules: the chemistry workload from the paper's evaluation. Generates
// a MUTAG-like dataset (motif-chain molecules, two classes), runs the
// paper's cross-validation protocol on GraphHD, and then shows how the
// retraining extension (Future Work 1) trades a little training time for
// accuracy.
package main

import (
	"fmt"
	"log"

	"graphhd"
)

func main() {
	ds := graphhd.MustGenerateDataset("MUTAG", graphhd.DatasetOptions{Seed: 7})
	st := graphhd.ComputeDatasetStats(ds)
	fmt.Printf("dataset %s: %d molecules, %d classes, avg |V|=%.1f avg |E|=%.1f\n\n",
		st.Name, st.Graphs, st.Classes, st.AvgVertices, st.AvgEdges)

	cfg := graphhd.DefaultConfig()
	cfg.Dimension = 4096 // plenty for a dataset of this size; runs in seconds

	// Paper protocol (shrunk to 1 repetition to stay interactive).
	cv := graphhd.CVOptions{Folds: 10, Repetitions: 1, Seed: 7}

	base, err := graphhd.CrossValidate("GraphHD", ds, func(fold int, seed uint64) graphhd.Classifier {
		c := cfg
		c.Seed = seed
		return graphhd.NewGraphHDClassifier(c)
	}, cv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphHD            : accuracy %.3f ± %.3f, train/fold %v, infer/graph %v\n",
		base.MeanAccuracy(), base.StdAccuracy(), base.MeanTrainTime(), base.MeanInferTimePerGraph())

	// Retraining extension: perceptron-style updates after bundling.
	retrained, err := graphhd.CrossValidate("GraphHD+retrain", ds, func(fold int, seed uint64) graphhd.Classifier {
		c := cfg
		c.Seed = seed
		return &withRetraining{cfg: c, epochs: 10}
	}, cv)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GraphHD + retrain  : accuracy %.3f ± %.3f, train/fold %v, infer/graph %v\n",
		retrained.MeanAccuracy(), retrained.StdAccuracy(), retrained.MeanTrainTime(), retrained.MeanInferTimePerGraph())
}

// withRetraining wraps Train + Retrain behind the harness interface,
// accumulating per-epoch update counts across folds.
type withRetraining struct {
	cfg       graphhd.Config
	epochs    int
	model     *graphhd.Model
	epochsRun int
	updates   int
}

func (w *withRetraining) Fit(gs []*graphhd.Graph, labels []int) error {
	m, err := graphhd.Train(w.cfg, gs, labels)
	if err != nil {
		return err
	}
	updates, err := m.Retrain(gs, labels, graphhd.RetrainOptions{Epochs: w.epochs})
	if err != nil {
		return err
	}
	// Retrain stops early on an error-free epoch, so iterate the returned
	// slice — len(updates) <= w.epochs — never the requested budget.
	for ep := range updates {
		w.updates += updates[ep]
	}
	w.epochsRun += len(updates)
	w.model = m
	return nil
}

func (w *withRetraining) PredictAll(gs []*graphhd.Graph) []int {
	return w.model.PredictAll(gs)
}
