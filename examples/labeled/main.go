// Labeled: the paper's Future Work direction 2 — incorporating vertex
// labels into the encoding. Two datasets share identical topology
// statistics; in one the class signal lives only in the vertex labels.
// The baseline encoder is blind to it, the labeled extension is not.
package main

import (
	"fmt"
	"log"

	"graphhd"
)

func main() {
	ds := buildLabeledDataset(300, 21)

	run := func(name string, useLabels bool) {
		cfg := graphhd.DefaultConfig()
		cfg.Dimension = 4096
		cfg.UseVertexLabels = useLabels
		res, err := graphhd.CrossValidate(name, ds, func(fold int, seed uint64) graphhd.Classifier {
			c := cfg
			c.Seed = seed
			return graphhd.NewGraphHDClassifier(c)
		}, graphhd.CVOptions{Folds: 5, Repetitions: 1, Seed: 21})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s accuracy %.3f ± %.3f\n", name, res.MeanAccuracy(), res.StdAccuracy())
	}

	fmt.Println("class signal: vertex labels only (topology is i.i.d. across classes)")
	run("GraphHD (baseline)", false)
	run("GraphHD (labeled ext)", true)
}

// buildLabeledDataset: every graph is ER(24, 0.15); class c vertices carry
// label c with probability 0.8.
func buildLabeledDataset(count int, seed uint64) *graphhd.Dataset {
	rng := newRNG(seed)
	ds := &graphhd.Dataset{Name: "LBL", ClassNames: []string{"0", "1"}}
	for i := 0; i < count; i++ {
		c := i % 2
		const n = 24
		b := graphhd.NewGraphBuilder(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.15 {
					b.MustAddEdge(u, v)
				}
			}
		}
		labels := make([]int, n)
		for v := range labels {
			if rng.Float64() < 0.8 {
				labels[v] = c
			} else {
				labels[v] = 1 - c
			}
		}
		if err := b.SetVertexLabels(labels); err != nil {
			log.Fatal(err)
		}
		ds.Graphs = append(ds.Graphs, b.Build())
		ds.Labels = append(ds.Labels, c)
	}
	return ds
}

func newRNG(seed uint64) *graphhd.RNG {
	return graphhd.NewRNG(seed)
}
