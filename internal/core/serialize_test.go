package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"graphhd/internal/centrality"
)

func TestModelRoundTrip(t *testing.T) {
	gs, ys := twoClassDataset(20, 31)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := m.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	m2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Identical predictions and similarities on fresh graphs.
	testG, _ := twoClassDataset(10, 131)
	for i, g := range testG {
		if m.Predict(g) != m2.Predict(g) {
			t.Fatalf("prediction mismatch on graph %d", i)
		}
		a, b := m.Similarities(g), m2.Similarities(g)
		for c := range a {
			if a[c] != b[c] {
				t.Fatalf("similarity mismatch class %d: %v vs %v", c, a[c], b[c])
			}
		}
	}
	// Class vectors identical bit for bit.
	for c := 0; c < m.NumClasses(); c++ {
		if !m.ClassVector(c).Equal(m2.ClassVector(c)) {
			t.Fatalf("class %d vector differs after round trip", c)
		}
	}
}

func TestModelRoundTripPreservesConfig(t *testing.T) {
	cfg := testConfig()
	cfg.BipolarClassVectors = true
	cfg.UseVertexLabels = true
	cfg.Centrality = centrality.Degree
	cfg.PageRankIterations = 7
	cfg.PageRankDamping = 0.9
	cfg.Seed = 1234
	gs, ys := twoClassDataset(5, 32)
	m, err := Train(cfg, gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := m2.Encoder().Config()
	if got != cfg {
		t.Fatalf("config round trip: got %+v, want %+v", got, cfg)
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	gs, ys := twoClassDataset(10, 33)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.ghd")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	m2, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		if m.Predict(g) != m2.Predict(g) {
			t.Fatal("file round trip changed predictions")
		}
	}
}

func TestLoadModelFileMissing(t *testing.T) {
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "nope.ghd")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

func TestReadModelRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("short"),
		[]byte("NOTMAGIC________________________________"),
	}
	for i, c := range cases {
		if _, err := ReadModel(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestReadModelRejectsTruncated(t *testing.T) {
	gs, ys := twoClassDataset(5, 34)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{10, 40, len(full) / 2, len(full) - 1} {
		if _, err := ReadModel(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestModelRoundTripSupportsOnlineContinuation(t *testing.T) {
	// A loaded model must keep learning: accumulators are live state.
	gs, ys := twoClassDataset(10, 35)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	moreG, moreY := twoClassDataset(5, 36)
	for i, g := range moreG {
		if _, err := m2.Learn(g, moreY[i]); err != nil {
			t.Fatal(err)
		}
	}
	// And the continued model should still classify well.
	c := 0
	for i, g := range gs {
		if m2.Predict(g) == ys[i] {
			c++
		}
	}
	if float64(c)/float64(len(gs)) < 0.8 {
		t.Fatal("continued model degraded")
	}
}
