package core

import (
	"fmt"
	"sync/atomic"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/parallel"
)

// Model is a trained GraphHD classifier: one class vector per class held
// in an associative memory (Section III-B/C of the paper). Create one with
// Train or NewModel+Fit.
type Model struct {
	enc *Encoder
	am  *hdc.AssociativeMemory
	k   int
	// rev counts corrective online updates (Learn, OnlineUpdate, and
	// Retrain) applied after initial fitting. Snapshot stamps the current
	// value into the vended Predictor, so a snapshot taken before an
	// update round is distinguishable from the live model: skew shows up
	// as Model.Revision() > Predictor.Revision(). Fit/Train do not bump
	// it — a freshly fitted model is revision 0.
	rev atomic.Uint64
}

// NewModel returns an untrained model for k classes using encoder enc.
func NewModel(enc *Encoder, k int) (*Model, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive class count %d", k)
	}
	cfg := enc.Config()
	seeds := hdc.NewRNG(cfg.Seed ^ 0x5eed)
	return &Model{
		enc: enc,
		am:  hdc.NewAssociativeMemory(k, cfg.Dimension, seeds.Uint64(), cfg.BipolarClassVectors),
		k:   k,
	}, nil
}

// Encoder returns the model's encoder.
func (m *Model) Encoder() *Encoder { return m.enc }

// NumClasses returns the number of classes.
func (m *Model) NumClasses() int { return m.k }

// ClassVector returns the majority-voted bipolar class vector of class c.
func (m *Model) ClassVector(c int) *hdc.Bipolar { return m.am.ClassVector(c) }

// Learn encodes one labeled graph and bundles it into its class vector —
// the HDC online-learning primitive. It returns the graph-hypervector so
// callers (e.g. retraining loops) can reuse the encoding. Each call bumps
// the model revision.
func (m *Model) Learn(g *graph.Graph, label int) (*hdc.Bipolar, error) {
	if label < 0 || label >= m.k {
		return nil, fmt.Errorf("core: label %d out of range [0,%d)", label, m.k)
	}
	hv := m.enc.EncodeGraph(g)
	m.am.Learn(label, hv)
	m.rev.Add(1)
	return hv, nil
}

// Revision returns the number of online updates applied to the model since
// initial fitting. Compare against Predictor.Revision to detect a stale
// snapshot serving pre-update class vectors.
func (m *Model) Revision() uint64 { return m.rev.Load() }

// Fit trains on the whole set, encoding graphs in parallel across
// GOMAXPROCS goroutines (HDC operations are dimension-independent, the
// parallelism the paper highlights). Bundling into class vectors happens
// in deterministic input order, so the trained model is identical to
// sequential training.
func (m *Model) Fit(graphs []*graph.Graph, labels []int) error {
	if len(graphs) != len(labels) {
		return fmt.Errorf("core: %d graphs but %d labels", len(graphs), len(labels))
	}
	for _, l := range labels {
		if l < 0 || l >= m.k {
			return fmt.Errorf("core: label %d out of range [0,%d)", l, m.k)
		}
	}
	encoded := m.encodeAll(graphs)
	for i, hv := range encoded {
		m.am.Learn(labels[i], hv)
	}
	return nil
}

// encodeAll encodes graphs across the shared worker pool, preserving
// order. Work is distributed in contiguous chunks of encodeBatchChunk
// graphs, each encoded through one shared cross-graph operand plan
// (BatchScratch), so basis-table words are loaded once per chunk rather
// than once per graph; only the retained output hypervectors are
// allocated.
func (m *Model) encodeAll(graphs []*graph.Graph) []*hdc.Bipolar {
	m.enc.reserveFor(graphs)
	encoded := make([]*hdc.Bipolar, len(graphs))
	chunks := (len(graphs) + encodeBatchChunk - 1) / encodeBatchChunk
	workers := parallel.Workers(0, chunks)
	scratches := m.enc.newBatchScratchSet(workers)
	defer scratches.release()
	parallel.ForEachChunk(workers, len(graphs), encodeBatchChunk, func(w, lo, hi int) {
		scratches.get(w).encodeBipolarNew(graphs[lo:hi], encoded[lo:hi])
	})
	return encoded
}

// Predict returns the predicted class of g: the class whose vector is most
// similar to Enc(g). The encoding runs on a pooled scratch; the query
// vector is never retained, so steady-state prediction of unlabeled graphs
// allocates nothing.
func (m *Model) Predict(g *graph.Graph) int {
	s := m.enc.getScratch()
	defer m.enc.putScratch(s)
	return m.am.Classify(s.EncodeGraph(g))
}

// PredictEncoded classifies an already encoded graph-hypervector.
func (m *Model) PredictEncoded(hv *hdc.Bipolar) int {
	return m.am.Classify(hv)
}

// PredictAll classifies a batch of graphs in parallel, preserving order.
func (m *Model) PredictAll(graphs []*graph.Graph) []int {
	encoded := m.encodeAll(graphs)
	out := make([]int, len(encoded))
	for i, hv := range encoded {
		out[i] = m.am.Classify(hv)
	}
	return out
}

// Similarities returns δ(Enc(g), C_i) for every class i.
func (m *Model) Similarities(g *graph.Graph) []float64 {
	s := m.enc.getScratch()
	defer m.enc.putScratch(s)
	return m.am.Similarities(s.EncodeGraph(g))
}

// PredictPacked classifies g entirely in the packed domain: bit-packed
// encoding, then a popcount-Hamming query against a lazily refreshed
// majority-voted snapshot of the class accumulators. Unlike Snapshot, the
// cached snapshot follows later Learn/Unlearn calls, which makes this the
// online-learning inference path. Predictions match Predict bit for bit
// when the model uses bipolar (majority-voted) class vectors.
func (m *Model) PredictPacked(g *graph.Graph) int {
	s := m.enc.getScratch()
	defer m.enc.putScratch(s)
	return m.am.ClassifyPacked(s.EncodeGraphPacked(g))
}

// MemoryBytes returns the bytes held by the int32 class accumulators, the
// model's training-time state (k × d × 4).
func (m *Model) MemoryBytes() int {
	return m.k * m.enc.Dimension() * 4
}

// Train is the one-call convenience API: build an encoder and model from
// cfg and fit the training set. k is inferred as max(label)+1.
func Train(cfg Config, graphs []*graph.Graph, labels []int) (*Model, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("core: empty training set")
	}
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	enc, err := NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	m, err := NewModel(enc, k)
	if err != nil {
		return nil, err
	}
	if err := m.Fit(graphs, labels); err != nil {
		return nil, err
	}
	return m, nil
}
