package core

import (
	"bytes"
	"path/filepath"
	"testing"

	"graphhd/internal/dataset"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

func TestEncodeGraphPackedMatchesEncodeGraph(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	rng := hdc.NewRNG(41)
	graphs := []*graph.Graph{
		graph.ErdosRenyi(25, 0.2, rng),
		graph.BarabasiAlbert(20, 2, rng),
		graph.Ring(12),
		graph.Star(9),
		graph.NewBuilder(5).Build(), // edgeless fallback
		graph.NewBuilder(0).Build(), // empty fallback
	}
	for i, g := range graphs {
		if !enc.EncodeGraphPacked(g).Equal(enc.EncodeGraph(g).PackBinary()) {
			t.Fatalf("graph %d: packed encoding differs from packed reference", i)
		}
	}
}

func TestEncodeGraphPackedLabeledFallback(t *testing.T) {
	cfg := testConfig()
	cfg.UseVertexLabels = true
	enc := MustNewEncoder(cfg)
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(2, 3)
	if err := b.SetVertexLabels([]int{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !enc.EncodeGraphPacked(g).Equal(enc.EncodeGraph(g).PackBinary()) {
		t.Fatal("labeled fallback differs from packed reference")
	}
}

// TestPackedPredictorMatchesReference is the tentpole equivalence
// guarantee: on every synthetic Table-I dataset, the packed predictor's
// Predict and Similarities must match the int8 reference pipeline with
// BipolarClassVectors: true — the majority-voted semantics the snapshot
// freezes — bit for bit and float for float.
func TestPackedPredictorMatchesReference(t *testing.T) {
	for _, name := range dataset.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			count := 24
			if name == "DD" { // DD graphs are ~25× larger than the rest
				count = 8
			}
			ds, err := dataset.Generate(name, dataset.Options{Seed: 7, GraphCount: count})
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cfg.Dimension = 1024
			cfg.BipolarClassVectors = true
			m, err := Train(cfg, ds.Graphs, ds.Labels)
			if err != nil {
				t.Fatal(err)
			}
			pred := m.Snapshot()
			for i, g := range ds.Graphs {
				if got, want := pred.Predict(g), m.Predict(g); got != want {
					t.Fatalf("graph %d: packed %d, reference %d", i, got, want)
				}
				gotS, wantS := pred.Similarities(g), m.Similarities(g)
				for c := range wantS {
					if gotS[c] != wantS[c] {
						t.Fatalf("graph %d class %d: packed sim %v, reference %v", i, c, gotS[c], wantS[c])
					}
				}
			}
			batch := pred.PredictAll(ds.Graphs)
			for i := range batch {
				if batch[i] != m.Predict(ds.Graphs[i]) {
					t.Fatalf("batch graph %d differs from reference", i)
				}
			}
		})
	}
}

func TestSnapshotFreezesState(t *testing.T) {
	gs, ys := twoClassDataset(10, 51)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	before := make([]*hdc.Binary, m.NumClasses())
	for c := range before {
		before[c] = pred.ClassVector(c).Clone()
	}
	// Further learning must not leak into the snapshot.
	moreG, moreY := twoClassDataset(5, 52)
	for i, g := range moreG {
		if _, err := m.Learn(g, moreY[i]); err != nil {
			t.Fatal(err)
		}
	}
	for c := range before {
		if !pred.ClassVector(c).Equal(before[c]) {
			t.Fatalf("snapshot class %d changed after Learn", c)
		}
	}
	// A fresh snapshot picks the updates up.
	if m.Snapshot().ClassVector(0).Equal(before[0]) &&
		m.Snapshot().ClassVector(1).Equal(before[1]) {
		t.Fatal("fresh snapshot identical to stale one after 10 updates")
	}
}

func TestPredictPackedMatchesBipolarPredict(t *testing.T) {
	cfg := testConfig()
	cfg.BipolarClassVectors = true
	gs, ys := twoClassDataset(15, 53)
	m, err := Train(cfg, gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	testG, _ := twoClassDataset(10, 54)
	for i, g := range testG {
		if m.PredictPacked(g) != m.Predict(g) {
			t.Fatalf("graph %d: PredictPacked differs from Predict in bipolar mode", i)
		}
	}
	// And it must track online updates.
	if _, err := m.Learn(testG[0], 0); err != nil {
		t.Fatal(err)
	}
	for i, g := range testG {
		if m.PredictPacked(g) != m.Predict(g) {
			t.Fatalf("graph %d after update: PredictPacked stale", i)
		}
	}
}

func TestPredictorRoundTrip(t *testing.T) {
	gs, ys := twoClassDataset(15, 55)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	var buf bytes.Buffer
	n, err := pred.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(buf.Len()) != n {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	// Packed record is dramatically smaller than the full model.
	var full bytes.Buffer
	if _, err := m.WriteTo(&full); err != nil {
		t.Fatal(err)
	}
	if buf.Len()*16 > full.Len() {
		t.Fatalf("packed record %d bytes vs full %d: expected ≥16× smaller", buf.Len(), full.Len())
	}
	p2, err := ReadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Encoder().Config() != m.enc.Config() {
		t.Fatal("config did not round trip")
	}
	testG, _ := twoClassDataset(10, 56)
	for i, g := range testG {
		if pred.Predict(g) != p2.Predict(g) {
			t.Fatalf("graph %d: prediction changed after round trip", i)
		}
		a, b := pred.Similarities(g), p2.Similarities(g)
		for c := range a {
			if a[c] != b[c] {
				t.Fatalf("graph %d class %d: similarity changed after round trip", i, c)
			}
		}
	}
	for c := 0; c < pred.NumClasses(); c++ {
		if !pred.ClassVector(c).Equal(p2.ClassVector(c)) {
			t.Fatalf("class %d vector differs after round trip", c)
		}
	}
}

func TestReadPredictorAcceptsFullModelRecord(t *testing.T) {
	gs, ys := twoClassDataset(10, 57)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	pred, err := ReadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := m.Snapshot()
	for c := 0; c < want.NumClasses(); c++ {
		if !pred.ClassVector(c).Equal(want.ClassVector(c)) {
			t.Fatalf("class %d differs from direct snapshot", c)
		}
	}
}

func TestPredictorSaveLoadFile(t *testing.T) {
	gs, ys := twoClassDataset(10, 58)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	path := filepath.Join(t.TempDir(), "model.ghdp")
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	p2, err := LoadPredictorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range gs {
		if pred.Predict(g) != p2.Predict(g) {
			t.Fatal("file round trip changed predictions")
		}
	}
	if _, err := LoadPredictorFile(filepath.Join(t.TempDir(), "nope.ghdp")); err == nil {
		t.Fatal("expected missing-file error")
	}
}

func TestReadPredictorRejectsGarbageAndTruncation(t *testing.T) {
	if _, err := ReadPredictor(bytes.NewReader([]byte("NOTMAGIC________"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	gs, ys := twoClassDataset(5, 59)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := m.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, 20, len(full) / 2, len(full) - 1} {
		if _, err := ReadPredictor(bytes.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestPredictorMemoryBytes(t *testing.T) {
	gs, ys := twoClassDataset(5, 60)
	m, err := Train(testConfig(), gs, ys) // d = 2048, k = 2
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MemoryBytes(); got != 2*2048*4 {
		t.Fatalf("model MemoryBytes = %d", got)
	}
	pred := m.Snapshot()
	if got := pred.MemoryBytes(); got != 2*(2048/64)*8 {
		t.Fatalf("predictor MemoryBytes = %d", got)
	}
	if 32*pred.MemoryBytes() != m.MemoryBytes() {
		t.Fatal("packed footprint should be exactly 32× smaller at word-aligned d")
	}
}

func TestEncodeEdgeUsesOnlyEndpointVectors(t *testing.T) {
	// The labeled path must produce exactly two (rank,label) cache entries
	// for an edge lookup — the regression guard for EncodeEdge
	// materializing every vertex vector.
	cfg := testConfig()
	cfg.UseVertexLabels = true
	enc := MustNewEncoder(cfg)
	b := graph.NewBuilder(6)
	for v := 1; v < 6; v++ {
		b.MustAddEdge(0, v)
	}
	if err := b.SetVertexLabels([]int{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	edge := enc.EncodeEdge(g, 0, 1)
	if got := len(enc.labelVecs); got > 2 {
		t.Fatalf("EncodeEdge materialized %d vertex vectors, want ≤ 2", got)
	}
	vv := enc.VertexVectors(g)
	if !edge.Equal(vv[0].Bind(vv[1])) {
		t.Fatal("EncodeEdge no longer binds the endpoint vectors")
	}
}
