// Package core implements GraphHD, the paper's primary contribution: an
// encoder from graphs to hypervectors (PageRank-rank vertex identifiers,
// bind for edges, bundle for the whole graph) and the HDC classifier built
// on it, together with the retraining / multi-prototype / vertex-label
// extensions the paper lists as future work.
package core

import (
	"fmt"
	"sync"

	"graphhd/internal/centrality"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/pagerank"
)

// Config holds the GraphHD hyper-parameters. The zero value is *not*
// usable; call DefaultConfig for the paper's settings.
type Config struct {
	// Dimension of all hypervectors. The paper uses 10,000.
	Dimension int
	// PageRankIterations is the fixed number of power-iteration steps.
	// The paper uses 10 ("the accuracy of GraphHD has then plateaued").
	PageRankIterations int
	// PageRankDamping is the damping factor (paper-standard 0.85).
	PageRankDamping float64
	// Seed determines the basis hypervectors and tie-break vector.
	Seed uint64
	// BipolarClassVectors selects the strict paper formulation where class
	// vectors are majority-voted down to bipolar form before similarity
	// queries. When false (default), queries compare against the integer
	// accumulators, the common higher-precision variant.
	BipolarClassVectors bool
	// UseVertexLabels enables the labeled-graph extension (Future Work 2):
	// a vertex's hypervector becomes Bind(rankHV, labelHV) on labeled
	// graphs. Unlabeled graphs are unaffected.
	UseVertexLabels bool
	// Centrality selects the vertex-identifier metric. The zero value is
	// centrality.PageRank, the paper's choice; Degree, Eigenvector and
	// Closeness support the identifier ablation (A7 in DESIGN.md).
	Centrality centrality.Metric
}

// DefaultConfig returns the configuration used for every paper experiment.
func DefaultConfig() Config {
	return Config{
		Dimension:          10000,
		PageRankIterations: pagerank.DefaultIterations,
		PageRankDamping:    pagerank.DefaultDamping,
		Seed:               0x67726170686864, // "graphhd"
	}
}

func (c Config) validate() error {
	if c.Dimension <= 0 {
		return fmt.Errorf("core: non-positive dimension %d", c.Dimension)
	}
	if c.PageRankIterations <= 0 {
		return fmt.Errorf("core: non-positive PageRank iterations %d", c.PageRankIterations)
	}
	if c.PageRankDamping < 0 || c.PageRankDamping >= 1 {
		return fmt.Errorf("core: damping %f outside [0,1)", c.PageRankDamping)
	}
	return nil
}

// Encoder maps graphs to hypervectors, implementing Enc_G of Section IV.
// It is safe for concurrent use: the underlying item memories synchronize
// internally and encoding is otherwise stateless.
type Encoder struct {
	cfg       Config
	ranks     *hdc.ItemMemory // basis hypervectors indexed by centrality rank
	tie       *hdc.Bipolar    // deterministic bundling tie-break
	packedTie *hdc.Binary     // tie in bit form, for the packed pipeline
	prOpts    pagerank.Options

	// Labeled-extension state: one basis hypervector per (rank, label)
	// pair, generated from a keyed seed so that lookups are deterministic
	// and independent of access order. A plain Bind(rankHV, labelHV) would
	// NOT work: when both endpoints of an edge carry the same label, the
	// label hypervector cancels through the edge bind (L ⊙ L = 1), making
	// the encoding blind to uniform relabelings.
	labelSeed uint64
	labelMu   sync.Mutex
	labelVecs map[rankLabelKey]*hdc.Bipolar

	// Packed copies of the rank basis vectors for the bit-sliced fast
	// encoding path (see EncodeGraph). packed[r] is ranks.Vector(r) in
	// bit form; the slice only ever grows, guarded by packedMu.
	packedMu sync.RWMutex
	packed   []*hdc.Binary

	// scratch pools per-goroutine EncoderScratch values so the one-shot
	// encode/rank APIs run allocation-free in steady state; the batch APIs
	// check scratches out for a whole worker lifetime instead.
	scratch sync.Pool
	// batchScratch pools BatchScratch values for the cross-graph batch
	// encoding tier (EncodeBatch, the chunked Fit/PredictAll adopters).
	batchScratch sync.Pool
}

type rankLabelKey struct {
	rank, label int
}

// NewEncoder builds an encoder from cfg.
func NewEncoder(cfg Config) (*Encoder, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	seeds := hdc.NewRNG(cfg.Seed)
	e := &Encoder{
		cfg:       cfg,
		ranks:     hdc.NewItemMemory(cfg.Dimension, seeds.Uint64()),
		labelSeed: seeds.Uint64(),
		tie:       hdc.RandomBipolar(cfg.Dimension, hdc.NewRNG(seeds.Uint64())),
		labelVecs: make(map[rankLabelKey]*hdc.Bipolar),
		prOpts: pagerank.Options{
			Damping:    cfg.PageRankDamping,
			Iterations: cfg.PageRankIterations,
		},
	}
	e.packedTie = e.tie.PackBinary()
	e.scratch.New = func() any { return e.NewScratch() }
	e.batchScratch.New = func() any { return e.NewBatchScratch() }
	return e, nil
}

// MustNewEncoder is NewEncoder that panics on an invalid configuration;
// for use with compile-time-constant configs.
func MustNewEncoder(cfg Config) *Encoder {
	e, err := NewEncoder(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Config returns the encoder's configuration.
func (e *Encoder) Config() Config { return e.cfg }

// Dimension returns the hypervector dimensionality.
func (e *Encoder) Dimension() int { return e.cfg.Dimension }

// Tie returns the deterministic tie-break hypervector used for all
// bundling performed with this encoder.
func (e *Encoder) Tie() *hdc.Bipolar { return e.tie }

// Ranks returns the centrality ranks the encoder assigns to g's vertices
// under the configured metric. The returned slice is freshly allocated;
// intermediate buffers come from a pooled scratch.
func (e *Encoder) Ranks(g *graph.Graph) []int {
	s := e.getScratch()
	defer e.putScratch(s)
	return centrality.RanksInto(g, e.cfg.Centrality, centrality.Options{
		Iterations: e.prOpts.Iterations,
		Damping:    e.prOpts.Damping,
	}, make([]int, g.NumVertices()), &s.cent)
}

// VertexVectors returns Enc_v(v) for every vertex of g: the basis
// hypervector of the vertex's centrality rank, bound with its label
// hypervector when the labeled extension is active and g is labeled.
func (e *Encoder) VertexVectors(g *graph.Graph) []*hdc.Bipolar {
	ranks := e.Ranks(g)
	out := make([]*hdc.Bipolar, g.NumVertices())
	for v := range out {
		out[v] = e.vertexVector(g, v, ranks[v])
	}
	return out
}

// vertexVector returns Enc_v for a single vertex given its precomputed
// centrality rank, resolving the labeled extension when active.
func (e *Encoder) vertexVector(g *graph.Graph, v, rank int) *hdc.Bipolar {
	if e.cfg.UseVertexLabels && g.Labeled() {
		return e.rankLabelVector(rank, g.VertexLabel(v))
	}
	return e.ranks.Vector(rank)
}

// rankLabelVector returns the basis hypervector for a (rank, label) pair,
// generating it deterministically from a key-derived seed on first use.
func (e *Encoder) rankLabelVector(rank, label int) *hdc.Bipolar {
	key := rankLabelKey{rank, label}
	e.labelMu.Lock()
	defer e.labelMu.Unlock()
	if hv, ok := e.labelVecs[key]; ok {
		return hv
	}
	// Mix the key into the seed with two rounds of a splitmix-style
	// permutation so nearby (rank, label) pairs decorrelate fully.
	s := e.labelSeed ^ (uint64(uint32(rank)) | uint64(uint32(label))<<32)
	s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9
	s = (s ^ (s >> 27)) * 0x94d049bb133111eb
	hv := hdc.RandomBipolar(e.cfg.Dimension, hdc.NewRNG(s))
	e.labelVecs[key] = hv
	return hv
}

// EncodeGraph returns Enc_G(g): the bundle over all edges of the bind of
// the endpoint vertex hypervectors (Algorithm 1, lines 5-8, plus the
// bundle in line 8). An edgeless graph encodes to the bundle of its vertex
// hypervectors instead, so that degenerate graphs still produce a usable
// representation (the paper does not define this case; bundling vertices
// is the natural fallback and only affects empty-edge-set inputs).
//
// Unlabeled graphs — the paper's baseline setting — take a bit-sliced fast
// path: basis vectors are packed to bits once, each edge bind becomes a
// d/64-word XNOR, and majority counts accumulate in SWAR nibble/byte lanes
// (hdc.BitCounter). The result is bit-for-bit identical to the reference
// int8 pipeline, roughly an order of magnitude faster; encodeGraphSlow
// keeps the reference implementation alive for the labeled extension and
// for the equivalence tests.
func (e *Encoder) EncodeGraph(g *graph.Graph) *hdc.Bipolar {
	s := e.getScratch()
	defer e.putScratch(s)
	return s.encodeGraphNew(g)
}

// EncodeGraphPacked is EncodeGraph without the int8 detour: the bundle is
// majority-voted straight into bit-packed Binary form, so the hypervector
// stays d/64 words from encoding through classification. The result equals
// EncodeGraph(g).PackBinary() bit for bit on every input (the labeled and
// edgeless fallbacks pack the reference encoding).
func (e *Encoder) EncodeGraphPacked(g *graph.Graph) *hdc.Binary {
	s := e.getScratch()
	defer e.putScratch(s)
	return s.encodeGraphPackedNew(g)
}

// encodeGraphSlow is the reference int8 implementation of Enc_G.
func (e *Encoder) encodeGraphSlow(g *graph.Graph) *hdc.Bipolar {
	vvecs := e.VertexVectors(g)
	acc := hdc.NewAccumulator(e.cfg.Dimension)
	edges := g.Edges()
	if len(edges) == 0 {
		if len(vvecs) == 0 {
			// Empty graph: encode as the tie-break vector, a fixed
			// arbitrary point in hyperspace.
			return e.tie.Clone()
		}
		for _, hv := range vvecs {
			acc.Add(hv)
		}
		return acc.Sign(e.tie)
	}
	for _, ed := range edges {
		acc.Add(vvecs[ed.U].Bind(vvecs[ed.V]))
	}
	return acc.Sign(e.tie)
}

// packedSlice returns a snapshot of the packed basis table covering ranks
// [0, n), growing it if needed. Entries are immutable once created, so the
// snapshot stays valid after later growth; callers pay one lock round per
// graph instead of per edge.
func (e *Encoder) packedSlice(n int) []*hdc.Binary {
	e.packedMu.RLock()
	if n <= len(e.packed) {
		p := e.packed
		e.packedMu.RUnlock()
		return p
	}
	e.packedMu.RUnlock()
	e.packedMu.Lock()
	defer e.packedMu.Unlock()
	for len(e.packed) < n {
		e.packed = append(e.packed, e.ranks.Vector(len(e.packed)).PackBinary())
	}
	return e.packed
}

// EncodeEdge returns Enc_e((u,v)) = Enc_v(u) × Enc_v(v) for one edge of g.
// Exposed for diagnostics and tests; EncodeGraph is the hot path. Only the
// two endpoint vectors are materialized (centrality ranks are a whole-graph
// property and are still computed once).
func (e *Encoder) EncodeEdge(g *graph.Graph, u, v int) *hdc.Bipolar {
	ranks := e.Ranks(g)
	return e.vertexVector(g, u, ranks[u]).Bind(e.vertexVector(g, v, ranks[v]))
}

// reserveFor pre-materializes the rank basis vectors (and their packed
// copies) covering every vertex count in graphs, so parallel encoding
// workers take the read-lock fast path throughout.
func (e *Encoder) reserveFor(graphs []*graph.Graph) {
	maxN := 0
	packedPath := false
	for _, g := range graphs {
		if g.NumVertices() > maxN {
			maxN = g.NumVertices()
		}
		// Mirror edgeBitCounter's gate: any graph outside the labeled
		// extension will take the packed fast path.
		if !(e.cfg.UseVertexLabels && g.Labeled()) {
			packedPath = true
		}
	}
	e.ranks.Reserve(maxN)
	if packedPath {
		e.packedSlice(maxN)
	}
}
