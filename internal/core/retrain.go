package core

import (
	"errors"
	"fmt"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// ErrNonPositiveEpochs is returned by Retrain when opts.Epochs <= 0.
// Earlier versions silently substituted a default of 5 epochs, which made
// a zero-valued RetrainOptions indistinguishable from an explicit request
// — callers that compute an epoch budget and arrive at zero now hear
// about it instead of burning five passes.
var ErrNonPositiveEpochs = errors.New("core: retrain epochs must be positive")

// This file implements the paper's Future Work direction 1: trading some
// of GraphHD's efficiency for accuracy through techniques already known in
// HDC — perceptron-style retraining and multiple class vectors (prototypes)
// per class.

// RetrainOptions configures Retrain.
type RetrainOptions struct {
	// Epochs is the maximum number of passes over the training set. It
	// must be positive; Retrain returns ErrNonPositiveEpochs otherwise.
	Epochs int
	// Shuffle, when non-nil, permutes the sample order each epoch using
	// the given seed; nil keeps input order (deterministic either way).
	ShuffleSeed *uint64
}

// Retrain runs perceptron-style HDC retraining on a fitted model: for each
// training sample, if the model misclassifies it, the encoded hypervector
// is added to the correct class accumulator and subtracted from the
// mispredicted one.
//
// Contract: the returned slice holds the number of corrective updates per
// epoch actually run, in epoch order. Training stops early once an epoch
// is error-free, so len(updates) may be anywhere in [1, opts.Epochs] —
// callers must iterate over the returned slice, never assume
// len(updates) == opts.Epochs. Each corrective update bumps the model's
// revision counter (see Revision).
func (m *Model) Retrain(graphs []*graph.Graph, labels []int, opts RetrainOptions) ([]int, error) {
	if len(graphs) != len(labels) {
		return nil, fmt.Errorf("core: %d graphs but %d labels", len(graphs), len(labels))
	}
	if opts.Epochs <= 0 {
		return nil, fmt.Errorf("%w (got %d)", ErrNonPositiveEpochs, opts.Epochs)
	}
	epochs := opts.Epochs
	encoded := m.encodeAll(graphs)
	order := make([]int, len(graphs))
	for i := range order {
		order[i] = i
	}
	var rng *hdc.RNG
	if opts.ShuffleSeed != nil {
		rng = hdc.NewRNG(*opts.ShuffleSeed)
	}
	var updates []int
	for ep := 0; ep < epochs; ep++ {
		if rng != nil {
			perm := rng.Perm(len(order))
			for i := range order {
				order[i] = perm[i]
			}
		}
		n := 0
		for _, i := range order {
			pred := m.am.Classify(encoded[i])
			if pred != labels[i] {
				m.am.Learn(labels[i], encoded[i])
				m.am.Unlearn(pred, encoded[i])
				n++
			}
		}
		updates = append(updates, n)
		if n > 0 {
			m.rev.Add(uint64(n))
		}
		if n == 0 {
			break
		}
	}
	return updates, nil
}

// OnlineUpdate applies one perceptron-style update from a single labeled
// graph: encode, classify, and — only if mispredicted — bundle the
// hypervector into the correct class and subtract it from the mispredicted
// one, exactly the per-sample step Retrain runs in bulk. It reports
// whether the model changed; a corrective update bumps the revision
// counter. This is the streaming-feedback primitive: pair it with
// PredictPacked for serving-side online learning. Like all training
// methods, it requires single-writer discipline (one goroutine mutating
// the model; concurrent readers are fine).
func (m *Model) OnlineUpdate(g *graph.Graph, label int) (bool, error) {
	if label < 0 || label >= m.k {
		return false, fmt.Errorf("core: label %d out of range [0,%d)", label, m.k)
	}
	s := m.enc.getScratch()
	defer m.enc.putScratch(s)
	hv := s.EncodeGraph(g)
	pred := m.am.Classify(hv)
	if pred == label {
		return false, nil
	}
	m.am.Learn(label, hv)
	m.am.Unlearn(pred, hv)
	m.rev.Add(1)
	return true, nil
}

// MultiPrototypeModel extends GraphHD with multiple class vectors per
// class. Each class holds up to protos accumulators; a training sample is
// bundled into the most similar prototype of its class (or a fresh one if
// capacity remains), and inference takes the best similarity over all
// prototypes of each class. This is the second accuracy-for-efficiency
// trade suggested by the paper's future work.
type MultiPrototypeModel struct {
	enc    *Encoder
	k      int
	protos int
	accs   [][]*hdc.Accumulator // accs[class][prototype]
	tie    *hdc.Bipolar
}

// NewMultiPrototypeModel returns an untrained multi-prototype model with
// up to protos prototypes for each of k classes.
func NewMultiPrototypeModel(enc *Encoder, k, protos int) (*MultiPrototypeModel, error) {
	if k <= 0 {
		return nil, fmt.Errorf("core: non-positive class count %d", k)
	}
	if protos <= 0 {
		return nil, fmt.Errorf("core: non-positive prototype count %d", protos)
	}
	return &MultiPrototypeModel{
		enc:    enc,
		k:      k,
		protos: protos,
		accs:   make([][]*hdc.Accumulator, k),
		tie:    enc.Tie(),
	}, nil
}

// NumClasses returns the number of classes.
func (m *MultiPrototypeModel) NumClasses() int { return m.k }

// NumPrototypes returns the number of prototypes currently allocated for
// class c.
func (m *MultiPrototypeModel) NumPrototypes(c int) int { return len(m.accs[c]) }

// Fit trains on the whole set in input order.
func (m *MultiPrototypeModel) Fit(graphs []*graph.Graph, labels []int) error {
	if len(graphs) != len(labels) {
		return fmt.Errorf("core: %d graphs but %d labels", len(graphs), len(labels))
	}
	for i, g := range graphs {
		if err := m.Learn(g, labels[i]); err != nil {
			return err
		}
	}
	return nil
}

// Learn bundles one labeled graph into the nearest prototype of its class,
// creating a new prototype while capacity remains.
func (m *MultiPrototypeModel) Learn(g *graph.Graph, label int) error {
	if label < 0 || label >= m.k {
		return fmt.Errorf("core: label %d out of range [0,%d)", label, m.k)
	}
	hv := m.enc.EncodeGraph(g)
	ps := m.accs[label]
	if len(ps) < m.protos {
		acc := hdc.NewAccumulator(m.enc.Dimension())
		acc.Add(hv)
		m.accs[label] = append(ps, acc)
		return nil
	}
	best, bestSim := 0, ps[0].CosineToSums(hv)
	for i := 1; i < len(ps); i++ {
		if s := ps[i].CosineToSums(hv); s > bestSim {
			best, bestSim = i, s
		}
	}
	ps[best].Add(hv)
	return nil
}

// Predict returns the class whose best prototype is most similar to
// Enc(g). Classes with no prototypes are skipped; an untrained model
// predicts class 0.
func (m *MultiPrototypeModel) Predict(g *graph.Graph) int {
	hv := m.enc.EncodeGraph(g)
	bestClass, bestSim := 0, -2.0
	for c, ps := range m.accs {
		for _, p := range ps {
			if s := p.CosineToSums(hv); s > bestSim {
				bestClass, bestSim = c, s
			}
		}
	}
	return bestClass
}

// PredictAll classifies a batch of graphs, preserving order.
func (m *MultiPrototypeModel) PredictAll(graphs []*graph.Graph) []int {
	out := make([]int, len(graphs))
	for i, g := range graphs {
		out[i] = m.Predict(g)
	}
	return out
}
