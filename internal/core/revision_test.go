package core

import (
	"bytes"
	"errors"
	"testing"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// TestRevisionDetectsStaleSnapshot is the regression test for the
// stale-snapshot hazard: a Predictor vended before online updates keeps
// serving the old class vectors, and before revision stamping there was
// no way to observe the skew.
func TestRevisionDetectsStaleSnapshot(t *testing.T) {
	gs, ys := twoClassDataset(20, 11)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if m.Revision() != 0 {
		t.Fatalf("freshly fitted model revision = %d, want 0", m.Revision())
	}
	stale := m.Snapshot()
	if stale.Revision() != 0 {
		t.Fatalf("pre-update snapshot revision = %d, want 0", stale.Revision())
	}

	// Hard problem so retraining actually applies corrective updates.
	rng := hdc.NewRNG(8)
	var hg []*graph.Graph
	var hy []int
	for i := 0; i < 20; i++ {
		hg = append(hg, graph.ErdosRenyi(20, 0.10, rng))
		hy = append(hy, 0)
		hg = append(hg, graph.ErdosRenyi(20, 0.18, rng))
		hy = append(hy, 1)
	}
	updates, err := m.Retrain(hg, hy, RetrainOptions{Epochs: 5})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range updates {
		total += n
	}
	if total == 0 {
		t.Skip("retraining applied no corrective updates; problem too easy")
	}
	if got := m.Revision(); got != uint64(total) {
		t.Fatalf("model revision = %d, want %d (one per corrective update)", got, total)
	}
	// The skew is now observable: the old snapshot's stamp trails the
	// live model.
	if stale.Revision() >= m.Revision() {
		t.Fatalf("stale snapshot revision %d not behind model revision %d",
			stale.Revision(), m.Revision())
	}
	fresh := m.Snapshot()
	if fresh.Revision() != m.Revision() {
		t.Fatalf("fresh snapshot revision = %d, want %d", fresh.Revision(), m.Revision())
	}

	// Learn bumps too.
	before := m.Revision()
	if _, err := m.Learn(hg[0], hy[0]); err != nil {
		t.Fatal(err)
	}
	if m.Revision() != before+1 {
		t.Fatalf("Learn bumped revision %d -> %d, want +1", before, m.Revision())
	}
}

// TestRevisionSerializeRoundTrip pins the GRAPHHD4 record: a revised
// snapshot round-trips its revision (and cascade config), while a
// revision-0 snapshot still writes the byte-identical GRAPHHD2/3 records
// earlier releases produced.
func TestRevisionSerializeRoundTrip(t *testing.T) {
	gs, ys := twoClassDataset(20, 12)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Force at least one corrective update deterministically.
	for i := range gs {
		wrong := 1 - ys[i]
		if up, err := m.OnlineUpdate(gs[i], wrong); err != nil {
			t.Fatal(err)
		} else if up {
			break
		}
	}
	if m.Revision() == 0 {
		t.Fatal("could not force a corrective update")
	}
	p := m.Snapshot()

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != "GRAPHHD4" {
		t.Fatalf("revised snapshot magic = %q, want GRAPHHD4", got)
	}
	back, err := ReadPredictor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Revision() != p.Revision() {
		t.Fatalf("round-trip revision = %d, want %d", back.Revision(), p.Revision())
	}
	if _, has := back.Cascade(); has {
		t.Fatal("round-trip grew a cascade from zero fields")
	}
	for _, g := range gs {
		if back.Predict(g) != p.Predict(g) {
			t.Fatal("round-trip predictions diverge")
		}
	}

	// With a cascade configured the GRAPHHD4 record carries both.
	if err := p.SetCascade(Cascade{DPrefix: 1024, Margin: 7}); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err = ReadPredictor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	casc, has := back.Cascade()
	if !has || casc.DPrefix != 1024 || casc.Margin != 7 {
		t.Fatalf("round-trip cascade = %+v (present %v)", casc, has)
	}
	if back.Revision() != p.Revision() {
		t.Fatalf("round-trip revision = %d, want %d", back.Revision(), p.Revision())
	}

	// Revision-0 snapshots keep the legacy magic so existing artifacts
	// stay byte-identical.
	m2, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := m2.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != "GRAPHHD2" {
		t.Fatalf("revision-0 snapshot magic = %q, want GRAPHHD2", got)
	}
}

func TestRetrainNonPositiveEpochs(t *testing.T) {
	gs, ys := twoClassDataset(4, 9)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for _, epochs := range []int{0, -3} {
		_, err := m.Retrain(gs, ys, RetrainOptions{Epochs: epochs})
		if !errors.Is(err, ErrNonPositiveEpochs) {
			t.Fatalf("Epochs=%d: err = %v, want ErrNonPositiveEpochs", epochs, err)
		}
	}
	if m.Revision() != 0 {
		t.Fatalf("rejected retrain bumped revision to %d", m.Revision())
	}
}

// TestRetrainEarlyStopContract pins the documented shape of the updates
// slice: one entry per epoch actually run, early stop recording a final
// zero-update epoch, never more entries than the epoch budget.
func TestRetrainEarlyStopContract(t *testing.T) {
	gs, ys := twoClassDataset(20, 13)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 50
	updates, err := m.Retrain(gs, ys, RetrainOptions{Epochs: budget})
	if err != nil {
		t.Fatal(err)
	}
	if len(updates) < 1 || len(updates) > budget {
		t.Fatalf("len(updates) = %d, want in [1,%d]", len(updates), budget)
	}
	if len(updates) < budget && updates[len(updates)-1] != 0 {
		t.Fatalf("early stop without an error-free final epoch: %v", updates)
	}
}

func TestOnlineUpdate(t *testing.T) {
	gs, ys := twoClassDataset(20, 14)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.OnlineUpdate(gs[0], -1); err == nil {
		t.Fatal("label -1 accepted")
	}
	if _, err := m.OnlineUpdate(gs[0], m.NumClasses()); err == nil {
		t.Fatal("label k accepted")
	}
	if m.Revision() != 0 {
		t.Fatalf("rejected updates bumped revision to %d", m.Revision())
	}
	// A correctly-predicted sample must not mutate the model; a
	// wrongly-labeled one must.
	for _, g := range gs {
		pred := m.Predict(g)
		up, err := m.OnlineUpdate(g, pred)
		if err != nil {
			t.Fatal(err)
		}
		if up {
			t.Fatal("agreeing sample reported an update")
		}
		wrong := (pred + 1) % m.NumClasses()
		before := m.Revision()
		up, err = m.OnlineUpdate(g, wrong)
		if err != nil {
			t.Fatal(err)
		}
		if !up || m.Revision() != before+1 {
			t.Fatalf("disagreeing sample: updated=%v revision %d -> %d", up, before, m.Revision())
		}
		break
	}
}
