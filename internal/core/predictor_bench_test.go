package core

import (
	"testing"

	"graphhd/internal/dataset"
	"graphhd/internal/hdc"
)

// The Predict benchmarks isolate the associative-memory query — the step
// the packed refactor moves from an int8 multiply-accumulate to popcount
// Hamming — at the paper's scale: d = 10,000, 6 classes (ENZYMES), with
// the query hypervector pre-encoded so encoding cost (identical on both
// paths) is excluded. BipolarClassVectors selects the majority-voted int8
// reference, the semantics the packed path reproduces bit for bit.

func benchModel(b *testing.B) *Model {
	b.Helper()
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 1, GraphCount: 60})
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig() // d = 10,000
	cfg.BipolarClassVectors = true
	m, err := Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchQuery(b *testing.B, m *Model) *hdc.Bipolar {
	b.Helper()
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	return m.enc.EncodeGraph(ds.Graphs[0])
}

// BenchmarkPredictInt8 measures the int8 reference query path.
func BenchmarkPredictInt8(b *testing.B) {
	m := benchModel(b)
	hv := benchQuery(b, m)
	m.PredictEncoded(hv) // warm the signed class-vector cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PredictEncoded(hv)
	}
}

// BenchmarkPredictPacked measures the packed query path on the same model
// and query.
func BenchmarkPredictPacked(b *testing.B) {
	m := benchModel(b)
	pred := m.Snapshot()
	hv := benchQuery(b, m).PackBinary()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.PredictEncoded(hv)
	}
}

// BenchmarkPredictEndToEndInt8 and ...Packed time the full pipeline —
// PageRank, encoding, query — per graph, the deployment-relevant latency.
func BenchmarkPredictEndToEndInt8(b *testing.B) {
	m := benchModel(b)
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	g := ds.Graphs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(g)
	}
}

func BenchmarkPredictEndToEndPacked(b *testing.B) {
	m := benchModel(b)
	pred := m.Snapshot()
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	g := ds.Graphs[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.Predict(g)
	}
}
