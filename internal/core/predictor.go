package core

import (
	"fmt"
	"sync/atomic"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/parallel"
)

// Predictor is an immutable packed-inference snapshot of a trained Model:
// class vectors majority-voted down to bit-packed Binary form, queried by
// popcount Hamming distance on hypervectors that stay bit-packed from
// encoding through classification. It is the deployment artifact — the
// whole query path runs on d/64 uint64 words, an 8× smaller query memory
// and a far cheaper inner loop than the int8 reference pipeline, with
// predictions bit-for-bit identical to a Model configured with
// BipolarClassVectors: true (exactly the majority-voted semantics the
// snapshot freezes).
//
// A Predictor does not learn; keep the Model for training/retraining and
// re-snapshot after updates. Predictors are safe for concurrent use,
// including concurrent SetCascade/ClearCascade reconfiguration.
type Predictor struct {
	enc *Encoder
	pm  *hdc.PackedMemory
	// cascade, when non-nil, enables two-stage prefix-sliced
	// classification (see cascade.go). Atomic so serving traffic can race
	// with reconfiguration.
	cascade atomic.Pointer[cascadeState]
	// revision is the source model's online-update count at snapshot
	// time (zero for freshly fitted models and pre-revision artifacts).
	// Immutable once set; see Model.Revision.
	revision uint64
}

// Snapshot freezes the model's current class accumulators into a packed
// query predictor, stamped with the model's revision at snapshot time so
// staleness relative to further online updates stays detectable.
func (m *Model) Snapshot() *Predictor {
	// Revision is read before the class vectors: under a racy snapshot the
	// stamp can only under-count, so staleness is over-reported, never
	// missed. (With the documented single-writer discipline the two are
	// exact.)
	rev := m.rev.Load()
	return &Predictor{enc: m.enc, pm: m.am.Snapshot(), revision: rev}
}

// newPredictor assembles a predictor from deserialized parts.
func newPredictor(enc *Encoder, classes []*hdc.Binary) (*Predictor, error) {
	pm, err := hdc.NewPackedMemory(classes)
	if err != nil {
		return nil, err
	}
	if pm.Dim() != enc.Dimension() {
		return nil, fmt.Errorf("core: class dimension %d does not match encoder dimension %d",
			pm.Dim(), enc.Dimension())
	}
	return &Predictor{enc: enc, pm: pm}, nil
}

// Encoder returns the predictor's encoder.
func (p *Predictor) Encoder() *Encoder { return p.enc }

// Revision returns the source model's online-update count at snapshot
// time. A serving snapshot whose revision trails the live model's
// Revision() is stale: it predates online updates and serves the old
// class vectors. Zero for predictors snapshotted from never-updated
// models and for artifacts predating revision stamping.
func (p *Predictor) Revision() uint64 { return p.revision }

// Dimension returns the hypervector dimensionality of the model — the
// full query width (cascade stage 1, when configured, runs at
// Cascade().DPrefix of it).
func (p *Predictor) Dimension() int { return p.pm.Dim() }

// NumClasses returns the number of classes.
func (p *Predictor) NumClasses() int { return p.pm.NumClasses() }

// ClassVector returns the packed class vector of class c (shared;
// read-only).
func (p *Predictor) ClassVector(c int) *hdc.Binary { return p.pm.ClassVector(c) }

// MemoryBytes returns the bytes held by the packed class vectors — the
// predictor's entire query-time model state (k × d/8, rounded up to
// words). Compare Model.MemoryBytes.
func (p *Predictor) MemoryBytes() int { return p.pm.MemoryBytes() }

// Predict returns the predicted class of g. The graph is encoded directly
// to a bit-packed hypervector held in a pooled scratch and classified by
// Hamming distance; no int8 intermediate is materialized and steady-state
// prediction of unlabeled graphs performs zero heap allocations.
func (p *Predictor) Predict(g *graph.Graph) int {
	s := p.enc.getScratch()
	defer p.enc.putScratch(s)
	return p.pm.Classify(s.EncodeGraphPacked(g))
}

// PredictEncoded classifies an already packed graph-hypervector.
func (p *Predictor) PredictEncoded(hv *hdc.Binary) int {
	return p.pm.Classify(hv)
}

// PredictWith classifies g through a caller-owned scratch, the serving
// primitive: a long-lived worker holds one scratch for its lifetime and
// predicts with zero per-request heap allocations and zero pool traffic.
// Encoding runs the blocked carry-save edge accumulation (rank-pair
// grouping + hdc.BitCounter.AddXorPairs), so the scratch's grouping
// buffers amortize across the worker's whole request stream. s must have
// been vended by p.Encoder().NewScratch(); the result is written into s's
// buffers, so s must not be shared across goroutines.
func (p *Predictor) PredictWith(s *EncoderScratch, g *graph.Graph) int {
	return p.pm.Classify(s.EncodeGraphPacked(g))
}

// PredictAll classifies a batch of graphs across the shared worker pool,
// preserving order. Each worker owns one pooled EncoderScratch, so the
// whole batch encodes and classifies without per-graph heap allocations.
func (p *Predictor) PredictAll(graphs []*graph.Graph) []int {
	return p.PredictAllWorkers(graphs, 0)
}

// PredictAllWorkers is PredictAll with an explicit worker count, following
// the parallel.Workers convention: non-positive uses all cores, and
// workers == 1 classifies sequentially on the calling goroutine (timing
// fidelity). Note this differs from CrossValidateOptions.Workers, whose
// zero value stays sequential.
func (p *Predictor) PredictAllWorkers(graphs []*graph.Graph, workers int) []int {
	p.enc.reserveFor(graphs)
	out := make([]int, len(graphs))
	chunks := (len(graphs) + encodeBatchChunk - 1) / encodeBatchChunk
	w := parallel.Workers(workers, chunks)
	scratches := p.enc.newBatchScratchSet(w)
	defer scratches.release()
	parallel.ForEachChunk(w, len(graphs), encodeBatchChunk, func(w, lo, hi int) {
		p.PredictBatchWith(scratches.get(w), graphs[lo:hi], out[lo:hi])
	})
	return out
}

// Similarities returns δ(Enc(g), C_i) for every class i: exactly the
// cosine values the bipolar reference path reports, computed as
// 1 - 2*Hamming/d in the packed domain.
func (p *Predictor) Similarities(g *graph.Graph) []float64 {
	s := p.enc.getScratch()
	defer p.enc.putScratch(s)
	return p.pm.Similarities(s.EncodeGraphPacked(g))
}

// SimilaritiesEncoded returns the class similarities of an already packed
// query hypervector.
func (p *Predictor) SimilaritiesEncoded(hv *hdc.Binary) []float64 {
	return p.pm.Similarities(hv)
}
