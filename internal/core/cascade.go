package core

import (
	"fmt"
	"time"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// Prefix-sliced cascade classification (DESIGN.md §2c).
//
// Majority bundling and XNOR binding are componentwise, so the first
// dPrefix components of any full-width encoding are bit-identical to the
// encoding a dPrefix-dimensional model built from the same basis prefix
// would produce. A predictor can therefore classify at a fraction of
// full cost by encoding only the first ⌈dPrefix/64⌉ words of the SAME
// basis vectors — no second basis table, no re-encode — and consulting
// prefix copies of its class vectors. Hamming-similarity classification
// degrades gracefully as d shrinks (the paper's central accuracy–
// dimension trade), so most graphs are decided correctly at stage 1; the
// ambiguous rest — those whose top-two Hamming margin at prefix width
// falls inside a calibrated band — escalate to the full dimension.

// MinCascadePrefix is the smallest stage-1 dimension a cascade accepts:
// below one word of components the margin signal is pure noise.
const MinCascadePrefix = 64

// Cascade configures two-stage prefix-sliced classification on a
// Predictor: classify every graph at dimension DPrefix first, escalate
// to the full dimension only when the stage-1 top-two Hamming margin is
// at most Margin. Margin 0 still escalates exact near-ties; calibrate
// per dataset with internal/eval's CalibrateCascade for accuracy matched
// to the full-dimension baseline.
type Cascade struct {
	// DPrefix is the stage-1 dimension: the number of leading components
	// (not necessarily a multiple of 64 — the tail word is masked) of the
	// full basis used for the first pass.
	DPrefix int
	// Margin is the escalation threshold: a stage-1 decision whose
	// runner-up is within Margin Hamming distance of the winner is
	// re-decided at full dimension. Must be non-negative.
	Margin int
}

// Validate checks c against a model of dimension d, with the error text
// cmd/graphhd-serve and model loading surface to operators.
func (c Cascade) Validate(d int) error {
	if c.DPrefix < MinCascadePrefix {
		return fmt.Errorf("core: cascade prefix dimension %d below the minimum %d", c.DPrefix, MinCascadePrefix)
	}
	if c.DPrefix >= d {
		return fmt.Errorf("core: cascade prefix dimension %d must be smaller than the model dimension %d", c.DPrefix, d)
	}
	if c.Margin < 0 {
		return fmt.Errorf("core: negative cascade margin %d", c.Margin)
	}
	return nil
}

// cascadeState is the immutable per-configuration snapshot behind a
// predictor's cascade pointer: the config plus the prefix-sliced class
// vectors (canonical tail-masked copies, built once per SetCascade).
type cascadeState struct {
	cfg Cascade
	pm  *hdc.PackedMemory
}

// SetCascade enables prefix-sliced cascade classification, building the
// stage-1 prefix query memory from the predictor's class vectors. The
// swap is atomic: concurrent predictions see either the old or the new
// configuration, never a mix.
func (p *Predictor) SetCascade(c Cascade) error {
	if err := c.Validate(p.Dimension()); err != nil {
		return err
	}
	ppm, err := p.pm.Prefix(c.DPrefix)
	if err != nil {
		return err
	}
	p.cascade.Store(&cascadeState{cfg: c, pm: ppm})
	return nil
}

// ClearCascade disables cascade classification; predictions revert to
// single-stage full-dimension queries.
func (p *Predictor) ClearCascade() { p.cascade.Store(nil) }

// Cascade returns the active cascade configuration, if any.
func (p *Predictor) Cascade() (Cascade, bool) {
	if cs := p.cascade.Load(); cs != nil {
		return cs.cfg, true
	}
	return Cascade{}, false
}

// PrefixSnapshot returns a packed query memory over the first d
// components of every class vector — what calibration sweeps query when
// choosing a cascade margin. See hdc.PackedMemory.Prefix.
func (p *Predictor) PrefixSnapshot(d int) (*hdc.PackedMemory, error) {
	return p.pm.Prefix(d)
}

// PredictCascadeWith classifies g through the two-stage cascade using a
// caller-owned scratch, reporting whether the decision escalated to full
// dimension. Without an active cascade it behaves as PredictWith (never
// escalated). The stage-1 winner is returned directly when its margin
// clears the band; otherwise the decision is re-made at full width
// against the full class vectors — identical to PredictWith. The
// centrality ranking and rank-pair grouping are width-independent, so an
// escalation reuses stage 1's prepared groups and pays only the second
// accumulate + sign, not a second ranking pass.
func (p *Predictor) PredictCascadeWith(s *EncoderScratch, g *graph.Graph) (class int, escalated bool) {
	cs := p.cascade.Load()
	if cs == nil {
		return p.PredictWith(s, g), false
	}
	if !s.prepareGroups(g) {
		// Labeled-extension and edgeless graphs sit outside the packed
		// fast path; decide them at full width, counted as escalations.
		return p.PredictWith(s, g), true
	}
	e := p.enc
	out := s.prefixOut(cs.cfg.DPrefix)
	s.counter.SetDim(cs.cfg.DPrefix)
	if s.smallSignReady() {
		s.counter.SignXorPairsSmallInto(s.pairs, e.packedTie, out)
	} else {
		s.feedCounter()
		s.counter.SignBinaryInto(e.packedTie, out)
	}
	s.counter.SetDim(e.cfg.Dimension)
	best, _, bestH, secondH := cs.pm.ClassifyTop2(out)
	if secondH-bestH > cs.cfg.Margin {
		return best, false
	}
	var hv *hdc.Binary
	if s.smallSignReady() {
		hv = s.counter.SignXorPairsSmallInto(s.pairs, e.packedTie, s.packed)
	} else {
		s.feedCounter()
		hv = s.counter.SignBinaryInto(e.packedTie, s.packed)
	}
	return p.pm.Classify(hv), true
}

// PredictBatchCascadeWith is the serving cascade primitive: it encodes
// the whole micro-batch ONCE at stage-1 width through the shared operand
// plan, returns every unambiguous stage-1 answer, and escalates only the
// ambiguous graphs to full width — reusing the batch's already-computed
// centrality ranks and rank-pair grouping, so an escalation pays one
// extra full-width sign, not a second ranking pass. Classes land in out
// (len(out) must equal len(graphs)); the counts of stage-1 decisions and
// escalations feed the serve metrics. Graphs outside the packed fast
// path (labeled extension, edgeless) are decided at full dimension and
// counted as escalations. Without an active cascade it falls back to
// PredictBatchWith and reports zero for both counters.
func (p *Predictor) PredictBatchCascadeWith(s *BatchScratch, graphs []*graph.Graph, out []int) (stage1, escalated int) {
	return p.PredictBatchCascadeTraced(s, graphs, out, nil)
}

// PredictBatchCascadeTraced is PredictBatchCascadeWith with an optional
// stage clock: when tr is non-nil, the plan/encode/classify/escalate
// phase wall times land in it. The cascade runs in four phases — plan at
// stage-1 width, sign every graph into per-graph prefix buffers, run the
// stage-1 margin test over all of them collecting the ambiguous indices,
// then escalate that worklist at full width — so each stamp is one clock
// read per phase, never per graph. Classes and counters are identical to
// PredictBatchCascadeWith.
func (p *Predictor) PredictBatchCascadeTraced(s *BatchScratch, graphs []*graph.Graph, out []int, tr *BatchTrace) (stage1, escalated int) {
	cs := p.cascade.Load()
	if cs == nil {
		p.PredictBatchTraced(s, graphs, out, tr)
		return 0, 0
	}
	if s.enc != p.enc {
		panic("core: batch scratch bound to a different encoder")
	}
	if len(out) != len(graphs) {
		panic(fmt.Sprintf("core: %d results for %d graphs", len(out), len(graphs)))
	}
	dp := cs.cfg.DPrefix
	full := p.enc.cfg.Dimension
	var t time.Time
	if tr != nil {
		t = time.Now()
	}
	s.planBatchWidth(graphs, dp)
	if tr != nil {
		t = tr.stamp(&tr.PlanNanos, t)
	}
	// Encode phase: sign every fast-path graph at stage-1 width into its
	// own prefix buffer; graphs outside the packed fast path join the
	// escalation worklist (decided at full dimension below, counted as
	// escalations, exactly as the per-graph path does).
	pouts := s.prefixOuts(dp, len(graphs))
	s.counter.SetDim(dp)
	s.fbIdx = s.fbIdx[:0]
	for gi := range graphs {
		if !s.signPackedInto(gi, pouts[gi]) {
			s.fbIdx = append(s.fbIdx, int32(gi))
		}
	}
	if tr != nil {
		t = tr.stamp(&tr.EncodeNanos, t)
	}
	// Classify phase: the stage-1 margin test. Ambiguous graphs are only
	// recorded here; the full-width work is batched into the next phase.
	s.escIdx = s.escIdx[:0]
	for gi := range graphs {
		if s.keyOff[gi] == s.keyOff[gi+1] {
			continue // outside the fast path, already on fbIdx
		}
		best, _, bestH, secondH := cs.pm.ClassifyTop2(pouts[gi])
		if secondH-bestH > cs.cfg.Margin {
			out[gi] = best
			stage1++
		} else {
			s.escIdx = append(s.escIdx, int32(gi))
		}
	}
	if tr != nil {
		t = tr.stamp(&tr.ClassifyNanos, t)
	}
	// Escalate phase: re-sign the ambiguous graphs at full width straight
	// off the basis table (the plan slab is prefix-width, but the sorted
	// key segments and basis snapshot are width-independent), then decide
	// the fallback graphs through the reference encoder (pooled scratch;
	// the batch counter's width is untouched). Restores the counter's
	// full-width invariant for PredictBatchWith.
	s.counter.SetDim(full)
	for _, gi := range s.escIdx {
		s.signDirectInto(int(gi), s.packed)
		out[gi] = p.pm.Classify(s.packed)
		escalated++
	}
	for _, gi := range s.fbIdx {
		out[gi] = p.pm.Classify(p.enc.EncodeGraphPacked(graphs[gi]))
		escalated++
	}
	if tr != nil {
		tr.stamp(&tr.EscalateNanos, t)
	}
	return stage1, escalated
}
