package core

import (
	"fmt"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// Prefix-sliced cascade classification (DESIGN.md §2c).
//
// Majority bundling and XNOR binding are componentwise, so the first
// dPrefix components of any full-width encoding are bit-identical to the
// encoding a dPrefix-dimensional model built from the same basis prefix
// would produce. A predictor can therefore classify at a fraction of
// full cost by encoding only the first ⌈dPrefix/64⌉ words of the SAME
// basis vectors — no second basis table, no re-encode — and consulting
// prefix copies of its class vectors. Hamming-similarity classification
// degrades gracefully as d shrinks (the paper's central accuracy–
// dimension trade), so most graphs are decided correctly at stage 1; the
// ambiguous rest — those whose top-two Hamming margin at prefix width
// falls inside a calibrated band — escalate to the full dimension.

// MinCascadePrefix is the smallest stage-1 dimension a cascade accepts:
// below one word of components the margin signal is pure noise.
const MinCascadePrefix = 64

// Cascade configures two-stage prefix-sliced classification on a
// Predictor: classify every graph at dimension DPrefix first, escalate
// to the full dimension only when the stage-1 top-two Hamming margin is
// at most Margin. Margin 0 still escalates exact near-ties; calibrate
// per dataset with internal/eval's CalibrateCascade for accuracy matched
// to the full-dimension baseline.
type Cascade struct {
	// DPrefix is the stage-1 dimension: the number of leading components
	// (not necessarily a multiple of 64 — the tail word is masked) of the
	// full basis used for the first pass.
	DPrefix int
	// Margin is the escalation threshold: a stage-1 decision whose
	// runner-up is within Margin Hamming distance of the winner is
	// re-decided at full dimension. Must be non-negative.
	Margin int
}

// Validate checks c against a model of dimension d, with the error text
// cmd/graphhd-serve and model loading surface to operators.
func (c Cascade) Validate(d int) error {
	if c.DPrefix < MinCascadePrefix {
		return fmt.Errorf("core: cascade prefix dimension %d below the minimum %d", c.DPrefix, MinCascadePrefix)
	}
	if c.DPrefix >= d {
		return fmt.Errorf("core: cascade prefix dimension %d must be smaller than the model dimension %d", c.DPrefix, d)
	}
	if c.Margin < 0 {
		return fmt.Errorf("core: negative cascade margin %d", c.Margin)
	}
	return nil
}

// cascadeState is the immutable per-configuration snapshot behind a
// predictor's cascade pointer: the config plus the prefix-sliced class
// vectors (canonical tail-masked copies, built once per SetCascade).
type cascadeState struct {
	cfg Cascade
	pm  *hdc.PackedMemory
}

// SetCascade enables prefix-sliced cascade classification, building the
// stage-1 prefix query memory from the predictor's class vectors. The
// swap is atomic: concurrent predictions see either the old or the new
// configuration, never a mix.
func (p *Predictor) SetCascade(c Cascade) error {
	if err := c.Validate(p.Dimension()); err != nil {
		return err
	}
	ppm, err := p.pm.Prefix(c.DPrefix)
	if err != nil {
		return err
	}
	p.cascade.Store(&cascadeState{cfg: c, pm: ppm})
	return nil
}

// ClearCascade disables cascade classification; predictions revert to
// single-stage full-dimension queries.
func (p *Predictor) ClearCascade() { p.cascade.Store(nil) }

// Cascade returns the active cascade configuration, if any.
func (p *Predictor) Cascade() (Cascade, bool) {
	if cs := p.cascade.Load(); cs != nil {
		return cs.cfg, true
	}
	return Cascade{}, false
}

// PrefixSnapshot returns a packed query memory over the first d
// components of every class vector — what calibration sweeps query when
// choosing a cascade margin. See hdc.PackedMemory.Prefix.
func (p *Predictor) PrefixSnapshot(d int) (*hdc.PackedMemory, error) {
	return p.pm.Prefix(d)
}

// PredictCascadeWith classifies g through the two-stage cascade using a
// caller-owned scratch, reporting whether the decision escalated to full
// dimension. Without an active cascade it behaves as PredictWith (never
// escalated). The stage-1 winner is returned directly when its margin
// clears the band; otherwise the decision is re-made at full width
// against the full class vectors — identical to PredictWith. The
// centrality ranking and rank-pair grouping are width-independent, so an
// escalation reuses stage 1's prepared groups and pays only the second
// accumulate + sign, not a second ranking pass.
func (p *Predictor) PredictCascadeWith(s *EncoderScratch, g *graph.Graph) (class int, escalated bool) {
	cs := p.cascade.Load()
	if cs == nil {
		return p.PredictWith(s, g), false
	}
	if !s.prepareGroups(g) {
		// Labeled-extension and edgeless graphs sit outside the packed
		// fast path; decide them at full width, counted as escalations.
		return p.PredictWith(s, g), true
	}
	e := p.enc
	out := s.prefixOut(cs.cfg.DPrefix)
	s.counter.SetDim(cs.cfg.DPrefix)
	if s.smallSignReady() {
		s.counter.SignXorPairsSmallInto(s.pairs, e.packedTie, out)
	} else {
		s.feedCounter()
		s.counter.SignBinaryInto(e.packedTie, out)
	}
	s.counter.SetDim(e.cfg.Dimension)
	best, _, bestH, secondH := cs.pm.ClassifyTop2(out)
	if secondH-bestH > cs.cfg.Margin {
		return best, false
	}
	var hv *hdc.Binary
	if s.smallSignReady() {
		hv = s.counter.SignXorPairsSmallInto(s.pairs, e.packedTie, s.packed)
	} else {
		s.feedCounter()
		hv = s.counter.SignBinaryInto(e.packedTie, s.packed)
	}
	return p.pm.Classify(hv), true
}

// PredictBatchCascadeWith is the serving cascade primitive: it encodes
// the whole micro-batch ONCE at stage-1 width through the shared operand
// plan, returns every unambiguous stage-1 answer, and escalates only the
// ambiguous graphs to full width — reusing the batch's already-computed
// centrality ranks and rank-pair grouping, so an escalation pays one
// extra full-width sign, not a second ranking pass. Classes land in out
// (len(out) must equal len(graphs)); the counts of stage-1 decisions and
// escalations feed the serve metrics. Graphs outside the packed fast
// path (labeled extension, edgeless) are decided at full dimension and
// counted as escalations. Without an active cascade it falls back to
// PredictBatchWith and reports zero for both counters.
func (p *Predictor) PredictBatchCascadeWith(s *BatchScratch, graphs []*graph.Graph, out []int) (stage1, escalated int) {
	cs := p.cascade.Load()
	if cs == nil {
		p.PredictBatchWith(s, graphs, out)
		return 0, 0
	}
	if s.enc != p.enc {
		panic("core: batch scratch bound to a different encoder")
	}
	if len(out) != len(graphs) {
		panic(fmt.Sprintf("core: %d results for %d graphs", len(out), len(graphs)))
	}
	dp := cs.cfg.DPrefix
	full := p.enc.cfg.Dimension
	s.planBatchWidth(graphs, dp)
	s.counter.SetDim(dp)
	pbuf := s.prefixOut(dp)
	for gi, g := range graphs {
		if !s.signPackedInto(gi, pbuf) {
			// Reference fallback, full dimension (pooled scratch; the
			// batch counter's width is untouched).
			out[gi] = p.pm.Classify(p.enc.EncodeGraphPacked(g))
			escalated++
			continue
		}
		best, _, bestH, secondH := cs.pm.ClassifyTop2(pbuf)
		if secondH-bestH > cs.cfg.Margin {
			out[gi] = best
			stage1++
			continue
		}
		// Escalate: re-sign this graph at full width straight off the
		// basis table (the plan slab is prefix-width, but the sorted key
		// segments and basis snapshot are width-independent).
		s.counter.SetDim(full)
		s.signDirectInto(gi, s.packed)
		out[gi] = p.pm.Classify(s.packed)
		s.counter.SetDim(dp)
		escalated++
	}
	s.counter.SetDim(full) // restore the full-width invariant for PredictBatchWith
	return stage1, escalated
}
