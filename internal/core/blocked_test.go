package core

import (
	"testing"

	"graphhd/internal/dataset"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// encodePackedScalarReference is the pre-blocking edge loop: per-edge
// AddXor in edge order, no grouping, no carry-save front end. It is the
// oracle the blocked path must match bit for bit.
func encodePackedScalarReference(enc *Encoder, g *graph.Graph) *hdc.Binary {
	ranks := enc.Ranks(g)
	packed := enc.packedSlice(g.NumVertices())
	c := hdc.NewBitCounter(enc.Dimension())
	for _, ed := range g.Edges() {
		c.AddXor(packed[ranks[ed.U]], packed[ranks[ed.V]], true)
	}
	return c.SignBinary(enc.packedTie)
}

// TestBlockedEncodeMatchesScalarAllDatasets pins the tentpole acceptance
// criterion: on every synthetic Table-I dataset the rank-pair-grouped,
// carry-save-blocked edge accumulation produces encodings bit-for-bit
// identical to the per-edge scalar AddXor path, and the packed output
// equals the bipolar output packed.
func TestBlockedEncodeMatchesScalarAllDatasets(t *testing.T) {
	for _, name := range dataset.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			count := 12
			if name == "DD" { // DD graphs are ~25× larger than the rest
				count = 4
			}
			ds, err := dataset.Generate(name, dataset.Options{Seed: 11, GraphCount: count})
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cfg.Dimension = 1024
			enc := MustNewEncoder(cfg)
			s := enc.NewScratch()
			for i, g := range ds.Graphs {
				if g.NumEdges() == 0 {
					continue // edgeless graphs bypass the counter entirely
				}
				want := encodePackedScalarReference(enc, g)
				if got := s.EncodeGraphPacked(g); !got.Equal(want) {
					t.Fatalf("graph %d: blocked packed encode differs from scalar AddXor reference", i)
				}
				if got := s.EncodeGraph(g).PackBinary(); !got.Equal(want) {
					t.Fatalf("graph %d: blocked bipolar encode differs from scalar AddXor reference", i)
				}
			}
		})
	}
}

// TestBlockedEncodeAllocationFree asserts the other half of the
// acceptance criterion on every dataset shape: once the scratch's
// grouping buffers have grown, steady-state encoding and serving-style
// prediction (PredictWith, no pool involved) allocate nothing — including
// under the race detector, which is why this test takes no raceEnabled
// skip.
func TestBlockedEncodeAllocationFree(t *testing.T) {
	gs, ys := twoClassDataset(12, 77)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	s := pred.Encoder().NewScratch()
	for _, g := range gs {
		pred.PredictWith(s, g) // grow scratch buffers and the basis table
	}
	if allocs := testing.AllocsPerRun(30, func() {
		for _, g := range gs {
			s.EncodeGraphPacked(g)
		}
	}); allocs != 0 {
		t.Fatalf("blocked EncodeGraphPacked allocated %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(30, func() {
		for _, g := range gs {
			pred.PredictWith(s, g)
		}
	}); allocs != 0 {
		t.Fatalf("PredictWith allocated %v times per run, want 0", allocs)
	}
}

// TestFillCounterGroupsMultiplicity exercises AddXorWeighted through the
// encoder: with centrality ranks forming a bijection, every rank pair is
// distinct on simple graphs, so the weighted branch is reached via a
// crafted rank collision — two edges whose endpoint rank pairs coincide
// after the unordered normalization (u,v) and (v,u).
func TestFillCounterGroupsMultiplicity(t *testing.T) {
	// A 4-cycle: edges (0,1),(1,2),(2,3),(0,3). Whatever the rank
	// bijection, all four unordered rank pairs are distinct — the grouped
	// path must reproduce the scalar reference exactly (multiplicities all
	// 1). This guards the run-length grouping logic itself: off-by-one
	// grouping would double- or drop-count an edge.
	g, err := graph.FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Dimension = 512
	enc := MustNewEncoder(cfg)
	s := enc.NewScratch()
	want := encodePackedScalarReference(enc, g)
	if !s.EncodeGraphPacked(g).Equal(want) {
		t.Fatal("grouped encode of 4-cycle differs from scalar reference")
	}
}
