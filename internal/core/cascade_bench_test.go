package core

import (
	"testing"

	"graphhd/internal/dataset"
)

// BenchmarkPredictBatchCascade times the offline two-stage batch path
// against BenchmarkPredictBatchFull on the same 32-graph MUTAG workload
// the serve benchmarks use, isolating the cascade win from engine
// dispatch overhead.
func BenchmarkPredictBatchCascade(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	m, err := Train(DefaultConfig(), ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	pred := m.Snapshot()
	if err := pred.SetCascade(Cascade{DPrefix: 1024, Margin: 12}); err != nil {
		b.Fatal(err)
	}
	s := pred.Encoder().NewBatchScratch()
	graphs := ds.Graphs[:32]
	out := make([]int, len(graphs))
	pred.PredictBatchCascadeWith(s, graphs, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.PredictBatchCascadeWith(s, graphs, out)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(graphs)), "ns/graph")
}

// BenchmarkPredictBatchFull is the single-stage full-dimension twin.
func BenchmarkPredictBatchFull(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	m, err := Train(DefaultConfig(), ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	pred := m.Snapshot()
	s := pred.Encoder().NewBatchScratch()
	graphs := ds.Graphs[:32]
	out := make([]int, len(graphs))
	pred.PredictBatchWith(s, graphs, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred.PredictBatchWith(s, graphs, out)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(graphs)), "ns/graph")
}
