package core

import (
	"testing"

	"graphhd/internal/dataset"
	"graphhd/internal/graph"
)

// TestBatchEncodeMatchesSingleAllDatasets pins the tentpole acceptance
// criterion for the cross-graph batch pipeline: on every synthetic
// Table-I dataset, EncodeBatch — one shared, deduplicated operand plan
// per batch — produces encodings bit-for-bit identical to the per-graph
// EncodeGraphPacked path, for batch sizes that exercise a lone graph,
// partial carry-save blocks, full micro-batches, and ragged tails, and
// PredictBatchWith classifies identically to per-graph Predict.
func TestBatchEncodeMatchesSingleAllDatasets(t *testing.T) {
	for _, name := range dataset.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			count := 33 // a full 32-batch plus a ragged tail of 1
			if name == "DD" {
				count = 9 // DD graphs are ~25× larger than the rest
			}
			ds, err := dataset.Generate(name, dataset.Options{Seed: 19, GraphCount: count})
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cfg.Dimension = 1024
			enc := MustNewEncoder(cfg)
			single := enc.NewScratch()
			bs := enc.NewBatchScratch()
			for _, size := range []int{1, 7, 32} {
				for lo := 0; lo < len(ds.Graphs); lo += size {
					hi := min(lo+size, len(ds.Graphs))
					batch := ds.Graphs[lo:hi]
					outs := bs.EncodeBatch(batch)
					if len(outs) != len(batch) {
						t.Fatalf("size %d: %d outputs for %d graphs", size, len(outs), len(batch))
					}
					for i, g := range batch {
						if want := single.EncodeGraphPacked(g); !outs[i].Equal(want) {
							t.Fatalf("size %d: graph %d batch encoding differs from per-graph path", size, lo+i)
						}
					}
				}
			}

			// The pooled public API returns retained clones with the same bits.
			outs := enc.EncodeBatch(ds.Graphs[:min(7, len(ds.Graphs))])
			for i, o := range outs {
				if want := single.EncodeGraphPacked(ds.Graphs[i]); !o.Equal(want) {
					t.Fatalf("Encoder.EncodeBatch graph %d differs from per-graph path", i)
				}
			}

			// Batch classification matches per-graph prediction exactly.
			m, err := Train(cfg, ds.Graphs, ds.Labels)
			if err != nil {
				t.Fatal(err)
			}
			pred := m.Snapshot()
			pbs := pred.Encoder().NewBatchScratch()
			got := make([]int, len(ds.Graphs))
			pred.PredictBatchWith(pbs, ds.Graphs, got)
			for i, g := range ds.Graphs {
				if want := pred.Predict(g); got[i] != want {
					t.Fatalf("PredictBatchWith[%d] = %d, want %d", i, got[i], want)
				}
			}
			if all := pred.PredictAll(ds.Graphs); !equalInts(all, got) {
				t.Fatalf("PredictAll disagrees with PredictBatchWith")
			}
		})
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestBatchEncodeMixedFallbacks checks the plan's exclusion path: a batch
// mixing fast-path graphs with edgeless graphs (and, under the labeled
// extension, labeled graphs) still matches the per-graph encoder on every
// slot.
func TestBatchEncodeMixedFallbacks(t *testing.T) {
	edgeless, err := graph.FromEdges(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	ring, err := graph.FromEdges(6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	lb := graph.NewBuilder(4)
	lb.MustAddEdge(0, 1)
	lb.MustAddEdge(1, 2)
	lb.MustAddEdge(2, 3)
	if err := lb.SetVertexLabels([]int{0, 1, 0, 1}); err != nil {
		t.Fatal(err)
	}
	labeled := lb.Build()

	for _, useLabels := range []bool{false, true} {
		cfg := testConfig()
		cfg.Dimension = 512
		cfg.UseVertexLabels = useLabels
		enc := MustNewEncoder(cfg)
		batch := []*graph.Graph{ring, edgeless, labeled, ring, edgeless}
		outs := enc.NewBatchScratch().EncodeBatch(batch)
		for i, g := range batch {
			if want := enc.EncodeGraphPacked(g); !outs[i].Equal(want) {
				t.Fatalf("useLabels=%v: batch slot %d differs from per-graph path", useLabels, i)
			}
		}
	}
}

// TestBatchEncodeAllocationFree asserts the batch scratch tier's
// steady-state property: once plan, key and output buffers have grown,
// EncodeBatch and PredictBatchWith perform zero heap allocations per
// batch — including under the race detector (the scratch is caller-owned,
// no pool involved).
func TestBatchEncodeAllocationFree(t *testing.T) {
	gs, ys := twoClassDataset(16, 41)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	enc := pred.Encoder()
	bs := enc.NewBatchScratch()
	out := make([]int, len(gs))
	bs.EncodeBatch(gs) // grow scratch buffers and the basis table
	pred.PredictBatchWith(bs, gs, out)
	if allocs := testing.AllocsPerRun(30, func() {
		bs.EncodeBatch(gs)
	}); allocs != 0 {
		t.Fatalf("EncodeBatch allocated %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(30, func() {
		pred.PredictBatchWith(bs, gs, out)
	}); allocs != 0 {
		t.Fatalf("PredictBatchWith allocated %v times per run, want 0", allocs)
	}
}

// TestBatchScratchReuseAcrossBatchSizes guards buffer-reset bugs: a
// scratch that has planned a large batch must still encode smaller and
// differently shaped batches correctly (stale offsets or slab contents
// would surface as wrong encodings).
func TestBatchScratchReuseAcrossBatchSizes(t *testing.T) {
	gs, _ := twoClassDataset(20, 5)
	cfg := testConfig()
	cfg.Dimension = 768
	enc := MustNewEncoder(cfg)
	single := enc.NewScratch()
	bs := enc.NewBatchScratch()
	for _, batch := range [][]*graph.Graph{gs, gs[:3], gs[7:9], gs, gs[:1]} {
		outs := bs.EncodeBatch(batch)
		for i, g := range batch {
			if want := single.EncodeGraphPacked(g); !outs[i].Equal(want) {
				t.Fatalf("reused scratch: slot %d differs from per-graph path", i)
			}
		}
	}
}

// TestPredictBatchWithPanics pins the misuse contracts of the serving
// batch primitive.
func TestPredictBatchWithPanics(t *testing.T) {
	gs, ys := twoClassDataset(4, 9)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("length mismatch", func() {
		pred.PredictBatchWith(pred.Encoder().NewBatchScratch(), gs, make([]int, 1))
	})
	other := MustNewEncoder(testConfig())
	expectPanic("foreign scratch", func() {
		pred.PredictBatchWith(other.NewBatchScratch(), gs, make([]int, len(gs)))
	})
}
