package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"graphhd/internal/centrality"
)

// Model serialization. A trained GraphHD model is remarkably small: the
// basis hypervectors regenerate deterministically from the seed, so only
// the configuration and the integer class accumulators need storing —
// k × dimension int32 values plus a fixed-size header. A 6-class model at
// the paper's d = 10,000 serializes to ~240 KB.
//
// Format (little endian):
//
//	magic   [8]byte  "GRAPHHD1"
//	dim     uint32
//	prIters uint32
//	damping float64
//	seed    uint64
//	flags   uint32   bit0 = bipolar class vectors, bit1 = use vertex labels
//	metric  uint32   centrality metric
//	k       uint32   class count
//	k × { count int64, dim × sum int32 }
//
// The labeled-extension (rank, label) cache regenerates lazily from the
// seed, so labeled models round-trip too.

var modelMagic = [8]byte{'G', 'R', 'A', 'P', 'H', 'H', 'D', '1'}

const (
	flagBipolarCV uint32 = 1 << iota
	flagUseLabels
)

// WriteTo serializes the model. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	cfg := m.enc.Config()
	var flags uint32
	if cfg.BipolarClassVectors {
		flags |= flagBipolarCV
	}
	if cfg.UseVertexLabels {
		flags |= flagUseLabels
	}
	fields := []any{
		modelMagic,
		uint32(cfg.Dimension),
		uint32(cfg.PageRankIterations),
		cfg.PageRankDamping,
		cfg.Seed,
		flags,
		uint32(cfg.Centrality),
		uint32(m.k),
	}
	for _, f := range fields {
		if err := write(f); err != nil {
			return n, fmt.Errorf("core: serialize header: %w", err)
		}
	}
	for c := 0; c < m.k; c++ {
		acc := m.am.ClassAccumulator(c)
		if err := write(int64(acc.Count())); err != nil {
			return n, fmt.Errorf("core: serialize class %d: %w", c, err)
		}
		if err := write(acc.Sums()); err != nil {
			return n, fmt.Errorf("core: serialize class %d: %w", c, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("core: serialize flush: %w", err)
	}
	return n, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	if _, err := m.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadModel deserializes a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	read := func(v any) error {
		return binary.Read(br, binary.LittleEndian, v)
	}
	var magic [8]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("core: read model magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("core: bad model magic %q", magic)
	}
	var dim, prIters, flags, metric, k uint32
	var damping float64
	var seed uint64
	for _, v := range []any{&dim, &prIters, &damping, &seed, &flags, &metric, &k} {
		if err := read(v); err != nil {
			return nil, fmt.Errorf("core: read model header: %w", err)
		}
	}
	if dim == 0 || dim > 1<<24 {
		return nil, fmt.Errorf("core: implausible dimension %d", dim)
	}
	if k == 0 || k > 1<<16 {
		return nil, fmt.Errorf("core: implausible class count %d", k)
	}
	cfg := Config{
		Dimension:           int(dim),
		PageRankIterations:  int(prIters),
		PageRankDamping:     damping,
		Seed:                seed,
		BipolarClassVectors: flags&flagBipolarCV != 0,
		UseVertexLabels:     flags&flagUseLabels != 0,
		Centrality:          centrality.Metric(metric),
	}
	enc, err := NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	m, err := NewModel(enc, int(k))
	if err != nil {
		return nil, err
	}
	sums := make([]int32, dim)
	for c := 0; c < int(k); c++ {
		var count int64
		if err := read(&count); err != nil {
			return nil, fmt.Errorf("core: read class %d count: %w", c, err)
		}
		if err := read(sums); err != nil {
			return nil, fmt.Errorf("core: read class %d sums: %w", c, err)
		}
		if err := m.am.LoadClass(c, sums, int(count)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// LoadModelFile reads a model from path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	defer f.Close()
	return ReadModel(f)
}
