package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"graphhd/internal/centrality"
	"graphhd/internal/hdc"
)

// Model serialization. A trained GraphHD model is remarkably small: the
// basis hypervectors regenerate deterministically from the seed, so only
// the configuration and the per-class state need storing. Three record
// versions share one header layout (little endian):
//
//	magic   [8]byte  "GRAPHHD1" (full model), "GRAPHHD2" (packed
//	                 predictor), or "GRAPHHD3" (packed + cascade config)
//	dim     uint32
//	prIters uint32
//	damping float64
//	seed    uint64
//	flags   uint32   bit0 = bipolar class vectors, bit1 = use vertex labels
//	metric  uint32   centrality metric
//	k       uint32   class count
//
// A GRAPHHD1 body stores the live int32 class accumulators — k × { count
// int64, dim × sum int32 } — so the model keeps learning after a reload
// (~240 KB for 6 classes at d = 10,000). A GRAPHHD2 body stores the
// majority-voted class vectors bit-packed — k × ⌈dim/64⌉ uint64 words —
// the query-only deployment form (~7.5 KB for the same model, 32× less).
//
// A GRAPHHD3 record is a GRAPHHD2 packed predictor that additionally
// carries its cascade configuration — dprefix uint32 + margin uint32
// between the header and the class words — so a calibrated two-stage
// deployment (see cascade.go) survives save/load without re-calibration.
// Predictor.WriteTo emits GRAPHHD3 exactly when a cascade is set.
//
// A GRAPHHD4 record carries the model revision (see Model.Revision): a
// revision uint64 followed by the cascade pair — dprefix uint32 + margin
// uint32, zeroes meaning no cascade — then the packed class words.
// Predictor.WriteTo emits GRAPHHD4 exactly when revision > 0, so
// artifacts from never-updated models stay byte-identical to earlier
// releases; snapshots taken after online updates round-trip their
// staleness marker.
//
// The labeled-extension (rank, label) cache regenerates lazily from the
// seed, so labeled models round-trip too.

var (
	modelMagic    = [8]byte{'G', 'R', 'A', 'P', 'H', 'H', 'D', '1'}
	packedMagic   = [8]byte{'G', 'R', 'A', 'P', 'H', 'H', 'D', '2'}
	cascadeMagic  = [8]byte{'G', 'R', 'A', 'P', 'H', 'H', 'D', '3'}
	revisionMagic = [8]byte{'G', 'R', 'A', 'P', 'H', 'H', 'D', '4'}
)

const (
	flagBipolarCV uint32 = 1 << iota
	flagUseLabels
)

// writeHeader serializes the shared record header.
func writeHeader(write func(any) error, magic [8]byte, cfg Config, k int) error {
	var flags uint32
	if cfg.BipolarClassVectors {
		flags |= flagBipolarCV
	}
	if cfg.UseVertexLabels {
		flags |= flagUseLabels
	}
	fields := []any{
		magic,
		uint32(cfg.Dimension),
		uint32(cfg.PageRankIterations),
		cfg.PageRankDamping,
		cfg.Seed,
		flags,
		uint32(cfg.Centrality),
		uint32(k),
	}
	for _, f := range fields {
		if err := write(f); err != nil {
			return fmt.Errorf("core: serialize header: %w", err)
		}
	}
	return nil
}

// readHeaderBody deserializes everything after the magic bytes of the
// shared header, returning the config and class count.
func readHeaderBody(read func(any) error) (Config, int, error) {
	var dim, prIters, flags, metric, k uint32
	var damping float64
	var seed uint64
	for _, v := range []any{&dim, &prIters, &damping, &seed, &flags, &metric, &k} {
		if err := read(v); err != nil {
			return Config{}, 0, fmt.Errorf("core: read model header: %w", err)
		}
	}
	if dim == 0 || dim > 1<<24 {
		return Config{}, 0, fmt.Errorf("core: implausible dimension %d", dim)
	}
	if k == 0 || k > 1<<16 {
		return Config{}, 0, fmt.Errorf("core: implausible class count %d", k)
	}
	cfg := Config{
		Dimension:           int(dim),
		PageRankIterations:  int(prIters),
		PageRankDamping:     damping,
		Seed:                seed,
		BipolarClassVectors: flags&flagBipolarCV != 0,
		UseVertexLabels:     flags&flagUseLabels != 0,
		Centrality:          centrality.Metric(metric),
	}
	return cfg, int(k), nil
}

// WriteTo serializes the model. It implements io.WriterTo.
func (m *Model) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	if err := writeHeader(write, modelMagic, m.enc.Config(), m.k); err != nil {
		return n, err
	}
	for c := 0; c < m.k; c++ {
		acc := m.am.ClassAccumulator(c)
		if err := write(int64(acc.Count())); err != nil {
			return n, fmt.Errorf("core: serialize class %d: %w", c, err)
		}
		if err := write(acc.Sums()); err != nil {
			return n, fmt.Errorf("core: serialize class %d: %w", c, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("core: serialize flush: %w", err)
	}
	return n, nil
}

// SaveFile writes the model to path.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save model: %w", err)
	}
	if _, err := m.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadModel deserializes a model written by WriteTo.
func ReadModel(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	read := func(v any) error {
		return binary.Read(br, binary.LittleEndian, v)
	}
	var magic [8]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("core: read model magic: %w", err)
	}
	if magic != modelMagic {
		return nil, fmt.Errorf("core: bad model magic %q", magic)
	}
	return readModelBody(read)
}

// readModelBody deserializes a GRAPHHD1 record after the magic bytes.
func readModelBody(read func(any) error) (*Model, error) {
	cfg, k, err := readHeaderBody(read)
	if err != nil {
		return nil, err
	}
	enc, err := NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	m, err := NewModel(enc, k)
	if err != nil {
		return nil, err
	}
	sums := make([]int32, cfg.Dimension)
	for c := 0; c < k; c++ {
		var count int64
		if err := read(&count); err != nil {
			return nil, fmt.Errorf("core: read class %d count: %w", c, err)
		}
		if err := read(sums); err != nil {
			return nil, fmt.Errorf("core: read class %d sums: %w", c, err)
		}
		if err := m.am.LoadClass(c, sums, int(count)); err != nil {
			return nil, err
		}
	}
	return m, nil
}

// LoadModelFile reads a model from path.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load model: %w", err)
	}
	defer f.Close()
	return ReadModel(f)
}

// WriteTo serializes the predictor as a GRAPHHD2 packed record — or, when
// a cascade is configured, a GRAPHHD3 record carrying the cascade config —
// or, when the snapshot carries a non-zero revision, a GRAPHHD4 record
// carrying revision plus cascade config. It implements io.WriterTo.
func (p *Predictor) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	n := int64(0)
	write := func(v any) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	casc, hasCasc := p.Cascade()
	magic := packedMagic
	switch {
	case p.revision != 0:
		magic = revisionMagic
	case hasCasc:
		magic = cascadeMagic
	}
	if err := writeHeader(write, magic, p.enc.Config(), p.NumClasses()); err != nil {
		return n, err
	}
	if magic == revisionMagic {
		if err := write(p.revision); err != nil {
			return n, fmt.Errorf("core: serialize revision: %w", err)
		}
		if !hasCasc {
			casc = Cascade{} // zeroes encode "no cascade"
		}
		hasCasc = true
	}
	if hasCasc {
		for _, v := range []uint32{uint32(casc.DPrefix), uint32(casc.Margin)} {
			if err := write(v); err != nil {
				return n, fmt.Errorf("core: serialize cascade config: %w", err)
			}
		}
	}
	for c := 0; c < p.NumClasses(); c++ {
		if err := write(p.pm.ClassVector(c).Words()); err != nil {
			return n, fmt.Errorf("core: serialize packed class %d: %w", c, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return n, fmt.Errorf("core: serialize flush: %w", err)
	}
	return n, nil
}

// SaveFile writes the packed predictor to path.
func (p *Predictor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("core: save predictor: %w", err)
	}
	if _, err := p.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadPredictor deserializes a packed query predictor. It accepts all
// record versions: a GRAPHHD2/GRAPHHD3/GRAPHHD4 record loads directly
// (restoring cascade configuration and revision where present), and a
// GRAPHHD1 full model is
// loaded and snapshotted, so deployment code reads any format.
// Note that snapshotting always yields the majority-voted query semantics:
// for a GRAPHHD1 model saved with BipolarClassVectors false, the resulting
// predictions follow the majority-voted rule, not the int32-accumulator
// cosine rule the model itself would apply. Use ReadModel when the
// record's native query mode must be preserved.
func ReadPredictor(r io.Reader) (*Predictor, error) {
	br := bufio.NewReader(r)
	read := func(v any) error {
		return binary.Read(br, binary.LittleEndian, v)
	}
	var magic [8]byte
	if err := read(&magic); err != nil {
		return nil, fmt.Errorf("core: read model magic: %w", err)
	}
	switch magic {
	case modelMagic:
		m, err := readModelBody(read)
		if err != nil {
			return nil, err
		}
		return m.Snapshot(), nil
	case packedMagic, cascadeMagic, revisionMagic:
	default:
		return nil, fmt.Errorf("core: bad model magic %q", magic)
	}
	cfg, k, err := readHeaderBody(read)
	if err != nil {
		return nil, err
	}
	var revision uint64
	if magic == revisionMagic {
		if err := read(&revision); err != nil {
			return nil, fmt.Errorf("core: read revision: %w", err)
		}
	}
	var casc Cascade
	hasCasc := false
	if magic == cascadeMagic || magic == revisionMagic {
		var dprefix, margin uint32
		for _, v := range []any{&dprefix, &margin} {
			if err := read(v); err != nil {
				return nil, fmt.Errorf("core: read cascade config: %w", err)
			}
		}
		// In a GRAPHHD4 record all-zero cascade fields mean "none".
		if dprefix != 0 || margin != 0 || magic == cascadeMagic {
			casc = Cascade{DPrefix: int(dprefix), Margin: int(margin)}
			if err := casc.Validate(cfg.Dimension); err != nil {
				return nil, err
			}
			hasCasc = true
		}
	}
	enc, err := NewEncoder(cfg)
	if err != nil {
		return nil, err
	}
	words := make([]uint64, (cfg.Dimension+63)/64)
	classes := make([]*hdc.Binary, k)
	for c := 0; c < k; c++ {
		if err := read(words); err != nil {
			return nil, fmt.Errorf("core: read packed class %d: %w", c, err)
		}
		if classes[c], err = hdc.BinaryFromWords(cfg.Dimension, words); err != nil {
			return nil, fmt.Errorf("core: packed class %d: %w", c, err)
		}
	}
	p, err := newPredictor(enc, classes)
	if err != nil {
		return nil, err
	}
	p.revision = revision
	if hasCasc {
		if err := p.SetCascade(casc); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// LoadPredictorFile reads a predictor from path (either record version).
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("core: load predictor: %w", err)
	}
	defer f.Close()
	return ReadPredictor(f)
}
