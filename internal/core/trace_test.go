package core

import (
	"testing"

	"graphhd/internal/graph"
)

// TestPredictBatchTraced checks the stage clock on the plain batch
// path: a non-nil BatchTrace comes back with every mandatory phase
// timed, results identical to the untraced primitive.
func TestPredictBatchTraced(t *testing.T) {
	gs, ys := twoClassDataset(16, 41)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	bs := pred.Encoder().NewBatchScratch()

	want := make([]int, len(gs))
	pred.PredictBatchWith(bs, gs, want)

	var tr BatchTrace
	got := make([]int, len(gs))
	pred.PredictBatchTraced(bs, gs, got, &tr)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("graph %d: traced class %d, untraced %d", i, got[i], want[i])
		}
	}
	if tr.PlanNanos <= 0 || tr.EncodeNanos <= 0 || tr.ClassifyNanos <= 0 {
		t.Fatalf("phases untimed: %+v", tr)
	}
	if tr.EscalateNanos != 0 {
		t.Fatalf("plain batch path timed an escalate phase: %+v", tr)
	}
}

// TestPredictBatchCascadeTraced checks the stage clock on the cascade
// path across its branches: stage-1 exits, margin escalations, and the
// outside-fast-path fallbacks (edgeless graphs), with classes identical
// to the untraced primitive and the escalate phase timed.
func TestPredictBatchCascadeTraced(t *testing.T) {
	gs, ys := twoClassDataset(16, 41)
	edgeless, err := graph.FromEdges(5, nil)
	if err != nil {
		t.Fatal(err)
	}
	gs = append(gs, edgeless)

	m, err := Train(testConfig(), gs[:len(gs)-1], ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	// A mid-band margin so both stage-1 exits and escalations occur.
	if err := pred.SetCascade(Cascade{DPrefix: 256, Margin: 8}); err != nil {
		t.Fatal(err)
	}
	bs := pred.Encoder().NewBatchScratch()

	want := make([]int, len(gs))
	wantS1, wantEsc := pred.PredictBatchCascadeWith(bs, gs, want)

	var tr BatchTrace
	got := make([]int, len(gs))
	s1, esc := pred.PredictBatchCascadeTraced(bs, gs, got, &tr)
	if s1 != wantS1 || esc != wantEsc {
		t.Fatalf("traced counters (%d, %d) != untraced (%d, %d)", s1, esc, wantS1, wantEsc)
	}
	if s1+esc != len(gs) {
		t.Fatalf("stage1 %d + escalated %d != %d graphs", s1, esc, len(gs))
	}
	if esc == 0 {
		t.Fatal("test batch produced no escalations; margin band lost its purpose")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("graph %d: traced class %d, untraced %d", i, got[i], want[i])
		}
	}
	if tr.PlanNanos <= 0 || tr.EncodeNanos <= 0 || tr.ClassifyNanos <= 0 || tr.EscalateNanos <= 0 {
		t.Fatalf("phases untimed: %+v", tr)
	}

	// Without a cascade the traced entry falls through to the plain
	// batch path, counters zero.
	pred.ClearCascade()
	var plain BatchTrace
	s1, esc = pred.PredictBatchCascadeTraced(bs, gs, got, &plain)
	if s1 != 0 || esc != 0 {
		t.Fatalf("no-cascade counters (%d, %d), want (0, 0)", s1, esc)
	}
	if plain.PlanNanos <= 0 || plain.EscalateNanos != 0 {
		t.Fatalf("no-cascade trace: %+v", plain)
	}
}
