package core

import (
	"fmt"

	"testing"

	"graphhd/internal/dataset"
	"graphhd/internal/hdc"
)

// BenchmarkFig4Encode980 isolates the encoder on the largest Figure 4
// workload (20 ER graphs, 980 vertices, p≈0.05); it is the profile target
// used to drive the bit-sliced encoding optimizations.
func BenchmarkFig4Encode980(b *testing.B) {
	ds := dataset.Scaling(980, 20, 1)
	cfg := DefaultConfig()
	cfg.Dimension = 2048
	enc := MustNewEncoder(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range ds.Graphs {
			enc.EncodeGraph(g)
		}
	}
}

// BenchmarkFig4Encode980Scratch is the same workload on a reused
// EncoderScratch — the steady-state serving path, zero allocs/op.
func BenchmarkFig4Encode980Scratch(b *testing.B) {
	ds := dataset.Scaling(980, 20, 1)
	cfg := DefaultConfig()
	cfg.Dimension = 2048
	enc := MustNewEncoder(cfg)
	s := enc.NewScratch()
	for _, g := range ds.Graphs {
		s.EncodeGraphPacked(g) // warm buffers and the packed basis table
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range ds.Graphs {
			s.EncodeGraphPacked(g)
		}
	}
}

// BenchmarkEncodeGraph measures the allocating single-shot API: scratch
// state is pooled internally, only the returned hypervector is fresh.
func BenchmarkEncodeGraph(b *testing.B) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	enc := MustNewEncoder(DefaultConfig())
	g := ds.Graphs[0]
	enc.EncodeGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeGraph(g)
	}
}

// BenchmarkEncodeGraphPacked is BenchmarkEncodeGraph on the packed output.
func BenchmarkEncodeGraphPacked(b *testing.B) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	enc := MustNewEncoder(DefaultConfig())
	g := ds.Graphs[0]
	enc.EncodeGraphPacked(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc.EncodeGraphPacked(g)
	}
}

// BenchmarkEncodeScratchPacked is the acceptance benchmark of the encode
// hot path: steady-state unlabeled-graph encoding into a reused scratch,
// 0 allocs/op. PR 2 (scratch reuse) brought it from ≥14 allocs to 0 at
// ~96 µs/op; PR 4 (blocked carry-save accumulation + SWAR majority sign)
// brought it to ~34 µs/op on the same 2.10 GHz Xeon baseline.
func BenchmarkEncodeScratchPacked(b *testing.B) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	enc := MustNewEncoder(DefaultConfig())
	s := enc.NewScratch()
	g := ds.Graphs[0]
	s.EncodeGraphPacked(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EncodeGraphPacked(g)
	}
}

// BenchmarkEncodeScratchPackedScalar re-times the same workload through
// the pre-blocking per-edge AddXor loop (reused counter, no grouping, no
// carry-save front end) — the PR 2 baseline kept alive so the blocked
// path's speedup stays measurable in one run.
func BenchmarkEncodeScratchPackedScalar(b *testing.B) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	enc := MustNewEncoder(DefaultConfig())
	s := enc.NewScratch()
	g := ds.Graphs[0]
	s.EncodeGraphPacked(g) // warm buffers and the packed basis table
	counter := hdc.NewBitCounter(enc.Dimension())
	out := hdc.NewBinary(enc.Dimension())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ranks := s.Ranks(g)
		packed := enc.packedSlice(g.NumVertices())
		counter.Reset()
		for _, ed := range g.Edges() {
			counter.AddXor(packed[ranks[ed.U]], packed[ranks[ed.V]], true)
		}
		counter.SignBinaryInto(enc.packedTie, out)
	}
}

// BenchmarkEncodeScratchBipolar is the bipolar-output variant, also
// 0 allocs/op.
func BenchmarkEncodeScratchBipolar(b *testing.B) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	enc := MustNewEncoder(DefaultConfig())
	s := enc.NewScratch()
	g := ds.Graphs[0]
	s.EncodeGraph(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EncodeGraph(g)
	}
}

// BenchmarkEncodeRanks isolates the centrality-rank step (PageRank power
// iteration plus the allocation-free index sort) on the scratch path.
func BenchmarkEncodeRanks(b *testing.B) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	enc := MustNewEncoder(DefaultConfig())
	s := enc.NewScratch()
	g := ds.Graphs[0]
	s.Ranks(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Ranks(g)
	}
}

// BenchmarkEncodeBatch is the acceptance benchmark of the cross-graph
// batch tier: 32 ENZYMES graphs encoded through one shared, deduplicated
// operand plan on a reused BatchScratch, 0 allocs/op steady-state. The
// per-graph metric is directly comparable to BenchmarkEncodeScratchPacked.
func BenchmarkEncodeBatch(b *testing.B) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 32})
	if err != nil {
		b.Fatal(err)
	}
	enc := MustNewEncoder(DefaultConfig())
	bs := enc.NewBatchScratch()
	bs.EncodeBatch(ds.Graphs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bs.EncodeBatch(ds.Graphs)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ds.Graphs)), "ns/graph")
}

// BenchmarkEncodeBatchSingle re-times the same 32-graph workload through
// the per-graph scratch path, so the batch tier's dedup win stays
// measurable in one run.
func BenchmarkEncodeBatchSingle(b *testing.B) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 32})
	if err != nil {
		b.Fatal(err)
	}
	enc := MustNewEncoder(DefaultConfig())
	s := enc.NewScratch()
	for _, g := range ds.Graphs {
		s.EncodeGraphPacked(g)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range ds.Graphs {
			s.EncodeGraphPacked(g)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(ds.Graphs)), "ns/graph")
}

// BenchmarkEncodeScratchPackedDim sweeps the encode hot path across query
// widths on ONE full-dimension encoder: EncodeGraphPackedPrefix narrows
// the carry-save counter to the leading ⌈d/64⌉ words at call time, so the
// sweep shows how per-graph encode cost scales with the runtime dimension
// parameter (d=10000 is the full-width EncodeGraphPacked workload).
func BenchmarkEncodeScratchPackedDim(b *testing.B) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 2, GraphCount: 6})
	if err != nil {
		b.Fatal(err)
	}
	enc := MustNewEncoder(DefaultConfig())
	s := enc.NewScratch()
	g := ds.Graphs[0]
	for _, d := range []int{1000, 2000, 10000} {
		b.Run(fmt.Sprintf("d=%d", d), func(b *testing.B) {
			s.EncodeGraphPackedPrefix(g, d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.EncodeGraphPackedPrefix(g, d)
			}
		})
	}
}
