package core

import (
	"testing"

	"graphhd/internal/dataset"
)

// BenchmarkFig4Encode980 isolates the encoder on the largest Figure 4
// workload (20 ER graphs, 980 vertices, p≈0.05); it is the profile target
// used to drive the bit-sliced encoding optimizations.
func BenchmarkFig4Encode980(b *testing.B) {
	ds := dataset.Scaling(980, 20, 1)
	cfg := DefaultConfig()
	cfg.Dimension = 2048
	enc := MustNewEncoder(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range ds.Graphs {
			enc.EncodeGraph(g)
		}
	}
}
