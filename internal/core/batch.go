package core

import (
	"fmt"
	"slices"
	"time"

	"graphhd/internal/centrality"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// encodeBatchChunk is the batch size the parallel adopters (Fit,
// PredictAll) hand to one BatchScratch call: large enough that cross-graph
// operand dedup amortizes basis-table traffic, small enough that the plan
// slab stays cache-resident for typical Table-I graph sizes.
const encodeBatchChunk = 32

// BatchScratch is the cross-graph batch encoding tier: it plans one
// gather-free operand schedule (hdc.OperandPlan) across every graph in a
// micro-batch and encodes each graph by streaming its planned operand
// indices through hdc.BitCounter.AddPlanned.
//
// Planning exploits the same structure as the per-graph rank-pair
// grouping, one level up: an edge's bind vector depends only on the
// unordered (rank_u, rank_v) pair of its endpoint centrality ranks, and
// graphs in a batch draw those pairs from the same small space (ranks are
// bounded by vertex counts), so the batch frequently repeats pairs across
// graphs. The plan therefore materializes each *distinct* pair's XNOR
// exactly once per batch — basis-table words are loaded once per batch,
// not once per graph — and every graph's accumulation pass reads the
// compact contiguous slab instead of chasing basis-table pointers.
//
// Bundling counts are exact integer sums and the majority sign is a pure
// function of the counts, so batch encodings are bit-for-bit identical to
// the per-graph EncodeGraphPacked path (see
// TestBatchEncodeMatchesSingleAllDatasets).
//
// Once its buffers have grown to the largest batch seen, a BatchScratch
// plans and encodes with zero heap allocations. It is bound to its
// encoder and not safe for concurrent use; obtain one from
// Encoder.NewBatchScratch and keep it for the caller's lifetime (the
// serving workers do), or rely on the pooled instances behind
// Encoder.EncodeBatch.
type BatchScratch struct {
	enc     *Encoder
	cent    centrality.Scratch
	ranks   []int
	counter *hdc.BitCounter
	plan    hdc.OperandPlan
	packed  *hdc.Binary // sign buffer for classify-immediately paths

	// Batch plan state, all graph-major with off-style index tables:
	// keys[keyOff[i]:keyOff[i+1]] are graph i's sorted packed rank-pair
	// keys; unit/wIdx/wMult hold each graph's planned operand indices
	// (multiplicity 1 through the blocked kernel, >1 through the weighted
	// one); distinct is the batch-wide sorted deduplicated key set, index-
	// aligned with the plan's operands.
	keys     []uint64
	keyOff   []int
	distinct []uint64
	unit     []int32
	unitOff  []int
	wIdx     []int32
	wMult    []int32
	wOff     []int

	// direct records planBatch's cost decision: when the deduplicated
	// operand slab would not stay cache-resident (large or high-entropy
	// batches), materializing it costs more than it saves, so encoding
	// reads the basis table directly instead — same bits, different
	// memory layout. basis is the packed basis-table snapshot either mode
	// reads; dpairs is the direct mode's reusable pair buffer.
	direct bool
	basis  []*hdc.Binary
	dpairs []hdc.XorPair
	dwIdx  []hdc.XorPair
	dwMult []int32
	// planD is the width the current plan state was built for (the full
	// encoder dimension for PredictBatchWith/EncodeBatch, the cascade
	// prefix for PredictBatchCascadeWith).
	planD int
	// stickyDirect remembers the smallest operand bound the exact gate
	// ever routed to direct mode, so a homogeneous stream of borderline
	// batches (one Fit's chunks, one serving worker's traffic) pays the
	// deciding sort once instead of per batch.
	stickyDirect int

	outs []*hdc.Binary // scratch-owned outputs for EncodeBatch

	// Phase worklists for the phased batch predict primitives: per-graph
	// prefix-width sign buffers (rebuilt only when the stage-1 width
	// changes), the indices the classify phase marked for full-width
	// escalation, and the indices outside the packed fast path.
	pouts  []*hdc.Binary
	poutsD int
	escIdx []int32
	fbIdx  []int32
}

// maxPlanSlabBytes bounds the materialized operand slab. Beyond ~L2 size
// the slab's streaming reads fall out to shared cache while the basis
// table (bounded by max vertex count, not distinct pair count) typically
// stays resident, inverting the plan's advantage.
const maxPlanSlabBytes = 256 << 10

// NewBatchScratch returns a fresh batch scratch bound to e, for callers
// that manage per-goroutine reuse themselves (serving workers, the
// parallel batch adopters). One-shot callers can use Encoder.EncodeBatch,
// which pools instances.
func (e *Encoder) NewBatchScratch() *BatchScratch {
	d := e.cfg.Dimension
	return &BatchScratch{
		enc:     e,
		counter: hdc.NewBitCounter(d),
		packed:  hdc.NewBinary(d),
	}
}

// getBatchScratch vends a pooled batch scratch; return it with
// putBatchScratch.
func (e *Encoder) getBatchScratch() *BatchScratch {
	return e.batchScratch.Get().(*BatchScratch)
}

func (e *Encoder) putBatchScratch(s *BatchScratch) { e.batchScratch.Put(s) }

// fastPath mirrors EncoderScratch.fillCounter's gate: the planned batch
// path covers unlabeled-encoding graphs with at least one edge.
func (s *BatchScratch) fastPath(g *graph.Graph) bool {
	if s.enc.cfg.UseVertexLabels && g.Labeled() {
		return false
	}
	return g.NumEdges() > 0
}

// planBatch builds the batch-wide operand schedule: per-graph sorted
// rank-pair keys, the deduplicated key set, one materialized XNOR operand
// per distinct key, and per-graph operand index/multiplicity lists.
func (s *BatchScratch) planBatch(graphs []*graph.Graph) {
	s.planBatchWidth(graphs, s.enc.cfg.Dimension)
}

// prefixOuts returns n reusable d-dimensional sign buffers, one per
// batch graph — the stage-1 outputs of the phased cascade. Buffers are
// rebuilt only when the stage-1 width changes (a hot swap to a model
// with a different cascade prefix).
func (s *BatchScratch) prefixOuts(d, n int) []*hdc.Binary {
	if s.poutsD != d {
		s.pouts = s.pouts[:0]
		s.poutsD = d
	}
	for len(s.pouts) < n {
		s.pouts = append(s.pouts, hdc.NewBinary(d))
	}
	return s.pouts[:n]
}

// planBatchWidth is planBatch at an explicit operand width d ≤ the
// encoder dimension: rank-pair keys and the cost gate are width-
// independent computations, but the plan slab materializes ⌈d/64⌉-word
// operands — the prefix slices of the same full-width basis vectors,
// tail-masked (hdc.OperandPlan.AppendXnor accepts wider operands). One
// scratch therefore serves any mix of widths without reallocation: the
// plan slab and counter re-target per call, and only the sticky direct
// heuristic resets when the width changes (its operand-count bound is
// calibrated against a width-dependent slab size).
func (s *BatchScratch) planBatchWidth(graphs []*graph.Graph, d int) {
	e := s.enc
	if d != s.planD {
		s.stickyDirect = 0
		s.planD = d
	}
	opts := centrality.Options{
		Iterations: e.prOpts.Iterations,
		Damping:    e.prOpts.Damping,
	}
	s.keys = s.keys[:0]
	s.keyOff = append(s.keyOff[:0], 0)
	maxN := 0
	for _, g := range graphs {
		if s.fastPath(g) {
			if g.NumVertices() > maxN {
				maxN = g.NumVertices()
			}
			s.ranks = centrality.RanksInto(g, e.cfg.Centrality, opts, s.ranks, &s.cent)
			lo := len(s.keys)
			for _, ed := range g.Edges() {
				ru, rv := s.ranks[ed.U], s.ranks[ed.V]
				if ru > rv {
					ru, rv = rv, ru
				}
				s.keys = append(s.keys, uint64(ru)<<32|uint64(uint32(rv)))
			}
			slices.Sort(s.keys[lo:])
		}
		s.keyOff = append(s.keyOff, len(s.keys))
	}

	s.basis = nil
	s.distinct = s.distinct[:0]
	s.plan.Reset(d)
	s.direct = false
	if len(s.keys) == 0 {
		return
	}
	// packedSlice is one lock round for the whole batch, either mode.
	s.basis = e.packedSlice(maxN)

	// Cost gate. The distinct-operand count is bounded by both the key
	// count and the batch's rank-pair space C(maxN, 2); that bound routes
	// the clear cases without paying for batch-wide deduplication — small
	// batches are planned, large ones (big graphs, high-entropy batches)
	// go direct and skip the global sort entirely. Only the borderline
	// band pays the sort to decide on the exact distinct count.
	nw := (d + 63) / 64
	bound := len(s.keys)
	if space := maxN * (maxN - 1) / 2; space < bound {
		bound = space
	}
	if bound*nw*8 > 8*maxPlanSlabBytes ||
		(s.stickyDirect > 0 && bound >= s.stickyDirect-s.stickyDirect/8) {
		s.direct = true
		return
	}

	// Deduplicate across the whole batch; the distinct list's order (and
	// therefore each operand's index) is the sorted key order.
	s.distinct = append(s.distinct[:0], s.keys...)
	slices.Sort(s.distinct)
	s.distinct = slices.Compact(s.distinct)
	if len(s.distinct)*nw*8 > maxPlanSlabBytes {
		s.direct = true
		if s.stickyDirect == 0 || bound < s.stickyDirect {
			s.stickyDirect = bound
		}
		return
	}

	// Materialize each distinct pair's XNOR once.
	for _, k := range s.distinct {
		ru, rv := int(k>>32), int(uint32(k))
		s.plan.AppendXnor(s.basis[ru], s.basis[rv])
	}

	// Per-graph operand lists: merge each graph's sorted key segment
	// against the sorted distinct list (a superset), run-length-encoding
	// multiplicities exactly as the per-graph path does.
	s.unit = s.unit[:0]
	s.wIdx = s.wIdx[:0]
	s.wMult = s.wMult[:0]
	s.unitOff = append(s.unitOff[:0], 0)
	s.wOff = append(s.wOff[:0], 0)
	for gi := range graphs {
		seg := s.keys[s.keyOff[gi]:s.keyOff[gi+1]]
		di := 0
		for j := 0; j < len(seg); {
			k := seg[j]
			j2 := j + 1
			for j2 < len(seg) && seg[j2] == k {
				j2++
			}
			for s.distinct[di] < k {
				di++
			}
			if j2-j == 1 {
				s.unit = append(s.unit, int32(di))
			} else {
				s.wIdx = append(s.wIdx, int32(di))
				s.wMult = append(s.wMult, int32(j2-j))
			}
			j = j2
		}
		s.unitOff = append(s.unitOff, len(s.unit))
		s.wOff = append(s.wOff, len(s.wIdx))
	}
}

// PlanStats reports the last planned batch's operand totals: pairs is the
// number of edge rank-pair instances across all fast-path graphs, and
// distinct is the number of deduplicated operands actually materialized.
// pairs/distinct is the batch's basis-table traffic amortization factor;
// the serving metrics export both. A batch the cost gate routed to direct
// mode performed no dedup, so it reports distinct == pairs.
func (s *BatchScratch) PlanStats() (pairs, distinct int) {
	if s.direct {
		return len(s.keys), len(s.keys)
	}
	return len(s.keys), len(s.distinct)
}

// collectDirect run-length-walks graph gi's sorted key segment once
// (direct mode), filling s.dpairs with the multiplicity-1 pairs and
// s.dwIdx/s.dwMult with the rare multiplicity-grouped ones, all read
// straight from the basis table. Reports whether any grouped pair exists.
func (s *BatchScratch) collectDirect(gi int) (weighted bool) {
	seg := s.keys[s.keyOff[gi]:s.keyOff[gi+1]]
	pairs := s.dpairs[:0]
	wp := s.dwIdx[:0]
	wm := s.dwMult[:0]
	for j := 0; j < len(seg); {
		k := seg[j]
		j2 := j + 1
		for j2 < len(seg) && seg[j2] == k {
			j2++
		}
		ru, rv := int(k>>32), int(uint32(k))
		p := hdc.XorPair{A: s.basis[ru], B: s.basis[rv], Invert: true}
		if j2-j == 1 {
			pairs = append(pairs, p)
		} else {
			wp = append(wp, p)
			wm = append(wm, int32(j2-j))
		}
		j = j2
	}
	s.dpairs, s.dwIdx, s.dwMult = pairs, wp, wm
	return len(wp) > 0
}

// feedDirectWeighted streams the grouped pairs collectDirect gathered
// into the counter.
func (s *BatchScratch) feedDirectWeighted() {
	for i, p := range s.dwIdx {
		s.counter.AddXorWeighted(p.A, p.B, p.Invert, int(s.dwMult[i]))
	}
}

// fillCounterPlanned accumulates graph gi's operands into the scratch
// counter — from the plan slab or, in direct mode, the basis table —
// reporting whether the fast path applies (an empty key segment means the
// graph was excluded from the plan: labeled-extension or edgeless).
func (s *BatchScratch) fillCounterPlanned(gi int) bool {
	if s.keyOff[gi] == s.keyOff[gi+1] {
		return false
	}
	c := s.counter
	c.Reset()
	if s.direct {
		weighted := s.collectDirect(gi)
		c.AddXorPairs(s.dpairs)
		if weighted {
			s.feedDirectWeighted()
		}
		return true
	}
	c.AddPlanned(&s.plan, s.unit[s.unitOff[gi]:s.unitOff[gi+1]])
	for j := s.wOff[gi]; j < s.wOff[gi+1]; j++ {
		c.AddWordsWeighted(s.plan.Operand(int(s.wIdx[j])), int(s.wMult[j]))
	}
	return true
}

// signDirectInto encodes graph gi into dst straight off the basis table —
// the planless accumulation path: collectDirect's pairs through the
// one-shot small-sign kernel or the counter tiers at the counter's
// *current* width. Every input it touches (sorted key segments, basis
// snapshot) is width-independent, so cascade escalation re-signs a graph
// at full width from a prefix-width plan by just re-targeting the counter
// first. Reports false for graphs outside the fast path (empty key
// segment: labeled extension or edgeless).
func (s *BatchScratch) signDirectInto(gi int, dst *hdc.Binary) bool {
	if s.keyOff[gi] == s.keyOff[gi+1] {
		return false
	}
	weighted := s.collectDirect(gi)
	if !weighted && len(s.dpairs) > 0 && len(s.dpairs) <= hdc.MaxSmallSign {
		s.counter.SignXorPairsSmallInto(s.dpairs, s.enc.packedTie, dst)
		return true
	}
	c := s.counter
	c.Reset()
	c.AddXorPairs(s.dpairs)
	if weighted {
		s.feedDirectWeighted()
	}
	c.SignBinaryInto(s.enc.packedTie, dst)
	return true
}

// signPackedInto encodes graph gi into dst, reporting whether the fast
// path applied. Bundles of up to hdc.MaxSmallSign unit-multiplicity
// operands — the common case — take the one-shot bit-sliced majority
// kernel, off the plan slab or directly off the basis table depending on
// the batch's cost mode; larger or multiplicity-weighted graphs go
// through the counter tiers.
func (s *BatchScratch) signPackedInto(gi int, dst *hdc.Binary) bool {
	if s.keyOff[gi] == s.keyOff[gi+1] {
		return false
	}
	if s.direct {
		return s.signDirectInto(gi, dst)
	}
	unit := s.unit[s.unitOff[gi]:s.unitOff[gi+1]]
	if s.wOff[gi] == s.wOff[gi+1] && len(unit) > 0 && len(unit) <= hdc.MaxSmallSign {
		s.counter.SignPlannedSmallInto(&s.plan, unit, s.enc.packedTie, dst)
		return true
	}
	s.fillCounterPlanned(gi)
	s.counter.SignBinaryInto(s.enc.packedTie, dst)
	return true
}

// EncodeBatch encodes every graph through one shared operand plan,
// returning one packed hypervector per graph, bit-identical to calling
// EncodeGraphPacked on each. The returned slice and its vectors live in
// the scratch's buffers and are valid until the next call on s. Graphs
// outside the packed fast path (labeled extension, edgeless) fall back to
// the reference encoder per graph.
func (s *BatchScratch) EncodeBatch(graphs []*graph.Graph) []*hdc.Binary {
	s.planBatch(graphs)
	e := s.enc
	for len(s.outs) < len(graphs) {
		s.outs = append(s.outs, hdc.NewBinary(e.cfg.Dimension))
	}
	outs := s.outs[:len(graphs)]
	for gi, g := range graphs {
		if !s.signPackedInto(gi, outs[gi]) {
			outs[gi].CopyFrom(e.EncodeGraphPacked(g))
		}
	}
	return outs
}

// encodeBipolarNew is EncodeBatch for callers that retain bipolar
// encodings (batch training): the plan and counters live in the scratch,
// but each signed output is freshly allocated into dst, which must have
// len(graphs).
func (s *BatchScratch) encodeBipolarNew(graphs []*graph.Graph, dst []*hdc.Bipolar) {
	s.planBatch(graphs)
	for gi, g := range graphs {
		if s.fillCounterPlanned(gi) {
			dst[gi] = s.counter.SignBipolar(s.enc.tie)
		} else {
			dst[gi] = s.enc.encodeGraphSlow(g)
		}
	}
}

// EncodeBatch encodes graphs through one shared cross-graph operand plan
// (see BatchScratch) on a pooled scratch, returning freshly allocated
// packed hypervectors that the caller may retain. Results are
// bit-identical to EncodeGraphPacked per graph.
func (e *Encoder) EncodeBatch(graphs []*graph.Graph) []*hdc.Binary {
	s := e.getBatchScratch()
	defer e.putBatchScratch(s)
	outs := s.EncodeBatch(graphs)
	res := make([]*hdc.Binary, len(outs))
	for i, o := range outs {
		res[i] = o.Clone()
	}
	return res
}

// BatchTrace receives the stage clock of one batch predict call: the
// wall time each phase of the pipeline consumed, in monotonic
// nanoseconds. The serving worker passes one per dispatched micro-batch
// and feeds the readout into the per-stage latency histograms and the
// flight recorder (internal/serve); any future router or sharding tier
// subscribes to the same seam. Stamping costs one time.Now() per phase
// boundary per batch — never per graph — so tracing stays inside the
// serve path's overhead budget.
type BatchTrace struct {
	// PlanNanos covers operand-plan construction: centrality ranking,
	// rank-pair grouping and sort, batch-wide dedup, slab materialization.
	PlanNanos int64
	// EncodeNanos covers accumulate + majority sign for every fast-path
	// graph (at stage-1 width when a cascade is active).
	EncodeNanos int64
	// ClassifyNanos covers Hamming classification of every signed
	// encoding (the stage-1 margin test when a cascade is active).
	ClassifyNanos int64
	// EscalateNanos covers the cascade's full-width re-sign + re-classify
	// of margin-ambiguous graphs, plus reference-path fallbacks (labeled
	// extension, edgeless). Zero when nothing escalated.
	EscalateNanos int64
}

// stamp records now-prev into *dst and advances the clock; a nil trace
// skips timing entirely (the wrappers without tracing pass nil).
func (tr *BatchTrace) stamp(dst *int64, prev time.Time) time.Time {
	now := time.Now()
	*dst = now.Sub(prev).Nanoseconds()
	return now
}

// PredictBatchWith classifies graphs through a caller-owned batch
// scratch, writing one class per graph into out (len(out) must equal
// len(graphs)) — the serving batch primitive: the whole micro-batch is
// encoded through one shared operand plan with zero per-request heap
// allocations in steady state. s must have been vended by
// p.Encoder().NewBatchScratch(). Classes are identical to calling
// Predict on each graph.
func (p *Predictor) PredictBatchWith(s *BatchScratch, graphs []*graph.Graph, out []int) {
	p.PredictBatchTraced(s, graphs, out, nil)
}

// PredictBatchTraced is PredictBatchWith with an optional stage clock:
// when tr is non-nil, the plan/encode/classify phase wall times land in
// it. The pipeline runs in three phases — plan the batch, sign every
// graph into the scratch's per-graph output buffers, classify every
// output — so each phase boundary is a real instant and stamping costs
// one clock read per phase, not per graph. Results are identical to
// PredictBatchWith.
func (p *Predictor) PredictBatchTraced(s *BatchScratch, graphs []*graph.Graph, out []int, tr *BatchTrace) {
	if s.enc != p.enc {
		panic("core: batch scratch bound to a different encoder")
	}
	if len(out) != len(graphs) {
		panic(fmt.Sprintf("core: %d results for %d graphs", len(out), len(graphs)))
	}
	var t time.Time
	if tr != nil {
		t = time.Now()
	}
	s.planBatch(graphs)
	if tr != nil {
		t = tr.stamp(&tr.PlanNanos, t)
	}
	e := s.enc
	for len(s.outs) < len(graphs) {
		s.outs = append(s.outs, hdc.NewBinary(e.cfg.Dimension))
	}
	outs := s.outs[:len(graphs)]
	for gi, g := range graphs {
		if !s.signPackedInto(gi, outs[gi]) {
			outs[gi].CopyFrom(e.EncodeGraphPacked(g))
		}
	}
	if tr != nil {
		t = tr.stamp(&tr.EncodeNanos, t)
	}
	for gi := range graphs {
		out[gi] = p.pm.Classify(outs[gi])
	}
	if tr != nil {
		tr.stamp(&tr.ClassifyNanos, t)
	}
}

// batchScratchSet lazily vends one pooled batch scratch per worker for
// the chunked batch adopters. Workers initialize their slot on first use
// — safe because ForEachWorker serves each worker index from a single
// goroutine — and release returns all scratches to the encoder's pool.
type batchScratchSet struct {
	enc *Encoder
	s   []*BatchScratch
}

func (e *Encoder) newBatchScratchSet(workers int) *batchScratchSet {
	return &batchScratchSet{enc: e, s: make([]*BatchScratch, workers)}
}

func (b *batchScratchSet) get(w int) *BatchScratch {
	if b.s[w] == nil {
		b.s[w] = b.enc.getBatchScratch()
	}
	return b.s[w]
}

func (b *batchScratchSet) release() {
	for _, s := range b.s {
		if s != nil {
			b.enc.putBatchScratch(s)
		}
	}
}
