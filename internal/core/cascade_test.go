package core

import (
	"bytes"
	"strings"
	"testing"

	"graphhd/internal/dataset"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// forEachTier runs fn under every kernel tier this CPU supports (the
// core-level twin of the hdc package's equivalence-matrix helper),
// restoring the previously active tier afterwards.
func forEachTier(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	prev := hdc.ActiveKernel()
	defer func() {
		if err := hdc.SetKernel(prev); err != nil {
			t.Fatalf("restoring kernel tier %s: %v", prev, err)
		}
	}()
	for _, tier := range hdc.SupportedKernels() {
		if err := hdc.SetKernel(tier); err != nil {
			t.Fatalf("SetKernel(%s): %v", tier, err)
		}
		t.Run(tier.String(), fn)
	}
}

func TestCascadeValidate(t *testing.T) {
	const d = 2048
	cases := []struct {
		c    Cascade
		want string // substring of the error, empty for valid
	}{
		{Cascade{DPrefix: 1024, Margin: 0}, ""},
		{Cascade{DPrefix: 1000, Margin: 37}, ""}, // non-multiple-of-64 widths are fine (tail-masked)
		{Cascade{DPrefix: MinCascadePrefix, Margin: 0}, ""},
		{Cascade{DPrefix: 63, Margin: 0}, "below the minimum"},
		{Cascade{DPrefix: 0, Margin: 0}, "below the minimum"},
		{Cascade{DPrefix: d, Margin: 0}, "smaller than the model dimension"},
		{Cascade{DPrefix: d + 64, Margin: 0}, "smaller than the model dimension"},
		{Cascade{DPrefix: 1024, Margin: -1}, "negative cascade margin"},
	}
	for _, tc := range cases {
		err := tc.c.Validate(d)
		if tc.want == "" {
			if err != nil {
				t.Errorf("Validate(%+v): unexpected error %v", tc.c, err)
			}
		} else if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate(%+v) = %v, want error containing %q", tc.c, err, tc.want)
		}
	}
}

// TestPrefixEncodeMatchesSlicedAllDatasets pins the tentpole acceptance
// criterion at the encoder level: on every synthetic Table-I dataset and
// under every supported kernel tier, the prefix-width encode — counter
// narrowed with SetDim, reading only the leading words of the full basis
// — is bit-identical to slicing the full-width encoding, which by the
// componentwise majority/bind identity is exactly what a freshly built
// small-d model sharing the basis prefix would produce.
func TestPrefixEncodeMatchesSlicedAllDatasets(t *testing.T) {
	prefixes := []int{64, 321, 1000, 1024} // one word, ragged, non-multiple-of-64, half
	for _, name := range dataset.Names() {
		t.Run(name, func(t *testing.T) {
			count := 12
			if name == "DD" {
				count = 4
			}
			ds, err := dataset.Generate(name, dataset.Options{Seed: 23, GraphCount: count})
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			enc := MustNewEncoder(cfg)
			forEachTier(t, func(t *testing.T) {
				s := enc.NewScratch()
				for gi, g := range ds.Graphs {
					full := s.EncodeGraphPacked(g).Clone()
					for _, dp := range prefixes {
						want := full.PrefixCopy(dp)
						if got := s.EncodeGraphPackedPrefix(g, dp); !got.Equal(want) {
							t.Fatalf("graph %d: prefix-%d encode differs from sliced full encode", gi, dp)
						}
					}
					// Interleaving widths must not corrupt the full-width path.
					if !s.EncodeGraphPacked(g).Equal(full) {
						t.Fatalf("graph %d: full-width encode corrupted after prefix encodes", gi)
					}
				}
			})
		})
	}
}

// TestCascadeBatchMatchesSingleAllDatasets checks the batch cascade
// primitive against the per-graph one on every dataset: identical
// classes, consistent stage-1/escalation accounting, and a clean
// restore of the scratch's full-width invariant afterwards.
func TestCascadeBatchMatchesSingleAllDatasets(t *testing.T) {
	for _, name := range dataset.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			count := 24
			if name == "DD" {
				count = 6
			}
			ds, err := dataset.Generate(name, dataset.Options{Seed: 29, GraphCount: count})
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			m, err := Train(cfg, ds.Graphs, ds.Labels)
			if err != nil {
				t.Fatal(err)
			}
			pred := m.Snapshot()
			// A mid-band margin so both stage-1 exits and escalations occur.
			if err := pred.SetCascade(Cascade{DPrefix: 256, Margin: 8}); err != nil {
				t.Fatal(err)
			}
			es := pred.Encoder().NewScratch()
			bs := pred.Encoder().NewBatchScratch()
			for _, size := range []int{1, 7, 24} {
				for lo := 0; lo < len(ds.Graphs); lo += size {
					hi := min(lo+size, len(ds.Graphs))
					batch := ds.Graphs[lo:hi]
					out := make([]int, len(batch))
					s1, esc := pred.PredictBatchCascadeWith(bs, batch, out)
					if s1+esc != len(batch) {
						t.Fatalf("size %d: stage1 %d + escalated %d != %d graphs", size, s1, esc, len(batch))
					}
					for i, g := range batch {
						want, wantEsc := pred.PredictCascadeWith(es, g)
						if out[i] != want {
							t.Fatalf("size %d: graph %d cascade batch class %d, single %d", size, lo+i, out[i], want)
						}
						_ = wantEsc
					}
				}
			}

			// Escalation accounting agrees between the two primitives.
			out := make([]int, len(ds.Graphs))
			_, esc := pred.PredictBatchCascadeWith(bs, ds.Graphs, out)
			singleEsc := 0
			for _, g := range ds.Graphs {
				if _, e := pred.PredictCascadeWith(es, g); e {
					singleEsc++
				}
			}
			if esc != singleEsc {
				t.Fatalf("batch escalated %d graphs, single path %d", esc, singleEsc)
			}

			// The scratch serves full-width batches correctly afterwards.
			full := make([]int, len(ds.Graphs))
			pred.PredictBatchWith(bs, ds.Graphs, full)
			for i, g := range ds.Graphs {
				if want := pred.Predict(g); full[i] != want {
					t.Fatalf("post-cascade full-width batch class %d, want %d", full[i], want)
				}
			}

			// An always-escalate margin reproduces full-dimension output
			// exactly (every stage-1 margin is at most DPrefix).
			if err := pred.SetCascade(Cascade{DPrefix: 256, Margin: 256}); err != nil {
				t.Fatal(err)
			}
			s1, esc := pred.PredictBatchCascadeWith(bs, ds.Graphs, out)
			if s1 != 0 {
				t.Fatalf("always-escalate margin left %d stage-1 decisions", s1)
			}
			if esc != len(ds.Graphs) {
				t.Fatalf("always-escalate margin escalated %d of %d", esc, len(ds.Graphs))
			}
			for i := range out {
				if out[i] != full[i] {
					t.Fatalf("graph %d: escalated class %d differs from full-width %d", i, out[i], full[i])
				}
			}

			// Clearing the cascade reverts to single-stage behavior.
			pred.ClearCascade()
			if _, on := pred.Cascade(); on {
				t.Fatal("Cascade() reports active after ClearCascade")
			}
			s1, esc = pred.PredictBatchCascadeWith(bs, ds.Graphs, out)
			if s1 != 0 || esc != 0 {
				t.Fatalf("cleared cascade reported counters %d/%d", s1, esc)
			}
			for i := range out {
				if out[i] != full[i] {
					t.Fatalf("graph %d: cleared-cascade class %d differs from full-width %d", i, out[i], full[i])
				}
			}
		})
	}
}

// TestCascadeMixedWidthScratch drives one batch scratch through an
// alternating sequence of cascade and full-width batches at two different
// prefix widths — the serving reload scenario — checking every answer
// against fresh single-graph predictions.
func TestCascadeMixedWidthScratch(t *testing.T) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: 31, GraphCount: 18})
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	m, err := Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	bs := pred.Encoder().NewBatchScratch()
	es := pred.Encoder().NewScratch()
	out := make([]int, len(ds.Graphs))
	widths := []Cascade{{DPrefix: 128, Margin: 6}, {DPrefix: 1000, Margin: 40}, {DPrefix: 128, Margin: 6}}
	for round, c := range widths {
		if err := pred.SetCascade(c); err != nil {
			t.Fatal(err)
		}
		pred.PredictBatchCascadeWith(bs, ds.Graphs, out)
		for i, g := range ds.Graphs {
			if want, _ := pred.PredictCascadeWith(es, g); out[i] != want {
				t.Fatalf("round %d (dp=%d): graph %d class %d, want %d", round, c.DPrefix, i, out[i], want)
			}
		}
		pred.PredictBatchWith(bs, ds.Graphs, out)
		for i, g := range ds.Graphs {
			if want := pred.Predict(g); out[i] != want {
				t.Fatalf("round %d: full-width graph %d class %d, want %d", round, i, out[i], want)
			}
		}
	}
}

// TestCascadeSerializationRoundTrip pins the GRAPHHD3 record: a predictor
// with a cascade round-trips config and classes; one without still emits
// GRAPHHD2; corrupt cascade configs are rejected at load with the
// operator-facing validation text.
func TestCascadeSerializationRoundTrip(t *testing.T) {
	gs, ys := twoClassDataset(16, 41)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()

	// No cascade → GRAPHHD2, loads without one.
	var buf bytes.Buffer
	if _, err := pred.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != "GRAPHHD2" {
		t.Fatalf("cascade-free predictor serialized with magic %q", got)
	}
	p2, err := ReadPredictor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, on := p2.Cascade(); on {
		t.Fatal("GRAPHHD2 record loaded with an active cascade")
	}

	// Cascade set → GRAPHHD3 carrying the config.
	want := Cascade{DPrefix: 1000, Margin: 17}
	if err := pred.SetCascade(want); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if _, err := pred.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if got := string(buf.Bytes()[:8]); got != "GRAPHHD3" {
		t.Fatalf("cascade predictor serialized with magic %q", got)
	}
	p3, err := ReadPredictor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	got, on := p3.Cascade()
	if !on || got != want {
		t.Fatalf("round-tripped cascade = %+v (active %v), want %+v", got, on, want)
	}
	for c := 0; c < pred.NumClasses(); c++ {
		if !p3.ClassVector(c).Equal(pred.ClassVector(c)) {
			t.Fatalf("round-tripped class %d differs", c)
		}
	}
	// Loaded predictor classifies identically, including stage-1 state.
	es, es3 := pred.Encoder().NewScratch(), p3.Encoder().NewScratch()
	for i, g := range gs {
		wc, we := pred.PredictCascadeWith(es, g)
		gc, ge := p3.PredictCascadeWith(es3, g)
		if wc != gc || we != ge {
			t.Fatalf("graph %d: loaded cascade (%d,%v), want (%d,%v)", i, gc, ge, wc, we)
		}
	}

	// A corrupt cascade config is rejected at load with clear text.
	raw := buf.Bytes()
	bad := append([]byte(nil), raw...)
	// dprefix sits right after the 48-byte header (8 magic + 4 dim + 4
	// prIters + 8 damping + 8 seed + 4 flags + 4 metric + 4 k = 44).
	off := 44
	bad[off], bad[off+1], bad[off+2], bad[off+3] = 63, 0, 0, 0
	if _, err := ReadPredictor(bytes.NewReader(bad)); err == nil || !strings.Contains(err.Error(), "below the minimum") {
		t.Fatalf("undersized cascade prefix loaded: err = %v", err)
	}
}

// TestPredictCascadeEdgeless checks the reference fallback: graphs outside
// the packed fast path are decided at full width and counted as
// escalations in the batch path.
func TestPredictCascadeEdgeless(t *testing.T) {
	gs, ys := twoClassDataset(12, 43)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	if err := pred.SetCascade(Cascade{DPrefix: 256, Margin: 4}); err != nil {
		t.Fatal(err)
	}
	edgeless := graph.NewBuilder(3).Build()
	batch := []*graph.Graph{gs[0], edgeless, gs[1]}
	bs := pred.Encoder().NewBatchScratch()
	out := make([]int, len(batch))
	s1, esc := pred.PredictBatchCascadeWith(bs, batch, out)
	if s1+esc != len(batch) || esc < 1 {
		t.Fatalf("edgeless batch accounting: stage1 %d escalated %d", s1, esc)
	}
	if want := pred.Predict(edgeless); out[1] != want {
		t.Fatalf("edgeless graph class %d, want %d", out[1], want)
	}
}
