package core

import (
	"fmt"
	"slices"

	"graphhd/internal/centrality"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// EncoderScratch holds every reusable buffer one encoding goroutine needs:
// the centrality scratch (PageRank power-iteration vectors and the rank
// sort order), the rank slice, the SWAR majority counter, and the output
// hypervectors. Once its buffers have grown to the largest graph seen,
// encoding an unlabeled graph with edges performs zero heap allocations —
// the property that makes the encode pipeline, now ~90% of end-to-end
// predict latency, allocation-free in steady state.
//
// Obtain one from Encoder.NewScratch (or implicitly through the Encoder
// and Predictor APIs, which vend pooled scratches per call or per batch
// worker). A scratch is bound to its encoder and is not safe for
// concurrent use; each goroutine owns its own. Results returned by the
// scratch's Encode/Ranks methods live in its buffers and are only valid
// until the next call on the same scratch.
type EncoderScratch struct {
	enc     *Encoder
	cent    centrality.Scratch
	ranks   []int
	counter *hdc.BitCounter
	packed  *hdc.Binary
	bipolar *hdc.Bipolar
	// Rank-pair grouping buffers for the blocked edge accumulation:
	// edgeKeys holds one packed (minRank, maxRank) key per edge, pairs
	// holds the multiplicity-1 XNOR operand list handed to
	// BitCounter.AddXorPairs, and wPairs/wMults hold the rare
	// multiplicity-grouped operands. All grow to the largest edge count
	// seen and are then reused, keeping the blocked path at zero
	// allocations.
	edgeKeys []uint64
	pairs    []hdc.XorPair
	wPairs   []hdc.XorPair
	wMults   []int32

	// pout is the reusable output vector for prefix-width encodes
	// (EncodeGraphPackedPrefix); it re-allocates only when the requested
	// width changes, so one cascade configuration encodes allocation-free.
	pout *hdc.Binary
}

// NewScratch returns a fresh scratch bound to e, for callers that manage
// per-goroutine reuse themselves (the batch APIs and the benchmark
// harness). Everything else can rely on the pooled scratches behind
// EncodeGraph / EncodeGraphPacked / Ranks.
func (e *Encoder) NewScratch() *EncoderScratch {
	d := e.cfg.Dimension
	return &EncoderScratch{
		enc:     e,
		counter: hdc.NewBitCounter(d),
		packed:  hdc.NewBinary(d),
		bipolar: hdc.NewBipolar(d),
	}
}

// getScratch vends a pooled scratch; return it with putScratch. The pool
// keeps per-P free lists, so steady-state Get/Put allocates nothing.
func (e *Encoder) getScratch() *EncoderScratch {
	return e.scratch.Get().(*EncoderScratch)
}

func (e *Encoder) putScratch(s *EncoderScratch) { e.scratch.Put(s) }

// Ranks computes the centrality ranks of g's vertices into the scratch's
// reusable slice. The result is valid until the next call on s.
func (s *EncoderScratch) Ranks(g *graph.Graph) []int {
	e := s.enc
	s.ranks = centrality.RanksInto(g, e.cfg.Centrality, centrality.Options{
		Iterations: e.prOpts.Iterations,
		Damping:    e.prOpts.Damping,
	}, s.ranks, &s.cent)
	return s.ranks
}

// prepareGroups runs the rank-pair grouping of Enc_G's edge loop without
// touching the counter, reporting whether the packed fast path applies
// (it does not for the labeled extension or edgeless graphs — see
// Encoder.EncodeGraph).
//
// The grouping exploits the paper's structure instead of walking edges
// one by one: an edge's bind vector depends only on the unordered
// (rank_u, rank_v) pair of its endpoints (XNOR is commutative), so edges
// are grouped by rank pair in sorted rank order. Multiplicity-1 pairs —
// all of them, for simple graphs under bijective centrality ranks — land
// in s.pairs for the blocked carry-save kernels; the rare
// multiplicity-grouped pairs land in s.wPairs/s.wMults. Bundling counts
// are exact integer sums, so regrouping and reordering leave the
// encoding bit-for-bit identical to the per-edge scalar path.
func (s *EncoderScratch) prepareGroups(g *graph.Graph) bool {
	e := s.enc
	if e.cfg.UseVertexLabels && g.Labeled() {
		return false
	}
	edges := g.Edges()
	if len(edges) == 0 {
		return false
	}
	ranks := s.Ranks(g)
	packed := e.packedSlice(g.NumVertices())
	keys := s.edgeKeys[:0]
	for _, ed := range edges {
		ru, rv := ranks[ed.U], ranks[ed.V]
		if ru > rv {
			ru, rv = rv, ru
		}
		keys = append(keys, uint64(ru)<<32|uint64(uint32(rv)))
	}
	slices.Sort(keys)
	pairs := s.pairs[:0]
	wPairs := s.wPairs[:0]
	wMults := s.wMults[:0]
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		// XNOR of the packed endpoints is exactly the bipolar product
		// under the bit 1 ↔ +1 mapping.
		ru, rv := int(keys[i]>>32), int(uint32(keys[i]))
		if j-i == 1 {
			pairs = append(pairs, hdc.XorPair{A: packed[ru], B: packed[rv], Invert: true})
		} else {
			wPairs = append(wPairs, hdc.XorPair{A: packed[ru], B: packed[rv], Invert: true})
			wMults = append(wMults, int32(j-i))
		}
		i = j
	}
	s.edgeKeys, s.pairs, s.wPairs, s.wMults = keys, pairs, wPairs, wMults
	return true
}

// feedCounter streams the prepared groups into the scratch counter: the
// multiplicity-1 pairs through the blocked carry-save front end, the
// grouped ones with their multiplicities.
func (s *EncoderScratch) feedCounter() {
	c := s.counter
	c.Reset()
	c.AddXorPairs(s.pairs)
	for i, p := range s.wPairs {
		c.AddXorWeighted(p.A, p.B, p.Invert, int(s.wMults[i]))
	}
}

// fillCounter is prepareGroups + feedCounter, the general accumulation
// path for callers that need the counter filled (bipolar outputs).
func (s *EncoderScratch) fillCounter(g *graph.Graph) bool {
	if !s.prepareGroups(g) {
		return false
	}
	s.feedCounter()
	return true
}

// smallSignReady reports whether the prepared groups qualify for the
// one-shot bit-sliced majority kernel: unit multiplicities only (always
// true for simple graphs under bijective ranks) and a bundle small
// enough to count in six planes.
func (s *EncoderScratch) smallSignReady() bool {
	return len(s.wPairs) == 0 && len(s.pairs) > 0 && len(s.pairs) <= hdc.MaxSmallSign
}

// EncodeGraph is Encoder.EncodeGraph writing into the scratch's reusable
// bipolar hypervector on the fast path; the result is valid until the next
// call on s. (The labeled-extension and edgeless fallbacks still return a
// freshly allocated vector — they are off the hot path by construction.)
func (s *EncoderScratch) EncodeGraph(g *graph.Graph) *hdc.Bipolar {
	if s.fillCounter(g) {
		return s.counter.SignBipolarInto(s.enc.tie, s.bipolar)
	}
	return s.enc.encodeGraphSlow(g)
}

// EncodeGraphPacked is Encoder.EncodeGraphPacked writing into the
// scratch's reusable packed hypervector on the fast path; the result is
// valid until the next call on s. Bundles of up to hdc.MaxSmallSign
// unit-multiplicity edges — the common serving case — skip the counter
// tiers entirely via the one-shot bit-sliced majority kernel.
func (s *EncoderScratch) EncodeGraphPacked(g *graph.Graph) *hdc.Binary {
	if s.prepareGroups(g) {
		if s.smallSignReady() {
			return s.counter.SignXorPairsSmallInto(s.pairs, s.enc.packedTie, s.packed)
		}
		s.feedCounter()
		return s.counter.SignBinaryInto(s.enc.packedTie, s.packed)
	}
	return s.enc.encodeGraphSlow(g).PackBinary()
}

// prefixOut returns the scratch's reusable d-dimensional output buffer.
func (s *EncoderScratch) prefixOut(d int) *hdc.Binary {
	if s.pout == nil || s.pout.Dim() != d {
		s.pout = hdc.NewBinary(d)
	}
	return s.pout
}

// EncodeGraphPackedPrefix encodes the first d components of Enc_G(g) —
// bit-identical to EncodeGraphPacked(g).PrefixCopy(d), and therefore to
// the full encoding of a d-dimensional model sharing the basis prefix
// (majority bundling is componentwise) — at ~d/Dimension of the cost:
// the counter is narrowed with SetDim and consumes only the first
// ⌈d/64⌉ words of the full-width basis vectors, tail-masked, through the
// same kernel tiers. This is the stage-1 encode of cascade
// classification. The result lives in the scratch's prefix buffer, valid
// until the next prefix-width call on s; d must lie in [1, Dimension].
func (s *EncoderScratch) EncodeGraphPackedPrefix(g *graph.Graph, d int) *hdc.Binary {
	e := s.enc
	if d == e.cfg.Dimension {
		return s.EncodeGraphPacked(g)
	}
	if d < 1 || d > e.cfg.Dimension {
		panic(fmt.Sprintf("core: prefix dimension %d outside [1,%d]", d, e.cfg.Dimension))
	}
	if s.prepareGroups(g) {
		out := s.prefixOut(d)
		s.counter.SetDim(d)
		if s.smallSignReady() {
			s.counter.SignXorPairsSmallInto(s.pairs, e.packedTie, out)
		} else {
			s.feedCounter()
			s.counter.SignBinaryInto(e.packedTie, out)
		}
		s.counter.SetDim(e.cfg.Dimension)
		return out
	}
	// Reference fallback (labeled extension, edgeless): encode at full
	// width and slice — exact, by the componentwise identity.
	return e.encodeGraphSlow(g).PackBinary().PrefixCopy(d)
}

// encodeGraphNew is EncodeGraph for callers that retain the result (batch
// training): ranks and counts accumulate in the scratch, but the signed
// output is freshly allocated.
func (s *EncoderScratch) encodeGraphNew(g *graph.Graph) *hdc.Bipolar {
	if s.fillCounter(g) {
		return s.counter.SignBipolar(s.enc.tie)
	}
	return s.enc.encodeGraphSlow(g)
}

// encodeGraphPackedNew is EncodeGraphPacked with a freshly allocated
// output, for callers that retain the packed vector.
func (s *EncoderScratch) encodeGraphPackedNew(g *graph.Graph) *hdc.Binary {
	if s.prepareGroups(g) {
		if s.smallSignReady() {
			return s.counter.SignXorPairsSmallInto(s.pairs, s.enc.packedTie, hdc.NewBinary(s.enc.cfg.Dimension))
		}
		s.feedCounter()
		return s.counter.SignBinary(s.enc.packedTie)
	}
	return s.enc.encodeGraphSlow(g).PackBinary()
}
