package core

import (
	"sync"
	"testing"

	"graphhd/internal/dataset"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// TestScratchEncodeMatchesReferenceAllDatasets pins the tentpole guarantee
// of the scratch refactor: on every synthetic Table-I dataset, encoding
// through a reused EncoderScratch — bipolar and packed — is bit-for-bit
// identical to the slow reference pipeline and to the allocating APIs.
func TestScratchEncodeMatchesReferenceAllDatasets(t *testing.T) {
	for _, name := range dataset.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			count := 12
			if name == "DD" { // DD graphs are ~25× larger than the rest
				count = 4
			}
			ds, err := dataset.Generate(name, dataset.Options{Seed: 9, GraphCount: count})
			if err != nil {
				t.Fatal(err)
			}
			cfg := testConfig()
			cfg.Dimension = 1024
			enc := MustNewEncoder(cfg)
			s := enc.NewScratch()
			for i, g := range ds.Graphs {
				want := enc.encodeGraphSlow(g)
				if !s.EncodeGraph(g).Equal(want) {
					t.Fatalf("graph %d: scratch bipolar encode differs from reference", i)
				}
				if !s.EncodeGraphPacked(g).Equal(want.PackBinary()) {
					t.Fatalf("graph %d: scratch packed encode differs from reference", i)
				}
				if !enc.EncodeGraph(g).Equal(want) {
					t.Fatalf("graph %d: pooled bipolar encode differs from reference", i)
				}
			}
		})
	}
}

// TestScratchRanksMatchesRanks checks the scratch rank path against the
// allocating one, including reuse across graphs of shrinking size (stale
// buffer contents must never leak).
func TestScratchRanksMatchesRanks(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	s := enc.NewScratch()
	rng := hdc.NewRNG(61)
	sizes := []int{60, 9, 33, 2, 50, 17}
	for trial, n := range sizes {
		g := graph.ErdosRenyi(n, 0.15, rng)
		want := enc.Ranks(g)
		got := s.Ranks(g)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d ranks, want %d", trial, len(got), len(want))
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: rank[%d] = %d, want %d", trial, v, got[v], want[v])
			}
		}
	}
}

// TestScratchEncodeAllocationFree is the acceptance criterion of the
// refactor: steady-state unlabeled-graph encoding through a scratch
// performs zero heap allocations (previously ≥14 from the fresh BitCounter
// and the PageRank sort).
func TestScratchEncodeAllocationFree(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	g := graph.ErdosRenyi(60, 0.1, hdc.NewRNG(62))
	s := enc.NewScratch()
	s.EncodeGraphPacked(g) // warm buffers and the packed basis table
	if allocs := testing.AllocsPerRun(50, func() { s.EncodeGraphPacked(g) }); allocs != 0 {
		t.Fatalf("EncodeGraphPacked allocated %v times per run, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(50, func() { s.EncodeGraph(g) }); allocs != 0 {
		t.Fatalf("EncodeGraph allocated %v times per run, want 0", allocs)
	}
}

// TestPredictorPredictAllocationFree extends the guarantee end to end:
// PageRank, encode and packed query of a single graph allocate nothing in
// steady state.
func TestPredictorPredictAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops puts under the race detector, so the pooled path allocates")
	}
	gs, ys := twoClassDataset(10, 63)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	g := gs[0]
	pred.Predict(g) // warm the pooled scratch
	if allocs := testing.AllocsPerRun(50, func() { pred.Predict(g) }); allocs != 0 {
		t.Fatalf("Predictor.Predict allocated %v times per run, want 0", allocs)
	}
}

// TestScratchConcurrentFitPredict exercises the pooled-scratch path under
// contention (run with -race in CI): concurrent Fit, batch PredictAll and
// single predicts across goroutines must stay data-race-free and
// bit-identical to a sequential reference.
func TestScratchConcurrentFitPredict(t *testing.T) {
	rng := hdc.NewRNG(64)
	gs := make([]*graph.Graph, 48)
	ys := make([]int, len(gs))
	for i := range gs {
		if i%2 == 0 {
			gs[i] = graph.ErdosRenyi(24, 0.15, rng)
		} else {
			gs[i] = graph.WattsStrogatz(24, 4, 0.1, rng)
		}
		ys[i] = i % 2
	}
	cfg := testConfig()
	ref, err := Train(cfg, gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	refPred := ref.Snapshot()
	want := refPred.PredictAll(gs)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each goroutine trains its own model (concurrent Fit through the
			// shared pool machinery) and predicts both batch and single.
			m, err := Train(cfg, gs, ys)
			if err != nil {
				errs <- err.Error()
				return
			}
			pred := m.Snapshot()
			got := pred.PredictAll(gs)
			for i := range got {
				if got[i] != want[i] {
					errs <- "concurrent PredictAll diverged from sequential reference"
					return
				}
			}
			for i := w; i < len(gs); i += 6 {
				if pred.Predict(gs[i]) != want[i] {
					errs <- "concurrent Predict diverged from sequential reference"
					return
				}
				if ref.PredictPacked(gs[i]) != want[i] {
					errs <- "concurrent PredictPacked diverged from sequential reference"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestScratchSharedEncoderConcurrent hammers ONE encoder's pooled
// scratches from many goroutines encoding interleaved graphs, checking
// every result against precomputed references.
func TestScratchSharedEncoderConcurrent(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	rng := hdc.NewRNG(65)
	gs := make([]*graph.Graph, 40)
	want := make([]*hdc.Binary, len(gs))
	for i := range gs {
		gs[i] = graph.ErdosRenyi(10+3*i, 0.2, rng)
	}
	for i, g := range gs {
		want[i] = enc.EncodeGraphPacked(g)
	}
	var wg sync.WaitGroup
	var mismatch sync.Map
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := enc.NewScratch()
			for round := 0; round < 5; round++ {
				for i := (w + round) % len(gs); i < len(gs); i += 3 {
					if !s.EncodeGraphPacked(gs[i]).Equal(want[i]) {
						mismatch.Store(i, true)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	mismatch.Range(func(k, _ any) bool {
		t.Errorf("concurrent scratch encode mismatch on graph %v", k)
		return true
	})
}
