package core

import (
	"math"
	"testing"
	"testing/quick"

	"graphhd/internal/centrality"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// testConfig keeps dimensions small enough for fast tests while staying in
// the concentration regime where HDC similarity statistics hold.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Dimension = 2048
	return cfg
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Dimension: 0, PageRankIterations: 10, PageRankDamping: 0.85},
		{Dimension: 100, PageRankIterations: 0, PageRankDamping: 0.85},
		{Dimension: 100, PageRankIterations: 10, PageRankDamping: 1.0},
		{Dimension: 100, PageRankIterations: 10, PageRankDamping: -0.1},
	}
	for i, cfg := range bad {
		if _, err := NewEncoder(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if _, err := NewEncoder(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestMustNewEncoderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustNewEncoder(Config{})
}

func TestFastEncodeMatchesReference(t *testing.T) {
	// The bit-sliced fast path must be bit-for-bit identical to the int8
	// reference pipeline, including bundle ties (even edge counts).
	enc := MustNewEncoder(testConfig())
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		g := graph.ErdosRenyi(10+rng.Intn(20), 0.2, rng)
		return enc.EncodeGraph(g).Equal(enc.encodeGraphSlow(g))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
	// Structured graphs with heavy rank ties too.
	for _, g := range []*graph.Graph{graph.Ring(12), graph.Star(9), graph.Complete(6), graph.Grid(3, 4)} {
		if !enc.EncodeGraph(g).Equal(enc.encodeGraphSlow(g)) {
			t.Fatalf("fast/slow mismatch on %v", g)
		}
	}
}

func TestFastEncodeConcurrentSafe(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	gs := make([]*graph.Graph, 32)
	rng := hdc.NewRNG(99)
	for i := range gs {
		gs[i] = graph.ErdosRenyi(30, 0.2, rng)
	}
	want := make([]*hdc.Bipolar, len(gs))
	for i, g := range gs {
		want[i] = enc.EncodeGraph(g)
	}
	// Fresh encoder, concurrent access: results must match.
	enc2 := MustNewEncoder(testConfig())
	got := make([]*hdc.Bipolar, len(gs))
	done := make(chan int)
	for w := 0; w < 8; w++ {
		go func(w int) {
			for i := w; i < len(gs); i += 8 {
				got[i] = enc2.EncodeGraph(gs[i])
			}
			done <- 1
		}(w)
	}
	for w := 0; w < 8; w++ {
		<-done
	}
	for i := range gs {
		if !got[i].Equal(want[i]) {
			t.Fatalf("concurrent encode differs at %d", i)
		}
	}
}

func TestEncodeDeterministic(t *testing.T) {
	g := graph.ErdosRenyi(20, 0.2, hdc.NewRNG(1))
	e1 := MustNewEncoder(testConfig())
	e2 := MustNewEncoder(testConfig())
	if !e1.EncodeGraph(g).Equal(e2.EncodeGraph(g)) {
		t.Fatal("same config+graph encoded differently")
	}
}

func TestEncodeIsomorphismInvariance(t *testing.T) {
	// GraphHD encodes only topology, so relabeling vertices must give an
	// extremely similar hypervector (identical when PageRank ranks have no
	// ties; near-identical otherwise). The seeds are fixed rather than
	// drawn through quick.Check: rank tie-breaks depend on vertex ids, so
	// the cosine after relabeling is a statistical quantity (rarely dipping
	// below 0.8 on tie-heavy draws) and time-seeded sampling made this test
	// flake roughly once per ten runs.
	enc := MustNewEncoder(testConfig())
	for seed := uint64(1); seed <= 40; seed++ {
		rng := hdc.NewRNG(seed)
		g := graph.BarabasiAlbert(15, 2, rng)
		perm := rng.Perm(g.NumVertices())
		h := graph.Relabel(g, perm)
		if c := enc.EncodeGraph(g).Cosine(enc.EncodeGraph(h)); c <= 0.8 {
			t.Fatalf("seed %d: cosine after relabeling = %f", seed, c)
		}
	}
}

func TestEncodeDistinctGraphsDissimilar(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	rng := hdc.NewRNG(2)
	a := enc.EncodeGraph(graph.ErdosRenyi(30, 0.2, rng))
	b := enc.EncodeGraph(graph.BarabasiAlbert(30, 3, rng))
	if c := a.Cosine(b); c > 0.5 {
		t.Fatalf("unrelated graphs too similar: cos = %f", c)
	}
}

func TestEncodeEdgelessGraph(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	g := graph.NewBuilder(5).Build()
	hv := enc.EncodeGraph(g)
	if hv.Dim() != enc.Dimension() {
		t.Fatal("bad dimension")
	}
}

func TestEncodeEmptyGraph(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	g := graph.NewBuilder(0).Build()
	hv := enc.EncodeGraph(g)
	if !hv.Equal(enc.Tie()) {
		t.Fatal("empty graph should encode to the tie vector")
	}
}

func TestEncodeEdgeBindsEndpoints(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	g := graph.Path(3)
	vv := enc.VertexVectors(g)
	edge := enc.EncodeEdge(g, 0, 1)
	if !edge.Equal(vv[0].Bind(vv[1])) {
		t.Fatal("EncodeEdge is not the bind of endpoint vectors")
	}
	// Edge hypervectors are quasi-orthogonal to the endpoints.
	if c := math.Abs(edge.Cosine(vv[0])); c > 0.1 {
		t.Fatalf("edge vs endpoint cosine = %f", c)
	}
}

func TestVertexVectorsShareBasisByRank(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	// Two star graphs of the same size: hubs have rank 0 in both, so they
	// must share the hub basis hypervector.
	a := graph.Star(6)
	b := graph.Relabel(graph.Star(6), []int{5, 0, 1, 2, 3, 4})
	va := enc.VertexVectors(a)
	vb := enc.VertexVectors(b)
	if !va[0].Equal(vb[5]) {
		t.Fatal("hubs with equal rank got different basis vectors")
	}
}

func TestLabeledExtensionChangesEncoding(t *testing.T) {
	cfg := testConfig()
	cfg.UseVertexLabels = true
	enc := MustNewEncoder(cfg)
	b1 := graph.NewBuilder(3)
	b1.MustAddEdge(0, 1)
	b1.MustAddEdge(1, 2)
	if err := b1.SetVertexLabels([]int{0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	g1 := b1.Build()
	b2 := graph.NewBuilder(3)
	b2.MustAddEdge(0, 1)
	b2.MustAddEdge(1, 2)
	if err := b2.SetVertexLabels([]int{1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	g2 := b2.Build()
	if c := enc.EncodeGraph(g1).Cosine(enc.EncodeGraph(g2)); c > 0.5 {
		t.Fatalf("differently labeled graphs too similar: %f", c)
	}
	// Without the extension the encodings are identical.
	plain := MustNewEncoder(testConfig())
	if !plain.EncodeGraph(g1).Equal(plain.EncodeGraph(g2)) {
		t.Fatal("baseline encoder should ignore labels")
	}
}

func TestRankLabelVectorsDistinctAndStable(t *testing.T) {
	cfg := testConfig()
	cfg.UseVertexLabels = true
	enc := MustNewEncoder(cfg)
	a := enc.rankLabelVector(0, 0)
	b := enc.rankLabelVector(0, 1)
	c := enc.rankLabelVector(1, 0)
	if math.Abs(a.Cosine(b)) > 0.1 || math.Abs(a.Cosine(c)) > 0.1 || math.Abs(b.Cosine(c)) > 0.1 {
		t.Fatal("(rank,label) basis vectors not quasi-orthogonal")
	}
	if !enc.rankLabelVector(0, 0).Equal(a) {
		t.Fatal("lookup not stable")
	}
	// Negative labels (valid in TU files) must work too.
	neg := enc.rankLabelVector(0, -3)
	if math.Abs(neg.Cosine(a)) > 0.1 {
		t.Fatal("negative-label vector correlated")
	}
	// A second encoder with the same seed produces the same vectors
	// regardless of access order.
	enc2 := MustNewEncoder(cfg)
	if !enc2.rankLabelVector(1, 0).Equal(c) {
		t.Fatal("keyed generation not deterministic")
	}
}

// twoClassDataset builds an easily separable two-class problem:
// class 0 = sparse ER graphs, class 1 = hub-dominated BA graphs.
func twoClassDataset(n int, seed uint64) ([]*graph.Graph, []int) {
	rng := hdc.NewRNG(seed)
	var gs []*graph.Graph
	var ys []int
	for i := 0; i < n; i++ {
		gs = append(gs, graph.ErdosRenyi(24, 0.08, rng))
		ys = append(ys, 0)
		gs = append(gs, graph.BarabasiAlbert(24, 1, rng))
		ys = append(ys, 1)
	}
	return gs, ys
}

func TestTrainPredictSeparable(t *testing.T) {
	gs, ys := twoClassDataset(30, 3)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	testG, testY := twoClassDataset(10, 99)
	correct := 0
	for i, g := range testG {
		if m.Predict(g) == testY[i] {
			correct++
		}
	}
	acc := float64(correct) / float64(len(testG))
	if acc < 0.85 {
		t.Fatalf("accuracy = %f on trivially separable data", acc)
	}
}

func TestPredictAllMatchesPredict(t *testing.T) {
	gs, ys := twoClassDataset(10, 4)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	batch := m.PredictAll(gs)
	for i, g := range gs {
		if batch[i] != m.Predict(g) {
			t.Fatalf("batch and single predictions differ at %d", i)
		}
	}
}

func TestFitParallelEqualsSequential(t *testing.T) {
	gs, ys := twoClassDataset(16, 5)
	cfg := testConfig()
	enc1 := MustNewEncoder(cfg)
	m1, _ := NewModel(enc1, 2)
	if err := m1.Fit(gs, ys); err != nil {
		t.Fatal(err)
	}
	enc2 := MustNewEncoder(cfg)
	m2, _ := NewModel(enc2, 2)
	for i, g := range gs {
		if _, err := m2.Learn(g, ys[i]); err != nil {
			t.Fatal(err)
		}
	}
	for c := 0; c < 2; c++ {
		if !m1.ClassVector(c).Equal(m2.ClassVector(c)) {
			t.Fatalf("class %d vector differs between Fit and sequential Learn", c)
		}
	}
}

func TestModelErrors(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	if _, err := NewModel(enc, 0); err == nil {
		t.Fatal("expected class count error")
	}
	m, _ := NewModel(enc, 2)
	if _, err := m.Learn(graph.Ring(4), 5); err == nil {
		t.Fatal("expected label range error")
	}
	if err := m.Fit([]*graph.Graph{graph.Ring(3)}, []int{0, 1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := m.Fit([]*graph.Graph{graph.Ring(3)}, []int{9}); err == nil {
		t.Fatal("expected label range error in Fit")
	}
	if _, err := Train(testConfig(), nil, nil); err == nil {
		t.Fatal("expected empty training set error")
	}
}

func TestSimilaritiesShape(t *testing.T) {
	gs, ys := twoClassDataset(5, 6)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	sims := m.Similarities(gs[0])
	if len(sims) != 2 {
		t.Fatalf("similarities length = %d", len(sims))
	}
	for _, s := range sims {
		if s < -1.0001 || s > 1.0001 {
			t.Fatalf("similarity %f outside [-1,1]", s)
		}
	}
}

func TestBipolarClassVectorMode(t *testing.T) {
	cfg := testConfig()
	cfg.BipolarClassVectors = true
	gs, ys := twoClassDataset(30, 7)
	m, err := Train(cfg, gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	testG, testY := twoClassDataset(10, 77)
	correct := 0
	for i, g := range testG {
		if m.Predict(g) == testY[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(testG)); acc < 0.8 {
		t.Fatalf("bipolar-mode accuracy = %f", acc)
	}
}

func TestRetrainReducesTrainingErrors(t *testing.T) {
	// A harder problem: same generator family, different parameter.
	rng := hdc.NewRNG(8)
	var gs []*graph.Graph
	var ys []int
	for i := 0; i < 40; i++ {
		gs = append(gs, graph.ErdosRenyi(20, 0.10, rng))
		ys = append(ys, 0)
		gs = append(gs, graph.ErdosRenyi(20, 0.18, rng))
		ys = append(ys, 1)
	}
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	trainAcc := func() float64 {
		c := 0
		for i, g := range gs {
			if m.Predict(g) == ys[i] {
				c++
			}
		}
		return float64(c) / float64(len(gs))
	}
	before := trainAcc()
	updates, err := m.Retrain(gs, ys, RetrainOptions{Epochs: 10})
	if err != nil {
		t.Fatal(err)
	}
	after := trainAcc()
	if after < before-1e-9 {
		t.Fatalf("retraining hurt training accuracy: %f -> %f", before, after)
	}
	if len(updates) == 0 {
		t.Fatal("no epochs recorded")
	}
}

func TestRetrainErrors(t *testing.T) {
	gs, ys := twoClassDataset(4, 9)
	m, err := Train(testConfig(), gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Retrain(gs, ys[:1], RetrainOptions{}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestRetrainShuffleDeterministic(t *testing.T) {
	gs, ys := twoClassDataset(10, 10)
	seed := uint64(42)
	run := func() []int {
		m, err := Train(testConfig(), gs, ys)
		if err != nil {
			t.Fatal(err)
		}
		u, err := m.Retrain(gs, ys, RetrainOptions{Epochs: 3, ShuffleSeed: &seed})
		if err != nil {
			t.Fatal(err)
		}
		return u
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic epoch count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("nondeterministic updates")
		}
	}
}

func TestMultiPrototypeModel(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	mp, err := NewMultiPrototypeModel(enc, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	gs, ys := twoClassDataset(20, 11)
	if err := mp.Fit(gs, ys); err != nil {
		t.Fatal(err)
	}
	if mp.NumClasses() != 2 {
		t.Fatal("class count")
	}
	if mp.NumPrototypes(0) != 3 || mp.NumPrototypes(1) != 3 {
		t.Fatalf("prototypes = %d/%d, want 3/3", mp.NumPrototypes(0), mp.NumPrototypes(1))
	}
	testG, testY := twoClassDataset(10, 111)
	preds := mp.PredictAll(testG)
	correct := 0
	for i := range preds {
		if preds[i] == testY[i] {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(testG)); acc < 0.8 {
		t.Fatalf("multi-prototype accuracy = %f", acc)
	}
}

func TestMultiPrototypeErrors(t *testing.T) {
	enc := MustNewEncoder(testConfig())
	if _, err := NewMultiPrototypeModel(enc, 0, 1); err == nil {
		t.Fatal("expected class count error")
	}
	if _, err := NewMultiPrototypeModel(enc, 2, 0); err == nil {
		t.Fatal("expected prototype count error")
	}
	mp, _ := NewMultiPrototypeModel(enc, 2, 1)
	if err := mp.Learn(graph.Ring(4), 7); err == nil {
		t.Fatal("expected label range error")
	}
	if err := mp.Fit([]*graph.Graph{graph.Ring(3)}, nil); err == nil {
		t.Fatal("expected length mismatch")
	}
	// Untrained model predicts class 0.
	if got := mp.Predict(graph.Ring(4)); got != 0 {
		t.Fatalf("untrained prediction = %d", got)
	}
}

func TestHigherDimensionImprovesOrMatchesSeparation(t *testing.T) {
	// Sanity check behind the dimension ablation: on a fixed problem the
	// class-margin statistics should not collapse as d grows.
	gs, ys := twoClassDataset(20, 12)
	accAt := func(d int) float64 {
		cfg := testConfig()
		cfg.Dimension = d
		m, err := Train(cfg, gs, ys)
		if err != nil {
			t.Fatal(err)
		}
		testG, testY := twoClassDataset(15, 120)
		c := 0
		for i, g := range testG {
			if m.Predict(g) == testY[i] {
				c++
			}
		}
		return float64(c) / float64(len(testG))
	}
	lo, hi := accAt(64), accAt(4096)
	if hi < lo-0.15 {
		t.Fatalf("accuracy degraded with dimension: d=64 %f vs d=4096 %f", lo, hi)
	}
}

func TestCentralityMetricChangesEncoding(t *testing.T) {
	// A graph whose PageRank and degree orderings differ must encode
	// differently under the two metrics; a rank-tied symmetric graph
	// encodes identically.
	cfgPR := testConfig()
	cfgDeg := testConfig()
	cfgDeg.Centrality = centrality.Degree
	encPR := MustNewEncoder(cfgPR)
	encDeg := MustNewEncoder(cfgDeg)

	g := graph.BarabasiAlbert(30, 2, hdc.NewRNG(55))
	rPR := encPR.Ranks(g)
	rDeg := encDeg.Ranks(g)
	differ := false
	for i := range rPR {
		if rPR[i] != rDeg[i] {
			differ = true
			break
		}
	}
	if differ {
		if encPR.EncodeGraph(g).Equal(encDeg.EncodeGraph(g)) {
			t.Fatal("different rankings produced identical encodings")
		}
	}
	ring := graph.Ring(10)
	if !encPR.EncodeGraph(ring).Equal(encDeg.EncodeGraph(ring)) {
		t.Fatal("fully tied rankings should encode identically")
	}
}

func TestCentralityMetricsAllTrainable(t *testing.T) {
	gs, ys := twoClassDataset(15, 66)
	for _, m := range centrality.AllMetrics() {
		cfg := testConfig()
		cfg.Centrality = m
		model, err := Train(cfg, gs, ys)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		preds := model.PredictAll(gs)
		if eval := trainAccOf(preds, ys); eval < 0.8 {
			t.Fatalf("%s train accuracy = %f", m, eval)
		}
	}
}

func trainAccOf(preds, ys []int) float64 {
	c := 0
	for i := range preds {
		if preds[i] == ys[i] {
			c++
		}
	}
	return float64(c) / float64(len(preds))
}
