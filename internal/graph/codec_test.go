package graph

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestGraphJSONRoundTrip(t *testing.T) {
	b := NewBuilder(5)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	b.MustAddEdge(3, 4)
	g := b.Build()

	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGraph(data, CodecLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: got %v want %v", back, g)
	}
	for i, e := range back.Edges() {
		if e != g.Edges()[i] {
			t.Fatalf("edge %d: got %v want %v", i, e, g.Edges()[i])
		}
	}
	if back.Labeled() {
		t.Fatal("unlabeled graph came back labeled")
	}
}

func TestGraphJSONRoundTripLabeled(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	b.MustAddEdge(1, 2)
	if err := b.SetVertexLabels([]int{7, 8, 7}); err != nil {
		t.Fatal(err)
	}
	g := b.Build()

	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "vertex_labels") {
		t.Fatalf("labels missing from wire form %s", data)
	}
	back, err := UnmarshalGraph(data, CodecLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if !back.Labeled() {
		t.Fatal("labels lost in round trip")
	}
	for v := 0; v < g.NumVertices(); v++ {
		if back.VertexLabel(v) != g.VertexLabel(v) {
			t.Fatalf("vertex %d label: got %d want %d", v, back.VertexLabel(v), g.VertexLabel(v))
		}
	}
}

func TestGraphJSONNormalizesLikeBuilder(t *testing.T) {
	// Duplicates, reversed orientation and self-loops all normalize away,
	// exactly as Builder.AddEdge does.
	g, err := UnmarshalGraph([]byte(`{"num_vertices":3,"edges":[[1,0],[0,1],[2,2],[1,2]]}`), CodecLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("got %d edges, want 2", g.NumEdges())
	}
}

func TestGraphJSONRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		lim  CodecLimits
	}{
		{"negative vertices", `{"num_vertices":-1,"edges":[]}`, CodecLimits{}},
		{"edge out of range", `{"num_vertices":2,"edges":[[0,2]]}`, CodecLimits{}},
		{"negative endpoint", `{"num_vertices":2,"edges":[[-1,0]]}`, CodecLimits{}},
		{"label count mismatch", `{"num_vertices":2,"edges":[],"vertex_labels":[1]}`, CodecLimits{}},
		{"too many vertices", `{"num_vertices":100,"edges":[]}`, CodecLimits{MaxVertices: 10}},
		{"too many edges", `{"num_vertices":3,"edges":[[0,1],[1,2]]}`, CodecLimits{MaxEdges: 1}},
		{"negative label", `{"num_vertices":1,"edges":[],"vertex_labels":[-1]}`, CodecLimits{}},
		{"label over limit", `{"num_vertices":1,"edges":[],"vertex_labels":[9]}`, CodecLimits{MaxVertexLabel: 8}},
		{"not JSON", `{`, CodecLimits{}},
	}
	for _, tc := range cases {
		if _, err := UnmarshalGraph([]byte(tc.doc), tc.lim); err == nil {
			t.Errorf("%s: decode succeeded, want error", tc.name)
		}
	}
}

func TestGraphJSONEmptyGraph(t *testing.T) {
	g, err := UnmarshalGraph([]byte(`{"num_vertices":0,"edges":[]}`), CodecLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph decoded as %v", g)
	}
	// And it re-encodes to valid JSON.
	if _, err := json.Marshal(ToJSON(g)); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeGraphReader(t *testing.T) {
	g, err := DecodeGraph(strings.NewReader(`{"num_vertices":2,"edges":[[0,1]]}`), CodecLimits{})
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("edge lost through reader decode")
	}
}
