package graph

import (
	"bytes"
	"testing"
)

// FuzzGraphCodec is the differential fuzz target for the JSON wire codec,
// the byte surface the serving subsystem exposes to untrusted clients.
// Arbitrary bytes are decoded under both the default and a deliberately
// tight CodecLimits; whatever the input, decoding must never panic, limit
// violations must surface as errors, and any accepted graph must satisfy
// the decode→encode→decode fixpoint: re-encoding the decoded graph and
// decoding it again reproduces the same wire bytes and the same graph.
// (The first encode is not compared to the input — the wire form is not
// canonical: key order, whitespace, duplicate edges and self-loops all
// normalize on decode.)
//
// Run with `go test -fuzz FuzzGraphCodec ./internal/graph` for continuous
// fuzzing; the seed corpus under testdata/fuzz/FuzzGraphCodec plus the
// f.Add seeds run in normal test mode.
func FuzzGraphCodec(f *testing.F) {
	f.Add([]byte(`{"num_vertices":4,"edges":[[0,1],[1,2],[2,3]]}`))
	f.Add([]byte(`{"num_vertices":3,"edges":[[0,1],[1,0],[2,2]],"vertex_labels":[5,0,7]}`))
	f.Add([]byte(`{"num_vertices":0,"edges":[]}`))
	f.Add([]byte(`{"num_vertices":-1}`))
	f.Add([]byte(`{"num_vertices":1e99}`))
	f.Add([]byte(`{"edges":[[0,0,0]]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(`{"num_vertices":2,"vertex_labels":[1]}`))
	tight := CodecLimits{MaxVertices: 6, MaxEdges: 4, MaxVertexLabel: 3}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, limits := range []CodecLimits{{}, tight} {
			g, err := UnmarshalGraph(data, limits)
			if err != nil {
				continue // rejected inputs must only ever error, not panic
			}
			resolved := limits.resolve()
			if g.NumVertices() > resolved.MaxVertices {
				t.Fatalf("accepted graph with %d vertices over limit %d", g.NumVertices(), resolved.MaxVertices)
			}
			if g.NumEdges() > resolved.MaxEdges {
				t.Fatalf("accepted graph with %d edges over limit %d", g.NumEdges(), resolved.MaxEdges)
			}
			wire1, err := MarshalGraph(g)
			if err != nil {
				t.Fatalf("re-encoding accepted graph: %v", err)
			}
			g2, err := UnmarshalGraph(wire1, limits)
			if err != nil {
				t.Fatalf("decoding own encoding under the same limits: %v\nwire: %s", err, wire1)
			}
			wire2, err := MarshalGraph(g2)
			if err != nil {
				t.Fatalf("re-encoding round-tripped graph: %v", err)
			}
			if !bytes.Equal(wire1, wire2) {
				t.Fatalf("encode/decode fixpoint violated:\nfirst:  %s\nsecond: %s", wire1, wire2)
			}
			if !graphsEqual(g, g2) {
				t.Fatalf("round-tripped graph differs from original\nwire: %s", wire1)
			}
		}
	})
}

// graphsEqual compares vertex counts, edge lists and labels.
func graphsEqual(a, b *Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		return false
	}
	ae, be := a.Edges(), b.Edges()
	for i := range ae {
		if ae[i] != be[i] {
			return false
		}
	}
	// Labeledness may legitimately differ for the empty-label edge case
	// (omitempty drops a zero-length label list), but per-vertex labels
	// must agree whenever there are vertices.
	for v := 0; v < a.NumVertices(); v++ {
		if a.VertexLabel(v) != b.VertexLabel(v) {
			return false
		}
	}
	return true
}
