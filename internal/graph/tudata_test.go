package graph

import (
	"path/filepath"
	"strings"
	"testing"

	"graphhd/internal/hdc"
)

func sampleDataset(t *testing.T, labeled bool) *Dataset {
	t.Helper()
	mk := func(n int, edges [][2]int, labels []int) *Graph {
		b := NewBuilder(n)
		for _, e := range edges {
			b.MustAddEdge(e[0], e[1])
		}
		if labeled {
			if err := b.SetVertexLabels(labels); err != nil {
				t.Fatal(err)
			}
		}
		return b.Build()
	}
	return &Dataset{
		Name: "SAMPLE",
		Graphs: []*Graph{
			mk(3, [][2]int{{0, 1}, {1, 2}, {2, 0}}, []int{1, 1, 2}),
			mk(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}, []int{1, 2, 2, 1}),
			mk(2, [][2]int{{0, 1}}, []int{3, 3}),
		},
		Labels:     []int{0, 1, 0},
		ClassNames: []string{"-1", "1"},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, labeled := range []bool{false, true} {
		dir := t.TempDir()
		ds := sampleDataset(t, labeled)
		if err := WriteTUDataset(dir, ds); err != nil {
			t.Fatal(err)
		}
		got, err := ReadTUDataset(dir, "SAMPLE")
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != ds.Len() || got.NumClasses() != 2 {
			t.Fatalf("labeled=%v: got %d graphs %d classes", labeled, got.Len(), got.NumClasses())
		}
		for i := range ds.Graphs {
			a, b := ds.Graphs[i], got.Graphs[i]
			if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
				t.Fatalf("labeled=%v graph %d: %v vs %v", labeled, i, a, b)
			}
			for j, e := range a.Edges() {
				if b.Edges()[j] != e {
					t.Fatalf("graph %d edge %d mismatch", i, j)
				}
			}
			if labeled {
				if !b.Labeled() {
					t.Fatalf("graph %d lost labels", i)
				}
				for v := 0; v < a.NumVertices(); v++ {
					if a.VertexLabel(v) != b.VertexLabel(v) {
						t.Fatalf("graph %d vertex %d label mismatch", i, v)
					}
				}
			}
		}
		if got.Labels[0] != ds.Labels[0] || got.Labels[1] != ds.Labels[1] {
			t.Fatalf("labels mismatch: %v vs %v", got.Labels, ds.Labels)
		}
	}
}

func TestReadTUDatasetMissingDir(t *testing.T) {
	if _, err := ReadTUDataset(t.TempDir(), "NOPE"); err == nil {
		t.Fatal("expected error for missing dataset")
	}
}

func TestAssembleTURejectsCrossGraphEdges(t *testing.T) {
	_, err := assembleTU("X",
		[]int{1, 2},      // two vertices, two graphs
		[]int{0, 1},      // two graph labels
		[][2]int{{1, 2}}, // edge across graphs
		nil)
	if err == nil || !strings.Contains(err.Error(), "crosses graphs") {
		t.Fatalf("err = %v", err)
	}
}

func TestAssembleTURejectsBadIndicator(t *testing.T) {
	_, err := assembleTU("X", []int{1, 5}, []int{0, 1}, nil, nil)
	if err == nil {
		t.Fatal("expected indicator range error")
	}
}

func TestAssembleTURejectsBadAdjacency(t *testing.T) {
	_, err := assembleTU("X", []int{1}, []int{0}, [][2]int{{1, 9}}, nil)
	if err == nil {
		t.Fatal("expected adjacency range error")
	}
}

func TestAssembleTUNodeLabelMismatch(t *testing.T) {
	_, err := assembleTU("X", []int{1, 1}, []int{0}, nil, []int{7})
	if err == nil {
		t.Fatal("expected node label count error")
	}
}

func TestRemapLabels(t *testing.T) {
	dense, names := remapLabels([]int{5, -1, 5, 3})
	if len(names) != 3 || names[0] != "-1" || names[1] != "3" || names[2] != "5" {
		t.Fatalf("names = %v", names)
	}
	want := []int{2, 0, 2, 1}
	for i, w := range want {
		if dense[i] != w {
			t.Fatalf("dense = %v, want %v", dense, want)
		}
	}
}

func TestParseIntLines(t *testing.T) {
	got, err := parseIntLines(strings.NewReader("1\n\n 2 \n3\n"), "mem")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[1] != 2 {
		t.Fatalf("got %v", got)
	}
	if _, err := parseIntLines(strings.NewReader("x\n"), "mem"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestParsePairLines(t *testing.T) {
	got, err := parsePairLines(strings.NewReader("1, 2\n3,4\n"), "mem")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[1] != [2]int{3, 4} {
		t.Fatalf("got %v", got)
	}
	for _, bad := range []string{"1\n", "1, x\n", "y, 2\n", "1, 2, 3\n"} {
		if _, err := parsePairLines(strings.NewReader(bad), "mem"); err == nil {
			t.Fatalf("expected error for %q", bad)
		}
	}
}

func TestDatasetSubset(t *testing.T) {
	ds := sampleDataset(t, false)
	sub := ds.Subset([]int{2, 0})
	if sub.Len() != 2 || sub.Labels[0] != 0 || sub.Graphs[0] != ds.Graphs[2] {
		t.Fatalf("subset wrong: %+v", sub)
	}
}

func TestDatasetValidate(t *testing.T) {
	ds := sampleDataset(t, false)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{Name: "B", Graphs: ds.Graphs, Labels: []int{0}, ClassNames: []string{"0"}}
	if err := bad.Validate(); err == nil {
		t.Fatal("expected length mismatch error")
	}
	bad2 := &Dataset{Name: "B", Graphs: ds.Graphs[:1], Labels: []int{5}, ClassNames: []string{"0"}}
	if err := bad2.Validate(); err == nil {
		t.Fatal("expected label range error")
	}
}

func TestDatasetMaxVertices(t *testing.T) {
	ds := sampleDataset(t, false)
	if ds.MaxVertices() != 4 {
		t.Fatalf("max vertices = %d", ds.MaxVertices())
	}
}

func TestWriteTUDatasetLargeRoundTrip(t *testing.T) {
	// A bigger randomized round trip to shake out format edge cases.
	rng := hdc.NewRNG(99)
	ds := &Dataset{Name: "BIG", ClassNames: []string{"0", "1"}}
	for i := 0; i < 30; i++ {
		ds.Graphs = append(ds.Graphs, ErdosRenyi(5+rng.Intn(30), 0.15, rng))
		ds.Labels = append(ds.Labels, i%2)
	}
	dir := t.TempDir()
	if err := WriteTUDataset(dir, ds); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTUDataset(dir, "BIG")
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Graphs {
		if got.Graphs[i].NumEdges() != ds.Graphs[i].NumEdges() {
			t.Fatalf("graph %d edge count mismatch", i)
		}
	}
	if filepath.Join(dir, "BIG") == "" {
		t.Fatal("unreachable")
	}
}

func TestComputeStats(t *testing.T) {
	ds := sampleDataset(t, false)
	st := ComputeStats(ds)
	if st.Graphs != 3 || st.Classes != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgVertices != 3 { // (3+4+2)/3
		t.Fatalf("avg vertices = %f", st.AvgVertices)
	}
	if st.PerClass[0] != 2 || st.PerClass[1] != 1 {
		t.Fatalf("per class = %v", st.PerClass)
	}
	if st.MaxVertices != 4 || st.MaxEdges != 3 {
		t.Fatalf("max = %d/%d", st.MaxVertices, st.MaxEdges)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(&Dataset{Name: "E", ClassNames: []string{"0"}})
	if st.Graphs != 0 || st.AvgVertices != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStatsTable(t *testing.T) {
	ds := sampleDataset(t, false)
	table := StatsTable([]Stats{ComputeStats(ds)})
	if !strings.Contains(table, "SAMPLE") || !strings.Contains(table, "Avg. vertices") {
		t.Fatalf("table = %q", table)
	}
}

func TestComputeExtendedStats(t *testing.T) {
	ds := sampleDataset(t, false)
	st := ComputeExtendedStats(ds)
	if st.Graphs != 3 {
		t.Fatalf("graphs = %d", st.Graphs)
	}
	// Graph 0 is a triangle: diameter 1, clustering 1, degeneracy 2, 1 tri.
	// Graph 1 is P4: diameter 3. Graph 2 is P2: diameter 1.
	if want := (1.0 + 3.0 + 1.0) / 3; st.AvgDiameter != want {
		t.Fatalf("avg diameter = %v, want %v", st.AvgDiameter, want)
	}
	if want := 1.0 / 3; st.AvgClustering != want {
		t.Fatalf("avg clustering = %v, want %v", st.AvgClustering, want)
	}
	if want := (2.0 + 1.0 + 1.0) / 3; st.AvgDegeneracy != want {
		t.Fatalf("avg degeneracy = %v, want %v", st.AvgDegeneracy, want)
	}
	if want := 1.0 / 3; st.AvgTriangles != want {
		t.Fatalf("avg triangles = %v, want %v", st.AvgTriangles, want)
	}
	if st.ExtendedRow() == "" {
		t.Fatal("empty row")
	}
	empty := ComputeExtendedStats(&Dataset{Name: "E", ClassNames: []string{"0"}})
	if empty.AvgDiameter != 0 {
		t.Fatal("empty dataset extended stats")
	}
}
