package graph

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON wire codec for graphs, the request format of the serving subsystem
// (internal/serve). The wire form is deliberately minimal — a vertex count,
// an edge list, and optional categorical vertex labels — because that is
// exactly the information Enc_G consumes; everything else (CSR adjacency,
// sorted edge order) is derived on decode by the ordinary Builder, so a
// decoded graph is indistinguishable from one built in-process and the
// duplicate-edge / self-loop normalization rules are identical.
//
//	{"num_vertices": 4, "edges": [[0,1],[1,2],[2,3]], "vertex_labels": [0,1,0,1]}

// GraphJSON is the wire representation of a Graph.
type GraphJSON struct {
	// NumVertices is |V|; vertices are the integers [0, NumVertices).
	NumVertices int `json:"num_vertices"`
	// Edges lists undirected edges as [u, v] pairs. Order is free;
	// duplicates and self-loops are dropped on decode, matching Builder.
	Edges [][2]int `json:"edges"`
	// VertexLabels optionally carries one categorical label per vertex
	// (the labeled-graph extension). Omitted for unlabeled graphs.
	VertexLabels []int `json:"vertex_labels,omitempty"`
}

// CodecLimits bounds what a decoded graph may look like, protecting a
// server from hostile or accidental oversized payloads. The zero value
// applies DefaultCodecLimits. The vertex and label caps matter beyond
// payload size: an Encoder lazily materializes and permanently caches one
// basis hypervector per centrality rank (bounded by the largest vertex
// count ever seen) and per (rank, label) pair, so unbounded wire graphs
// would translate into unbounded server memory.
type CodecLimits struct {
	// MaxVertices caps NumVertices; non-positive selects the default.
	MaxVertices int
	// MaxEdges caps len(Edges); non-positive selects the default.
	MaxEdges int
	// MaxVertexLabel caps each vertex label value (labels are also
	// required to be non-negative); non-positive selects the default.
	MaxVertexLabel int
}

// DefaultCodecLimits are generous for graph-classification workloads —
// Table-I graphs average a few hundred vertices, and the Figure 4 scaling
// study tops out at ~10^4 — while keeping the worst-case basis-vector
// cache a server can be forced to populate modest (at d = 10,000,
// MaxVertices rank vectors cost ~d·9/8 bytes each, ~184 MB total).
var DefaultCodecLimits = CodecLimits{MaxVertices: 1 << 14, MaxEdges: 1 << 20, MaxVertexLabel: 1 << 16}

func (l CodecLimits) resolve() CodecLimits {
	if l.MaxVertices <= 0 {
		l.MaxVertices = DefaultCodecLimits.MaxVertices
	}
	if l.MaxEdges <= 0 {
		l.MaxEdges = DefaultCodecLimits.MaxEdges
	}
	if l.MaxVertexLabel <= 0 {
		l.MaxVertexLabel = DefaultCodecLimits.MaxVertexLabel
	}
	return l
}

// ToJSON converts g to its wire representation. The edge and label slices
// are freshly allocated; g is not retained.
func ToJSON(g *Graph) *GraphJSON {
	w := &GraphJSON{NumVertices: g.NumVertices(), Edges: make([][2]int, g.NumEdges())}
	for i, e := range g.Edges() {
		w.Edges[i] = [2]int{int(e.U), int(e.V)}
	}
	if g.Labeled() {
		w.VertexLabels = make([]int, g.NumVertices())
		for v := range w.VertexLabels {
			w.VertexLabels[v] = g.VertexLabel(v)
		}
	}
	return w
}

// Graph validates the wire form against limits and builds the immutable
// in-memory graph. Errors name the offending field so a server can return
// them to the client verbatim.
func (w *GraphJSON) Graph(limits CodecLimits) (*Graph, error) {
	limits = limits.resolve()
	if w.NumVertices < 0 {
		return nil, fmt.Errorf("graph: negative num_vertices %d", w.NumVertices)
	}
	if w.NumVertices > limits.MaxVertices {
		return nil, fmt.Errorf("graph: num_vertices %d exceeds limit %d", w.NumVertices, limits.MaxVertices)
	}
	if len(w.Edges) > limits.MaxEdges {
		return nil, fmt.Errorf("graph: %d edges exceed limit %d", len(w.Edges), limits.MaxEdges)
	}
	if w.VertexLabels != nil && len(w.VertexLabels) != w.NumVertices {
		return nil, fmt.Errorf("graph: %d vertex_labels for %d vertices", len(w.VertexLabels), w.NumVertices)
	}
	for v, l := range w.VertexLabels {
		if l < 0 || l > limits.MaxVertexLabel {
			return nil, fmt.Errorf("graph: vertex_labels[%d] = %d outside [0, %d]", v, l, limits.MaxVertexLabel)
		}
	}
	b := NewBuilder(w.NumVertices)
	for i, e := range w.Edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("graph: edges[%d]: %w", i, err)
		}
	}
	if w.VertexLabels != nil {
		if err := b.SetVertexLabels(w.VertexLabels); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}

// MarshalGraph writes g's wire form as JSON.
func MarshalGraph(g *Graph) ([]byte, error) {
	return json.Marshal(ToJSON(g))
}

// UnmarshalGraph parses a wire-form JSON document and builds the graph.
func UnmarshalGraph(data []byte, limits CodecLimits) (*Graph, error) {
	var w GraphJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("graph: decode JSON: %w", err)
	}
	return w.Graph(limits)
}

// DecodeGraph reads one wire-form JSON document from r and builds the
// graph.
func DecodeGraph(r io.Reader, limits CodecLimits) (*Graph, error) {
	var w GraphJSON
	if err := json.NewDecoder(r).Decode(&w); err != nil {
		return nil, fmt.Errorf("graph: decode JSON: %w", err)
	}
	return w.Graph(limits)
}
