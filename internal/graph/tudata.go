package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// This file implements the TUDataset flat-file exchange format
// (https://chrsmrrs.github.io/datasets/docs/format/), the format the
// paper's six benchmarks ship in. A dataset DS is a directory containing:
//
//	DS_A.txt               sparse adjacency: one "row, col" pair per line,
//	                       1-based global vertex ids, both directions listed
//	DS_graph_indicator.txt line i holds the 1-based graph id of vertex i
//	DS_graph_labels.txt    line k holds the class label of graph k
//	DS_node_labels.txt     (optional) line i holds the label of vertex i
//
// ReadTUDataset parses a directory in this format into a Dataset;
// WriteTUDataset emits one, so the synthetic datasets produced by
// cmd/datagen are interchangeable with real TUDataset downloads.

// Dataset is a labeled collection of graphs: the unit of every experiment
// in the paper.
type Dataset struct {
	Name   string
	Graphs []*Graph
	// Labels[i] is the class of Graphs[i], remapped to [0, NumClasses).
	Labels []int
	// ClassNames[c] is the original label value for remapped class c.
	ClassNames []string
}

// Len returns the number of graphs.
func (d *Dataset) Len() int { return len(d.Graphs) }

// NumClasses returns the number of distinct classes.
func (d *Dataset) NumClasses() int { return len(d.ClassNames) }

// MaxVertices returns the largest vertex count over all graphs.
func (d *Dataset) MaxVertices() int {
	m := 0
	for _, g := range d.Graphs {
		if g.NumVertices() > m {
			m = g.NumVertices()
		}
	}
	return m
}

// Subset returns a view of the dataset restricted to the given indices.
// Graphs are shared, not copied.
func (d *Dataset) Subset(idx []int) *Dataset {
	s := &Dataset{Name: d.Name, ClassNames: d.ClassNames}
	s.Graphs = make([]*Graph, len(idx))
	s.Labels = make([]int, len(idx))
	for i, j := range idx {
		s.Graphs[i] = d.Graphs[j]
		s.Labels[i] = d.Labels[j]
	}
	return s
}

// Validate checks internal consistency: parallel slices, labels in range.
func (d *Dataset) Validate() error {
	if len(d.Graphs) != len(d.Labels) {
		return fmt.Errorf("dataset %s: %d graphs but %d labels", d.Name, len(d.Graphs), len(d.Labels))
	}
	k := d.NumClasses()
	for i, l := range d.Labels {
		if l < 0 || l >= k {
			return fmt.Errorf("dataset %s: label %d of graph %d out of range [0,%d)", d.Name, l, i, k)
		}
	}
	return nil
}

// ReadTUDataset loads dataset name from dir/name (the layout produced by
// unzipping an official TUDataset archive, or by WriteTUDataset).
func ReadTUDataset(dir, name string) (*Dataset, error) {
	prefix := filepath.Join(dir, name, name)

	indicator, err := readIntLines(prefix + "_graph_indicator.txt")
	if err != nil {
		return nil, fmt.Errorf("tudata: %w", err)
	}
	rawLabels, err := readIntLines(prefix + "_graph_labels.txt")
	if err != nil {
		return nil, fmt.Errorf("tudata: %w", err)
	}
	adjPairs, err := readPairLines(prefix + "_A.txt")
	if err != nil {
		return nil, fmt.Errorf("tudata: %w", err)
	}
	nodeLabels, _ := readIntLines(prefix + "_node_labels.txt") // optional

	return assembleTU(name, indicator, rawLabels, adjPairs, nodeLabels)
}

// assembleTU turns raw parsed arrays into a Dataset. Split out for
// testability without the filesystem.
func assembleTU(name string, indicator, rawLabels []int, adjPairs [][2]int, nodeLabels []int) (*Dataset, error) {
	numGraphs := len(rawLabels)
	if numGraphs == 0 {
		return nil, fmt.Errorf("tudata %s: no graphs", name)
	}
	// Per-graph vertex counts and the local id of each global vertex.
	counts := make([]int, numGraphs)
	local := make([]int, len(indicator))
	for i, gid := range indicator {
		if gid < 1 || gid > numGraphs {
			return nil, fmt.Errorf("tudata %s: vertex %d assigned to graph %d, want [1,%d]", name, i+1, gid, numGraphs)
		}
		local[i] = counts[gid-1]
		counts[gid-1]++
	}
	if nodeLabels != nil && len(nodeLabels) != len(indicator) {
		return nil, fmt.Errorf("tudata %s: %d node labels for %d vertices", name, len(nodeLabels), len(indicator))
	}

	builders := make([]*Builder, numGraphs)
	var perGraphLabels [][]int
	if nodeLabels != nil {
		perGraphLabels = make([][]int, numGraphs)
	}
	for gi := 0; gi < numGraphs; gi++ {
		builders[gi] = NewBuilder(counts[gi])
		if nodeLabels != nil {
			perGraphLabels[gi] = make([]int, counts[gi])
		}
	}
	if nodeLabels != nil {
		for i, lbl := range nodeLabels {
			perGraphLabels[indicator[i]-1][local[i]] = lbl
		}
	}
	for _, p := range adjPairs {
		r, c := p[0], p[1]
		if r < 1 || r > len(indicator) || c < 1 || c > len(indicator) {
			return nil, fmt.Errorf("tudata %s: adjacency pair (%d,%d) out of vertex range", name, r, c)
		}
		gr, gc := indicator[r-1], indicator[c-1]
		if gr != gc {
			return nil, fmt.Errorf("tudata %s: edge (%d,%d) crosses graphs %d and %d", name, r, c, gr, gc)
		}
		// The builder deduplicates, so the both-directions convention of
		// DS_A.txt collapses to one undirected edge.
		if err := builders[gr-1].AddEdge(local[r-1], local[c-1]); err != nil {
			return nil, fmt.Errorf("tudata %s: %w", name, err)
		}
	}

	ds := &Dataset{Name: name}
	ds.Graphs = make([]*Graph, numGraphs)
	for gi, b := range builders {
		if perGraphLabels != nil {
			if err := b.SetVertexLabels(perGraphLabels[gi]); err != nil {
				return nil, fmt.Errorf("tudata %s: %w", name, err)
			}
		}
		ds.Graphs[gi] = b.Build()
	}
	ds.Labels, ds.ClassNames = remapLabels(rawLabels)
	return ds, ds.Validate()
}

// remapLabels maps arbitrary integer class labels to the dense range
// [0, k), assigning remapped ids in ascending order of the original value.
func remapLabels(raw []int) ([]int, []string) {
	distinct := map[int]struct{}{}
	for _, l := range raw {
		distinct[l] = struct{}{}
	}
	values := make([]int, 0, len(distinct))
	for v := range distinct {
		values = append(values, v)
	}
	sort.Ints(values)
	toDense := make(map[int]int, len(values))
	names := make([]string, len(values))
	for i, v := range values {
		toDense[v] = i
		names[i] = strconv.Itoa(v)
	}
	dense := make([]int, len(raw))
	for i, l := range raw {
		dense[i] = toDense[l]
	}
	return dense, names
}

// WriteTUDataset writes ds to dir/ds.Name in TUDataset flat-file format.
func WriteTUDataset(dir string, ds *Dataset) error {
	if err := ds.Validate(); err != nil {
		return err
	}
	root := filepath.Join(dir, ds.Name)
	if err := os.MkdirAll(root, 0o755); err != nil {
		return fmt.Errorf("tudata: %w", err)
	}
	prefix := filepath.Join(root, ds.Name)

	var aBuf, indBuf, glBuf, nlBuf strings.Builder
	anyLabeled := false
	for _, g := range ds.Graphs {
		if g.Labeled() {
			anyLabeled = true
		}
	}
	base := 1 // 1-based global vertex ids
	for gi, g := range ds.Graphs {
		for v := 0; v < g.NumVertices(); v++ {
			fmt.Fprintf(&indBuf, "%d\n", gi+1)
			if anyLabeled {
				fmt.Fprintf(&nlBuf, "%d\n", g.VertexLabel(v))
			}
		}
		for _, e := range g.Edges() {
			u, v := base+int(e.U), base+int(e.V)
			fmt.Fprintf(&aBuf, "%d, %d\n", u, v)
			fmt.Fprintf(&aBuf, "%d, %d\n", v, u)
		}
		base += g.NumVertices()
	}
	for _, l := range ds.Labels {
		name := ds.ClassNames[l]
		fmt.Fprintf(&glBuf, "%s\n", name)
	}

	files := map[string]string{
		prefix + "_A.txt":               aBuf.String(),
		prefix + "_graph_indicator.txt": indBuf.String(),
		prefix + "_graph_labels.txt":    glBuf.String(),
	}
	if anyLabeled {
		files[prefix+"_node_labels.txt"] = nlBuf.String()
	}
	for path, content := range files {
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return fmt.Errorf("tudata: %w", err)
		}
	}
	return nil
}

func readIntLines(path string) ([]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parseIntLines(f, path)
}

func parseIntLines(r io.Reader, path string) ([]int, error) {
	var out []int
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		v, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, v)
	}
	return out, sc.Err()
}

func readPairLines(path string) ([][2]int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parsePairLines(f, path)
}

func parsePairLines(r io.Reader, path string) ([][2]int, error) {
	var out [][2]int
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		s := strings.TrimSpace(sc.Text())
		if s == "" {
			continue
		}
		parts := strings.Split(s, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("%s:%d: want 'row, col', got %q", path, line, s)
		}
		a, err := strconv.Atoi(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		b, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		out = append(out, [2]int{a, b})
	}
	return out, sc.Err()
}
