// Package graph provides the graph substrate for GraphHD: an immutable
// undirected graph type with CSR-style adjacency, builders, random-graph
// generators, dataset statistics and the TUDataset flat-file format.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable simple undirected graph. Vertices are the integers
// [0, N). Build one with a Builder or a generator; once constructed, a
// Graph is safe for concurrent use.
type Graph struct {
	n int
	// CSR adjacency: the neighbors of vertex v are adj[off[v]:off[v+1]],
	// sorted ascending. Each undirected edge appears in both endpoints'
	// lists.
	off []int32
	adj []int32
	// edges lists each undirected edge exactly once with U < V, sorted.
	edges []Edge
	// vertexLabels is nil for unlabeled graphs (the GraphHD baseline
	// setting) or holds one categorical label per vertex.
	vertexLabels []int
}

// Edge is an undirected edge with U < V.
type Edge struct {
	U, V int32
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E| (each undirected edge counted once).
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edges returns the edge list, sorted by (U, V), each edge once with U<V.
// The returned slice is shared; callers must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Neighbors returns the sorted neighbor list of v. The returned slice is
// shared; callers must not modify it.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.off[v]:g.off[v+1]]
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	return int(g.off[v+1] - g.off[v])
}

// HasEdge reports whether {u, v} is an edge, via binary search on the
// smaller adjacency list.
func (g *Graph) HasEdge(u, v int) bool {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	ns := g.Neighbors(u)
	i := sort.Search(len(ns), func(i int) bool { return ns[i] >= int32(v) })
	return i < len(ns) && ns[i] == int32(v)
}

// Labeled reports whether the graph carries vertex labels.
func (g *Graph) Labeled() bool { return g.vertexLabels != nil }

// VertexLabel returns the categorical label of v, or 0 if unlabeled.
func (g *Graph) VertexLabel(v int) int {
	if g.vertexLabels == nil {
		return 0
	}
	return g.vertexLabels[v]
}

// MaxDegree returns the largest vertex degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for v := 0; v < g.n; v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// Density returns 2|E| / (|V|(|V|-1)), the fraction of connected vertex
// pairs; 0 for graphs with fewer than two vertices.
func (g *Graph) Density() float64 {
	if g.n < 2 {
		return 0
	}
	return 2 * float64(len(g.edges)) / (float64(g.n) * float64(g.n-1))
}

// ConnectedComponents returns the number of connected components and a
// component id per vertex.
func (g *Graph) ConnectedComponents() (int, []int) {
	comp := make([]int, g.n)
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	stack := make([]int32, 0, g.n)
	for s := 0; s < g.n; s++ {
		if comp[s] != -1 {
			continue
		}
		stack = append(stack[:0], int32(s))
		comp[s] = count
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range g.Neighbors(int(v)) {
				if comp[w] == -1 {
					comp[w] = count
					stack = append(stack, w)
				}
			}
		}
		count++
	}
	return count, comp
}

// Triangles returns the number of triangles in the graph, counted with the
// standard forward algorithm (each triangle once).
func (g *Graph) Triangles() int {
	count := 0
	for u := 0; u < g.n; u++ {
		nu := g.Neighbors(u)
		for _, w := range nu {
			v := int(w)
			if v <= u {
				continue
			}
			// Count common neighbors x with x > v via sorted-list merge.
			nv := g.Neighbors(v)
			i, j := 0, 0
			for i < len(nu) && j < len(nv) {
				a, b := nu[i], nv[j]
				switch {
				case a < b:
					i++
				case a > b:
					j++
				default:
					if int(a) > v {
						count++
					}
					i++
					j++
				}
			}
		}
	}
	return count
}

// String renders a short diagnostic form.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d)", g.n, len(g.edges))
}

// Builder accumulates vertices and edges and produces an immutable Graph.
// Duplicate edges and self-loops are silently dropped, matching the
// "simple undirected graph" model the paper assumes.
type Builder struct {
	n      int
	seen   map[Edge]struct{}
	edges  []Edge
	labels []int
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Builder{n: n, seen: make(map[Edge]struct{})}
}

// AddEdge adds the undirected edge {u, v}. Self-loops and duplicates are
// ignored; out-of-range endpoints return an error.
func (b *Builder) AddEdge(u, v int) error {
	if u < 0 || v < 0 || u >= b.n || v >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return nil
	}
	if u > v {
		u, v = v, u
	}
	e := Edge{int32(u), int32(v)}
	if _, dup := b.seen[e]; dup {
		return nil
	}
	b.seen[e] = struct{}{}
	b.edges = append(b.edges, e)
	return nil
}

// MustAddEdge is AddEdge that panics on out-of-range endpoints; for use by
// generators whose indices are correct by construction.
func (b *Builder) MustAddEdge(u, v int) {
	if err := b.AddEdge(u, v); err != nil {
		panic(err)
	}
}

// SetVertexLabels attaches categorical vertex labels; len(labels) must
// equal the vertex count.
func (b *Builder) SetVertexLabels(labels []int) error {
	if len(labels) != b.n {
		return fmt.Errorf("graph: %d labels for %d vertices", len(labels), b.n)
	}
	b.labels = make([]int, len(labels))
	copy(b.labels, labels)
	return nil
}

// NumEdges returns the number of distinct edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// Build finalizes the graph. The builder may be reused afterwards only by
// creating a new one; Build is a terminal operation.
func (b *Builder) Build() *Graph {
	edges := make([]Edge, len(b.edges))
	copy(edges, b.edges)
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	})
	deg := make([]int32, b.n)
	for _, e := range edges {
		deg[e.U]++
		deg[e.V]++
	}
	off := make([]int32, b.n+1)
	for v := 0; v < b.n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	adj := make([]int32, off[b.n])
	pos := make([]int32, b.n)
	copy(pos, off[:b.n])
	for _, e := range edges {
		adj[pos[e.U]] = e.V
		pos[e.U]++
		adj[pos[e.V]] = e.U
		pos[e.V]++
	}
	for v := 0; v < b.n; v++ {
		s := adj[off[v]:off[v+1]]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}
	return &Graph{n: b.n, off: off, adj: adj, edges: edges, vertexLabels: b.labels}
}

// FromEdges is a convenience constructor building a graph directly from an
// edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return b.Build(), nil
}
