package graph

import (
	"strings"
	"testing"
)

// Fuzz targets for the TUDataset flat-file parser: whatever the input,
// parsing must never panic, and accepted inputs must produce internally
// consistent datasets. Run with `go test -fuzz FuzzParse ./internal/graph`
// for continuous fuzzing; the seed corpus below runs in normal test mode.

func FuzzParseIntLines(f *testing.F) {
	f.Add("1\n2\n3\n")
	f.Add("")
	f.Add("-5\n 7 \n\n")
	f.Add("99999999999999999999\n")
	f.Add("x\n1\n")
	f.Fuzz(func(t *testing.T, s string) {
		vals, err := parseIntLines(strings.NewReader(s), "fuzz")
		if err != nil {
			return
		}
		// Every accepted line must be a parseable integer; count sanity.
		if len(vals) > strings.Count(s, "\n")+1 {
			t.Fatalf("more values (%d) than lines", len(vals))
		}
	})
}

func FuzzParsePairLines(f *testing.F) {
	f.Add("1, 2\n2, 1\n")
	f.Add("1,2\n")
	f.Add(", \n")
	f.Add("a, b\n")
	f.Add("1, 2, 3\n")
	f.Fuzz(func(t *testing.T, s string) {
		pairs, err := parsePairLines(strings.NewReader(s), "fuzz")
		if err != nil {
			return
		}
		if len(pairs) > strings.Count(s, "\n")+1 {
			t.Fatalf("more pairs (%d) than lines", len(pairs))
		}
	})
}

func FuzzAssembleTU(f *testing.F) {
	f.Add(3, 2, 1, 2, 1) // indicator len, graphs, edge r, edge c, labels seed
	f.Add(1, 1, 1, 1, 0)
	f.Add(5, 2, 4, 5, 1)
	f.Fuzz(func(t *testing.T, nVerts, nGraphs, r, c, labelSeed int) {
		if nVerts < 0 || nVerts > 50 || nGraphs < 1 || nGraphs > 10 {
			return
		}
		indicator := make([]int, nVerts)
		for i := range indicator {
			indicator[i] = 1 + (i+labelSeed)%nGraphs
		}
		labels := make([]int, nGraphs)
		for i := range labels {
			labels[i] = (i * labelSeed) % 3
		}
		ds, err := assembleTU("FUZZ", indicator, labels, [][2]int{{r, c}}, nil)
		if err != nil {
			return
		}
		if err := ds.Validate(); err != nil {
			t.Fatalf("accepted dataset fails validation: %v", err)
		}
		total := 0
		for _, g := range ds.Graphs {
			total += g.NumVertices()
		}
		if total != nVerts {
			t.Fatalf("vertex count drifted: %d vs %d", total, nVerts)
		}
	})
}
