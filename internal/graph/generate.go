package graph

import (
	"graphhd/internal/hdc"
)

// This file implements the random-graph generators used throughout the
// reproduction: the Erdős–Rényi G(n, p) model from the paper's scaling
// experiment (Section V-B), plus the structured generators
// (Barabási–Albert, Watts–Strogatz, rings, stars, grids and motif
// attachment) that the synthetic dataset substrate composes into
// class-separable benchmarks.

// ErdosRenyi samples G(n, p): each of the n(n-1)/2 vertex pairs is an edge
// independently with probability p. The paper's Figure 4 uses p = 0.05.
func ErdosRenyi(n int, p float64, rng *hdc.RNG) *Graph {
	b := NewBuilder(n)
	if p >= 1 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				b.MustAddEdge(u, v)
			}
		}
		return b.Build()
	}
	if p > 0 {
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < p {
					b.MustAddEdge(u, v)
				}
			}
		}
	}
	return b.Build()
}

// BarabasiAlbert grows a preferential-attachment graph: starting from a
// clique on m+1 vertices, each new vertex attaches to m existing vertices
// chosen with probability proportional to their degree. The result has a
// heavy-tailed degree distribution, structurally very different from
// Erdős–Rényi graphs of the same density — which is exactly what the
// synthetic datasets exploit to make classes separable by topology alone.
func BarabasiAlbert(n, m int, rng *hdc.RNG) *Graph {
	if m < 1 {
		m = 1
	}
	if n <= m+1 {
		return Complete(n)
	}
	b := NewBuilder(n)
	// Repeated-endpoint list: vertex v appears deg(v) times. Sampling a
	// uniform element implements preferential attachment.
	var targets []int
	for u := 0; u <= m; u++ {
		for v := u + 1; v <= m; v++ {
			b.MustAddEdge(u, v)
			targets = append(targets, u, v)
		}
	}
	chosen := make(map[int]struct{}, m)
	picked := make([]int, 0, m)
	for v := m + 1; v < n; v++ {
		for k := range chosen {
			delete(chosen, k)
		}
		// Record the m distinct attachment targets in draw order — NOT by
		// ranging over the map, whose randomized iteration order would make
		// the targets list (and with it every later draw and the resulting
		// graph) differ from run to run despite the seeded RNG, breaking the
		// package's bit-for-bit reproducibility guarantee.
		picked = picked[:0]
		for len(chosen) < m {
			t := targets[rng.Intn(len(targets))]
			if _, dup := chosen[t]; dup {
				continue
			}
			chosen[t] = struct{}{}
			picked = append(picked, t)
		}
		for _, t := range picked {
			b.MustAddEdge(v, t)
			targets = append(targets, v, t)
		}
	}
	return b.Build()
}

// WattsStrogatz samples a small-world graph: a ring lattice where every
// vertex connects to its k nearest neighbors (k even), with each lattice
// edge rewired to a uniform random endpoint with probability beta.
func WattsStrogatz(n, k int, beta float64, rng *hdc.RNG) *Graph {
	if k >= n {
		k = n - 1
	}
	if k%2 == 1 {
		k--
	}
	b := NewBuilder(n)
	if k < 2 || n < 3 {
		return b.Build()
	}
	for v := 0; v < n; v++ {
		for j := 1; j <= k/2; j++ {
			u := v
			w := (v + j) % n
			if rng.Float64() < beta {
				// Rewire to a random non-self endpoint; duplicates are
				// dropped by the builder, slightly lowering density at
				// high beta, which is the standard behaviour.
				w = rng.Intn(n)
				if w == u {
					w = (u + 1) % n
				}
			}
			b.MustAddEdge(u, w)
		}
	}
	return b.Build()
}

// Ring returns the cycle graph C_n.
func Ring(n int) *Graph {
	b := NewBuilder(n)
	if n >= 3 {
		for v := 0; v < n; v++ {
			b.MustAddEdge(v, (v+1)%n)
		}
	} else if n == 2 {
		b.MustAddEdge(0, 1)
	}
	return b.Build()
}

// Path returns the path graph P_n.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for v := 0; v+1 < n; v++ {
		b.MustAddEdge(v, v+1)
	}
	return b.Build()
}

// Star returns the star K_{1,n-1} with vertex 0 as the hub.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for v := 1; v < n; v++ {
		b.MustAddEdge(0, v)
	}
	return b.Build()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			b.MustAddEdge(u, v)
		}
	}
	return b.Build()
}

// Grid returns the rows×cols grid graph.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.MustAddEdge(idx(r, c), idx(r, c+1))
			}
			if r+1 < rows {
				b.MustAddEdge(idx(r, c), idx(r+1, c))
			}
		}
	}
	return b.Build()
}

// Motif identifies a small subgraph shape for MotifChain.
type Motif int

// Motif shapes attachable to a backbone. They mimic the functional groups
// of the paper's chemistry datasets (rings, branches, fused rings).
const (
	MotifTriangle Motif = iota
	MotifSquare
	MotifPentagon
	MotifHexagon
	MotifBranch  // a 2-vertex pendant path
	MotifFusedSq // two squares sharing an edge
)

func motifSize(m Motif) int {
	switch m {
	case MotifTriangle:
		return 2 // vertices added beyond the anchor
	case MotifSquare:
		return 3
	case MotifPentagon:
		return 4
	case MotifHexagon:
		return 5
	case MotifBranch:
		return 2
	case MotifFusedSq:
		return 5
	default:
		return 2
	}
}

// MotifChain builds a molecule-like graph: a path backbone of backboneLen
// vertices with the given motifs attached at evenly spaced anchors. The
// class-distinguishing signal of the chemistry-flavoured synthetic
// datasets is the motif composition.
func MotifChain(backboneLen int, motifs []Motif) *Graph {
	if backboneLen < 1 {
		backboneLen = 1
	}
	total := backboneLen
	for _, m := range motifs {
		total += motifSize(m)
	}
	b := NewBuilder(total)
	for v := 0; v+1 < backboneLen; v++ {
		b.MustAddEdge(v, v+1)
	}
	next := backboneLen
	for i, m := range motifs {
		anchor := 0
		if len(motifs) > 0 && backboneLen > 1 {
			anchor = (i * (backboneLen - 1)) / max(1, len(motifs)-1+1)
			if anchor >= backboneLen {
				anchor = backboneLen - 1
			}
		}
		next = attachMotif(b, anchor, next, m)
	}
	return b.Build()
}

// attachMotif wires motif m to the anchor vertex using fresh vertices
// starting at next; it returns the next unused vertex id.
func attachMotif(b *Builder, anchor, next int, m Motif) int {
	switch m {
	case MotifTriangle:
		a, c := next, next+1
		b.MustAddEdge(anchor, a)
		b.MustAddEdge(a, c)
		b.MustAddEdge(c, anchor)
		return next + 2
	case MotifSquare:
		a, c, d := next, next+1, next+2
		b.MustAddEdge(anchor, a)
		b.MustAddEdge(a, c)
		b.MustAddEdge(c, d)
		b.MustAddEdge(d, anchor)
		return next + 3
	case MotifPentagon:
		vs := []int{anchor, next, next + 1, next + 2, next + 3}
		for i := 0; i < 5; i++ {
			b.MustAddEdge(vs[i], vs[(i+1)%5])
		}
		return next + 4
	case MotifHexagon:
		vs := []int{anchor, next, next + 1, next + 2, next + 3, next + 4}
		for i := 0; i < 6; i++ {
			b.MustAddEdge(vs[i], vs[(i+1)%6])
		}
		return next + 5
	case MotifBranch:
		b.MustAddEdge(anchor, next)
		b.MustAddEdge(next, next+1)
		return next + 2
	case MotifFusedSq:
		// Two squares sharing the edge (x, y): anchor-a-x-y and x-y-c-d.
		a, x, y, c, d := next, next+1, next+2, next+3, next+4
		b.MustAddEdge(anchor, a)
		b.MustAddEdge(a, x)
		b.MustAddEdge(x, y)
		b.MustAddEdge(y, anchor)
		b.MustAddEdge(x, c)
		b.MustAddEdge(c, d)
		b.MustAddEdge(d, y)
		return next + 5
	default:
		panic("graph: unknown motif")
	}
}

// CommunityGraph samples a planted-partition graph: k communities of the
// given sizes, with intra-community edge probability pIn and
// inter-community probability pOut. Used by the social-network flavoured
// synthetic datasets.
func CommunityGraph(sizes []int, pIn, pOut float64, rng *hdc.RNG) *Graph {
	n := 0
	for _, s := range sizes {
		n += s
	}
	comm := make([]int, n)
	v := 0
	for c, s := range sizes {
		for i := 0; i < s; i++ {
			comm[v] = c
			v++
		}
	}
	b := NewBuilder(n)
	for u := 0; u < n; u++ {
		for w := u + 1; w < n; w++ {
			p := pOut
			if comm[u] == comm[w] {
				p = pIn
			}
			if rng.Float64() < p {
				b.MustAddEdge(u, w)
			}
		}
	}
	return b.Build()
}

// Disjoint returns the disjoint union of the given graphs, relabeling
// vertices consecutively. Vertex labels are preserved when every input is
// labeled.
func Disjoint(gs ...*Graph) *Graph {
	n := 0
	labeled := len(gs) > 0
	for _, g := range gs {
		n += g.NumVertices()
		if !g.Labeled() {
			labeled = false
		}
	}
	b := NewBuilder(n)
	var labels []int
	if labeled {
		labels = make([]int, 0, n)
	}
	base := 0
	for _, g := range gs {
		for _, e := range g.Edges() {
			b.MustAddEdge(base+int(e.U), base+int(e.V))
		}
		if labeled {
			for v := 0; v < g.NumVertices(); v++ {
				labels = append(labels, g.VertexLabel(v))
			}
		}
		base += g.NumVertices()
	}
	if labeled {
		if err := b.SetVertexLabels(labels); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// Relabel returns a copy of g with vertices renamed by the permutation
// perm (new id = perm[old id]). Structure-only classifiers must be
// invariant to this operation; tests rely on it.
func Relabel(g *Graph, perm []int) *Graph {
	if len(perm) != g.NumVertices() {
		panic("graph: permutation length mismatch")
	}
	b := NewBuilder(g.NumVertices())
	for _, e := range g.Edges() {
		b.MustAddEdge(perm[e.U], perm[e.V])
	}
	if g.Labeled() {
		labels := make([]int, g.NumVertices())
		for v := 0; v < g.NumVertices(); v++ {
			labels[perm[v]] = g.VertexLabel(v)
		}
		if err := b.SetVertexLabels(labels); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
