package graph

import (
	"fmt"
	"strings"
)

// Stats summarizes a dataset in the shape of the paper's Table I.
type Stats struct {
	Name        string
	Graphs      int
	Classes     int
	AvgVertices float64
	AvgEdges    float64
	AvgDensity  float64 // avg fraction of connected vertex pairs
	MaxVertices int
	MaxEdges    int
	// PerClass[c] is the number of graphs in class c.
	PerClass []int
}

// ComputeStats derives Table-I-style statistics from a dataset.
func ComputeStats(ds *Dataset) Stats {
	st := Stats{
		Name:     ds.Name,
		Graphs:   ds.Len(),
		Classes:  ds.NumClasses(),
		PerClass: make([]int, ds.NumClasses()),
	}
	if ds.Len() == 0 {
		return st
	}
	var sumV, sumE, sumD float64
	for i, g := range ds.Graphs {
		n, m := g.NumVertices(), g.NumEdges()
		sumV += float64(n)
		sumE += float64(m)
		sumD += g.Density()
		if n > st.MaxVertices {
			st.MaxVertices = n
		}
		if m > st.MaxEdges {
			st.MaxEdges = m
		}
		st.PerClass[ds.Labels[i]]++
	}
	st.AvgVertices = sumV / float64(ds.Len())
	st.AvgEdges = sumE / float64(ds.Len())
	st.AvgDensity = sumD / float64(ds.Len())
	return st
}

// Row renders the statistics as one row of the Table I layout.
func (s Stats) Row() string {
	return fmt.Sprintf("%-10s %7d %8d %13.2f %11.2f", s.Name, s.Graphs, s.Classes, s.AvgVertices, s.AvgEdges)
}

// StatsTable renders a full Table I for the given datasets.
func StatsTable(stats []Stats) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %7s %8s %13s %11s\n", "Dataset", "Graphs", "Classes", "Avg. vertices", "Avg. edges")
	for _, s := range stats {
		b.WriteString(s.Row())
		b.WriteByte('\n')
	}
	return b.String()
}

// ExtendedStats augments the Table-I statistics with structural measures
// (diameter, clustering, degeneracy) useful when auditing how closely a
// synthetic dataset resembles its real counterpart.
type ExtendedStats struct {
	Stats
	AvgDiameter   float64
	AvgClustering float64
	AvgDegeneracy float64
	AvgTriangles  float64
}

// ComputeExtendedStats derives the extended statistics. Diameter costs
// O(V·E) per graph; intended for offline analysis, not hot paths.
func ComputeExtendedStats(ds *Dataset) ExtendedStats {
	st := ExtendedStats{Stats: ComputeStats(ds)}
	if ds.Len() == 0 {
		return st
	}
	var sumD, sumC, sumK, sumT float64
	for _, g := range ds.Graphs {
		sumD += float64(g.Diameter())
		sumC += g.AverageClustering()
		sumK += float64(g.Degeneracy())
		sumT += float64(g.Triangles())
	}
	n := float64(ds.Len())
	st.AvgDiameter = sumD / n
	st.AvgClustering = sumC / n
	st.AvgDegeneracy = sumK / n
	st.AvgTriangles = sumT / n
	return st
}

// ExtendedRow renders the extended statistics as one table row.
func (s ExtendedStats) ExtendedRow() string {
	return fmt.Sprintf("%-10s %7d %8d %10.2f %10.2f %9.2f %8.3f %7.2f %8.1f",
		s.Name, s.Graphs, s.Classes, s.AvgVertices, s.AvgEdges,
		s.AvgDiameter, s.AvgClustering, s.AvgDegeneracy, s.AvgTriangles)
}
