package graph

import (
	"math"
	"testing"
	"testing/quick"

	"graphhd/internal/hdc"
)

func TestBFSPath(t *testing.T) {
	g := Path(5)
	d := g.BFS(0)
	for v, want := range []int{0, 1, 2, 3, 4} {
		if d[v] != want {
			t.Fatalf("dist[%d] = %d, want %d", v, d[v], want)
		}
	}
}

func TestBFSDisconnected(t *testing.T) {
	g := Disjoint(Path(3), Path(2))
	d := g.BFS(0)
	if d[3] != -1 || d[4] != -1 {
		t.Fatalf("unreachable distances = %v", d)
	}
}

func TestBFSBadSource(t *testing.T) {
	g := Path(3)
	d := g.BFS(-1)
	for _, v := range d {
		if v != -1 {
			t.Fatal("bad source should reach nothing")
		}
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	if got := Path(5).Diameter(); got != 4 {
		t.Fatalf("path diameter = %d", got)
	}
	if got := Ring(6).Diameter(); got != 3 {
		t.Fatalf("C6 diameter = %d", got)
	}
	if got := Complete(7).Diameter(); got != 1 {
		t.Fatalf("K7 diameter = %d", got)
	}
	if got := Star(9).Eccentricity(0); got != 1 {
		t.Fatalf("star hub eccentricity = %d", got)
	}
	if got := Star(9).Eccentricity(3); got != 2 {
		t.Fatalf("star leaf eccentricity = %d", got)
	}
	if got := NewBuilder(3).Build().Diameter(); got != 0 {
		t.Fatalf("edgeless diameter = %d", got)
	}
}

func TestLocalClustering(t *testing.T) {
	if c := Complete(4).LocalClustering(0); c != 1 {
		t.Fatalf("K4 clustering = %v", c)
	}
	if c := Star(5).LocalClustering(0); c != 0 {
		t.Fatalf("star hub clustering = %v", c)
	}
	if c := Path(3).LocalClustering(0); c != 0 {
		t.Fatalf("degree-1 clustering = %v", c)
	}
	// Triangle with a pendant: center vertex has neighbors {2 in-triangle,
	// 1 pendant}: 1 of 3 pairs linked.
	g := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	if c := g.LocalClustering(0); math.Abs(c-1.0/3) > 1e-12 {
		t.Fatalf("clustering = %v, want 1/3", c)
	}
}

func TestAverageClustering(t *testing.T) {
	if c := Complete(5).AverageClustering(); c != 1 {
		t.Fatalf("K5 avg clustering = %v", c)
	}
	if c := Ring(8).AverageClustering(); c != 0 {
		t.Fatalf("C8 avg clustering = %v", c)
	}
	if c := NewBuilder(0).Build().AverageClustering(); c != 0 {
		t.Fatalf("empty avg clustering = %v", c)
	}
	// Watts-Strogatz at beta=0 has the known lattice clustering 0.5 for k=4.
	ws := WattsStrogatz(40, 4, 0, hdc.NewRNG(1))
	if c := ws.AverageClustering(); math.Abs(c-0.5) > 1e-9 {
		t.Fatalf("WS(k=4, beta=0) clustering = %v, want 0.5", c)
	}
}

func TestDegreeHistogram(t *testing.T) {
	h := Star(5).DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Fatalf("star histogram = %v", h)
	}
	sum := 0
	for _, c := range h {
		sum += c
	}
	if sum != 5 {
		t.Fatalf("histogram total = %d", sum)
	}
}

func TestCoreNumbersKnown(t *testing.T) {
	// K4 with a pendant path: clique vertices are 3-core, path tail 1-core.
	g := mustGraph(t, 6, [][2]int{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}, // K4
		{3, 4}, {4, 5}, // pendant path
	})
	core := g.CoreNumbers()
	for v := 0; v < 4; v++ {
		if core[v] != 3 {
			t.Fatalf("K4 vertex %d core = %d", v, core[v])
		}
	}
	if core[4] != 1 || core[5] != 1 {
		t.Fatalf("path cores = %d %d", core[4], core[5])
	}
	if g.Degeneracy() != 3 {
		t.Fatalf("degeneracy = %d", g.Degeneracy())
	}
}

func TestCoreNumbersRing(t *testing.T) {
	core := Ring(7).CoreNumbers()
	for v, c := range core {
		if c != 2 {
			t.Fatalf("ring core[%d] = %d", v, c)
		}
	}
}

func TestCoreNumbersEmptyAndIsolated(t *testing.T) {
	if len(NewBuilder(0).Build().CoreNumbers()) != 0 {
		t.Fatal("empty graph cores")
	}
	core := NewBuilder(3).Build().CoreNumbers()
	for _, c := range core {
		if c != 0 {
			t.Fatalf("isolated core = %d", c)
		}
	}
}

func TestCoreNumbersAgainstNaivePeeling(t *testing.T) {
	// Property test: compare the bucket implementation to straightforward
	// iterative peeling.
	naive := func(g *Graph) []int {
		n := g.NumVertices()
		deg := make([]int, n)
		alive := make([]bool, n)
		for v := 0; v < n; v++ {
			deg[v] = g.Degree(v)
			alive[v] = true
		}
		core := make([]int, n)
		for k := 0; ; k++ {
			remaining := 0
			for v := 0; v < n; v++ {
				if alive[v] {
					remaining++
				}
			}
			if remaining == 0 {
				return core
			}
			changed := true
			for changed {
				changed = false
				for v := 0; v < n; v++ {
					if alive[v] && deg[v] <= k {
						alive[v] = false
						core[v] = k
						changed = true
						for _, w := range g.Neighbors(v) {
							if alive[w] {
								deg[w]--
							}
						}
					}
				}
			}
		}
	}
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		g := ErdosRenyi(18, 0.25, rng)
		a := g.CoreNumbers()
		b := naive(g)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestDiameterMatchesBFSProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		g := ErdosRenyi(15, 0.2, rng)
		diam := g.Diameter()
		// No BFS distance may exceed the diameter.
		for v := 0; v < g.NumVertices(); v++ {
			for _, d := range g.BFS(v) {
				if d > diam {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
