package graph

import (
	"testing"
	"testing/quick"

	"graphhd/internal/hdc"
)

func mustGraph(t *testing.T, n int, edges [][2]int) *Graph {
	t.Helper()
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuilderBasic(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got %v", g)
	}
	for v := 0; v < 4; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
}

func TestBuilderDeduplicatesAndDropsSelfLoops(t *testing.T) {
	g := mustGraph(t, 3, [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1", g.NumEdges())
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-loop present")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2); err == nil {
		t.Fatal("expected range error")
	}
	if err := b.AddEdge(-1, 0); err == nil {
		t.Fatal("expected range error")
	}
}

func TestNeighborsSorted(t *testing.T) {
	g := mustGraph(t, 5, [][2]int{{0, 4}, {0, 2}, {0, 1}, {0, 3}})
	ns := g.Neighbors(0)
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("neighbors not sorted: %v", ns)
		}
	}
}

func TestHasEdge(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{0, 1}, {2, 3}})
	cases := []struct {
		u, v int
		want bool
	}{
		{0, 1, true}, {1, 0, true}, {2, 3, true},
		{0, 2, false}, {0, 0, false}, {-1, 1, false}, {0, 7, false},
	}
	for _, c := range cases {
		if got := g.HasEdge(c.u, c.v); got != c.want {
			t.Errorf("HasEdge(%d,%d) = %v, want %v", c.u, c.v, got, c.want)
		}
	}
}

func TestEdgesCanonical(t *testing.T) {
	g := mustGraph(t, 4, [][2]int{{3, 1}, {2, 0}})
	for _, e := range g.Edges() {
		if e.U >= e.V {
			t.Fatalf("edge %v not canonical", e)
		}
	}
}

func TestDensity(t *testing.T) {
	if d := Complete(5).Density(); d != 1 {
		t.Fatalf("K5 density = %f", d)
	}
	if d := NewBuilder(5).Build().Density(); d != 0 {
		t.Fatalf("empty density = %f", d)
	}
	if d := NewBuilder(1).Build().Density(); d != 0 {
		t.Fatalf("single-vertex density = %f", d)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := mustGraph(t, 6, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	n, comp := g.ConnectedComponents()
	if n != 3 {
		t.Fatalf("components = %d, want 3", n)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] || comp[0] == comp[3] || comp[5] == comp[0] {
		t.Fatalf("bad component assignment %v", comp)
	}
}

func TestTriangles(t *testing.T) {
	if n := Complete(4).Triangles(); n != 4 {
		t.Fatalf("K4 triangles = %d, want 4", n)
	}
	if n := Ring(5).Triangles(); n != 0 {
		t.Fatalf("C5 triangles = %d, want 0", n)
	}
	if n := Complete(3).Triangles(); n != 1 {
		t.Fatalf("K3 triangles = %d, want 1", n)
	}
}

func TestMaxDegree(t *testing.T) {
	if d := Star(10).MaxDegree(); d != 9 {
		t.Fatalf("star max degree = %d", d)
	}
	if d := NewBuilder(0).Build().MaxDegree(); d != 0 {
		t.Fatalf("empty max degree = %d", d)
	}
}

func TestVertexLabels(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1)
	if err := b.SetVertexLabels([]int{5, 6, 7}); err != nil {
		t.Fatal(err)
	}
	g := b.Build()
	if !g.Labeled() || g.VertexLabel(2) != 7 {
		t.Fatal("labels not preserved")
	}
	unlabeled := mustGraph(t, 2, nil)
	if unlabeled.Labeled() || unlabeled.VertexLabel(0) != 0 {
		t.Fatal("unlabeled graph misbehaves")
	}
	if err := NewBuilder(2).SetVertexLabels([]int{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

// --- generators ---

func TestErdosRenyiExtremes(t *testing.T) {
	rng := hdc.NewRNG(1)
	if g := ErdosRenyi(10, 0, rng); g.NumEdges() != 0 {
		t.Fatalf("p=0 edges = %d", g.NumEdges())
	}
	if g := ErdosRenyi(10, 1, rng); g.NumEdges() != 45 {
		t.Fatalf("p=1 edges = %d", g.NumEdges())
	}
}

func TestErdosRenyiEdgeCountNearExpectation(t *testing.T) {
	rng := hdc.NewRNG(2)
	n, p := 200, 0.05
	g := ErdosRenyi(n, p, rng)
	want := p * float64(n*(n-1)) / 2 // 995
	got := float64(g.NumEdges())
	if got < want*0.8 || got > want*1.2 {
		t.Fatalf("edges = %v, want within 20%% of %v", got, want)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(50, 0.1, hdc.NewRNG(7))
	b := ErdosRenyi(50, 0.1, hdc.NewRNG(7))
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed, different graphs")
	}
	for i, e := range a.Edges() {
		if b.Edges()[i] != e {
			t.Fatal("same seed, different edges")
		}
	}
}

func TestBarabasiAlbert(t *testing.T) {
	rng := hdc.NewRNG(3)
	g := BarabasiAlbert(100, 2, rng)
	if g.NumVertices() != 100 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Initial clique K3 has 3 edges; each of the 97 added vertices brings
	// m=2 edges.
	if want := 3 + 97*2; g.NumEdges() != want {
		t.Fatalf("edges = %d, want %d", g.NumEdges(), want)
	}
	nc, _ := g.ConnectedComponents()
	if nc != 1 {
		t.Fatalf("BA graph has %d components", nc)
	}
	// Preferential attachment yields hubs well above the ER max degree.
	if g.MaxDegree() < 8 {
		t.Fatalf("max degree = %d, expected a hub", g.MaxDegree())
	}
}

func TestBarabasiAlbertSmallN(t *testing.T) {
	g := BarabasiAlbert(3, 5, hdc.NewRNG(4))
	if g.NumEdges() != 3 { // falls back to K3
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestWattsStrogatz(t *testing.T) {
	rng := hdc.NewRNG(5)
	g := WattsStrogatz(50, 4, 0, rng)
	// beta=0: pure ring lattice, every vertex has degree 4, 100 edges.
	if g.NumEdges() != 100 {
		t.Fatalf("edges = %d, want 100", g.NumEdges())
	}
	for v := 0; v < 50; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	rewired := WattsStrogatz(50, 4, 0.5, rng)
	if rewired.NumEdges() == 0 || rewired.NumEdges() > 100 {
		t.Fatalf("rewired edges = %d", rewired.NumEdges())
	}
}

func TestSmallGraphShapes(t *testing.T) {
	if g := Ring(6); g.NumEdges() != 6 || g.Degree(0) != 2 {
		t.Fatalf("ring: %v", g)
	}
	if g := Path(6); g.NumEdges() != 5 || g.Degree(0) != 1 {
		t.Fatalf("path: %v", g)
	}
	if g := Star(6); g.NumEdges() != 5 || g.Degree(0) != 5 {
		t.Fatalf("star: %v", g)
	}
	if g := Grid(3, 4); g.NumVertices() != 12 || g.NumEdges() != 17 {
		t.Fatalf("grid: %v", g)
	}
	if g := Ring(2); g.NumEdges() != 1 {
		t.Fatalf("ring(2): %v", g)
	}
	if g := Ring(1); g.NumEdges() != 0 {
		t.Fatalf("ring(1): %v", g)
	}
}

func TestMotifChain(t *testing.T) {
	g := MotifChain(5, []Motif{MotifTriangle, MotifHexagon})
	// backbone 5 + triangle 2 + hexagon 5 vertices
	if g.NumVertices() != 12 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// backbone 4 + triangle 3 + hexagon 6 edges
	if g.NumEdges() != 13 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if g.Triangles() != 1 {
		t.Fatalf("triangles = %d", g.Triangles())
	}
	nc, _ := g.ConnectedComponents()
	if nc != 1 {
		t.Fatalf("motif chain disconnected: %d components", nc)
	}
}

func TestMotifChainAllMotifs(t *testing.T) {
	motifs := []Motif{MotifTriangle, MotifSquare, MotifPentagon, MotifHexagon, MotifBranch, MotifFusedSq}
	g := MotifChain(10, motifs)
	nc, _ := g.ConnectedComponents()
	if nc != 1 {
		t.Fatalf("disconnected with all motifs: %d components", nc)
	}
}

func TestCommunityGraph(t *testing.T) {
	rng := hdc.NewRNG(6)
	g := CommunityGraph([]int{20, 20}, 0.5, 0.01, rng)
	if g.NumVertices() != 40 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Count intra vs inter edges: intra should dominate.
	intra, inter := 0, 0
	for _, e := range g.Edges() {
		sameSide := (e.U < 20) == (e.V < 20)
		if sameSide {
			intra++
		} else {
			inter++
		}
	}
	if intra <= inter*5 {
		t.Fatalf("intra = %d, inter = %d: communities not planted", intra, inter)
	}
}

func TestDisjoint(t *testing.T) {
	g := Disjoint(Ring(3), Path(3))
	if g.NumVertices() != 6 || g.NumEdges() != 5 {
		t.Fatalf("disjoint: %v", g)
	}
	nc, _ := g.ConnectedComponents()
	if nc != 2 {
		t.Fatalf("components = %d", nc)
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	rng := hdc.NewRNG(8)
	f := func(seed uint64) bool {
		r := hdc.NewRNG(seed ^ rng.Uint64())
		g := ErdosRenyi(20, 0.2, r)
		perm := r.Perm(20)
		h := Relabel(g, perm)
		if h.NumEdges() != g.NumEdges() {
			return false
		}
		// Degree multiset must be preserved.
		dg := make([]int, 21)
		dh := make([]int, 21)
		for v := 0; v < 20; v++ {
			dg[g.Degree(v)]++
			dh[h.Degree(v)]++
		}
		for i := range dg {
			if dg[i] != dh[i] {
				return false
			}
		}
		return h.Triangles() == g.Triangles()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphString(t *testing.T) {
	if s := Ring(3).String(); s != "Graph(n=3, m=3)" {
		t.Fatalf("String() = %q", s)
	}
}
