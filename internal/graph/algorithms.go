package graph

// This file collects the classic graph algorithms the analysis layer uses
// beyond plain counts: BFS distances, eccentricity/diameter, clustering
// coefficients, degree histograms and k-core decomposition. They feed the
// extended dataset statistics (stats.go) and give library users the usual
// inspection toolkit.

// BFS returns the hop distance from src to every vertex (-1 when
// unreachable).
func (g *Graph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if src < 0 || src >= g.n {
		return dist
	}
	dist[src] = 0
	queue := make([]int32, 1, g.n)
	queue[0] = int32(src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		for _, w := range g.Neighbors(int(v)) {
			if dist[w] == -1 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist
}

// Eccentricity returns the greatest hop distance from v to any vertex
// reachable from it; 0 for isolated vertices.
func (g *Graph) Eccentricity(v int) int {
	ecc := 0
	for _, d := range g.BFS(v) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the largest eccentricity over all vertices, computed
// per connected component (unreachable pairs are ignored rather than
// infinite). O(V·E); intended for the small graphs of this domain.
func (g *Graph) Diameter() int {
	diam := 0
	for v := 0; v < g.n; v++ {
		if e := g.Eccentricity(v); e > diam {
			diam = e
		}
	}
	return diam
}

// LocalClustering returns the local clustering coefficient of v: the
// fraction of its neighbor pairs that are themselves connected. Vertices
// of degree < 2 have coefficient 0.
func (g *Graph) LocalClustering(v int) float64 {
	ns := g.Neighbors(v)
	deg := len(ns)
	if deg < 2 {
		return 0
	}
	links := 0
	for i := 0; i < deg; i++ {
		for j := i + 1; j < deg; j++ {
			if g.HasEdge(int(ns[i]), int(ns[j])) {
				links++
			}
		}
	}
	return 2 * float64(links) / (float64(deg) * float64(deg-1))
}

// AverageClustering returns the mean local clustering coefficient over
// all vertices (the Watts-Strogatz clustering measure); 0 for the empty
// graph.
func (g *Graph) AverageClustering() float64 {
	if g.n == 0 {
		return 0
	}
	s := 0.0
	for v := 0; v < g.n; v++ {
		s += g.LocalClustering(v)
	}
	return s / float64(g.n)
}

// DegreeHistogram returns counts[d] = number of vertices with degree d,
// indexed 0..MaxDegree.
func (g *Graph) DegreeHistogram() []int {
	h := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.n; v++ {
		h[g.Degree(v)]++
	}
	return h
}

// CoreNumbers returns the k-core number of every vertex: the largest k
// such that the vertex belongs to a subgraph where every vertex has
// degree >= k. Uses the Matula-Beck peeling algorithm in O(V + E).
func (g *Graph) CoreNumbers() []int {
	n := g.n
	core := make([]int, n)
	if n == 0 {
		return core
	}
	deg := make([]int, n)
	maxDeg := 0
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
		if deg[v] > maxDeg {
			maxDeg = deg[v]
		}
	}
	// Bucket sort vertices by degree.
	binStart := make([]int, maxDeg+2)
	for _, d := range deg {
		binStart[d+1]++
	}
	for d := 1; d <= maxDeg+1; d++ {
		binStart[d] += binStart[d-1]
	}
	pos := make([]int, n)  // position of vertex in vert
	vert := make([]int, n) // vertices sorted by current degree
	fill := make([]int, maxDeg+1)
	copy(fill, binStart[:maxDeg+1])
	for v := 0; v < n; v++ {
		pos[v] = fill[deg[v]]
		vert[pos[v]] = v
		fill[deg[v]]++
	}
	bin := make([]int, maxDeg+1)
	copy(bin, binStart[:maxDeg+1])

	cur := make([]int, n)
	copy(cur, deg)
	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = cur[v]
		for _, wn := range g.Neighbors(v) {
			w := int(wn)
			if cur[w] > cur[v] {
				// Move w to the front of its degree bucket, then shrink
				// its degree by one.
				dw := cur[w]
				pw := pos[w]
				ps := bin[dw]
				u := vert[ps]
				if u != w {
					vert[ps], vert[pw] = w, u
					pos[w], pos[u] = ps, pw
				}
				bin[dw]++
				cur[w]--
			}
		}
	}
	return core
}

// Degeneracy returns the graph's degeneracy: the maximum core number.
func (g *Graph) Degeneracy() int {
	max := 0
	for _, c := range g.CoreNumbers() {
		if c > max {
			max = c
		}
	}
	return max
}
