package assignment

import (
	"math"
	"testing"
	"testing/quick"

	"graphhd/internal/hdc"
)

func TestMaxWeightKnown(t *testing.T) {
	w := [][]float64{
		{1, 2, 3},
		{3, 1, 2},
		{2, 3, 1},
	}
	match, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 9 { // 3 + 3 + 3
		t.Fatalf("total = %v, want 9", total)
	}
	want := []int{2, 0, 1}
	for i, c := range want {
		if match[i] != c {
			t.Fatalf("match = %v, want %v", match, want)
		}
	}
}

func TestMaxWeightIdentityBest(t *testing.T) {
	w := [][]float64{
		{10, 0},
		{0, 10},
	}
	match, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 || match[0] != 0 || match[1] != 1 {
		t.Fatalf("match = %v total = %v", match, total)
	}
}

func TestMaxWeightRectangular(t *testing.T) {
	// More rows than columns: one row stays unmatched.
	w := [][]float64{
		{5},
		{7},
		{6},
	}
	match, total, err := MaxWeight(w)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 {
		t.Fatalf("total = %v, want 7", total)
	}
	matched := 0
	for _, c := range match {
		if c == 0 {
			matched++
		} else if c != -1 {
			t.Fatalf("match = %v", match)
		}
	}
	if matched != 1 || match[1] != 0 {
		t.Fatalf("match = %v", match)
	}

	// More columns than rows.
	w2 := [][]float64{{1, 9, 4}}
	match2, total2, err := MaxWeight(w2)
	if err != nil {
		t.Fatal(err)
	}
	if total2 != 9 || match2[0] != 1 {
		t.Fatalf("match = %v total = %v", match2, total2)
	}
}

func TestMaxWeightEmptyAndErrors(t *testing.T) {
	if m, total, err := MaxWeight(nil); err != nil || m != nil || total != 0 {
		t.Fatal("empty matrix should be a no-op")
	}
	if _, _, err := MaxWeight([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected ragged-matrix error")
	}
	if _, _, err := MaxWeight([][]float64{{math.NaN()}}); err == nil {
		t.Fatal("expected NaN error")
	}
	if _, _, err := MaxWeight([][]float64{{math.Inf(1)}}); err == nil {
		t.Fatal("expected Inf error")
	}
}

// bruteForce exhausts all assignments of rows to distinct columns.
func bruteForce(w [][]float64) float64 {
	rows, cols := len(w), len(w[0])
	used := make([]bool, cols)
	var rec func(r int) float64
	rec = func(r int) float64 {
		if r == rows {
			return 0
		}
		// Option: leave row r unmatched only if rows > cols and not all
		// columns can be covered; simplest: allow skip when rows > cols.
		best := math.Inf(-1)
		if rows > cols {
			best = rec(r + 1)
		}
		for c := 0; c < cols; c++ {
			if !used[c] {
				used[c] = true
				if v := w[r][c] + rec(r+1); v > best {
					best = v
				}
				used[c] = false
			}
		}
		if math.IsInf(best, -1) {
			return 0
		}
		return best
	}
	return rec(0)
}

func TestMaxWeightMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		rows := 1 + rng.Intn(5)
		cols := 1 + rng.Intn(5)
		w := make([][]float64, rows)
		for i := range w {
			w[i] = make([]float64, cols)
			for j := range w[i] {
				w[i][j] = float64(rng.Intn(20))
			}
		}
		_, total, err := MaxWeight(w)
		if err != nil {
			return false
		}
		return math.Abs(total-bruteForce(w)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxWeightMatchIsValid(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		n := 2 + rng.Intn(6)
		w := make([][]float64, n)
		for i := range w {
			w[i] = make([]float64, n)
			for j := range w[i] {
				w[i][j] = rng.Float64() * 10
			}
		}
		match, total, err := MaxWeight(w)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		sum := 0.0
		for r, c := range match {
			if c < 0 || c >= n || seen[c] {
				return false
			}
			seen[c] = true
			sum += w[r][c]
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
