// Package assignment implements the Hungarian algorithm (Kuhn-Munkres,
// O(n³) with potentials) for maximum-weight bipartite assignment.
//
// The WL-OA kernel baseline (internal/wl) computes optimal assignments via
// the histogram-intersection shortcut that is valid for hierarchy-induced
// strong kernels (Kriege et al. 2016). This package provides the exact,
// general solver so the shortcut can be verified against ground truth —
// see the cross-check property test in internal/wl — and doubles as a
// general-purpose matching utility.
package assignment

import (
	"fmt"
	"math"
)

// MaxWeight solves the maximum-weight assignment problem on the
// rows×cols weight matrix w (not necessarily square; the smaller side is
// matched completely, unmatched larger-side entries contribute 0 and are
// reported as -1). It returns match[r] = assigned column of row r (or -1)
// and the total weight. Weights may be any finite float64, including
// negatives; with negative weights a row may still be matched if every
// completion requires it (the solver maximizes the total over complete
// matchings of the smaller side, zero-padding the rectangle).
func MaxWeight(w [][]float64) ([]int, float64, error) {
	rows := len(w)
	if rows == 0 {
		return nil, 0, nil
	}
	cols := len(w[0])
	for i, row := range w {
		if len(row) != cols {
			return nil, 0, fmt.Errorf("assignment: ragged matrix at row %d", i)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, 0, fmt.Errorf("assignment: non-finite weight at (%d,%d)", i, j)
			}
		}
	}
	// Pad to square with zeros; convert to min-cost by negation.
	n := rows
	if cols > n {
		n = cols
	}
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			if i < rows && j < cols {
				cost[i][j] = -w[i][j]
			}
		}
	}
	colOfRow := hungarianMin(cost)
	match := make([]int, rows)
	total := 0.0
	for r := 0; r < rows; r++ {
		c := colOfRow[r]
		if c < cols {
			match[r] = c
			total += w[r][c]
		} else {
			match[r] = -1
		}
	}
	return match, total, nil
}

// hungarianMin solves the square min-cost assignment with the standard
// O(n³) shortest-augmenting-path formulation using dual potentials
// (the classic "e-maxx" Hungarian with 1-based sentinels, rewritten
// 0-based). Returns the matched column of each row.
func hungarianMin(a [][]float64) []int {
	n := len(a)
	const inf = math.MaxFloat64
	u := make([]float64, n+1) // row potentials (index n = virtual root)
	v := make([]float64, n+1) // column potentials
	p := make([]int, n+1)     // p[j] = row matched to column j (n = none)
	way := make([]int, n+1)
	for j := range p {
		p[j] = n
	}
	for i := 0; i < n; i++ {
		// Augment from row i using column n as the virtual start.
		p[n] = i
		j0 := n
		minv := make([]float64, n+1)
		used := make([]bool, n+1)
		for j := range minv {
			minv[j] = inf
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 0; j < n; j++ {
				if used[j] {
					continue
				}
				cur := a[i0][j] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= n; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == n {
				break
			}
		}
		// Unwind augmenting path.
		for j0 != n {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}
	colOfRow := make([]int, n)
	for j := 0; j < n; j++ {
		if p[j] < n {
			colOfRow[p[j]] = j
		}
	}
	return colOfRow
}
