package centrality

import (
	"math"
	"testing"
	"testing/quick"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/pagerank"
)

func TestMetricStrings(t *testing.T) {
	cases := map[Metric]string{
		PageRank: "pagerank", Degree: "degree",
		Eigenvector: "eigenvector", Closeness: "closeness",
		Metric(99): "unknown",
	}
	for m, want := range cases {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if len(AllMetrics()) != 4 {
		t.Fatal("AllMetrics incomplete")
	}
}

func TestDegreeScores(t *testing.T) {
	g := graph.Star(5)
	s := Scores(g, Degree, Options{})
	if s[0] != 1 {
		t.Fatalf("hub degree centrality = %v", s[0])
	}
	for v := 1; v < 5; v++ {
		if math.Abs(s[v]-0.25) > 1e-12 {
			t.Fatalf("leaf centrality = %v", s[v])
		}
	}
	// Single vertex: all zeros, no panic.
	if s := Scores(graph.NewBuilder(1).Build(), Degree, Options{}); s[0] != 0 {
		t.Fatal("singleton degree centrality should be 0")
	}
}

func TestEigenvectorStarHub(t *testing.T) {
	g := graph.Star(8)
	s := Scores(g, Eigenvector, Options{})
	for v := 1; v < 8; v++ {
		if s[0] <= s[v] {
			t.Fatalf("hub eigenvector score %v not above leaf %v", s[0], s[v])
		}
	}
	// Scores are L2-normalized.
	norm := 0.0
	for _, x := range s {
		norm += x * x
	}
	if math.Abs(norm-1) > 1e-9 {
		t.Fatalf("norm = %v", norm)
	}
}

func TestEigenvectorEdgelessGraph(t *testing.T) {
	s := Scores(graph.NewBuilder(4).Build(), Eigenvector, Options{})
	for _, x := range s {
		if x != 0 {
			t.Fatal("edgeless eigenvector scores should be zero")
		}
	}
}

func TestEigenvectorUniformOnRegular(t *testing.T) {
	s := Scores(graph.Ring(10), Eigenvector, Options{})
	for v := 1; v < 10; v++ {
		if math.Abs(s[v]-s[0]) > 1e-9 {
			t.Fatalf("ring eigenvector not uniform: %v vs %v", s[v], s[0])
		}
	}
}

func TestClosenessPathCenter(t *testing.T) {
	g := graph.Path(5)
	s := Scores(g, Closeness, Options{})
	// Center (vertex 2) minimizes total distance.
	for v := 0; v < 5; v++ {
		if v != 2 && s[2] <= s[v] {
			t.Fatalf("center closeness %v not above vertex %d's %v", s[2], v, s[v])
		}
	}
	// Path ends: distances 1+2+3+4=10, r=5 → C = (4/4)*(4/10) = 0.4.
	if math.Abs(s[0]-0.4) > 1e-12 {
		t.Fatalf("end closeness = %v, want 0.4", s[0])
	}
}

func TestClosenessDisconnected(t *testing.T) {
	g := graph.Disjoint(graph.Complete(3), graph.NewBuilder(2).Build())
	s := Scores(g, Closeness, Options{})
	// K3 members: r=3, total=2, n=5 → (2/4)*(2/2) = 0.5.
	for v := 0; v < 3; v++ {
		if math.Abs(s[v]-0.5) > 1e-12 {
			t.Fatalf("K3 closeness = %v", s[v])
		}
	}
	for v := 3; v < 5; v++ {
		if s[v] != 0 {
			t.Fatalf("isolated closeness = %v", s[v])
		}
	}
}

func TestRanksArePermutationsForAllMetrics(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		g := graph.ErdosRenyi(20, 0.2, rng)
		for _, m := range AllMetrics() {
			r := Ranks(g, m, Options{})
			seen := make([]bool, len(r))
			for _, v := range r {
				if v < 0 || v >= len(r) || seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestPageRankDelegation(t *testing.T) {
	g := graph.BarabasiAlbert(25, 2, hdc.NewRNG(1))
	a := Ranks(g, PageRank, Options{})
	b := pagerank.Ranks(g, pagerank.Options{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("PageRank metric does not delegate to package pagerank")
		}
	}
}

func TestDegreeRankMostCentralIsMaxDegree(t *testing.T) {
	g := graph.BarabasiAlbert(30, 2, hdc.NewRNG(2))
	r := Ranks(g, Degree, Options{})
	var top int
	for v, rank := range r {
		if rank == 0 {
			top = v
		}
	}
	if g.Degree(top) != g.MaxDegree() {
		t.Fatalf("rank-0 vertex degree %d, max %d", g.Degree(top), g.MaxDegree())
	}
}

func TestRanksDeterministicTieBreak(t *testing.T) {
	// Ring: all metrics tie everywhere; ranks must equal vertex ids.
	g := graph.Ring(6)
	for _, m := range AllMetrics() {
		r := Ranks(g, m, Options{})
		for v, rank := range r {
			if rank != v {
				t.Fatalf("%s: ring rank[%d] = %d", m, v, rank)
			}
		}
	}
}

func TestMetricsDisagreeWhereTheyShould(t *testing.T) {
	// A "kite" shape: degree and closeness/eigenvector famously order
	// some vertices differently; at minimum, the metrics must all be
	// computable and give the hub of a star rank 0.
	g := graph.Star(7)
	for _, m := range AllMetrics() {
		if r := Ranks(g, m, Options{}); r[0] != 0 {
			t.Fatalf("%s: star hub rank = %d", m, r[0])
		}
	}
}

func TestRanksIntoMatchesRanksAllMetrics(t *testing.T) {
	rng := hdc.NewRNG(31)
	var s Scratch
	var dst []int
	for trial := 0; trial < 12; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = graph.ErdosRenyi(6+trial*6, 0.12, rng)
		case 1:
			g = graph.Star(5 + trial)
		default:
			g = graph.Disjoint(graph.Ring(4+trial), graph.Path(3+trial))
		}
		for _, m := range AllMetrics() {
			want := Ranks(g, m, Options{})
			dst = RanksInto(g, m, Options{}, dst, &s)
			for v := range want {
				if dst[v] != want[v] {
					t.Fatalf("trial %d metric %s: rank[%d] = %d, want %d", trial, m, v, dst[v], want[v])
				}
			}
		}
	}
}

func TestScoresIntoMatchesScoresAllMetrics(t *testing.T) {
	rng := hdc.NewRNG(32)
	var s Scratch
	for trial := 0; trial < 8; trial++ {
		g := graph.ErdosRenyi(10+trial*9, 0.1, rng)
		for _, m := range AllMetrics() {
			want := Scores(g, m, Options{})
			got := ScoresInto(g, m, Options{}, &s)
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("trial %d metric %s: score[%d] = %v, want %v", trial, m, v, got[v], want[v])
				}
			}
		}
	}
}

func TestRanksIntoAllocationFreeAllMetrics(t *testing.T) {
	g := graph.ErdosRenyi(80, 0.08, hdc.NewRNG(33))
	for _, m := range AllMetrics() {
		var s Scratch
		dst := RanksInto(g, m, Options{}, nil, &s) // warm the buffers
		allocs := testing.AllocsPerRun(20, func() {
			dst = RanksInto(g, m, Options{}, dst, &s)
		})
		if allocs != 0 {
			t.Fatalf("metric %s: RanksInto allocated %v times per run, want 0", m, allocs)
		}
	}
}

func TestIntoVariantsOutOfRangeMetricFallsBackToPageRank(t *testing.T) {
	// Serialized configs can carry unvalidated metric values; the Into
	// variants must route them exactly like Scores/Ranks do (PageRank
	// fallback), not to some other metric.
	g := graph.ErdosRenyi(25, 0.15, hdc.NewRNG(34))
	bogus := Metric(99)
	var s Scratch
	wantS := Scores(g, bogus, Options{})
	gotS := ScoresInto(g, bogus, Options{}, &s)
	for v := range wantS {
		if gotS[v] != wantS[v] {
			t.Fatalf("score[%d] = %v, want %v", v, gotS[v], wantS[v])
		}
	}
	wantR := Ranks(g, bogus, Options{})
	gotR := RanksInto(g, bogus, Options{}, nil, &s)
	for v := range wantR {
		if gotR[v] != wantR[v] {
			t.Fatalf("rank[%d] = %d, want %d", v, gotR[v], wantR[v])
		}
	}
}
