// Package centrality implements the vertex-centrality metrics GraphHD can
// derive vertex identifiers from. The paper proposes PageRank (package
// pagerank); this package adds degree, eigenvector and closeness
// centrality so the identifier choice can be ablated (experiment A7 in
// DESIGN.md) — any metric that orders vertices consistently across graphs
// fits the encoder.
package centrality

import (
	"math"
	"sort"

	"graphhd/internal/graph"
	"graphhd/internal/pagerank"
)

// Metric selects a vertex-centrality measure.
type Metric int

// Supported metrics.
const (
	// PageRank is the paper's choice (damping 0.85, fixed iterations).
	PageRank Metric = iota
	// Degree is normalized vertex degree, the cheapest possible metric.
	Degree
	// Eigenvector is the principal-eigenvector score of the adjacency
	// matrix (power iteration).
	Eigenvector
	// Closeness is BFS-based closeness with the Wasserman-Faust
	// correction for disconnected graphs.
	Closeness
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case PageRank:
		return "pagerank"
	case Degree:
		return "degree"
	case Eigenvector:
		return "eigenvector"
	case Closeness:
		return "closeness"
	default:
		return "unknown"
	}
}

// Options configures centrality computation. Iterations and Damping apply
// to the iterative metrics (PageRank, Eigenvector); zero values select the
// paper defaults.
type Options struct {
	Iterations int
	Damping    float64
}

// Scores returns the centrality score of every vertex under the given
// metric. Scores are comparable within one graph; only their ordering is
// used by the encoder.
func Scores(g *graph.Graph, metric Metric, opts Options) []float64 {
	switch metric {
	case Degree:
		return degreeScores(g)
	case Eigenvector:
		return eigenvectorScores(g, opts)
	case Closeness:
		return closenessScores(g)
	default:
		return pagerank.Scores(g, pagerank.Options{Iterations: opts.Iterations, Damping: opts.Damping})
	}
}

// Ranks returns each vertex's centrality rank under the given metric:
// 0 for the most central vertex. Ties break deterministically by score
// descending, then degree descending, then vertex id ascending — the same
// rule as pagerank.Ranks.
func Ranks(g *graph.Graph, metric Metric, opts Options) []int {
	if metric == PageRank {
		return pagerank.Ranks(g, pagerank.Options{Iterations: opts.Iterations, Damping: opts.Damping})
	}
	return RanksFromScores(g, Scores(g, metric, opts))
}

// RanksFromScores converts a score vector to deterministic ranks with the
// shared tie-break rule.
func RanksFromScores(g *graph.Graph, scores []float64) []int {
	n := g.NumVertices()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if scores[va] != scores[vb] {
			return scores[va] > scores[vb]
		}
		da, db := g.Degree(va), g.Degree(vb)
		if da != db {
			return da > db
		}
		return va < vb
	})
	ranks := make([]int, n)
	for r, v := range order {
		ranks[v] = r
	}
	return ranks
}

func degreeScores(g *graph.Graph) []float64 {
	n := g.NumVertices()
	s := make([]float64, n)
	if n < 2 {
		return s
	}
	inv := 1 / float64(n-1)
	for v := 0; v < n; v++ {
		s[v] = float64(g.Degree(v)) * inv
	}
	return s
}

// eigenvectorScores runs power iteration on the shifted adjacency matrix
// A + I with L2 normalization. The shift leaves the principal eigenvector
// (and therefore the ranking) unchanged while preventing the sign
// oscillation power iteration suffers on bipartite graphs, whose extreme
// eigenvalues come in ±λ pairs.
func eigenvectorScores(g *graph.Graph, opts Options) []float64 {
	n := g.NumVertices()
	if g.NumEdges() == 0 {
		// No adjacency structure: define all scores as zero rather than
		// letting the +I shift return a meaningless uniform vector.
		return make([]float64, n)
	}
	iters := opts.Iterations
	if iters == 0 {
		iters = 50
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	for v := range cur {
		cur[v] = 1
	}
	for it := 0; it < iters; it++ {
		copy(next, cur) // the +I term
		for v := 0; v < n; v++ {
			cv := cur[v]
			if cv == 0 {
				continue
			}
			for _, w := range g.Neighbors(v) {
				next[w] += cv
			}
		}
		norm := 0.0
		for _, x := range next {
			norm += x * x
		}
		if norm == 0 {
			// Edgeless graph: all scores zero.
			return next
		}
		norm = math.Sqrt(norm)
		for v := range next {
			next[v] /= norm
		}
		cur, next = next, cur
	}
	return cur
}

// closenessScores computes Wasserman-Faust closeness: for each vertex v
// with r(v) reachable vertices at total BFS distance s(v),
// C(v) = ((r-1)/(n-1)) * ((r-1)/s). Isolated vertices score 0.
func closenessScores(g *graph.Graph) []float64 {
	n := g.NumVertices()
	out := make([]float64, n)
	if n < 2 {
		return out
	}
	dist := make([]int, n)
	queue := make([]int32, 0, n)
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], int32(src))
		total, reach := 0, 1
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(int(v)) {
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					total += dist[w]
					reach++
					queue = append(queue, w)
				}
			}
		}
		if total > 0 {
			r := float64(reach - 1)
			out[src] = (r / float64(n-1)) * (r / float64(total))
		}
	}
	return out
}

// AllMetrics lists every supported metric, for sweeps.
func AllMetrics() []Metric {
	return []Metric{PageRank, Degree, Eigenvector, Closeness}
}
