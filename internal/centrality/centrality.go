// Package centrality implements the vertex-centrality metrics GraphHD can
// derive vertex identifiers from. The paper proposes PageRank (package
// pagerank); this package adds degree, eigenvector and closeness
// centrality so the identifier choice can be ablated (experiment A7 in
// DESIGN.md) — any metric that orders vertices consistently across graphs
// fits the encoder.
package centrality

import (
	"math"

	"graphhd/internal/graph"
	"graphhd/internal/pagerank"
)

// Metric selects a vertex-centrality measure.
type Metric int

// Supported metrics.
const (
	// PageRank is the paper's choice (damping 0.85, fixed iterations).
	PageRank Metric = iota
	// Degree is normalized vertex degree, the cheapest possible metric.
	Degree
	// Eigenvector is the principal-eigenvector score of the adjacency
	// matrix (power iteration).
	Eigenvector
	// Closeness is BFS-based closeness with the Wasserman-Faust
	// correction for disconnected graphs.
	Closeness
)

// String returns the metric name.
func (m Metric) String() string {
	switch m {
	case PageRank:
		return "pagerank"
	case Degree:
		return "degree"
	case Eigenvector:
		return "eigenvector"
	case Closeness:
		return "closeness"
	default:
		return "unknown"
	}
}

// Options configures centrality computation. Iterations and Damping apply
// to the iterative metrics (PageRank, Eigenvector); zero values select the
// paper defaults.
type Options struct {
	Iterations int
	Damping    float64
}

// Scratch holds the reusable buffers of ScoresInto and RanksInto: the
// PageRank scratch for the PageRank delegation, separate score/order
// buffers for the other metrics, and the BFS state closeness needs. The
// zero value is ready to use; buffers grow to the largest graph seen and
// are then reused. A Scratch is not safe for concurrent use — each
// encoding goroutine owns its own.
type Scratch struct {
	pr           pagerank.Scratch
	scores, next []float64
	order        []int
	dist         []int
	queue        []int32
}

// ensure grows the non-PageRank buffers to cover n vertices.
func (s *Scratch) ensure(n int) {
	if cap(s.scores) < n {
		s.scores = make([]float64, n)
	}
	if cap(s.next) < n {
		s.next = make([]float64, n)
	}
	if cap(s.order) < n {
		s.order = make([]int, n)
	}
}

// Scores returns the centrality score of every vertex under the given
// metric. Scores are comparable within one graph; only their ordering is
// used by the encoder.
func Scores(g *graph.Graph, metric Metric, opts Options) []float64 {
	switch metric {
	case Degree:
		return degreeScoresInto(g, make([]float64, g.NumVertices()))
	case Eigenvector:
		return eigenvectorScoresInto(g, opts, make([]float64, g.NumVertices()), make([]float64, g.NumVertices()))
	case Closeness:
		var s Scratch
		return closenessScoresInto(g, make([]float64, g.NumVertices()), &s)
	default:
		return pagerank.Scores(g, pagerank.Options{Iterations: opts.Iterations, Damping: opts.Damping})
	}
}

// ScoresInto is Scores writing into s's reusable buffers. The returned
// slice is owned by s and valid until the next ScoresInto or RanksInto
// call on it. Out-of-range metric values fall back to PageRank, the same
// rule as Scores.
func ScoresInto(g *graph.Graph, metric Metric, opts Options, s *Scratch) []float64 {
	n := g.NumVertices()
	switch metric {
	case Degree:
		s.ensure(n)
		return degreeScoresInto(g, s.scores[:n])
	case Eigenvector:
		s.ensure(n)
		return eigenvectorScoresInto(g, opts, s.scores[:n], s.next[:n])
	case Closeness:
		s.ensure(n)
		return closenessScoresInto(g, s.scores[:n], s)
	default:
		return pagerank.ScoresInto(g, pagerank.Options{Iterations: opts.Iterations, Damping: opts.Damping}, &s.pr)
	}
}

// Ranks returns each vertex's centrality rank under the given metric:
// 0 for the most central vertex. Ties break deterministically by score
// descending, then degree descending, then vertex id ascending — the same
// rule as pagerank.Ranks.
func Ranks(g *graph.Graph, metric Metric, opts Options) []int {
	if metric == PageRank {
		return pagerank.Ranks(g, pagerank.Options{Iterations: opts.Iterations, Damping: opts.Damping})
	}
	return RanksFromScores(g, Scores(g, metric, opts))
}

// RanksInto is Ranks writing into dst, with every intermediate buffer
// drawn from s. dst is grown when its capacity is insufficient, so callers
// that reuse the returned slice reach a steady state with zero heap
// allocations per graph. Out-of-range metric values fall back to PageRank,
// the same rule as Ranks.
func RanksInto(g *graph.Graph, metric Metric, opts Options, dst []int, s *Scratch) []int {
	switch metric {
	case Degree, Eigenvector, Closeness:
		scores := ScoresInto(g, metric, opts, s)
		return RanksFromScoresInto(g, scores, dst, s.order[:g.NumVertices()])
	default:
		return pagerank.RanksInto(g, pagerank.Options{Iterations: opts.Iterations, Damping: opts.Damping}, dst, &s.pr)
	}
}

// RanksFromScores converts a score vector to deterministic ranks with the
// shared tie-break rule.
func RanksFromScores(g *graph.Graph, scores []float64) []int {
	n := g.NumVertices()
	return RanksFromScoresInto(g, scores, make([]int, n), make([]int, n))
}

// RanksFromScoresInto is RanksFromScores writing the ranks into dst and
// using order — a caller-owned slice of length NumVertices — as sort
// scratch. The sort is pagerank.SortByCentrality, allocation-free and
// identical to the historical sort.SliceStable result because the
// tie-break rule is a total order.
func RanksFromScoresInto(g *graph.Graph, scores []float64, dst, order []int) []int {
	n := g.NumVertices()
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	order = order[:n]
	for i := range order {
		order[i] = i
	}
	pagerank.SortByCentrality(g, scores, order)
	for r, v := range order {
		dst[v] = r
	}
	return dst
}

func degreeScoresInto(g *graph.Graph, s []float64) []float64 {
	n := g.NumVertices()
	s = s[:n]
	for v := range s {
		s[v] = 0
	}
	if n < 2 {
		return s
	}
	inv := 1 / float64(n-1)
	for v := 0; v < n; v++ {
		s[v] = float64(g.Degree(v)) * inv
	}
	return s
}

// eigenvectorScoresInto runs power iteration on the shifted adjacency
// matrix A + I with L2 normalization, ping-ponging between the caller's
// cur and next buffers (the returned slice is one of the two). The shift
// leaves the principal eigenvector (and therefore the ranking) unchanged
// while preventing the sign oscillation power iteration suffers on
// bipartite graphs, whose extreme eigenvalues come in ±λ pairs.
func eigenvectorScoresInto(g *graph.Graph, opts Options, cur, next []float64) []float64 {
	n := g.NumVertices()
	cur, next = cur[:n], next[:n]
	if g.NumEdges() == 0 {
		// No adjacency structure: define all scores as zero rather than
		// letting the +I shift return a meaningless uniform vector.
		for v := range cur {
			cur[v] = 0
		}
		return cur
	}
	iters := opts.Iterations
	if iters == 0 {
		iters = 50
	}
	for v := range cur {
		cur[v] = 1
	}
	for it := 0; it < iters; it++ {
		copy(next, cur) // the +I term
		for v := 0; v < n; v++ {
			cv := cur[v]
			if cv == 0 {
				continue
			}
			for _, w := range g.Neighbors(v) {
				next[w] += cv
			}
		}
		norm := 0.0
		for _, x := range next {
			norm += x * x
		}
		if norm == 0 {
			// Edgeless graph: all scores zero.
			return next
		}
		norm = math.Sqrt(norm)
		for v := range next {
			next[v] /= norm
		}
		cur, next = next, cur
	}
	return cur
}

// closenessScoresInto computes Wasserman-Faust closeness into out: for
// each vertex v with r(v) reachable vertices at total BFS distance s(v),
// C(v) = ((r-1)/(n-1)) * ((r-1)/s). Isolated vertices score 0. The BFS
// distance array and queue live in s.
func closenessScoresInto(g *graph.Graph, out []float64, s *Scratch) []float64 {
	n := g.NumVertices()
	out = out[:n]
	for v := range out {
		out[v] = 0
	}
	if n < 2 {
		return out
	}
	if cap(s.dist) < n {
		s.dist = make([]int, n)
	}
	if cap(s.queue) < n {
		s.queue = make([]int32, 0, n)
	}
	dist := s.dist[:n]
	queue := s.queue[:0]
	for src := 0; src < n; src++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[src] = 0
		queue = append(queue[:0], int32(src))
		total, reach := 0, 1
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for _, w := range g.Neighbors(int(v)) {
				if dist[w] == -1 {
					dist[w] = dist[v] + 1
					total += dist[w]
					reach++
					queue = append(queue, w)
				}
			}
		}
		if total > 0 {
			r := float64(reach - 1)
			out[src] = (r / float64(n-1)) * (r / float64(total))
		}
	}
	return out
}

// AllMetrics lists every supported metric, for sweeps.
func AllMetrics() []Metric {
	return []Metric{PageRank, Degree, Eigenvector, Closeness}
}
