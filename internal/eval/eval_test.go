package eval

import (
	"testing"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

func TestStratifiedKFoldPartition(t *testing.T) {
	labels := []int{0, 0, 0, 0, 1, 1, 1, 1, 1, 1}
	folds, err := StratifiedKFold(labels, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(labels) {
		t.Fatalf("covered %d of %d samples", len(seen), len(labels))
	}
}

func TestStratifiedKFoldBalance(t *testing.T) {
	// 50/50 classes into 10 folds: every fold must hold one of each.
	labels := make([]int, 20)
	for i := 10; i < 20; i++ {
		labels[i] = 1
	}
	folds, err := StratifiedKFold(labels, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	for fi, f := range folds {
		c0, c1 := 0, 0
		for _, i := range f {
			if labels[i] == 0 {
				c0++
			} else {
				c1++
			}
		}
		if c0 != 1 || c1 != 1 {
			t.Fatalf("fold %d has %d/%d", fi, c0, c1)
		}
	}
}

func TestStratifiedKFoldErrors(t *testing.T) {
	if _, err := StratifiedKFold([]int{0, 1}, 1, 1); err == nil {
		t.Fatal("expected k<2 error")
	}
	if _, err := StratifiedKFold([]int{0}, 2, 1); err == nil {
		t.Fatal("expected too-few-samples error")
	}
}

func TestStratifiedKFoldDeterministic(t *testing.T) {
	labels := []int{0, 1, 0, 1, 0, 1, 0, 1}
	a, _ := StratifiedKFold(labels, 4, 7)
	b, _ := StratifiedKFold(labels, 4, 7)
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatal("nondeterministic folds")
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("nondeterministic folds")
			}
		}
	}
}

// tinyDataset builds a small separable two-class dataset.
func tinyDataset(n int, seed uint64) *graph.Dataset {
	rng := hdc.NewRNG(seed)
	ds := &graph.Dataset{Name: "TINY", ClassNames: []string{"0", "1"}}
	for i := 0; i < n; i++ {
		ds.Graphs = append(ds.Graphs, graph.ErdosRenyi(18, 0.12, rng))
		ds.Labels = append(ds.Labels, 0)
		ds.Graphs = append(ds.Graphs, graph.WattsStrogatz(18, 4, 0.05, rng))
		ds.Labels = append(ds.Labels, 1)
	}
	return ds
}

func smallHDConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Dimension = 2048
	return cfg
}

func TestCrossValidateGraphHD(t *testing.T) {
	ds := tinyDataset(15, 1)
	res, err := CrossValidate("GraphHD", ds, func(fold int, seed uint64) Classifier {
		return NewGraphHDClassifier(smallHDConfig())
	}, CrossValidateOptions{Folds: 3, Repetitions: 2, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 6 {
		t.Fatalf("folds recorded = %d, want 6", len(res.Folds))
	}
	if acc := res.MeanAccuracy(); acc < 0.8 {
		t.Fatalf("GraphHD CV accuracy = %f", acc)
	}
	if res.MeanTrainTime() <= 0 || res.MeanInferTimePerGraph() <= 0 {
		t.Fatal("timings not recorded")
	}
	if res.StdAccuracy() < 0 {
		t.Fatal("negative std")
	}
}

func TestCrossValidateKernelSVM(t *testing.T) {
	ds := tinyDataset(12, 2)
	for _, kind := range []KernelKind{KernelWLSubtree, KernelWLOA} {
		res, err := CrossValidate(kind.String(), ds, func(fold int, seed uint64) Classifier {
			c := NewKernelSVMClassifier(kind, seed)
			// Small grids keep the test quick.
			c.CGrid = []float64{0.1, 10}
			c.HGrid = []int{1, 2}
			return c
		}, CrossValidateOptions{Folds: 3, Repetitions: 1, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		if acc := res.MeanAccuracy(); acc < 0.75 {
			t.Fatalf("%s CV accuracy = %f", kind, acc)
		}
	}
}

func TestCrossValidateGIN(t *testing.T) {
	ds := tinyDataset(15, 3)
	res, err := CrossValidate("GIN-e", ds, func(fold int, seed uint64) Classifier {
		c := NewGINClassifier(false, seed)
		c.Config.MaxEpochs = 60
		return c
	}, CrossValidateOptions{Folds: 3, Repetitions: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.MeanAccuracy(); acc < 0.7 {
		t.Fatalf("GIN CV accuracy = %f", acc)
	}
}

func TestKernelSVMBestParamsRecorded(t *testing.T) {
	ds := tinyDataset(10, 4)
	c := NewKernelSVMClassifier(KernelWLSubtree, 9)
	c.CGrid = []float64{1}
	c.HGrid = []int{2}
	if err := c.Fit(ds.Graphs, ds.Labels); err != nil {
		t.Fatal(err)
	}
	cc, h := c.BestParams()
	if cc != 1 || h != 2 {
		t.Fatalf("best params = %v, %v", cc, h)
	}
	preds := c.PredictAll(ds.Graphs)
	if Accuracy(preds, ds.Labels) < 0.8 {
		t.Fatalf("train accuracy = %f", Accuracy(preds, ds.Labels))
	}
}

func TestConfusionAndAccuracy(t *testing.T) {
	preds := []int{0, 1, 1, 0}
	truth := []int{0, 1, 0, 0}
	m := Confusion(preds, truth, 2)
	if m[0][0] != 2 || m[0][1] != 1 || m[1][1] != 1 || m[1][0] != 0 {
		t.Fatalf("confusion = %v", m)
	}
	if Accuracy(preds, truth) != 0.75 {
		t.Fatalf("accuracy = %f", Accuracy(preds, truth))
	}
	if Accuracy(nil, nil) != 0 {
		t.Fatal("empty accuracy should be 0")
	}
}

func TestResultAggregation(t *testing.T) {
	r := &Result{Folds: []FoldResult{
		{Accuracy: 0.5, TrainTime: time.Second, InferTime: 100 * time.Millisecond, TestSize: 10},
		{Accuracy: 1.0, TrainTime: 3 * time.Second, InferTime: 300 * time.Millisecond, TestSize: 10},
	}}
	if r.MeanAccuracy() != 0.75 {
		t.Fatalf("mean = %f", r.MeanAccuracy())
	}
	if r.MeanTrainTime() != 2*time.Second {
		t.Fatalf("train time = %v", r.MeanTrainTime())
	}
	if r.MeanInferTimePerGraph() != 20*time.Millisecond {
		t.Fatalf("infer/graph = %v", r.MeanInferTimePerGraph())
	}
	if r.StdAccuracy() == 0 {
		t.Fatal("std should be positive")
	}
	single := &Result{Folds: r.Folds[:1]}
	if single.StdAccuracy() != 0 {
		t.Fatal("single-fold std should be 0")
	}
}

func TestCVDefaultsApplied(t *testing.T) {
	opts := DefaultCVOptions()
	if opts.Folds != 10 || opts.Repetitions != 3 {
		t.Fatalf("defaults = %+v", opts)
	}
}

func TestStratifiedKFoldNegativeAndSparseLabels(t *testing.T) {
	// Regression: raw TUDataset-style {-1, +1} labels passed directly
	// (bypassing the loader's remap) used to lose every negative-label
	// sample because classes were scanned over [0, maxClass].
	labels := []int{-1, 1, -1, 1, -1, 1, -1, 1}
	folds, err := StratifiedKFold(labels, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, f := range folds {
		for _, i := range f {
			if seen[i] {
				t.Fatalf("index %d in two folds", i)
			}
			seen[i] = true
		}
	}
	if len(seen) != len(labels) {
		t.Fatalf("covered %d of %d samples (negative labels dropped)", len(seen), len(labels))
	}

	// Sparse labels: no sample between the class values may vanish either.
	sparse := []int{100, -3, 100, -3, 5, 5, 100, -3}
	folds, err = StratifiedKFold(sparse, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, f := range folds {
		n += len(f)
	}
	if n != len(sparse) {
		t.Fatalf("covered %d of %d sparse-label samples", n, len(sparse))
	}

	// Class proportions must still be preserved per fold: 3 samples of
	// class 100 into 2 folds means each fold holds 1 or 2 of them.
	for fi, f := range folds {
		per := map[int]int{}
		for _, i := range f {
			per[sparse[i]]++
		}
		if per[100] < 1 || per[100] > 2 {
			t.Fatalf("fold %d class-100 count %d", fi, per[100])
		}
	}
}

func TestResultEmptyFolds(t *testing.T) {
	// Regression: MeanTrainTime divided by len(Folds) == 0 and panicked;
	// MeanAccuracy returned NaN. All aggregates must degrade to 0.
	r := &Result{Method: "GraphHD", Dataset: "EMPTY"}
	if got := r.MeanAccuracy(); got != 0 {
		t.Fatalf("MeanAccuracy = %v, want 0", got)
	}
	if got := r.StdAccuracy(); got != 0 {
		t.Fatalf("StdAccuracy = %v, want 0", got)
	}
	if got := r.MeanTrainTime(); got != 0 {
		t.Fatalf("MeanTrainTime = %v, want 0", got)
	}
	if got := r.MeanInferTimePerGraph(); got != 0 {
		t.Fatalf("MeanInferTimePerGraph = %v, want 0", got)
	}
}

func TestResultSingleFoldAggregates(t *testing.T) {
	r := &Result{Folds: []FoldResult{{
		Accuracy: 0.5, TrainTime: 2 * time.Second, InferTime: 100 * time.Millisecond, TestSize: 10,
	}}}
	if got := r.MeanAccuracy(); got != 0.5 {
		t.Fatalf("MeanAccuracy = %v", got)
	}
	if got := r.MeanTrainTime(); got != 2*time.Second {
		t.Fatalf("MeanTrainTime = %v", got)
	}
	if got := r.MeanInferTimePerGraph(); got != 10*time.Millisecond {
		t.Fatalf("MeanInferTimePerGraph = %v", got)
	}
}
