// Package eval implements the paper's experimental protocol: stratified
// k-fold cross-validation with repetitions, per-fold wall-time bookkeeping
// for training and inference, and summary statistics. Section V-A: "We use
// 10-fold cross validation ... The wall-time for one fold of training is
// considered the training time. The inference time is set to be the
// testing wall-time of one fold. Measurements are averaged over 3
// repetitions of 10-fold cross validation."
package eval

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/parallel"
)

// Classifier is the minimal interface every compared method implements for
// the harness: fit a training set, then predict a test set.
type Classifier interface {
	// Fit trains on the given graphs; implementations are fresh per fold.
	Fit(graphs []*graph.Graph, labels []int) error
	// PredictAll classifies the given graphs.
	PredictAll(graphs []*graph.Graph) []int
}

// Factory produces a fresh classifier for each fold so folds never share
// state. The fold index and repetition seed the run deterministically.
type Factory func(fold int, seed uint64) Classifier

// StratifiedKFold splits indices [0, n) into k folds preserving class
// proportions. Samples of each class are shuffled with the seed and dealt
// round-robin, so every fold's class histogram differs by at most one.
func StratifiedKFold(labels []int, k int, seed uint64) ([][]int, error) {
	if k < 2 {
		return nil, fmt.Errorf("eval: need k >= 2 folds, got %d", k)
	}
	if len(labels) < k {
		return nil, fmt.Errorf("eval: %d samples for %d folds", len(labels), k)
	}
	byClass := map[int][]int{}
	for i, l := range labels {
		byClass[l] = append(byClass[l], i)
	}
	rng := hdc.NewRNG(seed)
	folds := make([][]int, k)
	// Iterate classes in deterministic (sorted) order. Iterating the actual
	// keys — rather than assuming labels live in [0, maxClass] — keeps
	// negative and sparse label values (e.g. raw TUDataset {-1, +1} labels
	// that bypassed the loader's remap) from being silently dropped.
	classes := make([]int, 0, len(byClass))
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	next := 0
	for _, c := range classes {
		idx := byClass[c]
		perm := rng.Perm(len(idx))
		for _, p := range perm {
			folds[next%k] = append(folds[next%k], idx[p])
			next++
		}
	}
	return folds, nil
}

// FoldResult holds one fold's measurements.
type FoldResult struct {
	Fold       int
	Repetition int
	Accuracy   float64
	TrainTime  time.Duration
	// InferTime is the wall time to classify the whole test fold.
	InferTime time.Duration
	TestSize  int
}

// Result aggregates a full cross-validation run.
type Result struct {
	Method  string
	Dataset string
	Folds   []FoldResult
}

// MeanAccuracy returns the mean fold accuracy, or 0 with no folds.
func (r *Result) MeanAccuracy() float64 {
	if len(r.Folds) == 0 {
		return 0
	}
	s := 0.0
	for _, f := range r.Folds {
		s += f.Accuracy
	}
	return s / float64(len(r.Folds))
}

// StdAccuracy returns the sample standard deviation of fold accuracies.
func (r *Result) StdAccuracy() float64 {
	if len(r.Folds) < 2 {
		return 0
	}
	m := r.MeanAccuracy()
	s := 0.0
	for _, f := range r.Folds {
		d := f.Accuracy - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(r.Folds)-1))
}

// MeanTrainTime returns the mean wall time of one fold of training, or 0
// with no folds.
func (r *Result) MeanTrainTime() time.Duration {
	if len(r.Folds) == 0 {
		return 0
	}
	var s time.Duration
	for _, f := range r.Folds {
		s += f.TrainTime
	}
	return s / time.Duration(len(r.Folds))
}

// MeanInferTimePerGraph returns the mean inference wall time per test
// graph, the normalization the paper reports.
func (r *Result) MeanInferTimePerGraph() time.Duration {
	var total time.Duration
	graphs := 0
	for _, f := range r.Folds {
		total += f.InferTime
		graphs += f.TestSize
	}
	if graphs == 0 {
		return 0
	}
	return total / time.Duration(graphs)
}

// CrossValidateOptions configures a run.
type CrossValidateOptions struct {
	// Folds (paper: 10).
	Folds int
	// Repetitions (paper: 3).
	Repetitions int
	// Seed drives fold assignment and per-fold classifier seeds.
	Seed uint64
	// Workers caps how many folds run concurrently through the shared
	// worker pool. 0 (the zero value) and 1 run folds sequentially — the
	// timing-faithful paper protocol, and the historical behavior of
	// every caller that predates this field; negative uses all cores.
	// Folds never share classifier state, so accuracies are identical at
	// any worker count, but per-fold wall times measure *contended* time
	// when folds run concurrently.
	Workers int
}

// DefaultCVOptions returns the paper's protocol: 3 × 10-fold CV with
// sequential folds, so per-fold train/infer wall times stay uncontended as
// the paper's measurement protocol requires.
func DefaultCVOptions() CrossValidateOptions {
	return CrossValidateOptions{Folds: 10, Repetitions: 3, Seed: 0xc5eed}
}

// CrossValidate runs repeated stratified k-fold cross-validation of the
// classifiers produced by factory over ds. (Repetition, fold) pairs
// execute through the shared worker pool (see Options.Workers); results
// are collected in deterministic rep-major, fold-minor order regardless of
// completion order.
func CrossValidate(method string, ds *graph.Dataset, factory Factory, opts CrossValidateOptions) (*Result, error) {
	if opts.Folds == 0 {
		opts.Folds = 10
	}
	if opts.Repetitions == 0 {
		opts.Repetitions = 1
	}
	// Fold assignment per repetition, computed up front so job execution
	// order cannot influence it.
	type job struct {
		rep, fold int
		repSeed   uint64
		test      []int
		folds     [][]int
	}
	var jobs []job
	for rep := 0; rep < opts.Repetitions; rep++ {
		repSeed := opts.Seed + uint64(rep)*0x9e3779b97f4a7c15
		folds, err := StratifiedKFold(ds.Labels, opts.Folds, repSeed)
		if err != nil {
			return nil, err
		}
		for fi, test := range folds {
			jobs = append(jobs, job{rep: rep, fold: fi, repSeed: repSeed, test: test, folds: folds})
		}
	}

	workers := opts.Workers
	if workers == 0 {
		workers = 1 // zero value stays sequential; negative = all cores
	}
	results := make([]FoldResult, len(jobs))
	errs := make([]error, len(jobs))
	var failed atomic.Bool
	parallel.ForEach(workers, len(jobs), func(j int) {
		if failed.Load() {
			return // fail fast: skip remaining folds after the first error
		}
		jb := jobs[j]
		var train []int
		for fj, f := range jb.folds {
			if fj != jb.fold {
				train = append(train, f...)
			}
		}
		trainSet := ds.Subset(train)
		testSet := ds.Subset(jb.test)

		clf := factory(jb.fold, jb.repSeed+uint64(jb.fold))
		t0 := time.Now()
		if err := clf.Fit(trainSet.Graphs, trainSet.Labels); err != nil {
			errs[j] = fmt.Errorf("eval: %s fold %d: %w", method, jb.fold, err)
			failed.Store(true)
			return
		}
		trainTime := time.Since(t0)

		t1 := time.Now()
		preds := clf.PredictAll(testSet.Graphs)
		inferTime := time.Since(t1)

		correct := 0
		for i, p := range preds {
			if p == testSet.Labels[i] {
				correct++
			}
		}
		results[j] = FoldResult{
			Fold:       jb.fold,
			Repetition: jb.rep,
			Accuracy:   float64(correct) / float64(len(preds)),
			TrainTime:  trainTime,
			InferTime:  inferTime,
			TestSize:   len(preds),
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &Result{Method: method, Dataset: ds.Name, Folds: results}, nil
}

// Confusion returns the k×k confusion matrix of predictions vs truth.
func Confusion(preds, truth []int, k int) [][]int {
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	for i := range preds {
		if truth[i] >= 0 && truth[i] < k && preds[i] >= 0 && preds[i] < k {
			m[truth[i]][preds[i]]++
		}
	}
	return m
}

// Accuracy returns the fraction of matching predictions.
func Accuracy(preds, truth []int) float64 {
	if len(preds) == 0 {
		return 0
	}
	c := 0
	for i := range preds {
		if preds[i] == truth[i] {
			c++
		}
	}
	return float64(c) / float64(len(preds))
}
