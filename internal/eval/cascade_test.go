package eval

import (
	"testing"

	"graphhd/internal/core"
	"graphhd/internal/dataset"
)

// TestCalibrateCascadeAllDatasets pins the cascade acceptance criterion
// end to end on every synthetic Table-I dataset: a margin calibrated on a
// holdout keeps test accuracy within the tolerance of the full-dimension
// baseline, and the calibration report's bookkeeping is internally
// consistent.
func TestCalibrateCascadeAllDatasets(t *testing.T) {
	const tol = 0.005 // the half-point band of the acceptance criterion
	for _, name := range dataset.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			count := 90
			if name == "DD" {
				count = 30 // DD graphs are ~25× larger than the rest
			}
			ds, err := dataset.Generate(name, dataset.Options{Seed: 47, GraphCount: count})
			if err != nil {
				t.Fatal(err)
			}
			// Train / holdout / test thirds.
			n := len(ds.Graphs)
			trainG, trainY := ds.Graphs[:n/3], ds.Labels[:n/3]
			holdG, holdY := ds.Graphs[n/3:2*n/3], ds.Labels[n/3:2*n/3]
			testG, testY := ds.Graphs[2*n/3:], ds.Labels[2*n/3:]

			cfg := core.DefaultConfig()
			cfg.Dimension = 2048
			m, err := core.Train(cfg, trainG, trainY)
			if err != nil {
				t.Fatal(err)
			}
			pred := m.Snapshot()
			casc, rep, err := CalibrateCascade(pred, holdG, holdY, 512, tol)
			if err != nil {
				t.Fatal(err)
			}
			if casc.DPrefix != 512 || casc.Margin < 0 {
				t.Fatalf("implausible calibrated cascade %+v", casc)
			}
			if rep.Holdout != len(holdG) || rep.Escalations > rep.Holdout {
				t.Fatalf("inconsistent report %+v", rep)
			}
			if floor := rep.FullCorrect - int(tol*float64(rep.Holdout)); rep.CascadeCorrect < floor {
				t.Fatalf("holdout cascade correct %d below floor %d", rep.CascadeCorrect, floor)
			}
			if hr := 1 - float64(rep.Escalations)/float64(rep.Holdout); rep.Stage1HitRate != hr {
				t.Fatalf("Stage1HitRate %f, want %f", rep.Stage1HitRate, hr)
			}

			// On held-out test graphs the calibrated cascade stays within
			// the band of the full-dimension baseline. (The guarantee is
			// statistical, calibrated on the holdout; the generators'
			// in-distribution test split tracks it — allow one graph of
			// slack beyond the band for small test sets.)
			fullPreds := pred.PredictAll(testG)
			if err := pred.SetCascade(casc); err != nil {
				t.Fatal(err)
			}
			s := pred.Encoder().NewScratch()
			fullCorrect, cascCorrect := 0, 0
			for i, g := range testG {
				if fullPreds[i] == testY[i] {
					fullCorrect++
				}
				if cls, _ := pred.PredictCascadeWith(s, g); cls == testY[i] {
					cascCorrect++
				}
			}
			floor := fullCorrect - int(tol*float64(len(testG))) - 1
			if cascCorrect < floor {
				t.Fatalf("test cascade correct %d below floor %d (full %d of %d)",
					cascCorrect, floor, fullCorrect, len(testG))
			}
		})
	}
}

func TestCalibrateCascadeErrors(t *testing.T) {
	ds, err := dataset.Generate("MUTAG", dataset.Options{Seed: 51, GraphCount: 12})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Dimension = 1024
	m, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	pred := m.Snapshot()
	if _, _, err := CalibrateCascade(pred, nil, nil, 256, 0); err == nil {
		t.Fatal("empty holdout accepted")
	}
	if _, _, err := CalibrateCascade(pred, ds.Graphs, ds.Labels[:3], 256, 0); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	if _, _, err := CalibrateCascade(pred, ds.Graphs, ds.Labels, 1024, 0); err == nil {
		t.Fatal("prefix equal to model dimension accepted")
	}
	if _, _, err := CalibrateCascade(pred, ds.Graphs, ds.Labels, 32, 0); err == nil {
		t.Fatal("undersized prefix accepted")
	}
	if _, _, err := CalibrateCascade(pred, ds.Graphs, ds.Labels, 256, -0.1); err == nil {
		t.Fatal("negative tolerance accepted")
	}

	// Zero tolerance always converges: the maximal margin escalates
	// everything and matches full accuracy exactly.
	casc, rep, err := CalibrateCascade(pred, ds.Graphs, ds.Labels, 256, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.CascadeCorrect < rep.FullCorrect {
		t.Fatalf("zero-tolerance calibration lost accuracy: %d < %d (margin %d)",
			rep.CascadeCorrect, rep.FullCorrect, casc.Margin)
	}
}
