package eval

import (
	"fmt"
	"time"

	"graphhd/internal/graph"
)

// OnlineLearner is a classifier that can ingest one labeled sample at a
// time — the capability the paper highlights as structurally impossible
// for kernel machines ("kernel methods ... do not allow for online
// learning"). GraphHD's core.Model satisfies it via Learn + Predict.
type OnlineLearner interface {
	// Predict classifies a single graph with the current model state.
	Predict(g *graph.Graph) int
	// Learn updates the model with one labeled sample.
	Learn(g *graph.Graph, label int) error
}

// onlineAdapter lifts core.Model's (hv, error) Learn signature.
type onlineAdapter struct {
	predict func(*graph.Graph) int
	learn   func(*graph.Graph, int) error
}

func (a onlineAdapter) Predict(g *graph.Graph) int        { return a.predict(g) }
func (a onlineAdapter) Learn(g *graph.Graph, l int) error { return a.learn(g, l) }

// AdaptOnline builds an OnlineLearner from predict/learn funcs, for models
// whose Learn returns extra values.
func AdaptOnline(predict func(*graph.Graph) int, learn func(*graph.Graph, int) error) OnlineLearner {
	return onlineAdapter{predict: predict, learn: learn}
}

// ProgressiveResult holds a progressive-validation run: each sample is
// predicted BEFORE it is learned (Dawid's prequential protocol), so the
// accuracy curve measures genuine online generalization with no held-out
// set.
type ProgressiveResult struct {
	// Correct[i] reports whether sample i was predicted correctly (samples
	// inside the warmup window are excluded from all statistics).
	Correct []bool
	// Curve[j] is the running accuracy after (j+1)*CurveStride scored
	// samples; when Scored is not a multiple of CurveStride, one final
	// point at Scored samples closes the curve.
	Curve       []float64
	CurveStride int
	// Scored is the number of predictions counted (stream length minus
	// warmup).
	Scored int
	// LearnTime is the total wall time spent in Learn calls, the per-update
	// cost that makes streaming deployment feasible.
	LearnTime time.Duration
}

// FinalAccuracy returns the overall progressive accuracy.
func (r *ProgressiveResult) FinalAccuracy() float64 {
	if r.Scored == 0 {
		return 0
	}
	c := 0
	for _, ok := range r.Correct {
		if ok {
			c++
		}
	}
	return float64(c) / float64(r.Scored)
}

// ProgressiveValidation streams ds through learner: predict, score, then
// learn, sample by sample in dataset order. warmup samples at the head are
// learned without scoring (an untrained HDC model has empty class
// accumulators); stride sets the curve resolution (0 = len/10, min 1).
func ProgressiveValidation(learner OnlineLearner, ds *graph.Dataset, warmup, stride int) (*ProgressiveResult, error) {
	if ds.Len() == 0 {
		return nil, fmt.Errorf("eval: empty stream")
	}
	if warmup < 0 || warmup >= ds.Len() {
		return nil, fmt.Errorf("eval: warmup %d outside [0,%d)", warmup, ds.Len())
	}
	if stride <= 0 {
		stride = ds.Len() / 10
		if stride < 1 {
			stride = 1
		}
	}
	res := &ProgressiveResult{CurveStride: stride}
	correctSoFar := 0
	for i, g := range ds.Graphs {
		label := ds.Labels[i]
		if i >= warmup {
			ok := learner.Predict(g) == label
			res.Correct = append(res.Correct, ok)
			res.Scored++
			if ok {
				correctSoFar++
			}
			if res.Scored%stride == 0 {
				res.Curve = append(res.Curve, float64(correctSoFar)/float64(res.Scored))
			}
		}
		t0 := time.Now()
		if err := learner.Learn(g, label); err != nil {
			return nil, fmt.Errorf("eval: online learn sample %d: %w", i, err)
		}
		res.LearnTime += time.Since(t0)
	}
	// Close the curve: when the scored stream length is not a multiple of
	// stride, the tail since the last stride boundary would otherwise be
	// invisible.
	if res.Scored%stride != 0 {
		res.Curve = append(res.Curve, float64(correctSoFar)/float64(res.Scored))
	}
	return res, nil
}
