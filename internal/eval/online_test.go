package eval

import (
	"testing"

	"graphhd/internal/core"
	"graphhd/internal/graph"
)

func onlineModel(t *testing.T, k int) (*core.Model, OnlineLearner) {
	t.Helper()
	cfg := core.DefaultConfig()
	cfg.Dimension = 2048
	enc, err := core.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewModel(enc, k)
	if err != nil {
		t.Fatal(err)
	}
	return m, AdaptOnline(m.Predict, func(g *graph.Graph, l int) error {
		_, err := m.Learn(g, l)
		return err
	})
}

func TestProgressiveValidationImproves(t *testing.T) {
	ds := tinyDataset(60, 21) // alternating ER / Watts-Strogatz classes
	_, learner := onlineModel(t, 2)
	res, err := ProgressiveValidation(learner, ds, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scored != ds.Len()-2 {
		t.Fatalf("scored = %d", res.Scored)
	}
	if res.FinalAccuracy() < 0.8 {
		t.Fatalf("progressive accuracy = %f", res.FinalAccuracy())
	}
	if len(res.Curve) == 0 {
		t.Fatal("no curve points")
	}
	// The curve's tail should not be dramatically worse than its head —
	// and with this easy stream, the tail should be strong.
	if tail := res.Curve[len(res.Curve)-1]; tail < 0.75 {
		t.Fatalf("tail accuracy = %f", tail)
	}
	if res.LearnTime <= 0 {
		t.Fatal("learn time not recorded")
	}
}

func TestProgressiveValidationErrors(t *testing.T) {
	ds := tinyDataset(5, 22)
	_, learner := onlineModel(t, 2)
	if _, err := ProgressiveValidation(learner, &graph.Dataset{Name: "E"}, 0, 1); err == nil {
		t.Fatal("expected empty-stream error")
	}
	if _, err := ProgressiveValidation(learner, ds, ds.Len(), 1); err == nil {
		t.Fatal("expected warmup range error")
	}
	if _, err := ProgressiveValidation(learner, ds, -1, 1); err == nil {
		t.Fatal("expected negative warmup error")
	}
}

func TestProgressiveValidationDefaultStride(t *testing.T) {
	ds := tinyDataset(25, 23)
	_, learner := onlineModel(t, 2)
	res, err := ProgressiveValidation(learner, ds, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.CurveStride != ds.Len()/10 {
		t.Fatalf("stride = %d", res.CurveStride)
	}
	// Default stride on a tiny stream still floors at 1.
	one := tinyDataset(3, 24)
	_, learner2 := onlineModel(t, 2)
	res2, err := ProgressiveValidation(learner2, one, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res2.CurveStride != 1 {
		t.Fatalf("tiny stride = %d", res2.CurveStride)
	}
}

func TestProgressiveMatchesBatchOnFinalModel(t *testing.T) {
	// After streaming the whole dataset, the online model must equal a
	// batch-fitted model: bundling is order-independent addition.
	ds := tinyDataset(20, 25)
	m, learner := onlineModel(t, 2)
	if _, err := ProgressiveValidation(learner, ds, 0, 5); err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Dimension = 2048
	batch, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2; c++ {
		if !m.ClassVector(c).Equal(batch.ClassVector(c)) {
			t.Fatalf("online and batch class %d vectors differ", c)
		}
	}
}

func TestProgressiveValidationFinalCurvePoint(t *testing.T) {
	// Regression: with Scored not a multiple of stride, the tail past the
	// last stride boundary was invisible in the accuracy curve.
	ds := tinyDataset(11, 26) // 22 samples
	_, learner := onlineModel(t, 2)
	res, err := ProgressiveValidation(learner, ds, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scored != 22 {
		t.Fatalf("scored = %d", res.Scored)
	}
	// 22 scored / stride 5 → 4 stride points plus the closing tail point.
	if len(res.Curve) != 5 {
		t.Fatalf("curve has %d points, want 5", len(res.Curve))
	}
	if got := res.Curve[len(res.Curve)-1]; got != res.FinalAccuracy() {
		t.Fatalf("final curve point %v != final accuracy %v", got, res.FinalAccuracy())
	}

	// When the stream length divides evenly, no duplicate point appears.
	ds2 := tinyDataset(10, 27) // 20 samples
	_, learner2 := onlineModel(t, 2)
	res2, err := ProgressiveValidation(learner2, ds2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Curve) != 4 {
		t.Fatalf("evenly divided curve has %d points, want 4", len(res2.Curve))
	}
}
