package eval

import (
	"errors"
	"testing"

	"graphhd/internal/core"
	"graphhd/internal/graph"
)

func TestCrossValidateParallelMatchesSequential(t *testing.T) {
	// Folds share no classifier state, so accuracies (and fold order in the
	// result) must be identical at any worker count.
	ds := tinyDataset(12, 31)
	run := func(workers int) *Result {
		res, err := CrossValidate("GraphHD", ds, func(fold int, seed uint64) Classifier {
			return NewGraphHDClassifier(smallHDConfig())
		}, CrossValidateOptions{Folds: 3, Repetitions: 2, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// An explicit worker count > 1 forces the concurrent path even on a
	// single-core machine (0 and 1 both run sequentially by design).
	seq, par := run(1), run(4)
	if len(seq.Folds) != len(par.Folds) {
		t.Fatalf("fold counts differ: %d vs %d", len(seq.Folds), len(par.Folds))
	}
	for i := range seq.Folds {
		s, p := seq.Folds[i], par.Folds[i]
		if s.Fold != p.Fold || s.Repetition != p.Repetition {
			t.Fatalf("fold order differs at %d: (%d,%d) vs (%d,%d)",
				i, s.Repetition, s.Fold, p.Repetition, p.Fold)
		}
		if s.Accuracy != p.Accuracy || s.TestSize != p.TestSize {
			t.Fatalf("fold %d: accuracy %f/%d vs %f/%d",
				i, s.Accuracy, s.TestSize, p.Accuracy, p.TestSize)
		}
		if p.TrainTime <= 0 || p.InferTime <= 0 {
			t.Fatalf("fold %d: timings not recorded under parallel execution", i)
		}
	}
}

func TestCrossValidateParallelPropagatesErrors(t *testing.T) {
	ds := tinyDataset(12, 32)
	_, err := CrossValidate("bad", ds, func(fold int, seed uint64) Classifier {
		return failingClassifier{}
	}, CrossValidateOptions{Folds: 3, Repetitions: 1, Seed: 5, Workers: 0})
	if err == nil {
		t.Fatal("expected fit error to propagate")
	}
}

var errFit = errors.New("fit failed")

type failingClassifier struct{}

func (failingClassifier) Fit([]*graph.Graph, []int) error { return errFit }
func (failingClassifier) PredictAll([]*graph.Graph) []int { return nil }

func TestGraphHDClassifierUsesPackedPredictor(t *testing.T) {
	ds := tinyDataset(15, 33)
	c := NewGraphHDClassifier(smallHDConfig())
	if err := c.Fit(ds.Graphs, ds.Labels); err != nil {
		t.Fatal(err)
	}
	preds := c.PredictAll(ds.Graphs)
	// The adapter's predictions must equal the model's own packed snapshot
	// (majority-voted semantics), not the int8 accumulator path.
	want := c.Model().Snapshot().PredictAll(ds.Graphs)
	for i := range preds {
		if preds[i] != want[i] {
			t.Fatalf("graph %d: adapter %d, snapshot %d", i, preds[i], want[i])
		}
	}
	if Accuracy(preds, ds.Labels) < 0.9 {
		t.Fatalf("packed train accuracy = %f", Accuracy(preds, ds.Labels))
	}
}

func TestOnlineGraphHDLearnsAndMatchesPacked(t *testing.T) {
	ds := tinyDataset(40, 34)
	cfg := smallHDConfig()
	enc, err := core.NewEncoder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.NewModel(enc, 2)
	if err != nil {
		t.Fatal(err)
	}
	learner := OnlineGraphHD(m)
	res, err := ProgressiveValidation(learner, ds, 2, 20)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalAccuracy() < 0.8 {
		t.Fatalf("packed progressive accuracy = %f", res.FinalAccuracy())
	}
	// After the stream, the learner's predictions are the model's packed
	// predictions.
	for i, g := range ds.Graphs[:10] {
		if learner.Predict(g) != m.PredictPacked(g) {
			t.Fatalf("graph %d: adapter diverged from PredictPacked", i)
		}
	}
}
