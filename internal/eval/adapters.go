package eval

import (
	"fmt"

	"graphhd/internal/core"
	gingnn "graphhd/internal/gin"
	"graphhd/internal/graph"
	"graphhd/internal/svm"
	"graphhd/internal/wl"
)

// This file adapts the five compared methods — GraphHD, the 1-WL and WL-OA
// kernel SVMs, and the GIN-ε / GIN-ε-JK networks — to the Classifier
// interface, including the hyper-parameter search the paper's protocol
// prescribes for the kernels.

// GraphHDClassifier wraps core.Model. Training accumulates int32 class
// sums (the reference path); inference runs on a packed query snapshot —
// majority-voted bit-packed class vectors classified by popcount Hamming
// distance, the strict paper formulation. This matches a model configured
// with BipolarClassVectors: true bit for bit and keeps the harness's hot
// query path entirely in bit form.
type GraphHDClassifier struct {
	Config core.Config
	model  *core.Model
	pred   *core.Predictor
}

// NewGraphHDClassifier returns an adapter using cfg (zero Dimension
// selects the paper defaults).
func NewGraphHDClassifier(cfg core.Config) *GraphHDClassifier {
	if cfg.Dimension == 0 {
		cfg = core.DefaultConfig()
	}
	return &GraphHDClassifier{Config: cfg}
}

// Fit trains a fresh GraphHD model and freezes its packed query snapshot.
func (c *GraphHDClassifier) Fit(graphs []*graph.Graph, labels []int) error {
	m, err := core.Train(c.Config, graphs, labels)
	if err != nil {
		return err
	}
	c.model = m
	c.pred = m.Snapshot()
	return nil
}

// Model exposes the trained reference model (int32 accumulators).
func (c *GraphHDClassifier) Model() *core.Model { return c.model }

// PredictAll classifies the given graphs on the packed path.
func (c *GraphHDClassifier) PredictAll(graphs []*graph.Graph) []int {
	return c.pred.PredictAll(graphs)
}

// OnlineGraphHD adapts a core.Model into an OnlineLearner whose
// predictions run on the packed path: each query is encoded straight to
// bit-packed form and classified against a majority-voted snapshot that
// refreshes lazily after every Learn.
func OnlineGraphHD(m *core.Model) OnlineLearner {
	return AdaptOnline(m.PredictPacked, func(g *graph.Graph, l int) error {
		_, err := m.Learn(g, l)
		return err
	})
}

// KernelKind selects which WL kernel a KernelSVMClassifier uses.
type KernelKind int

// Supported kernels.
const (
	KernelWLSubtree KernelKind = iota // 1-WL
	KernelWLOA                        // WL-OA
)

func (k KernelKind) String() string {
	switch k {
	case KernelWLSubtree:
		return "1-WL"
	case KernelWLOA:
		return "WL-OA"
	default:
		return fmt.Sprintf("KernelKind(%d)", int(k))
	}
}

func (k KernelKind) fn() wl.KernelFunc {
	if k == KernelWLOA {
		return wl.OptimalAssignmentKernel
	}
	return wl.SubtreeKernel
}

// KernelSVMClassifier is a WL kernel + one-vs-one SVM with the paper's
// hyper-parameter grid: C ∈ {1e-3 .. 1e3}, WL iterations h ∈ {0..5},
// selected on a stratified validation split of the training fold.
type KernelSVMClassifier struct {
	Kind KernelKind
	// CGrid and HGrid override the paper grids when non-nil (used by the
	// scaling experiment to keep runtimes proportionate).
	CGrid []float64
	HGrid []int
	// Seed drives the validation split and SMO randomization.
	Seed uint64

	classes  int
	bestC    float64
	bestH    int
	model    *svm.Multiclass
	trainRef []*wl.Refinement
	trainGs  []*graph.Graph
	selfK    []float64
}

// NewKernelSVMClassifier returns an adapter for the given kernel.
func NewKernelSVMClassifier(kind KernelKind, seed uint64) *KernelSVMClassifier {
	return &KernelSVMClassifier{Kind: kind, Seed: seed}
}

func (c *KernelSVMClassifier) grids() ([]float64, []int) {
	cs := c.CGrid
	if cs == nil {
		cs = []float64{1e-3, 1e-2, 1e-1, 1, 1e1, 1e2, 1e3}
	}
	hs := c.HGrid
	if hs == nil {
		hs = []int{0, 1, 2, 3, 4, 5}
	}
	return cs, hs
}

// BestParams returns the hyper-parameters chosen during the last Fit.
func (c *KernelSVMClassifier) BestParams() (C float64, h int) { return c.bestC, c.bestH }

// Fit grid-searches (C, h) on an internal validation split, then retrains
// on the full training fold with the winning configuration.
func (c *KernelSVMClassifier) Fit(graphs []*graph.Graph, labels []int) error {
	classes := 0
	for _, l := range labels {
		if l+1 > classes {
			classes = l + 1
		}
	}
	c.classes = classes
	cs, hs := c.grids()

	// Validation split: ~25% of the training fold, stratified.
	valFolds, err := StratifiedKFold(labels, 4, c.Seed^0x76616c)
	if err != nil {
		// Too few samples to split: fall back to mid-grid parameters.
		c.bestC, c.bestH = 1, 3
		return c.finalFit(graphs, labels)
	}
	val := valFolds[0]
	var sub []int
	for _, f := range valFolds[1:] {
		sub = append(sub, f...)
	}
	subG := make([]*graph.Graph, len(sub))
	subY := make([]int, len(sub))
	for i, j := range sub {
		subG[i], subY[i] = graphs[j], labels[j]
	}
	valG := make([]*graph.Graph, len(val))
	valY := make([]int, len(val))
	for i, j := range val {
		valG[i], valY[i] = graphs[j], labels[j]
	}

	bestAcc := -1.0
	c.bestC, c.bestH = 1, 3
	for _, h := range hs {
		// Refine train+val together once per h (shared label table).
		all := append(append([]*graph.Graph(nil), subG...), valG...)
		refs := wl.Refine(all, wl.Options{Iterations: h})
		trainRefs, valRefs := refs[:len(subG)], refs[len(subG):]
		gram := wl.GramMatrix(trainRefs, c.Kind.fn())
		trainSelf := wl.SelfKernels(trainRefs, c.Kind.fn())
		wl.NormalizeGram(gram)
		cross := wl.CrossGram(valRefs, trainRefs, c.Kind.fn())
		wl.NormalizeCross(cross, wl.SelfKernels(valRefs, c.Kind.fn()), trainSelf)
		for _, cc := range cs {
			mc, err := svm.TrainMulticlass(gram, subY, classes, svm.TrainOptions{C: cc, Seed: c.Seed})
			if err != nil {
				continue
			}
			acc := Accuracy(mc.PredictAll(cross), valY)
			if acc > bestAcc {
				bestAcc, c.bestC, c.bestH = acc, cc, h
			}
		}
	}
	return c.finalFit(graphs, labels)
}

// finalFit trains the final model on the full training fold.
func (c *KernelSVMClassifier) finalFit(graphs []*graph.Graph, labels []int) error {
	c.trainGs = graphs
	refs := wl.Refine(graphs, wl.Options{Iterations: c.bestH})
	c.trainRef = refs
	gram := wl.GramMatrix(refs, c.Kind.fn())
	c.selfK = wl.SelfKernels(refs, c.Kind.fn())
	wl.NormalizeGram(gram)
	mc, err := svm.TrainMulticlass(gram, labels, c.classes, svm.TrainOptions{C: c.bestC, Seed: c.Seed})
	if err != nil {
		return fmt.Errorf("eval: %s final fit: %w", c.Kind, err)
	}
	c.model = mc
	return nil
}

// PredictAll classifies test graphs against the stored training fold.
//
// WL refinement label tables are training-fold specific, so the test
// graphs are refined TOGETHER with the training graphs (the standard
// transductive-feature trick for WL kernels; labels of test graphs are
// never used).
func (c *KernelSVMClassifier) PredictAll(graphs []*graph.Graph) []int {
	all := append(append([]*graph.Graph(nil), c.trainGs...), graphs...)
	refs := wl.Refine(all, wl.Options{Iterations: c.bestH})
	trainRefs, testRefs := refs[:len(c.trainGs)], refs[len(c.trainGs):]
	cross := wl.CrossGram(testRefs, trainRefs, c.Kind.fn())
	wl.NormalizeCross(cross, wl.SelfKernels(testRefs, c.Kind.fn()), wl.SelfKernels(trainRefs, c.Kind.fn()))
	return c.model.PredictAll(cross)
}

// GINClassifier wraps the GIN models.
type GINClassifier struct {
	Config  gingnn.Config
	classes int
	model   *gingnn.Model
}

// NewGINClassifier returns an adapter; jk selects GIN-ε-JK.
func NewGINClassifier(jk bool, seed uint64) *GINClassifier {
	cfg := gingnn.DefaultConfig()
	cfg.JumpingKnowledge = jk
	cfg.Seed = seed
	return &GINClassifier{Config: cfg}
}

// Fit trains a fresh GIN on the fold.
func (c *GINClassifier) Fit(graphs []*graph.Graph, labels []int) error {
	classes := 0
	for _, l := range labels {
		if l+1 > classes {
			classes = l + 1
		}
	}
	if classes < 2 {
		classes = 2
	}
	m, err := gingnn.NewModel(classes, c.Config)
	if err != nil {
		return err
	}
	if _, err := m.Train(graphs, labels); err != nil {
		return err
	}
	c.model = m
	return nil
}

// PredictAll classifies the given graphs.
func (c *GINClassifier) PredictAll(graphs []*graph.Graph) []int {
	return c.model.PredictAll(graphs)
}

// Interface conformance checks.
var (
	_ Classifier = (*GraphHDClassifier)(nil)
	_ Classifier = (*KernelSVMClassifier)(nil)
	_ Classifier = (*GINClassifier)(nil)
)
