// Cascade calibration: choose the escalation margin of a prefix-sliced
// two-stage classifier (core.Cascade, DESIGN.md §2c) from a labeled
// holdout set, matching full-dimension accuracy with the smallest — and
// therefore cheapest — escalation band.
package eval

import (
	"fmt"
	"sort"

	"graphhd/internal/core"
	"graphhd/internal/graph"
)

// CascadeReport summarizes one calibration sweep: what the chosen margin
// costs and buys on the holdout set.
type CascadeReport struct {
	// Holdout is the number of calibration graphs.
	Holdout int
	// FullCorrect is the number the full-dimension predictor got right.
	FullCorrect int
	// CascadeCorrect is the number the calibrated cascade gets right.
	CascadeCorrect int
	// Escalations is how many holdout graphs the chosen margin escalates.
	Escalations int
	// Stage1HitRate is the fraction decided at prefix width,
	// 1 - Escalations/Holdout.
	Stage1HitRate float64
}

// CalibrateCascade sweeps escalation margins for a dPrefix-wide stage 1 on
// a labeled holdout set and returns the smallest margin whose cascade
// accuracy is within tol (a fraction, e.g. 0.005 for half a point) of the
// full-dimension predictor's accuracy on the same graphs.
//
// The sweep costs one prefix encode and one full predict per holdout
// graph, total — a graph's stage-1 decision and top-two margin do not
// depend on the threshold, so every candidate margin is scored from the
// same per-graph records. Escalated graphs answer exactly as the
// full-dimension predictor does, hence the maximal margin always matches
// full accuracy and the sweep always terminates. The returned Cascade is
// validated but NOT installed; pass it to Predictor.SetCascade.
func CalibrateCascade(p *core.Predictor, graphs []*graph.Graph, labels []int, dPrefix int, tol float64) (core.Cascade, *CascadeReport, error) {
	if len(graphs) == 0 || len(graphs) != len(labels) {
		return core.Cascade{}, nil, fmt.Errorf("eval: calibration holdout has %d graphs and %d labels", len(graphs), len(labels))
	}
	if tol < 0 {
		return core.Cascade{}, nil, fmt.Errorf("eval: negative calibration tolerance %g", tol)
	}
	probe := core.Cascade{DPrefix: dPrefix}
	if err := probe.Validate(p.Dimension()); err != nil {
		return core.Cascade{}, nil, err
	}
	pm, err := p.PrefixSnapshot(dPrefix)
	if err != nil {
		return core.Cascade{}, nil, err
	}

	// Per-graph record: stage-1 class and margin, full-dimension class.
	// Everything the threshold sweep needs, computed once.
	type rec struct {
		s1, margin, full int
	}
	recs := make([]rec, len(graphs))
	s := p.Encoder().NewScratch()
	for i, g := range graphs {
		hv := s.EncodeGraphPackedPrefix(g, dPrefix)
		best, _, bestH, secondH := pm.ClassifyTop2(hv)
		recs[i] = rec{s1: best, margin: secondH - bestH, full: p.PredictWith(s, g)}
	}
	fullCorrect := 0
	for i, r := range recs {
		if r.full == labels[i] {
			fullCorrect++
		}
	}
	floor := fullCorrect - int(tol*float64(len(graphs)))

	// Candidate margins are the distinct observed per-graph margins (plus
	// 0): raising the threshold between two observed values changes
	// nothing, so the sweep is exact. Ascending order finds the smallest
	// band that clears the floor.
	cands := []int{0}
	seen := map[int]bool{0: true}
	for _, r := range recs {
		if !seen[r.margin] {
			seen[r.margin] = true
			cands = append(cands, r.margin)
		}
	}
	sort.Ints(cands)
	for _, m := range cands {
		correct, esc := 0, 0
		for i, r := range recs {
			cls := r.s1
			if r.margin <= m {
				cls = r.full
				esc++
			}
			if cls == labels[i] {
				correct++
			}
		}
		if correct >= floor {
			c := core.Cascade{DPrefix: dPrefix, Margin: m}
			rep := &CascadeReport{
				Holdout:        len(graphs),
				FullCorrect:    fullCorrect,
				CascadeCorrect: correct,
				Escalations:    esc,
				Stage1HitRate:  1 - float64(esc)/float64(len(graphs)),
			}
			return c, rep, nil
		}
	}
	// Unreachable: the maximal observed margin escalates every graph whose
	// stage-1 answer could differ, matching full accuracy exactly.
	panic("eval: cascade margin sweep failed to converge")
}
