// Package svm implements the kernel machine that drives the paper's graph
// kernel baselines: a C-SVC solved with a simplified SMO algorithm on
// precomputed Gram matrices, one-vs-one multiclass voting, and the C /
// WL-iteration grid search used in the paper's experimental protocol.
package svm

import (
	"fmt"
	"math"

	"graphhd/internal/hdc"
)

// BinarySVM is a two-class C-SVC trained on a precomputed kernel matrix.
// Labels are +1 / -1.
type BinarySVM struct {
	alpha []float64 // Lagrange multipliers, one per training sample
	y     []float64 // training labels in {-1, +1}
	b     float64   // bias
	// support holds indices with alpha > 0; kept for DecisionValue.
	support []int
}

// TrainOptions configures SMO training.
type TrainOptions struct {
	// C is the soft-margin penalty (required, > 0).
	C float64
	// Tol is the KKT violation tolerance (default 1e-3, libsvm's default).
	Tol float64
	// MaxPasses is the number of consecutive alpha-sweep passes without
	// any update before declaring convergence (default 5).
	MaxPasses int
	// MaxIter caps total passes as a safety net (default 1000).
	MaxIter int
	// Seed drives the random second-choice heuristic.
	Seed uint64
}

func (o TrainOptions) withDefaults() TrainOptions {
	if o.Tol == 0 {
		o.Tol = 1e-3
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 5
	}
	if o.MaxIter == 0 {
		o.MaxIter = 1000
	}
	return o
}

// TrainBinary solves the C-SVC dual on the n×n kernel matrix k with labels
// y in {-1, +1}, using the simplified SMO algorithm (Platt 1998; the
// randomized working-pair variant of the Stanford CS229 notes). The kernel
// matrix is the full training Gram matrix.
func TrainBinary(k [][]float64, y []float64, opts TrainOptions) (*BinarySVM, error) {
	n := len(y)
	if n == 0 {
		return nil, fmt.Errorf("svm: empty training set")
	}
	if len(k) != n {
		return nil, fmt.Errorf("svm: kernel matrix has %d rows for %d labels", len(k), n)
	}
	for i, row := range k {
		if len(row) != n {
			return nil, fmt.Errorf("svm: kernel row %d has %d entries, want %d", i, len(row), n)
		}
	}
	pos, neg := 0, 0
	for _, v := range y {
		switch v {
		case 1:
			pos++
		case -1:
			neg++
		default:
			return nil, fmt.Errorf("svm: label %v not in {-1,+1}", v)
		}
	}
	if pos == 0 || neg == 0 {
		return nil, fmt.Errorf("svm: training set has a single class")
	}
	if opts.C <= 0 {
		return nil, fmt.Errorf("svm: non-positive C %v", opts.C)
	}
	opts = opts.withDefaults()

	m := &BinarySVM{alpha: make([]float64, n), y: append([]float64(nil), y...)}
	rng := hdc.NewRNG(opts.Seed ^ 0x53564d)

	f := func(i int) float64 {
		s := 0.0
		for j, a := range m.alpha {
			if a != 0 {
				s += a * m.y[j] * k[i][j]
			}
		}
		return s + m.b
	}

	passes, iter := 0, 0
	for passes < opts.MaxPasses && iter < opts.MaxIter {
		changed := 0
		for i := 0; i < n; i++ {
			ei := f(i) - m.y[i]
			if !((m.y[i]*ei < -opts.Tol && m.alpha[i] < opts.C) ||
				(m.y[i]*ei > opts.Tol && m.alpha[i] > 0)) {
				continue
			}
			j := rng.Intn(n - 1)
			if j >= i {
				j++
			}
			ej := f(j) - m.y[j]

			ai, aj := m.alpha[i], m.alpha[j]
			var lo, hi float64
			if m.y[i] != m.y[j] {
				lo = math.Max(0, aj-ai)
				hi = math.Min(opts.C, opts.C+aj-ai)
			} else {
				lo = math.Max(0, ai+aj-opts.C)
				hi = math.Min(opts.C, ai+aj)
			}
			if lo == hi {
				continue
			}
			eta := 2*k[i][j] - k[i][i] - k[j][j]
			if eta >= 0 {
				continue
			}
			ajNew := aj - m.y[j]*(ei-ej)/eta
			if ajNew > hi {
				ajNew = hi
			} else if ajNew < lo {
				ajNew = lo
			}
			if math.Abs(ajNew-aj) < 1e-7 {
				continue
			}
			aiNew := ai + m.y[i]*m.y[j]*(aj-ajNew)

			b1 := m.b - ei - m.y[i]*(aiNew-ai)*k[i][i] - m.y[j]*(ajNew-aj)*k[i][j]
			b2 := m.b - ej - m.y[i]*(aiNew-ai)*k[i][j] - m.y[j]*(ajNew-aj)*k[j][j]
			switch {
			case aiNew > 0 && aiNew < opts.C:
				m.b = b1
			case ajNew > 0 && ajNew < opts.C:
				m.b = b2
			default:
				m.b = (b1 + b2) / 2
			}
			m.alpha[i], m.alpha[j] = aiNew, ajNew
			changed++
		}
		if changed == 0 {
			passes++
		} else {
			passes = 0
		}
		iter++
	}

	for i, a := range m.alpha {
		if a > 0 {
			m.support = append(m.support, i)
		}
	}
	return m, nil
}

// NumSupport returns the number of support vectors.
func (m *BinarySVM) NumSupport() int { return len(m.support) }

// DecisionValue evaluates the decision function for a test sample given
// its kernel row against the training set: krow[j] = k(x, x_j).
func (m *BinarySVM) DecisionValue(krow []float64) float64 {
	s := m.b
	for _, j := range m.support {
		s += m.alpha[j] * m.y[j] * krow[j]
	}
	return s
}

// Predict returns +1 or -1 for a test sample's kernel row. Zero decision
// values resolve to +1 for determinism.
func (m *BinarySVM) Predict(krow []float64) float64 {
	if m.DecisionValue(krow) >= 0 {
		return 1
	}
	return -1
}
