package svm

import (
	"fmt"
)

// Multiclass is a one-vs-one ensemble of binary SVMs over k classes,
// trained on a precomputed kernel matrix. Prediction is majority voting
// over the k(k-1)/2 pairwise classifiers, with ties broken by summed
// decision values and then by smaller class index (all deterministic).
type Multiclass struct {
	k        int
	pairs    []pairModel
	trainIdx [][]int // trainIdx[p] holds training-set indices used by pair p
}

type pairModel struct {
	a, b int // class pair, a < b; +1 ⇒ class a, -1 ⇒ class b
	m    *BinarySVM
}

// TrainMulticlass trains the one-vs-one ensemble. k is the kernel matrix
// over the full training set, labels are dense class ids in [0, classes).
func TrainMulticlass(k [][]float64, labels []int, classes int, opts TrainOptions) (*Multiclass, error) {
	if classes < 2 {
		return nil, fmt.Errorf("svm: need at least 2 classes, got %d", classes)
	}
	if len(k) != len(labels) {
		return nil, fmt.Errorf("svm: %d kernel rows for %d labels", len(k), len(labels))
	}
	byClass := make([][]int, classes)
	for i, l := range labels {
		if l < 0 || l >= classes {
			return nil, fmt.Errorf("svm: label %d out of range [0,%d)", l, classes)
		}
		byClass[l] = append(byClass[l], i)
	}
	mc := &Multiclass{k: classes}
	for a := 0; a < classes; a++ {
		for b := a + 1; b < classes; b++ {
			idx := append(append([]int(nil), byClass[a]...), byClass[b]...)
			if len(byClass[a]) == 0 || len(byClass[b]) == 0 {
				// A fold may lack a class entirely; skip the pair. Votes
				// for it simply never occur.
				continue
			}
			sub := make([][]float64, len(idx))
			y := make([]float64, len(idx))
			for i, gi := range idx {
				sub[i] = make([]float64, len(idx))
				for j, gj := range idx {
					sub[i][j] = k[gi][gj]
				}
				if labels[gi] == a {
					y[i] = 1
				} else {
					y[i] = -1
				}
			}
			m, err := TrainBinary(sub, y, opts)
			if err != nil {
				return nil, fmt.Errorf("svm: pair (%d,%d): %w", a, b, err)
			}
			mc.pairs = append(mc.pairs, pairModel{a: a, b: b, m: m})
			mc.trainIdx = append(mc.trainIdx, idx)
		}
	}
	if len(mc.pairs) == 0 {
		return nil, fmt.Errorf("svm: no trainable class pair")
	}
	return mc, nil
}

// NumClasses returns the number of classes.
func (mc *Multiclass) NumClasses() int { return mc.k }

// NumPairs returns the number of trained pairwise classifiers.
func (mc *Multiclass) NumPairs() int { return len(mc.pairs) }

// Predict classifies a test sample given its kernel row against the FULL
// training set (same indexing as the labels passed to TrainMulticlass).
func (mc *Multiclass) Predict(krow []float64) int {
	votes := make([]int, mc.k)
	scores := make([]float64, mc.k)
	sub := make([]float64, 0, len(krow))
	for p, pm := range mc.pairs {
		idx := mc.trainIdx[p]
		sub = sub[:0]
		for _, gi := range idx {
			sub = append(sub, krow[gi])
		}
		d := pm.m.DecisionValue(sub)
		if d >= 0 {
			votes[pm.a]++
		} else {
			votes[pm.b]++
		}
		scores[pm.a] += d
		scores[pm.b] -= d
	}
	best := 0
	for c := 1; c < mc.k; c++ {
		if votes[c] > votes[best] ||
			(votes[c] == votes[best] && scores[c] > scores[best]) {
			best = c
		}
	}
	return best
}

// PredictAll classifies a batch of kernel rows.
func (mc *Multiclass) PredictAll(krows [][]float64) []int {
	out := make([]int, len(krows))
	for i, row := range krows {
		out[i] = mc.Predict(row)
	}
	return out
}
