package svm

import (
	"math"
	"testing"

	"graphhd/internal/hdc"
)

// linearKernel builds the Gram matrix of explicit points under the dot
// product, the simplest valid kernel for testing the solver.
func linearKernel(xs [][]float64) [][]float64 {
	n := len(xs)
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
		for j := range k[i] {
			k[i][j] = dot(xs[i], xs[j])
		}
	}
	return k
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func krow(x []float64, xs [][]float64) []float64 {
	row := make([]float64, len(xs))
	for j := range xs {
		row[j] = dot(x, xs[j])
	}
	return row
}

// separable2D builds two Gaussian-ish blobs around (±2, 0).
func separable2D(n int, seed uint64) ([][]float64, []float64) {
	rng := hdc.NewRNG(seed)
	var xs [][]float64
	var ys []float64
	for i := 0; i < n; i++ {
		xs = append(xs, []float64{2 + rng.Float64() - 0.5, rng.Float64() - 0.5})
		ys = append(ys, 1)
		xs = append(xs, []float64{-2 + rng.Float64() - 0.5, rng.Float64() - 0.5})
		ys = append(ys, -1)
	}
	return xs, ys
}

func TestTrainBinarySeparable(t *testing.T) {
	xs, ys := separable2D(20, 1)
	m, err := TrainBinary(linearKernel(xs), ys, TrainOptions{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range xs {
		if m.Predict(krow(x, xs)) == ys[i] {
			correct++
		}
	}
	if correct != len(xs) {
		t.Fatalf("training accuracy %d/%d on separable data", correct, len(xs))
	}
	if m.NumSupport() == 0 || m.NumSupport() == len(xs) {
		t.Fatalf("suspicious support count %d", m.NumSupport())
	}
}

func TestTrainBinaryGeneralizes(t *testing.T) {
	xs, ys := separable2D(25, 2)
	m, err := TrainBinary(linearKernel(xs), ys, TrainOptions{C: 10})
	if err != nil {
		t.Fatal(err)
	}
	testX, testY := separable2D(10, 99)
	correct := 0
	for i, x := range testX {
		if m.Predict(krow(x, xs)) == testY[i] {
			correct++
		}
	}
	if correct < len(testX)-1 {
		t.Fatalf("test accuracy %d/%d", correct, len(testX))
	}
}

func TestTrainBinaryMarginMaximization(t *testing.T) {
	// Three collinear points: the separator must fall between the closest
	// opposite pair, so the decision value at the midpoint of the margin
	// has the right sign structure.
	xs := [][]float64{{0}, {1}, {4}}
	ys := []float64{-1, -1, 1}
	m, err := TrainBinary(linearKernel(xs), ys, TrainOptions{C: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if m.Predict(krow([]float64{0.5}, xs)) != -1 {
		t.Fatal("x=0.5 should be class -1")
	}
	if m.Predict(krow([]float64{3.5}, xs)) != 1 {
		t.Fatal("x=3.5 should be class +1")
	}
	// The max-margin boundary for points 1 and 4 is 2.5.
	if m.Predict(krow([]float64{2.0}, xs)) != -1 {
		t.Fatal("x=2.0 should fall on the -1 side of the max-margin boundary")
	}
	if m.Predict(krow([]float64{3.0}, xs)) != 1 {
		t.Fatal("x=3.0 should fall on the +1 side")
	}
}

func TestTrainBinaryValidation(t *testing.T) {
	k := [][]float64{{1, 0}, {0, 1}}
	if _, err := TrainBinary(k, []float64{1, -1}, TrainOptions{C: 0}); err == nil {
		t.Fatal("expected error for C=0")
	}
	if _, err := TrainBinary(k, []float64{1, 2}, TrainOptions{C: 1}); err == nil {
		t.Fatal("expected error for bad label")
	}
	if _, err := TrainBinary(k, []float64{1, 1}, TrainOptions{C: 1}); err == nil {
		t.Fatal("expected error for single-class data")
	}
	if _, err := TrainBinary(nil, nil, TrainOptions{C: 1}); err == nil {
		t.Fatal("expected error for empty set")
	}
	if _, err := TrainBinary(k[:1], []float64{1, -1}, TrainOptions{C: 1}); err == nil {
		t.Fatal("expected error for row count mismatch")
	}
	if _, err := TrainBinary([][]float64{{1}, {0}}, []float64{1, -1}, TrainOptions{C: 1}); err == nil {
		t.Fatal("expected error for ragged matrix")
	}
}

func TestTrainBinaryDeterministic(t *testing.T) {
	xs, ys := separable2D(15, 3)
	k := linearKernel(xs)
	m1, err := TrainBinary(k, ys, TrainOptions{C: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainBinary(k, ys, TrainOptions{C: 1, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if m1.b != m2.b || m1.NumSupport() != m2.NumSupport() {
		t.Fatal("same seed produced different models")
	}
	for i := range m1.alpha {
		if m1.alpha[i] != m2.alpha[i] {
			t.Fatal("alphas differ")
		}
	}
}

func TestSoftMarginHandlesNoise(t *testing.T) {
	xs, ys := separable2D(20, 4)
	// Flip one label; a soft-margin SVM with moderate C should still fit
	// the rest.
	ys[0] = -ys[0]
	m, err := TrainBinary(linearKernel(xs), ys, TrainOptions{C: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for i, x := range xs {
		if m.Predict(krow(x, xs)) == ys[i] {
			correct++
		}
	}
	if correct < len(xs)-2 {
		t.Fatalf("soft margin accuracy %d/%d", correct, len(xs))
	}
}

// threeBlobs builds three separable 2-D clusters for multiclass tests.
func threeBlobs(n int, seed uint64) ([][]float64, []int) {
	rng := hdc.NewRNG(seed)
	centers := [][2]float64{{3, 0}, {-3, 0}, {0, 3}}
	var xs [][]float64
	var ys []int
	for c, ctr := range centers {
		for i := 0; i < n; i++ {
			xs = append(xs, []float64{ctr[0] + rng.Float64() - 0.5, ctr[1] + rng.Float64() - 0.5})
			ys = append(ys, c)
		}
	}
	return xs, ys
}

func TestMulticlassThreeBlobs(t *testing.T) {
	xs, ys := threeBlobs(10, 5)
	mc, err := TrainMulticlass(linearKernel(xs), ys, 3, TrainOptions{C: 10})
	if err != nil {
		t.Fatal(err)
	}
	if mc.NumPairs() != 3 || mc.NumClasses() != 3 {
		t.Fatalf("pairs = %d classes = %d", mc.NumPairs(), mc.NumClasses())
	}
	testX, testY := threeBlobs(5, 55)
	rows := make([][]float64, len(testX))
	for i, x := range testX {
		rows[i] = krow(x, xs)
	}
	preds := mc.PredictAll(rows)
	correct := 0
	for i := range preds {
		if preds[i] == testY[i] {
			correct++
		}
	}
	if correct < len(testY)-1 {
		t.Fatalf("multiclass accuracy %d/%d", correct, len(testY))
	}
}

func TestMulticlassBinaryCase(t *testing.T) {
	xs, ysf := separable2D(10, 6)
	ys := make([]int, len(ysf))
	for i, v := range ysf {
		if v == 1 {
			ys[i] = 1
		}
	}
	mc, err := TrainMulticlass(linearKernel(xs), ys, 2, TrainOptions{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range xs {
		if got := mc.Predict(krow(x, xs)); got != ys[i] {
			t.Fatalf("sample %d predicted %d, want %d", i, got, ys[i])
		}
	}
}

func TestMulticlassValidation(t *testing.T) {
	k := [][]float64{{1, 0}, {0, 1}}
	if _, err := TrainMulticlass(k, []int{0, 1}, 1, TrainOptions{C: 1}); err == nil {
		t.Fatal("expected error for 1 class")
	}
	if _, err := TrainMulticlass(k, []int{0}, 2, TrainOptions{C: 1}); err == nil {
		t.Fatal("expected error for mismatched labels")
	}
	if _, err := TrainMulticlass(k, []int{0, 5}, 2, TrainOptions{C: 1}); err == nil {
		t.Fatal("expected error for out-of-range label")
	}
	// Missing class: pair is skipped; with only one class present the
	// training must fail because no pair is trainable.
	if _, err := TrainMulticlass(k, []int{0, 0}, 3, TrainOptions{C: 1}); err == nil {
		t.Fatal("expected error when no pair is trainable")
	}
}

func TestMulticlassMissingClassTolerated(t *testing.T) {
	// Three declared classes, only two present: the (0,1) pair trains and
	// predictions still work.
	xs, ysf := separable2D(10, 7)
	ys := make([]int, len(ysf))
	for i, v := range ysf {
		if v == 1 {
			ys[i] = 1
		}
	}
	mc, err := TrainMulticlass(linearKernel(xs), ys, 3, TrainOptions{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mc.NumPairs() != 1 {
		t.Fatalf("pairs = %d, want 1", mc.NumPairs())
	}
	if got := mc.Predict(krow(xs[0], xs)); got != ys[0] {
		t.Fatalf("predicted %d, want %d", got, ys[0])
	}
}

func TestDecisionValueFiniteness(t *testing.T) {
	xs, ys := separable2D(10, 8)
	m, err := TrainBinary(linearKernel(xs), ys, TrainOptions{C: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs {
		if d := m.DecisionValue(krow(x, xs)); math.IsNaN(d) || math.IsInf(d, 0) {
			t.Fatalf("decision value %v", d)
		}
	}
}
