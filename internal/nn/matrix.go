// Package nn is the minimal neural-network substrate backing the paper's
// GNN baselines: dense row-major matrices, linear layers with explicit
// backward passes, ReLU, softmax cross-entropy, the Adam optimizer and the
// reduce-on-plateau learning-rate scheduler the paper's GIN training uses.
package nn

import (
	"fmt"
	"math"

	"graphhd/internal/hdc"
)

// Matrix is a dense row-major float64 matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("nn: negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view of row i (shared storage).
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Zero resets all elements to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// AddInPlace adds o element-wise into m.
func (m *Matrix) AddInPlace(o *Matrix) {
	mustSameShape(m, o)
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Scale multiplies every element by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// MaxAbs returns the largest absolute element value (0 for empty).
func (m *Matrix) MaxAbs() float64 {
	mx := 0.0
	for _, v := range m.Data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

func mustSameShape(a, b *Matrix) {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: shape mismatch %dx%d vs %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
}

// MatMul returns a @ b.
func MatMul(a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("nn: matmul %dx%d @ %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTA returns aᵀ @ b (a is in×r, b is in×c, result r×c); the shape
// needed for weight gradients dW = Xᵀ dY.
func MatMulTA(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("nn: matmulTA %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Cols, b.Cols)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		brow := b.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.Row(k)
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MatMulTB returns a @ bᵀ (a is r×in, b is c×in, result r×c); the shape
// needed for input gradients dX = dY Wᵀ.
func MatMulTB(a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("nn: matmulTB %dx%d, %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			s := 0.0
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// Param is a trainable tensor: a value matrix and its gradient.
type Param struct {
	W *Matrix
	G *Matrix
}

// NewParam returns a zero-initialized parameter of the given shape.
func NewParam(rows, cols int) *Param {
	return &Param{W: NewMatrix(rows, cols), G: NewMatrix(rows, cols)}
}

// GlorotInit fills the parameter with Glorot/Xavier-uniform values,
// the standard initialization for the GIN MLPs.
func (p *Param) GlorotInit(rng *hdc.RNG) {
	limit := math.Sqrt(6 / float64(p.W.Rows+p.W.Cols))
	for i := range p.W.Data {
		p.W.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// ZeroGrad clears the gradient.
func (p *Param) ZeroGrad() { p.G.Zero() }
