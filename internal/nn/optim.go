package nn

import (
	"math"
)

// Adam implements the Adam optimizer (Kingma & Ba 2015) over a fixed
// parameter list. The paper's GIN baselines train with Adam at an initial
// learning rate of 0.01.
type Adam struct {
	LR           float64
	Beta1, Beta2 float64
	Eps          float64

	params []*Param
	m, v   []*Matrix
	step   int
}

// NewAdam returns an Adam optimizer over params with learning rate lr and
// standard moment coefficients (0.9, 0.999, 1e-8).
func NewAdam(params []*Param, lr float64) *Adam {
	a := &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, params: params}
	for _, p := range params {
		a.m = append(a.m, NewMatrix(p.W.Rows, p.W.Cols))
		a.v = append(a.v, NewMatrix(p.W.Rows, p.W.Cols))
	}
	return a
}

// Step applies one Adam update from the accumulated gradients and clears
// them.
func (a *Adam) Step() {
	a.step++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.step))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.step))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i, g := range p.G.Data {
			m.Data[i] = a.Beta1*m.Data[i] + (1-a.Beta1)*g
			v.Data[i] = a.Beta2*v.Data[i] + (1-a.Beta2)*g*g
			mh := m.Data[i] / bc1
			vh := v.Data[i] / bc2
			p.W.Data[i] -= a.LR * mh / (math.Sqrt(vh) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// ZeroGrad clears all parameter gradients without updating.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		p.ZeroGrad()
	}
}

// PlateauScheduler reduces the learning rate when a monitored quantity
// stops improving, mirroring the paper's setup: "a learning rate scheduler
// starting at 0.01 with a patience parameter of 5 which decays with 0.5
// till a minimum of 1e-6".
type PlateauScheduler struct {
	Opt      *Adam
	Factor   float64 // decay multiplier (paper: 0.5)
	Patience int     // epochs without improvement before decaying (paper: 5)
	MinLR    float64 // lower bound (paper: 1e-6)

	best float64
	wait int
	init bool
}

// NewPlateauScheduler returns a scheduler with the paper's settings
// attached to opt.
func NewPlateauScheduler(opt *Adam) *PlateauScheduler {
	return &PlateauScheduler{Opt: opt, Factor: 0.5, Patience: 5, MinLR: 1e-6}
}

// Step records one epoch's monitored loss; when the loss has not improved
// for Patience consecutive epochs the learning rate decays by Factor, not
// going below MinLR. It reports whether a decay happened.
func (s *PlateauScheduler) Step(loss float64) bool {
	if !s.init || loss < s.best-1e-12 {
		s.best = loss
		s.wait = 0
		s.init = true
		return false
	}
	s.wait++
	if s.wait <= s.Patience {
		return false
	}
	s.wait = 0
	lr := s.Opt.LR * s.Factor
	if lr < s.MinLR {
		lr = s.MinLR
	}
	decayed := lr < s.Opt.LR
	s.Opt.LR = lr
	return decayed
}

// AtMinimum reports whether the learning rate has reached its floor.
func (s *PlateauScheduler) AtMinimum() bool { return s.Opt.LR <= s.MinLR }

// SoftmaxCrossEntropy computes the mean cross-entropy loss of logits
// (n×classes) against integer labels, and the gradient dL/dlogits. Uses
// the max-shift trick for numerical stability.
func SoftmaxCrossEntropy(logits *Matrix, labels []int) (float64, *Matrix) {
	if len(labels) != logits.Rows {
		panic("nn: label count mismatch")
	}
	n := logits.Rows
	grad := NewMatrix(logits.Rows, logits.Cols)
	loss := 0.0
	for i := 0; i < n; i++ {
		row := logits.Row(i)
		maxv := row[0]
		for _, v := range row[1:] {
			if v > maxv {
				maxv = v
			}
		}
		sum := 0.0
		grow := grad.Row(i)
		for j, v := range row {
			e := math.Exp(v - maxv)
			grow[j] = e
			sum += e
		}
		p := grow[labels[i]] / sum
		loss += -math.Log(math.Max(p, 1e-300))
		inv := 1 / (sum * float64(n))
		for j := range grow {
			grow[j] *= inv
		}
		grow[labels[i]] -= 1 / float64(n)
	}
	return loss / float64(n), grad
}

// Argmax returns the index of the largest value in each row of logits,
// breaking ties toward the smaller index.
func Argmax(logits *Matrix) []int {
	out := make([]int, logits.Rows)
	for i := 0; i < logits.Rows; i++ {
		row := logits.Row(i)
		best := 0
		for j := 1; j < len(row); j++ {
			if row[j] > row[best] {
				best = j
			}
		}
		out[i] = best
	}
	return out
}
