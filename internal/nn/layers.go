package nn

import (
	"graphhd/internal/hdc"
)

// Linear is a fully connected layer Y = X W + b with explicit forward and
// backward passes. W has shape in×out, b is 1×out.
type Linear struct {
	In, Out int
	W, B    *Param
}

// NewLinear returns a Glorot-initialized linear layer.
func NewLinear(in, out int, rng *hdc.RNG) *Linear {
	l := &Linear{In: in, Out: out, W: NewParam(in, out), B: NewParam(1, out)}
	l.W.GlorotInit(rng)
	return l
}

// Forward computes Y = X W + b. X has shape n×in.
func (l *Linear) Forward(x *Matrix) *Matrix {
	y := MatMul(x, l.W.W)
	for i := 0; i < y.Rows; i++ {
		row := y.Row(i)
		for j := range row {
			row[j] += l.B.W.Data[j]
		}
	}
	return y
}

// Backward accumulates parameter gradients given the layer input x and the
// upstream gradient dy, and returns the gradient with respect to x.
func (l *Linear) Backward(x, dy *Matrix) *Matrix {
	l.W.G.AddInPlace(MatMulTA(x, dy))
	for i := 0; i < dy.Rows; i++ {
		row := dy.Row(i)
		for j := range row {
			l.B.G.Data[j] += row[j]
		}
	}
	return MatMulTB(dy, l.W.W)
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// ReLUForward returns max(x, 0) element-wise, plus the mask needed by the
// backward pass.
func ReLUForward(x *Matrix) (*Matrix, []bool) {
	y := x.Clone()
	mask := make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			mask[i] = true
		} else {
			y.Data[i] = 0
		}
	}
	return y, mask
}

// ReLUBackward masks the upstream gradient: dX = dY ⊙ (x > 0).
func ReLUBackward(dy *Matrix, mask []bool) *Matrix {
	dx := dy.Clone()
	for i := range dx.Data {
		if !mask[i] {
			dx.Data[i] = 0
		}
	}
	return dx
}

// MLP is the two-layer perceptron used inside each GIN layer:
// Linear → BatchNorm → ReLU → Linear, the architecture of Xu et al. 2019.
// Batch normalization is essential with sum aggregation/pooling: on large
// graphs the summed activations otherwise grow with the vertex count and
// saturate the loss.
type MLP struct {
	L1 *Linear
	BN *BatchNorm
	L2 *Linear
}

// NewMLP returns an in→hidden→out two-layer MLP.
func NewMLP(in, hidden, out int, rng *hdc.RNG) *MLP {
	return &MLP{L1: NewLinear(in, hidden, rng), BN: NewBatchNorm(hidden), L2: NewLinear(hidden, out, rng)}
}

// MLPCache stores forward intermediates for the backward pass.
type MLPCache struct {
	x     *Matrix
	z1    *Matrix
	bn    *BNCache
	zbn   *Matrix
	mask1 []bool
	h1    *Matrix
}

// Forward runs the MLP and returns the output plus a cache for Backward.
// training selects batch-statistics normalization; Backward requires a
// training-mode cache.
func (m *MLP) Forward(x *Matrix, training bool) (*Matrix, *MLPCache) {
	c := &MLPCache{x: x}
	c.z1 = m.L1.Forward(x)
	c.zbn, c.bn = m.BN.Forward(c.z1, training)
	c.h1, c.mask1 = ReLUForward(c.zbn)
	return m.L2.Forward(c.h1), c
}

// Backward accumulates parameter gradients and returns dL/dx.
func (m *MLP) Backward(c *MLPCache, dy *Matrix) *Matrix {
	dh1 := m.L2.Backward(c.h1, dy)
	dzbn := ReLUBackward(dh1, c.mask1)
	dz1 := m.BN.Backward(c.bn, dzbn)
	return m.L1.Backward(c.x, dz1)
}

// Params returns all trainable parameters.
func (m *MLP) Params() []*Param {
	ps := m.L1.Params()
	ps = append(ps, m.BN.Params()...)
	return append(ps, m.L2.Params()...)
}
