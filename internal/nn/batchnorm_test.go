package nn

import (
	"math"
	"testing"

	"graphhd/internal/hdc"
)

func randMatrix(rows, cols int, scale float64, rng *hdc.RNG) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}

func TestBatchNormNormalizesTrainingBatch(t *testing.T) {
	bn := NewBatchNorm(3)
	x := randMatrix(64, 3, 50, hdc.NewRNG(1)) // large-scale inputs
	y, cache := bn.Forward(x, true)
	if cache == nil || cache.frozen {
		t.Fatal("training pass should produce a live cache")
	}
	// Per-feature mean ≈ 0, variance ≈ 1 (gamma=1, beta=0 initially).
	for j := 0; j < 3; j++ {
		mean, va := 0.0, 0.0
		for i := 0; i < y.Rows; i++ {
			mean += y.At(i, j)
		}
		mean /= float64(y.Rows)
		for i := 0; i < y.Rows; i++ {
			d := y.At(i, j) - mean
			va += d * d
		}
		va /= float64(y.Rows)
		if math.Abs(mean) > 1e-9 || math.Abs(va-1) > 1e-6 {
			t.Fatalf("feature %d: mean %v var %v", j, mean, va)
		}
	}
}

func TestBatchNormEvalUsesRunningStats(t *testing.T) {
	bn := NewBatchNorm(2)
	rng := hdc.NewRNG(2)
	// Train on shifted data so running stats move away from (0, 1).
	for k := 0; k < 50; k++ {
		x := randMatrix(16, 2, 1, rng)
		for i := range x.Data {
			x.Data[i] += 10
		}
		bn.Forward(x, true)
	}
	// Eval on the same distribution: output should be near standard.
	x := randMatrix(16, 2, 1, rng)
	for i := range x.Data {
		x.Data[i] += 10
	}
	y, cache := bn.Forward(x, false)
	if !cache.frozen {
		t.Fatal("eval pass should freeze statistics")
	}
	for _, v := range y.Data {
		if math.Abs(v) > 5 {
			t.Fatalf("eval output %v far from standardized", v)
		}
	}
}

func TestBatchNormBackwardNumeric(t *testing.T) {
	rng := hdc.NewRNG(3)
	bn := NewBatchNorm(3)
	// Random gamma/beta so gradients are nontrivial.
	for i := range bn.Gamma.W.Data {
		bn.Gamma.W.Data[i] = 0.5 + rng.Float64()
		bn.Beta.W.Data[i] = rng.Float64() - 0.5
	}
	x := randMatrix(6, 3, 2, rng)
	labels := []int{0, 1, 2, 0, 1, 2}
	loss := func() float64 {
		y, _ := bn.Forward(x, true)
		v, _ := SoftmaxCrossEntropy(y, labels)
		return v
	}
	y, cache := bn.Forward(x, true)
	_, dy := SoftmaxCrossEntropy(y, labels)
	bn.Gamma.ZeroGrad()
	bn.Beta.ZeroGrad()
	dx := bn.Backward(cache, dy)
	for i := range bn.Gamma.W.Data {
		want := numericGrad(loss, &bn.Gamma.W.Data[i])
		if math.Abs(want-bn.Gamma.G.Data[i]) > 1e-4 {
			t.Fatalf("dGamma[%d] = %v, numeric %v", i, bn.Gamma.G.Data[i], want)
		}
		want = numericGrad(loss, &bn.Beta.W.Data[i])
		if math.Abs(want-bn.Beta.G.Data[i]) > 1e-4 {
			t.Fatalf("dBeta[%d] = %v, numeric %v", i, bn.Beta.G.Data[i], want)
		}
	}
	for i := range x.Data {
		want := numericGrad(loss, &x.Data[i])
		if math.Abs(want-dx.Data[i]) > 1e-4 {
			t.Fatalf("dX[%d] = %v, numeric %v", i, dx.Data[i], want)
		}
	}
}

func TestBatchNormFrozenBackward(t *testing.T) {
	bn := NewBatchNorm(2)
	x := randMatrix(1, 2, 1, hdc.NewRNG(4)) // single row → frozen path
	y, cache := bn.Forward(x, true)
	if !cache.frozen {
		t.Fatal("single-row training batch should freeze")
	}
	dy := NewMatrix(1, 2)
	dy.Data[0], dy.Data[1] = 1, -2
	dx := bn.Backward(cache, dy)
	// With gamma=1 and runVar=1: dx = dy / sqrt(1+eps).
	inv := 1 / math.Sqrt(1+bn.Eps)
	if math.Abs(dx.Data[0]-inv) > 1e-12 || math.Abs(dx.Data[1]+2*inv) > 1e-12 {
		t.Fatalf("frozen dx = %v", dx.Data)
	}
	if bn.Beta.G.Data[0] != 1 || bn.Beta.G.Data[1] != -2 {
		t.Fatalf("frozen dBeta = %v", bn.Beta.G.Data)
	}
	_ = y
}

func TestBatchNormBackwardNilPanics(t *testing.T) {
	bn := NewBatchNorm(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bn.Backward(nil, NewMatrix(1, 2))
}

func TestBatchNormFeatureMismatchPanics(t *testing.T) {
	bn := NewBatchNorm(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	bn.Forward(NewMatrix(4, 3), true)
}

func TestBatchNormTamesLargeScaleInputs(t *testing.T) {
	// The motivating property: a linear layer fed sum-pooled activations
	// of wildly different scales trains stably only with BN in the chain.
	rng := hdc.NewRNG(5)
	mlp := NewMLP(1, 8, 2, rng)
	opt := NewAdam(mlp.Params(), 0.01)
	// Inputs scaled like sum aggregation over graphs of 10..500 vertices.
	x := NewMatrix(32, 1)
	labels := make([]int, 32)
	for i := 0; i < 32; i++ {
		n := 10 + rng.Intn(490)
		x.Data[i] = float64(n)
		if n > 250 {
			labels[i] = 1
		}
	}
	var last float64
	for epoch := 0; epoch < 200; epoch++ {
		y, cache := mlp.Forward(x, true)
		loss, dy := SoftmaxCrossEntropy(y, labels)
		mlp.Backward(cache, dy)
		opt.Step()
		last = loss
		if math.IsNaN(loss) {
			t.Fatal("loss diverged to NaN")
		}
	}
	if last > 0.3 {
		t.Fatalf("failed to fit scale-separable data: loss %v", last)
	}
}
