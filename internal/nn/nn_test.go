package nn

import (
	"math"
	"testing"
	"testing/quick"

	"graphhd/internal/hdc"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 || m.At(0, 0) != 0 {
		t.Fatal("set/at broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 0 {
		t.Fatal("clone shares storage")
	}
	m.Zero()
	if m.At(1, 2) != 0 {
		t.Fatal("zero failed")
	}
}

func TestMatMulKnown(t *testing.T) {
	a := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 2, 3, 4, 5, 6}}
	b := &Matrix{Rows: 3, Cols: 2, Data: []float64{7, 8, 9, 10, 11, 12}}
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("matmul = %v, want %v", c.Data, want)
		}
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected shape panic")
		}
	}()
	MatMul(NewMatrix(2, 3), NewMatrix(2, 3))
}

func TestMatMulTransposesAgree(t *testing.T) {
	// MatMulTA(a, b) must equal MatMul(transpose(a), b), and
	// MatMulTB(a, b) must equal MatMul(a, transpose(b)).
	rng := hdc.NewRNG(1)
	randM := func(r, c int) *Matrix {
		m := NewMatrix(r, c)
		for i := range m.Data {
			m.Data[i] = rng.Float64()*2 - 1
		}
		return m
	}
	transpose := func(m *Matrix) *Matrix {
		out := NewMatrix(m.Cols, m.Rows)
		for i := 0; i < m.Rows; i++ {
			for j := 0; j < m.Cols; j++ {
				out.Set(j, i, m.At(i, j))
			}
		}
		return out
	}
	a := randM(4, 3)
	b := randM(4, 5)
	ta := MatMulTA(a, b)
	ref := MatMul(transpose(a), b)
	for i := range ta.Data {
		if math.Abs(ta.Data[i]-ref.Data[i]) > 1e-12 {
			t.Fatal("MatMulTA mismatch")
		}
	}
	c := randM(4, 3)
	d := randM(5, 3)
	tb := MatMulTB(c, d)
	ref2 := MatMul(c, transpose(d))
	for i := range tb.Data {
		if math.Abs(tb.Data[i]-ref2.Data[i]) > 1e-12 {
			t.Fatal("MatMulTB mismatch")
		}
	}
}

func TestLinearForwardKnown(t *testing.T) {
	l := &Linear{In: 2, Out: 2, W: NewParam(2, 2), B: NewParam(1, 2)}
	l.W.W.Data = []float64{1, 2, 3, 4}
	l.B.W.Data = []float64{10, 20}
	x := &Matrix{Rows: 1, Cols: 2, Data: []float64{1, 1}}
	y := l.Forward(x)
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("forward = %v", y.Data)
	}
}

// numericGrad estimates dLoss/dparam[i] by central differences.
func numericGrad(f func() float64, p *float64) float64 {
	const h = 1e-6
	old := *p
	*p = old + h
	lp := f()
	*p = old - h
	lm := f()
	*p = old
	return (lp - lm) / (2 * h)
}

func TestLinearBackwardNumeric(t *testing.T) {
	rng := hdc.NewRNG(2)
	l := NewLinear(3, 2, rng)
	x := NewMatrix(4, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	labels := []int{0, 1, 1, 0}
	loss := func() float64 {
		y := l.Forward(x)
		v, _ := SoftmaxCrossEntropy(y, labels)
		return v
	}
	// Analytic gradients.
	y := l.Forward(x)
	_, dy := SoftmaxCrossEntropy(y, labels)
	l.W.ZeroGrad()
	l.B.ZeroGrad()
	dx := l.Backward(x, dy)
	// Check W gradient entries.
	for i := 0; i < len(l.W.W.Data); i++ {
		want := numericGrad(loss, &l.W.W.Data[i])
		if math.Abs(want-l.W.G.Data[i]) > 1e-5 {
			t.Fatalf("dW[%d] = %v, numeric %v", i, l.W.G.Data[i], want)
		}
	}
	for i := 0; i < len(l.B.W.Data); i++ {
		want := numericGrad(loss, &l.B.W.Data[i])
		if math.Abs(want-l.B.G.Data[i]) > 1e-5 {
			t.Fatalf("dB[%d] = %v, numeric %v", i, l.B.G.Data[i], want)
		}
	}
	// Check input gradient.
	for i := 0; i < len(x.Data); i++ {
		want := numericGrad(loss, &x.Data[i])
		if math.Abs(want-dx.Data[i]) > 1e-5 {
			t.Fatalf("dX[%d] = %v, numeric %v", i, dx.Data[i], want)
		}
	}
}

func TestMLPBackwardNumeric(t *testing.T) {
	rng := hdc.NewRNG(3)
	m := NewMLP(3, 4, 2, rng)
	x := NewMatrix(5, 3)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	labels := []int{0, 1, 0, 1, 1}
	loss := func() float64 {
		y, _ := m.Forward(x, true)
		v, _ := SoftmaxCrossEntropy(y, labels)
		return v
	}
	y, cache := m.Forward(x, true)
	_, dy := SoftmaxCrossEntropy(y, labels)
	for _, p := range m.Params() {
		p.ZeroGrad()
	}
	dx := m.Backward(cache, dy)
	for _, p := range m.Params() {
		for i := range p.W.Data {
			want := numericGrad(loss, &p.W.Data[i])
			if math.Abs(want-p.G.Data[i]) > 1e-4 {
				t.Fatalf("param grad = %v, numeric %v", p.G.Data[i], want)
			}
		}
	}
	for i := range x.Data {
		want := numericGrad(loss, &x.Data[i])
		if math.Abs(want-dx.Data[i]) > 1e-4 {
			t.Fatalf("dX[%d] = %v, numeric %v", i, dx.Data[i], want)
		}
	}
}

func TestReLU(t *testing.T) {
	x := &Matrix{Rows: 1, Cols: 4, Data: []float64{-1, 0, 2, -3}}
	y, mask := ReLUForward(x)
	want := []float64{0, 0, 2, 0}
	for i, w := range want {
		if y.Data[i] != w {
			t.Fatalf("relu = %v", y.Data)
		}
	}
	dy := &Matrix{Rows: 1, Cols: 4, Data: []float64{1, 1, 1, 1}}
	dx := ReLUBackward(dy, mask)
	wantG := []float64{0, 0, 1, 0}
	for i, w := range wantG {
		if dx.Data[i] != w {
			t.Fatalf("relu grad = %v", dx.Data)
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 2 classes: loss = ln 2.
	logits := &Matrix{Rows: 1, Cols: 2, Data: []float64{0, 0}}
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.Abs(loss-math.Ln2) > 1e-12 {
		t.Fatalf("loss = %v, want ln2", loss)
	}
	if math.Abs(grad.At(0, 0)-(-0.5)) > 1e-12 || math.Abs(grad.At(0, 1)-0.5) > 1e-12 {
		t.Fatalf("grad = %v", grad.Data)
	}
}

func TestSoftmaxCrossEntropyStability(t *testing.T) {
	logits := &Matrix{Rows: 1, Cols: 2, Data: []float64{1000, -1000}}
	loss, grad := SoftmaxCrossEntropy(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("unstable loss %v", loss)
	}
	for _, g := range grad.Data {
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
}

func TestSoftmaxGradSumsToZero(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		logits := NewMatrix(3, 4)
		for i := range logits.Data {
			logits.Data[i] = rng.Float64()*4 - 2
		}
		_, grad := SoftmaxCrossEntropy(logits, []int{0, 3, 2})
		for i := 0; i < 3; i++ {
			s := 0.0
			for _, v := range grad.Row(i) {
				s += v
			}
			if math.Abs(s) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestAdamConvergesOnQuadratic(t *testing.T) {
	// Minimize ||W - target||^2 via Adam; gradients are 2(W - target).
	p := NewParam(2, 2)
	target := []float64{1, -2, 3, 0.5}
	opt := NewAdam([]*Param{p}, 0.05)
	for it := 0; it < 2000; it++ {
		for i := range p.W.Data {
			p.G.Data[i] = 2 * (p.W.Data[i] - target[i])
		}
		opt.Step()
	}
	for i, w := range target {
		if math.Abs(p.W.Data[i]-w) > 1e-3 {
			t.Fatalf("W[%d] = %v, want %v", i, p.W.Data[i], w)
		}
	}
}

func TestAdamClearsGradients(t *testing.T) {
	p := NewParam(1, 1)
	p.G.Data[0] = 5
	opt := NewAdam([]*Param{p}, 0.1)
	opt.Step()
	if p.G.Data[0] != 0 {
		t.Fatal("gradient not cleared after step")
	}
	p.G.Data[0] = 7
	opt.ZeroGrad()
	if p.G.Data[0] != 0 {
		t.Fatal("ZeroGrad failed")
	}
}

func TestPlateauScheduler(t *testing.T) {
	p := NewParam(1, 1)
	opt := NewAdam([]*Param{p}, 0.01)
	s := NewPlateauScheduler(opt)
	// Improving losses: no decay.
	for i := 0; i < 10; i++ {
		if s.Step(1.0 / float64(i+1)) {
			t.Fatal("decayed while improving")
		}
	}
	// Stalled: decay after patience+1 stalls.
	decays := 0
	for i := 0; i < 12; i++ {
		if s.Step(0.5) {
			decays++
		}
	}
	if decays != 2 {
		t.Fatalf("decays = %d, want 2 (every patience+1 epochs)", decays)
	}
	if math.Abs(opt.LR-0.0025) > 1e-12 {
		t.Fatalf("lr = %v, want 0.0025", opt.LR)
	}
}

func TestPlateauSchedulerFloor(t *testing.T) {
	p := NewParam(1, 1)
	opt := NewAdam([]*Param{p}, 1e-6)
	s := NewPlateauScheduler(opt)
	s.Step(1)
	for i := 0; i < 20; i++ {
		s.Step(1)
	}
	if opt.LR < s.MinLR {
		t.Fatalf("lr %v fell below floor", opt.LR)
	}
	if !s.AtMinimum() {
		t.Fatal("AtMinimum should report true")
	}
}

func TestArgmax(t *testing.T) {
	logits := &Matrix{Rows: 2, Cols: 3, Data: []float64{1, 3, 2, 5, 5, 4}}
	got := Argmax(logits)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("argmax = %v", got)
	}
}

func TestGlorotInitBounded(t *testing.T) {
	p := NewParam(10, 20)
	p.GlorotInit(hdc.NewRNG(4))
	limit := math.Sqrt(6.0 / 30.0)
	nonzero := false
	for _, v := range p.W.Data {
		if math.Abs(v) > limit {
			t.Fatalf("weight %v exceeds glorot limit %v", v, limit)
		}
		if v != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("all weights zero")
	}
}

func TestMaxAbs(t *testing.T) {
	m := &Matrix{Rows: 1, Cols: 3, Data: []float64{-5, 2, 3}}
	if m.MaxAbs() != 5 {
		t.Fatalf("maxabs = %v", m.MaxAbs())
	}
}

func TestScaleAndAddInPlace(t *testing.T) {
	a := &Matrix{Rows: 1, Cols: 2, Data: []float64{1, 2}}
	b := &Matrix{Rows: 1, Cols: 2, Data: []float64{10, 20}}
	a.AddInPlace(b)
	a.Scale(2)
	if a.Data[0] != 22 || a.Data[1] != 44 {
		t.Fatalf("got %v", a.Data)
	}
}
