package nn

import (
	"math"
)

// BatchNorm is 1-D batch normalization over the feature (column) axis,
// the component of the original GIN architecture (Xu et al. 2019) that
// keeps sum-aggregated activations in a trainable range: without it,
// sum pooling over large graphs saturates the softmax and gradients die.
// Training mode normalizes by batch statistics and maintains running
// estimates; evaluation mode uses the running estimates.
type BatchNorm struct {
	Features int
	Eps      float64
	Momentum float64 // running-average update rate (default 0.1)

	Gamma, Beta *Param

	runMean []float64
	runVar  []float64
	seen    bool
}

// NewBatchNorm returns a batch-norm layer over the given feature width
// with gamma=1, beta=0.
func NewBatchNorm(features int) *BatchNorm {
	bn := &BatchNorm{
		Features: features,
		Eps:      1e-5,
		Momentum: 0.1,
		Gamma:    NewParam(1, features),
		Beta:     NewParam(1, features),
		runMean:  make([]float64, features),
		runVar:   make([]float64, features),
	}
	for i := range bn.Gamma.W.Data {
		bn.Gamma.W.Data[i] = 1
		bn.runVar[i] = 1
	}
	return bn
}

// Params returns the trainable parameters.
func (bn *BatchNorm) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// BNCache holds the forward intermediates Backward needs. frozen marks a
// pass that normalized with running statistics (evaluation mode, or a
// single-row training batch); its backward treats mean and variance as
// constants.
type BNCache struct {
	frozen bool
	xhat   *Matrix
	invStd []float64
}

// Forward normalizes x (rows = batch, cols = features). In training mode
// batch statistics are used and folded into the running estimates; in
// evaluation mode the running estimates are used and the cache is nil.
func (bn *BatchNorm) Forward(x *Matrix, training bool) (*Matrix, *BNCache) {
	if x.Cols != bn.Features {
		panic("nn: batchnorm feature mismatch")
	}
	m := float64(x.Rows)
	out := NewMatrix(x.Rows, x.Cols)
	if !training || x.Rows == 1 {
		// Single-row training batches fall back to running statistics:
		// a batch variance of zero would produce degenerate gradients.
		cache := &BNCache{frozen: true, xhat: NewMatrix(x.Rows, x.Cols), invStd: make([]float64, bn.Features)}
		for j := range cache.invStd {
			cache.invStd[j] = 1 / math.Sqrt(bn.runVar[j]+bn.Eps)
		}
		for i := 0; i < x.Rows; i++ {
			row, xrow, orow := x.Row(i), cache.xhat.Row(i), out.Row(i)
			for j := range row {
				xh := (row[j] - bn.runMean[j]) * cache.invStd[j]
				xrow[j] = xh
				orow[j] = bn.Gamma.W.Data[j]*xh + bn.Beta.W.Data[j]
			}
		}
		return out, cache
	}
	mean := make([]float64, bn.Features)
	variance := make([]float64, bn.Features)
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= m
	}
	for i := 0; i < x.Rows; i++ {
		row := x.Row(i)
		for j, v := range row {
			d := v - mean[j]
			variance[j] += d * d
		}
	}
	for j := range variance {
		variance[j] /= m // biased estimator, standard for BN
	}
	cache := &BNCache{xhat: NewMatrix(x.Rows, x.Cols), invStd: make([]float64, bn.Features)}
	for j := range cache.invStd {
		cache.invStd[j] = 1 / math.Sqrt(variance[j]+bn.Eps)
	}
	for i := 0; i < x.Rows; i++ {
		row, xrow, orow := x.Row(i), cache.xhat.Row(i), out.Row(i)
		for j, v := range row {
			xh := (v - mean[j]) * cache.invStd[j]
			xrow[j] = xh
			orow[j] = bn.Gamma.W.Data[j]*xh + bn.Beta.W.Data[j]
		}
	}
	mom := bn.Momentum
	if !bn.seen {
		mom = 1 // first batch initializes the running stats outright
		bn.seen = true
	}
	for j := range mean {
		bn.runMean[j] = (1-mom)*bn.runMean[j] + mom*mean[j]
		bn.runVar[j] = (1-mom)*bn.runVar[j] + mom*variance[j]
	}
	return out, cache
}

// Backward accumulates parameter gradients and returns dL/dx for a
// training-mode forward pass.
func (bn *BatchNorm) Backward(cache *BNCache, dy *Matrix) *Matrix {
	if cache == nil {
		panic("nn: batchnorm backward without forward cache")
	}
	if cache.frozen {
		// Mean and variance were constants (running statistics), so the
		// chain rule reduces to the affine part.
		dx := NewMatrix(dy.Rows, dy.Cols)
		for i := 0; i < dy.Rows; i++ {
			drow, xrow, orow := dy.Row(i), cache.xhat.Row(i), dx.Row(i)
			for j, d := range drow {
				bn.Gamma.G.Data[j] += d * xrow[j]
				bn.Beta.G.Data[j] += d
				orow[j] = d * bn.Gamma.W.Data[j] * cache.invStd[j]
			}
		}
		return dx
	}
	m := float64(dy.Rows)
	sumDy := make([]float64, bn.Features)
	sumDyXhat := make([]float64, bn.Features)
	for i := 0; i < dy.Rows; i++ {
		drow, xrow := dy.Row(i), cache.xhat.Row(i)
		for j, d := range drow {
			sumDy[j] += d
			sumDyXhat[j] += d * xrow[j]
		}
	}
	for j := 0; j < bn.Features; j++ {
		bn.Gamma.G.Data[j] += sumDyXhat[j]
		bn.Beta.G.Data[j] += sumDy[j]
	}
	dx := NewMatrix(dy.Rows, dy.Cols)
	for i := 0; i < dy.Rows; i++ {
		drow, xrow, orow := dy.Row(i), cache.xhat.Row(i), dx.Row(i)
		for j, d := range drow {
			g := bn.Gamma.W.Data[j]
			orow[j] = g * cache.invStd[j] / m * (m*d - sumDy[j] - xrow[j]*sumDyXhat[j])
		}
	}
	return dx
}
