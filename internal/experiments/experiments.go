// Package experiments wires datasets, methods and the evaluation harness
// into the concrete experiments of the paper: Table I (dataset
// statistics), Figure 3 (accuracy / training time / inference time on six
// datasets × five methods) and Figure 4 (training-time scaling on
// Erdős–Rényi graphs), plus the ablations and extensions indexed in
// DESIGN.md. Both the cmd/ binaries and the root benchmark suite call into
// this package, so printed tables and benchmark numbers come from the same
// code paths.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/dataset"
	"graphhd/internal/eval"
	"graphhd/internal/graph"
)

// MethodNames lists the five compared methods in the paper's order.
var MethodNames = []string{"GraphHD", "1-WL", "WL-OA", "GIN-e", "GIN-e-JK"}

// NewClassifier builds a fresh classifier for the named method.
func NewClassifier(method string, seed uint64, quick bool) (eval.Classifier, error) {
	switch method {
	case "GraphHD":
		cfg := core.DefaultConfig()
		cfg.Seed = seed
		if quick {
			cfg.Dimension = 2048
		}
		return eval.NewGraphHDClassifier(cfg), nil
	case "1-WL", "WL-OA":
		kind := eval.KernelWLSubtree
		if method == "WL-OA" {
			kind = eval.KernelWLOA
		}
		c := eval.NewKernelSVMClassifier(kind, seed)
		if quick {
			c.CGrid = []float64{0.1, 1, 10}
			c.HGrid = []int{1, 3}
		}
		return c, nil
	case "GIN-e", "GIN-e-JK":
		c := eval.NewGINClassifier(method == "GIN-e-JK", seed)
		if quick {
			c.Config.MaxEpochs = 20
		}
		return c, nil
	default:
		return nil, fmt.Errorf("experiments: unknown method %q (have %v)", method, MethodNames)
	}
}

// Table1 generates (or loads) every benchmark dataset and returns its
// statistics alongside the paper's Table I values.
type Table1Row struct {
	Name     string
	Measured graph.Stats
	Paper    dataset.TableIStats
}

// RunTable1 synthesizes all six datasets and compares their statistics to
// the paper's Table I. graphCount > 0 shrinks each dataset for quick runs.
func RunTable1(seed uint64, graphCount int) ([]Table1Row, error) {
	var rows []Table1Row
	for _, name := range dataset.Names() {
		ds, err := dataset.Generate(name, dataset.Options{Seed: seed, GraphCount: graphCount})
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Name:     name,
			Measured: graph.ComputeStats(ds),
			Paper:    dataset.PaperTableI[name],
		})
	}
	return rows, nil
}

// WriteTable1 renders Table1 rows with the paper values side by side.
func WriteTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-10s %8s %8s %12s %12s %12s %12s\n",
		"Dataset", "Graphs", "Classes", "AvgV(ours)", "AvgV(paper)", "AvgE(ours)", "AvgE(paper)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %12.2f %12.2f %12.2f %12.2f\n",
			r.Name, r.Measured.Graphs, r.Measured.Classes,
			r.Measured.AvgVertices, r.Paper.AvgVertices,
			r.Measured.AvgEdges, r.Paper.AvgEdges)
	}
}

// Fig3Options configures the accuracy / training-time / inference-time
// experiment.
type Fig3Options struct {
	// Datasets to run; nil selects all six.
	Datasets []string
	// Methods to run; nil selects all five.
	Methods []string
	// GraphCount shrinks each dataset when positive (quick mode).
	GraphCount int
	// Quick also shrinks hypervector dimension, kernel grids and GIN
	// epochs; the shape of the comparison is preserved.
	Quick bool
	// CV selects folds/repetitions; zero value = paper protocol.
	CV eval.CrossValidateOptions
	// Seed drives everything.
	Seed uint64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// Fig3Cell is one (dataset, method) measurement.
type Fig3Cell struct {
	Dataset      string
	Method       string
	Accuracy     float64
	AccuracyStd  float64
	TrainTime    time.Duration // per fold
	InferPerG    time.Duration // per graph
	FoldsMeasued int
}

// RunFig3 runs the full grid and returns one cell per (dataset, method).
func RunFig3(opts Fig3Options) ([]Fig3Cell, error) {
	names := opts.Datasets
	if names == nil {
		names = dataset.Names()
	}
	methods := opts.Methods
	if methods == nil {
		methods = MethodNames
	}
	cv := opts.CV
	if cv.Folds == 0 {
		cv = eval.DefaultCVOptions()
	}
	var cells []Fig3Cell
	for _, name := range names {
		ds, err := dataset.Generate(name, dataset.Options{Seed: opts.Seed, GraphCount: opts.GraphCount})
		if err != nil {
			return nil, err
		}
		for _, method := range methods {
			method := method
			quick := opts.Quick
			factory := func(fold int, seed uint64) eval.Classifier {
				c, err := NewClassifier(method, seed, quick)
				if err != nil {
					panic(err) // method names validated below before use
				}
				return c
			}
			if _, err := NewClassifier(method, 0, quick); err != nil {
				return nil, err
			}
			res, err := eval.CrossValidate(method, ds, factory, cv)
			if err != nil {
				return nil, err
			}
			cell := Fig3Cell{
				Dataset:      name,
				Method:       method,
				Accuracy:     res.MeanAccuracy(),
				AccuracyStd:  res.StdAccuracy(),
				TrainTime:    res.MeanTrainTime(),
				InferPerG:    res.MeanInferTimePerGraph(),
				FoldsMeasued: len(res.Folds),
			}
			cells = append(cells, cell)
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "%-10s %-9s acc=%.3f±%.3f train/fold=%-12v infer/graph=%v\n",
					cell.Dataset, cell.Method, cell.Accuracy, cell.AccuracyStd, cell.TrainTime, cell.InferPerG)
			}
		}
	}
	return cells, nil
}

// WriteFig3 renders the three panels of Figure 3 as text tables.
func WriteFig3(w io.Writer, cells []Fig3Cell) {
	byDataset := map[string]map[string]Fig3Cell{}
	var datasets []string
	var methods []string
	seenM := map[string]bool{}
	for _, c := range cells {
		if byDataset[c.Dataset] == nil {
			byDataset[c.Dataset] = map[string]Fig3Cell{}
			datasets = append(datasets, c.Dataset)
		}
		byDataset[c.Dataset][c.Method] = c
		if !seenM[c.Method] {
			seenM[c.Method] = true
			methods = append(methods, c.Method)
		}
	}
	sort.Strings(datasets)

	fmt.Fprintln(w, "== Figure 3 (left): accuracy ==")
	writePanel(w, datasets, methods, byDataset, func(c Fig3Cell) string {
		return fmt.Sprintf("%.3f±%.3f", c.Accuracy, c.AccuracyStd)
	})
	fmt.Fprintln(w, "\n== Figure 3 (middle): training time per fold ==")
	writePanel(w, datasets, methods, byDataset, func(c Fig3Cell) string {
		return c.TrainTime.Round(time.Microsecond).String()
	})
	fmt.Fprintln(w, "\n== Figure 3 (right): inference time per graph ==")
	writePanel(w, datasets, methods, byDataset, func(c Fig3Cell) string {
		return c.InferPerG.Round(time.Microsecond).String()
	})
}

func writePanel(w io.Writer, datasets, methods []string, cells map[string]map[string]Fig3Cell, fmtCell func(Fig3Cell) string) {
	fmt.Fprintf(w, "%-10s", "Dataset")
	for _, m := range methods {
		fmt.Fprintf(w, " %14s", m)
	}
	fmt.Fprintln(w)
	for _, d := range datasets {
		fmt.Fprintf(w, "%-10s", d)
		for _, m := range methods {
			if c, ok := cells[d][m]; ok {
				fmt.Fprintf(w, " %14s", fmtCell(c))
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// Fig4Options configures the scaling experiment.
type Fig4Options struct {
	// Sizes lists vertex counts; nil selects the paper sweep.
	Sizes []int
	// GraphsPerDataset (paper: 100).
	GraphsPerDataset int
	// Methods; nil selects the paper's {GraphHD, GIN-e, WL-OA}.
	Methods []string
	// Quick shrinks method settings as in Fig3Options.
	Quick bool
	Seed  uint64
	// Progress, when non-nil, receives one line per completed run.
	Progress io.Writer
}

// Fig4Cell is one (size, method) training-time measurement.
type Fig4Cell struct {
	Vertices  int
	Method    string
	TrainTime time.Duration
}

// RunFig4 measures wall-clock training time on the full synthetic dataset
// for each graph size and method (the paper plots training time vs graph
// size; a single full-dataset fit is the cleanest deterministic analogue
// of its per-fold timing).
func RunFig4(opts Fig4Options) ([]Fig4Cell, error) {
	sizes := opts.Sizes
	if sizes == nil {
		sizes = dataset.ScalingSizes()
	}
	n := opts.GraphsPerDataset
	if n == 0 {
		n = 100
	}
	methods := opts.Methods
	if methods == nil {
		methods = []string{"GraphHD", "GIN-e", "WL-OA"}
	}
	var cells []Fig4Cell
	for _, size := range sizes {
		ds := dataset.Scaling(size, n, opts.Seed)
		for _, method := range methods {
			clf, err := NewClassifier(method, opts.Seed, opts.Quick)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			if err := clf.Fit(ds.Graphs, ds.Labels); err != nil {
				return nil, err
			}
			cell := Fig4Cell{Vertices: size, Method: method, TrainTime: time.Since(t0)}
			cells = append(cells, cell)
			if opts.Progress != nil {
				fmt.Fprintf(opts.Progress, "n=%-5d %-9s train=%v\n", size, method, cell.TrainTime)
			}
		}
	}
	return cells, nil
}

// WriteFig4 renders the scaling profile as a text table (one row per
// size, one column per method).
func WriteFig4(w io.Writer, cells []Fig4Cell) {
	var sizes []int
	var methods []string
	seenS := map[int]bool{}
	seenM := map[string]bool{}
	val := map[int]map[string]time.Duration{}
	for _, c := range cells {
		if !seenS[c.Vertices] {
			seenS[c.Vertices] = true
			sizes = append(sizes, c.Vertices)
			val[c.Vertices] = map[string]time.Duration{}
		}
		if !seenM[c.Method] {
			seenM[c.Method] = true
			methods = append(methods, c.Method)
		}
		val[c.Vertices][c.Method] = c.TrainTime
	}
	sort.Ints(sizes)
	fmt.Fprintln(w, "== Figure 4: training time vs graph size ==")
	fmt.Fprintf(w, "%-8s", "Vertices")
	for _, m := range methods {
		fmt.Fprintf(w, " %14s", m)
	}
	fmt.Fprintln(w)
	for _, s := range sizes {
		fmt.Fprintf(w, "%-8d", s)
		for _, m := range methods {
			if d, ok := val[s][m]; ok {
				fmt.Fprintf(w, " %14s", d.Round(time.Microsecond))
			} else {
				fmt.Fprintf(w, " %14s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}
