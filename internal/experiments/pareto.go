package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/dataset"
	"graphhd/internal/eval"
	"graphhd/internal/graph"
)

// ParetoPoint is one cell of the accuracy–latency Pareto sweep: how one
// query mode of one dataset trades accuracy against per-graph latency.
// Mode "prefix" classifies purely at Dim leading components of the
// full-dimension model (the small-d model sharing the basis prefix);
// "full" is the single-stage full-dimension baseline; "cascade" is the
// two-stage path with its margin calibrated on a holdout, reporting the
// stage-1 hit rate and escalation count alongside.
type ParetoPoint struct {
	Dataset        string  `json:"dataset"`
	Mode           string  `json:"mode"` // "prefix", "full", or "cascade"
	Dim            int     `json:"dim"`  // query width (stage-1 width for cascade)
	FullDim        int     `json:"full_dim"`
	Margin         int     `json:"margin,omitempty"` // cascade escalation margin
	Accuracy       float64 `json:"accuracy"`
	MicrosPerGraph float64 `json:"us_per_graph"`
	Stage1HitRate  float64 `json:"stage1_hit_rate,omitempty"`
	Escalations    int     `json:"escalations,omitempty"`
	TestGraphs     int     `json:"test_graphs"`
}

// ParetoOptions tunes the sweep.
type ParetoOptions struct {
	// Seed fixes dataset generation and training.
	Seed uint64
	// GraphCount overrides each dataset's paper-size graph count when
	// positive (quick mode).
	GraphCount int
	// FullDim is the full model dimension. Default 10000 (the paper's d).
	FullDim int
	// PrefixDims are the prefix widths swept. Default {1024, 2048}.
	PrefixDims []int
	// CascadeTol is the calibration accuracy tolerance as a fraction.
	// Default 0.005 (the half-point band of the acceptance criterion).
	CascadeTol float64
}

func (o ParetoOptions) withDefaults() ParetoOptions {
	if o.FullDim <= 0 {
		o.FullDim = 10000
	}
	if len(o.PrefixDims) == 0 {
		o.PrefixDims = []int{1024, 2048}
	}
	if o.CascadeTol <= 0 {
		o.CascadeTol = 0.005
	}
	return o
}

// RunPareto sweeps the accuracy–latency Pareto frontier on every
// synthetic Table-I dataset: train at FullDim on a training split, then
// measure accuracy and µs/graph on a test split for (a) pure prefix-width
// classification at each PrefixDims entry, (b) the full-dimension
// baseline, and (c) the two-stage cascade with its margin calibrated on a
// holdout split at the smallest prefix width.
func RunPareto(opts ParetoOptions) ([]ParetoPoint, error) {
	opts = opts.withDefaults()
	var out []ParetoPoint
	for _, name := range dataset.Names() {
		ds, err := dataset.Generate(name, dataset.Options{Seed: opts.Seed, GraphCount: opts.GraphCount})
		if err != nil {
			return nil, err
		}
		pts, err := paretoDataset(ds, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: pareto %s: %w", name, err)
		}
		out = append(out, pts...)
	}
	return out, nil
}

func paretoDataset(ds *graph.Dataset, opts ParetoOptions) ([]ParetoPoint, error) {
	n := len(ds.Graphs)
	if n < 6 {
		return nil, fmt.Errorf("%d graphs is too few for a train/holdout/test split", n)
	}
	// Generated datasets interleave classes, so contiguous thirds stay
	// stratified: train on the first, calibrate on the second, time and
	// score on the third.
	trainG, trainY := ds.Graphs[:n/3], ds.Labels[:n/3]
	holdG, holdY := ds.Graphs[n/3:2*n/3], ds.Labels[n/3:2*n/3]
	testG, testY := ds.Graphs[2*n/3:], ds.Labels[2*n/3:]

	cfg := core.DefaultConfig()
	cfg.Dimension = opts.FullDim
	cfg.Seed = opts.Seed
	m, err := core.Train(cfg, trainG, trainY)
	if err != nil {
		return nil, err
	}
	pred := m.Snapshot()
	s := pred.Encoder().NewScratch()

	var out []ParetoPoint
	base := ParetoPoint{Dataset: ds.Name, FullDim: opts.FullDim, TestGraphs: len(testG)}

	// Pure prefix-width classification: what a small-d model sharing the
	// basis prefix would serve.
	for _, dp := range opts.PrefixDims {
		if dp >= opts.FullDim {
			continue
		}
		pm, err := pred.PrefixSnapshot(dp)
		if err != nil {
			return nil, err
		}
		p := base
		p.Mode, p.Dim = "prefix", dp
		p.Accuracy, p.MicrosPerGraph = timeClassify(testG, testY, func(g *graph.Graph) int {
			return pm.Classify(s.EncodeGraphPackedPrefix(g, dp))
		})
		out = append(out, p)
	}

	// Full-dimension baseline.
	full := base
	full.Mode, full.Dim = "full", opts.FullDim
	full.Accuracy, full.MicrosPerGraph = timeClassify(testG, testY, func(g *graph.Graph) int {
		return pred.PredictWith(s, g)
	})
	out = append(out, full)

	// Calibrated cascade at the smallest prefix width.
	casc, _, err := eval.CalibrateCascade(pred, holdG, holdY, opts.PrefixDims[0], opts.CascadeTol)
	if err != nil {
		return nil, err
	}
	if err := pred.SetCascade(casc); err != nil {
		return nil, err
	}
	escalations := 0
	cp := base
	cp.Mode, cp.Dim, cp.Margin = "cascade", casc.DPrefix, casc.Margin
	cp.Accuracy, cp.MicrosPerGraph = timeClassify(testG, testY, func(g *graph.Graph) int {
		cls, esc := pred.PredictCascadeWith(s, g)
		if esc {
			escalations++
		}
		return cls
	})
	// Escalation is deterministic per graph, so every pass (including the
	// warm-up) escalates the same set; report one pass's worth.
	passes := 1 + timingPasses(len(testG))
	cp.Stage1HitRate = 1 - float64(escalations/passes)/float64(len(testG))
	cp.Escalations = escalations / passes
	out = append(out, cp)
	pred.ClearCascade()
	return out, nil
}

// timingPasses picks how many timed passes over n test graphs give a
// stable per-graph latency: small quick-mode splits repeat until ~256
// predictions have been timed, paper-size splits need only one pass.
func timingPasses(n int) int {
	return 1 + 255/n
}

// timeClassify measures classify over the test split: one untimed
// warm-up pass (scratch growth, packed basis tables), then timed passes,
// returning the accuracy and the mean µs/graph.
func timeClassify(testG []*graph.Graph, testY []int, classify func(*graph.Graph) int) (acc, usPerGraph float64) {
	correct := 0
	for i, g := range testG { // warm-up, also scores accuracy
		if classify(g) == testY[i] {
			correct++
		}
	}
	passes := timingPasses(len(testG))
	t0 := time.Now()
	for p := 0; p < passes; p++ {
		for _, g := range testG {
			classify(g)
		}
	}
	elapsed := time.Since(t0)
	return float64(correct) / float64(len(testG)),
		float64(elapsed.Nanoseconds()) / 1e3 / float64(passes*len(testG))
}

// WriteParetoJSON renders the sweep as indented JSON — the
// machine-readable artifact CI archives alongside the Table-I
// reproduction.
func WriteParetoJSON(w io.Writer, pts []ParetoPoint) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(pts)
}

// WritePareto renders the sweep as an aligned human-readable table.
func WritePareto(w io.Writer, pts []ParetoPoint) {
	fmt.Fprintf(w, "%-10s %-8s %7s %8s %10s %12s %8s\n",
		"Dataset", "Mode", "Dim", "Margin", "Accuracy", "µs/graph", "Stage1")
	for _, p := range pts {
		s1 := ""
		if p.Mode == "cascade" {
			s1 = fmt.Sprintf("%.1f%%", 100*p.Stage1HitRate)
		}
		fmt.Fprintf(w, "%-10s %-8s %7d %8d %10.4f %12.2f %8s\n",
			p.Dataset, p.Mode, p.Dim, p.Margin, p.Accuracy, p.MicrosPerGraph, s1)
	}
}
