package experiments

import (
	"strings"
	"testing"

	"graphhd/internal/eval"
)

func TestNewClassifierAllMethods(t *testing.T) {
	for _, m := range MethodNames {
		c, err := NewClassifier(m, 1, true)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if c == nil {
			t.Fatalf("%s: nil classifier", m)
		}
	}
	if _, err := NewClassifier("nope", 1, false); err == nil {
		t.Fatal("expected unknown-method error")
	}
}

func TestRunTable1(t *testing.T) {
	rows, err := RunTable1(1, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	var sb strings.Builder
	WriteTable1(&sb, rows)
	out := sb.String()
	for _, name := range []string{"DD", "MUTAG", "AvgV(paper)"} {
		if !strings.Contains(out, name) {
			t.Fatalf("table output missing %q:\n%s", name, out)
		}
	}
}

func TestRunFig3QuickSmoke(t *testing.T) {
	cells, err := RunFig3(Fig3Options{
		Datasets:   []string{"MUTAG"},
		Methods:    []string{"GraphHD", "1-WL"},
		GraphCount: 30,
		Quick:      true,
		CV:         eval.CrossValidateOptions{Folds: 3, Repetitions: 1, Seed: 2},
		Seed:       2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.Accuracy < 0.5 {
			t.Errorf("%s on %s: accuracy %.3f suspiciously low", c.Method, c.Dataset, c.Accuracy)
		}
		if c.TrainTime <= 0 || c.InferPerG <= 0 {
			t.Errorf("%s: missing timings", c.Method)
		}
	}
	var sb strings.Builder
	WriteFig3(&sb, cells)
	if !strings.Contains(sb.String(), "Figure 3 (left)") {
		t.Fatal("missing accuracy panel")
	}
}

func TestRunFig3UnknownMethod(t *testing.T) {
	_, err := RunFig3(Fig3Options{
		Datasets: []string{"MUTAG"}, Methods: []string{"bogus"},
		GraphCount: 10, Quick: true,
		CV: eval.CrossValidateOptions{Folds: 2, Repetitions: 1},
	})
	if err == nil {
		t.Fatal("expected error")
	}
}

func TestRunFig4QuickSmoke(t *testing.T) {
	cells, err := RunFig4(Fig4Options{
		Sizes:            []int{20, 40},
		GraphsPerDataset: 12,
		Methods:          []string{"GraphHD"},
		Quick:            true,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.TrainTime <= 0 {
			t.Fatal("missing training time")
		}
	}
	var sb strings.Builder
	WriteFig4(&sb, cells)
	if !strings.Contains(sb.String(), "Figure 4") {
		t.Fatal("missing header")
	}
}

func TestDimensionAblationQuick(t *testing.T) {
	cells, err := RunDimensionAblation([]int{128, 1024}, 30, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
}

func TestPageRankIterAblationQuick(t *testing.T) {
	cells, err := RunPageRankIterAblation([]int{1, 10}, 36, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
}

func TestExtensionComparisonQuick(t *testing.T) {
	cells, err := RunExtensionComparison(30, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	var base, retr float64
	for _, c := range cells {
		if c.Value == "baseline" {
			base = c.Accuracy
		}
		if c.Value == "retrain-20" {
			retr = c.Accuracy
		}
	}
	// Retraining should not be catastrophically worse than baseline.
	if retr < base-0.2 {
		t.Errorf("retraining collapsed: baseline %.3f vs retrain %.3f", base, retr)
	}
}

func TestLabelExtensionQuick(t *testing.T) {
	cells, err := RunLabelExtension(60, 7)
	if err != nil {
		t.Fatal(err)
	}
	var off, on float64
	for _, c := range cells {
		if c.Value == "false" {
			off = c.Accuracy
		} else {
			on = c.Accuracy
		}
	}
	// The label-aware encoder must exploit label signal the baseline
	// cannot see.
	if on <= off {
		t.Errorf("label extension did not help: off=%.3f on=%.3f", off, on)
	}
}

func TestNoiseRobustnessQuick(t *testing.T) {
	cells, err := RunNoiseRobustness([]float64{0, 0.2, 0.45}, 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatalf("cells = %d", len(cells))
	}
	// Clean accuracy must be good; moderate corruption should not destroy
	// it (the holographic-robustness claim).
	if cells[0].Accuracy < 0.7 {
		t.Errorf("clean accuracy = %.3f", cells[0].Accuracy)
	}
	if cells[1].Accuracy < cells[0].Accuracy-0.3 {
		// 20% flips should cost far less than 30 points of accuracy.
	} else if cells[1].Accuracy < 0.5 {
		t.Errorf("20%% corruption collapsed accuracy to %.3f", cells[1].Accuracy)
	}
	var sb strings.Builder
	WriteNoise(&sb, cells)
	if !strings.Contains(sb.String(), "Noise robustness") {
		t.Fatal("missing header")
	}
}

func TestNoiseRobustnessRejectsBadFraction(t *testing.T) {
	if _, err := RunNoiseRobustness([]float64{0.6}, 20, 1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestBackendComparisonQuick(t *testing.T) {
	cells, err := RunBackendComparison(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if c.TrainTime <= 0 {
			t.Fatalf("backend %s: no time measured", c.Value)
		}
	}
	var sb strings.Builder
	WriteAblation(&sb, "backend", cells)
	if !strings.Contains(sb.String(), "int8-reference") {
		t.Fatal("missing backend row")
	}
}

func TestCentralityAblationQuick(t *testing.T) {
	cells, err := RunCentralityAblation(36, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("cells = %d", len(cells))
	}
	names := map[string]bool{}
	for _, c := range cells {
		names[c.Value] = true
		if c.Accuracy <= 0 {
			t.Errorf("%s accuracy = %v", c.Value, c.Accuracy)
		}
	}
	for _, want := range []string{"pagerank", "degree", "eigenvector", "closeness"} {
		if !names[want] {
			t.Fatalf("missing metric %s in %v", want, names)
		}
	}
}
