package experiments

import (
	"fmt"
	"io"
	"time"

	"graphhd/internal/centrality"
	"graphhd/internal/core"
	"graphhd/internal/dataset"
	"graphhd/internal/eval"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/pagerank"
)

// This file implements the ablation and extension experiments indexed in
// DESIGN.md (A1–A5): hypervector dimension, PageRank iteration count, the
// retraining and multi-prototype extensions (the paper's Future Work 1),
// the vertex-label extension (Future Work 2) and the bipolar vs bit-packed
// binary backend comparison.

// AblationCell is one measurement of an ablation sweep.
type AblationCell struct {
	Param     string
	Value     string
	Accuracy  float64
	TrainTime time.Duration
}

// ablationCV runs a quick 5-fold CV of factory on ds and returns the mean
// accuracy and training time.
func ablationCV(ds *graph.Dataset, factory eval.Factory) (float64, time.Duration, error) {
	res, err := eval.CrossValidate("ablation", ds, factory,
		eval.CrossValidateOptions{Folds: 5, Repetitions: 1, Seed: 0xab1a})
	if err != nil {
		return 0, 0, err
	}
	return res.MeanAccuracy(), res.MeanTrainTime(), nil
}

// RunDimensionAblation sweeps the hypervector dimension on a MUTAG-like
// dataset (A1). Accuracy should climb with dimension and saturate near the
// paper's d = 10,000.
func RunDimensionAblation(dims []int, graphCount int, seed uint64) ([]AblationCell, error) {
	if dims == nil {
		dims = []int{256, 512, 1024, 2048, 4096, 8192, 10000, 16384}
	}
	ds, err := dataset.Generate("MUTAG", dataset.Options{Seed: seed, GraphCount: graphCount})
	if err != nil {
		return nil, err
	}
	var cells []AblationCell
	for _, d := range dims {
		d := d
		acc, tt, err := ablationCV(ds, func(fold int, s uint64) eval.Classifier {
			cfg := core.DefaultConfig()
			cfg.Dimension = d
			cfg.Seed = s
			return eval.NewGraphHDClassifier(cfg)
		})
		if err != nil {
			return nil, err
		}
		cells = append(cells, AblationCell{Param: "dimension", Value: fmt.Sprint(d), Accuracy: acc, TrainTime: tt})
	}
	return cells, nil
}

// RunPageRankIterAblation sweeps PageRank iteration counts (A2),
// reproducing the claim that accuracy plateaus by 10 iterations.
func RunPageRankIterAblation(iters []int, graphCount int, seed uint64) ([]AblationCell, error) {
	if iters == nil {
		iters = []int{1, 2, 3, 5, 10, 15, 20}
	}
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: seed, GraphCount: graphCount})
	if err != nil {
		return nil, err
	}
	var cells []AblationCell
	for _, it := range iters {
		it := it
		acc, tt, err := ablationCV(ds, func(fold int, s uint64) eval.Classifier {
			cfg := core.DefaultConfig()
			cfg.Dimension = 4096 // keep the sweep quick; dimension is not the variable
			cfg.PageRankIterations = it
			cfg.Seed = s
			return eval.NewGraphHDClassifier(cfg)
		})
		if err != nil {
			return nil, err
		}
		cells = append(cells, AblationCell{Param: "pagerank-iters", Value: fmt.Sprint(it), Accuracy: acc, TrainTime: tt})
	}
	return cells, nil
}

// retrainClassifier wraps a GraphHD model with post-fit retraining.
type retrainClassifier struct {
	cfg    core.Config
	epochs int
	model  *core.Model
}

func (c *retrainClassifier) Fit(gs []*graph.Graph, labels []int) error {
	m, err := core.Train(c.cfg, gs, labels)
	if err != nil {
		return err
	}
	if _, err := m.Retrain(gs, labels, core.RetrainOptions{Epochs: c.epochs}); err != nil {
		return err
	}
	c.model = m
	return nil
}

func (c *retrainClassifier) PredictAll(gs []*graph.Graph) []int { return c.model.PredictAll(gs) }

// multiProtoClassifier wraps the multi-prototype extension.
type multiProtoClassifier struct {
	cfg    core.Config
	protos int
	model  *core.MultiPrototypeModel
}

func (c *multiProtoClassifier) Fit(gs []*graph.Graph, labels []int) error {
	enc, err := core.NewEncoder(c.cfg)
	if err != nil {
		return err
	}
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	m, err := core.NewMultiPrototypeModel(enc, k, c.protos)
	if err != nil {
		return err
	}
	if err := m.Fit(gs, labels); err != nil {
		return err
	}
	c.model = m
	return nil
}

func (c *multiProtoClassifier) PredictAll(gs []*graph.Graph) []int { return c.model.PredictAll(gs) }

// RunExtensionComparison compares baseline GraphHD against the retraining
// and multi-prototype extensions (A3) on a NCI1-like dataset, the setting
// where the paper's accuracy gap to kernels is largest.
func RunExtensionComparison(graphCount int, seed uint64) ([]AblationCell, error) {
	ds, err := dataset.Generate("NCI1", dataset.Options{Seed: seed, GraphCount: graphCount})
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig()
	cfg.Dimension = 4096
	variants := []struct {
		name    string
		factory eval.Factory
	}{
		{"baseline", func(fold int, s uint64) eval.Classifier {
			c := cfg
			c.Seed = s
			return eval.NewGraphHDClassifier(c)
		}},
		{"retrain-5", func(fold int, s uint64) eval.Classifier {
			c := cfg
			c.Seed = s
			return &retrainClassifier{cfg: c, epochs: 5}
		}},
		{"retrain-20", func(fold int, s uint64) eval.Classifier {
			c := cfg
			c.Seed = s
			return &retrainClassifier{cfg: c, epochs: 20}
		}},
		{"protos-4", func(fold int, s uint64) eval.Classifier {
			c := cfg
			c.Seed = s
			return &multiProtoClassifier{cfg: c, protos: 4}
		}},
	}
	var cells []AblationCell
	for _, v := range variants {
		acc, tt, err := ablationCV(ds, v.factory)
		if err != nil {
			return nil, err
		}
		cells = append(cells, AblationCell{Param: "extension", Value: v.name, Accuracy: acc, TrainTime: tt})
	}
	return cells, nil
}

// RunLabelExtension compares encoders with and without vertex labels (A4)
// on a labeled synthetic dataset where part of the class signal lives only
// in the labels.
func RunLabelExtension(graphCount int, seed uint64) ([]AblationCell, error) {
	ds := labeledDataset(graphCount, seed)
	var cells []AblationCell
	for _, useLabels := range []bool{false, true} {
		useLabels := useLabels
		acc, tt, err := ablationCV(ds, func(fold int, s uint64) eval.Classifier {
			cfg := core.DefaultConfig()
			cfg.Dimension = 4096
			cfg.Seed = s
			cfg.UseVertexLabels = useLabels
			return eval.NewGraphHDClassifier(cfg)
		})
		if err != nil {
			return nil, err
		}
		cells = append(cells, AblationCell{
			Param: "vertex-labels", Value: fmt.Sprintf("%v", useLabels),
			Accuracy: acc, TrainTime: tt,
		})
	}
	return cells, nil
}

// labeledDataset builds graphs whose structure is identical across classes
// but whose vertex labels differ statistically — signal only the labeled
// extension can use.
func labeledDataset(count int, seed uint64) *graph.Dataset {
	if count <= 0 {
		count = 100
	}
	rng := hdc.NewRNG(seed ^ 0x1abe1)
	ds := &graph.Dataset{Name: "LABELED", ClassNames: []string{"0", "1"}}
	for i := 0; i < count; i++ {
		c := i % 2
		g := graph.ErdosRenyi(20, 0.15, rng)
		labels := make([]int, g.NumVertices())
		for v := range labels {
			// Class 0 favours label 0, class 1 favours label 1.
			if rng.Float64() < 0.75 {
				labels[v] = c
			} else {
				labels[v] = 1 - c
			}
		}
		b := graph.NewBuilder(g.NumVertices())
		for _, e := range g.Edges() {
			b.MustAddEdge(int(e.U), int(e.V))
		}
		if err := b.SetVertexLabels(labels); err != nil {
			panic(err)
		}
		ds.Graphs = append(ds.Graphs, b.Build())
		ds.Labels = append(ds.Labels, c)
	}
	return ds
}

// RunCentralityAblation compares vertex-identifier metrics (A7): the
// paper's PageRank against degree, eigenvector and closeness centrality,
// cross-validated on an ENZYMES-like dataset where rank structure matters
// (6 classes of distinct topology families).
func RunCentralityAblation(graphCount int, seed uint64) ([]AblationCell, error) {
	ds, err := dataset.Generate("ENZYMES", dataset.Options{Seed: seed, GraphCount: graphCount})
	if err != nil {
		return nil, err
	}
	var cells []AblationCell
	for _, metric := range centrality.AllMetrics() {
		metric := metric
		acc, tt, err := ablationCV(ds, func(fold int, s uint64) eval.Classifier {
			cfg := core.DefaultConfig()
			cfg.Dimension = 4096
			cfg.Seed = s
			cfg.Centrality = metric
			return eval.NewGraphHDClassifier(cfg)
		})
		if err != nil {
			return nil, err
		}
		cells = append(cells, AblationCell{Param: "centrality", Value: metric.String(), Accuracy: acc, TrainTime: tt})
	}
	return cells, nil
}

// RunBackendComparison times graph encoding under the two equivalent
// pipelines (A5): the reference int8 bipolar path (materialized binds
// accumulated in int32 sums) and the bit-sliced packed path the production
// encoder uses (XNOR word binds counted in SWAR lanes — see
// hdc.BitCounter). Both produce bit-identical hypervectors; the cell's
// TrainTime is the wall time to encode the whole dataset.
func RunBackendComparison(graphCount int, seed uint64) ([]AblationCell, error) {
	ds, err := dataset.Generate("PROTEINS", dataset.Options{Seed: seed, GraphCount: graphCount})
	if err != nil {
		return nil, err
	}
	const dim = 10000
	rng := hdc.NewRNG(seed)
	var bipolarBasis []*hdc.Bipolar
	var packedBasis []*hdc.Binary
	basisFor := func(rank int) int {
		for rank >= len(bipolarBasis) {
			v := hdc.RandomBipolar(dim, rng)
			bipolarBasis = append(bipolarBasis, v)
			packedBasis = append(packedBasis, v.PackBinary())
		}
		return rank
	}
	tie := hdc.RandomBipolar(dim, hdc.NewRNG(seed^0x7e))
	allRanks := make([][]int, ds.Len())
	for i, g := range ds.Graphs {
		allRanks[i] = rankCache(g)
		basisFor(g.NumVertices())
	}

	// Reference int8 path.
	t0 := time.Now()
	for i, g := range ds.Graphs {
		acc := hdc.NewAccumulator(dim)
		for _, e := range g.Edges() {
			acc.Add(bipolarBasis[allRanks[i][e.U]].Bind(bipolarBasis[allRanks[i][e.V]]))
		}
		acc.Sign(tie)
	}
	referenceTime := time.Since(t0)

	// Bit-sliced packed path (what core.Encoder runs in production): edge
	// binds batched through the blocked carry-save front end, as the
	// encoder's grouped edge loop does.
	t1 := time.Now()
	var pairs []hdc.XorPair
	for i, g := range ds.Graphs {
		counter := hdc.NewBitCounter(dim)
		pairs = pairs[:0]
		for _, e := range g.Edges() {
			pairs = append(pairs, hdc.XorPair{
				A: packedBasis[allRanks[i][e.U]], B: packedBasis[allRanks[i][e.V]], Invert: true,
			})
		}
		counter.AddXorPairs(pairs)
		counter.SignBipolar(tie)
	}
	packedTime := time.Since(t1)

	return []AblationCell{
		{Param: "backend", Value: "int8-reference", TrainTime: referenceTime},
		{Param: "backend", Value: "bit-sliced", TrainTime: packedTime},
	}, nil
}

// rankCache computes PageRank ranks with the same settings the bipolar
// encoder uses, keeping the two backend measurements symmetric.
func rankCache(g *graph.Graph) []int {
	return pagerank.Ranks(g, pagerank.Options{})
}

// WriteAblation renders ablation cells as a table.
func WriteAblation(w io.Writer, title string, cells []AblationCell) {
	fmt.Fprintf(w, "== %s ==\n", title)
	fmt.Fprintf(w, "%-16s %-12s %10s %14s\n", "Param", "Value", "Accuracy", "TrainTime")
	for _, c := range cells {
		fmt.Fprintf(w, "%-16s %-12s %10.3f %14s\n", c.Param, c.Value, c.Accuracy, c.TrainTime.Round(time.Microsecond))
	}
}
