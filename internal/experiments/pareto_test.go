package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"graphhd/internal/dataset"
)

// TestRunParetoQuickSmoke runs the sweep small: every dataset contributes
// one point per prefix width plus a full-dimension baseline and a
// calibrated cascade, internally consistent and JSON-serializable.
func TestRunParetoQuickSmoke(t *testing.T) {
	opts := ParetoOptions{
		Seed:       3,
		GraphCount: 24,
		FullDim:    1024,
		PrefixDims: []int{128, 256},
	}
	pts, err := RunPareto(opts)
	if err != nil {
		t.Fatal(err)
	}
	perDataset := len(opts.PrefixDims) + 2 // prefixes + full + cascade
	if want := len(dataset.Names()) * perDataset; len(pts) != want {
		t.Fatalf("%d points, want %d", len(pts), want)
	}
	for _, p := range pts {
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Fatalf("%s/%s: accuracy %f out of range", p.Dataset, p.Mode, p.Accuracy)
		}
		if p.MicrosPerGraph < 0 || p.TestGraphs <= 0 || p.FullDim != opts.FullDim {
			t.Fatalf("inconsistent point %+v", p)
		}
		switch p.Mode {
		case "prefix":
			if p.Dim >= opts.FullDim {
				t.Fatalf("prefix point at dim %d", p.Dim)
			}
		case "full":
			if p.Dim != opts.FullDim {
				t.Fatalf("full point at dim %d", p.Dim)
			}
		case "cascade":
			if p.Dim != opts.PrefixDims[0] {
				t.Fatalf("cascade stage-1 dim %d, want %d", p.Dim, opts.PrefixDims[0])
			}
			if p.Stage1HitRate < 0 || p.Stage1HitRate > 1 || p.Escalations > p.TestGraphs {
				t.Fatalf("inconsistent cascade point %+v", p)
			}
		default:
			t.Fatalf("unknown mode %q", p.Mode)
		}
	}

	var buf bytes.Buffer
	if err := WriteParetoJSON(&buf, pts); err != nil {
		t.Fatal(err)
	}
	var back []ParetoPoint
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(pts) {
		t.Fatalf("round-trip lost points: %d != %d", len(back), len(pts))
	}

	buf.Reset()
	WritePareto(&buf, pts)
	if !strings.Contains(buf.String(), "cascade") {
		t.Fatal("table output missing cascade rows")
	}
}
