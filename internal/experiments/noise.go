package experiments

import (
	"fmt"

	"graphhd/internal/core"
	"graphhd/internal/dataset"
	"graphhd/internal/eval"
	"graphhd/internal/hdc"
)

// This file implements the noise-robustness experiment (A6 in DESIGN.md).
// The paper claims HDC models are "inherently more robust to noise"
// because information is stored holographically: every component carries
// the same amount of information, so random component corruption (e.g.
// faulty memory cells on an embedded device) degrades accuracy gracefully
// instead of catastrophically. The experiment trains GraphHD, then flips a
// growing fraction of components in both the stored class vectors and the
// query hypervectors, and measures accuracy at each corruption level.

// NoiseCell is one corruption-level measurement.
type NoiseCell struct {
	FlipFraction float64
	Accuracy     float64
}

// flipFraction returns a copy of v with a deterministic random fraction of
// components negated.
func flipFraction(v *hdc.Bipolar, fraction float64, rng *hdc.RNG) *hdc.Bipolar {
	d := v.Dim()
	flips := int(fraction * float64(d))
	comps := make([]int8, d)
	for i := 0; i < d; i++ {
		comps[i] = v.At(i)
	}
	for _, idx := range rng.Perm(d)[:flips] {
		comps[idx] = -comps[idx]
	}
	out, err := hdc.FromComponents(comps)
	if err != nil {
		panic(err)
	}
	return out
}

// RunNoiseRobustness trains GraphHD on a MUTAG-like dataset and evaluates
// test accuracy while flipping the given fractions of hypervector
// components in both the class vectors and the query encodings.
func RunNoiseRobustness(fractions []float64, graphCount int, seed uint64) ([]NoiseCell, error) {
	if fractions == nil {
		fractions = []float64{0, 0.05, 0.1, 0.2, 0.3, 0.4, 0.45}
	}
	ds, err := dataset.Generate("MUTAG", dataset.Options{Seed: seed, GraphCount: graphCount})
	if err != nil {
		return nil, err
	}
	folds, err := eval.StratifiedKFold(ds.Labels, 5, seed)
	if err != nil {
		return nil, err
	}
	var trainIdx []int
	for _, f := range folds[1:] {
		trainIdx = append(trainIdx, f...)
	}
	train := ds.Subset(trainIdx)
	test := ds.Subset(folds[0])

	cfg := core.DefaultConfig() // full 10,000 dimensions: the robustness regime
	cfg.Seed = seed
	model, err := core.Train(cfg, train.Graphs, train.Labels)
	if err != nil {
		return nil, err
	}
	enc := model.Encoder()

	// Clean class vectors and query encodings, corrupted per level below.
	classVecs := make([]*hdc.Bipolar, model.NumClasses())
	for c := range classVecs {
		classVecs[c] = model.ClassVector(c)
	}
	queries := make([]*hdc.Bipolar, test.Len())
	for i, g := range test.Graphs {
		queries[i] = enc.EncodeGraph(g)
	}

	rng := hdc.NewRNG(seed ^ 0x0153)
	var cells []NoiseCell
	for _, p := range fractions {
		if p < 0 || p >= 0.5 {
			return nil, fmt.Errorf("experiments: flip fraction %v outside [0, 0.5)", p)
		}
		corrupted := make([]*hdc.Bipolar, len(classVecs))
		for c, cv := range classVecs {
			corrupted[c] = flipFraction(cv, p, rng)
		}
		good := 0
		for i, q := range queries {
			nq := flipFraction(q, p, rng)
			best, bestSim := 0, -2.0
			for c, cv := range corrupted {
				if s := nq.Cosine(cv); s > bestSim {
					best, bestSim = c, s
				}
			}
			if best == test.Labels[i] {
				good++
			}
		}
		cells = append(cells, NoiseCell{FlipFraction: p, Accuracy: float64(good) / float64(len(queries))})
	}
	return cells, nil
}

// WriteNoise renders the robustness curve.
func WriteNoise(w interface{ Write([]byte) (int, error) }, cells []NoiseCell) {
	fmt.Fprintf(w, "== Noise robustness: accuracy vs flipped component fraction ==\n")
	fmt.Fprintf(w, "%-10s %10s\n", "FlipFrac", "Accuracy")
	for _, c := range cells {
		fmt.Fprintf(w, "%-10.2f %10.3f\n", c.FlipFraction, c.Accuracy)
	}
}
