// Package wl implements the Weisfeiler-Leman label-refinement machinery
// and the two kernel baselines the paper compares against: the WL subtree
// kernel (1-WL, Shervashidze et al. 2011) and the WL optimal-assignment
// kernel (WL-OA, Kriege et al. 2016).
package wl

import (
	"math"
	"sort"

	"graphhd/internal/graph"
)

// Refinement holds the result of h iterations of WL color refinement on
// one graph: for every iteration 0..h, the multiset of compressed labels,
// as a sparse count map keyed by global label id. Label ids are assigned
// by the shared Relabeler, so counts are directly comparable across graphs.
type Refinement struct {
	// Counts[it][label] is the number of vertices carrying the label at
	// iteration it.
	Counts []map[int]int
	// VertexLabels[it][v] is vertex v's compressed label at iteration it;
	// populated only when Options.KeepVertexLabels is set (used by the
	// exact optimal-assignment cross-check).
	VertexLabels [][]int
}

// TotalFeatures returns the summed count over all iterations (equals
// (h+1) * |V|).
func (r *Refinement) TotalFeatures() int {
	total := 0
	for _, m := range r.Counts {
		for _, c := range m {
			total += c
		}
	}
	return total
}

// Relabeler assigns consistent global ids to WL labels across an entire
// dataset. The WL algorithm compresses (oldLabel, sorted neighbor labels)
// signatures to fresh integer labels; sharing the table across graphs is
// what makes the per-graph feature vectors live in one space.
//
// Relabeler is not safe for concurrent use; refine a dataset from one
// goroutine (refinement is cheap relative to the SVM that follows).
type Relabeler struct {
	table map[string]int
	next  int
}

// NewRelabeler returns an empty label-compression table.
func NewRelabeler() *Relabeler {
	return &Relabeler{table: make(map[string]int)}
}

// NumLabels returns the number of distinct compressed labels seen so far.
func (r *Relabeler) NumLabels() int { return r.next }

func (r *Relabeler) id(sig string) int {
	if v, ok := r.table[sig]; ok {
		return v
	}
	v := r.next
	r.table[sig] = v
	r.next = v + 1
	return v
}

// signature serializes (own label, sorted neighbor labels) compactly.
// A length-prefixed varint-ish byte encoding avoids both allocation-heavy
// fmt and ambiguity between e.g. (1, [23]) and (12, [3]).
func signature(own int, neigh []int) string {
	buf := make([]byte, 0, 4*(len(neigh)+1))
	buf = appendUvarint(buf, uint64(own))
	for _, n := range neigh {
		buf = appendUvarint(buf, uint64(n))
	}
	return string(buf)
}

func appendUvarint(buf []byte, v uint64) []byte {
	for v >= 0x80 {
		buf = append(buf, byte(v)|0x80)
		v >>= 7
	}
	return append(buf, byte(v))
}

// Options configures WL refinement.
type Options struct {
	// Iterations h: the feature space covers iterations 0..h. The paper's
	// grid searches h ∈ {0..5}.
	Iterations int
	// UseVertexLabels seeds iteration 0 from the graphs' categorical
	// vertex labels. The paper's protocol restricts kernels from using
	// labels, so this defaults to false and iteration 0 starts uniform.
	UseVertexLabels bool
	// KeepVertexLabels stores the per-vertex label history on each
	// Refinement (memory O(iterations × |V|) per graph).
	KeepVertexLabels bool
}

// Refine runs WL color refinement on every graph, sharing one compression
// table, and returns per-graph refinements.
func Refine(graphs []*graph.Graph, opts Options) []*Refinement {
	rl := NewRelabeler()
	out := make([]*Refinement, len(graphs))
	// Per-graph current labels, updated iteration by iteration; all graphs
	// advance together so the compression table is iteration-consistent.
	cur := make([][]int, len(graphs))
	for gi, g := range graphs {
		n := g.NumVertices()
		labels := make([]int, n)
		for v := 0; v < n; v++ {
			var sig string
			if opts.UseVertexLabels && g.Labeled() {
				sig = signature(0, []int{g.VertexLabel(v) + 1<<20}) // offset avoids clashing with refined ids
			} else {
				sig = signature(0, nil)
			}
			labels[v] = rl.id(sig)
		}
		cur[gi] = labels
		out[gi] = &Refinement{Counts: make([]map[int]int, opts.Iterations+1)}
		out[gi].Counts[0] = countLabels(labels)
		if opts.KeepVertexLabels {
			out[gi].VertexLabels = make([][]int, opts.Iterations+1)
			out[gi].VertexLabels[0] = append([]int(nil), labels...)
		}
	}
	neighBuf := make([]int, 0, 64)
	for it := 1; it <= opts.Iterations; it++ {
		for gi, g := range graphs {
			n := g.NumVertices()
			next := make([]int, n)
			for v := 0; v < n; v++ {
				neighBuf = neighBuf[:0]
				for _, w := range g.Neighbors(v) {
					neighBuf = append(neighBuf, cur[gi][w])
				}
				sort.Ints(neighBuf)
				next[v] = rl.id(signature(cur[gi][v], neighBuf))
			}
			cur[gi] = next
			out[gi].Counts[it] = countLabels(next)
			if opts.KeepVertexLabels {
				out[gi].VertexLabels[it] = append([]int(nil), next...)
			}
		}
	}
	return out
}

func countLabels(labels []int) map[int]int {
	m := make(map[int]int, len(labels))
	for _, l := range labels {
		m[l]++
	}
	return m
}

// SubtreeKernel computes the 1-WL subtree kernel value between two
// refinements: the dot product of their label-count feature vectors summed
// over all iterations.
func SubtreeKernel(a, b *Refinement) float64 {
	k := 0.0
	for it := range a.Counts {
		if it >= len(b.Counts) {
			break
		}
		ca, cb := a.Counts[it], b.Counts[it]
		if len(cb) < len(ca) {
			ca, cb = cb, ca
		}
		for l, na := range ca {
			if nb, ok := cb[l]; ok {
				k += float64(na) * float64(nb)
			}
		}
	}
	return k
}

// OptimalAssignmentKernel computes the WL-OA kernel value between two
// refinements. For the hierarchy induced by WL refinement, the optimal
// assignment under the associated strong kernel equals the histogram
// intersection of the label counts summed over all iterations
// (Kriege et al. 2016, Theorem 4.2 applied to the WL hierarchy).
func OptimalAssignmentKernel(a, b *Refinement) float64 {
	k := 0.0
	for it := range a.Counts {
		if it >= len(b.Counts) {
			break
		}
		ca, cb := a.Counts[it], b.Counts[it]
		if len(cb) < len(ca) {
			ca, cb = cb, ca
		}
		for l, na := range ca {
			if nb, ok := cb[l]; ok {
				if na < nb {
					k += float64(na)
				} else {
					k += float64(nb)
				}
			}
		}
	}
	return k
}

// KernelFunc computes a kernel value between two refinements.
type KernelFunc func(a, b *Refinement) float64

// GramMatrix computes the full symmetric Gram matrix K[i][j] =
// kernel(refs[i], refs[j]).
func GramMatrix(refs []*Refinement, kernel KernelFunc) [][]float64 {
	n := len(refs)
	k := make([][]float64, n)
	for i := range k {
		k[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := kernel(refs[i], refs[j])
			k[i][j] = v
			k[j][i] = v
		}
	}
	return k
}

// CrossGram computes the rectangular matrix K[i][j] =
// kernel(rows[i], cols[j]) used to evaluate test samples against the
// training set.
func CrossGram(rows, cols []*Refinement, kernel KernelFunc) [][]float64 {
	out := make([][]float64, len(rows))
	for i, a := range rows {
		out[i] = make([]float64, len(cols))
		for j, b := range cols {
			out[i][j] = kernel(a, b)
		}
	}
	return out
}

// NormalizeGram scales a square Gram matrix in place to unit diagonal:
// K'[i][j] = K[i][j] / sqrt(K[i][i] K[j][j]). Entries whose diagonal is
// zero are left untouched. It returns the original diagonal for use with
// NormalizeCross.
func NormalizeGram(k [][]float64) []float64 {
	n := len(k)
	diag := make([]float64, n)
	for i := 0; i < n; i++ {
		diag[i] = k[i][i]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d := diag[i] * diag[j]
			if d > 0 {
				k[i][j] /= math.Sqrt(d)
			}
		}
	}
	return diag
}

// NormalizeCross scales a rectangular kernel matrix given the self-kernel
// values of its rows and columns.
func NormalizeCross(k [][]float64, rowSelf, colSelf []float64) {
	for i := range k {
		for j := range k[i] {
			d := rowSelf[i] * colSelf[j]
			if d > 0 {
				k[i][j] /= math.Sqrt(d)
			}
		}
	}
}

// SelfKernels returns kernel(r, r) for every refinement.
func SelfKernels(refs []*Refinement, kernel KernelFunc) []float64 {
	out := make([]float64, len(refs))
	for i, r := range refs {
		out[i] = kernel(r, r)
	}
	return out
}
