package wl

import (
	"math"
	"testing"
	"testing/quick"

	"graphhd/internal/assignment"
	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

func TestRefineIteration0Uniform(t *testing.T) {
	gs := []*graph.Graph{graph.Ring(5), graph.Path(4)}
	refs := Refine(gs, Options{Iterations: 0})
	// All vertices share one label at iteration 0.
	if len(refs[0].Counts[0]) != 1 || refs[0].Counts[0][0] != 5 {
		t.Fatalf("ring counts = %v", refs[0].Counts[0])
	}
	if refs[1].Counts[0][0] != 4 {
		t.Fatalf("path counts = %v", refs[1].Counts[0])
	}
}

func TestRefineFirstIterationIsDegree(t *testing.T) {
	// After one WL iteration from a uniform start, labels are exactly
	// vertex degrees (as equivalence classes).
	g := graph.Star(5) // degrees: 4,1,1,1,1
	refs := Refine([]*graph.Graph{g}, Options{Iterations: 1})
	c := refs[0].Counts[1]
	if len(c) != 2 {
		t.Fatalf("star should have 2 degree classes, got %v", c)
	}
	counts := []int{}
	for _, v := range c {
		counts = append(counts, v)
	}
	if !(counts[0] == 1 && counts[1] == 4 || counts[0] == 4 && counts[1] == 1) {
		t.Fatalf("star degree classes = %v", c)
	}
}

func TestRefineDistinguishesNonIsomorphic(t *testing.T) {
	// C6 vs two triangles: 1-WL famously cannot distinguish these
	// (both are 2-regular), so their refinements must be identical...
	c6 := graph.Ring(6)
	twoTri := graph.Disjoint(graph.Ring(3), graph.Ring(3))
	refs := Refine([]*graph.Graph{c6, twoTri}, Options{Iterations: 3})
	if SubtreeKernel(refs[0], refs[0]) != SubtreeKernel(refs[0], refs[1]) {
		t.Fatal("1-WL should NOT distinguish C6 from 2xC3")
	}
	// ...but a star vs a path of equal size must differ.
	refs2 := Refine([]*graph.Graph{graph.Star(5), graph.Path(5)}, Options{Iterations: 2})
	if SubtreeKernel(refs2[0], refs2[0]) == SubtreeKernel(refs2[0], refs2[1]) {
		t.Fatal("WL failed to distinguish star from path")
	}
}

func TestRefineIsomorphismInvariant(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		g := graph.ErdosRenyi(15, 0.2, rng)
		h := graph.Relabel(g, rng.Perm(15))
		refs := Refine([]*graph.Graph{g, h}, Options{Iterations: 3})
		// Isomorphic graphs have identical label-count multisets, so the
		// kernel cannot tell them apart from themselves.
		kgg := SubtreeKernel(refs[0], refs[0])
		kgh := SubtreeKernel(refs[0], refs[1])
		khh := SubtreeKernel(refs[1], refs[1])
		return kgg == kgh && kgh == khh
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRefineWithVertexLabels(t *testing.T) {
	mk := func(labels []int) *graph.Graph {
		b := graph.NewBuilder(3)
		b.MustAddEdge(0, 1)
		b.MustAddEdge(1, 2)
		if err := b.SetVertexLabels(labels); err != nil {
			t.Fatal(err)
		}
		return b.Build()
	}
	g1 := mk([]int{0, 0, 0})
	g2 := mk([]int{1, 1, 1})
	refs := Refine([]*graph.Graph{g1, g2}, Options{Iterations: 1, UseVertexLabels: true})
	if SubtreeKernel(refs[0], refs[1]) != 0 {
		t.Fatal("different uniform labels should share no features")
	}
	// Without label use, identical structure gives identical features.
	refsU := Refine([]*graph.Graph{g1, g2}, Options{Iterations: 1})
	if SubtreeKernel(refsU[0], refsU[0]) != SubtreeKernel(refsU[0], refsU[1]) {
		t.Fatal("unlabeled refinement should ignore labels")
	}
}

func TestSubtreeKernelSymmetric(t *testing.T) {
	rng := hdc.NewRNG(1)
	gs := []*graph.Graph{
		graph.ErdosRenyi(12, 0.3, rng),
		graph.BarabasiAlbert(12, 2, rng),
		graph.Ring(12),
	}
	refs := Refine(gs, Options{Iterations: 3})
	for i := range refs {
		for j := range refs {
			if SubtreeKernel(refs[i], refs[j]) != SubtreeKernel(refs[j], refs[i]) {
				t.Fatalf("subtree kernel asymmetric at (%d,%d)", i, j)
			}
			if OptimalAssignmentKernel(refs[i], refs[j]) != OptimalAssignmentKernel(refs[j], refs[i]) {
				t.Fatalf("OA kernel asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestOptimalAssignmentSelfValue(t *testing.T) {
	// k_OA(G, G) = sum over iterations of |V| = (h+1)|V|.
	g := graph.ErdosRenyi(10, 0.3, hdc.NewRNG(2))
	refs := Refine([]*graph.Graph{g}, Options{Iterations: 4})
	if got := OptimalAssignmentKernel(refs[0], refs[0]); got != float64(5*10) {
		t.Fatalf("self OA = %v, want 50", got)
	}
}

func TestOptimalAssignmentBounded(t *testing.T) {
	// Histogram intersection is bounded by the smaller self-value.
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		a := graph.ErdosRenyi(8+rng.Intn(8), 0.25, rng)
		b := graph.ErdosRenyi(8+rng.Intn(8), 0.25, rng)
		refs := Refine([]*graph.Graph{a, b}, Options{Iterations: 3})
		kab := OptimalAssignmentKernel(refs[0], refs[1])
		kaa := OptimalAssignmentKernel(refs[0], refs[0])
		kbb := OptimalAssignmentKernel(refs[1], refs[1])
		return kab <= kaa && kab <= kbb && kab >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSubtreeCauchySchwarz(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		a := graph.BarabasiAlbert(10+rng.Intn(10), 2, rng)
		b := graph.ErdosRenyi(10+rng.Intn(10), 0.2, rng)
		refs := Refine([]*graph.Graph{a, b}, Options{Iterations: 2})
		kab := SubtreeKernel(refs[0], refs[1])
		kaa := SubtreeKernel(refs[0], refs[0])
		kbb := SubtreeKernel(refs[1], refs[1])
		return kab*kab <= kaa*kbb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGramMatrixPSDish(t *testing.T) {
	// The subtree kernel is an explicit dot product, so the Gram matrix
	// must be positive semi-definite. Verify x^T K x >= 0 for random x.
	rng := hdc.NewRNG(3)
	gs := make([]*graph.Graph, 8)
	for i := range gs {
		gs[i] = graph.ErdosRenyi(10, 0.25, rng)
	}
	refs := Refine(gs, Options{Iterations: 2})
	k := GramMatrix(refs, SubtreeKernel)
	for trial := 0; trial < 20; trial++ {
		x := make([]float64, len(gs))
		for i := range x {
			x[i] = rng.Float64()*2 - 1
		}
		q := 0.0
		for i := range x {
			for j := range x {
				q += x[i] * k[i][j] * x[j]
			}
		}
		if q < -1e-6 {
			t.Fatalf("x^T K x = %v < 0", q)
		}
	}
}

func TestNormalizeGramUnitDiagonal(t *testing.T) {
	rng := hdc.NewRNG(4)
	gs := make([]*graph.Graph, 5)
	for i := range gs {
		gs[i] = graph.BarabasiAlbert(12, 2, rng)
	}
	refs := Refine(gs, Options{Iterations: 2})
	k := GramMatrix(refs, SubtreeKernel)
	NormalizeGram(k)
	for i := range k {
		if math.Abs(k[i][i]-1) > 1e-12 {
			t.Fatalf("diag[%d] = %v", i, k[i][i])
		}
		for j := range k {
			if k[i][j] < -1e-12 || k[i][j] > 1+1e-12 {
				t.Fatalf("normalized entry (%d,%d) = %v", i, j, k[i][j])
			}
		}
	}
}

func TestNormalizeCrossMatchesGram(t *testing.T) {
	rng := hdc.NewRNG(5)
	gs := make([]*graph.Graph, 6)
	for i := range gs {
		gs[i] = graph.ErdosRenyi(10, 0.3, rng)
	}
	refs := Refine(gs, Options{Iterations: 2})
	full := GramMatrix(refs, SubtreeKernel)
	NormalizeGram(full)

	rows, cols := refs[:2], refs[2:]
	cross := CrossGram(rows, cols, SubtreeKernel)
	NormalizeCross(cross, SelfKernels(rows, SubtreeKernel), SelfKernels(cols, SubtreeKernel))
	for i := 0; i < 2; i++ {
		for j := 0; j < 4; j++ {
			if math.Abs(cross[i][j]-full[i][j+2]) > 1e-12 {
				t.Fatalf("cross (%d,%d) = %v, full = %v", i, j, cross[i][j], full[i][j+2])
			}
		}
	}
}

func TestRelabelerStableIDs(t *testing.T) {
	rl := NewRelabeler()
	a := rl.id("x")
	b := rl.id("y")
	if rl.id("x") != a || rl.id("y") != b || rl.NumLabels() != 2 {
		t.Fatal("relabeler ids unstable")
	}
}

func TestSignatureUnambiguous(t *testing.T) {
	// (1, [23]) and (12, [3]) must produce different signatures, as must
	// orderings that a naive string join would conflate.
	if signature(1, []int{23}) == signature(12, []int{3}) {
		t.Fatal("signature ambiguity")
	}
	if signature(1, []int{2, 3}) == signature(1, []int{23}) {
		t.Fatal("signature ambiguity")
	}
	if signature(200, nil) == signature(72, []int{1}) {
		t.Fatal("signature ambiguity with multi-byte varints")
	}
}

func TestTotalFeatures(t *testing.T) {
	g := graph.Ring(7)
	refs := Refine([]*graph.Graph{g}, Options{Iterations: 3})
	if got := refs[0].TotalFeatures(); got != 4*7 {
		t.Fatalf("total features = %d, want 28", got)
	}
}

func TestEmptyGraphRefines(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	refs := Refine([]*graph.Graph{g}, Options{Iterations: 2})
	if SubtreeKernel(refs[0], refs[0]) != 0 {
		t.Fatal("empty graph self-kernel should be 0")
	}
}

func TestKeepVertexLabelsConsistentWithCounts(t *testing.T) {
	rng := hdc.NewRNG(9)
	gs := []*graph.Graph{graph.ErdosRenyi(12, 0.25, rng), graph.BarabasiAlbert(10, 2, rng)}
	refs := Refine(gs, Options{Iterations: 3, KeepVertexLabels: true})
	for gi, r := range refs {
		if len(r.VertexLabels) != 4 {
			t.Fatalf("graph %d: %d label levels", gi, len(r.VertexLabels))
		}
		for it, labels := range r.VertexLabels {
			counted := map[int]int{}
			for _, l := range labels {
				counted[l]++
			}
			if len(counted) != len(r.Counts[it]) {
				t.Fatalf("graph %d it %d: label sets differ", gi, it)
			}
			for l, c := range counted {
				if r.Counts[it][l] != c {
					t.Fatalf("graph %d it %d label %d: count %d vs %d", gi, it, l, c, r.Counts[it][l])
				}
			}
		}
	}
	// Without the option, histories are absent.
	plain := Refine(gs, Options{Iterations: 2})
	if plain[0].VertexLabels != nil {
		t.Fatal("unexpected vertex label history")
	}
}

// TestOptimalAssignmentMatchesHungarian is the ground-truth cross-check
// for the WL-OA shortcut: for the hierarchy-induced vertex kernel
// k(u,v) = #iterations where u and v share a WL label, the histogram
// intersection over all iterations must equal the true maximum-weight
// assignment value (Kriege et al. 2016, Theorem 4.2).
func TestOptimalAssignmentMatchesHungarian(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		a := graph.ErdosRenyi(4+rng.Intn(6), 0.3, rng)
		b := graph.ErdosRenyi(4+rng.Intn(6), 0.3, rng)
		h := 1 + rng.Intn(3)
		refs := Refine([]*graph.Graph{a, b}, Options{Iterations: h, KeepVertexLabels: true})
		ra, rb := refs[0], refs[1]

		// Exact: pairwise hierarchy kernel + Hungarian.
		na, nb := a.NumVertices(), b.NumVertices()
		w := make([][]float64, na)
		for u := 0; u < na; u++ {
			w[u] = make([]float64, nb)
			for v := 0; v < nb; v++ {
				shared := 0.0
				for it := 0; it <= h; it++ {
					if ra.VertexLabels[it][u] == rb.VertexLabels[it][v] {
						shared++
					}
				}
				w[u][v] = shared
			}
		}
		_, exact, err := assignment.MaxWeight(w)
		if err != nil {
			return false
		}
		return math.Abs(exact-OptimalAssignmentKernel(ra, rb)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
