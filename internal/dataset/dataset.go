// Package dataset synthesizes the six benchmark datasets of the paper's
// Table I. The real TUDataset files are not redistributable inside this
// offline repository, so each dataset is replaced by a generator
// calibrated to the published statistics (graph count, class count,
// average vertices, average edges) with class-dependent topology so that
// structure-only classifiers have real signal to learn — see the
// substitution table in DESIGN.md. Real TUDataset directories remain fully
// supported through graph.ReadTUDataset and are interchangeable with these
// generators everywhere in the repository.
package dataset

import (
	"fmt"
	"sort"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

// TableIStats records the statistics the paper reports for each dataset
// (Table I), used both for calibration tests and for the T1 experiment.
type TableIStats struct {
	Graphs      int
	Classes     int
	AvgVertices float64
	AvgEdges    float64
}

// PaperTableI is Table I of the paper, keyed by dataset name.
var PaperTableI = map[string]TableIStats{
	"DD":       {1178, 2, 284.32, 715.66},
	"ENZYMES":  {600, 6, 32.63, 62.14},
	"MUTAG":    {188, 2, 17.93, 19.79},
	"NCI1":     {4110, 2, 29.87, 32.3},
	"PROTEINS": {1113, 2, 39.06, 72.82},
	"PTC_FM":   {349, 2, 14.11, 14.48},
}

// Names returns the six benchmark dataset names in Table I order.
func Names() []string {
	names := make([]string, 0, len(PaperTableI))
	for n := range PaperTableI {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Options tunes generation.
type Options struct {
	// Seed fixes the generated dataset.
	Seed uint64
	// GraphCount overrides the paper's graph count when positive; used by
	// tests and quick benchmark modes to shrink datasets proportionally.
	GraphCount int
}

// Generate synthesizes the named dataset.
func Generate(name string, opts Options) (*graph.Dataset, error) {
	stats, ok := PaperTableI[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	count := stats.Graphs
	if opts.GraphCount > 0 {
		count = opts.GraphCount
	}
	rng := hdc.NewRNG(opts.Seed ^ nameSeed(name))
	ds := &graph.Dataset{Name: name}
	ds.ClassNames = make([]string, stats.Classes)
	for c := range ds.ClassNames {
		ds.ClassNames[c] = fmt.Sprintf("%d", c)
	}
	gen := generators[name]
	for i := 0; i < count; i++ {
		c := i % stats.Classes
		ds.Graphs = append(ds.Graphs, gen(c, rng))
		ds.Labels = append(ds.Labels, c)
	}
	return ds, ds.Validate()
}

// MustGenerate is Generate that panics on error, for benchmarks with
// compile-time-constant names.
func MustGenerate(name string, opts Options) *graph.Dataset {
	ds, err := Generate(name, opts)
	if err != nil {
		panic(err)
	}
	return ds
}

func nameSeed(name string) uint64 {
	var s uint64
	for _, b := range []byte(name) {
		s = s*131 + uint64(b)
	}
	return s
}

// generator builds one graph of class c.
type generator func(c int, rng *hdc.RNG) *graph.Graph

var generators = map[string]generator{
	"MUTAG":    genMUTAG,
	"NCI1":     genNCI1,
	"PTC_FM":   genPTCFM,
	"PROTEINS": genPROTEINS,
	"ENZYMES":  genENZYMES,
	"DD":       genDD,
}

// --- chemistry-flavoured datasets: motif chains -------------------------
//
// Molecule-like graphs are a path backbone with small ring/branch motifs.
// Classes differ in motif composition (e.g. aromatic six-rings vs
// saturated branches), the same kind of signal that separates mutagenic
// from non-mutagenic compounds.

// sampleMotifs draws n motifs from a cumulative distribution over types.
func sampleMotifs(n int, cdf []motifProb, rng *hdc.RNG) []graph.Motif {
	out := make([]graph.Motif, n)
	for i := range out {
		r := rng.Float64()
		out[i] = cdf[len(cdf)-1].m
		for _, mp := range cdf {
			if r < mp.p {
				out[i] = mp.m
				break
			}
		}
	}
	return out
}

type motifProb struct {
	p float64 // cumulative probability
	m graph.Motif
}

func genMUTAG(c int, rng *hdc.RNG) *graph.Graph {
	backbone := 8 + rng.Intn(6) // 8..13
	var cdf []motifProb
	if c == 0 {
		// "Mutagenic": aromatic rings dominate.
		cdf = []motifProb{{0.5, graph.MotifHexagon}, {0.8, graph.MotifPentagon}, {1, graph.MotifTriangle}}
	} else {
		cdf = []motifProb{{0.5, graph.MotifSquare}, {0.8, graph.MotifFusedSq}, {1, graph.MotifBranch}}
	}
	return graph.MotifChain(backbone, sampleMotifs(2, cdf, rng))
}

func genNCI1(c int, rng *hdc.RNG) *graph.Graph {
	backbone := 15 + rng.Intn(9) // 15..23
	var cdf []motifProb
	if c == 0 {
		cdf = []motifProb{{0.4, graph.MotifHexagon}, {0.7, graph.MotifBranch}, {1, graph.MotifTriangle}}
	} else {
		cdf = []motifProb{{0.4, graph.MotifSquare}, {0.7, graph.MotifBranch}, {1, graph.MotifPentagon}}
	}
	return graph.MotifChain(backbone, sampleMotifs(3, cdf, rng))
}

func genPTCFM(c int, rng *hdc.RNG) *graph.Graph {
	backbone := 7 + rng.Intn(5) // 7..11
	var cdf []motifProb
	if c == 0 {
		// Carcinogenic-like: ring motifs only (no leaves).
		cdf = []motifProb{{0.5, graph.MotifTriangle}, {0.8, graph.MotifPentagon}, {1, graph.MotifHexagon}}
	} else {
		// Leaf-heavy saturated compounds.
		cdf = []motifProb{{0.7, graph.MotifBranch}, {1, graph.MotifSquare}}
	}
	return graph.MotifChain(backbone, sampleMotifs(2, cdf, rng))
}

// --- protein-flavoured datasets: community structure ---------------------

// genPROTEINS contrasts modular graphs of small dense communities
// (class 0, "enzyme-like") with scale-free graphs of matched size and
// density (class 1). Matching the marginal statistics while differing in
// degree-distribution shape keeps the task non-trivial but learnable.
func genPROTEINS(c int, rng *hdc.RNG) *graph.Graph {
	scale := 0.75 + rng.Float64()*0.5 // ±25% size jitter
	if c == 0 {
		size := int(10*scale + 0.5)
		if size < 3 {
			size = 3
		}
		return graph.CommunityGraph([]int{size, size, size, size}, 0.35, 0.02, rng)
	}
	n := int(39*scale + 0.5)
	if n < 6 {
		n = 6
	}
	return graph.BarabasiAlbert(n, 2, rng)
}

// genENZYMES assigns one structural family per EC class.
func genENZYMES(c int, rng *hdc.RNG) *graph.Graph {
	scale := 0.75 + rng.Float64()*0.5
	n := int(33*scale + 0.5)
	if n < 8 {
		n = 8
	}
	switch c {
	case 0:
		return graph.ErdosRenyi(n, 0.118, rng)
	case 1:
		return graph.WattsStrogatz(n, 4, 0.1, rng)
	case 2:
		return graph.BarabasiAlbert(n, 2, rng)
	case 3:
		third := n / 3
		if third < 3 {
			third = 3
		}
		return graph.CommunityGraph([]int{third, third, third}, 0.33, 0.02, rng)
	case 4:
		return ringOfCliques(n/5, 5)
	default:
		rows := 4 + rng.Intn(3)
		cols := n / rows
		if cols < 2 {
			cols = 2
		}
		return graph.Grid(rows, cols)
	}
}

// ringOfCliques joins m s-cliques into a cycle with one bridge edge
// between consecutive cliques.
func ringOfCliques(m, s int) *graph.Graph {
	if m < 3 {
		m = 3
	}
	b := graph.NewBuilder(m * s)
	for ci := 0; ci < m; ci++ {
		base := ci * s
		for u := 0; u < s; u++ {
			for v := u + 1; v < s; v++ {
				b.MustAddEdge(base+u, base+v)
			}
		}
		nextBase := ((ci + 1) % m) * s
		b.MustAddEdge(base, nextBase+1)
	}
	return b.Build()
}

// genDD contrasts large modular graphs (class 0) with rings of 6-cliques
// (class 1) at matched size and density. The clique ring's rigid local
// structure is clearly separable from the softer community structure while
// both hit Table I's |V| ≈ 284, |E| ≈ 716.
func genDD(c int, rng *hdc.RNG) *graph.Graph {
	scale := 0.75 + rng.Float64()*0.5
	n := int(284*scale + 0.5)
	if c == 0 {
		comm := 8
		size := n / comm
		if size < 4 {
			size = 4
		}
		sizes := make([]int, comm)
		for i := range sizes {
			sizes[i] = size
		}
		return graph.CommunityGraph(sizes, 0.12, 0.004, rng)
	}
	return ringOfCliques(n/6, 6)
}

// --- Figure 4 scaling dataset --------------------------------------------

// Scaling builds the synthetic dataset of the paper's scalability
// experiment (Section V-B): `graphs` Erdős–Rényi graphs with n vertices
// each and edge probability 0.05, evenly split over 2 classes. The second
// class uses a slightly higher edge probability (0.06) so the task remains
// learnable without materially changing graph size, preserving the timing
// profile the experiment measures.
func Scaling(n, graphs int, seed uint64) *graph.Dataset {
	rng := hdc.NewRNG(seed ^ 0x5ca11e)
	ds := &graph.Dataset{
		Name:       fmt.Sprintf("ER-%d", n),
		ClassNames: []string{"0", "1"},
	}
	for i := 0; i < graphs; i++ {
		c := i % 2
		p := 0.05
		if c == 1 {
			p = 0.06
		}
		ds.Graphs = append(ds.Graphs, graph.ErdosRenyi(n, p, rng))
		ds.Labels = append(ds.Labels, c)
	}
	return ds
}

// ScalingSizes returns the vertex counts of the paper's Figure 4 sweep
// ("up to 980 vertices", log-spaced).
func ScalingSizes() []int {
	return []int{20, 40, 80, 160, 320, 640, 980}
}
