package dataset

import (
	"math"
	"testing"

	"graphhd/internal/core"
	"graphhd/internal/graph"
)

func TestNamesMatchTableI(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("names = %v", names)
	}
	want := []string{"DD", "ENZYMES", "MUTAG", "NCI1", "PROTEINS", "PTC_FM"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("names = %v, want %v", names, want)
		}
	}
}

func TestGenerateUnknownName(t *testing.T) {
	if _, err := Generate("NOPE", Options{}); err == nil {
		t.Fatal("expected unknown-dataset error")
	}
}

func TestGenerateRespectsGraphCountOverride(t *testing.T) {
	ds, err := Generate("MUTAG", Options{Seed: 1, GraphCount: 24})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 24 {
		t.Fatalf("len = %d", ds.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := MustGenerate("PTC_FM", Options{Seed: 5, GraphCount: 30})
	b := MustGenerate("PTC_FM", Options{Seed: 5, GraphCount: 30})
	for i := range a.Graphs {
		if a.Graphs[i].NumEdges() != b.Graphs[i].NumEdges() {
			t.Fatal("same seed produced different datasets")
		}
	}
	c := MustGenerate("PTC_FM", Options{Seed: 6, GraphCount: 30})
	same := true
	for i := range a.Graphs {
		if a.Graphs[i].NumEdges() != c.Graphs[i].NumEdges() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestGeneratedClassBalance(t *testing.T) {
	for _, name := range Names() {
		stats := PaperTableI[name]
		n := stats.Classes * 10
		ds := MustGenerate(name, Options{Seed: 2, GraphCount: n})
		st := graph.ComputeStats(ds)
		if st.Classes != stats.Classes {
			t.Fatalf("%s: classes = %d, want %d", name, st.Classes, stats.Classes)
		}
		for c, cnt := range st.PerClass {
			if cnt != 10 {
				t.Fatalf("%s: class %d has %d graphs, want 10", name, c, cnt)
			}
		}
	}
}

// TestCalibration verifies that the synthesized statistics land within a
// reasonable band of the paper's Table I values — the property the whole
// substitution argument rests on.
func TestCalibration(t *testing.T) {
	for _, name := range Names() {
		paper := PaperTableI[name]
		count := 200
		if paper.Graphs < count {
			count = paper.Graphs
		}
		ds := MustGenerate(name, Options{Seed: 3, GraphCount: count})
		st := graph.ComputeStats(ds)
		if rel := math.Abs(st.AvgVertices-paper.AvgVertices) / paper.AvgVertices; rel > 0.25 {
			t.Errorf("%s: avg vertices %.2f vs paper %.2f (%.0f%% off)", name, st.AvgVertices, paper.AvgVertices, rel*100)
		}
		if rel := math.Abs(st.AvgEdges-paper.AvgEdges) / paper.AvgEdges; rel > 0.30 {
			t.Errorf("%s: avg edges %.2f vs paper %.2f (%.0f%% off)", name, st.AvgEdges, paper.AvgEdges, rel*100)
		}
	}
}

func TestGeneratedGraphsAreSane(t *testing.T) {
	for _, name := range Names() {
		ds := MustGenerate(name, Options{Seed: 4, GraphCount: 2 * PaperTableI[name].Classes})
		for i, g := range ds.Graphs {
			if g.NumVertices() < 3 {
				t.Fatalf("%s graph %d has %d vertices", name, i, g.NumVertices())
			}
			if g.NumEdges() == 0 {
				t.Fatalf("%s graph %d has no edges", name, i)
			}
		}
	}
}

func TestRingOfCliques(t *testing.T) {
	g := ringOfCliques(4, 5)
	if g.NumVertices() != 20 {
		t.Fatalf("vertices = %d", g.NumVertices())
	}
	// 4 cliques of 10 edges + 4 bridges.
	if g.NumEdges() != 44 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	nc, _ := g.ConnectedComponents()
	if nc != 1 {
		t.Fatalf("components = %d", nc)
	}
	// Minimum size is clamped.
	small := ringOfCliques(1, 3)
	if small.NumVertices() != 9 {
		t.Fatalf("clamped vertices = %d", small.NumVertices())
	}
}

func TestScalingDataset(t *testing.T) {
	ds := Scaling(50, 100, 1)
	if ds.Len() != 100 || ds.NumClasses() != 2 {
		t.Fatalf("scaling dataset: %d graphs %d classes", ds.Len(), ds.NumClasses())
	}
	st := graph.ComputeStats(ds)
	if st.AvgVertices != 50 {
		t.Fatalf("avg vertices = %f", st.AvgVertices)
	}
	// Expected edges: p≈0.055 avg over classes * C(50,2) ≈ 67.
	if st.AvgEdges < 40 || st.AvgEdges > 100 {
		t.Fatalf("avg edges = %f", st.AvgEdges)
	}
	if st.PerClass[0] != 50 || st.PerClass[1] != 50 {
		t.Fatalf("class split = %v", st.PerClass)
	}
}

func TestScalingSizes(t *testing.T) {
	sizes := ScalingSizes()
	if sizes[0] != 20 || sizes[len(sizes)-1] != 980 {
		t.Fatalf("sizes = %v", sizes)
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i] <= sizes[i-1] {
			t.Fatalf("sizes not increasing: %v", sizes)
		}
	}
}

func TestTUDatasetRoundTripForSynthetic(t *testing.T) {
	// A synthesized dataset must survive the TU flat-file round trip, so
	// cmd/datagen output is loadable by cmd/graphhd.
	ds := MustGenerate("MUTAG", Options{Seed: 7, GraphCount: 12})
	dir := t.TempDir()
	if err := graph.WriteTUDataset(dir, ds); err != nil {
		t.Fatal(err)
	}
	got, err := graph.ReadTUDataset(dir, "MUTAG")
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != ds.Len() {
		t.Fatalf("round trip lost graphs: %d vs %d", got.Len(), ds.Len())
	}
	for i := range ds.Graphs {
		if got.Graphs[i].NumEdges() != ds.Graphs[i].NumEdges() {
			t.Fatalf("graph %d edges differ", i)
		}
	}
}

// TestAllDatasetsLearnable is the regression guard for the substitution
// argument: every synthetic benchmark must carry enough class signal for
// a structure-only classifier to beat chance by a wide margin. (An early
// version of PROTEINS/DD calibrated the classes onto nearly identical
// degree distributions, which silently made them unlearnable for every
// method — this test would have caught it.)
func TestAllDatasetsLearnable(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			stats := PaperTableI[name]
			count := stats.Classes * 150 // NCI1-like motif signal needs a few hundred samples
			ds := MustGenerate(name, Options{Seed: 77, GraphCount: count})
			cfg := core.DefaultConfig()
			cfg.Dimension = 2048
			// Generate emits classes round-robin (label = i % classes), so
			// holding out every 4th ROUND keeps both splits class-balanced.
			var trainG, testG []*graph.Graph
			var trainY, testY []int
			for i, g := range ds.Graphs {
				if (i/stats.Classes)%4 == 3 {
					testG = append(testG, g)
					testY = append(testY, ds.Labels[i])
				} else {
					trainG = append(trainG, g)
					trainY = append(trainY, ds.Labels[i])
				}
			}
			m, err := core.Train(cfg, trainG, trainY)
			if err != nil {
				t.Fatal(err)
			}
			preds := m.PredictAll(testG)
			correct := 0
			for i, p := range preds {
				if p == testY[i] {
					correct++
				}
			}
			acc := float64(correct) / float64(len(preds))
			chance := 1.0 / float64(stats.Classes)
			// chance+0.1 is deliberately permissive: NCI1's motif-mix
			// signal is the subtlest of the six (it is also GraphHD's
			// weakest dataset in the paper), but a dataset broken the way
			// early PROTEINS was sits AT chance, which this still catches.
			if acc < chance+0.1 {
				t.Errorf("%s: accuracy %.3f barely above chance %.3f — classes not separable", name, acc, chance)
			}
		})
	}
}
