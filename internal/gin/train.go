package gin

import (
	"fmt"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/nn"
)

// TrainResult reports what happened during training.
type TrainResult struct {
	Epochs    int
	FinalLoss float64
	// LossCurve holds the mean training loss per epoch.
	LossCurve []float64
}

// Train fits the model on the given graphs with the paper's schedule:
// mini-batches of cfg.BatchSize, Adam at cfg.LR, reduce-on-plateau
// scheduler (patience 5, decay 0.5, floor 1e-6). Training stops at
// cfg.MaxEpochs or earlier once the learning rate has hit its floor and
// the loss has stopped improving.
func (m *Model) Train(graphs []*graph.Graph, labels []int) (*TrainResult, error) {
	if len(graphs) == 0 {
		return nil, fmt.Errorf("gin: empty training set")
	}
	if len(graphs) != len(labels) {
		return nil, fmt.Errorf("gin: %d graphs but %d labels", len(graphs), len(labels))
	}
	for _, l := range labels {
		if l < 0 || l >= m.classes {
			return nil, fmt.Errorf("gin: label %d out of range [0,%d)", l, m.classes)
		}
	}
	opt := nn.NewAdam(m.params(), m.cfg.LR)
	sched := nn.NewPlateauScheduler(opt)
	rng := hdc.NewRNG(m.cfg.Seed ^ 0x747261696e)

	idx := make([]int, len(graphs))
	for i := range idx {
		idx[i] = i
	}
	res := &TrainResult{}
	stalled := 0
	for epoch := 0; epoch < m.cfg.MaxEpochs; epoch++ {
		perm := rng.Perm(len(idx))
		total := 0.0
		batches := 0
		for start := 0; start < len(perm); start += m.cfg.BatchSize {
			end := start + m.cfg.BatchSize
			if end > len(perm) {
				end = len(perm)
			}
			bg := make([]*graph.Graph, 0, end-start)
			bl := make([]int, 0, end-start)
			for _, i := range perm[start:end] {
				bg = append(bg, graphs[idx[i]])
				bl = append(bl, labels[idx[i]])
			}
			batch := NewBatch(bg, bl)
			logits, fc := m.Forward(batch, true)
			loss, dlogits := nn.SoftmaxCrossEntropy(logits, bl)
			m.Backward(fc, dlogits)
			opt.Step()
			total += loss
			batches++
		}
		epochLoss := total / float64(batches)
		res.LossCurve = append(res.LossCurve, epochLoss)
		res.Epochs = epoch + 1
		res.FinalLoss = epochLoss
		sched.Step(epochLoss)
		// Early stop: LR at floor and no improvement for a full patience
		// window — further epochs cannot change anything meaningfully.
		if sched.AtMinimum() {
			stalled++
			if stalled > sched.Patience {
				break
			}
		} else {
			stalled = 0
		}
	}
	return res, nil
}

// Predict classifies a single graph.
func (m *Model) Predict(g *graph.Graph) int {
	return m.PredictAll([]*graph.Graph{g})[0]
}

// PredictAll classifies a batch of graphs.
func (m *Model) PredictAll(graphs []*graph.Graph) []int {
	if len(graphs) == 0 {
		return nil
	}
	out := make([]int, 0, len(graphs))
	// Respect the configured batch size to bound peak memory on big sets.
	for start := 0; start < len(graphs); start += m.cfg.BatchSize {
		end := start + m.cfg.BatchSize
		if end > len(graphs) {
			end = len(graphs)
		}
		batch := NewBatch(graphs[start:end], nil)
		logits, _ := m.Forward(batch, false)
		out = append(out, nn.Argmax(logits)...)
	}
	return out
}
