// Package gin implements the paper's two graph-neural-network baselines:
// GIN-ε (Xu et al. 2019, "How powerful are graph neural networks?") and
// GIN-ε-JK (with jumping knowledge, Xu et al. 2018), in the fixed
// configuration of the paper's experiments: 1 GIN layer with 32 units,
// Adam at 0.01 with a reduce-on-plateau scheduler (patience 5, decay 0.5,
// floor 1e-6) and batch size 128.
//
// Because the protocol forbids vertex labels, node inputs are the
// uninformative constant feature 1; all signal comes from the topology via
// the sum aggregation.
package gin

import (
	"fmt"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/nn"
)

// Batch is a set of graphs merged into one disjoint node universe for
// vectorized message passing.
type Batch struct {
	NumNodes  int
	NumGraphs int
	// Node features, NumNodes × inDim.
	X *nn.Matrix
	// GraphID[v] is the index within the batch of the graph that node v
	// belongs to.
	GraphID []int
	// CSR adjacency over the merged node set.
	off []int32
	adj []int32
	// Labels[g] is the class of batch graph g (absent for inference).
	Labels []int
}

// NewBatch merges graphs into a batch with constant-1 node features.
// labels may be nil for inference batches.
func NewBatch(graphs []*graph.Graph, labels []int) *Batch {
	n := 0
	m := 0
	for _, g := range graphs {
		n += g.NumVertices()
		m += 2 * g.NumEdges()
	}
	b := &Batch{
		NumNodes:  n,
		NumGraphs: len(graphs),
		X:         nn.NewMatrix(n, 1),
		GraphID:   make([]int, n),
		off:       make([]int32, n+1),
		adj:       make([]int32, 0, m),
	}
	if labels != nil {
		b.Labels = append([]int(nil), labels...)
	}
	base := 0
	for gi, g := range graphs {
		for v := 0; v < g.NumVertices(); v++ {
			node := base + v
			b.GraphID[node] = gi
			b.X.Set(node, 0, 1)
			for _, w := range g.Neighbors(v) {
				b.adj = append(b.adj, int32(base)+w)
			}
			b.off[node+1] = int32(len(b.adj))
		}
		base += g.NumVertices()
	}
	return b
}

// aggregate computes A @ H over the batch adjacency (sum of neighbor
// embeddings). A is symmetric, so the same routine serves forward and
// backward passes.
func (b *Batch) aggregate(h *nn.Matrix) *nn.Matrix {
	out := nn.NewMatrix(h.Rows, h.Cols)
	for v := 0; v < b.NumNodes; v++ {
		orow := out.Row(v)
		for _, w := range b.adj[b.off[v]:b.off[v+1]] {
			hrow := h.Row(int(w))
			for j, hv := range hrow {
				orow[j] += hv
			}
		}
	}
	return out
}

// pool sums node embeddings per graph (sum readout).
func (b *Batch) pool(h *nn.Matrix) *nn.Matrix {
	out := nn.NewMatrix(b.NumGraphs, h.Cols)
	for v := 0; v < b.NumNodes; v++ {
		g := b.GraphID[v]
		orow := out.Row(g)
		for j, hv := range h.Row(v) {
			orow[j] += hv
		}
	}
	return out
}

// unpool broadcasts per-graph gradients back to nodes (the adjoint of
// pool).
func (b *Batch) unpool(dg *nn.Matrix) *nn.Matrix {
	out := nn.NewMatrix(b.NumNodes, dg.Cols)
	for v := 0; v < b.NumNodes; v++ {
		copy(out.Row(v), dg.Row(b.GraphID[v]))
	}
	return out
}

// layer is one GIN convolution: h' = MLP((1+ε) h + Σ_neighbors h) with a
// learnable scalar ε.
type layer struct {
	eps *nn.Param // 1×1
	mlp *nn.MLP
}

// Config selects the network shape and training schedule.
type Config struct {
	// Layers is the number of GIN convolutions (paper: 1).
	Layers int
	// Hidden is the embedding width (paper: 32).
	Hidden int
	// JumpingKnowledge concatenates the readouts of every layer including
	// the raw input (GIN-ε-JK); when false only the final layer's readout
	// feeds the classifier (GIN-ε).
	JumpingKnowledge bool
	// LR is Adam's initial learning rate (paper: 0.01).
	LR float64
	// BatchSize (paper: 128).
	BatchSize int
	// MaxEpochs caps training length (default 100).
	MaxEpochs int
	// Seed fixes initialization and batch shuffling.
	Seed uint64
}

// DefaultConfig returns the paper's fixed GIN-ε configuration.
func DefaultConfig() Config {
	return Config{Layers: 1, Hidden: 32, LR: 0.01, BatchSize: 128, MaxEpochs: 100, Seed: 1}
}

func (c Config) withDefaults() Config {
	if c.Layers == 0 {
		c.Layers = 1
	}
	if c.Hidden == 0 {
		c.Hidden = 32
	}
	if c.LR == 0 {
		c.LR = 0.01
	}
	if c.BatchSize == 0 {
		c.BatchSize = 128
	}
	if c.MaxEpochs == 0 {
		c.MaxEpochs = 100
	}
	return c
}

// Model is a GIN graph classifier.
type Model struct {
	cfg     Config
	classes int
	inDim   int
	layers  []*layer
	readout *nn.Linear
}

// NewModel builds an untrained model for the given number of classes.
func NewModel(classes int, cfg Config) (*Model, error) {
	if classes < 2 {
		return nil, fmt.Errorf("gin: need at least 2 classes, got %d", classes)
	}
	cfg = cfg.withDefaults()
	if cfg.Layers < 1 {
		return nil, fmt.Errorf("gin: need at least 1 layer")
	}
	rng := hdc.NewRNG(cfg.Seed ^ 0x67696e)
	m := &Model{cfg: cfg, classes: classes, inDim: 1}
	in := m.inDim
	for l := 0; l < cfg.Layers; l++ {
		m.layers = append(m.layers, &layer{
			eps: nn.NewParam(1, 1),
			mlp: nn.NewMLP(in, cfg.Hidden, cfg.Hidden, rng),
		})
		in = cfg.Hidden
	}
	rd := cfg.Hidden
	if cfg.JumpingKnowledge {
		rd = m.inDim + cfg.Layers*cfg.Hidden
	}
	m.readout = nn.NewLinear(rd, classes, rng)
	return m, nil
}

// Config returns the model configuration (with defaults applied).
func (m *Model) Config() Config { return m.cfg }

// NumClasses returns the class count.
func (m *Model) NumClasses() int { return m.classes }

// params returns every trainable parameter.
func (m *Model) params() []*nn.Param {
	var ps []*nn.Param
	for _, l := range m.layers {
		ps = append(ps, l.eps)
		ps = append(ps, l.mlp.Params()...)
	}
	ps = append(ps, m.readout.Params()...)
	return ps
}

// NumParams returns the total number of scalar parameters.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.params() {
		n += len(p.W.Data)
	}
	return n
}

// forwardCache keeps every intermediate needed by backward.
type forwardCache struct {
	batch  *Batch
	hs     []*nn.Matrix // hs[0] = X, hs[l+1] = output of layer l
	ss     []*nn.Matrix // pre-MLP aggregates per layer
	mlpCs  []*nn.MLPCache
	pooled *nn.Matrix // classifier input
}

// Forward computes class logits for a batch and a cache for Backward.
// training selects batch-normalization mode; Backward requires a
// training-mode cache.
func (m *Model) Forward(b *Batch, training bool) (*nn.Matrix, *forwardCache) {
	fc := &forwardCache{batch: b}
	h := b.X
	fc.hs = append(fc.hs, h)
	for _, l := range m.layers {
		agg := b.aggregate(h)
		s := h.Clone()
		s.Scale(1 + l.eps.W.Data[0])
		s.AddInPlace(agg)
		fc.ss = append(fc.ss, s)
		out, cache := l.mlp.Forward(s, training)
		fc.mlpCs = append(fc.mlpCs, cache)
		h = out
		fc.hs = append(fc.hs, h)
	}
	var pooled *nn.Matrix
	if m.cfg.JumpingKnowledge {
		pooled = nn.NewMatrix(b.NumGraphs, m.readout.In)
		col := 0
		for _, h := range fc.hs {
			p := b.pool(h)
			for g := 0; g < b.NumGraphs; g++ {
				copy(pooled.Row(g)[col:col+p.Cols], p.Row(g))
			}
			col += p.Cols
		}
	} else {
		pooled = b.pool(fc.hs[len(fc.hs)-1])
	}
	fc.pooled = pooled
	return m.readout.Forward(pooled), fc
}

// Backward accumulates gradients for one batch given dL/dlogits.
func (m *Model) Backward(fc *forwardCache, dlogits *nn.Matrix) {
	b := fc.batch
	dpooled := m.readout.Backward(fc.pooled, dlogits)

	// Distribute the pooled gradient back to per-layer node gradients.
	dhs := make([]*nn.Matrix, len(fc.hs))
	if m.cfg.JumpingKnowledge {
		col := 0
		for li, h := range fc.hs {
			slice := nn.NewMatrix(b.NumGraphs, h.Cols)
			for g := 0; g < b.NumGraphs; g++ {
				copy(slice.Row(g), dpooled.Row(g)[col:col+h.Cols])
			}
			col += h.Cols
			dhs[li] = b.unpool(slice)
		}
	} else {
		for li := range dhs {
			dhs[li] = nn.NewMatrix(b.NumNodes, fc.hs[li].Cols)
		}
		dhs[len(dhs)-1] = b.unpool(dpooled)
	}

	// Walk layers backwards, adding the chain gradient into the direct
	// (readout) gradient of each earlier representation.
	for li := len(m.layers) - 1; li >= 0; li-- {
		l := m.layers[li]
		ds := l.mlp.Backward(fc.mlpCs[li], dhs[li+1])
		// dS flows to h (previous layer representation):
		// dH = (1+eps) dS + A dS ; deps = <dS, H>.
		hPrev := fc.hs[li]
		eps := l.eps.W.Data[0]
		depsSum := 0.0
		for i, v := range ds.Data {
			depsSum += v * hPrev.Data[i]
		}
		l.eps.G.Data[0] += depsSum
		through := ds.Clone()
		through.Scale(1 + eps)
		through.AddInPlace(b.aggregate(ds))
		dhs[li].AddInPlace(through)
	}
}
