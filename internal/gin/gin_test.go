package gin

import (
	"math"
	"testing"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
	"graphhd/internal/nn"
)

func TestNewBatchLayout(t *testing.T) {
	gs := []*graph.Graph{graph.Ring(3), graph.Path(4)}
	b := NewBatch(gs, []int{0, 1})
	if b.NumNodes != 7 || b.NumGraphs != 2 {
		t.Fatalf("batch = %+v", b)
	}
	want := []int{0, 0, 0, 1, 1, 1, 1}
	for v, g := range b.GraphID {
		if g != want[v] {
			t.Fatalf("graph id of node %d = %d", v, g)
		}
	}
	// Ring node 0 has neighbors 1 and 2; path node 3 (local 0) has
	// neighbor 4 (local 1).
	n0 := b.adj[b.off[0]:b.off[1]]
	if len(n0) != 2 {
		t.Fatalf("node 0 neighbors = %v", n0)
	}
	n3 := b.adj[b.off[3]:b.off[4]]
	if len(n3) != 1 || n3[0] != 4 {
		t.Fatalf("node 3 neighbors = %v", n3)
	}
	for v := 0; v < b.NumNodes; v++ {
		if b.X.At(v, 0) != 1 {
			t.Fatal("node features must be constant 1")
		}
	}
}

func TestAggregateIsNeighborSum(t *testing.T) {
	b := NewBatch([]*graph.Graph{graph.Star(4)}, nil)
	h := nn.NewMatrix(4, 1)
	for v := 0; v < 4; v++ {
		h.Set(v, 0, float64(v+1)) // hub=1, leaves 2,3,4
	}
	agg := b.aggregate(h)
	if agg.At(0, 0) != 9 { // 2+3+4
		t.Fatalf("hub aggregate = %v", agg.At(0, 0))
	}
	for v := 1; v < 4; v++ {
		if agg.At(v, 0) != 1 {
			t.Fatalf("leaf %d aggregate = %v", v, agg.At(v, 0))
		}
	}
}

func TestPoolUnpoolAdjoint(t *testing.T) {
	// <pool(h), g> must equal <h, unpool(g)> — the defining adjoint
	// property that makes the backward pass correct.
	rng := hdc.NewRNG(1)
	b := NewBatch([]*graph.Graph{graph.Ring(3), graph.Star(5)}, nil)
	h := nn.NewMatrix(b.NumNodes, 3)
	for i := range h.Data {
		h.Data[i] = rng.Float64()
	}
	g := nn.NewMatrix(b.NumGraphs, 3)
	for i := range g.Data {
		g.Data[i] = rng.Float64()
	}
	ph := b.pool(h)
	ug := b.unpool(g)
	lhs, rhs := 0.0, 0.0
	for i := range ph.Data {
		lhs += ph.Data[i] * g.Data[i]
	}
	for i := range h.Data {
		rhs += h.Data[i] * ug.Data[i]
	}
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Fatalf("adjoint mismatch %v vs %v", lhs, rhs)
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(1, DefaultConfig()); err == nil {
		t.Fatal("expected class count error")
	}
	cfg := DefaultConfig()
	cfg.Layers = -1
	if _, err := NewModel(2, cfg); err == nil {
		t.Fatal("expected layer count error")
	}
}

func TestNumParamsMatchesArchitecture(t *testing.T) {
	m, err := NewModel(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// eps(1) + L1(1*32+32) + BN(32+32) + L2(32*32+32) + readout(32*2+2)
	want := 1 + (1*32 + 32) + (32 + 32) + (32*32 + 32) + (32*2 + 2)
	if m.NumParams() != want {
		t.Fatalf("params = %d, want %d", m.NumParams(), want)
	}
	cfgJK := DefaultConfig()
	cfgJK.JumpingKnowledge = true
	mjk, err := NewModel(2, cfgJK)
	if err != nil {
		t.Fatal(err)
	}
	wantJK := 1 + (1*32 + 32) + (32 + 32) + (32*32 + 32) + (33*2 + 2)
	if mjk.NumParams() != wantJK {
		t.Fatalf("JK params = %d, want %d", mjk.NumParams(), wantJK)
	}
}

// numericCheckModel verifies the full GIN backward pass against central
// differences on a tiny network.
func TestModelBackwardNumeric(t *testing.T) {
	for _, jk := range []bool{false, true} {
		// Width 6 keeps central differences fast while making an all-dead
		// hidden ReLU layer (probability 2^-width per layer on the scalar
		// input) vanishingly unlikely; liveness is asserted below anyway.
		cfg := Config{Layers: 2, Hidden: 6, JumpingKnowledge: jk, LR: 0.01, BatchSize: 4, MaxEpochs: 1, Seed: 5}
		m, err := NewModel(2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gs := []*graph.Graph{graph.Ring(4), graph.Star(4)}
		labels := []int{0, 1}
		batch := NewBatch(gs, labels)
		if _, fc0 := m.Forward(batch, true); fc0.hs[1].MaxAbs() == 0 || fc0.hs[2].MaxAbs() == 0 {
			t.Fatal("test network is dead; pick another seed")
		}
		loss := func() float64 {
			logits, _ := m.Forward(batch, true)
			v, _ := nn.SoftmaxCrossEntropy(logits, labels)
			return v
		}
		logits, fc := m.Forward(batch, true)
		_, dlogits := nn.SoftmaxCrossEntropy(logits, labels)
		for _, p := range m.params() {
			p.ZeroGrad()
		}
		m.Backward(fc, dlogits)
		for pi, p := range m.params() {
			for i := range p.W.Data {
				want := numericGrad(loss, &p.W.Data[i])
				if math.Abs(want-p.G.Data[i]) > 1e-4 {
					t.Fatalf("jk=%v param %d[%d]: grad %v, numeric %v", jk, pi, i, p.G.Data[i], want)
				}
			}
		}
	}
}

func numericGrad(f func() float64, p *float64) float64 {
	const h = 1e-6
	old := *p
	*p = old + h
	lp := f()
	*p = old - h
	lm := f()
	*p = old
	return (lp - lm) / (2 * h)
}

// separableGraphs builds an easy 2-class problem GIN can fit: dense ER vs
// sparse ER (sum-pooled constant features expose vertex and edge counts).
func separableGraphs(n int, seed uint64) ([]*graph.Graph, []int) {
	rng := hdc.NewRNG(seed)
	var gs []*graph.Graph
	var ys []int
	for i := 0; i < n; i++ {
		gs = append(gs, graph.ErdosRenyi(15, 0.1, rng))
		ys = append(ys, 0)
		gs = append(gs, graph.ErdosRenyi(15, 0.5, rng))
		ys = append(ys, 1)
	}
	return gs, ys
}

func TestTrainLearnsSeparableProblem(t *testing.T) {
	for _, jk := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.JumpingKnowledge = jk
		cfg.MaxEpochs = 60
		m, err := NewModel(2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		gs, ys := separableGraphs(30, 4)
		res, err := m.Train(gs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if res.Epochs == 0 || len(res.LossCurve) != res.Epochs {
			t.Fatalf("jk=%v result = %+v", jk, res)
		}
		testG, testY := separableGraphs(10, 44)
		preds := m.PredictAll(testG)
		correct := 0
		for i := range preds {
			if preds[i] == testY[i] {
				correct++
			}
		}
		if acc := float64(correct) / float64(len(testY)); acc < 0.9 {
			t.Fatalf("jk=%v accuracy = %f", jk, acc)
		}
	}
}

func TestTrainLossDecreases(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEpochs = 30
	m, err := NewModel(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs, ys := separableGraphs(20, 5)
	res, err := m.Train(gs, ys)
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.LossCurve[0], res.FinalLoss
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

func TestTrainValidation(t *testing.T) {
	m, err := NewModel(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(nil, nil); err == nil {
		t.Fatal("expected empty-set error")
	}
	if _, err := m.Train([]*graph.Graph{graph.Ring(3)}, []int{0, 1}); err == nil {
		t.Fatal("expected mismatch error")
	}
	if _, err := m.Train([]*graph.Graph{graph.Ring(3)}, []int{5}); err == nil {
		t.Fatal("expected label range error")
	}
}

func TestPredictSingleMatchesBatch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxEpochs = 10
	m, err := NewModel(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gs, ys := separableGraphs(10, 6)
	if _, err := m.Train(gs, ys); err != nil {
		t.Fatal(err)
	}
	batch := m.PredictAll(gs)
	for i, g := range gs {
		if m.Predict(g) != batch[i] {
			t.Fatalf("single/batch prediction mismatch at %d", i)
		}
	}
}

func TestPredictAllEmpty(t *testing.T) {
	m, err := NewModel(2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if out := m.PredictAll(nil); out != nil {
		t.Fatalf("predictions for empty input: %v", out)
	}
}

func TestTrainDeterministic(t *testing.T) {
	gs, ys := separableGraphs(10, 7)
	run := func() []int {
		cfg := DefaultConfig()
		cfg.MaxEpochs = 10
		cfg.Seed = 42
		m, err := NewModel(2, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Train(gs, ys); err != nil {
			t.Fatal(err)
		}
		return m.PredictAll(gs)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("training not deterministic under fixed seed")
		}
	}
}
