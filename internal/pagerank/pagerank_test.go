package pagerank

import (
	"math"
	"testing"
	"testing/quick"

	"graphhd/internal/graph"
	"graphhd/internal/hdc"
)

func TestScoresSumToOne(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		g := graph.ErdosRenyi(30, 0.1, rng)
		s := Scores(g, Options{})
		sum := 0.0
		for _, v := range s {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestScoresSumToOneWithDanglingVertices(t *testing.T) {
	// A path plus isolated vertices exercises the dangling-mass path.
	g := graph.Disjoint(graph.Path(4), graph.NewBuilder(3).Build())
	s := Scores(g, Options{})
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("sum = %v", sum)
	}
}

func TestScoresEmptyGraph(t *testing.T) {
	if s := Scores(graph.NewBuilder(0).Build(), Options{}); s != nil {
		t.Fatalf("scores of empty graph = %v", s)
	}
}

func TestScoresUniformOnSymmetricGraphs(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Ring(8), graph.Complete(5)} {
		s := Scores(g, Options{})
		for i := 1; i < len(s); i++ {
			if math.Abs(s[i]-s[0]) > 1e-12 {
				t.Fatalf("%v: scores not uniform: %v", g, s)
			}
		}
	}
}

func TestStarHubDominates(t *testing.T) {
	g := graph.Star(10)
	s := Scores(g, Options{})
	for v := 1; v < 10; v++ {
		if s[0] <= s[v] {
			t.Fatalf("hub score %f not above leaf %f", s[0], s[v])
		}
	}
	r := Ranks(g, Options{})
	if r[0] != 0 {
		t.Fatalf("hub rank = %d, want 0", r[0])
	}
}

func TestPathCenterOutranksEnds(t *testing.T) {
	g := graph.Path(5)
	s := Scores(g, Options{})
	if s[2] <= s[0] || s[2] <= s[4] {
		t.Fatalf("center %f not above ends %f %f", s[2], s[0], s[4])
	}
	r := Ranks(g, Options{})
	if r[2] != 0 {
		t.Fatalf("center rank = %d", r[2])
	}
}

func TestRanksArePermutation(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hdc.NewRNG(seed)
		g := graph.ErdosRenyi(25, 0.15, rng)
		r := Ranks(g, Options{})
		seen := make([]bool, len(r))
		for _, v := range r {
			if v < 0 || v >= len(r) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRanksDeterministic(t *testing.T) {
	g := graph.ErdosRenyi(40, 0.1, hdc.NewRNG(5))
	a := Ranks(g, Options{})
	b := Ranks(g, Options{})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("ranks not deterministic")
		}
	}
}

func TestRanksTieBreakByVertexID(t *testing.T) {
	// On a ring all scores and degrees tie, so ranks must equal ids.
	r := Ranks(graph.Ring(6), Options{})
	for v, rank := range r {
		if rank != v {
			t.Fatalf("ring rank[%d] = %d", v, rank)
		}
	}
}

func TestRanksIsomorphismInvariantUpToTies(t *testing.T) {
	// Relabeling a graph with all-distinct scores permutes ranks the same
	// way as the vertices.
	g := graph.BarabasiAlbert(30, 2, hdc.NewRNG(6))
	r := Ranks(g, Options{})
	perm := hdc.NewRNG(7).Perm(30)
	h := graph.Relabel(g, perm)
	rh := Ranks(h, Options{})
	scores := Scores(g, Options{})
	distinct := map[float64]int{}
	for _, s := range scores {
		distinct[s]++
	}
	for v := 0; v < 30; v++ {
		if distinct[scores[v]] == 1 && rh[perm[v]] != r[v] {
			t.Fatalf("rank of untied vertex %d changed under relabeling", v)
		}
	}
}

func TestMoreIterationsConverge(t *testing.T) {
	g := graph.BarabasiAlbert(50, 3, hdc.NewRNG(8))
	a := Scores(g, Options{Iterations: 50})
	b := Scores(g, Options{Iterations: 100})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-6 {
			t.Fatalf("scores not converged at vertex %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDampingZeroIsUniform(t *testing.T) {
	// Damping is defaulted when 0, so test a tiny positive value instead:
	// nearly all mass teleports, scores approach uniform.
	g := graph.Star(10)
	s := Scores(g, Options{Damping: 1e-9, Iterations: 10})
	for v := 1; v < 10; v++ {
		if math.Abs(s[v]-0.1) > 1e-3 {
			t.Fatalf("near-zero damping score[%d] = %f", v, s[v])
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Damping != DefaultDamping || o.Iterations != DefaultIterations {
		t.Fatalf("defaults = %+v", o)
	}
	o2 := Options{Damping: 0.5, Iterations: 3}.withDefaults()
	if o2.Damping != 0.5 || o2.Iterations != 3 {
		t.Fatalf("explicit options overridden: %+v", o2)
	}
}

func TestScoresIntoMatchesScores(t *testing.T) {
	rng := hdc.NewRNG(11)
	var s Scratch
	for trial := 0; trial < 20; trial++ {
		g := graph.ErdosRenyi(5+trial*7, 0.08, rng)
		opts := Options{Iterations: 1 + trial%13}
		want := Scores(g, opts)
		got := ScoresInto(g, opts, &s)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d scores, want %d", trial, len(got), len(want))
		}
		for v := range want {
			if got[v] != want[v] {
				t.Fatalf("trial %d: score[%d] = %v, want %v", trial, v, got[v], want[v])
			}
		}
	}
}

func TestRanksIntoMatchesRanks(t *testing.T) {
	// The scratch path must be bit-for-bit identical to the historical
	// sort.SliceStable implementation on graphs full of score ties.
	rng := hdc.NewRNG(12)
	var s Scratch
	var dst []int
	for trial := 0; trial < 30; trial++ {
		var g *graph.Graph
		switch trial % 3 {
		case 0:
			g = graph.ErdosRenyi(4+trial*5, 0.1, rng)
		case 1:
			g = graph.Complete(3 + trial) // all scores tie
		default:
			g = graph.Ring(3 + trial*2) // all scores tie
		}
		want := Ranks(g, Options{})
		dst = RanksInto(g, Options{}, dst, &s)
		if len(dst) != len(want) {
			t.Fatalf("trial %d: %d ranks, want %d", trial, len(dst), len(want))
		}
		for v := range want {
			if dst[v] != want[v] {
				t.Fatalf("trial %d: rank[%d] = %d, want %d", trial, v, dst[v], want[v])
			}
		}
	}
}

func TestRanksIntoAllocationFree(t *testing.T) {
	g := graph.ErdosRenyi(200, 0.05, hdc.NewRNG(13))
	var s Scratch
	dst := RanksInto(g, Options{}, nil, &s) // warm the buffers
	allocs := testing.AllocsPerRun(50, func() {
		dst = RanksInto(g, Options{}, dst, &s)
	})
	if allocs != 0 {
		t.Fatalf("RanksInto allocated %v times per run, want 0", allocs)
	}
}

func TestScoresIntoResultStableAcrossGraphs(t *testing.T) {
	// The returned slice must always be s.scores regardless of iteration
	// parity, so callers can hold it across calls.
	rng := hdc.NewRNG(14)
	var s Scratch
	g := graph.ErdosRenyi(40, 0.1, rng)
	even := ScoresInto(g, Options{Iterations: 4}, &s)
	odd := ScoresInto(g, Options{Iterations: 5}, &s)
	if &even[0] != &odd[0] {
		t.Fatal("ScoresInto returned different backing arrays for even and odd iteration counts")
	}
}
