// Package pagerank implements the PageRank centrality metric that GraphHD
// uses to derive topology-based vertex identifiers (Section IV-C of the
// paper). Scores are computed by damped power iteration on the undirected
// graph; the number of iterations is a parameter, fixed to 10 in all paper
// experiments "because the accuracy of GraphHD has then plateaued".
package pagerank

import (
	"graphhd/internal/graph"
)

// DefaultDamping is the standard PageRank damping factor from Brin & Page.
const DefaultDamping = 0.85

// DefaultIterations matches the paper's fixed setting of 10 iterations.
const DefaultIterations = 10

// Options configures a PageRank computation. The zero value selects the
// defaults used in the paper.
type Options struct {
	// Damping is the probability of following an edge rather than
	// teleporting; 0 selects DefaultDamping.
	Damping float64
	// Iterations is the number of power-iteration steps; 0 selects
	// DefaultIterations.
	Iterations int
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = DefaultDamping
	}
	if o.Iterations == 0 {
		o.Iterations = DefaultIterations
	}
	return o
}

// Scratch holds the reusable buffers of ScoresInto and RanksInto: the two
// power-iteration score vectors and the vertex-order permutation. The zero
// value is ready to use; buffers grow to the largest graph seen and are
// then reused, so steady-state rank computation performs no heap
// allocations. A Scratch is not safe for concurrent use — each goroutine
// owns its own.
type Scratch struct {
	scores, next []float64
	order        []int
	dangling     []int32
	dinv         []float64
}

// ensure grows the buffers to cover n vertices.
func (s *Scratch) ensure(n int) {
	if cap(s.scores) < n {
		s.scores = make([]float64, n)
	}
	if cap(s.next) < n {
		s.next = make([]float64, n)
	}
	if cap(s.order) < n {
		s.order = make([]int, n)
	}
	if cap(s.dangling) < n {
		s.dangling = make([]int32, n)
	}
	if cap(s.dinv) < n {
		s.dinv = make([]float64, n)
	}
}

// Scores returns the PageRank score of every vertex of g after the
// configured number of power-iteration steps. On an undirected graph each
// edge acts as two directed links. Vertices with no neighbors (dangling
// vertices) distribute their mass uniformly, the standard correction, so
// the scores always sum to 1 (up to floating-point error).
func Scores(g *graph.Graph, opts Options) []float64 {
	var s Scratch
	return ScoresInto(g, opts, &s)
}

// ScoresInto is Scores writing into s's reusable buffers. The returned
// slice is owned by s and valid until the next ScoresInto or RanksInto
// call on it; steady state performs no heap allocations.
func ScoresInto(g *graph.Graph, opts Options, s *Scratch) []float64 {
	opts = opts.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	s.ensure(n)
	// Arrange the ping-pong buffers so the final swap leaves the result in
	// s.scores, letting callers hold one stable slice across graphs.
	cur, next := s.scores[:n], s.next[:n]
	if opts.Iterations%2 == 1 {
		cur, next = next, cur
	}
	inv := 1 / float64(n)
	for i := range cur {
		cur[i] = inv
	}
	d := opts.Damping
	// Degrees are fixed across iterations, so hoist everything derived
	// from them out of the power loop: the dangling-vertex list (the
	// common all-connected case then skips the per-iteration mass scan
	// entirely) and the damped inverse degree d/deg(v), which turns the
	// per-vertex division — the dominant cost on the small benchmark
	// graphs — into a multiply. A dangling vertex gets dinv 0; its
	// neighbor loop is empty, so the value is never used.
	dang := s.dangling[:0]
	dinv := s.dinv[:n]
	for v := 0; v < n; v++ {
		if deg := g.Degree(v); deg == 0 {
			dang = append(dang, int32(v))
			dinv[v] = 0
		} else {
			dinv[v] = d / float64(deg)
		}
	}
	for it := 0; it < opts.Iterations; it++ {
		// Teleport mass plus dangling-vertex mass, both uniform.
		dangling := 0.0
		for _, v := range dang {
			dangling += cur[v]
		}
		base := (1-d)*inv + d*dangling*inv
		for v := range next {
			next[v] = base
		}
		for v := 0; v < n; v++ {
			share := cur[v] * dinv[v]
			for _, w := range g.Neighbors(v) {
				next[w] += share
			}
		}
		cur, next = next, cur
	}
	return cur
}

// vertexLess is the shared deterministic centrality ordering: score
// descending, then degree descending, then vertex id ascending. The final
// clause makes the order total, so every correct sort produces the same
// permutation.
func vertexLess(g *graph.Graph, scores []float64, u, v int) bool {
	if scores[u] != scores[v] {
		return scores[u] > scores[v]
	}
	if du, dv := g.Degree(u), g.Degree(v); du != dv {
		return du > dv
	}
	return u < v
}

// SortByCentrality sorts order — a slice of vertex ids of g — in place
// under the shared tie-break rule (score descending, degree descending, id
// ascending) without allocating. Because the ordering is total, the result
// is identical to what any stable sort under the same comparator produces.
// Exported for package centrality, which ranks non-PageRank score vectors
// with the same rule.
func SortByCentrality(g *graph.Graph, scores []float64, order []int) {
	n := len(order)
	// Benchmark-dataset graphs are mostly tiny (MUTAG averages 18
	// vertices), where insertion sort beats heapsort's constants. The
	// ordering is total, so both produce the identical permutation.
	if n <= 32 {
		for i := 1; i < n; i++ {
			x := order[i]
			j := i - 1
			for j >= 0 && vertexLess(g, scores, x, order[j]) {
				order[j+1] = order[j]
				j--
			}
			order[j+1] = x
		}
		return
	}
	// In-place heapsort: O(n log n), zero allocations, no recursion.
	for i := n/2 - 1; i >= 0; i-- {
		siftDown(g, scores, order, i, n)
	}
	for end := n - 1; end > 0; end-- {
		order[0], order[end] = order[end], order[0]
		siftDown(g, scores, order, 0, end)
	}
}

// siftDown restores the max-heap property ("max" under vertexLess's
// reversed sense, so the heap root is the vertex that sorts last).
func siftDown(g *graph.Graph, scores []float64, order []int, root, end int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && vertexLess(g, scores, order[child], order[child+1]) {
			child++
		}
		if !vertexLess(g, scores, order[root], order[child]) {
			return
		}
		order[root], order[child] = order[child], order[root]
		root = child
	}
}

// Ranks returns, for each vertex, its centrality rank: 0 for the vertex
// with the highest PageRank score, 1 for the next, and so on. This rank is
// the vertex identifier GraphHD feeds to the item memory.
//
// Scores tie frequently on symmetric graphs, so the ordering is made
// deterministic: score descending, then degree descending, then vertex id
// ascending. Any deterministic tie-break preserves GraphHD's semantics
// (tied vertices are structurally interchangeable); this one is stable
// across runs and platforms.
func Ranks(g *graph.Graph, opts Options) []int {
	var s Scratch
	return RanksInto(g, opts, make([]int, g.NumVertices()), &s)
}

// RanksInto is Ranks writing into dst, using s for every intermediate
// buffer (scores and the vertex order). dst is grown when its capacity is
// insufficient, so callers that reuse the returned slice reach a steady
// state with zero heap allocations per graph.
func RanksInto(g *graph.Graph, opts Options, dst []int, s *Scratch) []int {
	n := g.NumVertices()
	scores := ScoresInto(g, opts, s)
	if cap(dst) < n {
		dst = make([]int, n)
	}
	dst = dst[:n]
	order := s.order[:n]
	for i := range order {
		order[i] = i
	}
	SortByCentrality(g, scores, order)
	for r, v := range order {
		dst[v] = r
	}
	return dst
}
