// Package pagerank implements the PageRank centrality metric that GraphHD
// uses to derive topology-based vertex identifiers (Section IV-C of the
// paper). Scores are computed by damped power iteration on the undirected
// graph; the number of iterations is a parameter, fixed to 10 in all paper
// experiments "because the accuracy of GraphHD has then plateaued".
package pagerank

import (
	"sort"

	"graphhd/internal/graph"
)

// DefaultDamping is the standard PageRank damping factor from Brin & Page.
const DefaultDamping = 0.85

// DefaultIterations matches the paper's fixed setting of 10 iterations.
const DefaultIterations = 10

// Options configures a PageRank computation. The zero value selects the
// defaults used in the paper.
type Options struct {
	// Damping is the probability of following an edge rather than
	// teleporting; 0 selects DefaultDamping.
	Damping float64
	// Iterations is the number of power-iteration steps; 0 selects
	// DefaultIterations.
	Iterations int
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = DefaultDamping
	}
	if o.Iterations == 0 {
		o.Iterations = DefaultIterations
	}
	return o
}

// Scores returns the PageRank score of every vertex of g after the
// configured number of power-iteration steps. On an undirected graph each
// edge acts as two directed links. Vertices with no neighbors (dangling
// vertices) distribute their mass uniformly, the standard correction, so
// the scores always sum to 1 (up to floating-point error).
func Scores(g *graph.Graph, opts Options) []float64 {
	opts = opts.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range cur {
		cur[i] = inv
	}
	d := opts.Damping
	for it := 0; it < opts.Iterations; it++ {
		// Teleport mass plus dangling-vertex mass, both uniform.
		dangling := 0.0
		for v := 0; v < n; v++ {
			if g.Degree(v) == 0 {
				dangling += cur[v]
			}
		}
		base := (1-d)*inv + d*dangling*inv
		for v := range next {
			next[v] = base
		}
		for v := 0; v < n; v++ {
			deg := g.Degree(v)
			if deg == 0 {
				continue
			}
			share := d * cur[v] / float64(deg)
			for _, w := range g.Neighbors(v) {
				next[w] += share
			}
		}
		cur, next = next, cur
	}
	return cur
}

// Ranks returns, for each vertex, its centrality rank: 0 for the vertex
// with the highest PageRank score, 1 for the next, and so on. This rank is
// the vertex identifier GraphHD feeds to the item memory.
//
// Scores tie frequently on symmetric graphs, so the ordering is made
// deterministic: score descending, then degree descending, then vertex id
// ascending. Any deterministic tie-break preserves GraphHD's semantics
// (tied vertices are structurally interchangeable); this one is stable
// across runs and platforms.
func Ranks(g *graph.Graph, opts Options) []int {
	n := g.NumVertices()
	scores := Scores(g, opts)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		va, vb := order[a], order[b]
		if scores[va] != scores[vb] {
			return scores[va] > scores[vb]
		}
		da, db := g.Degree(va), g.Degree(vb)
		if da != db {
			return da > db
		}
		return va < vb
	})
	ranks := make([]int, n)
	for r, v := range order {
		ranks[v] = r
	}
	return ranks
}
