package hdc

import (
	"testing"
)

// FuzzBitCounter is the differential fuzzer behind the BitCounter
// correctness audit: a byte stream drives random interleavings of every
// mutating and observing operation, and after each observation the
// counter must agree with a naive per-bit reference. The whole op stream
// replays once per supported kernel tier, so on vector-capable machines
// the fuzzer doubles as the per-tier differential oracle (the naive
// reference is tier-independent). Run with
// `go test -fuzz FuzzBitCounter ./internal/hdc`; the seed corpus keeps a
// representative slice running under plain `go test`.
func FuzzBitCounter(f *testing.F) {
	f.Add(uint64(1), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint64(2), []byte{2, 2, 2, 6, 4, 7, 5, 2, 6})
	f.Add(uint64(3), []byte{4, 4, 4, 6, 1, 7})
	f.Add(uint64(42), []byte{3, 2, 1, 0, 7, 6, 5, 4, 3, 2, 1, 0, 7})
	prev := ActiveKernel()
	f.Cleanup(func() { SetKernel(prev) })
	f.Fuzz(func(t *testing.T, seed uint64, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		for _, tier := range SupportedKernels() {
			if err := SetKernel(tier); err != nil {
				t.Fatalf("SetKernel(%s): %v", tier, err)
			}
			fuzzBitCounterOps(t, seed, ops)
		}
	})
}

func fuzzBitCounterOps(t *testing.T, seed uint64, ops []byte) {
	{
		rng := NewRNG(seed)
		d := 1 + rng.Intn(200)
		c := NewBitCounter(d)
		naive := make([]int64, d)
		naiveN := 0
		addNaive := func(bit func(i int) int, weight int) {
			for i := 0; i < d; i++ {
				naive[i] += int64(bit(i)) * int64(weight)
			}
			naiveN += weight
		}
		xorBit := func(a, b *Binary, invert bool) func(int) int {
			return func(i int) int {
				v := a.Bit(i) ^ b.Bit(i)
				if invert {
					v = 1 - v
				}
				return v
			}
		}
		for _, op := range ops {
			switch op % 10 {
			case 0:
				v := RandomBinary(d, rng)
				c.Add(v)
				addNaive(v.Bit, 1)
			case 1:
				a, b := RandomBinary(d, rng), RandomBinary(d, rng)
				inv := rng.Intn(2) == 0
				c.AddXor(a, b, inv)
				addNaive(xorBit(a, b, inv), 1)
			case 2:
				pairs := make([]XorPair, rng.Intn(24))
				for i := range pairs {
					pairs[i] = XorPair{A: RandomBinary(d, rng), B: RandomBinary(d, rng), Invert: rng.Intn(2) == 0}
				}
				c.AddXorPairs(pairs)
				for _, p := range pairs {
					addNaive(xorBit(p.A, p.B, p.Invert), 1)
				}
			case 3:
				vecs := make([][]uint64, rng.Intn(12))
				for i := range vecs {
					v := RandomBinary(d, rng)
					vecs[i] = v.Words()
					addNaive(v.Bit, 1)
				}
				c.AddWordsBlock(vecs)
			case 4:
				a, b := RandomBinary(d, rng), RandomBinary(d, rng)
				inv := rng.Intn(2) == 0
				w := rng.Intn(100)
				c.AddXorWeighted(a, b, inv, w)
				addNaive(xorBit(a, b, inv), w)
			case 5:
				c.Reset()
				for i := range naive {
					naive[i] = 0
				}
				naiveN = 0
			case 6:
				got := c.CountsInto(make([]int32, d))
				for i := range naive {
					if int64(got[i]) != naive[i] {
						t.Fatalf("CountsInto[%d] = %d, want %d", i, got[i], naive[i])
					}
				}
			case 7:
				// Planned operands through the gather-free kernel, with
				// repeated indices to model cross-graph operand sharing.
				var plan OperandPlan
				plan.Reset(d)
				type pp struct{ a, b *Binary }
				ops := make([]pp, 1+rng.Intn(6))
				for i := range ops {
					ops[i] = pp{RandomBinary(d, rng), RandomBinary(d, rng)}
					plan.AppendXnor(ops[i].a, ops[i].b)
				}
				idxs := make([]int32, rng.Intn(24))
				for i := range idxs {
					idxs[i] = int32(rng.Intn(len(ops)))
					addNaive(xorBit(ops[idxs[i]].a, ops[idxs[i]].b, true), 1)
				}
				c.AddPlanned(&plan, idxs)
			case 8:
				v := RandomBinary(d, rng)
				w := rng.Intn(100)
				c.AddWordsWeighted(v.Words(), w)
				addNaive(v.Bit, w)
			case 9:
				tie := RandomBinary(d, rng)
				sign := c.SignBinary(tie)
				for i := 0; i < d; i++ {
					twice := 2 * naive[i]
					want := 0
					switch {
					case twice > int64(naiveN):
						want = 1
					case twice == int64(naiveN):
						want = tie.Bit(i)
					}
					if sign.Bit(i) != want {
						t.Fatalf("SignBinary bit %d = %d, want %d (cnt=%d, n=%d)",
							i, sign.Bit(i), want, naive[i], naiveN)
					}
				}
			}
		}
		if c.Count() != naiveN {
			t.Fatalf("count %d, want %d", c.Count(), naiveN)
		}
		got := c.CountsInto(make([]int32, d))
		for i := range naive {
			if int64(got[i]) != naive[i] {
				t.Fatalf("final component %d = %d, want %d", i, got[i], naive[i])
			}
		}
	}
}
