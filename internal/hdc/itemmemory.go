package hdc

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// ItemMemory is a lazily grown table of basis hypervectors indexed by
// integer symbol id. GraphHD uses one to map a vertex's PageRank rank to
// its basis hypervector: rank r in any graph of the dataset retrieves the
// same random hypervector, which is what makes vertices of different
// graphs comparable.
//
// The memory is safe for concurrent use; parallel per-fold training shares
// a single basis set.
type ItemMemory struct {
	mu   sync.RWMutex
	dim  int
	rng  *RNG
	vecs []*Bipolar
}

// NewItemMemory returns an empty item memory producing hypervectors of
// dimension dim, seeded deterministically with seed.
func NewItemMemory(dim int, seed uint64) *ItemMemory {
	if dim <= 0 {
		panic("hdc: non-positive dimension")
	}
	return &ItemMemory{dim: dim, rng: NewRNG(seed)}
}

// Dim returns the dimensionality of the stored hypervectors.
func (m *ItemMemory) Dim() int { return m.dim }

// Len returns the number of symbols materialized so far.
func (m *ItemMemory) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.vecs)
}

// Vector returns the basis hypervector for symbol id, generating (and
// caching) hypervectors for all ids up to and including id on first use.
// Because generation order is fixed (0, 1, 2, ...), the vector associated
// with a given id is independent of the access pattern.
func (m *ItemMemory) Vector(id int) *Bipolar {
	if id < 0 {
		panic(fmt.Sprintf("hdc: negative symbol id %d", id))
	}
	m.mu.RLock()
	if id < len(m.vecs) {
		v := m.vecs[id]
		m.mu.RUnlock()
		return v
	}
	m.mu.RUnlock()

	m.mu.Lock()
	defer m.mu.Unlock()
	for id >= len(m.vecs) {
		m.vecs = append(m.vecs, RandomBipolar(m.dim, m.rng))
	}
	return m.vecs[id]
}

// Reserve eagerly materializes basis vectors for ids [0, n). Useful to
// avoid lock contention before a parallel section.
func (m *ItemMemory) Reserve(n int) {
	if n > 0 {
		m.Vector(n - 1)
	}
}

// AssociativeMemory stores one integer-accumulator class vector per class
// and answers nearest-class queries, the HDC inference primitive
// pred(y) = argmax_i δ(Enc(y), C_i). Queries measure cosine similarity
// either against the raw integer sums (the default, more precise) or
// against the majority-voted bipolar class vectors.
//
// Training calls (Learn/Unlearn/Reinforce) require a single writer, but
// read-only queries are safe to run concurrently with each other: the
// lazily built query snapshots are published through atomic pointers, so
// two goroutines racing on a cold cache at worst both build the same
// deterministic snapshot.
type AssociativeMemory struct {
	dim     int
	classes []*Accumulator
	tie     *Bipolar
	bipolar bool                         // if true, compare against Sign(tie) class vectors
	signed  atomic.Pointer[[]*Bipolar]   // lazy majority-voted class vectors
	packed  atomic.Pointer[PackedMemory] // lazy bit-packed query snapshot
}

// NewAssociativeMemory returns a memory for k classes of dimension dim.
// tieSeed seeds the deterministic tie-break vector used when collapsing
// accumulators to bipolar form. If bipolarClassVectors is true, inference
// compares queries against majority-voted class vectors (the strict paper
// formulation); otherwise against the integer sums.
func NewAssociativeMemory(k, dim int, tieSeed uint64, bipolarClassVectors bool) *AssociativeMemory {
	if k <= 0 {
		panic("hdc: non-positive class count")
	}
	am := &AssociativeMemory{
		dim:     dim,
		classes: make([]*Accumulator, k),
		tie:     RandomBipolar(dim, NewRNG(tieSeed)),
		bipolar: bipolarClassVectors,
	}
	for i := range am.classes {
		am.classes[i] = NewAccumulator(dim)
	}
	return am
}

// NumClasses returns the number of classes.
func (am *AssociativeMemory) NumClasses() int { return len(am.classes) }

// Dim returns the hypervector dimensionality.
func (am *AssociativeMemory) Dim() int { return am.dim }

// Tie returns the deterministic tie-break hypervector shared by all
// bundling in this memory.
func (am *AssociativeMemory) Tie() *Bipolar { return am.tie }

// invalidate drops all cached query snapshots after a class update.
func (am *AssociativeMemory) invalidate() {
	am.signed.Store(nil)
	am.packed.Store(nil)
}

// Learn bundles the encoded sample v into class c's accumulator.
func (am *AssociativeMemory) Learn(c int, v *Bipolar) {
	am.classes[c].Add(v)
	am.invalidate()
}

// Unlearn removes one vote of v from class c, and Reinforce adds weight w
// votes; both support retraining.
func (am *AssociativeMemory) Unlearn(c int, v *Bipolar) {
	am.classes[c].Sub(v)
	am.invalidate()
}

// Reinforce adds w (possibly negative) votes of v to class c.
func (am *AssociativeMemory) Reinforce(c int, v *Bipolar, w int) {
	am.classes[c].AddWeighted(v, w)
	am.invalidate()
}

// ClassVector returns the majority-voted bipolar class vector for class c.
func (am *AssociativeMemory) ClassVector(c int) *Bipolar {
	return am.classes[c].Sign(am.tie)
}

// ClassAccumulator exposes the raw accumulator for class c (shared, not a
// copy); callers must not mutate it concurrently with queries.
func (am *AssociativeMemory) ClassAccumulator(c int) *Accumulator {
	return am.classes[c]
}

// refreshSigned returns the cached majority-voted class vectors,
// rebuilding them after any class update. Concurrent cold-cache callers
// may build twice; the snapshots are identical, so either store wins.
func (am *AssociativeMemory) refreshSigned() []*Bipolar {
	if sv := am.signed.Load(); sv != nil {
		return *sv
	}
	sv := make([]*Bipolar, len(am.classes))
	for i, acc := range am.classes {
		sv[i] = acc.Sign(am.tie)
	}
	am.signed.Store(&sv)
	return sv
}

// Snapshot majority-votes every class accumulator down to a bit-packed
// Binary vector (the strict paper formulation, equivalent to bipolar class
// vectors) and returns an immutable packed query memory. The snapshot does
// not track later Learn/Unlearn calls; take a fresh one after training.
func (am *AssociativeMemory) Snapshot() *PackedMemory {
	classes := make([]*Binary, len(am.classes))
	for i, acc := range am.classes {
		classes[i] = acc.Sign(am.tie).PackBinary()
	}
	pm, err := NewPackedMemory(classes)
	if err != nil {
		panic(err) // unreachable: k >= 1 and dimensions agree by construction
	}
	return pm
}

// refreshPacked returns the cached packed snapshot, rebuilding it after
// any class update. Concurrent cold-cache callers may build twice; the
// snapshots are identical, so either store wins.
func (am *AssociativeMemory) refreshPacked() *PackedMemory {
	if pm := am.packed.Load(); pm != nil {
		return pm
	}
	pm := am.Snapshot()
	am.packed.Store(pm)
	return pm
}

// ClassifyPacked classifies a bit-packed query against the (lazily
// refreshed) majority-voted snapshot via popcount Hamming distance. For a
// memory configured with bipolar class vectors the result is bit-for-bit
// identical to Classify on the unpacked query.
func (am *AssociativeMemory) ClassifyPacked(v *Binary) int {
	return am.refreshPacked().Classify(v)
}

// SimilaritiesPacked returns δ(v, C_i) for every class i in the packed
// domain: exactly the cosines Similarities reports in bipolar mode.
func (am *AssociativeMemory) SimilaritiesPacked(v *Binary) []float64 {
	return am.refreshPacked().Similarities(v)
}

// Similarities returns δ(v, C_i) for every class i.
func (am *AssociativeMemory) Similarities(v *Bipolar) []float64 {
	sims := make([]float64, len(am.classes))
	if am.bipolar {
		for i, cv := range am.refreshSigned() {
			sims[i] = v.Cosine(cv)
		}
		return sims
	}
	for i, acc := range am.classes {
		sims[i] = acc.CosineToSums(v)
	}
	return sims
}

// Classify returns the class whose vector is most similar to v, breaking
// exact similarity ties toward the smaller class index for determinism.
func (am *AssociativeMemory) Classify(v *Bipolar) int {
	sims := am.Similarities(v)
	best, bestSim := 0, sims[0]
	for i := 1; i < len(sims); i++ {
		if sims[i] > bestSim {
			best, bestSim = i, sims[i]
		}
	}
	return best
}

// Ranking returns class indices ordered by decreasing similarity to v.
func (am *AssociativeMemory) Ranking(v *Bipolar) []int {
	sims := am.Similarities(v)
	idx := make([]int, len(sims))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return sims[idx[a]] > sims[idx[b]] })
	return idx
}

// Reset clears all learned class information.
func (am *AssociativeMemory) Reset() {
	for _, acc := range am.classes {
		acc.Reset()
	}
	am.invalidate()
}

// LoadClass replaces class c's accumulator state; used when deserializing
// a trained model.
func (am *AssociativeMemory) LoadClass(c int, sums []int32, count int) error {
	if err := am.classes[c].LoadSums(sums, count); err != nil {
		return err
	}
	am.invalidate()
	return nil
}
