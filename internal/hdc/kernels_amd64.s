// AVX2 and AVX-512 kernels for the carry-save accumulation cascade, the
// small-sign plane compare, and the packed Hamming inner loop.
//
// Contracts (see DESIGN.md §2b and dispatch.go):
//
//   - Every kernel processes exactly words [0, args.n) of its streams,
//     args.n a multiple of the tier's lane width (4 for AVX2, 8 for
//     AVX-512). Tail words — including the masked final word of an
//     unaligned dimension — are the caller's portable loop's job.
//   - All loads and stores are unaligned (VMOVDQU/VMOVDQU64): operand
//     streams come from caller-owned slices with no alignment guarantee;
//     plane and lane slabs are word-aligned only.
//   - The cascades are bit-identical to csaBlock8Range/csaXorBlock8Range
//     and the small/sign variants in smallsign.go: same CSA tree shape,
//     same weight-16 overflow rule. Any change there must land here too;
//     the per-tier differential tests and FuzzBitCounter enforce it.
//   - Register budget (AVX2): Y0-Y3 plane state, Y4-Y5 operand loads,
//     Y6-Y11 cascade temporaries, Y12 s16, Y13 lane temp, Y14 byteStride,
//     Y15 xor/overflow temp. GP: DI args block, CX byte offset, SI byte
//     limit, R8-R15 the eight stream pointers, AX/BX scratch pointers
//     reloaded from the args block (there are not enough GP registers to
//     pin the twelve plane/lane pointers, and the reloads hit the same
//     hot cache line every iteration). The AVX-512 variants mirror this
//     allocation onto Z registers and collapse each 3:2 compressor into
//     a VPTERNLOGQ XOR3/majority pair.
//   - All functions end with VZEROUPPER to avoid SSE/AVX transition
//     stalls in the surrounding Go code.

#include "textflag.h"

// csa(s, b, c): S <- sum, CARRY <- carry, TMP clobbered; B, C preserved.
#define CSA256(S, B, C, CARRY, TMP) \
	VPXOR	S, B, CARRY;           \
	VPAND	S, B, TMP;             \
	VPXOR	CARRY, C, S;           \
	VPAND	CARRY, C, CARRY;       \
	VPOR	TMP, CARRY, CARRY;

// VPTERNLOGQ imm 0x96 is XOR3, 0xE8 is majority; both are symmetric in
// their three operands, so the Go-assembler operand reversal is harmless.
#define CSA512(S, B, C, CARRY) \
	VMOVDQA64	S, CARRY;              \
	VPTERNLOGQ	$0x96, B, C, S;        \
	VPTERNLOGQ	$0xE8, B, C, CARRY;

// Load one raw stream pair into Y4/Y5 (Z4/Z5).
#define RAWLOAD256(RA, RB) \
	VMOVDQU	(RA)(CX*1), Y4;        \
	VMOVDQU	(RB)(CX*1), Y5;

#define RAWLOAD512(RA, RB) \
	VMOVDQU64	(RA)(CX*1), Z4;        \
	VMOVDQU64	(RB)(CX*1), Z5;

// Load stream word group R, XOR the paired stream (args+BOFF) and the
// broadcast XNOR mask (args+VOFF) into DST.
#define XORLOAD256(R, BOFF, VOFF, DST) \
	VMOVDQU	(R)(CX*1), DST;        \
	MOVQ	BOFF(DI), BX;          \
	VPXOR	(BX)(CX*1), DST, DST;  \
	VPBROADCASTQ	VOFF(DI), Y15; \
	VPXOR	Y15, DST, DST;

#define XORLOAD512(R, BOFF, VOFF, DST) \
	VMOVDQU64	(R)(CX*1), DST;        \
	MOVQ	BOFF(DI), BX;                  \
	VPXORQ	(BX)(CX*1), DST, DST;          \
	VPXORQ.BCST	VOFF(DI), DST, DST;

// lane[OFF] += ((s16 >> SHIFT) & byteStride) << 4, with s16 in Y12/Z12
// and byteStride broadcast in Y14/Z14.
#define LANEADD256(SHIFT, OFF) \
	MOVQ	OFF(DI), AX;           \
	VPSRLQ	SHIFT, Y12, Y13;       \
	VPAND	Y14, Y13, Y13;         \
	VPSLLQ	$4, Y13, Y13;          \
	VPADDQ	(AX)(CX*1), Y13, Y13;  \
	VMOVDQU	Y13, (AX)(CX*1);

#define LANEADD512(SHIFT, OFF) \
	MOVQ	OFF(DI), AX;           \
	VPSRLQ	SHIFT, Z12, Z13;       \
	VPANDQ	Z14, Z13, Z13;         \
	VPSLLQ	$4, Z13, Z13;          \
	VPADDQ	(AX)(CX*1), Z13, Z13;  \
	VMOVDQU64	Z13, (AX)(CX*1);

// Weight-16 spill into the eight byte lanes (l0..l3 at +240.., h0..h3 at
// +272..), used between a VPTEST-guarded branch in the function bodies.
#define LANEADDS256 \
	LANEADD256($0, 240)            \
	LANEADD256($1, 248)            \
	LANEADD256($2, 256)            \
	LANEADD256($3, 264)            \
	LANEADD256($4, 272)            \
	LANEADD256($5, 280)            \
	LANEADD256($6, 288)            \
	LANEADD256($7, 296)

#define LANEADDS512 \
	LANEADD512($0, 240)            \
	LANEADD512($1, 248)            \
	LANEADD512($2, 256)            \
	LANEADD512($3, 264)            \
	LANEADD512($4, 272)            \
	LANEADD512($5, 280)            \
	LANEADD512($6, 288)            \
	LANEADD512($7, 296)

// Weight-16 spill into the sixteens/thirtytwos planes (the small-sign
// kernels): thirtytwos |= sixteens & s16; sixteens ^= s16.
#define SMALLSPILL256 \
	MOVQ	224(DI), AX;           \
	VMOVDQU	(AX)(CX*1), Y13;       \
	MOVQ	232(DI), BX;           \
	VPAND	Y13, Y12, Y15;         \
	VPOR	(BX)(CX*1), Y15, Y15;  \
	VMOVDQU	Y15, (BX)(CX*1);       \
	VPXOR	Y13, Y12, Y13;         \
	VMOVDQU	Y13, (AX)(CX*1);

#define SMALLSPILL512 \
	MOVQ	224(DI), AX;                   \
	VMOVDQU64	(AX)(CX*1), Z13;       \
	MOVQ	232(DI), BX;                   \
	VPANDQ	Z13, Z12, Z15;                 \
	VPORQ	(BX)(CX*1), Z15, Z15;          \
	VMOVDQU64	Z15, (BX)(CX*1);       \
	VPXORQ	Z13, Z12, Z13;                 \
	VMOVDQU64	Z13, (AX)(CX*1);

// Shared prologue for the CSA kernels: DI = args, R8-R15 = the eight
// stream pointers, SI = byte limit, CX = byte offset.
#define CSAPROLOGUE \
	MOVQ	a+0(FP), DI;   \
	MOVQ	0(DI), R8;     \
	MOVQ	8(DI), R9;     \
	MOVQ	16(DI), R10;   \
	MOVQ	24(DI), R11;   \
	MOVQ	32(DI), R12;   \
	MOVQ	40(DI), R13;   \
	MOVQ	48(DI), R14;   \
	MOVQ	56(DI), R15;   \
	MOVQ	304(DI), SI;   \
	SHLQ	$3, SI;        \
	XORQ	CX, CX;

// Load/store the four persistent planes for this word group.
#define LOADPLANES256 \
	MOVQ	192(DI), AX;           \
	VMOVDQU	(AX)(CX*1), Y0;        \
	MOVQ	200(DI), AX;           \
	VMOVDQU	(AX)(CX*1), Y1;        \
	MOVQ	208(DI), AX;           \
	VMOVDQU	(AX)(CX*1), Y2;        \
	MOVQ	216(DI), AX;           \
	VMOVDQU	(AX)(CX*1), Y3;

#define STOREPLANES256 \
	MOVQ	192(DI), AX;           \
	VMOVDQU	Y0, (AX)(CX*1);        \
	MOVQ	200(DI), AX;           \
	VMOVDQU	Y1, (AX)(CX*1);        \
	MOVQ	208(DI), AX;           \
	VMOVDQU	Y2, (AX)(CX*1);        \
	MOVQ	216(DI), AX;           \
	VMOVDQU	Y3, (AX)(CX*1);

#define LOADPLANES512 \
	MOVQ	192(DI), AX;                   \
	VMOVDQU64	(AX)(CX*1), Z0;        \
	MOVQ	200(DI), AX;                   \
	VMOVDQU64	(AX)(CX*1), Z1;        \
	MOVQ	208(DI), AX;                   \
	VMOVDQU64	(AX)(CX*1), Z2;        \
	MOVQ	216(DI), AX;                   \
	VMOVDQU64	(AX)(CX*1), Z3;

#define STOREPLANES512 \
	MOVQ	192(DI), AX;                   \
	VMOVDQU64	Z0, (AX)(CX*1);        \
	MOVQ	200(DI), AX;                   \
	VMOVDQU64	Z1, (AX)(CX*1);        \
	MOVQ	208(DI), AX;                   \
	VMOVDQU64	Z2, (AX)(CX*1);        \
	MOVQ	216(DI), AX;                   \
	VMOVDQU64	Z3, (AX)(CX*1);

// The Harley-Seal cascade over the loaded planes: consumes the eight
// operand groups via the LOAD macros, leaves new ones/twos/fours in
// Y0-Y2 (Z0-Z2), the new eights in Y3 (Z3) and s16 in Y12 (Z12).
#define CASCADE256(LOAD01, LOAD23, LOAD45, LOAD67) \
	LOAD01                         \
	CSA256(Y0, Y4, Y5, Y6, Y7)     \
	LOAD23                         \
	CSA256(Y0, Y4, Y5, Y7, Y8)     \
	CSA256(Y1, Y6, Y7, Y8, Y9)     \
	LOAD45                         \
	CSA256(Y0, Y4, Y5, Y6, Y9)     \
	LOAD67                         \
	CSA256(Y0, Y4, Y5, Y7, Y9)     \
	CSA256(Y1, Y6, Y7, Y9, Y10)    \
	CSA256(Y2, Y8, Y9, Y10, Y11)   \
	VPAND	Y10, Y3, Y12;          \
	VPXOR	Y10, Y3, Y3;

#define CASCADE512(LOAD01, LOAD23, LOAD45, LOAD67) \
	LOAD01                         \
	CSA512(Z0, Z4, Z5, Z6)         \
	LOAD23                         \
	CSA512(Z0, Z4, Z5, Z7)         \
	CSA512(Z1, Z6, Z7, Z8)         \
	LOAD45                         \
	CSA512(Z0, Z4, Z5, Z6)         \
	LOAD67                         \
	CSA512(Z0, Z4, Z5, Z7)         \
	CSA512(Z1, Z6, Z7, Z9)         \
	CSA512(Z2, Z8, Z9, Z10)        \
	VPANDQ	Z10, Z3, Z12;          \
	VPXORQ	Z10, Z3, Z3;

#define RAWLOADS256 \
	CASCADE256(RAWLOAD256(R8, R9), RAWLOAD256(R10, R11), RAWLOAD256(R12, R13), RAWLOAD256(R14, R15))

#define XORLOADS256 \
	CASCADE256(XORLOAD256(R8, 64, 128, Y4) XORLOAD256(R9, 72, 136, Y5), XORLOAD256(R10, 80, 144, Y4) XORLOAD256(R11, 88, 152, Y5), XORLOAD256(R12, 96, 160, Y4) XORLOAD256(R13, 104, 168, Y5), XORLOAD256(R14, 112, 176, Y4) XORLOAD256(R15, 120, 184, Y5))

#define RAWLOADS512 \
	CASCADE512(RAWLOAD512(R8, R9), RAWLOAD512(R10, R11), RAWLOAD512(R12, R13), RAWLOAD512(R14, R15))

#define XORLOADS512 \
	CASCADE512(XORLOAD512(R8, 64, 128, Z4) XORLOAD512(R9, 72, 136, Z5), XORLOAD512(R10, 80, 144, Z4) XORLOAD512(R11, 88, 152, Z5), XORLOAD512(R12, 96, 160, Z4) XORLOAD512(R13, 104, 168, Z5), XORLOAD512(R14, 112, 176, Z4) XORLOAD512(R15, 120, 184, Z5))

// One ripple-compare step of the plane majority: plane word at args+OFF,
// constant mask broadcast in CM, carry in Y0/Z0, eq in Y1/Z1; zeroes the
// consumed plane word (Y15/Z15 holds zero).
#define SIGNPLANE256(OFF, CM) \
	MOVQ	OFF(DI), AX;           \
	VMOVDQU	(AX)(CX*1), Y2;        \
	VMOVDQU	Y15, (AX)(CX*1);       \
	VPXOR	CM, Y2, Y3;            \
	VPXOR	Y0, Y3, Y4;            \
	VPAND	Y4, Y1, Y1;            \
	VPAND	CM, Y2, Y4;            \
	VPAND	Y0, Y3, Y5;            \
	VPOR	Y5, Y4, Y0;

// 0x60 = a&(b^c): eq &= u^carry. 0xE8 = majority(p, cm, carry), which
// equals (p&cm)|((p^cm)&carry) — the ripple-carry update.
#define SIGNPLANE512(OFF, CM) \
	MOVQ	OFF(DI), AX;                   \
	VMOVDQU64	(AX)(CX*1), Z2;        \
	VMOVDQU64	Z15, (AX)(CX*1);       \
	VPXORQ	CM, Z2, Z3;                    \
	VPTERNLOGQ	$0x60, Z0, Z3, Z1;     \
	VPTERNLOGQ	$0xE8, CM, Z2, Z0;

// func csaBlockAVX2(a *csaArgs)
TEXT ·csaBlockAVX2(SB), NOSPLIT, $0-8
	CSAPROLOGUE
	MOVQ	$0x0101010101010101, AX
	MOVQ	AX, X14
	VPBROADCASTQ	X14, Y14
	TESTQ	SI, SI
	JZ	done
loop:
	LOADPLANES256
	RAWLOADS256
	STOREPLANES256
	VPTEST	Y12, Y12
	JZ	next
	LANEADDS256
next:
	ADDQ	$32, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// func csaXorBlockAVX2(a *csaArgs)
TEXT ·csaXorBlockAVX2(SB), NOSPLIT, $0-8
	CSAPROLOGUE
	MOVQ	$0x0101010101010101, AX
	MOVQ	AX, X14
	VPBROADCASTQ	X14, Y14
	TESTQ	SI, SI
	JZ	done
loop:
	LOADPLANES256
	XORLOADS256
	STOREPLANES256
	VPTEST	Y12, Y12
	JZ	next
	LANEADDS256
next:
	ADDQ	$32, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// func csaSmallBlockAVX2(a *csaArgs)
TEXT ·csaSmallBlockAVX2(SB), NOSPLIT, $0-8
	CSAPROLOGUE
	TESTQ	SI, SI
	JZ	done
loop:
	LOADPLANES256
	RAWLOADS256
	STOREPLANES256
	VPTEST	Y12, Y12
	JZ	next
	SMALLSPILL256
next:
	ADDQ	$32, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// func csaXorSmallBlockAVX2(a *csaArgs)
TEXT ·csaXorSmallBlockAVX2(SB), NOSPLIT, $0-8
	CSAPROLOGUE
	TESTQ	SI, SI
	JZ	done
loop:
	LOADPLANES256
	XORLOADS256
	STOREPLANES256
	VPTEST	Y12, Y12
	JZ	next
	SMALLSPILL256
next:
	ADDQ	$32, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// func signPlanesAVX2(a *csaArgs)
TEXT ·signPlanesAVX2(SB), NOSPLIT, $0-8
	MOVQ	a+0(FP), DI
	MOVQ	304(DI), SI
	SHLQ	$3, SI
	XORQ	CX, CX
	VPBROADCASTQ	128(DI), Y8    // cm[0]
	VPBROADCASTQ	136(DI), Y9    // cm[1]
	VPBROADCASTQ	144(DI), Y10   // cm[2]
	VPBROADCASTQ	152(DI), Y11   // cm[3]
	VPBROADCASTQ	160(DI), Y12   // cm[4]
	VPBROADCASTQ	168(DI), Y13   // cm[5]
	VPBROADCASTQ	176(DI), Y14   // tie mask: ~0 for even n, 0 for odd
	VPXOR	Y15, Y15, Y15
	MOVQ	0(DI), BX              // tie vector
	MOVQ	64(DI), DX             // dst vector
	TESTQ	SI, SI
	JZ	done
loop:
	VPXOR	Y0, Y0, Y0             // carry
	VPCMPEQD	Y1, Y1, Y1     // eq (all ones)
	SIGNPLANE256(192, Y8)
	SIGNPLANE256(200, Y9)
	SIGNPLANE256(208, Y10)
	SIGNPLANE256(216, Y11)
	SIGNPLANE256(224, Y12)
	SIGNPLANE256(232, Y13)
	VPAND	(BX)(CX*1), Y1, Y1     // eq &= tie
	VPAND	Y14, Y1, Y1            // ... only for even n
	VPOR	Y1, Y0, Y0
	VMOVDQU	Y0, (DX)(CX*1)
	ADDQ	$32, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// PSHUFB nibble-popcount table and low-nibble mask for hammingAVX2.
DATA popcntLUT<>+0(SB)/8, $0x0302020102010100
DATA popcntLUT<>+8(SB)/8, $0x0403030203020201
DATA popcntLUT<>+16(SB)/8, $0x0302020102010100
DATA popcntLUT<>+24(SB)/8, $0x0403030203020201
GLOBL popcntLUT<>(SB), RODATA|NOPTR, $32

DATA popcntMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA popcntMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA popcntMask<>+16(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA popcntMask<>+24(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL popcntMask<>(SB), RODATA|NOPTR, $32

// func hammingAVX2(a, b *uint64, n int64) int64
TEXT ·hammingAVX2(SB), NOSPLIT, $0-32
	MOVQ	a+0(FP), R8
	MOVQ	b+8(FP), R9
	MOVQ	n+16(FP), SI
	SHLQ	$3, SI
	XORQ	CX, CX
	VMOVDQU	popcntLUT<>(SB), Y6
	VMOVDQU	popcntMask<>(SB), Y7
	VPXOR	Y8, Y8, Y8
	VPXOR	Y0, Y0, Y0
	TESTQ	SI, SI
	JZ	done
loop:
	VMOVDQU	(R8)(CX*1), Y1
	VPXOR	(R9)(CX*1), Y1, Y1
	VPAND	Y7, Y1, Y2             // low nibbles
	VPSRLW	$4, Y1, Y3
	VPAND	Y7, Y3, Y3             // high nibbles
	VPSHUFB	Y2, Y6, Y4
	VPSHUFB	Y3, Y6, Y5
	VPADDB	Y5, Y4, Y4             // per-byte popcounts
	VPSADBW	Y8, Y4, Y4             // horizontal add to 4 qwords
	VPADDQ	Y4, Y0, Y0
	ADDQ	$32, CX
	CMPQ	CX, SI
	JB	loop
done:
	VEXTRACTI128	$1, Y0, X1
	VPADDQ	X1, X0, X0
	VPSRLDQ	$8, X0, X1
	VPADDQ	X1, X0, X0
	VZEROUPPER
	MOVQ	X0, AX
	MOVQ	AX, ret+24(FP)
	RET

// func csaBlockAVX512(a *csaArgs)
TEXT ·csaBlockAVX512(SB), NOSPLIT, $0-8
	CSAPROLOGUE
	MOVQ	$0x0101010101010101, AX
	MOVQ	AX, X14
	VPBROADCASTQ	X14, Z14
	TESTQ	SI, SI
	JZ	done
loop:
	LOADPLANES512
	RAWLOADS512
	STOREPLANES512
	VPTESTMQ	Z12, Z12, K1
	KORTESTB	K1, K1
	JZ	next
	LANEADDS512
next:
	ADDQ	$64, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// func csaXorBlockAVX512(a *csaArgs)
TEXT ·csaXorBlockAVX512(SB), NOSPLIT, $0-8
	CSAPROLOGUE
	MOVQ	$0x0101010101010101, AX
	MOVQ	AX, X14
	VPBROADCASTQ	X14, Z14
	TESTQ	SI, SI
	JZ	done
loop:
	LOADPLANES512
	XORLOADS512
	STOREPLANES512
	VPTESTMQ	Z12, Z12, K1
	KORTESTB	K1, K1
	JZ	next
	LANEADDS512
next:
	ADDQ	$64, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// func csaSmallBlockAVX512(a *csaArgs)
TEXT ·csaSmallBlockAVX512(SB), NOSPLIT, $0-8
	CSAPROLOGUE
	TESTQ	SI, SI
	JZ	done
loop:
	LOADPLANES512
	RAWLOADS512
	STOREPLANES512
	VPTESTMQ	Z12, Z12, K1
	KORTESTB	K1, K1
	JZ	next
	SMALLSPILL512
next:
	ADDQ	$64, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// func csaXorSmallBlockAVX512(a *csaArgs)
TEXT ·csaXorSmallBlockAVX512(SB), NOSPLIT, $0-8
	CSAPROLOGUE
	TESTQ	SI, SI
	JZ	done
loop:
	LOADPLANES512
	XORLOADS512
	STOREPLANES512
	VPTESTMQ	Z12, Z12, K1
	KORTESTB	K1, K1
	JZ	next
	SMALLSPILL512
next:
	ADDQ	$64, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// func signPlanesAVX512(a *csaArgs)
TEXT ·signPlanesAVX512(SB), NOSPLIT, $0-8
	MOVQ	a+0(FP), DI
	MOVQ	304(DI), SI
	SHLQ	$3, SI
	XORQ	CX, CX
	VPBROADCASTQ	128(DI), Z8    // cm[0]
	VPBROADCASTQ	136(DI), Z9    // cm[1]
	VPBROADCASTQ	144(DI), Z10   // cm[2]
	VPBROADCASTQ	152(DI), Z11   // cm[3]
	VPBROADCASTQ	160(DI), Z12   // cm[4]
	VPBROADCASTQ	168(DI), Z13   // cm[5]
	VPBROADCASTQ	176(DI), Z14   // tie mask: ~0 for even n, 0 for odd
	VPXORQ	Z15, Z15, Z15
	MOVQ	0(DI), BX              // tie vector
	MOVQ	64(DI), DX             // dst vector
	TESTQ	SI, SI
	JZ	done
loop:
	VPXORQ	Z0, Z0, Z0                     // carry
	VPTERNLOGQ	$0xFF, Z1, Z1, Z1      // eq (all ones)
	SIGNPLANE512(192, Z8)
	SIGNPLANE512(200, Z9)
	SIGNPLANE512(208, Z10)
	SIGNPLANE512(216, Z11)
	SIGNPLANE512(224, Z12)
	SIGNPLANE512(232, Z13)
	VMOVDQU64	(BX)(CX*1), Z2
	VPTERNLOGQ	$0x80, Z14, Z2, Z1     // eq &= tie & tieMask
	VPORQ	Z1, Z0, Z0
	VMOVDQU64	Z0, (DX)(CX*1)
	ADDQ	$64, CX
	CMPQ	CX, SI
	JB	loop
done:
	VZEROUPPER
	RET

// func hammingAVX512(a, b *uint64, n int64) int64
TEXT ·hammingAVX512(SB), NOSPLIT, $0-32
	MOVQ	a+0(FP), R8
	MOVQ	b+8(FP), R9
	MOVQ	n+16(FP), SI
	SHLQ	$3, SI
	XORQ	CX, CX
	VPXORQ	Z0, Z0, Z0
	TESTQ	SI, SI
	JZ	done
loop:
	VMOVDQU64	(R8)(CX*1), Z1
	VPXORQ	(R9)(CX*1), Z1, Z1
	VPOPCNTQ	Z1, Z1
	VPADDQ	Z1, Z0, Z0
	ADDQ	$64, CX
	CMPQ	CX, SI
	JB	loop
done:
	VEXTRACTI64X4	$1, Z0, Y1
	VPADDQ	Y1, Y0, Y0
	VEXTRACTI128	$1, Y0, X1
	VPADDQ	X1, X0, X0
	VPSRLDQ	$8, X0, X1
	VPADDQ	X1, X0, X0
	VZEROUPPER
	MOVQ	X0, AX
	MOVQ	AX, ret+24(FP)
	RET
