//go:build !amd64

package hdc

// supportedKernelTables returns the tiers this platform can run. Without
// amd64 assembly only the portable word loops are available.
func supportedKernelTables() []*kernelTable { return []*kernelTable{portableKernels} }

// cpuFeatureString reports the detected SIMD features; none are probed
// on platforms without vector kernels.
func cpuFeatureString() string { return "" }
