package hdc

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync/atomic"
)

// Kernel dispatch. The straight-line word loops at the heart of the
// packed encoder — the Harley–Seal carry-save accumulation cascade, the
// bit-sliced small-sign majority compare, and the XOR+popcount Hamming
// query — exist in up to three implementations: the portable Go word
// loops (the semantic source of truth), AVX2 assembly, and AVX-512
// assembly (VPTERNLOGQ collapses each 3:2 carry-save step to one
// instruction; VPOPCNTDQ vectorizes the distance loop). CPU features are
// detected once at init and the best supported tier is installed in a
// process-wide function table; the GRAPHHD_KERNEL environment variable
// (portable|avx2|avx512) caps the choice for A/B benchmarking and
// forced-fallback testing.
//
// Every vector kernel processes only a lane-aligned prefix of the word
// range; the caller finishes the remaining words — including the masked
// tail word — with the portable loop. A word column's results never
// depend on any other column, so the split is exact and the vector tiers
// are bit-identical to the portable path by construction, a property the
// differential tests and FuzzBitCounter enforce per tier.

// KernelTier identifies one implementation tier of the hot-loop kernels.
type KernelTier uint8

const (
	// KernelPortable is the pure-Go word-loop implementation — the
	// fallback on every platform and the differential oracle for the
	// vector tiers.
	KernelPortable KernelTier = iota
	// KernelAVX2 is the 256-bit AVX2 assembly tier (4 words per step).
	KernelAVX2
	// KernelAVX512 is the 512-bit AVX-512 assembly tier (8 words per
	// step), using VPTERNLOGQ for the carry-save cascade and VPOPCNTDQ
	// for Hamming distances.
	KernelAVX512
)

// String returns the tier name used by GRAPHHD_KERNEL, /metrics, and
// BENCH artifacts.
func (t KernelTier) String() string {
	switch t {
	case KernelPortable:
		return "portable"
	case KernelAVX2:
		return "avx2"
	case KernelAVX512:
		return "avx512"
	}
	return fmt.Sprintf("kernel(%d)", uint8(t))
}

// ParseKernelTier parses a GRAPHHD_KERNEL value.
func ParseKernelTier(s string) (KernelTier, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "portable":
		return KernelPortable, nil
	case "avx2":
		return KernelAVX2, nil
	case "avx512":
		return KernelAVX512, nil
	}
	return KernelPortable, fmt.Errorf("hdc: unknown kernel tier %q (want portable, avx2 or avx512)", s)
}

// csaArgs is the argument block handed to the assembly kernels. The
// field offsets are part of the assembly ABI — kernels_amd64.s addresses
// them by the byte offsets noted below — and are pinned by a test.
//
// One csaArgs lives in each BitCounter with the plane and lane pointers
// pre-resolved at construction, so filling it per block costs only the
// per-block stream pointers.
type csaArgs struct {
	x   [8]*uint64 // +0   operand streams (raw kernels) / A streams (xor kernels); x[0] is tie for signPlanes
	y   [8]*uint64 // +64  B streams (xor kernels); y[0] is dst for signPlanes
	inv [8]uint64  // +128 XNOR masks per stream (xor kernels); cm[0..5] + tie mask for signPlanes

	ones, twos, fours, eights *uint64 // +192,200,208,216 carry-save planes
	sixteens, thirtytwos      *uint64 // +224,232 small-sign extension planes
	l0, l1, l2, l3            *uint64 // +240,248,256,264 byteLo lanes
	h0, h1, h2, h3            *uint64 // +272,280,288,296 byteHi lanes

	n int64 // +304 words to process; a multiple of the tier's lane width
}

// kernelTable is the capability-dispatched function table. On the
// portable tier every entry is nil and the callers run their word loops
// over the full range; on a vector tier each entry covers words
// [0, args.n) and the caller finishes the tail with the portable loop.
type kernelTable struct {
	tier  KernelTier
	lanes int // vector width in 64-bit words; 1 on the portable tier

	// csaBlock accumulates one block of eight raw word streams through
	// the carry-save cascade into the four planes, overflowing weight 16
	// into the byte lanes (AddWordsBlock / AddPlanned hot loop).
	csaBlock func(*csaArgs)
	// csaXorBlock is csaBlock computing each stream as A^B^inv on the
	// fly (AddXorPairs hot loop). Streams are NOT tail-masked by the
	// kernel; the caller keeps the masked tail word on the portable path.
	csaXorBlock func(*csaArgs)
	// csaSmallBlock / csaXorSmallBlock are the same cascades overflowing
	// into the sixteens/thirtytwos planes instead of the byte lanes (the
	// ≤63-vector small-sign kernels).
	csaSmallBlock    func(*csaArgs)
	csaXorSmallBlock func(*csaArgs)
	// signPlanes takes the majority of the six carry-save planes by
	// bit-sliced ripple compare, writes it to y[0], and zeroes the
	// consumed plane words (signPlanesInto hot loop).
	signPlanes func(*csaArgs)
	// hamming returns the XOR+popcount Hamming distance over words
	// [0, n) of two streams (PackedMemory query hot loop).
	hamming func(a, b *uint64, n int64) int64
}

// portableKernels is the universal fallback tier: no vector entry
// points, so every caller runs its portable word loop end to end.
var portableKernels = &kernelTable{tier: KernelPortable, lanes: 1}

// activeKernels is the installed tier. It is written at init (after CPU
// detection and the GRAPHHD_KERNEL override) and by SetKernel, and read
// once per batch-kernel call.
var activeKernels atomic.Pointer[kernelTable]

// kernelEnv records what GRAPHHD_KERNEL asked for, for operator
// diagnostics: a replica silently running a lower tier than requested is
// exactly what /healthz and the startup log exist to surface.
var kernelEnv struct {
	value     string // raw GRAPHHD_KERNEL value ("" if unset)
	requested KernelTier
	valid     bool
}

func init() {
	tables := supportedKernelTables() // ascending; always starts with portable
	chosen := tables[len(tables)-1]
	if s := os.Getenv("GRAPHHD_KERNEL"); s != "" {
		kernelEnv.value = s
		if req, err := ParseKernelTier(s); err == nil {
			kernelEnv.requested = req
			kernelEnv.valid = true
			chosen = clampKernelTier(tables, req)
		}
	}
	activeKernels.Store(chosen)
}

// clampKernelTier returns the best table whose tier does not exceed req.
// Requesting a tier the CPU cannot run therefore degrades to the best
// available one rather than crashing; KernelStatus exposes the gap.
func clampKernelTier(tables []*kernelTable, req KernelTier) *kernelTable {
	chosen := tables[0]
	for _, tb := range tables {
		if tb.tier <= req && tb.tier >= chosen.tier {
			chosen = tb
		}
	}
	return chosen
}

func loadKernels() *kernelTable { return activeKernels.Load() }

// ActiveKernel returns the kernel tier currently serving the hot paths.
func ActiveKernel() KernelTier { return loadKernels().tier }

// SupportedKernels returns every tier this process can run, ascending;
// the first entry is always KernelPortable.
func SupportedKernels() []KernelTier {
	tables := supportedKernelTables()
	out := make([]KernelTier, len(tables))
	for i, tb := range tables {
		out[i] = tb.tier
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SetKernel installs the given tier, failing if the CPU cannot run it.
// It exists for A/B benchmarking and forced-fallback tests; it is not
// meant to be called concurrently with accumulation (a BitCounter batch
// call snapshots the table once, so a mid-stream switch is safe but
// which tier a given block used is then unspecified).
func SetKernel(t KernelTier) error {
	for _, tb := range supportedKernelTables() {
		if tb.tier == t {
			activeKernels.Store(tb)
			return nil
		}
	}
	return fmt.Errorf("hdc: kernel tier %s not supported on this CPU (have %s)", t, strings.Join(kernelNames(SupportedKernels()), ","))
}

func kernelNames(ts []KernelTier) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

// KernelStatus describes the dispatch decision for operators: what the
// CPU offers, what was asked for, and what is actually running.
type KernelStatus struct {
	// Active is the tier currently installed.
	Active KernelTier
	// Supported lists every tier this process can run, ascending.
	Supported []KernelTier
	// CPUFeatures is a comma-separated list of the detected SIMD
	// features relevant to the kernels (e.g. "avx,avx2,avx512f,...").
	CPUFeatures string
	// EnvValue is the raw GRAPHHD_KERNEL value ("" when unset) and
	// EnvValid reports whether it parsed; Requested is the parsed tier.
	// A valid request above the best supported tier is clamped down —
	// Active < Requested is the "replica silently on the fallback"
	// signal fleet dashboards should alert on.
	EnvValue  string
	EnvValid  bool
	Requested KernelTier
}

// Kernels reports the dispatch decision made at init (or the latest
// SetKernel override).
func Kernels() KernelStatus {
	return KernelStatus{
		Active:      ActiveKernel(),
		Supported:   SupportedKernels(),
		CPUFeatures: cpuFeatureString(),
		EnvValue:    kernelEnv.value,
		EnvValid:    kernelEnv.valid,
		Requested:   kernelEnv.requested,
	}
}
