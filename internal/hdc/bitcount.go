package hdc

import (
	"fmt"
	"math"
	"math/bits"
)

// BitCounter counts, per component, how many of the added binary
// hypervectors had that bit set — the quantity majority bundling needs —
// without unpacking bits to integers. Components are accumulated in
// nibble-packed SWAR lanes: lane j of word w holds 4-bit counters for the
// 16 components {64w + 4k + j}, so one Add costs a handful of branchless
// word operations per 64 components instead of 64 integer additions.
// Nibble lanes fold into byte lanes whenever their accumulated weight
// would exceed 15 and byte lanes flush into full int32 counters before
// their weight can exceed 255, keeping the per-component work amortized
// far below one operation per add.
//
// The batch entry points (AddXorPairs, AddWordsBlock) put a Harley–Seal
// carry-save front end ahead of the lanes: groups of eight vectors are
// reduced per 64-bit word through a cascade of carry-save adders into
// persistent bit-sliced partial sums of weight 1/2/4/8, and only the
// weight-16 overflow of the top slice reaches a counter lane (the byte
// lanes, which absorb it directly) — one lane update per ~16 vectors
// instead of one per vector, with no nibble folding on the blocked path
// at all. AddXorWeighted accumulates one vector with an integer
// multiplicity, feeding the lanes the multiplicity directly instead of
// re-adding the vector.
//
// This is the software analogue of the "binarized bundling" hardware
// optimization of Schmuck et al. (JETC 2019) and is what makes GraphHD's
// packed encoder fast on CPUs.
//
// The total accumulated weight (Count) is capped at MaxAdds so that no
// per-component count can ever overflow its int32 storage; the add entry
// points panic past the cap.
//
// BitCounter is not safe for concurrent use; each encoding goroutine owns
// its own counter.
type BitCounter struct {
	d     int
	words int
	// dcap is the construction-time dimension: the capacity ceiling for
	// SetDim. All tier storage is sized for dcap; d ≤ dcap selects the
	// active prefix. countsAll is the full-capacity int32 slab that counts
	// re-slices into at the active width.
	dcap      int
	countsAll []int32
	// nib[j][w]: 16 nibble counters for components 64w + 4k + j.
	nib [4][]uint64
	// byteLo[j]/byteHi[j]: byte counters absorbing the even/odd nibbles of
	// lane j, so the expensive per-component flush runs every ~255 units
	// of weight instead of every 15.
	byteLo, byteHi [4][]uint64
	// csaOnes/csaTwos/csaFours/csaEights: bit-sliced carry-save partial
	// sums of weight 1, 2, 4 and 8 used by the blocked front end. They are
	// nonzero only while a batch call is running; the call drains them
	// into the nibble lanes before returning. All six planes are views
	// into one contiguous slab so the vector kernels stream them with a
	// single base pointer.
	csaOnes, csaTwos, csaFours, csaEights []uint64
	// csaSixteens/csaThirtyTwos extend the plane stack for the small-n
	// sign kernels (SignXorPairsSmallInto, SignPlannedSmallInto), which
	// keep counts of up to 63 vectors entirely bit-sliced and never touch
	// the nibble/byte/int32 tiers. Zero between calls, like the others.
	csaSixteens, csaThirtyTwos []uint64
	// csaParked is set while the carry-save planes hold weight that has
	// not yet reached a counter tier (mid batch call, or between a
	// small-sign accumulation and its plane compare). Every observer
	// funnels through flush, which drains parked planes first, so no
	// accessor — Popcount, CountAt, CountsInto, the sign fallbacks — can
	// ever see weight parked below the lane tiers, whichever kernel tier
	// (portable or vector) parked it.
	csaParked bool
	// kargs is the pre-resolved argument block handed to the vector
	// kernels; the plane and lane pointers are filled once at
	// construction, the stream pointers per block.
	kargs csaArgs
	// zeroWords is an all-zero operand used to pad the final partial block
	// of the carry-save kernels: feeding zeros through the CSA cascade
	// contributes nothing to any count, so a short tail costs one extra
	// block sweep instead of per-vector scalar lane updates. zeroPair is
	// the same padding in XorPair form (zero XOR zero, uninverted).
	zeroWords   []uint64
	zeroPair    XorPair
	pendingNib  int // weight added to nibble lanes since the last fold, <= 15
	pendingByte int // weight folded into byte lanes since the last flush, <= 255
	// countsDirty records whether the int32 counters hold any weight; when
	// they do not and n fits a byte, Sign* can run its SWAR fast path
	// straight off the byte lanes.
	countsDirty bool
	counts      []int32
	n           int
}

const (
	nibbleLaneMask = 0x1111111111111111
	byteLaneMask   = 0x0F0F0F0F0F0F0F0F
	byteStride     = 0x0101010101010101
	byteHighBits   = 0x8080808080808080
)

// MaxAdds is the maximum total weight a BitCounter accepts. Every
// per-component count is bounded by the total weight, so this cap is
// exactly what keeps the int32 counters from overflowing silently.
const MaxAdds = math.MaxInt32

// NewBitCounter returns an empty counter for dimension d.
func NewBitCounter(d int) *BitCounter {
	if d <= 0 {
		panic("hdc: non-positive dimension")
	}
	w := (d + 63) / 64
	c := &BitCounter{d: d, dcap: d, words: w, counts: make([]int32, d)}
	c.countsAll = c.counts
	for j := range c.nib {
		c.nib[j] = make([]uint64, w)
	}
	// The byte lanes and carry-save planes are views into contiguous
	// slabs: the vector kernels address all of them from the base
	// pointers below, and one allocation each keeps them cache-adjacent.
	laneSlab := make([]uint64, 8*w)
	for j := range c.byteLo {
		c.byteLo[j] = laneSlab[j*w : (j+1)*w : (j+1)*w]
		c.byteHi[j] = laneSlab[(4+j)*w : (5+j)*w : (5+j)*w]
	}
	csaSlab := make([]uint64, 6*w)
	c.csaOnes = csaSlab[0*w : 1*w : 1*w]
	c.csaTwos = csaSlab[1*w : 2*w : 2*w]
	c.csaFours = csaSlab[2*w : 3*w : 3*w]
	c.csaEights = csaSlab[3*w : 4*w : 4*w]
	c.csaSixteens = csaSlab[4*w : 5*w : 5*w]
	c.csaThirtyTwos = csaSlab[5*w : 6*w : 6*w]
	c.zeroWords = make([]uint64, w)
	zero := &Binary{d: d, words: c.zeroWords}
	c.zeroPair = XorPair{A: zero, B: zero}
	c.kargs.ones = &c.csaOnes[0]
	c.kargs.twos = &c.csaTwos[0]
	c.kargs.fours = &c.csaFours[0]
	c.kargs.eights = &c.csaEights[0]
	c.kargs.sixteens = &c.csaSixteens[0]
	c.kargs.thirtytwos = &c.csaThirtyTwos[0]
	c.kargs.l0, c.kargs.l1, c.kargs.l2, c.kargs.l3 = &c.byteLo[0][0], &c.byteLo[1][0], &c.byteLo[2][0], &c.byteLo[3][0]
	c.kargs.h0, c.kargs.h1, c.kargs.h2, c.kargs.h3 = &c.byteHi[0][0], &c.byteHi[1][0], &c.byteHi[2][0], &c.byteHi[3][0]
	return c
}

// vecWords returns how many leading words of this counter's planes a
// vector kernel of the given tier should process: the largest
// lane-aligned prefix, excluding the tail word when masked operand
// streams require per-word masking there (d not a multiple of 64). The
// caller finishes words [vecWords, words) on the portable path.
func (c *BitCounter) vecWords(k *kernelTable, masked bool) int {
	full := c.words
	if masked && c.d&63 != 0 {
		full--
	}
	return full &^ (k.lanes - 1)
}

// Dim returns the active dimensionality.
func (c *BitCounter) Dim() int { return c.d }

// Capacity returns the construction-time dimension: the largest value
// SetDim accepts.
func (c *BitCounter) Capacity() int { return c.dcap }

// SetDim re-targets the counter at dimension d, reusing the storage
// allocated at construction — the prefix-slicing hook that lets one
// counter serve encodes of several widths with zero reallocation. d must
// lie in [1, Capacity()]. Any accumulated weight is discarded (the
// counter is Reset at its current width first, where all dirty state
// lives, so narrowing then widening never resurrects stale counts).
//
// Operands handed to the accumulation entry points may be wider than the
// active dimension: only the first d components are read and the tail
// word is masked, so full-width basis vectors feed a narrowed counter
// directly, with no per-call prefix views.
func (c *BitCounter) SetDim(d int) {
	if d == c.d {
		return
	}
	if d < 1 || d > c.dcap {
		panic(fmt.Sprintf("hdc: dimension %d outside counter capacity [1,%d]", d, c.dcap))
	}
	c.Reset()
	c.d = d
	c.words = (d + 63) / 64
	c.counts = c.countsAll[:d]
}

// Count returns the total weight added so far (the number of hypervectors
// for unit-weight adds).
func (c *BitCounter) Count() int { return c.n }

// checkAdds panics if accepting weight more units would push the counter
// past MaxAdds, the documented overflow cap.
func (c *BitCounter) checkAdds(weight int) {
	if weight > MaxAdds-c.n {
		panic(fmt.Sprintf("hdc: BitCounter overflow: %d more adds on top of %d exceeds the %d cap", weight, c.n, MaxAdds))
	}
}

// tailMask returns the mask of valid bits in the final word.
func (c *BitCounter) tailMask() uint64 {
	if r := c.d & 63; r != 0 {
		return (1 << uint(r)) - 1
	}
	return ^uint64(0)
}

// checkOperand panics unless an operand of dimension d can cover the
// counter's active dimension. Operands wider than c.d are accepted — the
// prefix-slicing contract: accumulation reads only the first c.d
// components and masks the tail word, so full-width vectors feed a
// narrowed counter directly.
func (c *BitCounter) checkOperand(d int) {
	if d < c.d {
		panic(fmt.Sprintf("hdc: operand dimension %d below counter dimension %d", d, c.d))
	}
}

// Add accumulates the first d components of one binary hypervector
// (b may be wider than the counter; see SetDim).
func (c *BitCounter) Add(b *Binary) {
	c.checkOperand(b.d)
	c.checkAdds(1)
	c.n++
	c.addWordsLanes(b.words)
}

// AddXor accumulates the XOR (or, with invert, the XNOR) of two binary
// hypervectors without materializing it — the per-edge scalar path of the
// packed GraphHD encoder, where an edge hypervector is the XNOR of its
// endpoint vectors. The tail beyond d bits is masked so complemented
// garbage never reaches the counters. Batches of edges go faster through
// AddXorPairs.
func (c *BitCounter) AddXor(a, b *Binary, invert bool) {
	c.checkOperand(a.d)
	c.checkOperand(b.d)
	c.checkAdds(1)
	c.n++
	c.addXorLanes(a.words, b.words, invert)
}

// addXorLanes feeds one XOR/XNOR vector into the nibble lanes (weight 1,
// no count accounting).
func (c *BitCounter) addXorLanes(aw, bw []uint64, invert bool) {
	// Fold BEFORE feeding: weighted feeds may leave pendingNib at exactly
	// 15, and a nibble at 15 would wrap to 0 and carry into its neighbor
	// if one more unit landed first.
	if c.pendingNib+1 > 15 {
		c.foldNibbles()
	}
	c.pendingNib++
	n0, n1, n2, n3 := c.nib[0], c.nib[1], c.nib[2], c.nib[3]
	// Both branches mask the tail word: under inversion the complement
	// sets the unused high bits, and operands wider than the counter
	// (prefix slicing) carry live bits there even without inversion.
	tailMask := c.tailMask()
	last := c.words - 1
	if invert {
		for w := 0; w < c.words; w++ {
			x := ^(aw[w] ^ bw[w])
			if w == last {
				x &= tailMask
			}
			n0[w] += x & nibbleLaneMask
			n1[w] += (x >> 1) & nibbleLaneMask
			n2[w] += (x >> 2) & nibbleLaneMask
			n3[w] += (x >> 3) & nibbleLaneMask
		}
	} else {
		for w := 0; w < c.words; w++ {
			x := aw[w] ^ bw[w]
			if w == last {
				x &= tailMask
			}
			n0[w] += x & nibbleLaneMask
			n1[w] += (x >> 1) & nibbleLaneMask
			n2[w] += (x >> 2) & nibbleLaneMask
			n3[w] += (x >> 3) & nibbleLaneMask
		}
	}
}

// addWordsLanes feeds one raw word vector into the nibble lanes (weight 1,
// no count accounting).
func (c *BitCounter) addWordsLanes(x []uint64) {
	// Fold before feeding — same capacity argument as addXorLanes.
	if c.pendingNib+1 > 15 {
		c.foldNibbles()
	}
	c.pendingNib++
	n0, n1, n2, n3 := c.nib[0], c.nib[1], c.nib[2], c.nib[3]
	tailMask := c.tailMask()
	last := c.words - 1
	for w := 0; w < c.words; w++ {
		v := x[w]
		if w == last {
			// Operands wider than the counter carry live bits past d.
			v &= tailMask
		}
		n0[w] += v & nibbleLaneMask
		n1[w] += (v >> 1) & nibbleLaneMask
		n2[w] += (v >> 2) & nibbleLaneMask
		n3[w] += (v >> 3) & nibbleLaneMask
	}
}

// csa is a 3:2 carry-save adder: it compresses three bit-sliced summands
// of equal weight into a same-weight sum slice and a double-weight carry
// slice.
func csa(a, b, cin uint64) (sum, carry uint64) {
	u := a ^ b
	return u ^ cin, (a & b) | (u & cin)
}

// XorPair names one AddXorPairs operand pair: the XOR of A and B, or the
// XNOR when Invert is set.
type XorPair struct {
	A, B   *Binary
	Invert bool
}

// AddXorPairs accumulates a block of XOR/XNOR edge vectors — equivalent to
// calling AddXor for each pair in order, but routed through the
// carry-save front end: groups of eight pairs are reduced per word by a
// Harley–Seal CSA cascade into the persistent weight-1/2/4/8 slices, and
// only the weight-16 overflow of the top tier touches a counter lane (the
// byte lanes, which absorb it directly). A full block therefore costs one
// lane update per ~16 edges instead of one per edge, and the inner loop
// is a single cache-friendly sweep over the d/64 words of the block's
// operands. A short final block is padded with zero operands, which flow
// through the CSA cascade without contributing to any count.
func (c *BitCounter) AddXorPairs(pairs []XorPair) {
	for _, p := range pairs {
		c.checkOperand(p.A.d)
		c.checkOperand(p.B.d)
	}
	c.checkAdds(len(pairs))
	c.n += len(pairs)
	if len(pairs) == 0 {
		return
	}
	kern := loadKernels()
	nw := c.words
	var aws, bws [8][]uint64
	var vs [8]uint64
	for i := 0; i < len(pairs); i += 8 {
		n := len(pairs) - i
		if n > 8 {
			n = 8
		}
		for k := 0; k < n; k++ {
			p := &pairs[i+k]
			aws[k], bws[k], vs[k] = p.A.words[:nw], p.B.words[:nw], invMask(p.Invert)
		}
		// A short final block is padded with zero streams: XOR of two
		// zero streams contributes nothing to any count, so the tail
		// costs one block sweep instead of per-vector lane updates.
		for k := n; k < 8; k++ {
			aws[k], bws[k], vs[k] = c.zeroWords, c.zeroWords, 0
		}
		c.addXorBlock8(kern, &aws, &bws, &vs)
	}
	c.drainCarrySave()
}

// addXorBlock8 feeds one Harley–Seal block of exactly eight XOR/XNOR
// operand streams (zero-padded by the caller if fewer are live) through
// the carry-save cascade, overflowing weight 16 into the byte lanes.
// The vector kernel, when one is installed, sweeps the lane-aligned
// word prefix; the portable loop finishes the rest, including the
// masked tail word. Count accounting is the caller's.
func (c *BitCounter) addXorBlock8(kern *kernelTable, aws, bws *[8][]uint64, vs *[8]uint64) {
	// The sixteens overflow carries up to 16 units per component
	// into the byte lanes.
	if c.pendingByte+16 > 255 {
		c.flushBytes()
	}
	c.pendingByte += 16
	c.csaParked = true
	lo := 0
	if kern.csaXorBlock != nil {
		if vn := c.vecWords(kern, true); vn > 0 {
			a := &c.kargs
			for k := 0; k < 8; k++ {
				a.x[k] = &aws[k][0]
				a.y[k] = &bws[k][0]
				a.inv[k] = vs[k]
			}
			a.n = int64(vn)
			kern.csaXorBlock(a)
			lo = vn
		}
	}
	c.csaXorBlock8Range(aws, bws, vs, lo)
}

// csaXorBlock8Range is the portable CSA cascade for one block of eight
// XOR/XNOR operand streams over words [lo, words) — the semantic source
// of truth the vector tiers must match bit for bit (the full-range call
// with lo = 0 is the portable tier itself).
func (c *BitCounter) csaXorBlock8Range(aws, bws *[8][]uint64, vs *[8]uint64, lo int) {
	nw := c.words
	last := nw - 1
	tail := c.tailMask()
	ones, twos, fours, eights := c.csaOnes, c.csaTwos, c.csaFours, c.csaEights
	a0, b0, v0 := aws[0], bws[0], vs[0]
	a1, b1, v1 := aws[1], bws[1], vs[1]
	a2, b2, v2 := aws[2], bws[2], vs[2]
	a3, b3, v3 := aws[3], bws[3], vs[3]
	a4, b4, v4 := aws[4], bws[4], vs[4]
	a5, b5, v5 := aws[5], bws[5], vs[5]
	a6, b6, v6 := aws[6], bws[6], vs[6]
	a7, b7, v7 := aws[7], bws[7], vs[7]
	l0, l1, l2, l3 := c.byteLo[0], c.byteLo[1], c.byteLo[2], c.byteLo[3]
	h0, h1, h2, h3 := c.byteHi[0], c.byteHi[1], c.byteHi[2], c.byteHi[3]
	for w := lo; w < nw; w++ {
		m := ^uint64(0)
		if w == last {
			m = tail
		}
		x0 := (a0[w] ^ b0[w] ^ v0) & m
		x1 := (a1[w] ^ b1[w] ^ v1) & m
		x2 := (a2[w] ^ b2[w] ^ v2) & m
		x3 := (a3[w] ^ b3[w] ^ v3) & m
		x4 := (a4[w] ^ b4[w] ^ v4) & m
		x5 := (a5[w] ^ b5[w] ^ v5) & m
		x6 := (a6[w] ^ b6[w] ^ v6) & m
		x7 := (a7[w] ^ b7[w] ^ v7) & m
		o, twosA := csa(ones[w], x0, x1)
		o, twosB := csa(o, x2, x3)
		t, foursA := csa(twos[w], twosA, twosB)
		o, twosA = csa(o, x4, x5)
		o, twosB = csa(o, x6, x7)
		t, foursB := csa(t, twosA, twosB)
		f, e8 := csa(fours[w], foursA, foursB)
		e := eights[w]
		s16 := e & e8
		ones[w], twos[w], fours[w], eights[w] = o, t, f, e^e8
		if s16 != 0 {
			l0[w] += (s16 & byteStride) << 4
			l1[w] += ((s16 >> 1) & byteStride) << 4
			l2[w] += ((s16 >> 2) & byteStride) << 4
			l3[w] += ((s16 >> 3) & byteStride) << 4
			h0[w] += ((s16 >> 4) & byteStride) << 4
			h1[w] += ((s16 >> 5) & byteStride) << 4
			h2[w] += ((s16 >> 6) & byteStride) << 4
			h3[w] += ((s16 >> 7) & byteStride) << 4
		}
	}
}

// invMask maps an invert flag to the XOR mask that applies it.
func invMask(invert bool) uint64 {
	if invert {
		return ^uint64(0)
	}
	return 0
}

// AddWordsBlock accumulates a block of raw packed word vectors through the
// same carry-save front end as AddXorPairs — equivalent to adding each
// vector in order. Every vector must have the counter's word length and,
// as with Binary.Words, zero bits beyond dimension d. As in AddXorPairs,
// a short final block is padded with the zero operand.
func (c *BitCounter) AddWordsBlock(vecs [][]uint64) {
	for _, v := range vecs {
		if len(v) != c.words {
			panic(fmt.Sprintf("hdc: word vector length %d, want %d", len(v), c.words))
		}
	}
	c.checkAdds(len(vecs))
	c.n += len(vecs)
	if len(vecs) == 0 {
		return
	}
	kern := loadKernels()
	nw := c.words
	var ops [8][]uint64
	for i := 0; i < len(vecs); i += 8 {
		n := len(vecs) - i
		if n > 8 {
			n = 8
		}
		for k := 0; k < n; k++ {
			ops[k] = vecs[i+k][:nw]
		}
		for k := n; k < 8; k++ {
			ops[k] = c.zeroWords
		}
		c.addBlock8(kern, &ops)
	}
	c.drainCarrySave()
}

// addBlock8 feeds one Harley–Seal block of exactly eight word streams
// (zero-padded by the caller if fewer are live) through the carry-save
// cascade. Streams must be tail-masked; count accounting is the caller's.
// The vector kernel, when one is installed, sweeps the lane-aligned word
// prefix and the portable loop finishes the remainder.
func (c *BitCounter) addBlock8(kern *kernelTable, ops *[8][]uint64) {
	if c.pendingByte+16 > 255 {
		c.flushBytes()
	}
	c.pendingByte += 16
	c.csaParked = true
	lo := 0
	if kern.csaBlock != nil {
		if vn := c.vecWords(kern, false); vn > 0 {
			a := &c.kargs
			for k := 0; k < 8; k++ {
				a.x[k] = &ops[k][0]
			}
			a.n = int64(vn)
			kern.csaBlock(a)
			lo = vn
		}
	}
	c.csaBlock8Range(ops, lo)
}

// csaBlock8Range is the portable CSA cascade for one block of eight raw
// word streams over words [lo, words) — the semantic source of truth the
// vector tiers must match bit for bit.
func (c *BitCounter) csaBlock8Range(ops *[8][]uint64, lo int) {
	nw := c.words
	ones, twos, fours, eights := c.csaOnes, c.csaTwos, c.csaFours, c.csaEights
	x0s, x1s, x2s, x3s := ops[0], ops[1], ops[2], ops[3]
	x4s, x5s, x6s, x7s := ops[4], ops[5], ops[6], ops[7]
	l0, l1, l2, l3 := c.byteLo[0], c.byteLo[1], c.byteLo[2], c.byteLo[3]
	h0, h1, h2, h3 := c.byteHi[0], c.byteHi[1], c.byteHi[2], c.byteHi[3]
	for w := lo; w < nw; w++ {
		o, twosA := csa(ones[w], x0s[w], x1s[w])
		o, twosB := csa(o, x2s[w], x3s[w])
		t, foursA := csa(twos[w], twosA, twosB)
		o, twosA = csa(o, x4s[w], x5s[w])
		o, twosB = csa(o, x6s[w], x7s[w])
		t, foursB := csa(t, twosA, twosB)
		f, e8 := csa(fours[w], foursA, foursB)
		e := eights[w]
		s16 := e & e8
		ones[w], twos[w], fours[w], eights[w] = o, t, f, e^e8
		if s16 != 0 {
			l0[w] += (s16 & byteStride) << 4
			l1[w] += ((s16 >> 1) & byteStride) << 4
			l2[w] += ((s16 >> 2) & byteStride) << 4
			l3[w] += ((s16 >> 3) & byteStride) << 4
			h0[w] += ((s16 >> 4) & byteStride) << 4
			h1[w] += ((s16 >> 5) & byteStride) << 4
			h2[w] += ((s16 >> 6) & byteStride) << 4
			h3[w] += ((s16 >> 7) & byteStride) << 4
		}
	}
}

// drainCarrySave feeds the parked weight-1/2/4/8 carry-save slices into
// the counter lanes and zeroes them, restoring the invariant that all
// accumulated weight lives in the lane/counter tiers between calls.
func (c *BitCounter) drainCarrySave() {
	c.csaParked = false
	// A bit can be set in all four slices at once, so the drain carries up
	// to 1+2+4+8 = 15 units of weight per component.
	ones, twos, fours, eights := c.csaOnes, c.csaTwos, c.csaFours, c.csaEights
	if c.pendingNib == 0 {
		// Common case on the blocked path: the nibble lanes are empty, so
		// the assembled 4-bit values can split straight into the byte
		// lanes — one conversion instead of the CSA→nibble→byte double
		// round trip (the nibble tier's whole job is batching scalar adds,
		// and there is nothing to batch with here).
		if c.pendingByte+15 > 255 {
			c.flushBytes()
		}
		c.pendingByte += 15
		for w := 0; w < c.words; w++ {
			o, t, f, e := ones[w], twos[w], fours[w], eights[w]
			if o|t|f|e == 0 {
				continue
			}
			ones[w], twos[w], fours[w], eights[w] = 0, 0, 0, 0
			for j := 0; j < 4; j++ {
				v := ((o >> j) & nibbleLaneMask) + (((t>>j)&nibbleLaneMask)<<1 + (((f>>j)&nibbleLaneMask)<<2 + (((e >> j) & nibbleLaneMask) << 3)))
				c.byteLo[j][w] += v & byteLaneMask
				c.byteHi[j][w] += (v >> 4) & byteLaneMask
			}
		}
		return
	}
	// Scalar adds are pending in the nibble tier: the drain's up-to-15
	// units fill a nibble's full capacity, so prior weight folds out
	// first and the drain lands in the nibble lanes.
	c.foldNibbles()
	c.pendingNib = 15
	n0, n1, n2, n3 := c.nib[0], c.nib[1], c.nib[2], c.nib[3]
	for w := 0; w < c.words; w++ {
		o, t, f, e := ones[w], twos[w], fours[w], eights[w]
		if o|t|f|e == 0 {
			continue
		}
		ones[w], twos[w], fours[w], eights[w] = 0, 0, 0, 0
		n0[w] += (o & nibbleLaneMask) + ((t&nibbleLaneMask)<<1 + ((f&nibbleLaneMask)<<2 + ((e & nibbleLaneMask) << 3)))
		n1[w] += ((o >> 1) & nibbleLaneMask) + (((t>>1)&nibbleLaneMask)<<1 + (((f>>1)&nibbleLaneMask)<<2 + (((e >> 1) & nibbleLaneMask) << 3)))
		n2[w] += ((o >> 2) & nibbleLaneMask) + (((t>>2)&nibbleLaneMask)<<1 + (((f>>2)&nibbleLaneMask)<<2 + (((e >> 2) & nibbleLaneMask) << 3)))
		n3[w] += ((o >> 3) & nibbleLaneMask) + (((t>>3)&nibbleLaneMask)<<1 + (((f>>3)&nibbleLaneMask)<<2 + (((e >> 3) & nibbleLaneMask) << 3)))
	}
}

// AddXorWeighted accumulates the XOR (or, with invert, the XNOR) of a and
// b with integer multiplicity weight — exactly equivalent to calling
// AddXor weight times, in O(weight/15) lane sweeps for small weights and
// one direct pass over the int32 counters for large ones. This is what
// lets the encoder accumulate each distinct rank-pair bind vector once,
// however many edges map to it. A zero weight is a no-op; negative
// weights panic.
func (c *BitCounter) AddXorWeighted(a, b *Binary, invert bool, weight int) {
	c.checkOperand(a.d)
	c.checkOperand(b.d)
	if weight < 0 {
		panic(fmt.Sprintf("hdc: negative weight %d", weight))
	}
	if weight == 0 {
		return
	}
	c.checkAdds(weight)
	c.n += weight
	aw, bw := a.words, b.words
	last := c.words - 1
	tail := c.tailMask()
	if weight > 64 {
		// Large multiplicities skip the SWAR tiers: weight is added
		// straight to the int32 counters per set bit. The counters and the
		// lanes are independent addends, so no flush is needed first.
		c.countsDirty = true
		for w := 0; w < c.words; w++ {
			x := aw[w] ^ bw[w]
			if invert {
				x = ^x
			}
			if w == last {
				x &= tail
			}
			base := w << 6
			for x != 0 {
				c.counts[base+bits.TrailingZeros64(x)] += int32(weight)
				x &= x - 1
			}
		}
		return
	}
	n0, n1, n2, n3 := c.nib[0], c.nib[1], c.nib[2], c.nib[3]
	for weight > 0 {
		chunk := weight
		if chunk > 15 {
			chunk = 15
		}
		weight -= chunk
		if c.pendingNib+chunk > 15 {
			c.foldNibbles()
		}
		c.pendingNib += chunk
		cw := uint64(chunk)
		for w := 0; w < c.words; w++ {
			x := aw[w] ^ bw[w]
			if invert {
				x = ^x
			}
			if w == last {
				x &= tail
			}
			n0[w] += (x & nibbleLaneMask) * cw
			n1[w] += ((x >> 1) & nibbleLaneMask) * cw
			n2[w] += ((x >> 2) & nibbleLaneMask) * cw
			n3[w] += ((x >> 3) & nibbleLaneMask) * cw
		}
	}
}

// foldNibbles drains the nibble lanes into the byte lanes, flushing the
// byte lanes first if the incoming weight could overflow a byte counter.
func (c *BitCounter) foldNibbles() {
	if c.pendingNib == 0 {
		return
	}
	if c.pendingByte+c.pendingNib > 255 {
		c.flushBytes()
	}
	for j := 0; j < 4; j++ {
		lane, lo, hi := c.nib[j], c.byteLo[j], c.byteHi[j]
		for w := 0; w < c.words; w++ {
			v := lane[w]
			if v == 0 {
				continue
			}
			lane[w] = 0
			lo[w] += v & byteLaneMask
			hi[w] += (v >> 4) & byteLaneMask
		}
	}
	c.pendingByte += c.pendingNib
	c.pendingNib = 0
}

// flushBytes drains the byte lanes into the int32 counters. Byte k of
// byteLo[j][w] counts component 64w + 8k + j; byteHi[j][w] counts
// component 64w + 8k + 4 + j. Full words unpack all eight bytes
// unconditionally (branchless, the lanes are dense by flush time); only a
// partial final word pays per-component range checks.
func (c *BitCounter) flushBytes() {
	if c.pendingByte == 0 {
		return
	}
	c.countsDirty = true
	full := c.words
	if c.d&63 != 0 {
		full--
	}
	counts := c.counts
	for j := 0; j < 4; j++ {
		for half, lane := range [2][]uint64{c.byteLo[j], c.byteHi[j]} {
			off := j + 4*half
			for w := 0; w < full; w++ {
				v := lane[w]
				if v == 0 {
					continue
				}
				lane[w] = 0
				dst := counts[w<<6+off:]
				dst[0] += int32(v & 0xFF)
				dst[8] += int32((v >> 8) & 0xFF)
				dst[16] += int32((v >> 16) & 0xFF)
				dst[24] += int32((v >> 24) & 0xFF)
				dst[32] += int32((v >> 32) & 0xFF)
				dst[40] += int32((v >> 40) & 0xFF)
				dst[48] += int32((v >> 48) & 0xFF)
				dst[56] += int32(v >> 56)
			}
			if full < c.words {
				w := full
				v := lane[w]
				lane[w] = 0
				base := w << 6
				for k := 0; v != 0; k++ {
					if bv := v & 0xFF; bv != 0 {
						dim := base + k<<3 + off
						if dim < c.d {
							counts[dim] += int32(bv)
						}
					}
					v >>= 8
				}
			}
		}
	}
	c.pendingByte = 0
}

// flush drains every intermediate tier into the int32 counters: parked
// carry-save planes first, then the nibble and byte lanes. All observers
// — CountsInto, CountAt, Popcount, the sign fallbacks — share this one
// pre-condition path, so none of them can observe weight still parked in
// the carry-save planes by a batch or vector drain entry point.
func (c *BitCounter) flush() {
	if c.csaParked {
		c.drainCarrySave()
	}
	c.foldNibbles()
	c.flushBytes()
}

// CountAt returns the accumulated count of component i.
func (c *BitCounter) CountAt(i int) int {
	if i < 0 || i >= c.d {
		panic(fmt.Sprintf("hdc: component %d out of range", i))
	}
	c.flush()
	return int(c.counts[i])
}

// CountsInto flushes the intermediate lanes and copies the per-component
// counts into dst, which must have length d; returns dst. The copy keeps
// the counter's carry state private — the former Counts accessor handed
// out the internal slice, and a caller writing through it would have
// silently corrupted every later fold.
func (c *BitCounter) CountsInto(dst []int32) []int32 {
	if len(dst) != c.d {
		panic(fmt.Sprintf("hdc: destination length %d, want %d", len(dst), c.d))
	}
	c.flush()
	copy(dst, c.counts)
	return dst
}

// SignBipolar collapses the counter to a bipolar hypervector by majority:
// component i is +1 when more than half of the n added vectors had bit i
// set, -1 when fewer, and tie[i] on an exact tie. This matches
// Accumulator.Sign under the bit↔bipolar mapping exactly.
func (c *BitCounter) SignBipolar(tie *Bipolar) *Bipolar {
	return c.SignBipolarInto(tie, &Bipolar{comps: make([]int8, c.d)})
}

// SignBipolarInto is SignBipolar writing the result into dst, which must
// have the counter's dimension; every component is overwritten. It
// performs no heap allocations, the property the scratch-reuse encoding
// path depends on. Returns dst.
func (c *BitCounter) SignBipolarInto(tie, dst *Bipolar) *Bipolar {
	mustSameDim(c.d, tie.Dim())
	mustSameDim(c.d, dst.Dim())
	c.flush()
	out := dst.comps
	ties := tie.comps
	// The comparison runs in 64-bit: 2*cnt would wrap int32 once n
	// reached 2³⁰, silently inverting the majority of saturated
	// components. The select is branchless — count-vs-n is a coin flip
	// per component, so data-dependent branches would mispredict half the
	// time across all d components.
	n := int64(c.n)
	for i, cnt := range c.counts {
		twice := 2 * int64(cnt)
		gt := int8(uint64(n-twice) >> 63) // 1 iff twice > n
		lt := int8(uint64(twice-n) >> 63) // 1 iff twice < n
		out[i] = gt - lt + (1-(gt|lt))*ties[i]
	}
	return dst
}

// SignBinary collapses the counter to a bit-packed binary hypervector by
// the same majority rule as SignBipolar: bit i is set when more than half
// of the n added vectors had it set, cleared when fewer, and copied from
// tie on an exact tie. SignBinary(tiePacked) == SignBipolar(tie).PackBinary()
// bit for bit, which is what lets the packed encoder skip the int8 detour
// entirely.
func (c *BitCounter) SignBinary(tie *Binary) *Binary {
	return c.SignBinaryInto(tie, NewBinary(c.d))
}

// SignBinaryInto is SignBinary writing the result into dst, which must
// have the counter's dimension; every word is overwritten. It performs no
// heap allocations, the property the scratch-reuse encoding path depends
// on. Each output word is assembled before being stored, so dst may alias
// tie. Returns dst.
func (c *BitCounter) SignBinaryInto(tie, dst *Binary) *Binary {
	// tie may be wider than the counter (prefix slicing): tie bits land in
	// the output only on exact ties, which cannot occur past dimension d
	// (those components hold zero count, and 0 == n/2 only for n == 0).
	// dst is canonical output and must match exactly.
	c.checkOperand(tie.d)
	if c.d != dst.d {
		panic(fmt.Sprintf("hdc: destination dimension %d, want %d", dst.d, c.d))
	}
	if c.signBinarySWAR(tie, dst) {
		return dst
	}
	c.flush()
	n := int64(c.n) // 64-bit majority comparison, as in SignBipolarInto
	for w := 0; w < c.words; w++ {
		var out uint64
		tieW := tie.words[w]
		base := w << 6
		end := c.d - base
		if end > 64 {
			end = 64
		}
		// Branchless select, same rationale as SignBipolarInto.
		for b, cnt := range c.counts[base : base+end] {
			twice := 2 * int64(cnt)
			gt := (uint64(n-twice) >> 63) // 1 iff twice > n
			lt := (uint64(twice-n) >> 63) // 1 iff twice < n
			bit := gt | (1 &^ (gt | lt) & (tieW >> uint(b)))
			out |= bit << uint(b)
		}
		dst.words[w] = out
	}
	return dst
}

// signBinarySWAR is the fast majority path: when every per-component
// count still lives in the byte lanes (nothing has been flushed to the
// int32 tier) and n fits in 7 bits, the majority compare runs eight
// components per word operation directly on the byte lanes — no flush,
// no per-component loop. Reports whether it handled the sign.
//
// The byte arithmetic is exact because every byte operand stays ≤ 127:
// per-byte sums with a bias < 128 cannot carry into the neighboring byte.
func (c *BitCounter) signBinarySWAR(tie, dst *Binary) bool {
	if c.csaParked {
		// Same drain pre-condition as flush: weight parked in the
		// carry-save planes moves to the lane tiers before any fast-path
		// eligibility is judged.
		c.drainCarrySave()
	}
	if c.countsDirty || c.n > 127 {
		return false
	}
	c.foldNibbles() // move all remaining weight into the byte lanes
	if c.countsDirty {
		// The fold's conservative byte-weight accounting can trigger a
		// flush even though the true per-byte weight (≤ n ≤ 127) fits; if
		// it did, part of the weight now lives in the int32 tier.
		return false
	}
	n := uint64(c.n)
	// bit set  ⟺ 2v > n ⟺ v ≥ n/2+1:  (v + bias) has its high bit set.
	bias := (128 - (n/2 + 1)) * byteStride
	if n%2 == 1 {
		// Odd n cannot tie, so the majority is just the biased-add high
		// bit — no tie word loads, no zero-byte tests.
		for w := 0; w < c.words; w++ {
			var out uint64
			for j := 0; j < 4; j++ {
				lo := c.byteLo[j][w]
				hi := c.byteHi[j][w]
				out |= (((lo + bias) & byteHighBits) >> 7) << uint(j)
				out |= (((hi + bias) & byteHighBits) >> 7) << uint(j+4)
			}
			dst.words[w] = out
		}
		return true
	}
	// Even n from here on. tie ⟺ 2v = n, i.e. v = n/2.
	half := (n / 2) * byteStride
	for w := 0; w < c.words; w++ {
		var out uint64
		tieW := tie.words[w]
		for j := 0; j < 4; j++ {
			lo := c.byteLo[j][w] // byte k counts component 64w + 8k + j
			hi := c.byteHi[j][w] // byte k counts component 64w + 8k + 4 + j
			out |= (((lo + bias) & byteHighBits) >> 7) << uint(j)
			out |= (((hi + bias) & byteHighBits) >> 7) << uint(j+4)
			// Zero-byte test of v ^ half: with all bytes ≤ 127, adding
			// 0x7F saturates the high bit exactly when the byte is nonzero.
			eqLo := ^(((lo ^ half) + 0x7F*byteStride) & byteHighBits) & byteHighBits
			eqHi := ^(((hi ^ half) + 0x7F*byteStride) & byteHighBits) & byteHighBits
			out |= ((eqLo >> 7) << uint(j)) & tieW
			out |= ((eqHi >> 7) << uint(j+4)) & tieW
		}
		dst.words[w] = out
	}
	return true
}

// Reset clears the counter. Each storage tier is cleared only when the
// counter's own accounting says it can hold weight — pendingNib/
// pendingByte conservatively over-approximate lane occupancy and
// countsDirty tracks the int32 tier — so resetting after a small
// accumulation signed through the SWAR fast path touches a few KB of
// lanes instead of memclearing the d-sized count array. This is what
// keeps per-graph Reset cheap on the batch encoding path, where one
// counter is reset once per graph.
func (c *BitCounter) Reset() {
	if c.pendingNib > 0 {
		for j := range c.nib {
			clear(c.nib[j])
		}
	}
	if c.pendingByte > 0 {
		for j := range c.byteLo {
			clear(c.byteLo[j])
			clear(c.byteHi[j])
		}
	}
	if c.countsDirty {
		clear(c.counts)
	}
	// The carry-save planes are zero between calls (every batch entry
	// point drains them and the small-sign kernels consume them before
	// returning) and csaParked tracks exactly the windows where they are
	// not, so they only need clearing when a drain was skipped.
	if c.csaParked {
		clear(c.csaOnes)
		clear(c.csaTwos)
		clear(c.csaFours)
		clear(c.csaEights)
		clear(c.csaSixteens)
		clear(c.csaThirtyTwos)
		c.csaParked = false
	}
	c.pendingNib = 0
	c.pendingByte = 0
	c.countsDirty = false
	c.n = 0
}

// Popcount returns the total number of set bits accumulated (the sum of
// all per-component counts), useful as a cheap checksum in tests.
func (c *BitCounter) Popcount() int {
	c.flush()
	total := 0
	for _, v := range c.counts {
		total += int(v)
	}
	return total
}
