package hdc

import (
	"fmt"
)

// BitCounter counts, per component, how many of the added binary
// hypervectors had that bit set — the quantity majority bundling needs —
// without unpacking bits to integers. Components are accumulated in
// nibble-packed SWAR lanes: lane j of word w holds 4-bit counters for the
// 16 components {64w + 4k + j}, so one Add costs a handful of branchless
// word operations per 64 components instead of 64 integer additions.
// Nibble lanes fold into byte lanes every 15 adds and byte lanes flush
// into full int32 counters every 240 adds, keeping the per-component work
// amortized far below one operation per add.
//
// This is the software analogue of the "binarized bundling" hardware
// optimization of Schmuck et al. (JETC 2019) and is what makes GraphHD's
// packed encoder fast on CPUs.
//
// BitCounter is not safe for concurrent use; each encoding goroutine owns
// its own counter.
type BitCounter struct {
	d     int
	words int
	// nib[j][w]: 16 nibble counters for components 64w + 4k + j.
	nib [4][]uint64
	// byteLo[j]/byteHi[j]: byte counters absorbing the even/odd nibbles of
	// lane j, so the expensive per-component flush runs every 240 adds
	// instead of every 15.
	byteLo, byteHi [4][]uint64
	pendingNib     int // adds since the last nibble fold, <= 15
	pendingByte    int // nibble folds since the last full flush, <= 16
	counts         []int32
	n              int
}

const (
	nibbleLaneMask = 0x1111111111111111
	byteLaneMask   = 0x0F0F0F0F0F0F0F0F
)

// NewBitCounter returns an empty counter for dimension d.
func NewBitCounter(d int) *BitCounter {
	if d <= 0 {
		panic("hdc: non-positive dimension")
	}
	w := (d + 63) / 64
	c := &BitCounter{d: d, words: w, counts: make([]int32, d)}
	for j := range c.nib {
		c.nib[j] = make([]uint64, w)
		c.byteLo[j] = make([]uint64, w)
		c.byteHi[j] = make([]uint64, w)
	}
	return c
}

// Dim returns the dimensionality.
func (c *BitCounter) Dim() int { return c.d }

// Count returns the number of hypervectors added so far.
func (c *BitCounter) Count() int { return c.n }

// Add accumulates one binary hypervector.
func (c *BitCounter) Add(b *Binary) {
	if b.d != c.d {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", b.d, c.d))
	}
	c.addWords(b.words)
}

// AddXor accumulates the XOR (or, with invert, the XNOR) of two binary
// hypervectors without materializing it — the hot path of the packed
// GraphHD encoder, where an edge hypervector is the XNOR of its endpoint
// vectors. The tail beyond d bits is masked so complemented garbage never
// reaches the counters.
func (c *BitCounter) AddXor(a, b *Binary, invert bool) {
	if a.d != c.d || b.d != c.d {
		panic("hdc: dimension mismatch")
	}
	c.n++
	n0, n1, n2, n3 := c.nib[0], c.nib[1], c.nib[2], c.nib[3]
	aw, bw := a.words, b.words
	if invert {
		tailMask := ^uint64(0)
		if r := c.d & 63; r != 0 {
			tailMask = (1 << uint(r)) - 1
		}
		last := c.words - 1
		for w := 0; w < c.words; w++ {
			x := ^(aw[w] ^ bw[w])
			if w == last {
				x &= tailMask
			}
			n0[w] += x & nibbleLaneMask
			n1[w] += (x >> 1) & nibbleLaneMask
			n2[w] += (x >> 2) & nibbleLaneMask
			n3[w] += (x >> 3) & nibbleLaneMask
		}
	} else {
		for w := 0; w < c.words; w++ {
			x := aw[w] ^ bw[w]
			n0[w] += x & nibbleLaneMask
			n1[w] += (x >> 1) & nibbleLaneMask
			n2[w] += (x >> 2) & nibbleLaneMask
			n3[w] += (x >> 3) & nibbleLaneMask
		}
	}
	if c.pendingNib++; c.pendingNib == 15 {
		c.foldNibbles()
	}
}

// addWords accumulates a raw word vector.
func (c *BitCounter) addWords(x []uint64) {
	c.n++
	n0, n1, n2, n3 := c.nib[0], c.nib[1], c.nib[2], c.nib[3]
	for w := 0; w < c.words; w++ {
		v := x[w]
		n0[w] += v & nibbleLaneMask
		n1[w] += (v >> 1) & nibbleLaneMask
		n2[w] += (v >> 2) & nibbleLaneMask
		n3[w] += (v >> 3) & nibbleLaneMask
	}
	if c.pendingNib++; c.pendingNib == 15 {
		c.foldNibbles()
	}
}

// foldNibbles drains the nibble lanes into the byte lanes.
func (c *BitCounter) foldNibbles() {
	if c.pendingNib == 0 {
		return
	}
	for j := 0; j < 4; j++ {
		lane, lo, hi := c.nib[j], c.byteLo[j], c.byteHi[j]
		for w := 0; w < c.words; w++ {
			v := lane[w]
			if v == 0 {
				continue
			}
			lane[w] = 0
			lo[w] += v & byteLaneMask
			hi[w] += (v >> 4) & byteLaneMask
		}
	}
	c.pendingNib = 0
	if c.pendingByte++; c.pendingByte == 16 {
		c.flushBytes()
	}
}

// flushBytes drains the byte lanes into the int32 counters. Byte k of
// byteLo[j][w] counts component 64w + 8k + j; byteHi[j][w] counts
// component 64w + 8k + 4 + j.
func (c *BitCounter) flushBytes() {
	for j := 0; j < 4; j++ {
		for half, lane := range [2][]uint64{c.byteLo[j], c.byteHi[j]} {
			off := j + 4*half
			for w := 0; w < c.words; w++ {
				v := lane[w]
				if v == 0 {
					continue
				}
				lane[w] = 0
				base := w << 6
				for k := 0; v != 0; k++ {
					if bv := v & 0xFF; bv != 0 {
						dim := base + k<<3 + off
						if dim < c.d {
							c.counts[dim] += int32(bv)
						}
					}
					v >>= 8
				}
			}
		}
	}
	c.pendingByte = 0
}

// flush drains all intermediate lanes into the int32 counters.
func (c *BitCounter) flush() {
	c.foldNibbles()
	c.flushBytes()
}

// CountAt returns the accumulated count of component i.
func (c *BitCounter) CountAt(i int) int {
	if i < 0 || i >= c.d {
		panic(fmt.Sprintf("hdc: component %d out of range", i))
	}
	c.flush()
	return int(c.counts[i])
}

// Counts flushes and returns the full per-component count slice (shared;
// callers must not modify it).
func (c *BitCounter) Counts() []int32 {
	c.flush()
	return c.counts
}

// SignBipolar collapses the counter to a bipolar hypervector by majority:
// component i is +1 when more than half of the n added vectors had bit i
// set, -1 when fewer, and tie[i] on an exact tie. This matches
// Accumulator.Sign under the bit↔bipolar mapping exactly.
func (c *BitCounter) SignBipolar(tie *Bipolar) *Bipolar {
	return c.SignBipolarInto(tie, &Bipolar{comps: make([]int8, c.d)})
}

// SignBipolarInto is SignBipolar writing the result into dst, which must
// have the counter's dimension; every component is overwritten. It
// performs no heap allocations, the property the scratch-reuse encoding
// path depends on. Returns dst.
func (c *BitCounter) SignBipolarInto(tie, dst *Bipolar) *Bipolar {
	mustSameDim(c.d, tie.Dim())
	mustSameDim(c.d, dst.Dim())
	c.flush()
	out := dst.comps
	half2 := int32(c.n) // compare 2*cnt against n
	for i, cnt := range c.counts {
		switch twice := 2 * cnt; {
		case twice > half2:
			out[i] = 1
		case twice < half2:
			out[i] = -1
		default:
			out[i] = tie.comps[i]
		}
	}
	return dst
}

// SignBinary collapses the counter to a bit-packed binary hypervector by
// the same majority rule as SignBipolar: bit i is set when more than half
// of the n added vectors had it set, cleared when fewer, and copied from
// tie on an exact tie. SignBinary(tiePacked) == SignBipolar(tie).PackBinary()
// bit for bit, which is what lets the packed encoder skip the int8 detour
// entirely.
func (c *BitCounter) SignBinary(tie *Binary) *Binary {
	return c.SignBinaryInto(tie, NewBinary(c.d))
}

// SignBinaryInto is SignBinary writing the result into dst, which must
// have the counter's dimension; every word is overwritten. It performs no
// heap allocations, the property the scratch-reuse encoding path depends
// on. Each output word is assembled before being stored, so dst may alias
// tie. Returns dst.
func (c *BitCounter) SignBinaryInto(tie, dst *Binary) *Binary {
	if c.d != tie.d || c.d != dst.d {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d vs %d", c.d, tie.d, dst.d))
	}
	c.flush()
	half2 := int32(c.n) // compare 2*cnt against n
	for w := 0; w < c.words; w++ {
		var out uint64
		tieW := tie.words[w]
		base := w << 6
		end := c.d - base
		if end > 64 {
			end = 64
		}
		for b, cnt := range c.counts[base : base+end] {
			switch twice := 2 * cnt; {
			case twice > half2:
				out |= 1 << uint(b)
			case twice == half2:
				out |= tieW & (1 << uint(b))
			}
		}
		dst.words[w] = out
	}
	return dst
}

// Reset clears the counter.
func (c *BitCounter) Reset() {
	for j := range c.nib {
		for w := range c.nib[j] {
			c.nib[j][w] = 0
			c.byteLo[j][w] = 0
			c.byteHi[j][w] = 0
		}
	}
	for i := range c.counts {
		c.counts[i] = 0
	}
	c.pendingNib = 0
	c.pendingByte = 0
	c.n = 0
}

// Popcount returns the total number of set bits accumulated (the sum of
// all per-component counts), useful as a cheap checksum in tests.
func (c *BitCounter) Popcount() int {
	c.flush()
	total := 0
	for _, v := range c.counts {
		total += int(v)
	}
	return total
}
