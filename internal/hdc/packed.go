package hdc

import (
	"fmt"
	"math/bits"
)

// PackedMemory is a read-only query snapshot of an AssociativeMemory whose
// class vectors have been majority-voted down to bit-packed Binary form.
// Similarity queries become per-word XOR + popcount over d/64 uint64 words
// instead of a d-element int8 multiply-accumulate — the packed fast path
// for GraphHD inference.
//
// Under the bit 1 ↔ +1 mapping, the cosine of two bipolar vectors equals
// 1 - 2*Hamming/d, a strictly decreasing function of the Hamming distance.
// Classify therefore minimizes the integer Hamming distance directly and
// returns predictions bit-for-bit identical to an AssociativeMemory
// configured with bipolar (majority-voted) class vectors; Similarities
// reproduces the reference cosine values exactly, including exact float64
// equality, because (d - 2h)/d is precisely how the bipolar cosine is
// computed from the integer dot product d - 2h.
//
// A PackedMemory is immutable and safe for concurrent use.
type PackedMemory struct {
	dim     int
	classes []*Binary
}

// NewPackedMemory builds a packed query memory from one majority-voted
// class vector per class. The vectors are not copied; callers hand over
// ownership.
func NewPackedMemory(classes []*Binary) (*PackedMemory, error) {
	if len(classes) == 0 {
		return nil, fmt.Errorf("hdc: packed memory needs at least one class")
	}
	dim := classes[0].Dim()
	for c, cv := range classes {
		if cv == nil {
			return nil, fmt.Errorf("hdc: class %d vector is nil", c)
		}
		if cv.Dim() != dim {
			return nil, fmt.Errorf("hdc: class %d dimension %d, want %d", c, cv.Dim(), dim)
		}
	}
	return &PackedMemory{dim: dim, classes: classes}, nil
}

// NumClasses returns the number of classes.
func (pm *PackedMemory) NumClasses() int { return len(pm.classes) }

// Dim returns the hypervector dimensionality.
func (pm *PackedMemory) Dim() int { return pm.dim }

// ClassVector returns the packed class vector of class c (shared;
// read-only).
func (pm *PackedMemory) ClassVector(c int) *Binary { return pm.classes[c] }

// MemoryBytes returns the bytes held by the packed class vectors — the
// model's entire query-time footprint (k × d/8 rounded up to words).
func (pm *PackedMemory) MemoryBytes() int {
	return len(pm.classes) * len(pm.classes[0].words) * 8
}

// hammingWords returns the Hamming distance between two equal-length
// word vectors: the dispatched vector kernel (AVX2 PSHUFB-LUT popcount
// or AVX-512 VPOPCNTDQ) covers the lane-aligned prefix and the portable
// POPCNT loop — the semantic source of truth — finishes the tail.
func hammingWords(kern *kernelTable, a, b []uint64) int {
	h := 0
	lo := 0
	if kern.hamming != nil {
		if vn := len(a) &^ (kern.lanes - 1); vn > 0 {
			h = int(kern.hamming(&a[0], &b[0], int64(vn)))
			lo = vn
		}
	}
	b = b[:len(a)]
	for w := lo; w < len(a); w++ {
		h += bits.OnesCount64(a[w] ^ b[w])
	}
	return h
}

// Hammings returns the Hamming distance from v to every class vector.
func (pm *PackedMemory) Hammings(v *Binary) []int {
	if v.d != pm.dim {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", v.d, pm.dim))
	}
	kern := loadKernels()
	out := make([]int, len(pm.classes))
	for c, cv := range pm.classes {
		out[c] = hammingWords(kern, cv.words, v.words)
	}
	return out
}

// Similarities returns δ(v, C_c) = 1 - 2*Hamming/d for every class c,
// exactly the cosine the bipolar reference path computes.
func (pm *PackedMemory) Similarities(v *Binary) []float64 {
	hs := pm.Hammings(v)
	sims := make([]float64, len(hs))
	for c, h := range hs {
		sims[c] = float64(pm.dim-2*h) / float64(pm.dim)
	}
	return sims
}

// Prefix returns a new PackedMemory over the first d components of every
// class vector — canonical tail-masked copies, so Hamming queries against
// canonical d-dimensional encodings are exact. Because majority voting is
// componentwise, the result is bit-identical to the packed memory of a
// model trained at dimension d from the same basis prefix; it is the
// stage-1 query table of prefix-sliced cascade classification. d must
// satisfy 1 ≤ d ≤ Dim().
func (pm *PackedMemory) Prefix(d int) (*PackedMemory, error) {
	if d < 1 || d > pm.dim {
		return nil, fmt.Errorf("hdc: prefix dimension %d outside [1,%d]", d, pm.dim)
	}
	classes := make([]*Binary, len(pm.classes))
	for c, cv := range pm.classes {
		classes[c] = cv.PrefixCopy(d)
	}
	return &PackedMemory{dim: d, classes: classes}, nil
}

// ClassifyTop2 returns the nearest and second-nearest classes by Hamming
// distance along with their distances, with the same smaller-index tie
// rule as Classify (best is always exactly Classify's answer). With a
// single class, second is -1 and secondH is dim+1 — an infinite margin,
// so cascade callers never escalate. The margin secondH-bestH is the
// ambiguity signal prefix-sliced cascade classification thresholds on.
// It allocates nothing.
func (pm *PackedMemory) ClassifyTop2(v *Binary) (best, second, bestH, secondH int) {
	if v.d != pm.dim {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", v.d, pm.dim))
	}
	kern := loadKernels()
	// The first class always beats the dim+1 sentinel, demoting the
	// (-1, dim+1) placeholder into the runner-up slot — which is exactly
	// the single-class answer if no second class ever replaces it.
	best, second = -1, -1
	bestH, secondH = pm.dim+1, pm.dim+1
	for c, cv := range pm.classes {
		h := hammingWords(kern, cv.words, v.words)
		if h < bestH {
			second, secondH = best, bestH
			best, bestH = c, h
		} else if h < secondH {
			second, secondH = c, h
		}
	}
	return best, second, bestH, secondH
}

// Classify returns the class whose vector is nearest to v in Hamming
// distance, breaking exact ties toward the smaller class index — the same
// deterministic tie rule as AssociativeMemory.Classify. It allocates
// nothing.
func (pm *PackedMemory) Classify(v *Binary) int {
	if v.d != pm.dim {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", v.d, pm.dim))
	}
	kern := loadKernels()
	best, bestH := 0, pm.dim+1
	for c, cv := range pm.classes {
		h := hammingWords(kern, cv.words, v.words)
		if h < bestH {
			best, bestH = c, h
		}
	}
	return best
}
