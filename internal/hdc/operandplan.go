package hdc

import (
	"fmt"
	"math/bits"
)

// OperandPlan is a gather-free operand stream for blocked accumulation:
// a contiguous slab of pre-materialized bit vectors, each occupying
// exactly (d+63)/64 words, consumed by BitCounter.AddPlanned. Where
// AddXorPairs chases two basis-table pointers per operand and XORs them
// inside the hot loop, a plan materializes each operand once — tail bits
// beyond d already masked to zero — so the accumulation kernel streams
// sequential words with no pointer indirection and no masking.
//
// The payoff is cross-graph sharing: a batch encoder plans one operand
// per *distinct* (rank_u, rank_v) pair across all graphs in a batch, so
// basis-table words are loaded (and XNORed) once per batch instead of
// once per graph, and every graph's accumulation pass reads the compact
// slab instead of the scattered basis table.
//
// A plan is reusable scratch state: Reset keeps the slab's capacity, so
// steady-state planning performs no heap allocations once the slab has
// grown to the largest batch seen. It is not safe for concurrent use.
type OperandPlan struct {
	d, nw int
	n     int
	words []uint64 // operand i occupies words[i*nw : (i+1)*nw]
}

// Reset prepares the plan for dimension d, discarding all operands but
// keeping the underlying slab capacity.
func (p *OperandPlan) Reset(d int) {
	if d <= 0 {
		panic("hdc: non-positive dimension")
	}
	p.d = d
	p.nw = (d + 63) / 64
	p.n = 0
	p.words = p.words[:0]
}

// Dim returns the dimensionality the plan was Reset for (0 before the
// first Reset).
func (p *OperandPlan) Dim() int { return p.d }

// Len returns the number of planned operands.
func (p *OperandPlan) Len() int { return p.n }

// AppendXnor materializes XNOR(a, b) — the packed edge bind — as the next
// operand and returns its index. Tail bits beyond d are masked to zero.
func (p *OperandPlan) AppendXnor(a, b *Binary) int {
	if p.d == 0 {
		panic("hdc: OperandPlan used before Reset")
	}
	// Operands may be wider than the plan (prefix slicing; see
	// BitCounter.SetDim): only the first d components are materialized and
	// the tail is masked below, so full-width basis vectors feed a
	// narrow-width plan directly.
	if a.d < p.d || b.d < p.d {
		panic(fmt.Sprintf("hdc: operand dimensions %d/%d below plan %d", a.d, b.d, p.d))
	}
	base := p.n * p.nw
	if cap(p.words) < base+p.nw {
		grown := make([]uint64, base, max(2*cap(p.words), base+p.nw))
		copy(grown, p.words)
		p.words = grown
	}
	p.words = p.words[:base+p.nw]
	dst := p.words[base:]
	aw, bw := a.words, b.words
	for w := range dst {
		dst[w] = ^(aw[w] ^ bw[w])
	}
	if r := p.d & 63; r != 0 {
		dst[p.nw-1] &= (1 << uint(r)) - 1
	}
	p.n++
	return p.n - 1
}

// Operand returns the word vector of operand i. The slice aliases the
// plan's slab and is invalidated by the next Reset or AppendXnor.
func (p *OperandPlan) Operand(i int) []uint64 {
	if i < 0 || i >= p.n {
		panic(fmt.Sprintf("hdc: operand %d out of range [0,%d)", i, p.n))
	}
	return p.words[i*p.nw : (i+1)*p.nw]
}

// AddPlanned accumulates the planned operands plan.Operand(idx) for every
// idx in idxs, each with weight 1 — equivalent to calling Add on each
// operand in order, but routed through the same Harley–Seal carry-save
// front end as AddXorPairs. Unlike AddXorPairs, the inner loop performs
// one sequential load per operand word: no per-pair pointer chase, no
// XOR, no tail masking (the plan materialized all of that once). As in
// AddXorPairs, a short final block is padded with the zero operand.
func (c *BitCounter) AddPlanned(plan *OperandPlan, idxs []int32) {
	if plan.d != c.d {
		panic(fmt.Sprintf("hdc: plan dimension %d vs counter %d", plan.d, c.d))
	}
	for _, idx := range idxs {
		if int(idx) < 0 || int(idx) >= plan.n {
			panic(fmt.Sprintf("hdc: planned operand %d out of range [0,%d)", idx, plan.n))
		}
	}
	c.checkAdds(len(idxs))
	c.n += len(idxs)
	if len(idxs) == 0 {
		return
	}
	kern := loadKernels()
	nw := c.words
	slab := plan.words
	var ops [8][]uint64
	for i := 0; i < len(idxs); i += 8 {
		n := len(idxs) - i
		if n > 8 {
			n = 8
		}
		for k := 0; k < n; k++ {
			ops[k] = slab[int(idxs[i+k])*nw:][:nw]
		}
		for k := n; k < 8; k++ {
			ops[k] = c.zeroWords
		}
		c.addBlock8(kern, &ops)
	}
	c.drainCarrySave()
}

// AddWordsWeighted accumulates one raw packed word vector with integer
// multiplicity weight — exactly equivalent to adding the vector weight
// times, in O(weight/15) lane sweeps for small weights and one direct
// pass over the int32 counters for large ones. It is the planned-operand
// analogue of AddXorWeighted: v must have the counter's word length and
// zero bits beyond dimension d (both hold for OperandPlan operands). A
// zero weight is a no-op; negative weights panic.
func (c *BitCounter) AddWordsWeighted(v []uint64, weight int) {
	if len(v) != c.words {
		panic(fmt.Sprintf("hdc: word vector length %d, want %d", len(v), c.words))
	}
	if weight < 0 {
		panic(fmt.Sprintf("hdc: negative weight %d", weight))
	}
	if weight == 0 {
		return
	}
	c.checkAdds(weight)
	c.n += weight
	if weight > 64 {
		// Large multiplicities go straight to the int32 counters per set
		// bit, as in AddXorWeighted: counters and lanes are independent
		// addends, so no flush is needed first.
		c.countsDirty = true
		for w := 0; w < c.words; w++ {
			x := v[w]
			base := w << 6
			for x != 0 {
				c.counts[base+bits.TrailingZeros64(x)] += int32(weight)
				x &= x - 1
			}
		}
		return
	}
	n0, n1, n2, n3 := c.nib[0], c.nib[1], c.nib[2], c.nib[3]
	for weight > 0 {
		chunk := weight
		if chunk > 15 {
			chunk = 15
		}
		weight -= chunk
		if c.pendingNib+chunk > 15 {
			c.foldNibbles()
		}
		c.pendingNib += chunk
		cw := uint64(chunk)
		for w := 0; w < c.words; w++ {
			x := v[w]
			n0[w] += (x & nibbleLaneMask) * cw
			n1[w] += ((x >> 1) & nibbleLaneMask) * cw
			n2[w] += ((x >> 2) & nibbleLaneMask) * cw
			n3[w] += ((x >> 3) & nibbleLaneMask) * cw
		}
	}
}
