package hdc

import (
	"testing"
)

// TestAddPlannedMatchesAddXor pins the planned kernel's contract: feeding
// a counter planned XNOR operands by index produces exactly the counts —
// and therefore exactly the majority sign — of the pointer-chasing
// AddXor path over the same pairs, across sizes that exercise the
// carry-save blocks, the scalar leftover path, and repeated-index reuse.
func TestAddPlannedMatchesAddXor(t *testing.T) {
	rng := NewRNG(99)
	for _, d := range []int{1, 63, 64, 65, 200, 1024} {
		for _, nOps := range []int{0, 1, 7, 8, 9, 16, 33, 100} {
			vecs := make([]*Binary, 12)
			for i := range vecs {
				vecs[i] = RandomBinary(d, rng)
			}
			var plan OperandPlan
			plan.Reset(d)
			type pair struct{ a, b int }
			pairs := make([]pair, 6)
			idxOf := make([]int, len(pairs))
			for i := range pairs {
				pairs[i] = pair{rng.Intn(len(vecs)), rng.Intn(len(vecs))}
				idxOf[i] = plan.AppendXnor(vecs[pairs[i].a], vecs[pairs[i].b])
			}
			idxs := make([]int32, nOps)
			ref := NewBitCounter(d)
			for i := range idxs {
				p := rng.Intn(len(pairs))
				idxs[i] = int32(idxOf[p])
				ref.AddXor(vecs[pairs[p].a], vecs[pairs[p].b], true)
			}
			got := NewBitCounter(d)
			got.AddPlanned(&plan, idxs)
			if got.Count() != ref.Count() {
				t.Fatalf("d=%d n=%d: count %d, want %d", d, nOps, got.Count(), ref.Count())
			}
			gc := got.CountsInto(make([]int32, d))
			rc := ref.CountsInto(make([]int32, d))
			for i := range gc {
				if gc[i] != rc[i] {
					t.Fatalf("d=%d n=%d: count[%d] = %d, want %d", d, nOps, i, gc[i], rc[i])
				}
			}
			tie := RandomBinary(d, rng)
			if !got.SignBinary(tie).Equal(ref.SignBinary(tie)) {
				t.Fatalf("d=%d n=%d: planned sign differs from AddXor reference", d, nOps)
			}
		}
	}
}

// TestAddWordsWeightedMatchesRepeatedAdd covers both weight regimes (lane
// chunks ≤ 64 and the direct int32 path above it) against repeated Add.
func TestAddWordsWeightedMatchesRepeatedAdd(t *testing.T) {
	rng := NewRNG(7)
	for _, d := range []int{5, 64, 130, 999} {
		for _, weight := range []int{0, 1, 14, 15, 16, 31, 64, 65, 200} {
			v := RandomBinary(d, rng)
			ref := NewBitCounter(d)
			for i := 0; i < weight; i++ {
				ref.Add(v)
			}
			got := NewBitCounter(d)
			got.AddWordsWeighted(v.Words(), weight)
			if got.Count() != ref.Count() {
				t.Fatalf("d=%d w=%d: count %d, want %d", d, weight, got.Count(), ref.Count())
			}
			gc := got.CountsInto(make([]int32, d))
			rc := ref.CountsInto(make([]int32, d))
			for i := range gc {
				if gc[i] != rc[i] {
					t.Fatalf("d=%d w=%d: count[%d] = %d, want %d", d, weight, i, gc[i], rc[i])
				}
			}
		}
	}
}

// TestOperandPlanMaterialization checks the slab layout directly: each
// operand is the tail-masked XNOR of its pair, retrievable by index even
// after slab growth reallocates the backing array.
func TestOperandPlanMaterialization(t *testing.T) {
	rng := NewRNG(3)
	d := 130
	var plan OperandPlan
	plan.Reset(d)
	type rec struct{ a, b *Binary }
	var recs []rec
	for i := 0; i < 40; i++ {
		a, b := RandomBinary(d, rng), RandomBinary(d, rng)
		if idx := plan.AppendXnor(a, b); idx != i {
			t.Fatalf("operand %d got index %d", i, idx)
		}
		recs = append(recs, rec{a, b})
	}
	if plan.Len() != len(recs) {
		t.Fatalf("Len = %d, want %d", plan.Len(), len(recs))
	}
	tailMask := uint64(1)<<uint(d&63) - 1
	for i, r := range recs {
		got := plan.Operand(i)
		for w, gw := range got {
			want := ^(r.a.Words()[w] ^ r.b.Words()[w])
			if w == len(got)-1 {
				want &= tailMask
			}
			if gw != want {
				t.Fatalf("operand %d word %d = %#x, want %#x", i, w, gw, want)
			}
		}
	}
	// Reset keeps capacity but drops operands.
	plan.Reset(d)
	if plan.Len() != 0 {
		t.Fatalf("Len after Reset = %d", plan.Len())
	}
}

// TestOperandPlanPanics pins the misuse contracts.
func TestOperandPlanPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	var unreset OperandPlan
	a, b := RandomBinary(64, NewRNG(1)), RandomBinary(64, NewRNG(2))
	expectPanic("append before Reset", func() { unreset.AppendXnor(a, b) })

	var plan OperandPlan
	plan.Reset(64)
	// Narrower operands cannot cover the plan and must panic; wider ones
	// are the prefix-slicing contract (see BitCounter.SetDim) and append
	// their masked prefix.
	expectPanic("dimension below plan", func() { plan.AppendXnor(RandomBinary(63, NewRNG(3)), b) })
	plan.AppendXnor(RandomBinary(65, NewRNG(3)), b)
	plan.Reset(64)
	plan.AppendXnor(a, b)
	expectPanic("operand out of range", func() { plan.Operand(1) })
	c := NewBitCounter(64)
	expectPanic("planned index out of range", func() { c.AddPlanned(&plan, []int32{1}) })
	expectPanic("plan dimension mismatch", func() {
		NewBitCounter(128).AddPlanned(&plan, nil)
	})
	expectPanic("negative weight", func() { c.AddWordsWeighted(a.Words(), -1) })
	expectPanic("bad word length", func() { c.AddWordsWeighted(make([]uint64, 2), 1) })
}
