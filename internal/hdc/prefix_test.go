package hdc

import (
	"fmt"
	"testing"
)

// Prefix-slicing equivalence matrix: every accumulation and sign entry
// point, fed FULL-width operands through a counter narrowed with SetDim,
// must produce bit-for-bit the result of a fresh counter of the prefix
// dimension fed PrefixCopy'd operands. Majority bundling and XNOR
// binding are componentwise, so the two computations are mathematically
// identical; these tests pin that the tail-masking plumbing preserves it
// under every kernel tier, including prefix widths that are not
// multiples of 64.

// prefixWidths covers sub-word (64), odd-tail (100, 1000), lane-aligned
// (320, 1024) and full-width slices of the 2113-dimensional fixtures.
var prefixWidths = []int{64, 100, 320, 1000, 1024, 2113}

const prefixFullD = 2113

func prefixPairs(rng *RNG, n int) []XorPair {
	pairs := make([]XorPair, n)
	for i := range pairs {
		pairs[i] = XorPair{
			A:      RandomBinary(prefixFullD, rng),
			B:      RandomBinary(prefixFullD, rng),
			Invert: i%2 == 0,
		}
	}
	return pairs
}

func prefixCopyPairs(pairs []XorPair, d int) []XorPair {
	out := make([]XorPair, len(pairs))
	for i, p := range pairs {
		out[i] = XorPair{A: p.A.PrefixCopy(d), B: p.B.PrefixCopy(d), Invert: p.Invert}
	}
	return out
}

func TestPrefixCopyCanonical(t *testing.T) {
	rng := NewRNG(11)
	b := RandomBinary(prefixFullD, rng)
	for _, d := range prefixWidths {
		p := b.PrefixCopy(d)
		if p.Dim() != d {
			t.Fatalf("PrefixCopy(%d).Dim() = %d", d, p.Dim())
		}
		for i := 0; i < d; i++ {
			if p.Bit(i) != b.Bit(i) {
				t.Fatalf("d=%d: bit %d = %d, want %d", d, i, p.Bit(i), b.Bit(i))
			}
		}
		if r := d & 63; r != 0 {
			if tail := p.words[len(p.words)-1] &^ ((1 << uint(r)) - 1); tail != 0 {
				t.Fatalf("d=%d: tail bits set: %#x", d, tail)
			}
		}
	}
	for _, bad := range []int{0, -1, prefixFullD + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PrefixCopy(%d): expected panic", bad)
				}
			}()
			b.PrefixCopy(bad)
		}()
	}
}

// TestPrefixCountsEquivalence: the scalar, weighted, and blocked
// accumulation paths through a SetDim-narrowed counter match a fresh
// prefix-dimension counter over PrefixCopy'd operands, count for count.
func TestPrefixCountsEquivalence(t *testing.T) {
	forEachKernelTier(t, func(t *testing.T) {
		rng := NewRNG(21)
		pairs := prefixPairs(rng, 21)
		singles := make([]*Binary, 5)
		for i := range singles {
			singles[i] = RandomBinary(prefixFullD, rng)
		}
		wide := NewBitCounter(prefixFullD)
		for _, d := range prefixWidths {
			wide.SetDim(d)
			narrow := NewBitCounter(d)
			np := prefixCopyPairs(pairs, d)
			// Scalar adds.
			for i, s := range singles {
				wide.Add(s)
				narrow.Add(s.PrefixCopy(d))
				wide.AddXor(pairs[i].A, pairs[i].B, pairs[i].Invert)
				narrow.AddXor(np[i].A, np[i].B, np[i].Invert)
			}
			// Weighted adds, below and above the 64-weight int32 cutover.
			for i, w := range []int{3, 17, 70} {
				wide.AddXorWeighted(pairs[i].A, pairs[i].B, pairs[i].Invert, w)
				narrow.AddXorWeighted(np[i].A, np[i].B, np[i].Invert, w)
			}
			// Blocked CSA path.
			wide.AddXorPairs(pairs)
			narrow.AddXorPairs(np)
			if wide.Count() != narrow.Count() {
				t.Fatalf("d=%d: count %d vs %d", d, wide.Count(), narrow.Count())
			}
			got := wide.CountsInto(make([]int32, d))
			want := narrow.CountsInto(make([]int32, d))
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("d=%d: count[%d] = %d, want %d", d, i, got[i], want[i])
				}
			}
		}
	})
}

// TestPrefixSignEquivalence: SignBinaryInto off a narrowed counter (SWAR
// and flushed paths) and the small-sign kernels, with full-width
// operands and a full-width tie, match the fresh prefix-width reference
// bit for bit.
func TestPrefixSignEquivalence(t *testing.T) {
	forEachKernelTier(t, func(t *testing.T) {
		rng := NewRNG(31)
		tie := RandomBinary(prefixFullD, rng)
		wide := NewBitCounter(prefixFullD)
		// Even and odd counts (ties vs no ties), below and above the SWAR
		// byte-lane limit of 127, and within small-sign range.
		for _, n := range []int{2, 7, 48, 63, 200} {
			pairs := prefixPairs(rng, n)
			for _, d := range prefixWidths {
				name := fmt.Sprintf("n=%d/d=%d", n, d)
				wide.SetDim(d)
				narrow := NewBitCounter(d)
				np := prefixCopyPairs(pairs, d)
				ptie := tie.PrefixCopy(d)

				wide.Reset()
				wide.AddXorPairs(pairs)
				got := wide.SignBinaryInto(tie, NewBinary(d))
				narrow.Reset()
				narrow.AddXorPairs(np)
				want := narrow.SignBinaryInto(ptie, NewBinary(d))
				if !got.Equal(want) {
					t.Fatalf("%s: SignBinaryInto diverged", name)
				}

				if n <= MaxSmallSign {
					got := wide.SignXorPairsSmallInto(pairs, tie, NewBinary(d))
					want := narrow.SignXorPairsSmallInto(np, ptie, NewBinary(d))
					if !got.Equal(want) {
						t.Fatalf("%s: SignXorPairsSmallInto diverged", name)
					}
				}
			}
		}
	})
}

// TestPrefixPlanEquivalence: an OperandPlan built at prefix width from
// FULL-width operands matches one built from PrefixCopy'd operands, and
// both planned accumulation and the planned small-sign kernel agree.
func TestPrefixPlanEquivalence(t *testing.T) {
	forEachKernelTier(t, func(t *testing.T) {
		rng := NewRNG(41)
		pairs := prefixPairs(rng, 30)
		tie := RandomBinary(prefixFullD, rng)
		var wplan, nplan OperandPlan
		wide := NewBitCounter(prefixFullD)
		for _, d := range prefixWidths {
			wide.SetDim(d)
			narrow := NewBitCounter(d)
			np := prefixCopyPairs(pairs, d)
			wplan.Reset(d)
			nplan.Reset(d)
			idxs := make([]int32, len(pairs))
			for i := range pairs {
				wi := wplan.AppendXnor(pairs[i].A, pairs[i].B)
				ni := nplan.AppendXnor(np[i].A, np[i].B)
				if wi != ni {
					t.Fatalf("d=%d: operand index %d vs %d", d, wi, ni)
				}
				idxs[i] = int32(wi)
				wo, no := wplan.Operand(wi), nplan.Operand(ni)
				for w := range wo {
					if wo[w] != no[w] {
						t.Fatalf("d=%d: operand %d word %d = %#x, want %#x", d, wi, w, wo[w], no[w])
					}
				}
			}
			wide.Reset()
			wide.AddPlanned(&wplan, idxs)
			narrow.Reset()
			narrow.AddPlanned(&nplan, idxs)
			got := wide.SignBinaryInto(tie, NewBinary(d))
			want := narrow.SignBinaryInto(tie.PrefixCopy(d), NewBinary(d))
			if !got.Equal(want) {
				t.Fatalf("d=%d: planned SignBinaryInto diverged", d)
			}
			small := idxs[:21] // odd count, within small-sign range
			gs := wide.SignPlannedSmallInto(&wplan, small, tie, NewBinary(d))
			ws := narrow.SignPlannedSmallInto(&nplan, small, tie.PrefixCopy(d), NewBinary(d))
			if !gs.Equal(ws) {
				t.Fatalf("d=%d: SignPlannedSmallInto diverged", d)
			}
		}
	})
}

// TestSetDimInterleave: one counter hopping between widths behaves, at
// every hop, exactly like a fresh counter of that width — narrowing then
// widening never resurrects stale weight.
func TestSetDimInterleave(t *testing.T) {
	rng := NewRNG(51)
	c := NewBitCounter(prefixFullD)
	if c.Capacity() != prefixFullD {
		t.Fatalf("Capacity() = %d", c.Capacity())
	}
	seq := []int{1024, prefixFullD, 100, 1000, 64, prefixFullD, 320}
	for hop, d := range seq {
		c.SetDim(d)
		if c.Dim() != d {
			t.Fatalf("hop %d: Dim() = %d, want %d", hop, c.Dim(), d)
		}
		if c.Count() != 0 {
			t.Fatalf("hop %d: SetDim kept weight %d", hop, c.Count())
		}
		fresh := NewBitCounter(d)
		pairs := prefixPairs(rng, 5+hop*7)
		c.AddXorPairs(pairs)
		fresh.AddXorPairs(prefixCopyPairs(pairs, d))
		got := c.CountsInto(make([]int32, d))
		want := fresh.CountsInto(make([]int32, d))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("hop %d (d=%d): count[%d] = %d, want %d", hop, d, i, got[i], want[i])
			}
		}
		// Leave weight behind on purpose: the next hop must discard it.
	}
}

// TestPackedMemoryPrefix: Prefix() yields canonical class slices whose
// Classify/ClassifyTop2 answers on prefix queries equal a from-scratch
// memory over the same prefix copies, and ClassifyTop2 agrees with
// Classify on the winner.
func TestPackedMemoryPrefix(t *testing.T) {
	forEachKernelTier(t, func(t *testing.T) {
		rng := NewRNG(61)
		classes := make([]*Binary, 4)
		for i := range classes {
			classes[i] = RandomBinary(prefixFullD, rng)
		}
		pm, err := NewPackedMemory(classes)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range prefixWidths {
			ppm, err := pm.Prefix(d)
			if err != nil {
				t.Fatal(err)
			}
			if ppm.Dim() != d || ppm.NumClasses() != len(classes) {
				t.Fatalf("d=%d: prefix shape %d/%d", d, ppm.Dim(), ppm.NumClasses())
			}
			ref := make([]*Binary, len(classes))
			for i := range classes {
				ref[i] = classes[i].PrefixCopy(d)
			}
			refPM, err := NewPackedMemory(ref)
			if err != nil {
				t.Fatal(err)
			}
			for q := 0; q < 20; q++ {
				v := RandomBinary(d, rng)
				if got, want := ppm.Classify(v), refPM.Classify(v); got != want {
					t.Fatalf("d=%d: Classify %d vs %d", d, got, want)
				}
				best, second, bestH, secondH := ppm.ClassifyTop2(v)
				if best != ppm.Classify(v) {
					t.Fatalf("d=%d: ClassifyTop2 best %d vs Classify %d", d, best, ppm.Classify(v))
				}
				if second == best || second < 0 || second >= len(classes) {
					t.Fatalf("d=%d: bad runner-up %d (best %d)", d, second, best)
				}
				if bestH > secondH {
					t.Fatalf("d=%d: bestH %d > secondH %d", d, bestH, secondH)
				}
				hs := ppm.Hammings(v)
				if hs[best] != bestH || hs[second] != secondH {
					t.Fatalf("d=%d: top2 distances %d/%d vs Hammings %v", d, bestH, secondH, hs)
				}
			}
		}
		if _, err := pm.Prefix(0); err == nil {
			t.Fatal("Prefix(0): expected error")
		}
		if _, err := pm.Prefix(prefixFullD + 1); err == nil {
			t.Fatal("Prefix(d+1): expected error")
		}
		// Single class: infinite margin, runner-up -1.
		one, err := NewPackedMemory(classes[:1])
		if err != nil {
			t.Fatal(err)
		}
		best, second, bestH, secondH := one.ClassifyTop2(RandomBinary(prefixFullD, rng))
		if best != 0 || second != -1 || secondH != prefixFullD+1 || bestH > prefixFullD {
			t.Fatalf("single class top2 = (%d,%d,%d,%d)", best, second, bestH, secondH)
		}
	})
}
