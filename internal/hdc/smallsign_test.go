package hdc

import "testing"

// TestSignSmallMatchesCounter pins the small-n kernels' contract: for
// every count in [1, MaxSmallSign] (covering odd/even tie handling and
// every block-padding shape), the one-shot bit-sliced majority equals the
// full Reset + Add* + SignBinaryInto pipeline bit for bit.
func TestSignSmallMatchesCounter(t *testing.T) {
	forEachKernelTier(t, testSignSmallMatchesCounter)
}

func testSignSmallMatchesCounter(t *testing.T) {
	rng := NewRNG(17)
	for _, d := range []int{1, 63, 64, 65, 130, 512} {
		c := NewBitCounter(d)
		ref := NewBitCounter(d)
		var plan OperandPlan
		plan.Reset(d)
		vecs := make([]*Binary, 10)
		for i := range vecs {
			vecs[i] = RandomBinary(d, rng)
		}
		type pr struct{ a, b int }
		prs := make([]pr, 8)
		for i := range prs {
			prs[i] = pr{rng.Intn(len(vecs)), rng.Intn(len(vecs))}
			plan.AppendXnor(vecs[prs[i].a], vecs[prs[i].b])
		}
		for n := 1; n <= MaxSmallSign; n++ {
			pairs := make([]XorPair, n)
			idxs := make([]int32, n)
			for i := range pairs {
				p := rng.Intn(len(prs))
				pairs[i] = XorPair{A: vecs[prs[p].a], B: vecs[prs[p].b], Invert: true}
				idxs[i] = int32(p)
			}
			tie := RandomBinary(d, rng)
			ref.Reset()
			ref.AddXorPairs(pairs)
			want := ref.SignBinary(tie)
			if got := c.SignXorPairsSmallInto(pairs, tie, NewBinary(d)); !got.Equal(want) {
				t.Fatalf("d=%d n=%d: SignXorPairsSmallInto differs from counter pipeline", d, n)
			}
			if got := c.SignPlannedSmallInto(&plan, idxs, tie, NewBinary(d)); !got.Equal(want) {
				t.Fatalf("d=%d n=%d: SignPlannedSmallInto differs from counter pipeline", d, n)
			}
		}
	}
}

// TestSignSmallIgnoresCounterState checks the one-shot property: the
// kernels neither read nor disturb weight already accumulated in the
// counter, and leave the carry-save planes zero for the next block call.
func TestSignSmallIgnoresCounterState(t *testing.T) {
	forEachKernelTier(t, testSignSmallIgnoresCounterState)
}

func testSignSmallIgnoresCounterState(t *testing.T) {
	rng := NewRNG(23)
	d := 200
	c := NewBitCounter(d)
	a, b := RandomBinary(d, rng), RandomBinary(d, rng)
	// Pre-load the counter with unrelated weight.
	for i := 0; i < 40; i++ {
		c.Add(RandomBinary(d, rng))
	}
	beforeCounts := c.CountsInto(make([]int32, d))
	beforeN := c.Count()

	pairs := []XorPair{{A: a, B: b, Invert: true}, {A: b, B: a, Invert: false}, {A: a, B: a, Invert: true}}
	tie := RandomBinary(d, rng)
	ref := NewBitCounter(d)
	ref.AddXorPairs(pairs)
	want := ref.SignBinary(tie)
	if got := c.SignXorPairsSmallInto(pairs, tie, NewBinary(d)); !got.Equal(want) {
		t.Fatal("sign differs with pre-loaded counter state")
	}
	if c.Count() != beforeN {
		t.Fatalf("count changed: %d vs %d", c.Count(), beforeN)
	}
	afterCounts := c.CountsInto(make([]int32, d))
	for i := range beforeCounts {
		if beforeCounts[i] != afterCounts[i] {
			t.Fatalf("count[%d] changed: %d vs %d", i, beforeCounts[i], afterCounts[i])
		}
	}
	// The planes must be back to zero: a follow-up blocked add behaves as
	// on a fresh counter.
	c.Reset()
	probe := make([]XorPair, 9)
	for i := range probe {
		probe[i] = XorPair{A: RandomBinary(d, rng), B: RandomBinary(d, rng), Invert: i%2 == 0}
	}
	c.AddXorPairs(probe)
	ref2 := NewBitCounter(d)
	ref2.AddXorPairs(probe)
	g := c.CountsInto(make([]int32, d))
	r := ref2.CountsInto(make([]int32, d))
	for i := range g {
		if g[i] != r[i] {
			t.Fatalf("residual plane state leaked into later adds at component %d", i)
		}
	}
}

// TestSignSmallPanics pins the range and dimension contracts.
func TestSignSmallPanics(t *testing.T) {
	d := 64
	c := NewBitCounter(d)
	rng := NewRNG(4)
	a, b := RandomBinary(d, rng), RandomBinary(d, rng)
	tie, dst := RandomBinary(d, rng), NewBinary(d)
	var plan OperandPlan
	plan.Reset(d)
	plan.AppendXnor(a, b)
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("zero pairs", func() { c.SignXorPairsSmallInto(nil, tie, dst) })
	expectPanic("too many pairs", func() {
		c.SignXorPairsSmallInto(make([]XorPair, MaxSmallSign+1), tie, dst)
	})
	expectPanic("zero idxs", func() { c.SignPlannedSmallInto(&plan, nil, tie, dst) })
	expectPanic("idx out of range", func() { c.SignPlannedSmallInto(&plan, []int32{1}, tie, dst) })
	// Operands narrower than the counter must panic; wider operands are
	// the prefix-slicing contract (see BitCounter.SetDim) and must not.
	expectPanic("pair dim below counter", func() {
		c.SignXorPairsSmallInto([]XorPair{{A: RandomBinary(63, rng), B: RandomBinary(63, rng)}}, tie, dst)
	})
	expectPanic("dst dim mismatch", func() {
		c.SignXorPairsSmallInto([]XorPair{{A: a, B: b}}, tie, NewBinary(65))
	})
	c.SignXorPairsSmallInto([]XorPair{{A: RandomBinary(65, rng), B: RandomBinary(65, rng)}}, tie, dst)
}
