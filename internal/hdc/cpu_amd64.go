//go:build amd64

package hdc

import "strings"

// CPU feature detection via CPUID/XGETBV, dependency-free. The checks
// follow the Intel SDM enabling sequences: a vector extension counts as
// usable only when the CPU reports it AND the OS has enabled saving the
// corresponding register state (OSXSAVE + XCR0 bits), so a kernel that
// dispatches on these flags can never fault on context switch.

// cpuid is implemented in cpuid_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv reads XCR0; implemented in cpuid_amd64.s. Only valid when
// CPUID.1:ECX.OSXSAVE is set.
func xgetbv() (eax, edx uint32)

// cpuFeatures holds the one-time detection result.
type cpuFeatureSet struct {
	avx             bool
	avx2            bool
	avx512F         bool
	avx512BW        bool
	avx512DQ        bool
	avx512VL        bool
	avx512VPOPCNTDQ bool
}

var cpuFeatures = detectCPUFeatures()

func detectCPUFeatures() cpuFeatureSet {
	var f cpuFeatureSet
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 1 {
		return f
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const (
		cpuidOSXSAVE = 1 << 27
		cpuidAVX     = 1 << 28
	)
	if ecx1&cpuidOSXSAVE == 0 {
		return f // OS saves no extended state: no AVX of any kind
	}
	xlo, _ := xgetbv()
	const (
		xcr0SSE    = 1 << 1
		xcr0AVX    = 1 << 2
		xcr0OpMask = 1 << 5
		xcr0ZMMHi  = 1 << 6
		xcr0HiZMM  = 1 << 7
	)
	osAVX := xlo&(xcr0SSE|xcr0AVX) == xcr0SSE|xcr0AVX
	osAVX512 := osAVX && xlo&(xcr0OpMask|xcr0ZMMHi|xcr0HiZMM) == xcr0OpMask|xcr0ZMMHi|xcr0HiZMM
	f.avx = osAVX && ecx1&cpuidAVX != 0
	if maxID < 7 || !f.avx {
		return f
	}
	_, ebx7, ecx7, _ := cpuid(7, 0)
	const (
		cpuidAVX2      = 1 << 5
		cpuidAVX512F   = 1 << 16
		cpuidAVX512DQ  = 1 << 17
		cpuidAVX512BW  = 1 << 30
		cpuidAVX512VL  = 1 << 31
		cpuidVPOPCNTDQ = 1 << 14 // CPUID.7.0:ECX
	)
	f.avx2 = ebx7&cpuidAVX2 != 0
	if osAVX512 {
		f.avx512F = ebx7&cpuidAVX512F != 0
		f.avx512DQ = ebx7&cpuidAVX512DQ != 0
		f.avx512BW = ebx7&cpuidAVX512BW != 0
		f.avx512VL = ebx7&cpuidAVX512VL != 0
		f.avx512VPOPCNTDQ = f.avx512F && ecx7&cpuidVPOPCNTDQ != 0
	}
	return f
}

// hasAVX2Kernels reports whether the AVX2 assembly tier can run.
func hasAVX2Kernels() bool { return cpuFeatures.avx && cpuFeatures.avx2 }

// hasAVX512Kernels reports whether the AVX-512 assembly tier can run.
// The tier uses VPTERNLOGQ/VPXORQ (F) on full-width registers and
// VPOPCNTQ (VPOPCNTDQ); BW/DQ/VL are required as a conservative
// baseline so the tier only runs on full server-class AVX-512
// implementations.
func hasAVX512Kernels() bool {
	f := cpuFeatures
	return f.avx512F && f.avx512BW && f.avx512DQ && f.avx512VL && f.avx512VPOPCNTDQ
}

// cpuFeatureString renders the detected features for logs, /healthz and
// /metrics.
func cpuFeatureString() string {
	var fs []string
	add := func(ok bool, name string) {
		if ok {
			fs = append(fs, name)
		}
	}
	f := cpuFeatures
	add(f.avx, "avx")
	add(f.avx2, "avx2")
	add(f.avx512F, "avx512f")
	add(f.avx512BW, "avx512bw")
	add(f.avx512DQ, "avx512dq")
	add(f.avx512VL, "avx512vl")
	add(f.avx512VPOPCNTDQ, "avx512vpopcntdq")
	return strings.Join(fs, ",")
}
