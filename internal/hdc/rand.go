// Package hdc implements the hyperdimensional-computing substrate used by
// GraphHD: hypervectors in bipolar and bit-packed binary form, the three
// fundamental operations (bundling, binding, permutation), similarity
// metrics, item memories for basis hypervectors and an associative memory
// for nearest-class queries.
//
// All randomness in the package flows through the deterministic splitmix64
// generator defined in this file so that every hypervector, and therefore
// every experiment built on top of them, is reproducible bit-for-bit from
// an explicit seed.
package hdc

// RNG is a small, fast, deterministic pseudo-random generator based on
// splitmix64. It is intentionally independent of math/rand so that the
// stream of hypervectors never changes across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Distinct seeds give
// statistically independent streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform pseudo-random int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("hdc: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded sampling would be overkill here;
	// the simple modulo bias is negligible for the small n used in this
	// repository (n << 2^32), but we still reject the biased tail to keep
	// the generator exactly uniform.
	bound := uint64(n)
	limit := -bound % bound // (2^64 - bound) mod bound
	for {
		v := r.Uint64()
		if v >= limit {
			return int(v % bound)
		}
	}
}

// Float64 returns a uniform pseudo-random float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n) using Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent child generator. It advances the parent
// once, so repeated Split calls yield distinct children.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0xd2b74407b1ce6e93}
}
