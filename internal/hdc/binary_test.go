package hdc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewBinaryZero(t *testing.T) {
	b := NewBinary(130)
	for i := 0; i < 130; i++ {
		if b.Bit(i) != 0 {
			t.Fatalf("bit %d set in zero vector", i)
		}
	}
}

func TestRandomBinaryTailMasked(t *testing.T) {
	b := RandomBinary(70, NewRNG(1))
	if b.words[len(b.words)-1]>>6 != 0 {
		t.Fatal("tail bits beyond dimension are set")
	}
}

func TestBinaryBindSelfInverse(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := RandomBinary(257, r)
		w := RandomBinary(257, r)
		return v.Bind(w).Bind(w).Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryBindCommutative(t *testing.T) {
	r := NewRNG(2)
	v := RandomBinary(512, r)
	w := RandomBinary(512, r)
	if !v.Bind(w).Equal(w.Bind(v)) {
		t.Fatal("binary bind not commutative")
	}
}

func TestBinaryHammingSelfZero(t *testing.T) {
	v := RandomBinary(1000, NewRNG(3))
	if h := v.Hamming(v); h != 0 {
		t.Fatalf("self hamming = %d", h)
	}
	if c := v.Cosine(v); c != 1 {
		t.Fatalf("self cosine = %f", c)
	}
}

func TestBinaryRandomPairQuasiOrthogonal(t *testing.T) {
	r := NewRNG(4)
	v := RandomBinary(10000, r)
	w := RandomBinary(10000, r)
	if c := math.Abs(v.Cosine(w)); c > 0.05 {
		t.Fatalf("|cos| = %f between independent binary hypervectors", c)
	}
}

func TestBinaryPermuteRoundTrip(t *testing.T) {
	v := RandomBinary(100, NewRNG(5))
	for _, k := range []int{0, 1, 50, 99, 100, -7} {
		if !v.Permute(k).Permute(-k).Equal(v) {
			t.Fatalf("binary permute round trip failed for k=%d", k)
		}
	}
}

func TestBinaryPermutePreservesWeight(t *testing.T) {
	v := RandomBinary(333, NewRNG(6))
	ones := func(b *Binary) int {
		n := 0
		for i := 0; i < b.Dim(); i++ {
			n += b.Bit(i)
		}
		return n
	}
	if ones(v) != ones(v.Permute(17)) {
		t.Fatal("permutation changed population count")
	}
}

func TestBinaryBipolarCosineAgreement(t *testing.T) {
	// The binary Cosine must equal the bipolar Cosine of the unpacked
	// vectors for all pairs.
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := RandomBinary(300, r)
		w := RandomBinary(300, r)
		bc := v.Cosine(w)
		pc := v.UnpackBipolar().Cosine(w.UnpackBipolar())
		return math.Abs(bc-pc) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryUnpackPackRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		v := RandomBinary(129, NewRNG(seed))
		return v.UnpackBipolar().PackBinary().Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryString(t *testing.T) {
	v := NewBinary(4)
	if got := v.String(); got != "Binary(d=4, 0000)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestBinaryAccumulatorMajority(t *testing.T) {
	acc := NewBinaryAccumulator(4)
	mk := func(bits ...int) *Binary {
		b := NewBinary(4)
		for i, v := range bits {
			if v == 1 {
				b.words[0] |= 1 << uint(i)
			}
		}
		return b
	}
	acc.Add(mk(1, 1, 0, 0))
	acc.Add(mk(1, 0, 0, 1))
	acc.Add(mk(1, 0, 0, 0))
	maj := acc.Majority(NewBinary(4))
	want := []int{1, 0, 0, 0}
	for i, w := range want {
		if maj.Bit(i) != w {
			t.Fatalf("majority bit %d = %d, want %d", i, maj.Bit(i), w)
		}
	}
}

func TestBinaryAccumulatorTie(t *testing.T) {
	acc := NewBinaryAccumulator(2)
	one := NewBinary(2)
	one.words[0] = 0b01
	two := NewBinary(2)
	two.words[0] = 0b10
	acc.Add(one)
	acc.Add(two)
	tie := NewBinary(2)
	tie.words[0] = 0b11
	maj := acc.Majority(tie)
	if maj.Bit(0) != 1 || maj.Bit(1) != 1 {
		t.Fatalf("tie not taken from tie vector: %v", maj)
	}
}

func TestBinaryAccumulatorAddSub(t *testing.T) {
	r := NewRNG(7)
	acc := NewBinaryAccumulator(64)
	v := RandomBinary(64, r)
	w := RandomBinary(64, r)
	acc.Add(v)
	acc.Add(w)
	acc.Sub(w)
	if acc.Count() != 1 {
		t.Fatalf("count = %d", acc.Count())
	}
	if !acc.Majority(NewBinary(64)).Equal(v) {
		t.Fatal("add/sub did not cancel")
	}
}

func TestBinaryBundlePreservesSimilarity(t *testing.T) {
	r := NewRNG(8)
	acc := NewBinaryAccumulator(10000)
	vs := make([]*Binary, 5)
	for i := range vs {
		vs[i] = RandomBinary(10000, r)
		acc.Add(vs[i])
	}
	maj := acc.Majority(RandomBinary(10000, r))
	for i, v := range vs {
		if c := maj.Cosine(v); c < 0.2 {
			t.Fatalf("cos(majority, v%d) = %f", i, c)
		}
	}
}
