package hdc

import (
	"math"
	"testing"
)

func TestLevelMemoryValidation(t *testing.T) {
	if _, err := NewLevelMemory(0, 4, 1); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := NewLevelMemory(64, 1, 1); err == nil {
		t.Fatal("expected level count error")
	}
}

func TestLevelMemorySimilarityDecaysMonotonically(t *testing.T) {
	m, err := NewLevelMemory(10000, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Vector(0)
	prev := 1.1
	for l := 1; l < m.Levels(); l++ {
		c := base.Cosine(m.Vector(l))
		if c >= prev {
			t.Fatalf("similarity not strictly decaying at level %d: %f >= %f", l, c, prev)
		}
		prev = c
	}
	// Extreme levels are quasi-orthogonal (flip d/2 components → cos≈0).
	if c := base.Cosine(m.Vector(9)); math.Abs(c) > 0.1 {
		t.Fatalf("extreme levels cosine = %f, want ≈0", c)
	}
	// Adjacent levels stay close.
	if c := m.Vector(4).Cosine(m.Vector(5)); c < 0.8 {
		t.Fatalf("adjacent levels cosine = %f, want high", c)
	}
}

func TestLevelMemoryQuantize(t *testing.T) {
	m, err := NewLevelMemory(256, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !m.Quantize(0, 0, 1).Equal(m.Vector(0)) {
		t.Fatal("lo should map to level 0")
	}
	if !m.Quantize(1, 0, 1).Equal(m.Vector(4)) {
		t.Fatal("hi should map to last level")
	}
	if !m.Quantize(-5, 0, 1).Equal(m.Vector(0)) {
		t.Fatal("below-range should clamp")
	}
	if !m.Quantize(99, 0, 1).Equal(m.Vector(4)) {
		t.Fatal("above-range should clamp")
	}
	if !m.Quantize(0.5, 0, 1).Equal(m.Vector(2)) {
		t.Fatal("midpoint should map to middle level")
	}
}

func TestLevelMemoryQuantizePanicsOnEmptyRange(t *testing.T) {
	m, _ := NewLevelMemory(64, 3, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Quantize(0, 1, 1)
}

func TestLevelMemoryVectorPanicsOutOfRange(t *testing.T) {
	m, _ := NewLevelMemory(64, 3, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.Vector(3)
}

func TestRecordEncoderRoundTrip(t *testing.T) {
	enc, err := NewRecordEncoder(10000, 6)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(7)
	// Item memory of candidate values for cleanup.
	values := make([]*Bipolar, 5)
	for i := range values {
		values[i] = RandomBipolar(10000, rng)
	}
	record, err := enc.Encode([]*Bipolar{values[0], values[3], values[1]})
	if err != nil {
		t.Fatal(err)
	}
	// Unbinding field 1 should be closest to values[3].
	got := enc.Field(record, 1)
	best, bestC := -1, -2.0
	for i, v := range values {
		if c := got.Cosine(v); c > bestC {
			best, bestC = i, c
		}
	}
	if best != 3 {
		t.Fatalf("recovered value %d, want 3 (cos=%f)", best, bestC)
	}
}

func TestRecordEncoderValidation(t *testing.T) {
	if _, err := NewRecordEncoder(0, 1); err == nil {
		t.Fatal("expected dimension error")
	}
	enc, _ := NewRecordEncoder(128, 1)
	if _, err := enc.Encode(nil); err == nil {
		t.Fatal("expected empty-record error")
	}
	if _, err := enc.Encode([]*Bipolar{nil, nil}); err == nil {
		t.Fatal("expected empty-record error for all-nil")
	}
	if _, err := enc.Encode([]*Bipolar{NewBipolar(64)}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestRecordEncoderSkipsNilFields(t *testing.T) {
	enc, _ := NewRecordEncoder(1024, 2)
	v := RandomBipolar(1024, NewRNG(8))
	r1, err := enc.Encode([]*Bipolar{nil, v})
	if err != nil {
		t.Fatal(err)
	}
	// Equivalent to a single-field record under key 1.
	want := enc.Key(1).Bind(v)
	if !r1.Equal(want) {
		t.Fatal("nil-skipping changed the encoding")
	}
}

func TestSequenceEncoderOrderSensitivity(t *testing.T) {
	enc, err := NewSequenceEncoder(10000, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, err := enc.Encode([]int{1, 2, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := enc.Encode([]int{5, 4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c := a.Cosine(b); c > 0.3 {
		t.Fatalf("reversed sequence too similar: %f", c)
	}
	// Identical sequences encode identically.
	a2, _ := enc.Encode([]int{1, 2, 3, 4, 5})
	if !a.Equal(a2) {
		t.Fatal("sequence encoding not deterministic")
	}
	// Sharing most n-grams keeps encodings similar.
	c, _ := enc.Encode([]int{1, 2, 3, 4, 6})
	if a.Cosine(c) < 0.3 {
		t.Fatalf("overlapping sequences too dissimilar: %f", a.Cosine(c))
	}
}

func TestSequenceEncoderValidation(t *testing.T) {
	if _, err := NewSequenceEncoder(0, 2, 1); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := NewSequenceEncoder(64, 0, 1); err == nil {
		t.Fatal("expected n-gram error")
	}
	enc, _ := NewSequenceEncoder(64, 3, 1)
	if _, err := enc.Encode([]int{1, 2}); err == nil {
		t.Fatal("expected short-sequence error")
	}
}

func TestSequenceEncoderUnigram(t *testing.T) {
	// n=1 reduces to a bag of symbols: order must NOT matter.
	enc, _ := NewSequenceEncoder(4096, 1, 10)
	a, _ := enc.Encode([]int{1, 2, 3})
	b, _ := enc.Encode([]int{3, 1, 2})
	if !a.Equal(b) {
		t.Fatal("unigram encoding should be order-invariant")
	}
}
