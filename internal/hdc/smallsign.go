package hdc

import "fmt"

// Small-n majority sign kernels. Most graphs in serving workloads bundle
// a few dozen edge vectors, far below the capacity the nibble/byte/int32
// counter tiers exist to provide. For n ≤ MaxSmallSign the whole count
// fits in six bit-sliced planes (weights 1/2/4/8/16/32), so the majority
// can be taken straight off the carry-save stack with a bit-sliced
// ripple compare — no lane drains, no per-component flushes, and nothing
// for Reset to clear afterwards. These kernels are one-shot: they ignore
// any weight already accumulated in the counter, use its carry-save
// planes as scratch, and leave them zero (the between-calls invariant),
// so interleaving them with ordinary accumulation is safe.
//
// The sign they produce is bit-for-bit the sign of the equivalent
// Reset + Add* + SignBinaryInto sequence: the planes hold exact counts
// and the compare implements exactly the same majority-with-tie rule.
// Like the counter's batch entry points, both the accumulation cascade
// and the plane compare route their lane-aligned word prefix through the
// dispatched vector kernel when one is installed; the portable loops
// below remain the semantic source of truth and finish the tails.

// MaxSmallSign is the largest vector count the small-n sign kernels
// accept: six bit-sliced planes count to 2⁶-1.
const MaxSmallSign = 63

// SignXorPairsSmallInto computes the majority sign of the XOR/XNOR pairs
// (1 ≤ len(pairs) ≤ MaxSmallSign) into dst, equivalent to
// Reset + AddXorPairs(pairs) + SignBinaryInto(tie, dst) on an empty
// counter. Each output word is assembled before being stored, so dst may
// alias tie. Returns dst.
func (c *BitCounter) SignXorPairsSmallInto(pairs []XorPair, tie, dst *Binary) *Binary {
	if len(pairs) == 0 || len(pairs) > MaxSmallSign {
		panic(fmt.Sprintf("hdc: %d pairs outside small-sign range [1,%d]", len(pairs), MaxSmallSign))
	}
	// Pair operands and the tie vector may be wider than the counter
	// (prefix slicing; see BitCounter.SetDim): only the first d components
	// are read and the cascade masks the tail word. dst is canonical
	// output and must match exactly.
	c.checkOperand(tie.d)
	if c.d != dst.d {
		panic(fmt.Sprintf("hdc: destination dimension %d, want %d", dst.d, c.d))
	}
	for _, p := range pairs {
		c.checkOperand(p.A.d)
		c.checkOperand(p.B.d)
	}
	kern := loadKernels()
	nw := c.words
	c.csaParked = true
	var aws, bws [8][]uint64
	var vs [8]uint64
	for i := 0; i < len(pairs); i += 8 {
		n := len(pairs) - i
		if n > 8 {
			n = 8
		}
		for k := 0; k < n; k++ {
			p := &pairs[i+k]
			aws[k], bws[k], vs[k] = p.A.words[:nw], p.B.words[:nw], invMask(p.Invert)
		}
		for k := n; k < 8; k++ {
			aws[k], bws[k], vs[k] = c.zeroWords, c.zeroWords, 0
		}
		lo := 0
		if kern.csaXorSmallBlock != nil {
			if vn := c.vecWords(kern, true); vn > 0 {
				a := &c.kargs
				for k := 0; k < 8; k++ {
					a.x[k] = &aws[k][0]
					a.y[k] = &bws[k][0]
					a.inv[k] = vs[k]
				}
				a.n = int64(vn)
				kern.csaXorSmallBlock(a)
				lo = vn
			}
		}
		c.csaXorSmallBlock8Range(&aws, &bws, &vs, lo)
	}
	return c.signPlanesInto(kern, len(pairs), tie, dst)
}

// csaXorSmallBlock8Range is the portable small-sign cascade for one
// block of eight XOR/XNOR operand streams over words [lo, words),
// overflowing weight 16 into the sixteens/thirtytwos planes — the
// semantic source of truth for the vector small-sign tiers.
func (c *BitCounter) csaXorSmallBlock8Range(aws, bws *[8][]uint64, vs *[8]uint64, lo int) {
	nw := c.words
	last := nw - 1
	tail := c.tailMask()
	ones, twos, fours, eights := c.csaOnes, c.csaTwos, c.csaFours, c.csaEights
	sixteens, thirtytwos := c.csaSixteens, c.csaThirtyTwos
	a0, b0, v0 := aws[0], bws[0], vs[0]
	a1, b1, v1 := aws[1], bws[1], vs[1]
	a2, b2, v2 := aws[2], bws[2], vs[2]
	a3, b3, v3 := aws[3], bws[3], vs[3]
	a4, b4, v4 := aws[4], bws[4], vs[4]
	a5, b5, v5 := aws[5], bws[5], vs[5]
	a6, b6, v6 := aws[6], bws[6], vs[6]
	a7, b7, v7 := aws[7], bws[7], vs[7]
	for w := lo; w < nw; w++ {
		m := ^uint64(0)
		if w == last {
			m = tail
		}
		x0 := (a0[w] ^ b0[w] ^ v0) & m
		x1 := (a1[w] ^ b1[w] ^ v1) & m
		x2 := (a2[w] ^ b2[w] ^ v2) & m
		x3 := (a3[w] ^ b3[w] ^ v3) & m
		x4 := (a4[w] ^ b4[w] ^ v4) & m
		x5 := (a5[w] ^ b5[w] ^ v5) & m
		x6 := (a6[w] ^ b6[w] ^ v6) & m
		x7 := (a7[w] ^ b7[w] ^ v7) & m
		o, twosA := csa(ones[w], x0, x1)
		o, twosB := csa(o, x2, x3)
		t, foursA := csa(twos[w], twosA, twosB)
		o, twosA = csa(o, x4, x5)
		o, twosB = csa(o, x6, x7)
		t, foursB := csa(t, twosA, twosB)
		f, e8 := csa(fours[w], foursA, foursB)
		e := eights[w]
		s16 := e & e8
		ones[w], twos[w], fours[w], eights[w] = o, t, f, e^e8
		if s16 != 0 {
			// n ≤ 63 bounds each count below 64, so a second weight-32
			// carry per component cannot occur; |= is exact.
			thirtytwos[w] |= sixteens[w] & s16
			sixteens[w] ^= s16
		}
	}
}

// SignPlannedSmallInto is SignXorPairsSmallInto for planned operands: the
// majority sign of plan.Operand(idx) for idx in idxs
// (1 ≤ len(idxs) ≤ MaxSmallSign), written into dst, equivalent to
// Reset + AddPlanned(plan, idxs) + SignBinaryInto(tie, dst) on an empty
// counter. This is the batch-encoding hot path: one sequential slab load
// per operand word in, one bit-sliced compare out.
func (c *BitCounter) SignPlannedSmallInto(plan *OperandPlan, idxs []int32, tie, dst *Binary) *Binary {
	if len(idxs) == 0 || len(idxs) > MaxSmallSign {
		panic(fmt.Sprintf("hdc: %d operands outside small-sign range [1,%d]", len(idxs), MaxSmallSign))
	}
	if plan.d != c.d {
		panic(fmt.Sprintf("hdc: plan dimension %d vs counter %d", plan.d, c.d))
	}
	// tie may be wider than the counter (prefix slicing); dst is canonical
	// output and must match exactly. See SignXorPairsSmallInto.
	c.checkOperand(tie.d)
	if c.d != dst.d {
		panic(fmt.Sprintf("hdc: destination dimension %d, want %d", dst.d, c.d))
	}
	for _, idx := range idxs {
		if int(idx) < 0 || int(idx) >= plan.n {
			panic(fmt.Sprintf("hdc: planned operand %d out of range [0,%d)", idx, plan.n))
		}
	}
	kern := loadKernels()
	nw := c.words
	slab := plan.words
	c.csaParked = true
	var ops [8][]uint64
	for i := 0; i < len(idxs); i += 8 {
		n := len(idxs) - i
		if n > 8 {
			n = 8
		}
		for k := 0; k < n; k++ {
			ops[k] = slab[int(idxs[i+k])*nw:][:nw]
		}
		for k := n; k < 8; k++ {
			ops[k] = c.zeroWords
		}
		lo := 0
		if kern.csaSmallBlock != nil {
			if vn := c.vecWords(kern, false); vn > 0 {
				a := &c.kargs
				for k := 0; k < 8; k++ {
					a.x[k] = &ops[k][0]
				}
				a.n = int64(vn)
				kern.csaSmallBlock(a)
				lo = vn
			}
		}
		c.csaSmallBlock8Range(&ops, lo)
	}
	return c.signPlanesInto(kern, len(idxs), tie, dst)
}

// csaSmallBlock8Range is the portable small-sign cascade for one block
// of eight raw word streams over words [lo, words) — the semantic source
// of truth for the vector small-sign tiers. Streams must be tail-masked.
func (c *BitCounter) csaSmallBlock8Range(ops *[8][]uint64, lo int) {
	nw := c.words
	ones, twos, fours, eights := c.csaOnes, c.csaTwos, c.csaFours, c.csaEights
	sixteens, thirtytwos := c.csaSixteens, c.csaThirtyTwos
	x0s, x1s, x2s, x3s := ops[0], ops[1], ops[2], ops[3]
	x4s, x5s, x6s, x7s := ops[4], ops[5], ops[6], ops[7]
	for w := lo; w < nw; w++ {
		o, twosA := csa(ones[w], x0s[w], x1s[w])
		o, twosB := csa(o, x2s[w], x3s[w])
		t, foursA := csa(twos[w], twosA, twosB)
		o, twosA = csa(o, x4s[w], x5s[w])
		o, twosB = csa(o, x6s[w], x7s[w])
		t, foursB := csa(t, twosA, twosB)
		f, e8 := csa(fours[w], foursA, foursB)
		e := eights[w]
		s16 := e & e8
		ones[w], twos[w], fours[w], eights[w] = o, t, f, e^e8
		if s16 != 0 {
			thirtytwos[w] |= sixteens[w] & s16
			sixteens[w] ^= s16
		}
	}
}

// signPlanesInto takes the majority of the n vectors accumulated in the
// six carry-save planes, writes it into dst, and zeroes the planes. The
// compare is a bit-sliced ripple-carry addition of the constant
// 64 - (n/2 + 1): the carry out of the sixth plane is set exactly for
// components whose count reaches the majority threshold n/2 + 1, and for
// even n a sum of exactly 63 identifies the ties (count == n/2), which
// copy the tie vector — the same rule as SignBinaryInto. The vector
// kernel computes the identical compare (with the tie term masked off
// for odd n) on the lane-aligned prefix.
func (c *BitCounter) signPlanesInto(kern *kernelTable, n int, tie, dst *Binary) *Binary {
	k := uint64(n)/2 + 1
	add := 64 - k
	var cm [6]uint64 // constant bit masks for the ripple add
	for b := range cm {
		if add>>uint(b)&1 == 1 {
			cm[b] = ^uint64(0)
		}
	}
	even := n%2 == 0
	lo := 0
	if kern.signPlanes != nil {
		if vn := c.vecWords(kern, false); vn > 0 {
			a := &c.kargs
			a.x[0] = &tie.words[0]
			a.y[0] = &dst.words[0]
			copy(a.inv[:6], cm[:])
			a.inv[6] = 0
			if even {
				a.inv[6] = ^uint64(0)
			}
			a.n = int64(vn)
			kern.signPlanes(a)
			lo = vn
		}
	}
	c.signPlanesRange(&cm, even, tie, dst, lo)
	c.csaParked = false
	return dst
}

// signPlanesRange is the portable plane compare over words [lo, words) —
// the semantic source of truth for the vector signPlanes kernels. It
// zeroes the plane words it consumes.
func (c *BitCounter) signPlanesRange(cm *[6]uint64, even bool, tie, dst *Binary, lo int) {
	planes := [6][]uint64{c.csaOnes, c.csaTwos, c.csaFours, c.csaEights, c.csaSixteens, c.csaThirtyTwos}
	for w := lo; w < c.words; w++ {
		carry := uint64(0)
		if even {
			// count + add == 63 ⟺ count == n/2 (a tie): all six sum bits
			// set. A simultaneous carry would need count + add ≥ 127,
			// impossible for n ≤ 63, so eq and carry are disjoint.
			eq := ^uint64(0)
			for b, lane := range planes {
				p := lane[w]
				lane[w] = 0
				u := p ^ cm[b]
				eq &= u ^ carry
				carry = (p & cm[b]) | (u & carry)
			}
			dst.words[w] = carry | (eq & tie.words[w])
		} else {
			// Odd n cannot tie; only the carry chain is needed.
			for b, lane := range planes {
				p := lane[w]
				lane[w] = 0
				carry = (p & cm[b]) | ((p ^ cm[b]) & carry)
			}
			dst.words[w] = carry
		}
	}
}
