package hdc

import (
	"fmt"
	"math/bits"
)

// Binary is a bit-packed binary hypervector: component i is bit i of the
// underlying word array. Binary hypervectors support the same algebra as
// bipolar ones under the mapping bit 1 ↔ +1, bit 0 ↔ -1: binding becomes
// XNOR (implemented as XOR of one operand with the complement, but we keep
// plain XOR and flip the similarity sign convention — see Bind), and
// similarity is measured through the Hamming distance via popcount.
//
// The binary backend exists for the memory/throughput ablation (A5 in
// DESIGN.md): it stores 64 components per word and replaces the int8
// multiply-add inner loops with XOR+popcount.
type Binary struct {
	d     int
	words []uint64
}

// NewBinary returns an all-zero binary hypervector of dimension d.
func NewBinary(d int) *Binary {
	if d <= 0 {
		panic("hdc: non-positive dimension")
	}
	return &Binary{d: d, words: make([]uint64, (d+63)/64)}
}

// RandomBinary draws a uniform random binary hypervector of dimension d.
func RandomBinary(d int, rng *RNG) *Binary {
	b := NewBinary(d)
	for i := range b.words {
		b.words[i] = rng.Uint64()
	}
	b.maskTail()
	return b
}

// maskTail zeroes the unused high bits of the final word so that popcount
// based operations never see garbage.
func (b *Binary) maskTail() {
	if r := b.d & 63; r != 0 {
		b.words[len(b.words)-1] &= (1 << uint(r)) - 1
	}
}

// Dim returns the dimensionality of the hypervector.
func (b *Binary) Dim() int { return b.d }

// Bit returns component i as 0 or 1.
func (b *Binary) Bit(i int) int {
	return int(b.words[i>>6] >> uint(i&63) & 1)
}

// Flip negates component i (bit 1 ↔ bit 0), the packed analogue of a
// bipolar sign flip; used to model faulty hypervector memory.
func (b *Binary) Flip(i int) {
	if i < 0 || i >= b.d {
		panic(fmt.Sprintf("hdc: component %d out of range [0,%d)", i, b.d))
	}
	b.words[i>>6] ^= 1 << uint(i&63)
}

// CopyFrom overwrites b with src's components. Dimensions must match.
// Returns b. This is the reuse analogue of Clone for scratch-owned
// output vectors.
func (b *Binary) CopyFrom(src *Binary) *Binary {
	if b.d != src.d {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", b.d, src.d))
	}
	copy(b.words, src.words)
	return b
}

// Words exposes the underlying word array (64 components per word, little
// endian within the word). The slice is shared with b and must be treated
// as read-only; it exists for serialization and SWAR consumers.
func (b *Binary) Words() []uint64 { return b.words }

// BinaryFromWords builds a binary hypervector of dimension d from a packed
// word slice as produced by Words. The slice is copied; unused tail bits
// beyond d are rejected so round-tripped vectors stay canonical.
func BinaryFromWords(d int, words []uint64) (*Binary, error) {
	if d <= 0 {
		return nil, fmt.Errorf("hdc: non-positive dimension %d", d)
	}
	if want := (d + 63) / 64; len(words) != want {
		return nil, fmt.Errorf("hdc: %d words for dimension %d, want %d", len(words), d, want)
	}
	if r := d & 63; r != 0 && words[len(words)-1]&^((1<<uint(r))-1) != 0 {
		return nil, fmt.Errorf("hdc: tail bits beyond dimension %d are set", d)
	}
	w := make([]uint64, len(words))
	copy(w, words)
	return &Binary{d: d, words: w}, nil
}

// Clone returns an independent copy of b.
func (b *Binary) Clone() *Binary {
	w := make([]uint64, len(b.words))
	copy(w, b.words)
	return &Binary{d: b.d, words: w}
}

// PrefixCopy returns a canonical d-dimensional copy of b's first d
// components: an independent vector whose tail bits beyond d are zero.
// Because majority bundling and XNOR binding are componentwise, the
// d-prefix of any encoding built from full-width basis vectors is
// bit-identical to the encoding built from the d-prefixes of those basis
// vectors — PrefixCopy is how class vectors and basis slices are
// materialized for prefix-sliced (reduced-dimension) classification.
// d must satisfy 1 ≤ d ≤ b.Dim().
func (b *Binary) PrefixCopy(d int) *Binary {
	if d < 1 || d > b.d {
		panic(fmt.Sprintf("hdc: prefix dimension %d outside [1,%d]", d, b.d))
	}
	w := make([]uint64, (d+63)/64)
	copy(w, b.words[:len(w)])
	out := &Binary{d: d, words: w}
	out.maskTail()
	return out
}

// Equal reports whether b and c are identical.
func (b *Binary) Equal(c *Binary) bool {
	if b.d != c.d {
		return false
	}
	for i, w := range b.words {
		if c.words[i] != w {
			return false
		}
	}
	return true
}

// Bind returns the XOR of b and c. Under the bit↔bipolar mapping, XOR
// corresponds to the *negated* element-wise product; since the negation is
// applied uniformly to every component it preserves all similarity
// geometry and remains self-inverse, so it is the standard binding for
// binary HDC.
func (b *Binary) Bind(c *Binary) *Binary {
	if b.d != c.d {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", b.d, c.d))
	}
	out := &Binary{d: b.d, words: make([]uint64, len(b.words))}
	for i := range out.words {
		out.words[i] = b.words[i] ^ c.words[i]
	}
	return out
}

// Permute returns b cyclically shifted right by k bit positions.
func (b *Binary) Permute(k int) *Binary {
	d := b.d
	k = ((k % d) + d) % d
	if k == 0 {
		return b.Clone()
	}
	out := NewBinary(d)
	for i := 0; i < d; i++ {
		if b.Bit(i) == 1 {
			j := i + k
			if j >= d {
				j -= d
			}
			out.words[j>>6] |= 1 << uint(j&63)
		}
	}
	return out
}

// Hamming returns the number of differing components, computed with
// per-word XOR + popcount.
func (b *Binary) Hamming(c *Binary) int {
	if b.d != c.d {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", b.d, c.d))
	}
	h := 0
	for i, w := range b.words {
		h += bits.OnesCount64(w ^ c.words[i])
	}
	return h
}

// Cosine returns the bipolar-equivalent cosine similarity,
// 1 - 2*Hamming/d, which equals the cosine of the corresponding
// bipolar vectors and lies in [-1, 1].
func (b *Binary) Cosine(c *Binary) float64 {
	return 1 - 2*float64(b.Hamming(c))/float64(b.d)
}

// UnpackBipolar converts b to the bipolar representation, mapping bit 1 to
// +1 and bit 0 to -1.
func (b *Binary) UnpackBipolar() *Bipolar {
	c := make([]int8, b.d)
	for i := range c {
		if b.Bit(i) == 1 {
			c[i] = 1
		} else {
			c[i] = -1
		}
	}
	return &Bipolar{comps: c}
}

// String renders a short diagnostic form.
func (b *Binary) String() string {
	n := b.d
	show := n
	if show > 8 {
		show = 8
	}
	buf := make([]byte, show)
	for i := 0; i < show; i++ {
		buf[i] = byte('0' + b.Bit(i))
	}
	suffix := ""
	if n > show {
		suffix = "..."
	}
	return fmt.Sprintf("Binary(d=%d, %s%s)", n, buf, suffix)
}

// BinaryAccumulator is the bit-majority counterpart of Accumulator: it
// counts, per component, how many bundled vectors had that bit set.
type BinaryAccumulator struct {
	d     int
	ones  []int32
	total int
}

// NewBinaryAccumulator returns an empty accumulator of dimension d.
func NewBinaryAccumulator(d int) *BinaryAccumulator {
	if d <= 0 {
		panic("hdc: non-positive dimension")
	}
	return &BinaryAccumulator{d: d, ones: make([]int32, d)}
}

// Dim returns the dimensionality of the accumulator.
func (a *BinaryAccumulator) Dim() int { return a.d }

// Count returns the number of vectors bundled so far.
func (a *BinaryAccumulator) Count() int { return a.total }

// Add bundles b into the accumulator.
func (a *BinaryAccumulator) Add(b *Binary) {
	if a.d != b.d {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", a.d, b.d))
	}
	for i := 0; i < a.d; i++ {
		a.ones[i] += int32(b.Bit(i))
	}
	a.total++
}

// Sub removes one vote of b from the accumulator.
func (a *BinaryAccumulator) Sub(b *Binary) {
	if a.d != b.d {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", a.d, b.d))
	}
	for i := 0; i < a.d; i++ {
		a.ones[i] -= int32(b.Bit(i))
	}
	a.total--
}

// Reset clears all votes.
func (a *BinaryAccumulator) Reset() {
	for i := range a.ones {
		a.ones[i] = 0
	}
	a.total = 0
}

// Majority collapses the accumulator to a binary hypervector: bit i is set
// when strictly more than half of the bundled vectors had it set, cleared
// when fewer, and copied from tie on an exact tie.
func (a *BinaryAccumulator) Majority(tie *Binary) *Binary {
	if a.d != tie.d {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", a.d, tie.d))
	}
	out := NewBinary(a.d)
	half2 := int32(a.total) // compare 2*ones against total
	for i := 0; i < a.d; i++ {
		twice := 2 * a.ones[i]
		switch {
		case twice > half2:
			out.words[i>>6] |= 1 << uint(i&63)
		case twice < half2:
			// bit stays 0
		default:
			if tie.Bit(i) == 1 {
				out.words[i>>6] |= 1 << uint(i&63)
			}
		}
	}
	return out
}
