package hdc

import (
	"testing"
	"testing/quick"
)

func TestBitCounterMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		const d = 130
		c := NewBitCounter(d)
		naive := make([]int, d)
		n := 1 + rng.Intn(40)
		for k := 0; k < n; k++ {
			b := RandomBinary(d, rng)
			c.Add(b)
			for i := 0; i < d; i++ {
				naive[i] += b.Bit(i)
			}
		}
		if c.Count() != n {
			return false
		}
		for i := 0; i < d; i++ {
			if c.CountAt(i) != naive[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBitCounterAddXorMatchesExplicit(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		const d = 100
		a := RandomBinary(d, rng)
		b := RandomBinary(d, rng)
		// XOR path.
		cx := NewBitCounter(d)
		cx.AddXor(a, b, false)
		x := a.Bind(b)
		for i := 0; i < d; i++ {
			if cx.CountAt(i) != x.Bit(i) {
				return false
			}
		}
		// XNOR path: complement within dimension.
		cn := NewBitCounter(d)
		cn.AddXor(a, b, true)
		for i := 0; i < d; i++ {
			if cn.CountAt(i) != 1-x.Bit(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBitCounterXnorTailMasked(t *testing.T) {
	// d not a multiple of 64: the complemented tail must not pollute
	// Popcount.
	const d = 70
	a := NewBinary(d)
	b := NewBinary(d)
	c := NewBitCounter(d)
	c.AddXor(a, b, true) // XNOR of zeros = all ones within d
	if got := c.Popcount(); got != d {
		t.Fatalf("popcount = %d, want %d", got, d)
	}
}

func TestBitCounterSignBipolarMatchesAccumulator(t *testing.T) {
	// The packed majority must agree bit-for-bit with the int32
	// accumulator under the bit↔bipolar mapping, ties included.
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		const d = 96
		tie := RandomBipolar(d, rng)
		bc := NewBitCounter(d)
		acc := NewAccumulator(d)
		n := 2 + rng.Intn(10) // even counts happen, exercising ties
		for k := 0; k < n; k++ {
			b := RandomBinary(d, rng)
			bc.Add(b)
			acc.Add(b.UnpackBipolar())
		}
		return bc.SignBipolar(tie).Equal(acc.Sign(tie))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBitCounterReset(t *testing.T) {
	c := NewBitCounter(64)
	c.Add(RandomBinary(64, NewRNG(1)))
	c.Reset()
	if c.Count() != 0 || c.Popcount() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestBitCounterPanics(t *testing.T) {
	c := NewBitCounter(64)
	for _, fn := range []func(){
		func() { c.Add(NewBinary(65)) },
		func() { c.AddXor(NewBinary(64), NewBinary(65), false) },
		func() { c.CountAt(64) },
		func() { NewBitCounter(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBitCounterAddXor(b *testing.B) {
	rng := NewRNG(1)
	x := RandomBinary(10000, rng)
	y := RandomBinary(10000, rng)
	c := NewBitCounter(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddXor(x, y, true)
	}
}
