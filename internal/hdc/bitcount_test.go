package hdc

import (
	"testing"
	"testing/quick"
)

func TestBitCounterMatchesNaive(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		const d = 130
		c := NewBitCounter(d)
		naive := make([]int, d)
		n := 1 + rng.Intn(40)
		for k := 0; k < n; k++ {
			b := RandomBinary(d, rng)
			c.Add(b)
			for i := 0; i < d; i++ {
				naive[i] += b.Bit(i)
			}
		}
		if c.Count() != n {
			return false
		}
		for i := 0; i < d; i++ {
			if c.CountAt(i) != naive[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBitCounterAddXorMatchesExplicit(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		const d = 100
		a := RandomBinary(d, rng)
		b := RandomBinary(d, rng)
		// XOR path.
		cx := NewBitCounter(d)
		cx.AddXor(a, b, false)
		x := a.Bind(b)
		for i := 0; i < d; i++ {
			if cx.CountAt(i) != x.Bit(i) {
				return false
			}
		}
		// XNOR path: complement within dimension.
		cn := NewBitCounter(d)
		cn.AddXor(a, b, true)
		for i := 0; i < d; i++ {
			if cn.CountAt(i) != 1-x.Bit(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBitCounterXnorTailMasked(t *testing.T) {
	// d not a multiple of 64: the complemented tail must not pollute
	// Popcount.
	const d = 70
	a := NewBinary(d)
	b := NewBinary(d)
	c := NewBitCounter(d)
	c.AddXor(a, b, true) // XNOR of zeros = all ones within d
	if got := c.Popcount(); got != d {
		t.Fatalf("popcount = %d, want %d", got, d)
	}
}

func TestBitCounterSignBipolarMatchesAccumulator(t *testing.T) {
	// The packed majority must agree bit-for-bit with the int32
	// accumulator under the bit↔bipolar mapping, ties included.
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		const d = 96
		tie := RandomBipolar(d, rng)
		bc := NewBitCounter(d)
		acc := NewAccumulator(d)
		n := 2 + rng.Intn(10) // even counts happen, exercising ties
		for k := 0; k < n; k++ {
			b := RandomBinary(d, rng)
			bc.Add(b)
			acc.Add(b.UnpackBipolar())
		}
		return bc.SignBipolar(tie).Equal(acc.Sign(tie))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBitCounterReset(t *testing.T) {
	c := NewBitCounter(64)
	c.Add(RandomBinary(64, NewRNG(1)))
	c.Reset()
	if c.Count() != 0 || c.Popcount() != 0 {
		t.Fatal("reset incomplete")
	}
}

func TestBitCounterPanics(t *testing.T) {
	c := NewBitCounter(64)
	for _, fn := range []func(){
		// Operands narrower than the counter must panic (wider ones are
		// the prefix-slicing contract and are accepted).
		func() { c.Add(NewBinary(63)) },
		func() { c.AddXor(NewBinary(64), NewBinary(63), false) },
		func() { c.CountAt(64) },
		func() { NewBitCounter(0) },
		func() { c.SetDim(0) },
		func() { c.SetDim(65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func BenchmarkBitCounterAddXor(b *testing.B) {
	rng := NewRNG(1)
	x := RandomBinary(10000, rng)
	y := RandomBinary(10000, rng)
	c := NewBitCounter(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AddXor(x, y, true)
	}
}

func TestSignIntoVariantsMatchAllocatingOnes(t *testing.T) {
	const d = 517 // odd tail exercises the mask
	rng := NewRNG(41)
	tieB := RandomBipolar(d, rng)
	tie := tieB.PackBinary()
	c := NewBitCounter(d)
	dstBin := NewBinary(d)
	dstBip := NewBipolar(d)
	for round := 0; round < 3; round++ {
		c.Reset()
		// Even count of adds produces exact ties that exercise the tie path.
		for i := 0; i < 4+2*round; i++ {
			c.AddXor(RandomBinary(d, rng), RandomBinary(d, rng), i%2 == 0)
		}
		wantBin := c.SignBinary(tie)
		gotBin := c.SignBinaryInto(tie, dstBin)
		if gotBin != dstBin {
			t.Fatal("SignBinaryInto did not return dst")
		}
		if !wantBin.Equal(gotBin) {
			t.Fatalf("round %d: SignBinaryInto differs from SignBinary", round)
		}
		wantBip := c.SignBipolar(tieB)
		gotBip := c.SignBipolarInto(tieB, dstBip)
		if gotBip != dstBip {
			t.Fatal("SignBipolarInto did not return dst")
		}
		if !wantBip.Equal(gotBip) {
			t.Fatalf("round %d: SignBipolarInto differs from SignBipolar", round)
		}
	}
}

func TestSignBinaryIntoOverwritesStaleBits(t *testing.T) {
	const d = 128
	rng := NewRNG(42)
	tie := RandomBinary(d, rng)
	c := NewBitCounter(d)
	// Fill dst with garbage; a correct Into must clear every word first.
	dst := RandomBinary(d, rng)
	c.AddXor(RandomBinary(d, rng), RandomBinary(d, rng), false)
	c.AddXor(RandomBinary(d, rng), RandomBinary(d, rng), false)
	c.AddXor(RandomBinary(d, rng), RandomBinary(d, rng), false)
	if want := c.SignBinary(tie); !want.Equal(c.SignBinaryInto(tie, dst)) {
		t.Fatal("stale dst bits leaked into SignBinaryInto result")
	}
}

func TestSignIntoAllocationFree(t *testing.T) {
	const d = 2048
	rng := NewRNG(43)
	tieB := RandomBipolar(d, rng)
	tie := tieB.PackBinary()
	a, b := RandomBinary(d, rng), RandomBinary(d, rng)
	c := NewBitCounter(d)
	dstBin := NewBinary(d)
	dstBip := NewBipolar(d)
	allocs := testing.AllocsPerRun(20, func() {
		c.Reset()
		for i := 0; i < 17; i++ {
			c.AddXor(a, b, true)
		}
		c.SignBinaryInto(tie, dstBin)
		c.SignBipolarInto(tieB, dstBip)
	})
	if allocs != 0 {
		t.Fatalf("reset+accumulate+sign allocated %v times per run, want 0", allocs)
	}
}

func TestSignIntoDimensionPanics(t *testing.T) {
	c := NewBitCounter(64)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("SignBinaryInto dst", func() { c.SignBinaryInto(NewBinary(64), NewBinary(65)) })
	// Ties WIDER than the counter are legal (prefix slicing); narrower
	// ones cannot cover it and must panic.
	mustPanic("SignBinaryInto tie", func() { c.SignBinaryInto(NewBinary(63), NewBinary(64)) })
	mustPanic("SignBipolarInto dst", func() { c.SignBipolarInto(NewBipolar(64), NewBipolar(63)) })
}

func TestSignBinaryIntoAliasingTie(t *testing.T) {
	const d = 130
	rng := NewRNG(44)
	c := NewBitCounter(d)
	// Even add count forces exact ties, the only components that read tie.
	c.AddXor(RandomBinary(d, rng), RandomBinary(d, rng), true)
	c.AddXor(RandomBinary(d, rng), RandomBinary(d, rng), false)
	tie := RandomBinary(d, rng)
	want := c.SignBinary(tie)
	dst := tie.Clone()
	if got := c.SignBinaryInto(dst, dst); !want.Equal(got) {
		t.Fatal("SignBinaryInto with dst aliasing tie lost tie-break bits")
	}
}
