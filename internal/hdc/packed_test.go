package hdc

import (
	"testing"
	"testing/quick"
)

func TestSignBinaryMatchesSignBipolar(t *testing.T) {
	// SignBinary(tiePacked) must equal SignBipolar(tie).PackBinary() bit
	// for bit, including exact ties (even add counts force many).
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		d := 100 + rng.Intn(200) // non-multiple of 64 exercises the tail
		tie := RandomBipolar(d, rng)
		a := NewBitCounter(d)
		b := NewBitCounter(d)
		n := 2 + rng.Intn(20)
		for i := 0; i < n; i++ {
			v := RandomBinary(d, rng)
			a.Add(v)
			b.Add(v)
		}
		return a.SignBinary(tie.PackBinary()).Equal(b.SignBipolar(tie).PackBinary())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSignBinaryDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	// A tie vector NARROWER than the counter cannot cover it and must
	// panic. (Wider ties are legal under prefix slicing — see SetDim.)
	NewBitCounter(65).SignBinary(NewBinary(64))
}

// packedFixture trains a small bipolar-mode associative memory and returns
// it with the query vectors used against it.
func packedFixture(t *testing.T, k, d, n int, seed uint64) (*AssociativeMemory, []*Bipolar) {
	t.Helper()
	rng := NewRNG(seed)
	am := NewAssociativeMemory(k, d, rng.Uint64(), true)
	for i := 0; i < n; i++ {
		am.Learn(i%k, RandomBipolar(d, rng))
	}
	queries := make([]*Bipolar, 20)
	for i := range queries {
		queries[i] = RandomBipolar(d, rng)
	}
	return am, queries
}

func TestPackedMemoryMatchesBipolarMode(t *testing.T) {
	am, queries := packedFixture(t, 3, 500, 30, 1)
	pm := am.Snapshot()
	if pm.NumClasses() != 3 || pm.Dim() != 500 {
		t.Fatalf("snapshot shape %d/%d", pm.NumClasses(), pm.Dim())
	}
	for qi, q := range queries {
		b := q.PackBinary()
		if got, want := pm.Classify(b), am.Classify(q); got != want {
			t.Fatalf("query %d: packed class %d, reference %d", qi, got, want)
		}
		gotS, wantS := pm.Similarities(b), am.Similarities(q)
		for c := range wantS {
			if gotS[c] != wantS[c] {
				t.Fatalf("query %d class %d: packed sim %v, reference %v (must be exactly equal)",
					qi, c, gotS[c], wantS[c])
			}
		}
	}
}

func TestPackedMemoryHammingsConsistent(t *testing.T) {
	am, queries := packedFixture(t, 4, 320, 40, 2)
	pm := am.Snapshot()
	for _, q := range queries {
		b := q.PackBinary()
		hs := pm.Hammings(b)
		for c, h := range hs {
			if want := pm.ClassVector(c).Hamming(b); h != want {
				t.Fatalf("class %d hamming %d, want %d", c, h, want)
			}
		}
	}
}

func TestClassifyPackedTracksLearning(t *testing.T) {
	// The cached snapshot behind ClassifyPacked must refresh after every
	// class update, staying equal to a fresh Snapshot.
	rng := NewRNG(3)
	am := NewAssociativeMemory(2, 256, rng.Uint64(), true)
	am.Learn(0, RandomBipolar(256, rng))
	am.Learn(1, RandomBipolar(256, rng))
	for i := 0; i < 10; i++ {
		q := RandomBipolar(256, rng)
		b := q.PackBinary()
		if am.ClassifyPacked(b) != am.Snapshot().Classify(b) {
			t.Fatalf("step %d: cached snapshot stale", i)
		}
		am.Learn(i%2, q)
	}
	// Unlearn and Reinforce must invalidate too.
	v := RandomBipolar(256, rng)
	am.ClassifyPacked(v.PackBinary()) // populate cache
	am.Unlearn(0, v)
	if am.packed.Load() != nil {
		t.Fatal("Unlearn did not invalidate the packed snapshot")
	}
	am.ClassifyPacked(v.PackBinary())
	am.Reinforce(1, v, 2)
	if am.packed.Load() != nil {
		t.Fatal("Reinforce did not invalidate the packed snapshot")
	}
}

func TestNewPackedMemoryErrors(t *testing.T) {
	if _, err := NewPackedMemory(nil); err == nil {
		t.Fatal("expected empty class error")
	}
	if _, err := NewPackedMemory([]*Binary{NewBinary(64), nil}); err == nil {
		t.Fatal("expected nil class error")
	}
	if _, err := NewPackedMemory([]*Binary{NewBinary(64), NewBinary(128)}); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestPackedMemoryBytes(t *testing.T) {
	pm, err := NewPackedMemory([]*Binary{NewBinary(100), NewBinary(100)})
	if err != nil {
		t.Fatal(err)
	}
	if got := pm.MemoryBytes(); got != 2*2*8 { // 2 classes × 2 words × 8 bytes
		t.Fatalf("MemoryBytes = %d", got)
	}
}

func TestBinaryFlip(t *testing.T) {
	b := NewBinary(70)
	b.Flip(0)
	b.Flip(69)
	if b.Bit(0) != 1 || b.Bit(69) != 1 {
		t.Fatal("flip did not set bits")
	}
	b.Flip(69)
	if b.Bit(69) != 0 {
		t.Fatal("double flip did not clear")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected out-of-range panic")
		}
	}()
	b.Flip(70)
}

func TestBinaryWordsRoundTrip(t *testing.T) {
	rng := NewRNG(4)
	for _, d := range []int{1, 63, 64, 65, 500} {
		b := RandomBinary(d, rng)
		c, err := BinaryFromWords(d, b.Words())
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !c.Equal(b) {
			t.Fatalf("d=%d: round trip changed vector", d)
		}
	}
	if _, err := BinaryFromWords(0, nil); err == nil {
		t.Fatal("expected dimension error")
	}
	if _, err := BinaryFromWords(64, make([]uint64, 2)); err == nil {
		t.Fatal("expected word count error")
	}
	if _, err := BinaryFromWords(10, []uint64{1 << 12}); err == nil {
		t.Fatal("expected tail bit error")
	}
}
