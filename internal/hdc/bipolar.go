package hdc

import (
	"fmt"
	"math"
)

// Bipolar is a hypervector with components in {-1, +1}, the representation
// used by GraphHD in all paper experiments (d = 10,000). The zero value is
// not useful; construct vectors with NewBipolar, RandomBipolar or the
// operations below.
type Bipolar struct {
	comps []int8
}

// NewBipolar returns an all-(+1) bipolar hypervector of dimension d.
func NewBipolar(d int) *Bipolar {
	if d <= 0 {
		panic("hdc: non-positive dimension")
	}
	c := make([]int8, d)
	for i := range c {
		c[i] = 1
	}
	return &Bipolar{comps: c}
}

// RandomBipolar draws a uniform random bipolar hypervector of dimension d
// from rng. Components are i.i.d. with P(+1) = P(-1) = 1/2, which makes
// independently drawn hypervectors quasi-orthogonal in high dimension.
func RandomBipolar(d int, rng *RNG) *Bipolar {
	if d <= 0 {
		panic("hdc: non-positive dimension")
	}
	c := make([]int8, d)
	i := 0
	for i+64 <= d {
		bits := rng.Uint64()
		for b := 0; b < 64; b++ {
			if bits&(1<<uint(b)) != 0 {
				c[i+b] = 1
			} else {
				c[i+b] = -1
			}
		}
		i += 64
	}
	if i < d {
		bits := rng.Uint64()
		for b := 0; i < d; i, b = i+1, b+1 {
			if bits&(1<<uint(b)) != 0 {
				c[i] = 1
			} else {
				c[i] = -1
			}
		}
	}
	return &Bipolar{comps: c}
}

// FromComponents builds a bipolar hypervector from an explicit component
// slice. Every component must be -1 or +1; the slice is copied.
func FromComponents(comps []int8) (*Bipolar, error) {
	if len(comps) == 0 {
		return nil, fmt.Errorf("hdc: empty component slice")
	}
	c := make([]int8, len(comps))
	for i, v := range comps {
		if v != 1 && v != -1 {
			return nil, fmt.Errorf("hdc: component %d is %d, want -1 or +1", i, v)
		}
		c[i] = v
	}
	return &Bipolar{comps: c}, nil
}

// Dim returns the dimensionality of the hypervector.
func (v *Bipolar) Dim() int { return len(v.comps) }

// At returns the i-th component (-1 or +1).
func (v *Bipolar) At(i int) int8 { return v.comps[i] }

// Clone returns an independent copy of v.
func (v *Bipolar) Clone() *Bipolar {
	c := make([]int8, len(v.comps))
	copy(c, v.comps)
	return &Bipolar{comps: c}
}

// Equal reports whether v and w have identical dimension and components.
func (v *Bipolar) Equal(w *Bipolar) bool {
	if len(v.comps) != len(w.comps) {
		return false
	}
	for i, c := range v.comps {
		if w.comps[i] != c {
			return false
		}
	}
	return true
}

// Bind returns the element-wise product v ⊙ w, the HDC binding operation.
// Binding two bipolar hypervectors yields a third vector that is
// quasi-orthogonal to both operands, and binding is self-inverse:
// Bind(Bind(v, w), w) == v.
func (v *Bipolar) Bind(w *Bipolar) *Bipolar {
	mustSameDim(v.Dim(), w.Dim())
	c := make([]int8, len(v.comps))
	for i := range c {
		c[i] = v.comps[i] * w.comps[i]
	}
	return &Bipolar{comps: c}
}

// Permute returns v cyclically shifted right by k positions, the HDC
// permutation operation. Negative k shifts left; Permute(k) followed by
// Permute(-k) is the identity.
func (v *Bipolar) Permute(k int) *Bipolar {
	d := len(v.comps)
	k = ((k % d) + d) % d
	c := make([]int8, d)
	copy(c[k:], v.comps[:d-k])
	copy(c[:k], v.comps[d-k:])
	return &Bipolar{comps: c}
}

// Dot returns the integer dot product <v, w>.
func (v *Bipolar) Dot(w *Bipolar) int {
	mustSameDim(v.Dim(), w.Dim())
	s := 0
	for i := range v.comps {
		s += int(v.comps[i]) * int(w.comps[i])
	}
	return s
}

// Cosine returns the cosine similarity between v and w, which for bipolar
// vectors equals Dot(v, w) / d and lies in [-1, 1].
func (v *Bipolar) Cosine(w *Bipolar) float64 {
	return float64(v.Dot(w)) / float64(v.Dim())
}

// Hamming returns the number of positions where v and w differ.
func (v *Bipolar) Hamming(w *Bipolar) int {
	mustSameDim(v.Dim(), w.Dim())
	h := 0
	for i := range v.comps {
		if v.comps[i] != w.comps[i] {
			h++
		}
	}
	return h
}

// NormalizedHamming returns Hamming(v, w) / d in [0, 1].
func (v *Bipolar) NormalizedHamming(w *Bipolar) float64 {
	return float64(v.Hamming(w)) / float64(v.Dim())
}

// PackBinary converts v to the bit-packed binary representation, mapping
// +1 to bit 1 and -1 to bit 0.
func (v *Bipolar) PackBinary() *Binary {
	b := NewBinary(v.Dim())
	for i, c := range v.comps {
		if c == 1 {
			b.words[i>>6] |= 1 << uint(i&63)
		}
	}
	return b
}

// String renders a short diagnostic form, e.g. "Bipolar(d=10000, +-+...)".
func (v *Bipolar) String() string {
	n := len(v.comps)
	show := n
	if show > 8 {
		show = 8
	}
	buf := make([]byte, 0, show+24)
	for _, c := range v.comps[:show] {
		if c == 1 {
			buf = append(buf, '+')
		} else {
			buf = append(buf, '-')
		}
	}
	suffix := ""
	if n > show {
		suffix = "..."
	}
	return fmt.Sprintf("Bipolar(d=%d, %s%s)", n, buf, suffix)
}

// Accumulator is an integer-valued running bundle of bipolar hypervectors.
// Bundling in HDC is element-wise majority voting; keeping the raw vote
// counts (rather than the signed result) lets callers add and remove votes
// incrementally, which GraphHD's retraining extension relies on.
type Accumulator struct {
	sums []int32
	n    int
}

// NewAccumulator returns an empty accumulator of dimension d.
func NewAccumulator(d int) *Accumulator {
	if d <= 0 {
		panic("hdc: non-positive dimension")
	}
	return &Accumulator{sums: make([]int32, d)}
}

// Dim returns the dimensionality of the accumulator.
func (a *Accumulator) Dim() int { return len(a.sums) }

// Count returns the number of (signed) votes added so far. Subtracting a
// vector decrements the count.
func (a *Accumulator) Count() int { return a.n }

// Add bundles v into the accumulator.
func (a *Accumulator) Add(v *Bipolar) {
	mustSameDim(a.Dim(), v.Dim())
	for i, c := range v.comps {
		a.sums[i] += int32(c)
	}
	a.n++
}

// AddWeighted bundles v into the accumulator with integer weight w.
// Negative weights subtract influence, which implements the
// "C_wrong -= Enc(x)" step of perceptron-style HDC retraining.
func (a *Accumulator) AddWeighted(v *Bipolar, w int) {
	mustSameDim(a.Dim(), v.Dim())
	for i, c := range v.comps {
		a.sums[i] += int32(c) * int32(w)
	}
	a.n += w
}

// Sub removes one vote of v from the accumulator.
func (a *Accumulator) Sub(v *Bipolar) { a.AddWeighted(v, -1) }

// Sum returns the raw vote total at component i.
func (a *Accumulator) Sum(i int) int32 { return a.sums[i] }

// Reset clears all votes.
func (a *Accumulator) Reset() {
	for i := range a.sums {
		a.sums[i] = 0
	}
	a.n = 0
}

// Clone returns an independent copy of the accumulator.
func (a *Accumulator) Clone() *Accumulator {
	s := make([]int32, len(a.sums))
	copy(s, a.sums)
	return &Accumulator{sums: s, n: a.n}
}

// Sign collapses the accumulator to a bipolar hypervector by majority
// voting: positive sums map to +1, negative to -1, and exact ties take the
// corresponding component of tie. Passing a fixed random tie-break vector
// keeps bundling deterministic without biasing tied components toward +1.
func (a *Accumulator) Sign(tie *Bipolar) *Bipolar {
	mustSameDim(a.Dim(), tie.Dim())
	c := make([]int8, len(a.sums))
	for i, s := range a.sums {
		switch {
		case s > 0:
			c[i] = 1
		case s < 0:
			c[i] = -1
		default:
			c[i] = tie.comps[i]
		}
	}
	return &Bipolar{comps: c}
}

// CosineToSums returns the cosine similarity between bipolar v and the raw
// (un-signed) accumulator sums. Using the integer sums directly, rather
// than the majority-voted sign vector, is the standard "non-binarized
// class vector" inference variant; it is what the associative memory uses
// when configured for integer class vectors.
func (a *Accumulator) CosineToSums(v *Bipolar) float64 {
	mustSameDim(a.Dim(), v.Dim())
	var dot, norm float64
	for i, s := range a.sums {
		fs := float64(s)
		dot += fs * float64(v.comps[i])
		norm += fs * fs
	}
	if norm == 0 {
		return 0
	}
	return dot / (math.Sqrt(norm) * math.Sqrt(float64(v.Dim())))
}

// Bundle majority-votes the given hypervectors into a single bipolar
// hypervector, breaking component ties with tie. It is a convenience
// wrapper over Accumulator for one-shot bundling.
func Bundle(tie *Bipolar, vs ...*Bipolar) *Bipolar {
	if len(vs) == 0 {
		panic("hdc: Bundle of no vectors")
	}
	acc := NewAccumulator(vs[0].Dim())
	for _, v := range vs {
		acc.Add(v)
	}
	return acc.Sign(tie)
}

func mustSameDim(a, b int) {
	if a != b {
		panic(fmt.Sprintf("hdc: dimension mismatch %d vs %d", a, b))
	}
}

// Sums returns a copy of the raw vote totals.
func (a *Accumulator) Sums() []int32 {
	out := make([]int32, len(a.sums))
	copy(out, a.sums)
	return out
}

// LoadSums replaces the accumulator state with the given vote totals and
// count; used when deserializing a trained model. The slice is copied.
func (a *Accumulator) LoadSums(sums []int32, count int) error {
	if len(sums) != len(a.sums) {
		return fmt.Errorf("hdc: loading %d sums into dimension-%d accumulator", len(sums), len(a.sums))
	}
	copy(a.sums, sums)
	a.n = count
	return nil
}
