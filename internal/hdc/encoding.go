package hdc

import (
	"fmt"
)

// This file implements the generic HDC encoding toolkit the paper
// describes in Section III-A: record-based encoding (bind key and value
// hypervectors, bundle the pairs), level hypervectors for scalar values
// (nearby levels are similar, distant levels quasi-orthogonal), and
// permutation-based sequence encoding. GraphHD itself only needs the
// graph encoder in internal/core, but a credible HDC library exposes the
// standard encodings, and the examples use them to build richer inputs.

// LevelMemory maps discrete scalar levels 0..levels-1 to hypervectors
// with linearly decaying similarity: level 0 and level levels-1 are
// quasi-orthogonal, adjacent levels nearly identical. Implemented with
// the standard interpolation scheme — start from a random vector and flip
// a fresh disjoint slice of components at each step.
type LevelMemory struct {
	dim  int
	vecs []*Bipolar
}

// NewLevelMemory builds a level memory of the given dimension and level
// count, seeded deterministically.
func NewLevelMemory(dim, levels int, seed uint64) (*LevelMemory, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("hdc: non-positive dimension %d", dim)
	}
	if levels < 2 {
		return nil, fmt.Errorf("hdc: need at least 2 levels, got %d", levels)
	}
	rng := NewRNG(seed)
	base := RandomBipolar(dim, rng)
	// Shuffle component indices once; level i flips the first i/levels
	// fraction of them, so flipped sets are nested and similarity decays
	// linearly with level distance.
	order := rng.Perm(dim)
	m := &LevelMemory{dim: dim, vecs: make([]*Bipolar, levels)}
	for l := 0; l < levels; l++ {
		v := base.Clone()
		flip := l * dim / (2 * (levels - 1)) // flip up to d/2 at the top level
		for _, idx := range order[:flip] {
			v.comps[idx] = -v.comps[idx]
		}
		m.vecs[l] = v
	}
	return m, nil
}

// Levels returns the number of levels.
func (m *LevelMemory) Levels() int { return len(m.vecs) }

// Dim returns the dimensionality.
func (m *LevelMemory) Dim() int { return m.dim }

// Vector returns the hypervector for level l.
func (m *LevelMemory) Vector(l int) *Bipolar {
	if l < 0 || l >= len(m.vecs) {
		panic(fmt.Sprintf("hdc: level %d out of range [0,%d)", l, len(m.vecs)))
	}
	return m.vecs[l]
}

// Quantize maps a value in [lo, hi] to the nearest level's hypervector.
// Values outside the range clamp to the end levels.
func (m *LevelMemory) Quantize(v, lo, hi float64) *Bipolar {
	if hi <= lo {
		panic("hdc: empty quantization range")
	}
	f := (v - lo) / (hi - lo)
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	l := int(f*float64(len(m.vecs)-1) + 0.5)
	return m.vecs[l]
}

// RecordEncoder implements record-based encoding: a sample with fields
// (K_i, V_i) encodes to [ K_1 ⊙ V_1 + K_2 ⊙ V_2 + ... ], binding each
// field's key hypervector to its value hypervector and bundling the pairs
// (the equation in Section III-A of the paper).
type RecordEncoder struct {
	dim  int
	keys *ItemMemory
	tie  *Bipolar
}

// NewRecordEncoder returns a record encoder of the given dimension,
// seeded deterministically. Key hypervectors are generated on demand: key
// id i always maps to the same random hypervector.
func NewRecordEncoder(dim int, seed uint64) (*RecordEncoder, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("hdc: non-positive dimension %d", dim)
	}
	rng := NewRNG(seed)
	keySeed := rng.Uint64()
	return &RecordEncoder{
		dim:  dim,
		keys: NewItemMemory(dim, keySeed),
		tie:  RandomBipolar(dim, rng),
	}, nil
}

// Dim returns the dimensionality.
func (e *RecordEncoder) Dim() int { return e.dim }

// Key returns the basis hypervector of field i.
func (e *RecordEncoder) Key(i int) *Bipolar { return e.keys.Vector(i) }

// Encode bundles the key-value bindings of one record. values[i] is bound
// to field key i; nil entries are skipped.
func (e *RecordEncoder) Encode(values []*Bipolar) (*Bipolar, error) {
	acc := NewAccumulator(e.dim)
	n := 0
	for i, v := range values {
		if v == nil {
			continue
		}
		if v.Dim() != e.dim {
			return nil, fmt.Errorf("hdc: field %d has dimension %d, want %d", i, v.Dim(), e.dim)
		}
		acc.Add(e.keys.Vector(i).Bind(v))
		n++
	}
	if n == 0 {
		return nil, fmt.Errorf("hdc: empty record")
	}
	return acc.Sign(e.tie), nil
}

// Field recovers the approximate value hypervector stored under field i:
// binding the record with the key unbinds the value (plus bundling noise).
// The caller typically cleans the result against an item memory.
func (e *RecordEncoder) Field(record *Bipolar, i int) *Bipolar {
	return record.Bind(e.keys.Vector(i))
}

// SequenceEncoder encodes ordered sequences of symbols with the standard
// permute-and-bind n-gram scheme: the symbol at offset j within an n-gram
// is permuted j times, the n-gram is the bind of its permuted symbols, and
// a sequence is the bundle of its n-grams.
type SequenceEncoder struct {
	dim     int
	n       int
	symbols *ItemMemory
	tie     *Bipolar
}

// NewSequenceEncoder returns an n-gram sequence encoder.
func NewSequenceEncoder(dim, n int, seed uint64) (*SequenceEncoder, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("hdc: non-positive dimension %d", dim)
	}
	if n < 1 {
		return nil, fmt.Errorf("hdc: n-gram size %d < 1", n)
	}
	rng := NewRNG(seed)
	symSeed := rng.Uint64()
	return &SequenceEncoder{
		dim:     dim,
		n:       n,
		symbols: NewItemMemory(dim, symSeed),
		tie:     RandomBipolar(dim, rng),
	}, nil
}

// Dim returns the dimensionality; N returns the n-gram size.
func (e *SequenceEncoder) Dim() int { return e.dim }

// N returns the n-gram size.
func (e *SequenceEncoder) N() int { return e.n }

// Symbol returns the basis hypervector of symbol id s.
func (e *SequenceEncoder) Symbol(s int) *Bipolar { return e.symbols.Vector(s) }

// Encode bundles all n-grams of the symbol sequence. Sequences shorter
// than n are an error.
func (e *SequenceEncoder) Encode(seq []int) (*Bipolar, error) {
	if len(seq) < e.n {
		return nil, fmt.Errorf("hdc: sequence length %d < n-gram size %d", len(seq), e.n)
	}
	acc := NewAccumulator(e.dim)
	for start := 0; start+e.n <= len(seq); start++ {
		gram := e.symbols.Vector(seq[start]).Permute(0)
		for j := 1; j < e.n; j++ {
			gram = gram.Bind(e.symbols.Vector(seq[start+j]).Permute(j))
		}
		acc.Add(gram)
	}
	return acc.Sign(e.tie), nil
}
