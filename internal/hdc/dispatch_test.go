package hdc

import (
	"strings"
	"testing"
	"unsafe"
)

// forEachKernelTier runs fn as a subtest under every kernel tier this
// CPU supports, restoring the previously active tier afterwards. It is
// the backbone of the per-tier equivalence matrix: on an AVX-512 machine
// every wrapped test runs three times, each tier checked against the
// same scalar references.
func forEachKernelTier(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	prev := ActiveKernel()
	defer func() {
		if err := SetKernel(prev); err != nil {
			t.Fatalf("restoring kernel tier %s: %v", prev, err)
		}
	}()
	for _, tier := range SupportedKernels() {
		if err := SetKernel(tier); err != nil {
			t.Fatalf("SetKernel(%s): %v", tier, err)
		}
		t.Run(tier.String(), fn)
	}
}

// TestCsaArgsABIOffsets pins the byte offsets kernels_amd64.s hard-codes.
// If this test fails, the assembly is reading the wrong fields.
func TestCsaArgsABIOffsets(t *testing.T) {
	var a csaArgs
	offsets := map[string]uintptr{
		"x":          unsafe.Offsetof(a.x),
		"y":          unsafe.Offsetof(a.y),
		"inv":        unsafe.Offsetof(a.inv),
		"ones":       unsafe.Offsetof(a.ones),
		"twos":       unsafe.Offsetof(a.twos),
		"fours":      unsafe.Offsetof(a.fours),
		"eights":     unsafe.Offsetof(a.eights),
		"sixteens":   unsafe.Offsetof(a.sixteens),
		"thirtytwos": unsafe.Offsetof(a.thirtytwos),
		"l0":         unsafe.Offsetof(a.l0),
		"l1":         unsafe.Offsetof(a.l1),
		"l2":         unsafe.Offsetof(a.l2),
		"l3":         unsafe.Offsetof(a.l3),
		"h0":         unsafe.Offsetof(a.h0),
		"h1":         unsafe.Offsetof(a.h1),
		"h2":         unsafe.Offsetof(a.h2),
		"h3":         unsafe.Offsetof(a.h3),
		"n":          unsafe.Offsetof(a.n),
	}
	want := map[string]uintptr{
		"x": 0, "y": 64, "inv": 128,
		"ones": 192, "twos": 200, "fours": 208, "eights": 216,
		"sixteens": 224, "thirtytwos": 232,
		"l0": 240, "l1": 248, "l2": 256, "l3": 264,
		"h0": 272, "h1": 280, "h2": 288, "h3": 296,
		"n": 304,
	}
	for name, w := range want {
		if offsets[name] != w {
			t.Errorf("csaArgs.%s at offset %d, assembly expects %d", name, offsets[name], w)
		}
	}
}

func TestKernelTierString(t *testing.T) {
	cases := map[KernelTier]string{
		KernelPortable: "portable",
		KernelAVX2:     "avx2",
		KernelAVX512:   "avx512",
	}
	for tier, want := range cases {
		if got := tier.String(); got != want {
			t.Errorf("KernelTier(%d).String() = %q, want %q", tier, got, want)
		}
	}
	if got := KernelTier(99).String(); got != "kernel(99)" {
		t.Errorf("unknown tier String() = %q", got)
	}
}

func TestParseKernelTier(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want KernelTier
		ok   bool
	}{
		{"portable", KernelPortable, true},
		{"avx2", KernelAVX2, true},
		{"avx512", KernelAVX512, true},
		{" AVX2 ", KernelAVX2, true},
		{"AVX512", KernelAVX512, true},
		{"", KernelPortable, false},
		{"sse", KernelPortable, false},
	} {
		got, err := ParseKernelTier(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseKernelTier(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseKernelTier(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestClampKernelTier verifies degrade-don't-crash: a requested tier the
// CPU lacks resolves to the best supported one at or below it.
func TestClampKernelTier(t *testing.T) {
	portableOnly := []*kernelTable{portableKernels}
	if got := clampKernelTier(portableOnly, KernelAVX512); got.tier != KernelPortable {
		t.Errorf("avx512 on portable-only CPU clamped to %v", got.tier)
	}
	withAVX2 := []*kernelTable{portableKernels, {tier: KernelAVX2, lanes: 4}}
	if got := clampKernelTier(withAVX2, KernelAVX512); got.tier != KernelAVX2 {
		t.Errorf("avx512 on avx2-only CPU clamped to %v", got.tier)
	}
	if got := clampKernelTier(withAVX2, KernelPortable); got.tier != KernelPortable {
		t.Errorf("portable request resolved to %v", got.tier)
	}
}

func TestSupportedKernelsAndStatus(t *testing.T) {
	sup := SupportedKernels()
	if len(sup) == 0 || sup[0] != KernelPortable {
		t.Fatalf("SupportedKernels() = %v, want portable first", sup)
	}
	for i := 1; i < len(sup); i++ {
		if sup[i] <= sup[i-1] {
			t.Fatalf("SupportedKernels() not ascending: %v", sup)
		}
	}
	st := Kernels()
	if st.Active != ActiveKernel() {
		t.Errorf("status Active %v vs ActiveKernel %v", st.Active, ActiveKernel())
	}
	found := false
	for _, tier := range st.Supported {
		if tier == st.Active {
			found = true
		}
	}
	if !found {
		t.Errorf("active tier %v not in supported set %v", st.Active, st.Supported)
	}
	// CPU feature names, when present, are a comma list of avx* tokens.
	if st.CPUFeatures != "" {
		for _, feat := range strings.Split(st.CPUFeatures, ",") {
			if !strings.HasPrefix(feat, "avx") {
				t.Errorf("unexpected CPU feature token %q in %q", feat, st.CPUFeatures)
			}
		}
	}
}

// TestSetKernelUnsupported checks that asking for a tier above the best
// supported one fails without changing the active tier. Skipped on
// machines that support everything.
func TestSetKernelUnsupported(t *testing.T) {
	sup := SupportedKernels()
	if sup[len(sup)-1] >= KernelAVX512 {
		t.Skip("all tiers supported on this CPU")
	}
	prev := ActiveKernel()
	if err := SetKernel(KernelAVX512); err == nil {
		t.Fatal("SetKernel(avx512) succeeded on a CPU without AVX-512")
	}
	if ActiveKernel() != prev {
		t.Fatalf("failed SetKernel changed active tier to %v", ActiveKernel())
	}
}

// TestKernelDifferentialMatrix is the cross-tier equivalence matrix the
// tentpole promises: for every supported vector tier, every batch entry
// point must be bit-identical to the portable oracle on the same inputs —
// across odd dimensions, tail-mask words, lane-misaligned word counts,
// and weights crossing the weight-16 overflow boundary.
func TestKernelDifferentialMatrix(t *testing.T) {
	prev := ActiveKernel()
	defer SetKernel(prev)
	dims := []int{1, 3, 63, 64, 65, 127, 128, 129, 191, 192, 255, 256, 257, 320, 448, 449, 511, 512, 513, 1000}
	type result struct {
		counts []int32
		sign   *Binary
		smallX *Binary
		smallP *Binary
		hams   []int
	}
	run := func(d int) result {
		rng := NewRNG(uint64(d) * 7919)
		c := NewBitCounter(d)
		// 24 pairs: three full blocks through the CSA front end; with the
		// 16 raw vectors below the total crosses the weight-16 overflow
		// (s16) boundary in many components.
		pairs := randomPairs(d, 24, rng)
		c.AddXorPairs(pairs)
		vecs := make([][]uint64, 16)
		for i := range vecs {
			vecs[i] = RandomBinary(d, rng).Words()
		}
		c.AddWordsBlock(vecs)
		var plan OperandPlan
		plan.Reset(d)
		for i := 0; i < 6; i++ {
			plan.AppendXnor(RandomBinary(d, rng), RandomBinary(d, rng))
		}
		idxs := []int32{0, 1, 2, 3, 4, 5, 0, 1, 2, 5, 5, 5, 3}
		c.AddPlanned(&plan, idxs)
		counts := c.CountsInto(make([]int32, d))
		tie := RandomBinary(d, rng)
		sign := c.SignBinary(tie)
		// Small-sign kernels at n values straddling odd/even and the
		// weight-16/32 plane spills.
		sc := NewBitCounter(d)
		smallX := sc.SignXorPairsSmallInto(randomPairs(d, 33, rng), tie, NewBinary(d))
		smallP := sc.SignPlannedSmallInto(&plan, append(idxs, idxs...), tie, NewBinary(d))
		// Hamming over packed vectors.
		q := RandomBinary(d, rng)
		classes := make([]*Binary, 4)
		for i := range classes {
			classes[i] = RandomBinary(d, rng)
		}
		pm, err := NewPackedMemory(classes)
		if err != nil {
			panic(err)
		}
		return result{counts, sign, smallX, smallP, pm.Hammings(q)}
	}
	for _, d := range dims {
		if err := SetKernel(KernelPortable); err != nil {
			t.Fatal(err)
		}
		want := run(d)
		for _, tier := range SupportedKernels() {
			if tier == KernelPortable {
				continue
			}
			if err := SetKernel(tier); err != nil {
				t.Fatal(err)
			}
			got := run(d)
			for i := range want.counts {
				if got.counts[i] != want.counts[i] {
					t.Fatalf("d=%d tier=%s: count[%d] = %d, portable %d", d, tier, i, got.counts[i], want.counts[i])
				}
			}
			if !got.sign.Equal(want.sign) {
				t.Fatalf("d=%d tier=%s: SignBinary differs from portable", d, tier)
			}
			if !got.smallX.Equal(want.smallX) {
				t.Fatalf("d=%d tier=%s: SignXorPairsSmallInto differs from portable", d, tier)
			}
			if !got.smallP.Equal(want.smallP) {
				t.Fatalf("d=%d tier=%s: SignPlannedSmallInto differs from portable", d, tier)
			}
			for i := range want.hams {
				if got.hams[i] != want.hams[i] {
					t.Fatalf("d=%d tier=%s: Hamming[%d] = %d, portable %d", d, tier, i, got.hams[i], want.hams[i])
				}
			}
		}
	}
}

// TestParkedCSAObservers pins the flush pre-condition audit: every
// observer must drain carry-save weight parked by a partially completed
// blocked add before reading, whichever kernel tier parked it. The planes
// are artificially left parked by calling the block cascade directly
// (the public entry points drain on exit; a vectorized drain that misses
// the parked check would observe stale lane state).
func TestParkedCSAObservers(t *testing.T) {
	forEachKernelTier(t, func(t *testing.T) {
		const d = 300
		rng := NewRNG(77)
		pairs := randomPairs(d, 8, rng)
		mk := func() *BitCounter {
			c := NewBitCounter(d)
			kern := loadKernels()
			var aws, bws [8][]uint64
			var vs [8]uint64
			for k := 0; k < 8; k++ {
				aws[k], bws[k], vs[k] = pairs[k].A.words, pairs[k].B.words, invMask(pairs[k].Invert)
			}
			c.n += 8
			c.addXorBlock8(kern, &aws, &bws, &vs)
			if !c.csaParked {
				t.Fatal("addXorBlock8 did not park the carry-save planes")
			}
			return c
		}
		ref := NewBitCounter(d)
		for _, p := range pairs {
			ref.AddXor(p.A, p.B, p.Invert)
		}
		refCounts := ref.CountsInto(make([]int32, d))

		c := mk()
		for i := 0; i < d; i += 37 {
			if got := c.CountAt(i); got != int(refCounts[i]) {
				t.Fatalf("CountAt(%d) = %d with parked planes, want %d", i, got, refCounts[i])
			}
		}
		c = mk()
		if got, want := c.Popcount(), ref.Popcount(); got != want {
			t.Fatalf("Popcount = %d with parked planes, want %d", got, want)
		}
		c = mk()
		got := c.CountsInto(make([]int32, d))
		for i := range refCounts {
			if got[i] != refCounts[i] {
				t.Fatalf("CountsInto[%d] = %d with parked planes, want %d", i, got[i], refCounts[i])
			}
		}
		c = mk()
		tie := RandomBinary(d, rng)
		if !c.SignBinary(tie).Equal(ref.SignBinary(tie)) {
			t.Fatal("SignBinary differs with parked planes")
		}
		// Reset with parked planes must clear them.
		c = mk()
		c.Reset()
		probe := randomPairs(d, 9, rng)
		c.AddXorPairs(probe)
		ref2 := NewBitCounter(d)
		ref2.AddXorPairs(probe)
		assertSameCounts(t, "post-reset", c, ref2)
	})
}

// BenchmarkAddXorPairs measures the CSA front end per kernel tier on the
// serving shape (d=10000, 64 edges).
func BenchmarkAddXorPairs(b *testing.B) {
	rng := NewRNG(1)
	const d, edges = 10000, 64
	pairs := make([]XorPair, edges)
	for i := range pairs {
		pairs[i] = XorPair{A: RandomBinary(d, rng), B: RandomBinary(d, rng), Invert: true}
	}
	prev := ActiveKernel()
	defer SetKernel(prev)
	for _, tier := range SupportedKernels() {
		b.Run(tier.String(), func(b *testing.B) {
			if err := SetKernel(tier); err != nil {
				b.Fatal(err)
			}
			c := NewBitCounter(d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.Reset()
				c.AddXorPairs(pairs)
			}
		})
	}
}

// BenchmarkSignPlannedSmall measures the full small-sign path (cascade +
// plane compare) per kernel tier on the batch-encoder shape.
func BenchmarkSignPlannedSmall(b *testing.B) {
	rng := NewRNG(2)
	const d, edges = 10000, 48
	var plan OperandPlan
	plan.Reset(d)
	idxs := make([]int32, edges)
	for i := range idxs {
		idxs[i] = int32(plan.AppendXnor(RandomBinary(d, rng), RandomBinary(d, rng)))
	}
	tie := RandomBinary(d, rng)
	dst := NewBinary(d)
	prev := ActiveKernel()
	defer SetKernel(prev)
	for _, tier := range SupportedKernels() {
		b.Run(tier.String(), func(b *testing.B) {
			if err := SetKernel(tier); err != nil {
				b.Fatal(err)
			}
			c := NewBitCounter(d)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				c.SignPlannedSmallInto(&plan, idxs, tie, dst)
			}
		})
	}
}

// BenchmarkHammingPacked measures the packed query loop per kernel tier
// on the serving shape (d=10000, 8 classes).
func BenchmarkHammingPacked(b *testing.B) {
	rng := NewRNG(3)
	const d, k = 10000, 8
	classes := make([]*Binary, k)
	for i := range classes {
		classes[i] = RandomBinary(d, rng)
	}
	pm, err := NewPackedMemory(classes)
	if err != nil {
		b.Fatal(err)
	}
	q := RandomBinary(d, rng)
	prev := ActiveKernel()
	defer SetKernel(prev)
	for _, tier := range SupportedKernels() {
		b.Run(tier.String(), func(b *testing.B) {
			if err := SetKernel(tier); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pm.Classify(q)
			}
		})
	}
}
