//go:build amd64

package hdc

// Assembly kernel entry points (kernels_amd64.s). Each processes words
// [0, args.n) of its streams — args.n a multiple of the tier's lane
// width — and leaves every remaining word, including the masked tail, to
// the portable loops. See DESIGN.md §2b for the kernel contracts.

//go:noescape
func csaBlockAVX2(a *csaArgs)

//go:noescape
func csaXorBlockAVX2(a *csaArgs)

//go:noescape
func csaSmallBlockAVX2(a *csaArgs)

//go:noescape
func csaXorSmallBlockAVX2(a *csaArgs)

//go:noescape
func signPlanesAVX2(a *csaArgs)

//go:noescape
func hammingAVX2(a, b *uint64, n int64) int64

//go:noescape
func csaBlockAVX512(a *csaArgs)

//go:noescape
func csaXorBlockAVX512(a *csaArgs)

//go:noescape
func csaSmallBlockAVX512(a *csaArgs)

//go:noescape
func csaXorSmallBlockAVX512(a *csaArgs)

//go:noescape
func signPlanesAVX512(a *csaArgs)

//go:noescape
func hammingAVX512(a, b *uint64, n int64) int64

var avx2Kernels = &kernelTable{
	tier:             KernelAVX2,
	lanes:            4,
	csaBlock:         csaBlockAVX2,
	csaXorBlock:      csaXorBlockAVX2,
	csaSmallBlock:    csaSmallBlockAVX2,
	csaXorSmallBlock: csaXorSmallBlockAVX2,
	signPlanes:       signPlanesAVX2,
	hamming:          hammingAVX2,
}

var avx512Kernels = &kernelTable{
	tier:             KernelAVX512,
	lanes:            8,
	csaBlock:         csaBlockAVX512,
	csaXorBlock:      csaXorBlockAVX512,
	csaSmallBlock:    csaSmallBlockAVX512,
	csaXorSmallBlock: csaXorSmallBlockAVX512,
	signPlanes:       signPlanesAVX512,
	hamming:          hammingAVX512,
}

// supportedKernelTables returns the tiers this process can run,
// ascending. Portable is always present; the vector tiers appear only
// when CPUID (and the OS via XCR0) enables their instruction sets.
func supportedKernelTables() []*kernelTable {
	tables := []*kernelTable{portableKernels}
	if hasAVX2Kernels() {
		tables = append(tables, avx2Kernels)
	}
	if hasAVX512Kernels() {
		tables = append(tables, avx512Kernels)
	}
	return tables
}
