package hdc

import (
	"testing"
)

// randomPairs draws n operand pairs with a mix of XOR and XNOR binds.
func randomPairs(d, n int, rng *RNG) []XorPair {
	pairs := make([]XorPair, n)
	for i := range pairs {
		pairs[i] = XorPair{A: RandomBinary(d, rng), B: RandomBinary(d, rng), Invert: rng.Intn(2) == 0}
	}
	return pairs
}

// assertSameCounts compares two counters component by component via
// CountsInto, the non-aliasing accessor.
func assertSameCounts(t *testing.T, label string, got, want *BitCounter) {
	t.Helper()
	if got.Count() != want.Count() {
		t.Fatalf("%s: count %d, want %d", label, got.Count(), want.Count())
	}
	d := want.Dim()
	gc := got.CountsInto(make([]int32, d))
	wc := want.CountsInto(make([]int32, d))
	for i := range wc {
		if gc[i] != wc[i] {
			t.Fatalf("%s: component %d: count %d, want %d", label, i, gc[i], wc[i])
		}
	}
}

// TestAddXorPairsMatchesScalar pins the tentpole guarantee: the blocked
// carry-save path is bit-for-bit equivalent to per-edge AddXor, across
// block-remainder boundaries, mixed invert flags, tail dimensions — and,
// via forEachKernelTier, every vector kernel tier this CPU supports.
func TestAddXorPairsMatchesScalar(t *testing.T) {
	forEachKernelTier(t, testAddXorPairsMatchesScalar)
}

func testAddXorPairsMatchesScalar(t *testing.T) {
	for _, d := range []int{1, 63, 64, 65, 100, 130, 517, 1024} {
		for n := 0; n <= 40; n++ {
			rng := NewRNG(uint64(d)<<16 | uint64(n))
			pairs := randomPairs(d, n, rng)
			blocked := NewBitCounter(d)
			blocked.AddXorPairs(pairs)
			scalar := NewBitCounter(d)
			for _, p := range pairs {
				scalar.AddXor(p.A, p.B, p.Invert)
			}
			assertSameCounts(t, "AddXorPairs", blocked, scalar)
			tie := RandomBinary(d, rng)
			if !blocked.SignBinary(tie).Equal(scalar.SignBinary(tie)) {
				t.Fatalf("d=%d n=%d: blocked sign differs from scalar sign", d, n)
			}
		}
	}
}

// TestAddXorPairsInterleaved mixes blocked, scalar and weighted adds on
// one counter — the shape the encoder produces — against a pure scalar
// reference.
func TestAddXorPairsInterleaved(t *testing.T) {
	const d = 200
	rng := NewRNG(99)
	got := NewBitCounter(d)
	want := NewBitCounter(d)
	for round := 0; round < 6; round++ {
		pairs := randomPairs(d, 3+round*5, rng)
		got.AddXorPairs(pairs)
		for _, p := range pairs {
			want.AddXor(p.A, p.B, p.Invert)
		}
		a, b := RandomBinary(d, rng), RandomBinary(d, rng)
		got.AddXor(a, b, true)
		want.AddXor(a, b, true)
		wgt := 1 + rng.Intn(20)
		got.AddXorWeighted(a, b, false, wgt)
		for k := 0; k < wgt; k++ {
			want.AddXor(a, b, false)
		}
	}
	assertSameCounts(t, "interleaved", got, want)
}

// TestAddWordsBlockMatchesAdd checks the raw-word batch entry against
// sequential Add, under every supported kernel tier.
func TestAddWordsBlockMatchesAdd(t *testing.T) {
	forEachKernelTier(t, testAddWordsBlockMatchesAdd)
}

func testAddWordsBlockMatchesAdd(t *testing.T) {
	for _, d := range []int{64, 100, 517} {
		for n := 0; n <= 30; n++ {
			rng := NewRNG(uint64(d)*31 + uint64(n))
			vecs := make([]*Binary, n)
			words := make([][]uint64, n)
			for i := range vecs {
				vecs[i] = RandomBinary(d, rng)
				words[i] = vecs[i].Words()
			}
			blocked := NewBitCounter(d)
			blocked.AddWordsBlock(words)
			scalar := NewBitCounter(d)
			for _, v := range vecs {
				scalar.Add(v)
			}
			assertSameCounts(t, "AddWordsBlock", blocked, scalar)
		}
	}
}

// TestAddXorWeightedMatchesRepeated covers both weighted implementations:
// the chunked nibble path (weight <= 64) and the direct int32 path.
func TestAddXorWeightedMatchesRepeated(t *testing.T) {
	const d = 130
	rng := NewRNG(7)
	for _, weight := range []int{0, 1, 2, 14, 15, 16, 30, 63, 64, 65, 100, 300} {
		for _, invert := range []bool{false, true} {
			a, b := RandomBinary(d, rng), RandomBinary(d, rng)
			got := NewBitCounter(d)
			got.AddXorWeighted(a, b, invert, weight)
			want := NewBitCounter(d)
			for k := 0; k < weight; k++ {
				want.AddXor(a, b, invert)
			}
			assertSameCounts(t, "AddXorWeighted", got, want)
		}
	}
}

// TestAddXorWeightedAfterwards ensures the direct-to-counts path composes
// with later lane adds (the two tiers are independent addends).
func TestAddXorWeightedAfterwards(t *testing.T) {
	const d = 96
	rng := NewRNG(8)
	a, b := RandomBinary(d, rng), RandomBinary(d, rng)
	x, y := RandomBinary(d, rng), RandomBinary(d, rng)
	got := NewBitCounter(d)
	got.AddXorWeighted(a, b, true, 100) // direct path
	got.AddXor(x, y, false)             // lanes on top
	got.AddXorWeighted(x, y, true, 3)   // chunked path on top
	want := NewBitCounter(d)
	for k := 0; k < 100; k++ {
		want.AddXor(a, b, true)
	}
	want.AddXor(x, y, false)
	for k := 0; k < 3; k++ {
		want.AddXor(x, y, true)
	}
	assertSameCounts(t, "weighted+lanes", got, want)
}

// TestBitCounterDifferential drives random interleavings of every
// mutating and observing operation against a naive per-bit reference
// counter — the audit the three-tier fold/flush logic never had — under
// every supported kernel tier.
func TestBitCounterDifferential(t *testing.T) {
	forEachKernelTier(t, testBitCounterDifferential)
}

func testBitCounterDifferential(t *testing.T) {
	for _, d := range []int{5, 64, 100, 130, 192} {
		for trial := 0; trial < 20; trial++ {
			rng := NewRNG(uint64(d)*1009 + uint64(trial))
			c := NewBitCounter(d)
			naive := make([]int64, d)
			naiveN := 0
			addNaive := func(bits func(i int) int, weight int) {
				for i := 0; i < d; i++ {
					naive[i] += int64(bits(i)) * int64(weight)
				}
				naiveN += weight
			}
			xorBit := func(a, b *Binary, invert bool) func(int) int {
				return func(i int) int {
					v := a.Bit(i) ^ b.Bit(i)
					if invert {
						v = 1 - v
					}
					return v
				}
			}
			for step := 0; step < 60; step++ {
				switch rng.Intn(8) {
				case 0:
					v := RandomBinary(d, rng)
					c.Add(v)
					addNaive(v.Bit, 1)
				case 1:
					a, b := RandomBinary(d, rng), RandomBinary(d, rng)
					inv := rng.Intn(2) == 0
					c.AddXor(a, b, inv)
					addNaive(xorBit(a, b, inv), 1)
				case 2:
					pairs := randomPairs(d, rng.Intn(20), rng)
					c.AddXorPairs(pairs)
					for _, p := range pairs {
						addNaive(xorBit(p.A, p.B, p.Invert), 1)
					}
				case 3:
					vecs := make([][]uint64, rng.Intn(12))
					bins := make([]*Binary, len(vecs))
					for i := range vecs {
						bins[i] = RandomBinary(d, rng)
						vecs[i] = bins[i].Words()
					}
					c.AddWordsBlock(vecs)
					for _, v := range bins {
						addNaive(v.Bit, 1)
					}
				case 4:
					a, b := RandomBinary(d, rng), RandomBinary(d, rng)
					inv := rng.Intn(2) == 0
					w := rng.Intn(90)
					c.AddXorWeighted(a, b, inv, w)
					addNaive(xorBit(a, b, inv), w)
				case 5:
					c.Reset()
					for i := range naive {
						naive[i] = 0
					}
					naiveN = 0
				case 6:
					// Observe mid-stream: flush-then-continue must not lose
					// or double-count weight.
					i := rng.Intn(d)
					if got := c.CountAt(i); int64(got) != naive[i] {
						t.Fatalf("d=%d trial=%d step=%d: CountAt(%d)=%d, want %d", d, trial, step, i, got, naive[i])
					}
				case 7:
					tie := RandomBinary(d, rng)
					sign := c.SignBinary(tie)
					tieB := tie.UnpackBipolar()
					signB := c.SignBipolar(tieB)
					for i := 0; i < d; i++ {
						twice := 2 * naive[i]
						var wantBit int
						switch {
						case twice > int64(naiveN):
							wantBit = 1
						case twice < int64(naiveN):
							wantBit = 0
						default:
							wantBit = tie.Bit(i)
						}
						if sign.Bit(i) != wantBit {
							t.Fatalf("d=%d trial=%d step=%d: SignBinary bit %d = %d, want %d (cnt=%d n=%d)",
								d, trial, step, i, sign.Bit(i), wantBit, naive[i], naiveN)
						}
						if got := int(signB.At(i)); got != 2*wantBit-1 {
							t.Fatalf("d=%d trial=%d step=%d: SignBipolar comp %d = %d, want %d",
								d, trial, step, i, got, 2*wantBit-1)
						}
					}
				}
			}
			if c.Count() != naiveN {
				t.Fatalf("d=%d trial=%d: count %d, want %d", d, trial, c.Count(), naiveN)
			}
			final := c.CountsInto(make([]int32, d))
			for i := range naive {
				if int64(final[i]) != naive[i] {
					t.Fatalf("d=%d trial=%d: final component %d = %d, want %d", d, trial, i, final[i], naive[i])
				}
			}
		}
	}
}

// TestSignOverflowBoundary pins the 2*cnt overflow fix: with counts at
// 2³⁰+1 the old int32 comparison wrapped negative and reported the
// minority sign.
func TestSignOverflowBoundary(t *testing.T) {
	const d = 64
	a := NewBinary(d)
	a.Flip(0) // bit 0 set, all others clear
	zero := NewBinary(d)
	c := NewBitCounter(d)
	// counts[0] = 2^30+1 via the direct weighted path; n = 2^30+1.
	c.AddXorWeighted(a, zero, false, 1<<30+1)
	// One all-zero vector: n = 2^30+2, counts[0] stays 2^30+1 — a strict
	// majority whose doubled count exceeds MaxInt32.
	c.AddXorWeighted(zero, zero, false, 1)
	tie := NewBinary(d)
	sign := c.SignBinaryInto(tie, NewBinary(d))
	if sign.Bit(0) != 1 {
		t.Fatal("SignBinaryInto: majority bit lost to int32 wraparound")
	}
	for i := 1; i < d; i++ {
		if sign.Bit(i) != 0 {
			t.Fatalf("SignBinaryInto: bit %d set without any votes", i)
		}
	}
	tieB := NewBipolar(d)
	signB := c.SignBipolarInto(tieB, NewBipolar(d))
	if signB.At(0) != 1 {
		t.Fatal("SignBipolarInto: majority component lost to int32 wraparound")
	}
	if signB.At(1) != -1 {
		t.Fatal("SignBipolarInto: minority component not -1")
	}
}

// TestBitCounterAddCap verifies the documented MaxAdds cap: the counter
// panics instead of silently overflowing its int32 counts.
func TestBitCounterAddCap(t *testing.T) {
	const d = 64
	a, b := NewBinary(d), NewBinary(d)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	c := NewBitCounter(d)
	c.AddXorWeighted(a, b, false, MaxAdds)
	mustPanic("Add past cap", func() { c.Add(a) })
	mustPanic("AddXor past cap", func() { c.AddXor(a, b, false) })
	mustPanic("AddXorPairs past cap", func() { c.AddXorPairs([]XorPair{{A: a, B: b}}) })
	mustPanic("AddXorWeighted past cap", func() { c.AddXorWeighted(a, b, false, 1) })
	mustPanic("negative weight", func() { NewBitCounter(d).AddXorWeighted(a, b, false, -1) })
	// At the cap exactly, observation still works.
	if got := c.Count(); got != MaxAdds {
		t.Fatalf("count %d, want %d", got, MaxAdds)
	}
}

// TestCountsInto verifies the copying accessor: the returned slice is the
// caller's, and corrupting it cannot disturb later accumulation.
func TestCountsInto(t *testing.T) {
	const d = 100
	rng := NewRNG(12)
	c := NewBitCounter(d)
	a, b := RandomBinary(d, rng), RandomBinary(d, rng)
	c.AddXor(a, b, true)
	dst := make([]int32, d)
	if got := c.CountsInto(dst); &got[0] != &dst[0] {
		t.Fatal("CountsInto did not return dst")
	}
	// Corrupt the returned slice, keep accumulating, and compare against a
	// pristine reference: the write-through must not reach the counter.
	for i := range dst {
		dst[i] = 999
	}
	c.AddXor(b, a, false)
	want := NewBitCounter(d)
	want.AddXor(a, b, true)
	want.AddXor(b, a, false)
	assertSameCounts(t, "post-corruption", c, want)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on short dst")
		}
	}()
	c.CountsInto(make([]int32, d-1))
}

// TestSignBinarySWARPathMatchesSlow forces both sign implementations on
// identical state and compares them, including exact ties and tail
// dimensions — the fast path must be indistinguishable.
func TestSignBinarySWARPathMatchesSlow(t *testing.T) {
	for _, d := range []int{64, 100, 130, 517} {
		for trial := 0; trial < 30; trial++ {
			rng := NewRNG(uint64(d)*131 + uint64(trial))
			n := rng.Intn(126) // keep n <= 127 so the SWAR path is eligible
			fast := NewBitCounter(d)
			slow := NewBitCounter(d)
			pairs := randomPairs(d, n, rng)
			fast.AddXorPairs(pairs)
			slow.AddXorPairs(pairs)
			tie := RandomBinary(d, rng)
			got := fast.SignBinary(tie) // SWAR-eligible
			slow.CountAt(0)             // force a flush: countsDirty disables SWAR
			want := slow.SignBinary(tie)
			if !got.Equal(want) {
				t.Fatalf("d=%d n=%d: SWAR sign differs from flushed sign", d, n)
			}
		}
	}
}

func BenchmarkBitCounterAddXorPairs(b *testing.B) {
	rng := NewRNG(1)
	const d, edges = 10000, 64
	pairs := make([]XorPair, edges)
	for i := range pairs {
		pairs[i] = XorPair{A: RandomBinary(d, rng), B: RandomBinary(d, rng), Invert: true}
	}
	c := NewBitCounter(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		c.AddXorPairs(pairs)
	}
}

// BenchmarkBitCounterAddXorScalar is the per-edge baseline for the same
// workload as BenchmarkBitCounterAddXorPairs.
func BenchmarkBitCounterAddXorScalar(b *testing.B) {
	rng := NewRNG(1)
	const d, edges = 10000, 64
	pairs := make([]XorPair, edges)
	for i := range pairs {
		pairs[i] = XorPair{A: RandomBinary(d, rng), B: RandomBinary(d, rng), Invert: true}
	}
	c := NewBitCounter(d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Reset()
		for _, p := range pairs {
			c.AddXor(p.A, p.B, p.Invert)
		}
	}
}
