package hdc

import (
	"math"
	"sync"
	"testing"
)

func TestItemMemoryStable(t *testing.T) {
	m := NewItemMemory(256, 1)
	v1 := m.Vector(5)
	v2 := m.Vector(5)
	if v1 != v2 {
		t.Fatal("repeated lookup returned different pointers")
	}
}

func TestItemMemoryAccessOrderIndependent(t *testing.T) {
	a := NewItemMemory(256, 9)
	b := NewItemMemory(256, 9)
	// Access in different orders; vectors must agree id-by-id.
	for _, id := range []int{7, 2, 5} {
		a.Vector(id)
	}
	for _, id := range []int{0, 5, 7, 2} {
		b.Vector(id)
	}
	for id := 0; id <= 7; id++ {
		if !a.Vector(id).Equal(b.Vector(id)) {
			t.Fatalf("vector %d differs across access orders", id)
		}
	}
}

func TestItemMemoryDistinctSymbolsQuasiOrthogonal(t *testing.T) {
	m := NewItemMemory(10000, 2)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			if c := math.Abs(m.Vector(i).Cosine(m.Vector(j))); c > 0.05 {
				t.Fatalf("|cos(V%d, V%d)| = %f, want near 0", i, j, c)
			}
		}
	}
}

func TestItemMemoryNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative id")
		}
	}()
	NewItemMemory(16, 1).Vector(-1)
}

func TestItemMemoryConcurrent(t *testing.T) {
	m := NewItemMemory(128, 3)
	var wg sync.WaitGroup
	vecs := make([]*Bipolar, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := 0; id < 64; id++ {
				v := m.Vector(id)
				_ = v
			}
		}()
	}
	wg.Wait()
	for id := range vecs {
		vecs[id] = m.Vector(id)
	}
	if m.Len() != 64 {
		t.Fatalf("len = %d, want 64", m.Len())
	}
}

func TestItemMemoryReserve(t *testing.T) {
	m := NewItemMemory(64, 4)
	m.Reserve(10)
	if m.Len() != 10 {
		t.Fatalf("len after Reserve(10) = %d", m.Len())
	}
	m.Reserve(0) // no-op
	if m.Len() != 10 {
		t.Fatal("Reserve(0) changed length")
	}
}

func TestAssociativeMemoryLearnClassify(t *testing.T) {
	const d = 10000
	rng := NewRNG(5)
	am := NewAssociativeMemory(3, d, 99, false)
	// Each class gets noisy copies of a distinct prototype.
	protos := make([]*Bipolar, 3)
	for c := range protos {
		protos[c] = RandomBipolar(d, rng)
	}
	noisy := func(p *Bipolar, flips int) *Bipolar {
		v := p.Clone()
		perm := rng.Perm(d)
		for _, i := range perm[:flips] {
			v.comps[i] = -v.comps[i]
		}
		return v
	}
	for c, p := range protos {
		for i := 0; i < 10; i++ {
			am.Learn(c, noisy(p, d/10))
		}
	}
	for c, p := range protos {
		q := noisy(p, d/5)
		if got := am.Classify(q); got != c {
			t.Fatalf("classified class-%d query as %d", c, got)
		}
	}
}

func TestAssociativeMemoryBipolarMode(t *testing.T) {
	const d = 10000
	rng := NewRNG(6)
	am := NewAssociativeMemory(2, d, 100, true)
	p0 := RandomBipolar(d, rng)
	p1 := RandomBipolar(d, rng)
	am.Learn(0, p0)
	am.Learn(1, p1)
	if am.Classify(p0) != 0 || am.Classify(p1) != 1 {
		t.Fatal("bipolar-mode classification failed on exact prototypes")
	}
	cv := am.ClassVector(0)
	if !cv.Equal(p0) {
		t.Fatal("single-sample class vector should equal the sample")
	}
}

func TestAssociativeMemoryUnlearn(t *testing.T) {
	const d = 1024
	rng := NewRNG(7)
	am := NewAssociativeMemory(2, d, 101, false)
	v := RandomBipolar(d, rng)
	w := RandomBipolar(d, rng)
	am.Learn(0, v)
	am.Learn(0, w)
	am.Unlearn(0, w)
	acc := am.ClassAccumulator(0)
	for i := 0; i < d; i++ {
		if acc.Sum(i) != int32(v.At(i)) {
			t.Fatal("unlearn did not restore accumulator")
		}
	}
}

func TestAssociativeMemoryRanking(t *testing.T) {
	const d = 4096
	rng := NewRNG(8)
	am := NewAssociativeMemory(3, d, 102, false)
	protos := make([]*Bipolar, 3)
	for c := range protos {
		protos[c] = RandomBipolar(d, rng)
		am.Learn(c, protos[c])
	}
	rank := am.Ranking(protos[1])
	if rank[0] != 1 {
		t.Fatalf("best-ranked class = %d, want 1", rank[0])
	}
	if len(rank) != 3 {
		t.Fatalf("ranking length = %d", len(rank))
	}
}

func TestAssociativeMemoryReset(t *testing.T) {
	am := NewAssociativeMemory(2, 64, 103, false)
	am.Learn(0, RandomBipolar(64, NewRNG(9)))
	am.Reset()
	if am.ClassAccumulator(0).Count() != 0 {
		t.Fatal("reset did not clear accumulators")
	}
}

func TestAssociativeMemoryReinforce(t *testing.T) {
	am := NewAssociativeMemory(2, 128, 104, false)
	v := RandomBipolar(128, NewRNG(10))
	am.Reinforce(0, v, 3)
	acc := am.ClassAccumulator(0)
	for i := 0; i < 128; i++ {
		if acc.Sum(i) != 3*int32(v.At(i)) {
			t.Fatal("reinforce weight not applied")
		}
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("invalid permutation value %d", v)
		}
		seen[v] = true
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(12)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
}

func TestRNGFloat64Bounds(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64() = %f", f)
		}
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(14)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}
