package hdc

import (
	"math"
	"testing"
	"testing/quick"
)

const testDim = 1024

func TestNewBipolarAllOnes(t *testing.T) {
	v := NewBipolar(16)
	for i := 0; i < v.Dim(); i++ {
		if v.At(i) != 1 {
			t.Fatalf("component %d = %d, want +1", i, v.At(i))
		}
	}
}

func TestNewBipolarPanicsOnBadDim(t *testing.T) {
	for _, d := range []int{0, -1, -100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBipolar(%d) did not panic", d)
				}
			}()
			NewBipolar(d)
		}()
	}
}

func TestRandomBipolarComponentsValid(t *testing.T) {
	rng := NewRNG(1)
	for _, d := range []int{1, 63, 64, 65, 1000, testDim} {
		v := RandomBipolar(d, rng)
		if v.Dim() != d {
			t.Fatalf("dim = %d, want %d", v.Dim(), d)
		}
		for i := 0; i < d; i++ {
			if c := v.At(i); c != 1 && c != -1 {
				t.Fatalf("d=%d component %d = %d", d, i, c)
			}
		}
	}
}

func TestRandomBipolarBalanced(t *testing.T) {
	// In d=10000 dimensions the component sum concentrates near 0 with
	// std sqrt(d) = 100; 5 sigma is a safe deterministic bound.
	v := RandomBipolar(10000, NewRNG(42))
	sum := 0
	for i := 0; i < v.Dim(); i++ {
		sum += int(v.At(i))
	}
	if sum > 500 || sum < -500 {
		t.Fatalf("component sum %d exceeds 5 sigma bound", sum)
	}
}

func TestRandomBipolarDeterministic(t *testing.T) {
	a := RandomBipolar(testDim, NewRNG(7))
	b := RandomBipolar(testDim, NewRNG(7))
	if !a.Equal(b) {
		t.Fatal("same seed produced different hypervectors")
	}
	c := RandomBipolar(testDim, NewRNG(8))
	if a.Equal(c) {
		t.Fatal("different seeds produced identical hypervectors")
	}
}

func TestFromComponents(t *testing.T) {
	v, err := FromComponents([]int8{1, -1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Dim() != 4 || v.At(1) != -1 {
		t.Fatalf("unexpected vector %v", v)
	}
	if _, err := FromComponents([]int8{1, 0, 1}); err == nil {
		t.Fatal("expected error for component 0")
	}
	if _, err := FromComponents(nil); err == nil {
		t.Fatal("expected error for empty slice")
	}
}

func TestFromComponentsCopies(t *testing.T) {
	src := []int8{1, -1}
	v, err := FromComponents(src)
	if err != nil {
		t.Fatal(err)
	}
	src[0] = -1
	if v.At(0) != 1 {
		t.Fatal("FromComponents did not copy its input")
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := NewRNG(3)
	v := RandomBipolar(64, rng)
	w := v.Clone()
	if !v.Equal(w) {
		t.Fatal("clone differs")
	}
	w.comps[0] = -w.comps[0]
	if v.comps[0] == w.comps[0] {
		t.Fatal("clone shares storage")
	}
}

func TestBindSelfInverse(t *testing.T) {
	rng := NewRNG(11)
	v := RandomBipolar(testDim, rng)
	w := RandomBipolar(testDim, rng)
	if got := v.Bind(w).Bind(w); !got.Equal(v) {
		t.Fatal("bind is not self-inverse")
	}
}

func TestBindCommutative(t *testing.T) {
	rng := NewRNG(12)
	v := RandomBipolar(testDim, rng)
	w := RandomBipolar(testDim, rng)
	if !v.Bind(w).Equal(w.Bind(v)) {
		t.Fatal("bind is not commutative")
	}
}

func TestBindAssociative(t *testing.T) {
	rng := NewRNG(13)
	a := RandomBipolar(testDim, rng)
	b := RandomBipolar(testDim, rng)
	c := RandomBipolar(testDim, rng)
	if !a.Bind(b).Bind(c).Equal(a.Bind(b.Bind(c))) {
		t.Fatal("bind is not associative")
	}
}

func TestBindQuasiOrthogonal(t *testing.T) {
	rng := NewRNG(14)
	v := RandomBipolar(10000, rng)
	w := RandomBipolar(10000, rng)
	bound := v.Bind(w)
	if s := math.Abs(bound.Cosine(v)); s > 0.05 {
		t.Fatalf("|cos(bind, v)| = %f, want near 0", s)
	}
	if s := math.Abs(bound.Cosine(w)); s > 0.05 {
		t.Fatalf("|cos(bind, w)| = %f, want near 0", s)
	}
}

func TestBindDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	NewBipolar(8).Bind(NewBipolar(9))
}

func TestPermuteRoundTrip(t *testing.T) {
	rng := NewRNG(15)
	v := RandomBipolar(100, rng)
	for _, k := range []int{0, 1, 7, 99, 100, 101, -3, -100} {
		if !v.Permute(k).Permute(-k).Equal(v) {
			t.Fatalf("permute round trip failed for k=%d", k)
		}
	}
}

func TestPermuteShiftsComponents(t *testing.T) {
	v, err := FromComponents([]int8{1, -1, 1, 1, -1})
	if err != nil {
		t.Fatal(err)
	}
	p := v.Permute(2)
	want := []int8{1, -1, 1, -1, 1}
	for i, w := range want {
		if p.At(i) != w {
			t.Fatalf("Permute(2)[%d] = %d, want %d", i, p.At(i), w)
		}
	}
}

func TestPermutePreservesQuasiOrthogonality(t *testing.T) {
	v := RandomBipolar(10000, NewRNG(16))
	if s := math.Abs(v.Permute(1).Cosine(v)); s > 0.05 {
		t.Fatalf("|cos(permute(v), v)| = %f, want near 0", s)
	}
}

func TestCosineSelfIsOne(t *testing.T) {
	v := RandomBipolar(testDim, NewRNG(17))
	if c := v.Cosine(v); c != 1 {
		t.Fatalf("cos(v, v) = %f", c)
	}
}

func TestCosineOppositeIsMinusOne(t *testing.T) {
	v := RandomBipolar(testDim, NewRNG(18))
	neg := v.Clone()
	for i := range neg.comps {
		neg.comps[i] = -neg.comps[i]
	}
	if c := v.Cosine(neg); c != -1 {
		t.Fatalf("cos(v, -v) = %f", c)
	}
}

func TestRandomPairQuasiOrthogonal(t *testing.T) {
	rng := NewRNG(19)
	v := RandomBipolar(10000, rng)
	w := RandomBipolar(10000, rng)
	if s := math.Abs(v.Cosine(w)); s > 0.05 {
		t.Fatalf("|cos| = %f between independent hypervectors", s)
	}
}

func TestHammingCosineConsistency(t *testing.T) {
	// For bipolar vectors cos = 1 - 2*hamming/d.
	rng := NewRNG(20)
	f := func(seed uint64) bool {
		r := NewRNG(seed ^ rng.Uint64())
		v := RandomBipolar(256, r)
		w := RandomBipolar(256, r)
		want := 1 - 2*float64(v.Hamming(w))/256
		return math.Abs(v.Cosine(w)-want) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDotSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		v := RandomBipolar(128, r)
		w := RandomBipolar(128, r)
		return v.Dot(w) == w.Dot(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPackBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		v := RandomBipolar(200, NewRNG(seed))
		return v.PackBinary().UnpackBipolar().Equal(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBipolarString(t *testing.T) {
	v := NewBipolar(3)
	if got := v.String(); got != "Bipolar(d=3, +++)" {
		t.Fatalf("String() = %q", got)
	}
	long := NewBipolar(100)
	if got := long.String(); got != "Bipolar(d=100, ++++++++...)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestAccumulatorMajority(t *testing.T) {
	tie := NewBipolar(4)
	a, _ := FromComponents([]int8{1, 1, -1, -1})
	b, _ := FromComponents([]int8{1, -1, -1, 1})
	c, _ := FromComponents([]int8{1, -1, -1, -1})
	acc := NewAccumulator(4)
	for _, v := range []*Bipolar{a, b, c} {
		acc.Add(v)
	}
	got := acc.Sign(tie)
	want := []int8{1, -1, -1, -1}
	for i, w := range want {
		if got.At(i) != w {
			t.Fatalf("majority[%d] = %d, want %d", i, got.At(i), w)
		}
	}
	if acc.Count() != 3 {
		t.Fatalf("count = %d", acc.Count())
	}
}

func TestAccumulatorTieBreak(t *testing.T) {
	tie, _ := FromComponents([]int8{1, -1})
	a, _ := FromComponents([]int8{1, 1})
	b, _ := FromComponents([]int8{-1, -1})
	acc := NewAccumulator(2)
	acc.Add(a)
	acc.Add(b)
	got := acc.Sign(tie)
	if got.At(0) != 1 || got.At(1) != -1 {
		t.Fatalf("tie-break produced %v, want tie vector values", got)
	}
}

func TestAccumulatorAddSubCancel(t *testing.T) {
	rng := NewRNG(21)
	acc := NewAccumulator(64)
	v := RandomBipolar(64, rng)
	w := RandomBipolar(64, rng)
	acc.Add(v)
	acc.Add(w)
	acc.Sub(w)
	tie := RandomBipolar(64, rng)
	if !acc.Sign(tie).Equal(v) {
		t.Fatal("add/sub did not cancel")
	}
	if acc.Count() != 1 {
		t.Fatalf("count = %d, want 1", acc.Count())
	}
}

func TestAccumulatorAddWeighted(t *testing.T) {
	rng := NewRNG(22)
	v := RandomBipolar(32, rng)
	a1 := NewAccumulator(32)
	a2 := NewAccumulator(32)
	for i := 0; i < 5; i++ {
		a1.Add(v)
	}
	a2.AddWeighted(v, 5)
	for i := 0; i < 32; i++ {
		if a1.Sum(i) != a2.Sum(i) {
			t.Fatalf("sum mismatch at %d: %d vs %d", i, a1.Sum(i), a2.Sum(i))
		}
	}
}

func TestAccumulatorReset(t *testing.T) {
	acc := NewAccumulator(16)
	acc.Add(RandomBipolar(16, NewRNG(23)))
	acc.Reset()
	if acc.Count() != 0 {
		t.Fatalf("count after reset = %d", acc.Count())
	}
	for i := 0; i < 16; i++ {
		if acc.Sum(i) != 0 {
			t.Fatalf("sum[%d] = %d after reset", i, acc.Sum(i))
		}
	}
}

func TestAccumulatorClone(t *testing.T) {
	acc := NewAccumulator(8)
	acc.Add(RandomBipolar(8, NewRNG(24)))
	cl := acc.Clone()
	cl.Add(RandomBipolar(8, NewRNG(25)))
	if acc.Count() == cl.Count() {
		t.Fatal("clone shares state")
	}
}

func TestBundleSimilarToInputs(t *testing.T) {
	// The bundle of a few random hypervectors stays measurably similar to
	// each input — the defining property of bundling.
	rng := NewRNG(26)
	tie := RandomBipolar(10000, rng)
	vs := make([]*Bipolar, 5)
	for i := range vs {
		vs[i] = RandomBipolar(10000, rng)
	}
	b := Bundle(tie, vs...)
	for i, v := range vs {
		if c := b.Cosine(v); c < 0.2 {
			t.Fatalf("cos(bundle, v%d) = %f, want clearly positive", i, c)
		}
	}
	// ... and quasi-orthogonal to an unrelated vector.
	other := RandomBipolar(10000, rng)
	if c := math.Abs(b.Cosine(other)); c > 0.05 {
		t.Fatalf("cos(bundle, other) = %f, want near 0", c)
	}
}

func TestBundleEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic bundling zero vectors")
		}
	}()
	Bundle(NewBipolar(4))
}

func TestCosineToSumsMatchesSignWhenNoTies(t *testing.T) {
	// With an odd number of bundled vectors there are no ties; the cosine
	// to the integer sums must correlate strongly with the cosine to the
	// signed vector for the inputs themselves.
	rng := NewRNG(27)
	acc := NewAccumulator(10000)
	vs := make([]*Bipolar, 7)
	for i := range vs {
		vs[i] = RandomBipolar(10000, rng)
		acc.Add(vs[i])
	}
	tie := RandomBipolar(10000, rng)
	signed := acc.Sign(tie)
	for _, v := range vs {
		cs := acc.CosineToSums(v)
		cb := signed.Cosine(v)
		if cs <= 0 || cb <= 0 {
			t.Fatalf("expected positive similarity, got sums=%f bipolar=%f", cs, cb)
		}
	}
}

func TestCosineToSumsZeroAccumulator(t *testing.T) {
	acc := NewAccumulator(32)
	if c := acc.CosineToSums(RandomBipolar(32, NewRNG(1))); c != 0 {
		t.Fatalf("cosine to empty accumulator = %f, want 0", c)
	}
}
