package serve

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/graph"
)

// toWire converts graphs to their JSON wire form.
func toWire(gs []*graph.Graph) []*graph.GraphJSON {
	wire := make([]*graph.GraphJSON, len(gs))
	for i, g := range gs {
		wire[i] = graph.ToJSON(g)
	}
	return wire
}

// TestFlightRecorderBasics checks ring mechanics single-threaded:
// capacity rounding, ticket stamping, retention of exactly the newest
// depth records, newest-first snapshot order.
func TestFlightRecorderBasics(t *testing.T) {
	r := newFlightRecorder(5) // rounds up to 8
	if got := r.depth(); got != 8 {
		t.Fatalf("depth(5) = %d, want 8", got)
	}
	if got := newFlightRecorder(0).depth(); got != DefaultTraceDepth {
		t.Fatalf("depth(0) = %d, want %d", got, DefaultTraceDepth)
	}

	if snap := r.snapshot(); len(snap) != 0 {
		t.Fatalf("empty recorder snapshot has %d records", len(snap))
	}
	for i := 1; i <= 20; i++ {
		rec := TraceRecord{BatchSize: i}
		r.record(&rec)
		if rec.Seq != uint64(i) {
			t.Fatalf("record %d stamped seq %d", i, rec.Seq)
		}
	}
	snap := r.snapshot()
	if len(snap) != 8 {
		t.Fatalf("snapshot has %d records, want 8", len(snap))
	}
	for i, rec := range snap {
		if want := uint64(20 - i); rec.Seq != want {
			t.Fatalf("snapshot[%d].Seq = %d, want %d (newest first)", i, rec.Seq, want)
		}
		if rec.BatchSize != int(rec.Seq) {
			t.Fatalf("seq %d carries batch size %d (torn record?)", rec.Seq, rec.BatchSize)
		}
	}
}

// TestFlightRecorderConcurrent hammers a small ring from many writers
// while snapshotting concurrently; run under -race this is the data-race
// proof for the per-slot locking scheme. Every snapshot must be
// internally consistent: records readable, newest first, each record's
// fields from a single write (Seq and BatchSize are written in lockstep,
// so any mix would be visible).
func TestFlightRecorderConcurrent(t *testing.T) {
	r := newFlightRecorder(16)
	const writers = 8
	const perWriter = 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				rec := TraceRecord{BatchSize: 1, Tasks: w + 1, TotalNanos: int64(i)}
				r.record(&rec)
				// The caller's record must come back stamped with a
				// unique, nonzero ticket.
				if rec.Seq == 0 {
					t.Error("record left Seq zero")
					return
				}
			}
		}(w)
	}

	var readerWG sync.WaitGroup
	for g := 0; g < 4; g++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := r.snapshot()
				for i := 1; i < len(snap); i++ {
					if snap[i].Seq >= snap[i-1].Seq {
						t.Errorf("snapshot not strictly newest-first: %d then %d",
							snap[i-1].Seq, snap[i].Seq)
						return
					}
				}
				for _, rec := range snap {
					if rec.Tasks < 1 || rec.Tasks > writers || rec.BatchSize != 1 {
						t.Errorf("torn record: %+v", rec)
						return
					}
				}
			}
		}()
	}

	wg.Wait()
	close(stop)
	readerWG.Wait()

	if got := r.seq.Load(); got != writers*perWriter {
		t.Fatalf("tickets issued = %d, want %d", got, writers*perWriter)
	}
	snap := r.snapshot()
	if len(snap) != 16 {
		t.Fatalf("final snapshot has %d records, want full ring of 16", len(snap))
	}
}

// TestEngineTraces drives real traffic through an engine (cascade on, so
// the escalate stage is live) and checks the flight recorder tells a
// coherent story: every batch accounted, stage nanos and dedup stats
// populated, cascade outcomes summing to the batch size, and the stage
// histograms fed from the same clock.
func TestEngineTraces(t *testing.T) {
	pred, ds := testModel(t, 2048, 1)
	if err := pred.SetCascade(core.Cascade{DPrefix: 512, Margin: 8}); err != nil {
		t.Fatal(err)
	}
	e, err := NewEngine(pred, Options{
		Workers: 2, MaxBatch: 8, MaxDelay: 50 * time.Microsecond, TraceDepth: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if got := e.TraceDepth(); got != 64 {
		t.Fatalf("TraceDepth = %d, want 64", got)
	}

	if _, err := e.PredictBatch(context.Background(), ds.Graphs); err != nil {
		t.Fatal(err)
	}

	traces := e.Traces()
	if len(traces) == 0 {
		t.Fatal("no trace records after a batch predict")
	}
	var graphs int
	for _, tr := range traces {
		if tr.BatchSize <= 0 || tr.Tasks <= 0 {
			t.Fatalf("record %d: empty batch: %+v", tr.Seq, tr)
		}
		graphs += tr.BatchSize
		if tr.PlanNanos < 0 || tr.EncodeNanos <= 0 || tr.ClassifyNanos <= 0 {
			t.Fatalf("record %d: missing stage nanos: %+v", tr.Seq, tr)
		}
		if tr.TotalNanos < tr.PlanNanos+tr.EncodeNanos+tr.ClassifyNanos+tr.EscalateNanos {
			t.Fatalf("record %d: total %dns less than stage sum: %+v", tr.Seq, tr.TotalNanos, tr)
		}
		if tr.QueueWaitNanos < 0 || tr.DispatchNanos < 0 {
			t.Fatalf("record %d: negative wait: %+v", tr.Seq, tr)
		}
		if tr.PlanPairs <= 0 || tr.PlanDistinct <= 0 || tr.PlanDistinct > tr.PlanPairs {
			t.Fatalf("record %d: implausible plan stats: %+v", tr.Seq, tr)
		}
		if !tr.Cascade {
			t.Fatalf("record %d: cascade flag off with cascade model", tr.Seq)
		}
		if tr.Stage1+tr.Escalated != tr.BatchSize {
			t.Fatalf("record %d: stage1 %d + escalated %d != batch %d",
				tr.Seq, tr.Stage1, tr.Escalated, tr.BatchSize)
		}
		if tr.Kernel == "" {
			t.Fatalf("record %d: kernel tier missing", tr.Seq)
		}
		if tr.Time.IsZero() {
			t.Fatalf("record %d: zero timestamp", tr.Seq)
		}
	}
	if graphs != len(ds.Graphs) {
		t.Fatalf("trace records cover %d graphs, want %d", graphs, len(ds.Graphs))
	}

	// The same stage clock must have fed the histograms: batch counts
	// line up with the recorded batches.
	m := e.Metrics()
	if got := m.StagePlan.Count; got != uint64(len(traces)) {
		t.Fatalf("stage plan histogram count %d, want %d batches", got, len(traces))
	}
	if m.StageEscalate.Count != uint64(len(traces)) {
		t.Fatalf("stage escalate count %d, want %d (cascade active)", m.StageEscalate.Count, len(traces))
	}
	if m.QueueWait.Count == 0 {
		t.Fatal("queue wait histogram empty after traffic")
	}
	if m.QueueWait.Sum < 0 {
		t.Fatalf("queue wait sum negative: %v", m.QueueWait.Sum)
	}
}

// TestEngineTracesNoCascade checks the non-cascade path: escalate stays
// silent, records carry cascade=false.
func TestEngineTracesNoCascade(t *testing.T) {
	pred, ds := testModel(t, 2048, 1)
	e, err := NewEngine(pred, Options{Workers: 2, MaxBatch: 8, MaxDelay: 50 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if _, err := e.PredictBatch(context.Background(), ds.Graphs); err != nil {
		t.Fatal(err)
	}
	for _, tr := range e.Traces() {
		if tr.Cascade || tr.Stage1 != 0 || tr.Escalated != 0 || tr.EscalateNanos != 0 {
			t.Fatalf("non-cascade record carries cascade data: %+v", tr)
		}
	}
	if n := e.Metrics().StageEscalate.Count; n != 0 {
		t.Fatalf("escalate histogram observed %d batches without a cascade", n)
	}
}

// TestHTTPTraces exercises GET /debug/traces on the public handler.
func TestHTTPTraces(t *testing.T) {
	pred, ds := testModel(t, 2048, 1)
	srv, _ := startTestServer(t, pred, HandlerOptions{})

	resp, body := postJSON(t, srv.URL+"/v1/predict/batch", map[string]any{
		"graphs": toWire(ds.Graphs[:8]),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch predict: %d: %s", resp.StatusCode, body)
	}

	r, err := http.Get(srv.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/traces: %d", r.StatusCode)
	}
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("content type %q", ct)
	}
	var tr TracesResponse
	if err := json.NewDecoder(r.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Depth != DefaultTraceDepth {
		t.Fatalf("depth = %d, want %d", tr.Depth, DefaultTraceDepth)
	}
	if len(tr.Traces) == 0 {
		t.Fatal("no traces after traffic")
	}
	if tr.Traces[0].BatchSize <= 0 {
		t.Fatalf("first trace: %+v", tr.Traces[0])
	}
}

// TestDebugHandler checks the diagnostics surface: pprof, expvar,
// runtime stats, traces and metrics are all mounted and respond.
func TestDebugHandler(t *testing.T) {
	pred, ds := testModel(t, 2048, 1)
	reg := NewRegistry(RegistryOptions{Engine: Options{Workers: 2, MaxBatch: 8, MaxDelay: 50 * time.Microsecond}})
	defer reg.Close()
	if err := reg.Load("default", pred); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{})
	if _, err := rt.PredictBatch(context.Background(), DefaultTenant, "", ds.Graphs[:8]); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewDebugHandler(rt))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		b, err := io.ReadAll(r.Body)
		if err != nil {
			t.Fatal(err)
		}
		return r.StatusCode, string(b)
	}

	if code, body := get("/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("/debug/pprof/cmdline: %d %q", code, body)
	}
	if code, body := get("/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ index: %d", code)
	}
	if code, body := get("/debug/vars"); code != http.StatusOK || !strings.Contains(body, "memstats") {
		t.Errorf("/debug/vars: %d %q", code, body[:min(len(body), 80)])
	}
	if code, body := get("/metrics"); code != http.StatusOK || !strings.Contains(body, "graphhd_stage_seconds_bucket") {
		t.Errorf("/metrics on debug listener: %d", code)
	}
	if code, body := get("/debug/traces"); code != http.StatusOK || !strings.Contains(body, "batch_size") {
		t.Errorf("/debug/traces on debug listener: %d %q", code, body[:min(len(body), 80)])
	}

	code, body := get("/debug/runtime")
	if code != http.StatusOK {
		t.Fatalf("/debug/runtime: %d", code)
	}
	var rs RuntimeStats
	if err := json.Unmarshal([]byte(body), &rs); err != nil {
		t.Fatalf("/debug/runtime decode: %v", err)
	}
	if rs.Goroutines <= 0 || rs.HeapAllocBytes == 0 {
		t.Fatalf("/debug/runtime implausible: %+v", rs)
	}
	if rs.Build.GoVersion == "" {
		t.Fatalf("/debug/runtime missing build identity: %+v", rs)
	}
	if rs.Kernel == "" {
		t.Fatalf("/debug/runtime missing kernel tier: %+v", rs)
	}
}

// TestRequestIDAndLogging checks every response carries a unique
// X-Request-Id and that a debug-level logger records access lines with
// matching ids and status codes.
func TestRequestIDAndLogging(t *testing.T) {
	pred, ds := testModel(t, 2048, 1)

	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	srv, _ := startTestServer(t, pred, HandlerOptions{Logger: logger})

	ids := map[string]bool{}
	for i := 0; i < 3; i++ {
		resp, body := postJSON(t, srv.URL+"/v1/predict", map[string]any{
			"graph": toWire(ds.Graphs[i : i+1])[0],
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("predict: %d: %s", resp.StatusCode, body)
		}
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatal("response missing X-Request-Id")
		}
		if ids[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		ids[id] = true
	}

	logged := buf.String()
	for id := range ids {
		if !strings.Contains(logged, id) {
			t.Errorf("access log missing request id %q:\n%s", id, logged)
		}
	}
	if !strings.Contains(logged, "/v1/predict") || !strings.Contains(logged, "status=200") {
		t.Errorf("access log missing request fields:\n%s", logged)
	}
}

// syncBuffer is a goroutine-safe strings.Builder for capturing logs.
type syncBuffer struct {
	mu sync.Mutex
	sb strings.Builder
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.sb.String()
}
