package serve

// The Registry is the multi-tenant model store above the Engine: a set of
// named packed predictors, each served by a fixed group of engine
// replicas. Packed GraphHD predictors are tiny (k·d/8 bytes — a few KB at
// d=10k), so the natural deployment keeps *many* models resident in one
// process; the registry makes that explicit with a total-packed-bytes
// budget and LRU eviction, and owns everything about a model's lifecycle
// that the Engine deliberately does not:
//
//   - Loading artifacts (LoadFile/Reload) and the PrepareModel hook that
//     re-applies operator cascade config to every predictor read from
//     disk — an error from the hook aborts the install, leaving the
//     current model serving.
//   - Rolling hot-swap. Swap walks a model's replicas in ascending id
//     order, installing the new predictor one engine at a time through
//     the Engine's atomic-pointer swap — zero failed in-flight requests,
//     and a monotone version front: replica i+1 never serves the new
//     model before replica i has installed it.
//   - Residency. The request path reads the model table through a
//     copy-on-write map behind an atomic pointer (no lock, no contention
//     with loads/evictions); each lookup stamps an atomic last-used
//     timestamp, and a Load that would exceed MaxResidentBytes evicts
//     least-recently-used models until the newcomer fits.
//
// Mutations (load, evict, swap, reload) serialize on one mutex; evicted
// models drain outside it so a slow shutdown never blocks the table.

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphhd/internal/core"
)

// Errors returned by the registry and router layers.
var (
	// ErrModelNotFound means the named model is not resident; the HTTP
	// front end maps it to 404.
	ErrModelNotFound = errors.New("serve: model not found")
	// ErrModelTooLarge means a single model's packed footprint exceeds
	// MaxResidentBytes — no amount of eviction can make it fit.
	ErrModelTooLarge = errors.New("serve: model exceeds resident-bytes budget")
	// ErrRegistryClosed means the registry has been shut down.
	ErrRegistryClosed = errors.New("serve: registry closed")
)

// RegistryOptions configures a Registry. The zero value of any field
// selects its default.
type RegistryOptions struct {
	// Replicas is the number of engine replicas serving each model.
	// Default 1.
	Replicas int
	// Engine is the per-replica engine configuration template; ModelName
	// and Replica are overwritten per slot.
	Engine Options
	// MaxResidentBytes bounds the summed packed footprint of resident
	// models. A Load past the bound evicts least-recently-used models
	// until the newcomer fits; a model that alone exceeds the bound is
	// refused with ErrModelTooLarge. Zero means unbounded.
	MaxResidentBytes int64
	// PrepareModel, when set, is applied to every predictor the registry
	// reads from a file (LoadFile, Reload, ReloadAll) before it is
	// installed — the hook cmd/graphhd-serve uses to re-apply cascade
	// flags across SIGHUP reloads. A returned error aborts the install,
	// leaving the current model (if any) serving. It is NOT applied to
	// predictors handed in directly via Load or Swap.
	PrepareModel func(name string, p *core.Predictor) error
}

func (o RegistryOptions) withDefaults() RegistryOptions {
	if o.Replicas <= 0 {
		o.Replicas = 1
	}
	return o
}

// replica is one engine slot of a model. inflight is the router's
// placement signal: graphs routed to this replica and not yet answered.
type replica struct {
	id       int
	eng      *Engine
	inflight atomic.Int64
}

// regModel is one resident named model. bytes and path are guarded by
// Registry.mu; pred, version, and lastUsed are atomics read lock-free on
// the request path.
type regModel struct {
	name     string
	pred     atomic.Pointer[core.Predictor]
	version  atomic.Uint64 // 1 on load, +1 per rolling swap
	lastUsed atomic.Int64  // registry-epoch nanos of the last lookup
	bytes    int64
	path     string // artifact path for Reload; "" if loaded in-memory
	replicas []*replica

	// trainer is the online learning loop attached to this model, if any.
	// shadow is non-nil only while that trainer has a candidate in its
	// shadow phase; the router samples answered traffic through it.
	trainer atomic.Pointer[Trainer]
	shadow  atomic.Pointer[shadowMirror]
}

func (m *regModel) closeEngines() {
	// The trainer stops first: its goroutine swaps into these engines and
	// owns the shadow engine's lifecycle. Callers never hold Registry.mu
	// here, so a trainer mid-promotion can finish its Swap call.
	if tr := m.trainer.Load(); tr != nil {
		tr.Close()
	}
	for _, rep := range m.replicas {
		rep.eng.Close()
	}
}

// Registry is the named-model store. Create one with NewRegistry; it is
// safe for concurrent use.
type Registry struct {
	opts  RegistryOptions
	epoch time.Time

	// models is the copy-on-write lookup table: readers load the pointer,
	// writers build a fresh map under mu and publish it atomically.
	models atomic.Pointer[map[string]*regModel]

	bytes     atomic.Int64  // summed packed footprint of resident models
	evictions atomic.Uint64 // models evicted by the resident-bytes bound

	mu     sync.Mutex // serializes load/evict/swap/reload/close
	closed bool
}

// NewRegistry builds an empty registry.
func NewRegistry(opts RegistryOptions) *Registry {
	r := &Registry{opts: opts.withDefaults(), epoch: time.Now()}
	m := map[string]*regModel{}
	r.models.Store(&m)
	return r
}

// nanos is the registry's monotonic clock for LRU stamps.
func (r *Registry) nanos() int64 { return int64(time.Since(r.epoch)) }

// Options returns the registry's resolved configuration.
func (r *Registry) Options() RegistryOptions { return r.opts }

// model is the request-path lookup: lock-free through the COW table,
// stamping the LRU clock on hit.
func (r *Registry) model(name string) (*regModel, bool) {
	m, ok := (*r.models.Load())[name]
	if ok {
		m.lastUsed.Store(r.nanos())
	}
	return m, ok
}

// publish installs a mutated copy of the model table. Callers hold mu.
func (r *Registry) publish(mut func(map[string]*regModel)) {
	old := *r.models.Load()
	nm := make(map[string]*regModel, len(old)+1)
	for k, v := range old {
		nm[k] = v
	}
	mut(nm)
	r.models.Store(&nm)
}

func validModelName(name string) error {
	if name == "" {
		return errors.New("serve: empty model name")
	}
	if strings.ContainsAny(name, "/ \t\n") {
		return fmt.Errorf("serve: invalid model name %q", name)
	}
	return nil
}

// Load installs pred under name, replacing an existing model of the same
// name via rolling swap. A new model gets Replicas fresh engines; loading
// past MaxResidentBytes evicts least-recently-used models first.
func (r *Registry) Load(name string, pred *core.Predictor) error {
	return r.install(name, pred, "")
}

// LoadFile reads a GRAPHHD1/2/3 model artifact, applies the PrepareModel
// hook if configured, and installs the result under name. The path is
// remembered so Reload can re-read it.
func (r *Registry) LoadFile(name, path string) error {
	pred, err := r.loadArtifact(name, path)
	if err != nil {
		return err
	}
	return r.install(name, pred, path)
}

// loadArtifact reads and prepares a predictor without touching the table.
func (r *Registry) loadArtifact(name, path string) (*core.Predictor, error) {
	pred, err := core.LoadPredictorFile(path)
	if err != nil {
		return nil, fmt.Errorf("serve: load %q: %w", name, err)
	}
	if r.opts.PrepareModel != nil {
		if err := r.opts.PrepareModel(name, pred); err != nil {
			return nil, fmt.Errorf("serve: load %q: %w", name, err)
		}
	}
	return pred, nil
}

func (r *Registry) install(name string, pred *core.Predictor, path string) error {
	if err := validModelName(name); err != nil {
		return err
	}
	if pred == nil {
		return errors.New("serve: nil predictor")
	}
	bytes := int64(pred.MemoryBytes())
	if r.opts.MaxResidentBytes > 0 && bytes > r.opts.MaxResidentBytes {
		return fmt.Errorf("%w: %q needs %d bytes of %d",
			ErrModelTooLarge, name, bytes, r.opts.MaxResidentBytes)
	}

	var victims []*regModel
	// Deferred LIFO: mu unlocks first, then evicted engines drain outside
	// the lock.
	defer func() {
		for _, v := range victims {
			v.closeEngines()
		}
	}()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRegistryClosed
	}

	if m, ok := (*r.models.Load())[name]; ok {
		victims = r.swapLocked(m, pred, path)
		return nil
	}

	victims = r.evictForLocked(bytes, name)
	m := &regModel{name: name, bytes: bytes, path: path,
		replicas: make([]*replica, r.opts.Replicas)}
	m.pred.Store(pred)
	m.version.Store(1)
	m.lastUsed.Store(r.nanos())
	for i := range m.replicas {
		eo := r.opts.Engine
		eo.ModelName, eo.Replica = name, i
		eng, err := NewEngine(pred, eo)
		if err != nil {
			for _, rep := range m.replicas[:i] {
				rep.eng.Close()
			}
			return err
		}
		m.replicas[i] = &replica{id: i, eng: eng}
	}
	r.publish(func(t map[string]*regModel) { t[name] = m })
	r.bytes.Add(bytes)
	return nil
}

// Swap rolls a new predictor across name's replicas: each engine installs
// it via the atomic-pointer swap, one at a time in ascending replica
// order, so in-flight requests never fail and the version front is
// monotone across replicas.
func (r *Registry) Swap(name string, pred *core.Predictor) error {
	if pred == nil {
		return errors.New("serve: swap to nil predictor")
	}
	bytes := int64(pred.MemoryBytes())
	if r.opts.MaxResidentBytes > 0 && bytes > r.opts.MaxResidentBytes {
		return fmt.Errorf("%w: %q needs %d bytes of %d",
			ErrModelTooLarge, name, bytes, r.opts.MaxResidentBytes)
	}
	var victims []*regModel
	defer func() {
		for _, v := range victims {
			v.closeEngines()
		}
	}()
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrRegistryClosed
	}
	m, ok := (*r.models.Load())[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	victims = r.swapLocked(m, pred, "")
	return nil
}

// swapLocked is the rolling walk plus byte accounting. Callers hold mu
// and close the returned victims after unlocking.
func (r *Registry) swapLocked(m *regModel, pred *core.Predictor, path string) []*regModel {
	bytes := int64(pred.MemoryBytes())
	var victims []*regModel
	if grow := bytes - m.bytes; grow > 0 {
		victims = r.evictForLocked(grow, m.name)
	}
	for _, rep := range m.replicas {
		rep.eng.Swap(pred)
	}
	m.pred.Store(pred)
	m.version.Add(1)
	r.bytes.Add(bytes - m.bytes)
	m.bytes = bytes
	if path != "" {
		m.path = path
	}
	return victims
}

// evictForLocked removes least-recently-used models (never keep) until
// need more bytes fit under the budget, returning the victims for the
// caller to drain outside mu.
func (r *Registry) evictForLocked(need int64, keep string) []*regModel {
	if r.opts.MaxResidentBytes <= 0 {
		return nil
	}
	var victims []*regModel
	for r.bytes.Load()+need > r.opts.MaxResidentBytes {
		var lru *regModel
		for _, m := range *r.models.Load() {
			if m.name == keep {
				continue
			}
			if lru == nil || m.lastUsed.Load() < lru.lastUsed.Load() {
				lru = m
			}
		}
		if lru == nil {
			break
		}
		r.publish(func(t map[string]*regModel) { delete(t, lru.name) })
		r.bytes.Add(-lru.bytes)
		r.evictions.Add(1)
		victims = append(victims, lru)
	}
	return victims
}

// Evict removes name from the registry and drains its engines. Requests
// already admitted complete; later lookups see ErrModelNotFound.
func (r *Registry) Evict(name string) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return ErrRegistryClosed
	}
	m, ok := (*r.models.Load())[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	r.publish(func(t map[string]*regModel) { delete(t, name) })
	r.bytes.Add(-m.bytes)
	r.mu.Unlock()
	m.closeEngines()
	return nil
}

// Reload re-reads name's remembered artifact path, applies PrepareModel,
// and rolls the result across the replicas. Models loaded in-memory (no
// path) return an error.
func (r *Registry) Reload(name string) error {
	r.mu.Lock()
	m, ok := (*r.models.Load())[name]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	path := m.path
	r.mu.Unlock()
	if path == "" {
		return fmt.Errorf("serve: model %q has no artifact path to reload", name)
	}
	// File IO and the prepare hook run outside mu; only the swap locks.
	pred, err := r.loadArtifact(name, path)
	if err != nil {
		return err
	}
	return r.install(name, pred, path)
}

// ReloadAll reloads every model that has an artifact path — the SIGHUP
// and POST /admin/reload path. It returns the number of models reloaded
// and the joined errors of any that failed (each failure leaves that
// model's current version serving).
func (r *Registry) ReloadAll() (int, error) {
	r.mu.Lock()
	var names []string
	for name, m := range *r.models.Load() {
		if m.path != "" {
			names = append(names, name)
		}
	}
	r.mu.Unlock()
	sort.Strings(names)
	n := 0
	var errs []error
	for _, name := range names {
		if err := r.Reload(name); err != nil {
			errs = append(errs, err)
		} else {
			n++
		}
	}
	return n, errors.Join(errs...)
}

// Len reports the number of resident models.
func (r *Registry) Len() int { return len(*r.models.Load()) }

// Bytes reports the summed packed footprint of resident models.
func (r *Registry) Bytes() int64 { return r.bytes.Load() }

// Evictions reports how many models the resident-bytes bound has evicted.
func (r *Registry) Evictions() uint64 { return r.evictions.Load() }

// ReplicaStatus is one engine slot's row in a ModelStatus.
type ReplicaStatus struct {
	Replica   int    `json:"replica"`
	InFlight  int64  `json:"in_flight"` // router-placed graphs awaiting answers
	Accepted  uint64 `json:"accepted"`
	Processed uint64 `json:"processed"`
	Reloads   uint64 `json:"reloads"`
}

// ModelStatus is one resident model's row in a RegistryStatus.
type ModelStatus struct {
	Name        string `json:"name"`
	Version     uint64 `json:"version"`
	Dimension   int    `json:"dimension"`
	Classes     int    `json:"classes"`
	PackedBytes int64  `json:"packed_bytes"`
	// Revision is the online-update count stamped into the serving
	// predictor when it was snapshotted — 0 for predictors straight from
	// Fit/Train. Compare against TrainerStatus.Revision to see unpromoted
	// drift.
	Revision      uint64          `json:"revision,omitempty"`
	Path          string          `json:"path,omitempty"`
	CascadePrefix int             `json:"cascade_prefix,omitempty"`
	CascadeMargin int             `json:"cascade_margin,omitempty"`
	ShadowActive  bool            `json:"shadow_active,omitempty"`
	Replicas      []ReplicaStatus `json:"replicas"`
}

// RegistryStatus is the registry table snapshot behind GET /v1/models and
// cmd/inspect -models.
type RegistryStatus struct {
	Models           []ModelStatus `json:"models"` // sorted by name
	TotalBytes       int64         `json:"total_bytes"`
	MaxBytes         int64         `json:"max_bytes,omitempty"`
	Evictions        uint64        `json:"evictions"`
	ReplicasPerModel int           `json:"replicas_per_model"`
}

// Status snapshots the registry table, models sorted by name.
func (r *Registry) Status() RegistryStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	table := *r.models.Load()
	st := RegistryStatus{
		Models:           make([]ModelStatus, 0, len(table)),
		TotalBytes:       r.bytes.Load(),
		MaxBytes:         r.opts.MaxResidentBytes,
		Evictions:        r.evictions.Load(),
		ReplicasPerModel: r.opts.Replicas,
	}
	for _, m := range table {
		p := m.pred.Load()
		ms := ModelStatus{
			Name:         m.name,
			Version:      m.version.Load(),
			Dimension:    p.Dimension(),
			Classes:      p.NumClasses(),
			PackedBytes:  m.bytes,
			Revision:     p.Revision(),
			Path:         m.path,
			ShadowActive: m.shadow.Load() != nil,
			Replicas:     make([]ReplicaStatus, 0, len(m.replicas)),
		}
		if c, ok := p.Cascade(); ok {
			ms.CascadePrefix, ms.CascadeMargin = c.DPrefix, c.Margin
		}
		for _, rep := range m.replicas {
			ms.Replicas = append(ms.Replicas, ReplicaStatus{
				Replica:   rep.id,
				InFlight:  rep.inflight.Load(),
				Accepted:  rep.eng.m.accepted.Load(),
				Processed: rep.eng.m.processed.Load(),
				Reloads:   rep.eng.m.reloads.Load(),
			})
		}
		st.Models = append(st.Models, ms)
	}
	sort.Slice(st.Models, func(i, j int) bool { return st.Models[i].Name < st.Models[j].Name })
	return st
}

// Traces merges the flight-recorder snapshots of every replica of every
// resident model, newest first.
func (r *Registry) Traces() []TraceRecord {
	var out []TraceRecord
	for _, m := range *r.models.Load() {
		for _, rep := range m.replicas {
			out = append(out, rep.eng.Traces()...)
		}
		// A live shadow engine's batches show up too, under "name#shadow"
		// — how mirrored candidate traffic becomes debuggable.
		if sh := m.shadow.Load(); sh != nil {
			out = append(out, sh.eng.Traces()...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.After(out[j].Time) })
	return out
}

// TraceDepth sums the flight-recorder capacities across replicas.
func (r *Registry) TraceDepth() int {
	n := 0
	for _, m := range *r.models.Load() {
		for _, rep := range m.replicas {
			n += rep.eng.TraceDepth()
		}
	}
	return n
}

// Close evicts every model and drains its engines. The registry rejects
// all mutations afterwards. Close is idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	table := *r.models.Load()
	empty := map[string]*regModel{}
	r.models.Store(&empty)
	r.bytes.Store(0)
	r.mu.Unlock()
	for _, m := range table {
		m.closeEngines()
	}
}
