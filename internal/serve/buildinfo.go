package serve

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: the toolchain that built it
// and, when the build had VCS stamping (module builds from a git
// checkout), the revision it was built from. Surfaced as the
// graphhd_build_info gauge on /metrics and in GET /v1/model, so a fleet
// operator can tell exactly which build every replica runs.
type BuildInfo struct {
	GoVersion   string `json:"go_version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// Build returns the binary's build identity, read once per process via
// debug.ReadBuildInfo. Test binaries and builds outside a VCS checkout
// have no revision; GoVersion is always present.
var Build = sync.OnceValue(func() BuildInfo {
	bi := BuildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRevision = s.Value
		case "vcs.time":
			bi.VCSTime = s.Value
		case "vcs.modified":
			bi.VCSModified = s.Value == "true"
		}
	}
	return bi
})
