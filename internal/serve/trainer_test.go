package serve

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/dataset"
	"graphhd/internal/graph"
)

// trainableModel trains a full (int32-accumulator) model on the synthetic
// MUTAG workload, optionally with every label flipped — the two-sided
// setup the promotion and rollback tests build their determinism on: two
// models sharing one encoder basis whose class vectors disagree.
func trainableModel(t testing.TB, dim int, flip bool) (*core.Model, *graph.Dataset) {
	t.Helper()
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	labels := ds.Labels
	if flip {
		labels = make([]int, len(ds.Labels))
		for i, y := range ds.Labels {
			labels[i] = 1 - y
		}
	}
	cfg := core.DefaultConfig()
	cfg.Dimension = dim
	cfg.Seed = 1
	m, err := core.Train(cfg, ds.Graphs, labels)
	if err != nil {
		t.Fatal(err)
	}
	return m, ds
}

// TestTrainerPromotionFlipsServedPredictions is the tentpole's end-to-end
// proof: labeled feedback changes served predictions ONLY through a
// validated promotion. The primary serves a label-flipped model; the
// trainer holds the correctly-trained model, so every feedback sample
// agrees with it (OnlineUpdate no-ops) and the candidate snapshot is
// byte-deterministic. Until the promotion lands every served answer must
// match the flipped model; afterwards every answer must match the correct
// one — never anything else, never a torn mixture.
func TestTrainerPromotionFlipsServedPredictions(t *testing.T) {
	correct, ds := trainableModel(t, 1024, false)
	flipped, _ := trainableModel(t, 1024, true)
	wantOld := flipped.Snapshot().PredictAll(ds.Graphs)
	wantNew := correct.Snapshot().PredictAll(ds.Graphs)
	diverge := 0
	for i := range wantOld {
		if wantOld[i] != wantNew[i] {
			diverge++
		}
	}
	if diverge == 0 {
		t.Fatal("flipped and correct models agree everywhere; test cannot observe a promotion")
	}

	reg := NewRegistry(RegistryOptions{
		Replicas: 2,
		Engine:   Options{Workers: 2, MaxBatch: 8, MaxDelay: 50 * time.Microsecond},
	})
	defer reg.Close()
	if err := reg.Load("default", flipped.Snapshot()); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{})
	tr, err := reg.AttachTrainer("default", correct, TrainerOptions{
		BufferSize:       256,
		SnapshotEvery:    8,
		HoldoutEvery:     2,
		MinHoldout:       4,
		ShadowFraction:   1,
		ShadowMinSamples: 2,
		ShadowWindow:     500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	deadline := time.Now().Add(15 * time.Second)
	promoted := false
	for !promoted {
		if time.Now().After(deadline) {
			t.Fatalf("no promotion within deadline: %+v", tr.Status())
		}
		for i, g := range ds.Graphs {
			if err := tr.Feed(g, ds.Labels[i]); err != nil && !errors.Is(err, ErrFeedbackBufferFull) {
				t.Fatalf("feed: %v", err)
			}
			class, err := rt.Predict(ctx, "", "", g)
			if err != nil {
				t.Fatalf("predict during online loop: %v", err)
			}
			if class != wantOld[i] && class != wantNew[i] {
				t.Fatalf("graph %d served class %d, which is neither the pre-promotion %d nor the post-promotion %d",
					i, class, wantOld[i], wantNew[i])
			}
			if tr.Status().Promotions > 0 {
				promoted = true
				break
			}
		}
	}

	// The promotion completed its rolling swap before the counter bumped,
	// so from here every replica must serve the correct model.
	for i, g := range ds.Graphs {
		class, err := rt.Predict(ctx, "", "", g)
		if err != nil {
			t.Fatal(err)
		}
		if class != wantNew[i] {
			t.Fatalf("graph %d served class %d after promotion, want %d", i, class, wantNew[i])
		}
	}

	st := tr.Status()
	if !strings.HasPrefix(st.LastOutcome, "promoted") {
		t.Fatalf("last outcome = %q, want a promotion verdict", st.LastOutcome)
	}
	if st.ShadowMirrored == 0 {
		t.Error("shadow phase mirrored no live traffic at fraction 1")
	}
	// Buffered feedback keeps draining after the first promotion, so a
	// second validation cycle (and shadow phase) may already be live here
	// — only the monotone version front is asserted.
	ms := reg.Status().Models[0]
	if ms.Version < 2 {
		t.Fatalf("registry version = %d after promotion, want >= 2", ms.Version)
	}
}

// TestTrainerRollbackOnHoldoutRegression proves the other gate: a
// candidate that regresses against held-out feedback never reaches the
// replicas. The primary is the strong correctly-trained model; the
// trainer holds the label-flipped model, so its candidates score near
// zero on the (correctly labeled) holdout slice and every snapshot rolls
// back with a surfaced reason, leaving the serving version untouched.
func TestTrainerRollbackOnHoldoutRegression(t *testing.T) {
	correct, ds := trainableModel(t, 1024, false)
	flipped, _ := trainableModel(t, 1024, true)
	want := correct.Snapshot().PredictAll(ds.Graphs)

	reg := NewRegistry(RegistryOptions{
		Replicas: 1,
		Engine:   Options{Workers: 1, MaxBatch: 8, MaxDelay: 50 * time.Microsecond},
	})
	defer reg.Close()
	if err := reg.Load("default", correct.Snapshot()); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{})
	tr, err := reg.AttachTrainer("default", flipped, TrainerOptions{
		BufferSize:    256,
		SnapshotEvery: 8,
		HoldoutEvery:  2,
		MinHoldout:    8,
		ShadowWindow:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(15 * time.Second)
	for tr.Status().Rollbacks == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no rollback within deadline: %+v", tr.Status())
		}
		for i, g := range ds.Graphs {
			if err := tr.Feed(g, ds.Labels[i]); err != nil && !errors.Is(err, ErrFeedbackBufferFull) {
				t.Fatalf("feed: %v", err)
			}
		}
		time.Sleep(time.Millisecond)
	}

	st := tr.Status()
	if !strings.Contains(st.LastOutcome, "rolled back: holdout regression") {
		t.Fatalf("last outcome = %q, want a holdout-regression rollback", st.LastOutcome)
	}
	if st.Promotions != 0 {
		t.Fatalf("bad candidate was promoted %d times", st.Promotions)
	}
	ms := reg.Status().Models[0]
	if ms.Version != 1 {
		t.Fatalf("registry version = %d after rollback, want 1 (swap never ran)", ms.Version)
	}
	// The replicas still serve the original model, untouched.
	ctx := context.Background()
	for i, g := range ds.Graphs {
		class, err := rt.Predict(ctx, "", "", g)
		if err != nil {
			t.Fatal(err)
		}
		if class != want[i] {
			t.Fatalf("graph %d served class %d after rollback, want %d", i, class, want[i])
		}
	}
}

// TestTrainerFeedValidation pins the non-HTTP half of the feedback
// hardening: label range, buffer bounds and closed-trainer behavior all
// surface as typed errors, never panics.
func TestTrainerFeedValidation(t *testing.T) {
	correct, ds := trainableModel(t, 512, false)
	reg := NewRegistry(RegistryOptions{Engine: Options{Workers: 1}})
	defer reg.Close()
	if err := reg.Load("default", correct.Snapshot()); err != nil {
		t.Fatal(err)
	}

	if _, err := reg.AttachTrainer("missing", correct, TrainerOptions{}); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("attach to missing model: %v, want ErrModelNotFound", err)
	}
	tr, err := reg.AttachTrainer("default", correct, TrainerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reg.AttachTrainer("default", correct, TrainerOptions{}); !errors.Is(err, ErrTrainerExists) {
		t.Fatalf("double attach: %v, want ErrTrainerExists", err)
	}
	if got, ok := reg.Trainer("default"); !ok || got != tr {
		t.Fatal("Trainer lookup did not return the attached trainer")
	}

	if err := tr.Feed(ds.Graphs[0], -1); !errors.Is(err, ErrBadFeedbackLabel) {
		t.Fatalf("label -1: %v, want ErrBadFeedbackLabel", err)
	}
	if err := tr.Feed(ds.Graphs[0], tr.NumClasses()); !errors.Is(err, ErrBadFeedbackLabel) {
		t.Fatalf("label k: %v, want ErrBadFeedbackLabel", err)
	}

	tr.Close()
	tr.Close() // idempotent
	if err := tr.Feed(ds.Graphs[0], 0); !errors.Is(err, ErrTrainerClosed) {
		t.Fatalf("feed after close: %v, want ErrTrainerClosed", err)
	}
}

// TestTrainerSnapshotIntervalDefers covers the timer-driven validation
// trigger: with trickle feedback and a holdout minimum that cannot be
// met, the interval tick must still attempt validation and record a
// deferred outcome instead of promoting or rolling back blind.
func TestTrainerSnapshotIntervalDefers(t *testing.T) {
	m, ds := trainableModel(t, 512, false)
	reg := NewRegistry(RegistryOptions{Engine: Options{Workers: 1}})
	defer reg.Close()
	if err := reg.Load("default", m.Snapshot()); err != nil {
		t.Fatal(err)
	}
	tr, err := reg.AttachTrainer("default", m, TrainerOptions{
		SnapshotEvery:    1 << 30, // only the interval may trigger
		SnapshotInterval: 5 * time.Millisecond,
		HoldoutEvery:     2,
		MinHoldout:       1 << 20, // unreachable: every attempt defers
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := tr.Feed(ds.Graphs[i], ds.Labels[i]); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := tr.Status()
		if strings.HasPrefix(st.LastOutcome, "deferred") {
			if st.Promotions != 0 || st.Rollbacks != 0 {
				t.Fatalf("deferred validation must not promote or roll back: %+v", st)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no deferred outcome recorded; status %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestTrainerStatusesSorted pins the accessor surface and the status
// listing order: two attached trainers report sorted by model name with
// their resolved options and backing models reachable.
func TestTrainerStatusesSorted(t *testing.T) {
	mb, _ := trainableModel(t, 512, false)
	ma, _ := trainableModel(t, 512, true)
	reg := NewRegistry(RegistryOptions{Engine: Options{Workers: 1}})
	defer reg.Close()
	// Load in reverse name order so a sorted result is not insertion order.
	if err := reg.Load("beta", mb.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("alpha", ma.Snapshot()); err != nil {
		t.Fatal(err)
	}
	trb, err := reg.AttachTrainer("beta", mb, TrainerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tra, err := reg.AttachTrainer("alpha", ma, TrainerOptions{BufferSize: 7})
	if err != nil {
		t.Fatal(err)
	}
	if tra.Model() != ma || trb.Model() != mb {
		t.Fatal("Trainer.Model did not return the attached model")
	}
	if got := tra.Options().BufferSize; got != 7 {
		t.Fatalf("Options().BufferSize = %d, want the attached 7", got)
	}
	if got := trb.Options().BufferSize; got != (TrainerOptions{}).withDefaults().BufferSize {
		t.Fatalf("Options().BufferSize = %d, want the resolved default", got)
	}
	sts := reg.TrainerStatuses()
	if len(sts) != 2 || sts[0].Model != "alpha" || sts[1].Model != "beta" {
		t.Fatalf("TrainerStatuses not sorted by model: %+v", sts)
	}
}

// TestRouterSoakOnlineLoop extends the rolling-swap soak (run under -race
// in CI) with the full online learning loop live: two 2-replica models
// take mixed predict traffic and concurrent labeled feedback while their
// trainers snapshot, shadow-mirror at fraction 1, and promote ("promo":
// flipped primary, correct trainer) or roll back ("rollb": correct
// primary, flipped trainer). At quiesce it asserts zero failed in-flight
// requests across every promote/rollback cycle, at least one of each
// verdict, and exact accepted==processed conservation on the primary
// replicas — mirrored shadow traffic must never leak into them.
func TestRouterSoakOnlineLoop(t *testing.T) {
	correct, ds := trainableModel(t, 1024, false)
	flipped, _ := trainableModel(t, 1024, true)

	reg := NewRegistry(RegistryOptions{
		Replicas: 2,
		Engine: Options{
			Workers:  2,
			MaxBatch: 8,
			MaxDelay: 50 * time.Microsecond,
		},
	})
	if err := reg.Load("promo", flipped.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("rollb", correct.Snapshot()); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{DefaultModel: "promo"})

	topts := TrainerOptions{
		BufferSize:       512,
		SnapshotEvery:    16,
		HoldoutEvery:     4,
		MinHoldout:       8,
		ShadowFraction:   1,
		ShadowMinSamples: 4,
		ShadowWindow:     100 * time.Millisecond,
	}
	// promoTrainer learns from a fresh copy of the correct model; the
	// soak's feedback agrees with it, so promotion is guaranteed once the
	// holdout fills. rollbTrainer holds the flipped model, so its
	// candidates always regress.
	promoBase, _ := trainableModel(t, 1024, false)
	rollbBase, _ := trainableModel(t, 1024, true)
	promoTr, err := reg.AttachTrainer("promo", promoBase, topts)
	if err != nil {
		t.Fatal(err)
	}
	rollbTr, err := reg.AttachTrainer("rollb", rollbBase, topts)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var stopOnce sync.Once
	halt := func() { stopOnce.Do(func() { close(stop) }) }
	deadline := time.AfterFunc(20*time.Second, halt)
	defer deadline.Stop()

	var wg sync.WaitGroup
	var graphsOK, failures atomic.Uint64
	ctx := context.Background()

	predictClient := func(model string, batch int) {
		defer wg.Done()
		out := make([]int, batch)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			lo := i % (len(ds.Graphs) - batch)
			var err error
			if batch == 1 {
				_, err = rt.Predict(ctx, "", model, ds.Graphs[lo])
			} else {
				err = rt.PredictBatchInto(ctx, "", model, ds.Graphs[lo:lo+batch], out)
			}
			if err != nil {
				failures.Add(1)
				t.Errorf("predict %q failed in flight: %v", model, err)
				return
			}
			graphsOK.Add(uint64(batch))
		}
	}
	feedbackClient := func(tr *Trainer) {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			gi := i % len(ds.Graphs)
			if err := tr.Feed(ds.Graphs[gi], ds.Labels[gi]); err != nil &&
				!errors.Is(err, ErrFeedbackBufferFull) && !errors.Is(err, ErrTrainerClosed) {
				failures.Add(1)
				t.Errorf("feedback failed: %v", err)
				return
			}
			if i%64 == 0 {
				time.Sleep(50 * time.Microsecond) // let the trainer drain
			}
		}
	}
	for _, model := range []string{"promo", "rollb"} {
		for _, batch := range []int{1, 1, 8} {
			wg.Add(1)
			go predictClient(model, batch)
		}
	}
	wg.Add(2)
	go feedbackClient(promoTr)
	go feedbackClient(rollbTr)

	// Watcher: end the soak once both verdicts have happened.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
			}
			if promoTr.Status().Promotions > 0 && rollbTr.Status().Rollbacks > 0 {
				halt()
				return
			}
		}
	}()
	wg.Wait()

	promoSt, rollbSt := promoTr.Status(), rollbTr.Status()
	promoM, _ := reg.model("promo")
	rollbM, _ := reg.model("rollb")
	reg.Close() // drains every admitted request and stops both trainers

	if failures.Load() != 0 {
		t.Fatalf("%d requests failed in flight during the online loop soak", failures.Load())
	}
	if promoSt.Promotions == 0 {
		t.Fatalf("promo trainer never promoted: %+v", promoSt)
	}
	if rollbSt.Rollbacks == 0 {
		t.Fatalf("rollb trainer never rolled back: %+v", rollbSt)
	}
	if rollbSt.Promotions != 0 {
		t.Fatalf("rollb trainer promoted a regressing candidate %d times", rollbSt.Promotions)
	}

	for _, m := range []*regModel{promoM, rollbM} {
		var accepted, processed, inflight uint64
		for _, rep := range m.replicas {
			em := rep.eng.Metrics()
			accepted += em.AcceptedGraphs
			processed += em.Processed
			inflight += em.InFlight
			if rep.inflight.Load() != 0 {
				t.Errorf("model %q replica %d placement counter %d at quiesce",
					m.name, rep.id, rep.inflight.Load())
			}
		}
		if accepted != processed || inflight != 0 {
			t.Fatalf("model %q did not quiesce clean: accepted %d, processed %d, inflight %d",
				m.name, accepted, processed, inflight)
		}
	}
	t.Logf("online loop soak: %d graphs answered; promo %d promotions (%d mirrored, %d agreed); rollb %d rollbacks; outcomes %q / %q",
		graphsOK.Load(), promoSt.Promotions, promoSt.ShadowMirrored, promoSt.ShadowAgreed,
		rollbSt.Rollbacks, promoSt.LastOutcome, rollbSt.LastOutcome)
}
