package serve

// The Trainer closes the train-serve loop the paper's cheap-training claim
// makes possible: labeled feedback from live traffic flows back into an
// int32-accumulator core.Model running beside the packed serving
// predictor, and validated snapshots of it roll out through the registry's
// existing hot swap. The pipeline per model is
//
//	POST /v1/models/{name}/feedback
//	   → bounded feedback buffer (reject with 429 when full, never block
//	     the request path)
//	   → trainer goroutine: every HoldoutEvery-th sample is diverted to a
//	     bounded holdout ring, the rest apply perceptron-style updates
//	     (core.Model.OnlineUpdate — encode, classify, Learn/Unlearn on
//	     mistakes; each corrective update bumps the model revision)
//	   → snapshot trigger (SnapshotEvery trained samples or
//	     SnapshotInterval): candidate = Model.Snapshot()
//	   → holdout validation (eval.Accuracy of candidate vs the serving
//	     predictor on the held-out slice): a candidate trailing by more
//	     than ValidationTolerance rolls back
//	   → shadow deploy: a shadowMirror is published on the regModel and
//	     the router mirrors a ShadowFraction sample of live predict
//	     traffic — after the primary answer, never on its critical path —
//	     through a dedicated candidate engine, recording agreement and
//	     per-stage latency into graphhd_shadow_* metrics and the flight
//	     recorder (the shadow engine is a real Engine, so its batches
//	     appear in /debug/traces under "name#shadow")
//	   → promote via Registry.Swap — the rolling walk, so in-flight
//	     requests never observe a mid-request model change — or roll back
//	     (agreement below ShadowMinAgreement), with the reason kept in
//	     TrainerStatus and surfaced at GET /v1/models and
//	     cmd/inspect -models.
//
// Single-writer discipline: only the trainer goroutine mutates the model.
// Feed is called from request handlers and only touches the buffered
// channel; status reads are atomics or mutex-guarded copies.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/eval"
	"graphhd/internal/graph"
)

var (
	// ErrNoTrainer means feedback was posted for a model with no online
	// trainer attached; the HTTP front end maps it to 404.
	ErrNoTrainer = errors.New("serve: model has no online trainer")
	// ErrFeedbackBufferFull means the bounded feedback buffer is at
	// capacity; the HTTP front end maps it to 429. Feedback is shed, the
	// predict path is untouched.
	ErrFeedbackBufferFull = errors.New("serve: feedback buffer full")
	// ErrTrainerClosed means the trainer has been detached or its
	// registry closed; mapped to 503.
	ErrTrainerClosed = errors.New("serve: trainer closed")
	// ErrTrainerExists means AttachTrainer was called for a model that
	// already has one.
	ErrTrainerExists = errors.New("serve: trainer already attached")
	// ErrBadFeedbackLabel means a feedback label is outside [0,k);
	// mapped to 400.
	ErrBadFeedbackLabel = errors.New("serve: feedback label out of range")
)

// TrainerOptions configures an online trainer. The zero value of any
// field selects its default.
type TrainerOptions struct {
	// BufferSize bounds the feedback channel between the HTTP handlers
	// and the trainer goroutine; a full buffer sheds with
	// ErrFeedbackBufferFull. Default 1024.
	BufferSize int
	// SnapshotEvery triggers candidate validation after this many trained
	// (non-holdout) samples. Default 256.
	SnapshotEvery int
	// SnapshotInterval additionally triggers validation on a timer,
	// catching trickle feedback that never reaches SnapshotEvery. Zero
	// disables the timer.
	SnapshotInterval time.Duration
	// HoldoutEvery diverts every Nth feedback sample into the holdout
	// ring instead of training on it, keeping validation data disjoint
	// from training data. Default 8.
	HoldoutEvery int
	// HoldoutCap bounds the holdout ring; once full, new holdout samples
	// overwrite the oldest. Default 256.
	HoldoutCap int
	// MinHoldout is the smallest holdout slice validation will run
	// against; snapshot triggers before that are deferred. Default 16.
	MinHoldout int
	// ValidationTolerance is how far the candidate's holdout accuracy may
	// trail the serving predictor's before the snapshot is rolled back.
	// Default 0.02.
	ValidationTolerance float64
	// ShadowFraction is the fraction of live predict traffic mirrored to
	// the candidate during the shadow phase, sampled per request after
	// the primary answer. Default 0.1; values outside (0,1] clamp to 1.
	ShadowFraction float64
	// ShadowMinSamples is how many mirrored graphs the shadow phase
	// tries to observe before deciding. Default 64.
	ShadowMinSamples int
	// ShadowWindow bounds the shadow phase; on timeout the decision is
	// made with whatever mirrored (possibly zero, promoting on the
	// holdout gate alone). Default 3s.
	ShadowWindow time.Duration
	// ShadowMinAgreement, when > 0, rolls the candidate back if its
	// agreement rate with the primary over the mirrored sample falls
	// below it (only once ShadowMinSamples were observed — a starved
	// window never fails this gate). Zero disables the gate: shadow
	// results stay observability-only.
	ShadowMinAgreement float64
}

func (o TrainerOptions) withDefaults() TrainerOptions {
	if o.BufferSize <= 0 {
		o.BufferSize = 1024
	}
	if o.SnapshotEvery <= 0 {
		o.SnapshotEvery = 256
	}
	if o.HoldoutEvery <= 0 {
		o.HoldoutEvery = 8
	}
	if o.HoldoutCap <= 0 {
		o.HoldoutCap = 256
	}
	if o.MinHoldout <= 0 {
		o.MinHoldout = 16
	}
	if o.ValidationTolerance == 0 {
		o.ValidationTolerance = 0.02
	}
	if o.ShadowFraction <= 0 || o.ShadowFraction > 1 {
		if o.ShadowFraction != 0 {
			o.ShadowFraction = 1
		} else {
			o.ShadowFraction = 0.1
		}
	}
	if o.ShadowMinSamples <= 0 {
		o.ShadowMinSamples = 64
	}
	if o.ShadowWindow <= 0 {
		o.ShadowWindow = 3 * time.Second
	}
	return o
}

// feedbackSample is one labeled graph in the feedback buffer.
type feedbackSample struct {
	g     *graph.Graph
	label int
}

// Trainer drains labeled feedback into a core.Model and rolls validated
// snapshots out through the registry. Create one with
// Registry.AttachTrainer; it is safe for concurrent use.
type Trainer struct {
	reg   *Registry
	name  string
	model *core.Model
	opts  TrainerOptions

	buf    chan feedbackSample
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool

	// Counters, all monotone: rendered as graphhd_feedback_* /
	// graphhd_trainer_* / graphhd_shadow_* families.
	ingested  atomic.Uint64 // samples accepted into the buffer
	dropped   atomic.Uint64 // samples shed by the full buffer
	trained   atomic.Uint64 // samples applied as perceptron updates
	updates   atomic.Uint64 // corrective updates among them
	snapshots atomic.Uint64 // candidate snapshots validated
	promoted  atomic.Uint64 // candidates promoted via rolling swap
	rolledX   atomic.Uint64 // candidates rolled back

	shadowMirrored  atomic.Uint64 // graphs replayed through shadow engines
	shadowAgreed    atomic.Uint64
	shadowDisagreed atomic.Uint64
	shadowDropped   atomic.Uint64 // mirror jobs shed by the full mirror queue
	shadowLatency   histogram     // per-mirror-batch replay latency, seconds

	holdoutLen atomic.Int64

	// trainer-goroutine-owned state
	holdout     []feedbackSample // ring of capacity HoldoutCap
	holdoutNext int              // ring write cursor
	seen        uint64           // total samples ingested (holdout cadence)
	sinceSnap   int              // trained samples since the last snapshot

	mu          sync.Mutex // guards the last-outcome fields below
	lastOutcome string
	lastWhen    time.Time
	lastCand    float64
	lastPrim    float64
	lastAgree   float64
	lastMirror  uint64
}

// AttachTrainer wires an online trainer to the named resident model. The
// model argument is the trainable int32-accumulator form (e.g. loaded
// from a GRAPHHD1 artifact) that candidate snapshots are taken from; its
// class count must match the serving predictor's. The trainer starts its
// goroutine immediately and stops when the model is evicted, the registry
// closes, or Close is called.
func (r *Registry) AttachTrainer(name string, model *core.Model, opts TrainerOptions) (*Trainer, error) {
	if model == nil {
		return nil, errors.New("serve: nil trainer model")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrRegistryClosed
	}
	m, ok := (*r.models.Load())[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrModelNotFound, name)
	}
	if m.trainer.Load() != nil {
		return nil, fmt.Errorf("%w: %q", ErrTrainerExists, name)
	}
	if k := m.pred.Load().NumClasses(); model.NumClasses() != k {
		return nil, fmt.Errorf("serve: trainer model has %d classes, serving model %q has %d",
			model.NumClasses(), name, k)
	}
	tr := &Trainer{
		reg:   r,
		name:  name,
		model: model,
		opts:  opts.withDefaults(),
		stop:  make(chan struct{}),
	}
	tr.buf = make(chan feedbackSample, tr.opts.BufferSize)
	tr.holdout = make([]feedbackSample, 0, tr.opts.HoldoutCap)
	tr.shadowLatency.init(powerBounds(16e-6, 16))
	m.trainer.Store(tr)
	tr.wg.Add(1)
	go tr.run()
	return tr, nil
}

// Trainer returns the online trainer attached to the named model, if any
// ("" is not resolved; callers go through Router.trainer for that).
func (r *Registry) Trainer(name string) (*Trainer, bool) {
	m, ok := r.model(name)
	if !ok {
		return nil, false
	}
	tr := m.trainer.Load()
	return tr, tr != nil
}

// NumClasses returns the label range the trainer accepts: [0, k).
func (tr *Trainer) NumClasses() int { return tr.model.NumClasses() }

// Model returns the trainable model feedback drains into.
func (tr *Trainer) Model() *core.Model { return tr.model }

// Options returns the trainer's resolved configuration — the options it
// was attached with, defaults applied.
func (tr *Trainer) Options() TrainerOptions { return tr.opts }

// Feed offers one labeled graph to the feedback buffer. It never blocks:
// a full buffer returns ErrFeedbackBufferFull (429), a closed trainer
// ErrTrainerClosed (503), a label outside [0,k) ErrBadFeedbackLabel
// (400). The graph must already be codec-validated; the trainer takes
// ownership of it.
func (tr *Trainer) Feed(g *graph.Graph, label int) error {
	if label < 0 || label >= tr.model.NumClasses() {
		return fmt.Errorf("%w: %d not in [0,%d)", ErrBadFeedbackLabel, label, tr.model.NumClasses())
	}
	if tr.closed.Load() {
		return ErrTrainerClosed
	}
	select {
	case tr.buf <- feedbackSample{g: g, label: label}:
		tr.ingested.Add(1)
		return nil
	default:
		tr.dropped.Add(1)
		return fmt.Errorf("%w: %d samples pending", ErrFeedbackBufferFull, len(tr.buf))
	}
}

// Close stops the trainer goroutine and detaches any active shadow
// mirror. Buffered feedback not yet drained is discarded. Idempotent.
func (tr *Trainer) Close() {
	if tr.closed.Swap(true) {
		return
	}
	close(tr.stop)
	tr.wg.Wait()
}

// run is the trainer goroutine: drain feedback, divert holdout, apply
// perceptron updates, and validate candidates on the snapshot triggers.
func (tr *Trainer) run() {
	defer tr.wg.Done()
	var tick <-chan time.Time
	if tr.opts.SnapshotInterval > 0 {
		t := time.NewTicker(tr.opts.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-tr.stop:
			return
		case s := <-tr.buf:
			tr.ingest(s)
			if tr.sinceSnap >= tr.opts.SnapshotEvery {
				tr.validateCandidate()
			}
		case <-tick:
			if tr.sinceSnap > 0 {
				tr.validateCandidate()
			}
		}
	}
}

// ingest routes one sample: every HoldoutEvery-th into the holdout ring,
// the rest through a perceptron update on the trainable model.
func (tr *Trainer) ingest(s feedbackSample) {
	tr.seen++
	if tr.seen%uint64(tr.opts.HoldoutEvery) == 0 {
		if len(tr.holdout) < cap(tr.holdout) {
			tr.holdout = append(tr.holdout, s)
		} else {
			tr.holdout[tr.holdoutNext] = s
			tr.holdoutNext = (tr.holdoutNext + 1) % cap(tr.holdout)
		}
		tr.holdoutLen.Store(int64(len(tr.holdout)))
		return
	}
	updated, err := tr.model.OnlineUpdate(s.g, s.label)
	if err != nil {
		// Labels were validated in Feed; an error here means a
		// graph/encoder mismatch. Count it as trained-and-dropped rather
		// than crash the loop.
		return
	}
	tr.trained.Add(1)
	if updated {
		tr.updates.Add(1)
	}
	tr.sinceSnap++
}

// validateCandidate runs the snapshot → holdout gate → shadow phase →
// promote/rollback sequence. It blocks the trainer loop for at most the
// holdout evaluation plus ShadowWindow; feedback keeps buffering
// meanwhile (awaitShadow drains training samples while it waits).
func (tr *Trainer) validateCandidate() {
	tr.sinceSnap = 0
	if len(tr.holdout) < tr.opts.MinHoldout {
		tr.outcome(fmt.Sprintf("deferred: holdout %d of %d", len(tr.holdout), tr.opts.MinHoldout), 0, 0, 0, 0)
		return
	}
	m, ok := tr.reg.model(tr.name)
	if !ok {
		return // evicted under us; Close follows
	}
	primary := m.pred.Load()
	candidate := tr.model.Snapshot()
	tr.snapshots.Add(1)

	hg := make([]*graph.Graph, len(tr.holdout))
	hy := make([]int, len(tr.holdout))
	for i, s := range tr.holdout {
		hg[i], hy[i] = s.g, s.label
	}
	candAcc := eval.Accuracy(candidate.PredictAll(hg), hy)
	primAcc := eval.Accuracy(primary.PredictAll(hg), hy)

	if candAcc+tr.opts.ValidationTolerance < primAcc {
		tr.rolledX.Add(1)
		tr.outcome(fmt.Sprintf("rolled back: holdout regression %.3f vs serving %.3f (tolerance %.3f)",
			candAcc, primAcc, tr.opts.ValidationTolerance), candAcc, primAcc, 0, 0)
		return
	}

	// Shadow phase: publish the mirror, let the router sample live
	// traffic through the candidate engine, and gather agreement.
	mirrored, agreed, disagreed := tr.shadowPhase(m, candidate)
	agreement := 1.0
	if n := agreed + disagreed; n > 0 {
		agreement = float64(agreed) / float64(n)
	}
	if tr.opts.ShadowMinAgreement > 0 &&
		mirrored >= uint64(tr.opts.ShadowMinSamples) &&
		agreement < tr.opts.ShadowMinAgreement {
		tr.rolledX.Add(1)
		tr.outcome(fmt.Sprintf("rolled back: shadow agreement %.3f below %.3f over %d mirrored",
			agreement, tr.opts.ShadowMinAgreement, mirrored), candAcc, primAcc, agreement, mirrored)
		return
	}

	// Promote. The candidate passes through the registry's PrepareModel
	// hook (so operator cascade config is re-applied, same as a file
	// load) and rolls across the replicas — never mid-flight.
	if prep := tr.reg.opts.PrepareModel; prep != nil {
		if err := prep(tr.name, candidate); err != nil {
			tr.rolledX.Add(1)
			tr.outcome("rolled back: prepare hook: "+err.Error(), candAcc, primAcc, agreement, mirrored)
			return
		}
	}
	if err := tr.reg.Swap(tr.name, candidate); err != nil {
		tr.rolledX.Add(1)
		tr.outcome("rolled back: swap: "+err.Error(), candAcc, primAcc, agreement, mirrored)
		return
	}
	tr.promoted.Add(1)
	tr.outcome(fmt.Sprintf("promoted: holdout %.3f vs %.3f, shadow agreement %.3f over %d mirrored (revision %d)",
		candAcc, primAcc, agreement, mirrored, candidate.Revision()), candAcc, primAcc, agreement, mirrored)
}

// shadowPhase publishes a mirror for candidate on m, waits for
// ShadowMinSamples mirrored graphs (bounded by ShadowWindow), then tears
// the mirror down and reports the window's counts.
func (tr *Trainer) shadowPhase(m *regModel, candidate *core.Predictor) (mirrored, agreed, disagreed uint64) {
	eo := tr.reg.opts.Engine
	eo.ModelName = tr.name + "#shadow"
	eo.Replica = 0
	eo.Workers = 1
	eng, err := NewEngine(candidate, eo)
	if err != nil {
		return 0, 0, 0
	}
	sh := newShadowMirror(tr, eng, tr.opts.ShadowFraction)
	m.shadow.Store(sh)
	defer func() {
		m.shadow.Store(nil)
		sh.close()
		mirrored, agreed, disagreed = sh.window()
	}()

	deadline := time.NewTimer(tr.opts.ShadowWindow)
	defer deadline.Stop()
	poll := time.NewTicker(time.Millisecond)
	defer poll.Stop()
	for {
		select {
		case <-tr.stop:
			return
		case <-deadline.C:
			return
		case s := <-tr.buf:
			// Keep draining feedback so the buffer doesn't shed while the
			// window is open; the candidate is already frozen.
			tr.ingest(s)
		case <-poll.C:
			if n, _, _ := sh.window(); n >= uint64(tr.opts.ShadowMinSamples) {
				return
			}
		}
	}
}

// outcome records the last validation verdict for status surfaces.
func (tr *Trainer) outcome(s string, cand, prim, agree float64, mirrored uint64) {
	tr.mu.Lock()
	tr.lastOutcome = s
	tr.lastWhen = time.Now()
	tr.lastCand, tr.lastPrim = cand, prim
	tr.lastAgree, tr.lastMirror = agree, mirrored
	tr.mu.Unlock()
}

// TrainerStatus is one trainer's row in GET /v1/models — the online
// learning loop's observable state, including the promote/rollback verdict
// of the last validated snapshot.
type TrainerStatus struct {
	Model     string `json:"model"`
	BufferLen int    `json:"buffer_len"`
	BufferCap int    `json:"buffer_cap"`
	Ingested  uint64 `json:"ingested"`
	Dropped   uint64 `json:"dropped"`
	Trained   uint64 `json:"trained"`
	Updates   uint64 `json:"updates"` // corrective perceptron updates
	Holdout   int    `json:"holdout"`
	// Revision is the live trainable model's online-update count;
	// ServingRevision is the revision stamped into the predictor
	// currently serving. A gap means updates not yet promoted.
	Revision        uint64 `json:"revision"`
	ServingRevision uint64 `json:"serving_revision"`
	Snapshots       uint64 `json:"snapshots"`
	Promotions      uint64 `json:"promotions"`
	Rollbacks       uint64 `json:"rollbacks"`
	ShadowMirrored  uint64 `json:"shadow_mirrored"`
	ShadowAgreed    uint64 `json:"shadow_agreed"`
	ShadowDisagreed uint64 `json:"shadow_disagreed"`
	ShadowDropped   uint64 `json:"shadow_dropped"`
	ShadowActive    bool   `json:"shadow_active"`
	// LastOutcome is the verdict of the most recent snapshot validation:
	// "promoted: ..." or "rolled back: <reason>" or "deferred: ...".
	LastOutcome         string    `json:"last_outcome,omitempty"`
	LastOutcomeTime     time.Time `json:"last_outcome_time,omitempty"`
	LastCandidateAcc    float64   `json:"last_candidate_acc,omitempty"`
	LastServingAcc      float64   `json:"last_serving_acc,omitempty"`
	LastShadowAgreement float64   `json:"last_shadow_agreement,omitempty"`
	LastShadowMirrored  uint64    `json:"last_shadow_mirrored,omitempty"`
}

// Status snapshots the trainer's observable state.
func (tr *Trainer) Status() TrainerStatus {
	st := TrainerStatus{
		Model:           tr.name,
		BufferLen:       len(tr.buf),
		BufferCap:       cap(tr.buf),
		Ingested:        tr.ingested.Load(),
		Dropped:         tr.dropped.Load(),
		Trained:         tr.trained.Load(),
		Updates:         tr.updates.Load(),
		Holdout:         int(tr.holdoutLen.Load()),
		Revision:        tr.model.Revision(),
		Snapshots:       tr.snapshots.Load(),
		Promotions:      tr.promoted.Load(),
		Rollbacks:       tr.rolledX.Load(),
		ShadowMirrored:  tr.shadowMirrored.Load(),
		ShadowAgreed:    tr.shadowAgreed.Load(),
		ShadowDisagreed: tr.shadowDisagreed.Load(),
		ShadowDropped:   tr.shadowDropped.Load(),
	}
	if m, ok := tr.reg.model(tr.name); ok {
		st.ServingRevision = m.pred.Load().Revision()
		st.ShadowActive = m.shadow.Load() != nil
	}
	tr.mu.Lock()
	st.LastOutcome = tr.lastOutcome
	st.LastOutcomeTime = tr.lastWhen
	st.LastCandidateAcc = tr.lastCand
	st.LastServingAcc = tr.lastPrim
	st.LastShadowAgreement = tr.lastAgree
	st.LastShadowMirrored = tr.lastMirror
	tr.mu.Unlock()
	return st
}

// TrainerStatuses snapshots every attached trainer, sorted by model name.
func (r *Registry) TrainerStatuses() []TrainerStatus {
	var out []TrainerStatus
	for _, m := range *r.models.Load() {
		if tr := m.trainer.Load(); tr != nil {
			out = append(out, tr.Status())
		}
	}
	sortTrainerStatuses(out)
	return out
}

func sortTrainerStatuses(s []TrainerStatus) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Model < s[j-1].Model; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// shadowJob is one mirrored unit of primary traffic: the graphs plus the
// classes the primary answered, compared against the candidate's answers.
type shadowJob struct {
	graphs  []*graph.Graph
	classes []int
}

// shadowMirror is the live sampling tap the router reads off the predict
// path while a candidate is in its shadow phase. offer is designed to be
// near-free for unsampled requests (one atomic load on the regModel, one
// random draw) and non-blocking always: a full mirror queue drops the
// job and counts it.
type shadowMirror struct {
	tr       *Trainer
	eng      *Engine
	fraction float64
	jobs     chan shadowJob
	done     chan struct{} // closed to stop the replay worker; jobs is
	// never closed — the router may still be offering concurrently with
	// teardown, and a send on a closed channel would panic. Late offers
	// land in the buffer and are dropped with it.
	wg sync.WaitGroup

	// window counts, reset never (one mirror per shadow phase)
	mirrored  atomic.Uint64
	agreed    atomic.Uint64
	disagreed atomic.Uint64
}

func newShadowMirror(tr *Trainer, eng *Engine, fraction float64) *shadowMirror {
	sh := &shadowMirror{tr: tr, eng: eng, fraction: fraction,
		jobs: make(chan shadowJob, 64), done: make(chan struct{})}
	sh.wg.Add(1)
	go sh.replay()
	return sh
}

// offer samples one answered primary request into the mirror queue.
// Called on the router's predict path after the primary response is
// determined; it must never block or fail the caller.
func (sh *shadowMirror) offer(graphs []*graph.Graph, classes []int) {
	if sh.fraction < 1 && rand.Float64() >= sh.fraction {
		return
	}
	job := shadowJob{
		graphs:  append([]*graph.Graph(nil), graphs...),
		classes: append([]int(nil), classes...),
	}
	select {
	case sh.jobs <- job:
	default:
		sh.tr.shadowDropped.Add(uint64(len(graphs)))
	}
}

// replay drives mirrored traffic through the candidate engine — the real
// serving path, so stage clocks tick and the flight recorder keeps
// records under the "#shadow" model name — and scores agreement against
// the primary's answers.
func (sh *shadowMirror) replay() {
	defer sh.wg.Done()
	ctx := context.Background()
	for {
		var job shadowJob
		select {
		case <-sh.done:
			return
		case job = <-sh.jobs:
		}
		out := make([]int, len(job.graphs))
		start := time.Now()
		err := sh.eng.PredictBatchInto(ctx, job.graphs, out)
		sh.tr.shadowLatency.observe(time.Since(start).Seconds())
		if err != nil {
			sh.tr.shadowDropped.Add(uint64(len(job.graphs)))
			continue
		}
		sh.mirrored.Add(uint64(len(job.graphs)))
		sh.tr.shadowMirrored.Add(uint64(len(job.graphs)))
		for i, c := range out {
			if c == job.classes[i] {
				sh.agreed.Add(1)
				sh.tr.shadowAgreed.Add(1)
			} else {
				sh.disagreed.Add(1)
				sh.tr.shadowDisagreed.Add(1)
			}
		}
	}
}

// window reports this mirror's counts.
func (sh *shadowMirror) window() (mirrored, agreed, disagreed uint64) {
	return sh.mirrored.Load(), sh.agreed.Load(), sh.disagreed.Load()
}

// close stops the replay worker and shuts the candidate engine down. The
// regModel's shadow pointer must already be cleared; offers racing with
// teardown land in the abandoned buffer.
func (sh *shadowMirror) close() {
	close(sh.done)
	sh.wg.Wait()
	sh.eng.Close()
}
