package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/graph"
)

// startTestServer stands up the full HTTP stack over a fresh engine.
func startTestServer(t *testing.T, pred *core.Predictor, opts HandlerOptions) (*httptest.Server, *Engine) {
	t.Helper()
	e, err := NewEngine(pred, Options{Workers: 2, MaxBatch: 8, MaxDelay: 100 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e, opts))
	t.Cleanup(func() { srv.Close(); e.Close() })
	return srv, e
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHTTPPredictMatchesOffline is the end-to-end acceptance test: train
// on a synthetic dataset, save the packed predictor, serve the saved
// artifact, and require single and batch predictions over the wire to be
// bit-identical to Predictor.PredictAll on the same graphs.
func TestHTTPPredictMatchesOffline(t *testing.T) {
	trained, ds := testModel(t, 2048, 1)
	path := filepath.Join(t.TempDir(), "model.ghdp")
	if err := trained.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	pred, err := core.LoadPredictorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := pred.PredictAll(ds.Graphs)
	srv, _ := startTestServer(t, pred, HandlerOptions{ClassNames: ds.ClassNames})

	for i, g := range ds.Graphs[:12] {
		resp, body := postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(g)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("graph %d: status %d: %s", i, resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Class != want[i] {
			t.Fatalf("graph %d: HTTP class %d, offline class %d", i, pr.Class, want[i])
		}
		if pr.ClassName != ds.ClassNames[pr.Class] {
			t.Fatalf("graph %d: class name %q, want %q", i, pr.ClassName, ds.ClassNames[pr.Class])
		}
	}

	wire := make([]*graph.GraphJSON, len(ds.Graphs))
	for i, g := range ds.Graphs {
		wire[i] = graph.ToJSON(g)
	}
	resp, body := postJSON(t, srv.URL+"/v1/predict/batch", PredictBatchRequest{Graphs: wire})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br PredictBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Classes) != len(want) {
		t.Fatalf("batch returned %d classes, want %d", len(br.Classes), len(want))
	}
	for i := range want {
		if br.Classes[i] != want[i] {
			t.Fatalf("batch graph %d: HTTP class %d, offline class %d", i, br.Classes[i], want[i])
		}
	}
}

func TestHTTPModelAndHealth(t *testing.T) {
	pred, _ := testModel(t, 2048, 1)
	srv, _ := startTestServer(t, pred, HandlerOptions{})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var info ModelInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Dimension != 2048 || info.Classes != pred.NumClasses() || info.MemoryBytes != pred.MemoryBytes() {
		t.Fatalf("model card %+v disagrees with predictor (d=2048, k=%d, %d bytes)",
			info, pred.NumClasses(), pred.MemoryBytes())
	}
	if info.Centrality != "pagerank" {
		t.Fatalf("model card centrality %q", info.Centrality)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	srv, _ := startTestServer(t, pred, HandlerOptions{})
	postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[0])})

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{"graphhd_requests_total 1", "graphhd_request_latency_seconds_count 1", "graphhd_model_classes"} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	pred, _ := testModel(t, 1024, 1)
	srv, _ := startTestServer(t, pred, HandlerOptions{Limits: graph.CodecLimits{MaxVertices: 50}})

	cases := []struct {
		name, path, body string
		status           int
	}{
		{"not json", "/v1/predict", "{", http.StatusBadRequest},
		{"missing graph", "/v1/predict", `{}`, http.StatusBadRequest},
		{"edge out of range", "/v1/predict", `{"graph":{"num_vertices":2,"edges":[[0,5]]}}`, http.StatusBadRequest},
		{"over vertex limit", "/v1/predict", `{"graph":{"num_vertices":100,"edges":[]}}`, http.StatusBadRequest},
		{"labels to unlabeled model", "/v1/predict", `{"graph":{"num_vertices":2,"edges":[[0,1]],"vertex_labels":[1,2]}}`, http.StatusBadRequest},
		{"bad batch element", "/v1/predict/batch", `{"graphs":[{"num_vertices":2,"edges":[[0,9]]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q is not an error JSON", tc.name, body)
		}
	}

	// Wrong method / unknown route.
	resp, err := http.Get(srv.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict: status %d, want 405", resp.StatusCode)
	}
}

// TestHTTPHotReload saves two different models to the same path and flips
// between them through POST /admin/reload while request goroutines stream
// predictions; the acceptance bar is zero failed in-flight requests, with
// every response valid under one of the two models.
func TestHTTPHotReload(t *testing.T) {
	predA, ds := testModel(t, 2048, 1)
	predB, _ := testModel(t, 1024, 99)
	wantA := predA.PredictAll(ds.Graphs)
	wantB := predB.PredictAll(ds.Graphs)

	path := filepath.Join(t.TempDir(), "model.ghdp")
	if err := predA.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	srv, e := startTestServer(t, predA, HandlerOptions{ModelPath: path})

	var wg sync.WaitGroup
	var failures atomic.Int64
	stop := make(chan struct{})
	const clients = 4
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (c + r) % len(ds.Graphs)
				resp, body := postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[i])})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("in-flight request failed during reload: %d %s", resp.StatusCode, body)
					failures.Add(1)
					return
				}
				var pr PredictResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					t.Error(err)
					failures.Add(1)
					return
				}
				if pr.Class != wantA[i] && pr.Class != wantB[i] {
					t.Errorf("graph %d: class %d matches neither model", i, pr.Class)
					failures.Add(1)
					return
				}
			}
		}(c)
	}

	// Alternate the artifact on disk and reload it over HTTP.
	for swap := 0; swap < 6; swap++ {
		p := predA
		if swap%2 == 0 {
			p = predB
		}
		if err := p.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, srv.URL+"/admin/reload", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", swap, resp.StatusCode, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d in-flight requests failed across hot reloads", failures.Load())
	}
	if got := e.Metrics().Reloads; got != 6 {
		t.Fatalf("reloads %d, want 6", got)
	}

	// The last reload (swap 5) installed predA; the model card must
	// reflect the final artifact.
	resp, err := http.Get(srv.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var info ModelInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Dimension != predA.Encoder().Dimension() {
		t.Fatalf("final model dimension %d, want %d", info.Dimension, predA.Encoder().Dimension())
	}
}

func TestHTTPReloadErrors(t *testing.T) {
	pred, _ := testModel(t, 1024, 1)
	srv, _ := startTestServer(t, pred, HandlerOptions{})
	resp, body := postJSON(t, srv.URL+"/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload without model path: status %d: %s", resp.StatusCode, body)
	}

	srv2, _ := startTestServer(t, pred, HandlerOptions{ModelPath: filepath.Join(t.TempDir(), "missing.ghdp")})
	resp, body = postJSON(t, srv2.URL+"/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of missing file: status %d: %s", resp.StatusCode, body)
	}
}

// TestHTTPOverloadMaps429 drives requests at an engine whose queue is
// pre-filled (unstarted worker pool) and checks the HTTP mapping.
func TestHTTPOverloadMaps429(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	e, err := newEngine(pred, Options{Workers: 1, QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(e, HandlerOptions{}))
	defer srv.Close()

	done := make(chan struct{})
	go func() { // occupies the single queue slot until the engine starts
		e.Predict(context.Background(), ds.Graphs[0])
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for e.depth.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[1])})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded predict: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	e.start()
	<-done
	e.Close()
}
