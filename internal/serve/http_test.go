package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/graph"
)

// testEngineOptions is the per-replica engine shape every HTTP test runs.
func testEngineOptions() Options {
	return Options{Workers: 2, MaxBatch: 8, MaxDelay: 100 * time.Microsecond}
}

// startTestStack stands up registry → router → HTTP over pred installed
// as the default model.
func startTestStack(t *testing.T, pred *core.Predictor, ropts RouterOptions, opts HandlerOptions) (*httptest.Server, *Router) {
	t.Helper()
	reg := NewRegistry(RegistryOptions{Engine: testEngineOptions()})
	if pred != nil {
		if err := reg.Load("default", pred); err != nil {
			t.Fatal(err)
		}
	}
	rt := NewRouter(reg, ropts)
	srv := httptest.NewServer(NewHandler(rt, opts))
	t.Cleanup(func() { srv.Close(); reg.Close() })
	return srv, rt
}

// startTestServer is the single-model shorthand, returning the default
// model's only replica engine for white-box assertions.
func startTestServer(t *testing.T, pred *core.Predictor, opts HandlerOptions) (*httptest.Server, *Engine) {
	t.Helper()
	srv, rt := startTestStack(t, pred, RouterOptions{}, opts)
	return srv, replicaEngine(t, rt, "default", 0)
}

// replicaEngine digs one replica's engine out of the registry.
func replicaEngine(t *testing.T, rt *Router, model string, rep int) *Engine {
	t.Helper()
	m, ok := rt.reg.model(model)
	if !ok {
		t.Fatalf("model %q not resident", model)
	}
	return m.replicas[rep].eng
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// TestHTTPPredictMatchesOffline is the end-to-end acceptance test: train
// on a synthetic dataset, save the packed predictor, serve the saved
// artifact, and require single and batch predictions over the wire to be
// bit-identical to Predictor.PredictAll on the same graphs.
func TestHTTPPredictMatchesOffline(t *testing.T) {
	trained, ds := testModel(t, 2048, 1)
	path := filepath.Join(t.TempDir(), "model.ghdp")
	if err := trained.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	pred, err := core.LoadPredictorFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := pred.PredictAll(ds.Graphs)
	srv, _ := startTestServer(t, pred, HandlerOptions{ClassNames: ds.ClassNames})

	for i, g := range ds.Graphs[:12] {
		resp, body := postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(g)})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("graph %d: status %d: %s", i, resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Class != want[i] {
			t.Fatalf("graph %d: HTTP class %d, offline class %d", i, pr.Class, want[i])
		}
		if pr.ClassName != ds.ClassNames[pr.Class] {
			t.Fatalf("graph %d: class name %q, want %q", i, pr.ClassName, ds.ClassNames[pr.Class])
		}
	}

	wire := make([]*graph.GraphJSON, len(ds.Graphs))
	for i, g := range ds.Graphs {
		wire[i] = graph.ToJSON(g)
	}
	resp, body := postJSON(t, srv.URL+"/v1/predict/batch", PredictBatchRequest{Graphs: wire})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: status %d: %s", resp.StatusCode, body)
	}
	var br PredictBatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Classes) != len(want) {
		t.Fatalf("batch returned %d classes, want %d", len(br.Classes), len(want))
	}
	for i := range want {
		if br.Classes[i] != want[i] {
			t.Fatalf("batch graph %d: HTTP class %d, offline class %d", i, br.Classes[i], want[i])
		}
	}
}

// TestHTTPModelRoutes serves two named models and requires the named
// routes to answer under the right model, unknown names to 404, the
// registry table to list both, and /admin/models to evict and re-load.
func TestHTTPModelRoutes(t *testing.T) {
	predA, ds := testModel(t, 2048, 1)
	predB, _ := testModel(t, 1024, 99)
	wantA := predA.PredictAll(ds.Graphs)
	wantB := predB.PredictAll(ds.Graphs)

	pathB := filepath.Join(t.TempDir(), "beta.ghdp")
	if err := predB.SaveFile(pathB); err != nil {
		t.Fatal(err)
	}

	srv, rt := startTestStack(t, predA, RouterOptions{}, HandlerOptions{})
	if err := rt.Registry().LoadFile("beta", pathB); err != nil {
		t.Fatal(err)
	}

	// Disagreeing graphs prove routing actually switches models; with
	// these tiny models at least one of 48 graphs disagrees in practice.
	for i := range ds.Graphs {
		resp, body := postJSON(t, srv.URL+"/v1/models/beta/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[i])})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("beta graph %d: status %d: %s", i, resp.StatusCode, body)
		}
		var pr PredictResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Class != wantB[i] {
			t.Fatalf("beta graph %d: class %d, want %d", i, pr.Class, wantB[i])
		}
	}
	resp, body := postJSON(t, srv.URL+"/v1/models/default/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[0])})
	var pr PredictResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || pr.Class != wantA[0] {
		t.Fatalf("default by name: status %d class %d, want 200 class %d", resp.StatusCode, pr.Class, wantA[0])
	}

	// Unknown model → 404, on both single and batch routes.
	resp, _ = postJSON(t, srv.URL+"/v1/models/nope/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[0])})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/models/nope/predict/batch", PredictBatchRequest{Graphs: []*graph.GraphJSON{graph.ToJSON(ds.Graphs[0])}})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown model batch: status %d, want 404", resp.StatusCode)
	}

	// Registry table lists both models.
	hresp, err := http.Get(srv.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var mr ModelsResponse
	err = json.NewDecoder(hresp.Body).Decode(&mr)
	hresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if mr.DefaultModel != "default" || len(mr.Registry.Models) != 2 {
		t.Fatalf("models response: default %q, %d models", mr.DefaultModel, len(mr.Registry.Models))
	}
	if mr.Registry.Models[0].Name != "beta" || mr.Registry.Models[1].Name != "default" {
		t.Fatalf("models not sorted by name: %q, %q", mr.Registry.Models[0].Name, mr.Registry.Models[1].Name)
	}
	if mr.Registry.Models[0].Dimension != 1024 {
		t.Fatalf("beta dimension %d, want 1024", mr.Registry.Models[0].Dimension)
	}

	// Evict beta over the admin endpoint; its routes go 404.
	resp, body = postJSON(t, srv.URL+"/admin/models", AdminModelRequest{Action: "evict", Name: "beta"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evict: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/models/beta/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[0])})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("evicted model: status %d, want 404", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/admin/models", AdminModelRequest{Action: "evict", Name: "beta"})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double evict: status %d, want 404", resp.StatusCode)
	}

	// Load it back; routes work again.
	resp, body = postJSON(t, srv.URL+"/admin/models", AdminModelRequest{Action: "load", Name: "beta", Path: pathB})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, srv.URL+"/v1/models/beta/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[0])})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-loaded model: status %d, want 200", resp.StatusCode)
	}

	// Per-model reload through the admin endpoint.
	resp, body = postJSON(t, srv.URL+"/admin/models", AdminModelRequest{Action: "reload", Name: "beta"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("admin reload: status %d: %s", resp.StatusCode, body)
	}

	// Bad admin requests.
	resp, _ = postJSON(t, srv.URL+"/admin/models", AdminModelRequest{Action: "load", Name: "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("load without path: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/admin/models", AdminModelRequest{Action: "frobnicate", Name: "x"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown action: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/admin/models", AdminModelRequest{Action: "evict"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("evict without name: status %d, want 400", resp.StatusCode)
	}
	resp, _ = postJSON(t, srv.URL+"/admin/models", AdminModelRequest{Action: "load", Name: "x", Path: filepath.Join(t.TempDir(), "missing.ghdp")})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("load missing artifact: status %d, want 500", resp.StatusCode)
	}
	rawResp, err := http.Post(srv.URL+"/admin/models", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	rawResp.Body.Close()
	if rawResp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed admin JSON: status %d, want 400", rawResp.StatusCode)
	}
}

// TestHTTPAdminLoadTooLarge maps ErrModelTooLarge to 507.
func TestHTTPAdminLoadTooLarge(t *testing.T) {
	small, _ := testModel(t, 1024, 1) // 256 bytes, fits
	big, _ := testModel(t, 4096, 2)  // 1024 bytes, over budget
	path := filepath.Join(t.TempDir(), "big.ghdp")
	if err := big.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(RegistryOptions{Engine: testEngineOptions(), MaxResidentBytes: 600})
	if err := reg.Load("default", small); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{})
	srv := httptest.NewServer(NewHandler(rt, HandlerOptions{}))
	t.Cleanup(func() { srv.Close(); reg.Close() })

	resp, body := postJSON(t, srv.URL+"/admin/models", AdminModelRequest{Action: "load", Name: "big", Path: path})
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-budget load: status %d, want 507 (%s)", resp.StatusCode, body)
	}
}

// TestHTTPQuota429 bounds a tenant at 4 in-flight graphs and requires a
// 5-graph batch to shed with 429 — without touching any engine queue —
// while another tenant's requests pass.
func TestHTTPQuota429(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	srv, rt := startTestStack(t, pred, RouterOptions{TenantQuota: 4}, HandlerOptions{})
	e := replicaEngine(t, rt, "default", 0)

	wire := make([]*graph.GraphJSON, 5)
	for i := range wire {
		wire[i] = graph.ToJSON(ds.Graphs[i])
	}
	data, _ := json.Marshal(PredictBatchRequest{Graphs: wire})
	req, _ := http.NewRequest("POST", srv.URL+"/v1/predict/batch", bytes.NewReader(data))
	req.Header.Set("X-Tenant", "noisy")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota batch: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	if got := e.Metrics().AcceptedGraphs; got != 0 {
		t.Fatalf("quota rejection reached the engine queue: %d graphs accepted", got)
	}

	// A different tenant (default, no header) is unaffected.
	resp2, body2 := postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[0])})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("other tenant: status %d: %s", resp2.StatusCode, body2)
	}

	ten := rt.Tenants()
	var noisy *TenantStatus
	for i := range ten {
		if ten[i].Tenant == "noisy" {
			noisy = &ten[i]
		}
	}
	if noisy == nil || noisy.Rejected != 1 {
		t.Fatalf("noisy tenant status %+v, want 1 rejection", noisy)
	}
}

func TestHTTPModelAndHealth(t *testing.T) {
	pred, _ := testModel(t, 2048, 1)
	srv, _ := startTestServer(t, pred, HandlerOptions{})

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
	if !strings.Contains(string(hbody), "models: 1") {
		t.Fatalf("healthz missing registry summary:\n%s", hbody)
	}

	resp, err = http.Get(srv.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var info ModelInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Dimension != 2048 || info.Classes != pred.NumClasses() || info.MemoryBytes != pred.MemoryBytes() {
		t.Fatalf("model card %+v disagrees with predictor (d=2048, k=%d, %d bytes)",
			info, pred.NumClasses(), pred.MemoryBytes())
	}
	if info.Centrality != "pagerank" {
		t.Fatalf("model card centrality %q", info.Centrality)
	}
	if info.Model != "default" || info.Version != 1 || info.Replicas != 1 {
		t.Fatalf("model card registry fields: %+v", info)
	}
	if info.ModelsResident != 1 || info.RegistryBytes != int64(pred.MemoryBytes()) {
		t.Fatalf("registry summary: %d models, %d bytes", info.ModelsResident, info.RegistryBytes)
	}
}

func TestHTTPMetricsEndpoint(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	srv, _ := startTestServer(t, pred, HandlerOptions{})
	postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[0])})

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	for _, want := range []string{
		`graphhd_requests_total{model="default",replica="0"} 1`,
		`graphhd_request_latency_seconds_count{model="default",replica="0"} 1`,
		`graphhd_model_classes{model="default"}`,
		`graphhd_models_resident 1`,
		`graphhd_quota_rejected_total{tenant="default"} 0`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestHTTPBadRequests(t *testing.T) {
	pred, _ := testModel(t, 1024, 1)
	srv, _ := startTestServer(t, pred, HandlerOptions{Limits: graph.CodecLimits{MaxVertices: 50}})

	cases := []struct {
		name, path, body string
		status           int
	}{
		{"not json", "/v1/predict", "{", http.StatusBadRequest},
		{"missing graph", "/v1/predict", `{}`, http.StatusBadRequest},
		{"edge out of range", "/v1/predict", `{"graph":{"num_vertices":2,"edges":[[0,5]]}}`, http.StatusBadRequest},
		{"over vertex limit", "/v1/predict", `{"graph":{"num_vertices":100,"edges":[]}}`, http.StatusBadRequest},
		{"labels to unlabeled model", "/v1/predict", `{"graph":{"num_vertices":2,"edges":[[0,1]],"vertex_labels":[1,2]}}`, http.StatusBadRequest},
		{"bad batch element", "/v1/predict/batch", `{"graphs":[{"num_vertices":2,"edges":[[0,9]]}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, err := http.Post(srv.URL+tc.path, "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var er errorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q is not an error JSON", tc.name, body)
		}
	}

	// Wrong method / unknown route.
	resp, err := http.Get(srv.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict: status %d, want 405", resp.StatusCode)
	}
}

// TestHTTPHotReload saves two different models to the same path and flips
// between them through POST /admin/reload while request goroutines stream
// predictions; the acceptance bar is zero failed in-flight requests, with
// every response valid under one of the two models.
func TestHTTPHotReload(t *testing.T) {
	predA, ds := testModel(t, 2048, 1)
	predB, _ := testModel(t, 1024, 99)
	wantA := predA.PredictAll(ds.Graphs)
	wantB := predB.PredictAll(ds.Graphs)

	path := filepath.Join(t.TempDir(), "model.ghdp")
	if err := predA.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(RegistryOptions{Engine: testEngineOptions()})
	if err := reg.LoadFile("default", path); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{})
	srv := httptest.NewServer(NewHandler(rt, HandlerOptions{}))
	t.Cleanup(func() { srv.Close(); reg.Close() })
	e := replicaEngine(t, rt, "default", 0)

	var wg sync.WaitGroup
	var failures atomic.Int64
	stop := make(chan struct{})
	const clients = 4
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			for r := 0; ; r++ {
				select {
				case <-stop:
					return
				default:
				}
				i := (c + r) % len(ds.Graphs)
				resp, body := postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[i])})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("in-flight request failed during reload: %d %s", resp.StatusCode, body)
					failures.Add(1)
					return
				}
				var pr PredictResponse
				if err := json.Unmarshal(body, &pr); err != nil {
					t.Error(err)
					failures.Add(1)
					return
				}
				if pr.Class != wantA[i] && pr.Class != wantB[i] {
					t.Errorf("graph %d: class %d matches neither model", i, pr.Class)
					failures.Add(1)
					return
				}
			}
		}(c)
	}

	// Alternate the artifact on disk and reload it over HTTP.
	for swap := 0; swap < 6; swap++ {
		p := predA
		if swap%2 == 0 {
			p = predB
		}
		if err := p.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		resp, body := postJSON(t, srv.URL+"/admin/reload", struct{}{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reload %d: status %d: %s", swap, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"reloaded":true`) {
			t.Fatalf("reload %d: body %s", swap, body)
		}
		time.Sleep(5 * time.Millisecond)
	}
	close(stop)
	wg.Wait()
	if failures.Load() != 0 {
		t.Fatalf("%d in-flight requests failed across hot reloads", failures.Load())
	}
	if got := e.Metrics().Reloads; got != 6 {
		t.Fatalf("reloads %d, want 6", got)
	}

	// The last reload (swap 5) installed predA; the model card must
	// reflect the final artifact, and the registry version the 6 swaps.
	resp, err := http.Get(srv.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	var info ModelInfo
	err = json.NewDecoder(resp.Body).Decode(&info)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if info.Dimension != predA.Encoder().Dimension() {
		t.Fatalf("final model dimension %d, want %d", info.Dimension, predA.Encoder().Dimension())
	}
	if info.Version != 7 || info.Reloads != 6 {
		t.Fatalf("version %d reloads %d, want 7 and 6", info.Version, info.Reloads)
	}
}

func TestHTTPReloadErrors(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	// Model loaded in-memory: nothing has an artifact path to reload.
	srv, _ := startTestServer(t, pred, HandlerOptions{})
	resp, body := postJSON(t, srv.URL+"/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("reload without model path: status %d: %s", resp.StatusCode, body)
	}

	// File-backed model whose artifact disappears: reload must fail 500
	// and leave the current model serving.
	path := filepath.Join(t.TempDir(), "model.ghdp")
	if err := pred.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(RegistryOptions{Engine: testEngineOptions()})
	if err := reg.LoadFile("default", path); err != nil {
		t.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{})
	srv2 := httptest.NewServer(NewHandler(rt, HandlerOptions{}))
	t.Cleanup(func() { srv2.Close(); reg.Close() })
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	resp, body = postJSON(t, srv2.URL+"/admin/reload", struct{}{})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of missing file: status %d: %s", resp.StatusCode, body)
	}
	resp, _ = postJSON(t, srv2.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[0])})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("model stopped serving after failed reload: status %d", resp.StatusCode)
	}
}

// TestHTTPOverloadMaps429 drives requests at a replica whose queue is
// pre-filled (unstarted worker pool) and checks the HTTP mapping.
func TestHTTPOverloadMaps429(t *testing.T) {
	pred, ds := testModel(t, 1024, 1)
	e, err := newEngine(pred, Options{Workers: 1, QueueSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := registryWithEngines(t, "default", pred, e)
	rt := NewRouter(reg, RouterOptions{})
	srv := httptest.NewServer(NewHandler(rt, HandlerOptions{}))
	defer srv.Close()

	done := make(chan struct{})
	go func() { // occupies the single queue slot until the engine starts
		e.Predict(context.Background(), ds.Graphs[0])
		close(done)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for e.depth.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	resp, body := postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[1])})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded predict: status %d, want 429 (%s)", resp.StatusCode, body)
	}
	e.start()
	<-done
	e.Close()

	// A closed replica maps to 503 Service Unavailable.
	resp, body = postJSON(t, srv.URL+"/v1/predict", PredictRequest{Graph: graph.ToJSON(ds.Graphs[1])})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("closed engine: status %d, want 503 (%s)", resp.StatusCode, body)
	}
}

// registryWithEngines hand-installs pre-built (possibly unstarted)
// engines as one model — the white-box seam for admission tests.
func registryWithEngines(t *testing.T, name string, pred *core.Predictor, engines ...*Engine) *Registry {
	t.Helper()
	reg := NewRegistry(RegistryOptions{Replicas: len(engines)})
	m := &regModel{name: name, bytes: int64(pred.MemoryBytes()), replicas: make([]*replica, len(engines))}
	m.pred.Store(pred)
	m.version.Store(1)
	for i, e := range engines {
		m.replicas[i] = &replica{id: i, eng: e}
	}
	reg.mu.Lock()
	reg.publish(func(tbl map[string]*regModel) { tbl[name] = m })
	reg.bytes.Add(m.bytes)
	reg.mu.Unlock()
	return reg
}
