package serve

// The Router is the placement and admission tier between transports and
// the registry's engine replicas. Per request it does three cheap things,
// in an order chosen so that rejected work never touches an engine queue:
//
//  1. Model lookup — lock-free through the registry's COW table
//     (ErrModelNotFound → 404); the empty model name selects the
//     configured default model, which is what keeps the original
//     single-model routes working unchanged.
//  2. Tenant admission — a CAS on the tenant's in-flight graph counter
//     against the quota. A rejection (ErrQuotaExceeded → 429) happens
//     before any replica is chosen, so a noisy tenant cannot consume
//     queue slots that belong to others.
//  3. Replica placement — power-of-two-choices on the per-replica
//     in-flight counters: sample two distinct replicas, route to the
//     less loaded, and if its bounded queue rejects with ErrOverloaded,
//     fall through to the second choice before giving up. With one or
//     two replicas this degenerates to exact least-in-flight.
//
// The hot path allocates nothing: tenant states live in a sync.Map keyed
// by name, counters are atomics, and the random choice uses the runtime's
// per-P generator via math/rand/v2.

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"

	"graphhd/internal/core"
	"graphhd/internal/graph"
)

// ErrQuotaExceeded means the tenant's in-flight graph quota is exhausted;
// the HTTP front end maps it to 429. Quota rejections happen before any
// engine queue is touched.
var ErrQuotaExceeded = errors.New("serve: tenant quota exceeded")

// DefaultTenant is the tenant requests without an X-Tenant header are
// accounted under.
const DefaultTenant = "default"

// RouterOptions configures a Router. The zero value of any field selects
// its default.
type RouterOptions struct {
	// DefaultModel is the model served by the unnamed routes
	// (/v1/predict and friends). Default "default".
	DefaultModel string
	// TenantQuota bounds each tenant's in-flight graphs across all
	// models; requests past it fail with ErrQuotaExceeded without
	// touching an engine queue. Zero means unlimited.
	TenantQuota int
}

// tenantState is one tenant's admission account.
type tenantState struct {
	name     string
	inflight atomic.Int64
	rejected atomic.Uint64
}

// Router fans requests across the registry's per-model engine replicas.
// Create one with NewRouter; it is safe for concurrent use.
type Router struct {
	reg     *Registry
	opts    RouterOptions
	tenants sync.Map // tenant name → *tenantState
}

// NewRouter builds a router over reg.
func NewRouter(reg *Registry, opts RouterOptions) *Router {
	if opts.DefaultModel == "" {
		opts.DefaultModel = "default"
	}
	rt := &Router{reg: reg, opts: opts}
	// Pre-create the default tenant so the quota metric family is never
	// empty.
	rt.tenant(DefaultTenant)
	return rt
}

// Registry returns the model store the router places onto.
func (rt *Router) Registry() *Registry { return rt.reg }

// DefaultModel returns the model name the unnamed routes serve.
func (rt *Router) DefaultModel() string { return rt.opts.DefaultModel }

// target resolves a request's model name ("" → default model).
func (rt *Router) target(model string) (*regModel, error) {
	if model == "" {
		model = rt.opts.DefaultModel
	}
	m, ok := rt.reg.model(model)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrModelNotFound, model)
	}
	return m, nil
}

// Predictor returns the named model's current snapshot ("" → default),
// for transports that validate payloads against the encoder config.
func (rt *Router) Predictor(model string) (*core.Predictor, error) {
	m, err := rt.target(model)
	if err != nil {
		return nil, err
	}
	return m.pred.Load(), nil
}

// tenant interns the tenant's admission state ("" → DefaultTenant).
func (rt *Router) tenant(name string) *tenantState {
	if name == "" {
		name = DefaultTenant
	}
	if ts, ok := rt.tenants.Load(name); ok {
		return ts.(*tenantState)
	}
	ts, _ := rt.tenants.LoadOrStore(name, &tenantState{name: name})
	return ts.(*tenantState)
}

// admit reserves n in-flight graphs against the tenant's quota, counting
// a rejection (and touching no queue) when they do not fit.
func (rt *Router) admit(tenant string, n int64) (*tenantState, error) {
	ts := rt.tenant(tenant)
	q := int64(rt.opts.TenantQuota)
	if q <= 0 {
		ts.inflight.Add(n)
		return ts, nil
	}
	for {
		cur := ts.inflight.Load()
		if cur+n > q {
			ts.rejected.Add(1)
			return nil, fmt.Errorf("%w: tenant %q has %d in flight of %d",
				ErrQuotaExceeded, ts.name, cur, q)
		}
		if ts.inflight.CompareAndSwap(cur, cur+n) {
			return ts, nil
		}
	}
}

// pick samples two distinct replicas and orders them by in-flight load —
// power-of-two-choices. second is nil when only one replica exists.
func pickReplicas(reps []*replica) (first, second *replica) {
	switch len(reps) {
	case 1:
		return reps[0], nil
	case 2:
		first, second = reps[0], reps[1]
	default:
		i := rand.IntN(len(reps))
		j := rand.IntN(len(reps) - 1)
		if j >= i {
			j++
		}
		first, second = reps[i], reps[j]
	}
	if second.inflight.Load() < first.inflight.Load() {
		first, second = second, first
	}
	return first, second
}

// Predict routes one graph for tenant to a replica of model ("" selects
// the default model) and returns its class. Overload on the chosen
// replica falls through to the second choice before surfacing
// ErrOverloaded.
func (rt *Router) Predict(ctx context.Context, tenant, model string, g *graph.Graph) (int, error) {
	m, err := rt.target(model)
	if err != nil {
		return 0, err
	}
	ts, err := rt.admit(tenant, 1)
	if err != nil {
		return 0, err
	}
	defer ts.inflight.Add(-1)
	first, second := pickReplicas(m.replicas)
	first.inflight.Add(1)
	class, err := first.eng.Predict(ctx, g)
	first.inflight.Add(-1)
	if err != nil && errors.Is(err, ErrOverloaded) && second != nil {
		second.inflight.Add(1)
		class, err = second.eng.Predict(ctx, g)
		second.inflight.Add(-1)
	}
	if err == nil {
		rt.mirror(m, g, class)
	}
	return class, err
}

// mirror offers one answered request to the model's shadow mirror, if a
// candidate is in its shadow phase. One atomic load when idle; sampling
// and the queue hand-off never block the caller — the primary response is
// already determined.
func (rt *Router) mirror(m *regModel, g *graph.Graph, class int) {
	if sh := m.shadow.Load(); sh != nil {
		sh.offer([]*graph.Graph{g}, []int{class})
	}
}

// PredictBatch routes a whole batch to one replica, returning one class
// per graph in order.
func (rt *Router) PredictBatch(ctx context.Context, tenant, model string, graphs []*graph.Graph) ([]int, error) {
	out := make([]int, len(graphs))
	if err := rt.PredictBatchInto(ctx, tenant, model, graphs, out); err != nil {
		return nil, err
	}
	return out, nil
}

// PredictBatchInto is PredictBatch writing into a caller-provided slice.
// The batch admits atomically against the tenant quota and lands on one
// replica so it is encoded through one shared operand plan.
func (rt *Router) PredictBatchInto(ctx context.Context, tenant, model string, graphs []*graph.Graph, out []int) error {
	m, err := rt.target(model)
	if err != nil {
		return err
	}
	n := int64(len(graphs))
	ts, err := rt.admit(tenant, n)
	if err != nil {
		return err
	}
	defer ts.inflight.Add(-n)
	first, second := pickReplicas(m.replicas)
	first.inflight.Add(n)
	err = first.eng.PredictBatchInto(ctx, graphs, out)
	first.inflight.Add(-n)
	if err != nil && errors.Is(err, ErrOverloaded) && second != nil {
		second.inflight.Add(n)
		err = second.eng.PredictBatchInto(ctx, graphs, out)
		second.inflight.Add(-n)
	}
	if err == nil {
		if sh := m.shadow.Load(); sh != nil {
			sh.offer(graphs, out)
		}
	}
	return err
}

// TenantStatus is one tenant's admission account snapshot.
type TenantStatus struct {
	Tenant   string `json:"tenant"`
	InFlight int64  `json:"in_flight"`
	Rejected uint64 `json:"rejected"`
}

// Tenants snapshots every tenant seen so far, sorted by name.
func (rt *Router) Tenants() []TenantStatus {
	var out []TenantStatus
	rt.tenants.Range(func(_, v any) bool {
		ts := v.(*tenantState)
		out = append(out, TenantStatus{
			Tenant:   ts.name,
			InFlight: ts.inflight.Load(),
			Rejected: ts.rejected.Load(),
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}
