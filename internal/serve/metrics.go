package serve

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"sync/atomic"
	"time"

	"graphhd/internal/hdc"
)

// metrics is the engine's internal instrumentation: plain atomics and
// fixed-bucket histograms, observed lock-free and allocation-free on the
// hot path. Snapshot them with Engine.Metrics; the HTTP front end renders
// them as Prometheus text exposition via WriteMetrics.
type metrics struct {
	requests  atomic.Uint64 // completed Predict/PredictBatch calls
	rejected  atomic.Uint64 // calls refused by admission control
	accepted  atomic.Uint64 // graphs admitted past admission control
	processed atomic.Uint64 // graphs classified
	reloads   atomic.Uint64 // successful model swaps

	// Cross-graph operand-plan effectiveness: planPairs counts edge
	// rank-pair instances encoded, planDistinct the deduplicated operands
	// actually materialized; their ratio is the basis-table traffic
	// amortization the batch pipeline achieved.
	planPairs    atomic.Uint64
	planDistinct atomic.Uint64

	// Cascade effectiveness: graphs decided at prefix width (stage 1)
	// versus escalated to full dimension. Both stay zero while the
	// installed model has no cascade configured.
	cascadeStage1    atomic.Uint64
	cascadeEscalated atomic.Uint64

	latency   histogram // per-call latency, seconds
	batchSize histogram // dispatched micro-batch sizes
}

func (m *metrics) init(maxBatch int) {
	// Latency buckets: 16 powers of two from 16µs to ~0.5s, a range that
	// spans a cache-hot single predict through a deeply queued burst.
	bounds := make([]float64, 16)
	b := 16e-6
	for i := range bounds {
		bounds[i] = b
		b *= 2
	}
	m.latency.init(bounds)

	// Batch-size buckets: powers of two up to MaxBatch.
	var sizes []float64
	for s := 1; s < maxBatch; s *= 2 {
		sizes = append(sizes, float64(s))
	}
	m.batchSize.init(append(sizes, float64(maxBatch)))
}

func (m *metrics) observeRequest(d time.Duration) {
	m.requests.Add(1)
	m.latency.observe(d.Seconds())
}

func (m *metrics) observeBatch(n int) {
	m.batchSize.observe(float64(n))
}

func (m *metrics) observePlan(pairs, distinct int) {
	m.planPairs.Add(uint64(pairs))
	m.planDistinct.Add(uint64(distinct))
}

func (m *metrics) observeCascade(stage1, escalated int) {
	m.cascadeStage1.Add(uint64(stage1))
	m.cascadeEscalated.Add(uint64(escalated))
}

// histogram is a fixed-bound Prometheus-style histogram. counts[i] holds
// observations ≤ bounds[i]; counts[len(bounds)] is the +Inf bucket. The
// sum is kept as float64 bits behind a CAS loop so observe stays
// allocation-free.
type histogram struct {
	bounds  []float64
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func (h *histogram) init(bounds []float64) {
	h.bounds = bounds
	h.counts = make([]atomic.Uint64, len(bounds)+1)
}

func (h *histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); the last entry is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Metrics is a point-in-time snapshot of the engine's instrumentation.
type Metrics struct {
	// Requests counts completed Predict/PredictBatch calls; Rejected counts
	// calls refused by admission control; Processed counts graphs
	// classified; Reloads counts successful model swaps.
	Requests, Rejected, Processed, Reloads uint64
	// AcceptedGraphs counts graphs admitted past admission control, at the
	// moment queue capacity was reserved. The conservation invariant
	// AcceptedGraphs == Processed + InFlight holds at every instant, and
	// AcceptedGraphs == Processed once the engine quiesces.
	AcceptedGraphs uint64
	// InFlight is the number of graphs admitted but not yet classified
	// (queued, being batched, or on a worker).
	InFlight uint64
	// PlanPairs counts edge rank-pair instances encoded by the batch
	// pipeline; PlanDistinct counts the deduplicated operands materialized
	// for them. PlanPairs/PlanDistinct is the cross-graph dedup factor.
	PlanPairs, PlanDistinct uint64
	// CascadeStage1 counts graphs decided at cascade prefix width;
	// CascadeEscalated counts graphs re-decided at full dimension.
	// CascadeStage1/(CascadeStage1+CascadeEscalated) is the stage-1 hit
	// rate. Both stay zero while no cascade is configured.
	CascadeStage1, CascadeEscalated uint64
	// QueueDepth is the number of graphs admitted but not yet dispatched.
	QueueDepth int
	// Latency is the per-call latency distribution in seconds; BatchSize
	// is the dispatched micro-batch size distribution.
	Latency, BatchSize HistogramSnapshot
}

// Reloads returns the number of successful model swaps without the cost
// of a full Metrics snapshot.
func (e *Engine) Reloads() uint64 { return e.m.reloads.Load() }

// Metrics snapshots the engine's counters and histograms.
func (e *Engine) Metrics() Metrics {
	// processed is loaded before accepted so the derived InFlight gauge
	// can never go negative under concurrent progress.
	processed := e.m.processed.Load()
	accepted := e.m.accepted.Load()
	return Metrics{
		Requests:         e.m.requests.Load(),
		Rejected:         e.m.rejected.Load(),
		Processed:        processed,
		Reloads:          e.m.reloads.Load(),
		AcceptedGraphs:   accepted,
		InFlight:         accepted - processed,
		PlanPairs:        e.m.planPairs.Load(),
		PlanDistinct:     e.m.planDistinct.Load(),
		CascadeStage1:    e.m.cascadeStage1.Load(),
		CascadeEscalated: e.m.cascadeEscalated.Load(),
		QueueDepth:       int(e.depth.Load()),
		Latency:          e.m.latency.snapshot(),
		BatchSize:        e.m.batchSize.snapshot(),
	}
}

// WriteMetrics renders a snapshot in Prometheus text exposition format
// (version 0.0.4), stdlib only. The model gauges describe the predictor
// currently installed.
func WriteMetrics(w io.Writer, m Metrics, pred interface {
	NumClasses() int
	MemoryBytes() int
	Dimension() int
}) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	counter := func(name, help string, v uint64) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("graphhd_requests_total", "Completed predict calls.", m.Requests)
	counter("graphhd_rejected_total", "Predict calls refused by admission control.", m.Rejected)
	counter("graphhd_graphs_accepted_total", "Graphs admitted past admission control.", m.AcceptedGraphs)
	counter("graphhd_graphs_processed_total", "Graphs classified.", m.Processed)
	counter("graphhd_model_reloads_total", "Successful hot model swaps.", m.Reloads)
	counter("graphhd_batch_plan_pairs_total", "Edge rank-pair instances encoded through batch operand plans.", m.PlanPairs)
	counter("graphhd_batch_plan_distinct_total", "Deduplicated operands materialized by batch operand plans.", m.PlanDistinct)
	counter("graphhd_cascade_stage1_total", "Graphs decided at cascade prefix width.", m.CascadeStage1)
	counter("graphhd_cascade_escalated_total", "Graphs escalated to full dimension by the cascade.", m.CascadeEscalated)
	p("# HELP graphhd_inflight_graphs Graphs admitted but not yet classified.\n# TYPE graphhd_inflight_graphs gauge\ngraphhd_inflight_graphs %d\n", m.InFlight)
	p("# HELP graphhd_queue_depth Graphs admitted but not yet dispatched.\n# TYPE graphhd_queue_depth gauge\ngraphhd_queue_depth %d\n", m.QueueDepth)
	if pred != nil {
		p("# HELP graphhd_model_classes Classes in the installed model.\n# TYPE graphhd_model_classes gauge\ngraphhd_model_classes %d\n", pred.NumClasses())
		p("# HELP graphhd_model_memory_bytes Packed class-vector bytes of the installed model.\n# TYPE graphhd_model_memory_bytes gauge\ngraphhd_model_memory_bytes %d\n", pred.MemoryBytes())
		p("# HELP graphhd_model_dimension Hypervector dimensionality of the installed model.\n# TYPE graphhd_model_dimension gauge\ngraphhd_model_dimension %d\n", pred.Dimension())
	}
	ks := hdc.Kernels()
	p("# HELP graphhd_kernel_info SIMD kernel tier serving the encode/query hot paths (info gauge; the value is always 1).\n# TYPE graphhd_kernel_info gauge\ngraphhd_kernel_info{tier=%q,features=%q} 1\n",
		ks.Active.String(), ks.CPUFeatures)
	writeHistogram(p, "graphhd_request_latency_seconds", "Per-call latency from admission to response.", m.Latency)
	writeHistogram(p, "graphhd_batch_size", "Dispatched micro-batch sizes.", m.BatchSize)
	return err
}

func writeHistogram(p func(string, ...any), name, help string, h HistogramSnapshot) {
	p("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		p("%s_bucket{le=%q} %d\n", name, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	if n := len(h.Counts); n > 0 {
		cum += h.Counts[n-1]
	}
	p("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	p("%s_sum %g\n%s_count %d\n", name, h.Sum, name, h.Count)
}
