package serve

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/hdc"
)

// metrics is the engine's internal instrumentation: plain atomics and
// fixed-bucket histograms, observed lock-free and allocation-free on the
// hot path. Snapshot them with Engine.Metrics; the HTTP front end renders
// them as Prometheus text exposition via WriteMetrics.
type metrics struct {
	requests  atomic.Uint64 // completed Predict/PredictBatch calls
	rejected  atomic.Uint64 // calls refused by admission control
	accepted  atomic.Uint64 // graphs admitted past admission control
	processed atomic.Uint64 // graphs classified
	reloads   atomic.Uint64 // successful model swaps

	// Cross-graph operand-plan effectiveness: planPairs counts edge
	// rank-pair instances encoded, planDistinct the deduplicated operands
	// actually materialized; their ratio is the basis-table traffic
	// amortization the batch pipeline achieved.
	planPairs    atomic.Uint64
	planDistinct atomic.Uint64

	// Cascade effectiveness: graphs decided at prefix width (stage 1)
	// versus escalated to full dimension. Both stay zero while the
	// installed model has no cascade configured.
	cascadeStage1    atomic.Uint64
	cascadeEscalated atomic.Uint64

	latency   histogram // per-call latency, seconds
	batchSize histogram // dispatched micro-batch sizes

	// Stage clock: where a dispatched batch's microseconds go. queueWait
	// is observed per task at dispatcher pickup; the stage histograms are
	// observed per batch from the worker's core.BatchTrace readout.
	queueWait     histogram
	stagePlan     histogram
	stageEncode   histogram
	stageClassify histogram
	stageEscalate histogram
}

// powerBounds returns n power-of-two bucket bounds starting at lo.
func powerBounds(lo float64, n int) []float64 {
	bounds := make([]float64, n)
	for i := range bounds {
		bounds[i] = lo
		lo *= 2
	}
	return bounds
}

func (m *metrics) init(maxBatch int) {
	// Latency buckets: 16 powers of two from 16µs to ~0.5s, a range that
	// spans a cache-hot single predict through a deeply queued burst.
	m.latency.init(powerBounds(16e-6, 16))

	// Batch-size buckets: powers of two up to MaxBatch.
	var sizes []float64
	for s := 1; s < maxBatch; s *= 2 {
		sizes = append(sizes, float64(s))
	}
	m.batchSize.init(append(sizes, float64(maxBatch)))

	// Stage buckets: 16 powers of two from 250ns to ~8ms. The floor
	// resolves a cache-hot classify pass (a few µs per batch); the
	// ceiling covers a worst-case escalation-heavy burst.
	for _, h := range []*histogram{
		&m.queueWait, &m.stagePlan, &m.stageEncode, &m.stageClassify, &m.stageEscalate,
	} {
		h.init(powerBounds(250e-9, 16))
	}
}

func (m *metrics) observeRequest(d time.Duration) {
	m.requests.Add(1)
	m.latency.observe(d.Seconds())
}

func (m *metrics) observeBatch(n int) {
	m.batchSize.observe(float64(n))
}

func (m *metrics) observePlan(pairs, distinct int) {
	m.planPairs.Add(uint64(pairs))
	m.planDistinct.Add(uint64(distinct))
}

func (m *metrics) observeCascade(stage1, escalated int) {
	m.cascadeStage1.Add(uint64(stage1))
	m.cascadeEscalated.Add(uint64(escalated))
}

// observeStages feeds one batch's stage-clock readout into the per-stage
// histograms. The escalate stage is only meaningful when a cascade ran;
// recording it unconditionally would drown the signal in zeros.
func (m *metrics) observeStages(tr *core.BatchTrace, cascading bool) {
	m.stagePlan.observe(float64(tr.PlanNanos) * 1e-9)
	m.stageEncode.observe(float64(tr.EncodeNanos) * 1e-9)
	m.stageClassify.observe(float64(tr.ClassifyNanos) * 1e-9)
	if cascading {
		m.stageEscalate.observe(float64(tr.EscalateNanos) * 1e-9)
	}
}

// atomicAddFloat64 adds v to a float64 kept as bits in an atomic.Uint64
// — the allocation-free sum accumulator shared by every histogram.
func atomicAddFloat64(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// histogram is a fixed-bound Prometheus-style histogram. counts[i] holds
// observations ≤ bounds[i]; counts[len(bounds)] is the +Inf bucket. The
// sum is kept as float64 bits behind atomicAddFloat64 so observe stays
// allocation-free.
type histogram struct {
	bounds  []float64
	b16     *[16]float64 // set when len(bounds) == 16: branch-free search
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func (h *histogram) init(bounds []float64) {
	h.bounds = bounds
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	if len(bounds) == 16 {
		h.b16 = (*[16]float64)(bounds)
	}
}

// b2i is compiled to a flag-set instruction, not a branch.
func b2i(c bool) int {
	if c {
		return 1
	}
	return 0
}

// bucket returns the index of the bucket v lands in. Sorted bounds make
// the index just the count of bounds v exceeds, so the 16-bucket case —
// every per-request-path histogram — runs unrolled and branch-free
// instead of taking a data-dependent early exit the branch predictor
// can't learn across mixed-latency traffic.
func (h *histogram) bucket(v float64) int {
	if b := h.b16; b != nil {
		return b2i(v > b[0]) + b2i(v > b[1]) + b2i(v > b[2]) + b2i(v > b[3]) +
			b2i(v > b[4]) + b2i(v > b[5]) + b2i(v > b[6]) + b2i(v > b[7]) +
			b2i(v > b[8]) + b2i(v > b[9]) + b2i(v > b[10]) + b2i(v > b[11]) +
			b2i(v > b[12]) + b2i(v > b[13]) + b2i(v > b[14]) + b2i(v > b[15])
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	return i
}

func (h *histogram) observe(v float64) {
	h.counts[h.bucket(v)].Add(1)
	h.count.Add(1)
	atomicAddFloat64(&h.sumBits, v)
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative); the last entry is the +Inf bucket.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Count  uint64
	Sum    float64
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucketed
// distribution by linear interpolation inside the target bucket — the
// same estimate Prometheus's histogram_quantile computes. The first
// bucket interpolates from zero; a target in the +Inf bucket returns the
// highest finite bound. NaN when the histogram is empty. CI stamps the
// stage-histogram medians into BENCH artifacts through this.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	rank := q * float64(s.Count)
	cum := uint64(0)
	for i, c := range s.Counts {
		if float64(cum+c) < rank {
			cum += c
			continue
		}
		if i >= len(s.Bounds) { // +Inf bucket: no upper bound to interpolate to
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if c == 0 {
			return s.Bounds[i]
		}
		return lo + (s.Bounds[i]-lo)*(rank-float64(cum))/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Metrics is a point-in-time snapshot of the engine's instrumentation.
type Metrics struct {
	// Requests counts completed Predict/PredictBatch calls; Rejected counts
	// calls refused by admission control; Processed counts graphs
	// classified; Reloads counts successful model swaps.
	Requests, Rejected, Processed, Reloads uint64
	// AcceptedGraphs counts graphs admitted past admission control, at the
	// moment queue capacity was reserved. The conservation invariant
	// AcceptedGraphs == Processed + InFlight holds at every instant, and
	// AcceptedGraphs == Processed once the engine quiesces.
	AcceptedGraphs uint64
	// InFlight is the number of graphs admitted but not yet classified
	// (queued, being batched, or on a worker).
	InFlight uint64
	// PlanPairs counts edge rank-pair instances encoded by the batch
	// pipeline; PlanDistinct counts the deduplicated operands materialized
	// for them. PlanPairs/PlanDistinct is the cross-graph dedup factor.
	PlanPairs, PlanDistinct uint64
	// CascadeStage1 counts graphs decided at cascade prefix width;
	// CascadeEscalated counts graphs re-decided at full dimension.
	// CascadeStage1/(CascadeStage1+CascadeEscalated) is the stage-1 hit
	// rate. Both stay zero while no cascade is configured.
	CascadeStage1, CascadeEscalated uint64
	// QueueDepth is the number of graphs admitted but not yet dispatched.
	QueueDepth int
	// Latency is the per-call latency distribution in seconds; BatchSize
	// is the dispatched micro-batch size distribution.
	Latency, BatchSize HistogramSnapshot
	// QueueWait is the per-task admission-queue wait (queue-enter to
	// dispatcher pickup), seconds.
	QueueWait HistogramSnapshot
	// StagePlan/StageEncode/StageClassify/StageEscalate are the per-batch
	// stage-clock distributions in seconds: operand-plan construction,
	// accumulate+sign, Hamming classification, and the cascade's
	// full-width escalation work (observed only while a cascade is
	// active). Together with QueueWait they attribute every microsecond
	// of a request's life inside the engine.
	StagePlan, StageEncode, StageClassify, StageEscalate HistogramSnapshot
}

// Reloads returns the number of successful model swaps without the cost
// of a full Metrics snapshot.
func (e *Engine) Reloads() uint64 { return e.m.reloads.Load() }

// Metrics snapshots the engine's counters and histograms.
func (e *Engine) Metrics() Metrics {
	// processed is loaded before accepted so the derived InFlight gauge
	// can never go negative under concurrent progress.
	processed := e.m.processed.Load()
	accepted := e.m.accepted.Load()
	return Metrics{
		Requests:         e.m.requests.Load(),
		Rejected:         e.m.rejected.Load(),
		Processed:        processed,
		Reloads:          e.m.reloads.Load(),
		AcceptedGraphs:   accepted,
		InFlight:         accepted - processed,
		PlanPairs:        e.m.planPairs.Load(),
		PlanDistinct:     e.m.planDistinct.Load(),
		CascadeStage1:    e.m.cascadeStage1.Load(),
		CascadeEscalated: e.m.cascadeEscalated.Load(),
		QueueDepth:       int(e.depth.Load()),
		Latency:          e.m.latency.snapshot(),
		BatchSize:        e.m.batchSize.snapshot(),
		QueueWait:        e.m.queueWait.snapshot(),
		StagePlan:        e.m.stagePlan.snapshot(),
		StageEncode:      e.m.stageEncode.snapshot(),
		StageClassify:    e.m.stageClassify.snapshot(),
		StageEscalate:    e.m.stageEscalate.snapshot(),
	}
}

// WriteMetrics renders a snapshot in Prometheus text exposition format
// (version 0.0.4), stdlib only. The model gauges describe the predictor
// currently installed.
func WriteMetrics(w io.Writer, m Metrics, pred interface {
	NumClasses() int
	MemoryBytes() int
	Dimension() int
}) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	counter := func(name, help string, v uint64) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("graphhd_requests_total", "Completed predict calls.", m.Requests)
	counter("graphhd_rejected_total", "Predict calls refused by admission control.", m.Rejected)
	counter("graphhd_graphs_accepted_total", "Graphs admitted past admission control.", m.AcceptedGraphs)
	counter("graphhd_graphs_processed_total", "Graphs classified.", m.Processed)
	counter("graphhd_model_reloads_total", "Successful hot model swaps.", m.Reloads)
	counter("graphhd_batch_plan_pairs_total", "Edge rank-pair instances encoded through batch operand plans.", m.PlanPairs)
	counter("graphhd_batch_plan_distinct_total", "Deduplicated operands materialized by batch operand plans.", m.PlanDistinct)
	counter("graphhd_cascade_stage1_total", "Graphs decided at cascade prefix width.", m.CascadeStage1)
	counter("graphhd_cascade_escalated_total", "Graphs escalated to full dimension by the cascade.", m.CascadeEscalated)
	p("# HELP graphhd_inflight_graphs Graphs admitted but not yet classified.\n# TYPE graphhd_inflight_graphs gauge\ngraphhd_inflight_graphs %d\n", m.InFlight)
	p("# HELP graphhd_queue_depth Graphs admitted but not yet dispatched.\n# TYPE graphhd_queue_depth gauge\ngraphhd_queue_depth %d\n", m.QueueDepth)
	if pred != nil {
		p("# HELP graphhd_model_classes Classes in the installed model.\n# TYPE graphhd_model_classes gauge\ngraphhd_model_classes %d\n", pred.NumClasses())
		p("# HELP graphhd_model_memory_bytes Packed class-vector bytes of the installed model.\n# TYPE graphhd_model_memory_bytes gauge\ngraphhd_model_memory_bytes %d\n", pred.MemoryBytes())
		p("# HELP graphhd_model_dimension Hypervector dimensionality of the installed model.\n# TYPE graphhd_model_dimension gauge\ngraphhd_model_dimension %d\n", pred.Dimension())
	}
	writeProcessGauges(p)

	writeHistogram(p, "graphhd_request_latency_seconds", "Per-call latency from admission to response.", "", m.Latency)
	writeHistogram(p, "graphhd_batch_size", "Dispatched micro-batch sizes.", "", m.BatchSize)
	writeHistogram(p, "graphhd_queue_wait_seconds", "Per-task admission-queue wait, queue-enter to dispatcher pickup.", "", m.QueueWait)

	// One family, one series per pipeline stage: where a dispatched
	// batch's wall time goes.
	p("# HELP graphhd_stage_seconds Per-batch wall time by pipeline stage.\n# TYPE graphhd_stage_seconds histogram\n")
	for _, st := range []struct {
		label string
		h     HistogramSnapshot
	}{
		{"plan", m.StagePlan},
		{"encode", m.StageEncode},
		{"classify", m.StageClassify},
		{"escalate", m.StageEscalate},
	} {
		writeHistogramSeries(p, "graphhd_stage_seconds", `stage="`+st.label+`"`, st.h)
	}
	return err
}

// writeProcessGauges renders the process-wide identity and Go-runtime
// families shared by the single-engine and router expositions. These are
// per-process facts, so they stay unlabeled even in multi-model
// deployments.
func writeProcessGauges(p func(string, ...any)) {
	ks := hdc.Kernels()
	p("# HELP graphhd_kernel_info SIMD kernel tier serving the encode/query hot paths (info gauge; the value is always 1).\n# TYPE graphhd_kernel_info gauge\ngraphhd_kernel_info{tier=%q,features=%q} 1\n",
		ks.Active.String(), ks.CPUFeatures)
	bi := Build()
	p("# HELP graphhd_build_info Build identity of the serving binary (info gauge; the value is always 1).\n# TYPE graphhd_build_info gauge\ngraphhd_build_info{go_version=%q,vcs_revision=%q} 1\n",
		bi.GoVersion, bi.VCSRevision)

	// Go runtime health, scraped alongside the engine counters so a GC
	// or goroutine-leak regression correlates with the latency
	// histograms on the same timeline. ReadMemStats briefly stops the
	// world; at scrape cadence that is noise.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	p("# HELP graphhd_go_goroutines Goroutines in the serving process.\n# TYPE graphhd_go_goroutines gauge\ngraphhd_go_goroutines %d\n", runtime.NumGoroutine())
	p("# HELP graphhd_go_heap_alloc_bytes Live heap bytes.\n# TYPE graphhd_go_heap_alloc_bytes gauge\ngraphhd_go_heap_alloc_bytes %d\n", ms.HeapAlloc)
	p("# HELP graphhd_go_gc_cycles_total Completed GC cycles.\n# TYPE graphhd_go_gc_cycles_total counter\ngraphhd_go_gc_cycles_total %d\n", ms.NumGC)
	p("# HELP graphhd_go_gc_pause_seconds_total Cumulative GC stop-the-world pause time.\n# TYPE graphhd_go_gc_pause_seconds_total counter\ngraphhd_go_gc_pause_seconds_total %g\n", float64(ms.PauseTotalNs)*1e-9)
}

// WriteRouterMetrics renders the multi-model deployment in Prometheus
// text exposition format: registry residency and tenant-quota families,
// every engine counter and histogram labeled {model,replica}, per-model
// gauges labeled {model}, and the unlabeled process families. Families
// are emitted family-major (all series of a family contiguous under one
// HELP/TYPE header), which is what the text exposition contract — and
// the strict parser in the tests — requires.
func WriteRouterMetrics(w io.Writer, rt *Router) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	// Snapshot everything first so each family can be written
	// contiguously: one Metrics snapshot per replica, in (model name,
	// replica id) order.
	type slot struct {
		labels string
		m      Metrics
	}
	table := *rt.reg.models.Load()
	names := make([]string, 0, len(table))
	for name := range table {
		names = append(names, name)
	}
	sort.Strings(names)
	var slots []slot
	for _, name := range names {
		for _, rep := range table[name].replicas {
			slots = append(slots, slot{
				labels: fmt.Sprintf("model=%q,replica=\"%d\"", name, rep.id),
				m:      rep.eng.Metrics(),
			})
		}
	}
	tenants := rt.Tenants()

	// Registry residency.
	p("# HELP graphhd_models_resident Named models resident in the registry.\n# TYPE graphhd_models_resident gauge\ngraphhd_models_resident %d\n", len(names))
	p("# HELP graphhd_registry_bytes Summed packed footprint of resident models.\n# TYPE graphhd_registry_bytes gauge\ngraphhd_registry_bytes %d\n", rt.reg.Bytes())
	p("# HELP graphhd_registry_evictions_total Models evicted by the resident-bytes bound.\n# TYPE graphhd_registry_evictions_total counter\ngraphhd_registry_evictions_total %d\n", rt.reg.Evictions())

	// Tenant admission.
	p("# HELP graphhd_quota_rejected_total Requests refused by the per-tenant in-flight quota.\n# TYPE graphhd_quota_rejected_total counter\n")
	for _, t := range tenants {
		p("graphhd_quota_rejected_total{tenant=%q} %d\n", t.Tenant, t.Rejected)
	}
	p("# HELP graphhd_tenant_inflight_graphs Graphs in flight per tenant.\n# TYPE graphhd_tenant_inflight_graphs gauge\n")
	for _, t := range tenants {
		p("graphhd_tenant_inflight_graphs{tenant=%q} %d\n", t.Tenant, t.InFlight)
	}

	// Engine counters, one series per (model, replica).
	counter := func(name, help string, get func(*Metrics) uint64) {
		p("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for i := range slots {
			p("%s{%s} %d\n", name, slots[i].labels, get(&slots[i].m))
		}
	}
	counter("graphhd_requests_total", "Completed predict calls.", func(m *Metrics) uint64 { return m.Requests })
	counter("graphhd_rejected_total", "Predict calls refused by admission control.", func(m *Metrics) uint64 { return m.Rejected })
	counter("graphhd_graphs_accepted_total", "Graphs admitted past admission control.", func(m *Metrics) uint64 { return m.AcceptedGraphs })
	counter("graphhd_graphs_processed_total", "Graphs classified.", func(m *Metrics) uint64 { return m.Processed })
	counter("graphhd_model_reloads_total", "Successful hot model swaps.", func(m *Metrics) uint64 { return m.Reloads })
	counter("graphhd_batch_plan_pairs_total", "Edge rank-pair instances encoded through batch operand plans.", func(m *Metrics) uint64 { return m.PlanPairs })
	counter("graphhd_batch_plan_distinct_total", "Deduplicated operands materialized by batch operand plans.", func(m *Metrics) uint64 { return m.PlanDistinct })
	counter("graphhd_cascade_stage1_total", "Graphs decided at cascade prefix width.", func(m *Metrics) uint64 { return m.CascadeStage1 })
	counter("graphhd_cascade_escalated_total", "Graphs escalated to full dimension by the cascade.", func(m *Metrics) uint64 { return m.CascadeEscalated })

	// Engine gauges, one series per (model, replica).
	p("# HELP graphhd_inflight_graphs Graphs admitted but not yet classified.\n# TYPE graphhd_inflight_graphs gauge\n")
	for i := range slots {
		p("graphhd_inflight_graphs{%s} %d\n", slots[i].labels, slots[i].m.InFlight)
	}
	p("# HELP graphhd_queue_depth Graphs admitted but not yet dispatched.\n# TYPE graphhd_queue_depth gauge\n")
	for i := range slots {
		p("graphhd_queue_depth{%s} %d\n", slots[i].labels, slots[i].m.QueueDepth)
	}

	// Model cards, one series per model.
	modelGauge := func(name, help string, get func(*regModel) int64) {
		p("# HELP %s %s\n# TYPE %s gauge\n", name, help, name)
		for _, n := range names {
			p("%s{model=%q} %d\n", name, n, get(table[n]))
		}
	}
	modelGauge("graphhd_model_classes", "Classes in the installed model.",
		func(m *regModel) int64 { return int64(m.pred.Load().NumClasses()) })
	modelGauge("graphhd_model_memory_bytes", "Packed class-vector bytes of the installed model.",
		func(m *regModel) int64 { return int64(m.pred.Load().MemoryBytes()) })
	modelGauge("graphhd_model_dimension", "Hypervector dimensionality of the installed model.",
		func(m *regModel) int64 { return int64(m.pred.Load().Dimension()) })
	modelGauge("graphhd_model_version", "Registry version of the installed model (bumps on every rolling swap).",
		func(m *regModel) int64 { return int64(m.version.Load()) })
	modelGauge("graphhd_model_revision", "Online-update revision stamped into the serving predictor.",
		func(m *regModel) int64 { return int64(m.pred.Load().Revision()) })

	// Online-learning families, one series per model with a trainer
	// attached. Snapshot first (name order follows names) so each family
	// is contiguous.
	type trainerSlot struct {
		name string
		tr   *Trainer
	}
	var trainers []trainerSlot
	for _, n := range names {
		if tr := table[n].trainer.Load(); tr != nil {
			trainers = append(trainers, trainerSlot{n, tr})
		}
	}
	// The strict exposition contract forbids a declared family with zero
	// series, so every trainer family is emitted only when a trainer
	// exists.
	trainerCounter := func(name, help string, get func(*Trainer) uint64) {
		if len(trainers) == 0 {
			return
		}
		p("# HELP %s %s\n# TYPE %s counter\n", name, help, name)
		for _, t := range trainers {
			p("%s{model=%q} %d\n", name, t.name, get(t.tr))
		}
	}
	trainerCounter("graphhd_feedback_ingested_total", "Labeled feedback samples accepted into the trainer buffer.",
		func(t *Trainer) uint64 { return t.ingested.Load() })
	trainerCounter("graphhd_feedback_dropped_total", "Labeled feedback samples shed by the full trainer buffer.",
		func(t *Trainer) uint64 { return t.dropped.Load() })
	trainerCounter("graphhd_trainer_updates_total", "Corrective perceptron updates applied by the online trainer.",
		func(t *Trainer) uint64 { return t.updates.Load() })
	trainerCounter("graphhd_trainer_snapshots_total", "Candidate snapshots taken and validated by the online trainer.",
		func(t *Trainer) uint64 { return t.snapshots.Load() })
	trainerCounter("graphhd_trainer_promotions_total", "Validated candidates promoted via rolling swap.",
		func(t *Trainer) uint64 { return t.promoted.Load() })
	trainerCounter("graphhd_trainer_rollbacks_total", "Candidates rolled back by holdout or shadow gates.",
		func(t *Trainer) uint64 { return t.rolledX.Load() })
	trainerCounter("graphhd_shadow_mirrored_total", "Live graphs mirrored through shadow candidate engines.",
		func(t *Trainer) uint64 { return t.shadowMirrored.Load() })
	trainerCounter("graphhd_shadow_agreed_total", "Mirrored graphs where the candidate agreed with the primary.",
		func(t *Trainer) uint64 { return t.shadowAgreed.Load() })
	trainerCounter("graphhd_shadow_disagreed_total", "Mirrored graphs where the candidate disagreed with the primary.",
		func(t *Trainer) uint64 { return t.shadowDisagreed.Load() })
	trainerCounter("graphhd_shadow_dropped_total", "Mirror jobs shed by the full shadow queue or a failed replay.",
		func(t *Trainer) uint64 { return t.shadowDropped.Load() })
	if len(trainers) > 0 {
		p("# HELP graphhd_trainer_buffer_len Feedback samples buffered, awaiting the trainer goroutine.\n# TYPE graphhd_trainer_buffer_len gauge\n")
		for _, t := range trainers {
			p("graphhd_trainer_buffer_len{model=%q} %d\n", t.name, len(t.tr.buf))
		}
		p("# HELP graphhd_trainer_model_revision Online-update revision of the live trainable model.\n# TYPE graphhd_trainer_model_revision gauge\n")
		for _, t := range trainers {
			p("graphhd_trainer_model_revision{model=%q} %d\n", t.name, t.tr.model.Revision())
		}
	}

	writeProcessGauges(p)

	// Histograms, one series set per (model, replica).
	hist := func(name, help string, get func(*Metrics) HistogramSnapshot) {
		p("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
		for i := range slots {
			writeHistogramSeries(p, name, slots[i].labels, get(&slots[i].m))
		}
	}
	hist("graphhd_request_latency_seconds", "Per-call latency from admission to response.", func(m *Metrics) HistogramSnapshot { return m.Latency })
	hist("graphhd_batch_size", "Dispatched micro-batch sizes.", func(m *Metrics) HistogramSnapshot { return m.BatchSize })
	hist("graphhd_queue_wait_seconds", "Per-task admission-queue wait, queue-enter to dispatcher pickup.", func(m *Metrics) HistogramSnapshot { return m.QueueWait })

	if len(trainers) > 0 {
		p("# HELP graphhd_shadow_latency_seconds Per-mirror-batch replay latency through shadow candidate engines.\n# TYPE graphhd_shadow_latency_seconds histogram\n")
		for _, t := range trainers {
			writeHistogramSeries(p, "graphhd_shadow_latency_seconds",
				fmt.Sprintf("model=%q", t.name), t.tr.shadowLatency.snapshot())
		}
	}

	p("# HELP graphhd_stage_seconds Per-batch wall time by pipeline stage.\n# TYPE graphhd_stage_seconds histogram\n")
	for i := range slots {
		for _, st := range []struct {
			label string
			h     HistogramSnapshot
		}{
			{"plan", slots[i].m.StagePlan},
			{"encode", slots[i].m.StageEncode},
			{"classify", slots[i].m.StageClassify},
			{"escalate", slots[i].m.StageEscalate},
		} {
			writeHistogramSeries(p, "graphhd_stage_seconds", slots[i].labels+`,stage="`+st.label+`"`, st.h)
		}
	}
	return err
}

// writeHistogram renders one single-series histogram family: HELP/TYPE
// header plus its bucket/sum/count series. labels, when non-empty, is a
// preformatted `k="v"` list applied to every series.
func writeHistogram(p func(string, ...any), name, help, labels string, h HistogramSnapshot) {
	p("# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	writeHistogramSeries(p, name, labels, h)
}

// writeHistogramSeries renders the bucket/sum/count series of one
// histogram under an already-written family header — the shared tail of
// plain and labeled (per-stage) families. Buckets are cumulative with a
// final +Inf bucket equal to the total count, per the text exposition
// contract.
func writeHistogramSeries(p func(string, ...any), name, labels string, h HistogramSnapshot) {
	sep := ""
	if labels != "" {
		sep = labels + ","
	}
	cum := uint64(0)
	for i, b := range h.Bounds {
		cum += h.Counts[i]
		p("%s_bucket{%sle=%q} %d\n", name, sep, strconv.FormatFloat(b, 'g', -1, 64), cum)
	}
	if n := len(h.Counts); n > 0 {
		cum += h.Counts[n-1]
	}
	p("%s_bucket{%sle=\"+Inf\"} %d\n", name, sep, cum)
	if labels != "" {
		labels = "{" + labels + "}"
	}
	p("%s_sum%s %g\n%s_count%s %d\n", name, labels, h.Sum, name, labels, h.Count)
}
