package serve

import (
	"errors"
	"path/filepath"
	"testing"
)

// regOptions is the small-engine registry shape the unit tests use.
func regOptions() RegistryOptions {
	return RegistryOptions{Engine: Options{Workers: 1}}
}

// TestRegistryLoadEvictList covers the table basics: load, lookup,
// byte accounting, listing via Status, evict, and the error surface.
func TestRegistryLoadEvictList(t *testing.T) {
	predA, _ := testModel(t, 1024, 1) // 2 classes → 256 packed bytes
	predB, _ := testModel(t, 2048, 2) // 512 packed bytes
	reg := NewRegistry(regOptions())
	defer reg.Close()

	if err := reg.Load("alpha", predA); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("beta", predB); err != nil {
		t.Fatal(err)
	}
	if reg.Len() != 2 {
		t.Fatalf("Len = %d, want 2", reg.Len())
	}
	if want := int64(predA.MemoryBytes() + predB.MemoryBytes()); reg.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", reg.Bytes(), want)
	}
	if _, ok := reg.model("alpha"); !ok {
		t.Fatal("alpha not resident after Load")
	}
	if _, ok := reg.model("gamma"); ok {
		t.Fatal("lookup of unknown model succeeded")
	}

	st := reg.Status()
	if len(st.Models) != 2 || st.Models[0].Name != "alpha" || st.Models[1].Name != "beta" {
		t.Fatalf("Status models %+v, want [alpha beta]", st.Models)
	}
	if st.Models[0].Version != 1 || st.Models[0].Dimension != 1024 {
		t.Fatalf("alpha status %+v", st.Models[0])
	}
	if st.ReplicasPerModel != 1 || len(st.Models[0].Replicas) != 1 {
		t.Fatalf("replica shape: %d per model, %d on alpha", st.ReplicasPerModel, len(st.Models[0].Replicas))
	}

	if err := reg.Evict("alpha"); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.model("alpha"); ok {
		t.Fatal("alpha resident after Evict")
	}
	if want := int64(predB.MemoryBytes()); reg.Bytes() != want {
		t.Fatalf("Bytes after evict = %d, want %d", reg.Bytes(), want)
	}
	if err := reg.Evict("alpha"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("double evict: %v, want ErrModelNotFound", err)
	}
	// Explicit evicts are not budget evictions.
	if reg.Evictions() != 0 {
		t.Fatalf("Evictions = %d after explicit Evict, want 0", reg.Evictions())
	}

	// Name and argument validation.
	if err := reg.Load("", predA); err == nil {
		t.Fatal("empty model name accepted")
	}
	if err := reg.Load("has space", predA); err == nil {
		t.Fatal("model name with space accepted")
	}
	if err := reg.Load("ok", nil); err == nil {
		t.Fatal("nil predictor accepted")
	}
	if err := reg.Swap("gamma", predA); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("swap of unknown model: %v, want ErrModelNotFound", err)
	}

	// A closed registry rejects mutations; Close is idempotent.
	reg.Close()
	reg.Close()
	if err := reg.Load("late", predA); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("load after close: %v, want ErrRegistryClosed", err)
	}
	if err := reg.Swap("beta", predA); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("swap after close: %v, want ErrRegistryClosed", err)
	}
	if reg.Len() != 0 {
		t.Fatalf("Len after close = %d, want 0", reg.Len())
	}
}

// TestRegistryErrorSurface covers the remaining argument and lifecycle
// errors: Options round-trip, nil/oversized swaps, and mutations against
// a closed registry.
func TestRegistryErrorSurface(t *testing.T) {
	small, _ := testModel(t, 1024, 1) // 256 bytes
	big, _ := testModel(t, 2048, 2)  // 512 bytes
	opts := regOptions()
	opts.MaxResidentBytes = 300
	reg := NewRegistry(opts)
	defer reg.Close()

	if got := reg.Options(); got.MaxResidentBytes != 300 || got.Replicas != 1 {
		t.Fatalf("Options round-trip: %+v", got)
	}
	if err := reg.Load("m", small); err != nil {
		t.Fatal(err)
	}
	if err := reg.Swap("m", nil); err == nil {
		t.Fatal("swap to nil predictor accepted")
	}
	if err := reg.Swap("m", big); !errors.Is(err, ErrModelTooLarge) {
		t.Fatalf("oversized swap: %v, want ErrModelTooLarge", err)
	}
	if v, _ := reg.model("m"); v.version.Load() != 1 {
		t.Fatal("refused swap bumped the version")
	}

	reg.Close()
	if err := reg.Evict("m"); !errors.Is(err, ErrRegistryClosed) {
		t.Fatalf("evict after close: %v, want ErrRegistryClosed", err)
	}
}

// TestRegistryLRUEviction proves the memory bound: loading past
// MaxResidentBytes evicts the least-recently-used model (a lookup
// refreshes recency), the byte and eviction counters account for it, and
// a model that alone exceeds the bound is refused outright.
func TestRegistryLRUEviction(t *testing.T) {
	predA, _ := testModel(t, 1024, 1) // 256 bytes each
	predB, _ := testModel(t, 1024, 2)
	predC, _ := testModel(t, 1024, 3)
	opts := regOptions()
	opts.MaxResidentBytes = 600
	reg := NewRegistry(opts)
	defer reg.Close()

	if err := reg.Load("a", predA); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("b", predB); err != nil {
		t.Fatal(err)
	}
	// Touch "a" so "b" is the LRU when "c" needs room.
	if _, ok := reg.model("a"); !ok {
		t.Fatal("a not resident")
	}
	if err := reg.Load("c", predC); err != nil {
		t.Fatal(err)
	}
	if _, ok := reg.model("b"); ok {
		t.Fatal("LRU model b survived an over-budget load")
	}
	if _, ok := reg.model("a"); !ok {
		t.Fatal("recently used model a was evicted")
	}
	if _, ok := reg.model("c"); !ok {
		t.Fatal("newly loaded model c not resident")
	}
	if reg.Evictions() != 1 {
		t.Fatalf("Evictions = %d, want 1", reg.Evictions())
	}
	if want := int64(2 * predA.MemoryBytes()); reg.Bytes() != want {
		t.Fatalf("Bytes = %d, want %d", reg.Bytes(), want)
	}

	// One model bigger than the whole budget can never fit.
	big, _ := testModel(t, 4096, 4) // 1024 bytes > 600
	if err := reg.Load("big", big); !errors.Is(err, ErrModelTooLarge) {
		t.Fatalf("oversized load: %v, want ErrModelTooLarge", err)
	}
	if reg.Len() != 2 {
		t.Fatalf("refused load changed residency: %d models", reg.Len())
	}
}

// TestRegistryRollingSwap walks a 3-replica model through rolling swaps
// and checks the version front, the per-replica reload counters, and that
// every replica serves the new predictor afterwards — including a
// dimension change, which forces worker scratch re-binding.
func TestRegistryRollingSwap(t *testing.T) {
	predA, _ := testModel(t, 1024, 1)
	predB, _ := testModel(t, 512, 2)
	opts := regOptions()
	opts.Replicas = 3
	reg := NewRegistry(opts)
	defer reg.Close()

	if err := reg.Load("m", predA); err != nil {
		t.Fatal(err)
	}
	m, _ := reg.model("m")
	if len(m.replicas) != 3 {
		t.Fatalf("replicas = %d, want 3", len(m.replicas))
	}
	if err := reg.Swap("m", predB); err != nil {
		t.Fatal(err)
	}
	if got := m.version.Load(); got != 2 {
		t.Fatalf("version = %d after swap, want 2", got)
	}
	for _, rep := range m.replicas {
		if rep.eng.Predictor() != predB {
			t.Fatalf("replica %d still serves the old predictor", rep.id)
		}
		if got := rep.eng.Reloads(); got != 1 {
			t.Fatalf("replica %d reloads = %d, want 1", rep.id, got)
		}
	}
	// Byte accounting follows the swap (512-bit model is half the size).
	if want := int64(predB.MemoryBytes()); reg.Bytes() != want {
		t.Fatalf("Bytes after swap = %d, want %d", reg.Bytes(), want)
	}

	// Loading under an existing name is the same rolling replace.
	if err := reg.Load("m", predA); err != nil {
		t.Fatal(err)
	}
	if got := m.version.Load(); got != 3 {
		t.Fatalf("version = %d after replacing load, want 3", got)
	}
	if m2, _ := reg.model("m"); m2 != m {
		t.Fatal("replacing load rebuilt the model entry instead of swapping")
	}
}

// TestRegistryLoadFileAndReload covers the artifact path: LoadFile
// remembers the path, Reload re-reads it and bumps the version, and
// ReloadAll skips in-memory models while reporting the reload count.
func TestRegistryLoadFileAndReload(t *testing.T) {
	predA, _ := testModel(t, 1024, 1)
	predB, _ := testModel(t, 2048, 2)
	path := filepath.Join(t.TempDir(), "m.ghdp")
	if err := predA.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry(regOptions())
	defer reg.Close()
	if err := reg.LoadFile("disk", path); err != nil {
		t.Fatal(err)
	}
	if err := reg.Load("mem", predB); err != nil {
		t.Fatal(err)
	}
	if err := reg.LoadFile("disk", filepath.Join(t.TempDir(), "missing.ghdp")); err == nil {
		t.Fatal("LoadFile of missing artifact succeeded")
	}

	// Write a new artifact and reload: version bumps, dimension follows.
	if err := predB.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	n, err := reg.ReloadAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ReloadAll reloaded %d models, want 1 (mem has no path)", n)
	}
	st := reg.Status()
	for _, ms := range st.Models {
		if ms.Name == "disk" {
			if ms.Version != 2 || ms.Dimension != 2048 {
				t.Fatalf("disk after reload: %+v", ms)
			}
		}
	}
	if err := reg.Reload("mem"); err == nil {
		t.Fatal("Reload of in-memory model succeeded")
	}
	if err := reg.Reload("nope"); !errors.Is(err, ErrModelNotFound) {
		t.Fatalf("Reload of unknown model: %v, want ErrModelNotFound", err)
	}
}
