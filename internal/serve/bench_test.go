package serve

import (
	"context"
	"testing"
	"time"

	"graphhd/internal/core"
	"graphhd/internal/dataset"
)

// The serving benchmarks run at paper scale (d = 10,000) on a synthetic
// MUTAG model; the ROADMAP server-side baseline quotes these numbers.

// BenchmarkServePredict measures the steady-state single-request path
// through the full engine — admission, micro-batching, worker encode +
// classify, completion signal — from one client goroutine. The interesting
// number besides ns/op is allocs/op: the engine itself must add zero.
func BenchmarkServePredict(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	cfg := core.DefaultConfig()
	m, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	pred := m.Snapshot()
	e, err := NewEngine(pred, Options{Workers: 2, MaxBatch: 16, MaxDelay: 50 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	g := ds.Graphs[0]
	ctx := context.Background()
	if _, err := e.Predict(ctx, g); err != nil { // warm scratches and pools
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Predict(ctx, g); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServePredictParallel is the throughput shape: many client
// goroutines keep the queue busy, so the dispatcher forms real batches
// and all workers stay hot.
func BenchmarkServePredictParallel(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	cfg := core.DefaultConfig()
	m, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	pred := m.Snapshot()
	e, err := NewEngine(pred, Options{MaxBatch: 64, MaxDelay: 200 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	if _, err := e.Predict(ctx, ds.Graphs[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := e.Predict(ctx, ds.Graphs[i%len(ds.Graphs)]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
}

// BenchmarkServePredictBatch measures the amortized per-graph cost of the
// batch endpoint's engine path (one call, 32 graphs).
func BenchmarkServePredictBatch(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	cfg := core.DefaultConfig()
	m, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	pred := m.Snapshot()
	e, err := NewEngine(pred, Options{MaxBatch: 64, MaxDelay: 200 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	graphs := ds.Graphs[:32]
	out := make([]int, len(graphs))
	if err := e.PredictBatchInto(ctx, graphs, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.PredictBatchInto(ctx, graphs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportStageMedians(b, e.Metrics(), false)
}

// reportStageMedians stamps the per-batch stage-clock medians into the
// benchmark output; CI carries them into the BENCH artifact via
// cmd/benchjson, so a perf regression names its stage instead of hiding
// in the aggregate ns/op.
func reportStageMedians(b *testing.B, m Metrics, cascading bool) {
	b.ReportMetric(m.StagePlan.Quantile(0.5)*1e9, "plan-p50-ns")
	b.ReportMetric(m.StageEncode.Quantile(0.5)*1e9, "encode-p50-ns")
	b.ReportMetric(m.StageClassify.Quantile(0.5)*1e9, "classify-p50-ns")
	if cascading {
		b.ReportMetric(m.StageEscalate.Quantile(0.5)*1e9, "escalate-p50-ns")
	}
}

// BenchmarkRouterPredictBatch is BenchmarkServePredictBatch through the
// full registry→router path (model lookup, tenant admission, replica
// placement) with one model and one replica — the same 32-graph workload,
// so the delta between the two benchmarks in one run is the router's
// added overhead. The acceptance bound is ≤10% over the direct engine
// path.
func BenchmarkRouterPredictBatch(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	cfg := core.DefaultConfig()
	m, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	pred := m.Snapshot()
	reg := NewRegistry(RegistryOptions{Engine: Options{MaxBatch: 64, MaxDelay: 200 * time.Microsecond}})
	defer reg.Close()
	if err := reg.Load("default", pred); err != nil {
		b.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{})
	ctx := context.Background()
	graphs := ds.Graphs[:32]
	out := make([]int, len(graphs))
	if err := rt.PredictBatchInto(ctx, DefaultTenant, "", graphs, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.PredictBatchInto(ctx, DefaultTenant, "", graphs, out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRouterPredictBatchShadow is BenchmarkRouterPredictBatch with
// a shadow mirror live in its production shape — the default sampling
// fraction (0.1) and the single-worker candidate engine shadowPhase
// deploys. The delta against BenchmarkRouterPredictBatch in the same
// run is the mirroring overhead on the primary path; the acceptance
// bound is ≤5% on p50. The offer itself is a slice copy plus a
// non-blocking channel send — the replay runs on the candidate
// engine's own worker and never blocks the primary, so the residual
// overhead is CPU contention proportional to the sampled fraction.
func BenchmarkRouterPredictBatchShadow(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	cfg := core.DefaultConfig()
	m, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	pred := m.Snapshot()
	reg := NewRegistry(RegistryOptions{Engine: Options{MaxBatch: 64, MaxDelay: 200 * time.Microsecond}})
	defer reg.Close()
	if err := reg.Load("default", pred); err != nil {
		b.Fatal(err)
	}
	rt := NewRouter(reg, RouterOptions{})
	rm, ok := reg.model("default")
	if !ok {
		b.Fatal("default model not resident")
	}
	// Goroutine-less trainer shell: the mirror only needs its counters
	// and latency histogram, not the training loop.
	tr := &Trainer{reg: reg, name: "default", model: m, opts: TrainerOptions{}.withDefaults(),
		buf: make(chan feedbackSample, 1), stop: make(chan struct{})}
	tr.shadowLatency.init(powerBounds(16e-6, 16))
	cand, err := NewEngine(m.Snapshot(), Options{Workers: 1, MaxBatch: 64, MaxDelay: 200 * time.Microsecond, ModelName: "default#shadow"})
	if err != nil {
		b.Fatal(err)
	}
	sh := newShadowMirror(tr, cand, tr.opts.ShadowFraction)
	rm.shadow.Store(sh)
	ctx := context.Background()
	graphs := ds.Graphs[:32]
	out := make([]int, len(graphs))
	if err := rt.PredictBatchInto(ctx, DefaultTenant, "", graphs, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.PredictBatchInto(ctx, DefaultTenant, "", graphs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	// Tear the mirror down before reading counters: close drains the
	// replay worker, so mirrored+dropped accounts for every offer.
	rm.shadow.Store(nil)
	sh.close()
	offered := tr.shadowMirrored.Load() + tr.shadowDropped.Load()
	b.ReportMetric(float64(offered)/float64(b.N*len(graphs)), "mirror-offer-rate")
}

// BenchmarkTrainerIngest measures the trainer's per-sample drain cost —
// encode, classify, and the corrective perceptron update when the model
// disagrees with the label — by calling the goroutine-owned ingest step
// directly. This is the ceiling on sustainable feedback throughput per
// trainer (one sample per op; every HoldoutEvery-th diverts to the
// holdout ring instead, as in production).
func BenchmarkTrainerIngest(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	cfg := core.DefaultConfig()
	m, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	tr := &Trainer{model: m, opts: TrainerOptions{SnapshotEvery: 1 << 30}.withDefaults(),
		buf: make(chan feedbackSample, 1), stop: make(chan struct{})}
	tr.holdout = make([]feedbackSample, 0, tr.opts.HoldoutCap)
	tr.ingest(feedbackSample{g: ds.Graphs[0], label: ds.Labels[0]})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := i % len(ds.Graphs)
		tr.ingest(feedbackSample{g: ds.Graphs[j], label: ds.Labels[j]})
	}
}

// BenchmarkServePredictCascade is BenchmarkServePredictBatch with
// two-stage cascade classification enabled: stage 1 decides at a 1024-bit
// prefix of the same basis and only margin-ambiguous graphs escalate to
// the full 10,000-bit pass. The acceptance criterion for the cascade is
// ≥2× the mean per-graph throughput of the full-dimension batch bench at
// matched accuracy; compare the two per-graph numbers in one run.
func BenchmarkServePredictCascade(b *testing.B) {
	ds := dataset.MustGenerate("MUTAG", dataset.Options{Seed: 7, GraphCount: 48})
	cfg := core.DefaultConfig()
	m, err := core.Train(cfg, ds.Graphs, ds.Labels)
	if err != nil {
		b.Fatal(err)
	}
	pred := m.Snapshot()
	if err := pred.SetCascade(core.Cascade{DPrefix: 1024, Margin: 12}); err != nil {
		b.Fatal(err)
	}
	e, err := NewEngine(pred, Options{MaxBatch: 64, MaxDelay: 200 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	ctx := context.Background()
	graphs := ds.Graphs[:32]
	out := make([]int, len(graphs))
	if err := e.PredictBatchInto(ctx, graphs, out); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.PredictBatchInto(ctx, graphs, out); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	mm := e.Metrics()
	b.ReportMetric(float64(mm.CascadeStage1)/float64(mm.CascadeStage1+mm.CascadeEscalated), "stage1-hit-rate")
	reportStageMedians(b, mm, true)
}
