package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// The flight recorder is the engine's after-the-fact diagnosis surface:
// a fixed-size ring of the last N per-batch TraceRecords, written by the
// inference workers on every dispatched micro-batch and read on demand
// by GET /debug/traces and cmd/inspect -traces. A slow escalation-heavy
// burst (the PROTEINS shape) is diagnosed from the ring without a
// profiler attached: the records show exactly where each batch's
// microseconds went and what the batch looked like.
//
// Memory is strictly bounded: depth × sizeof(TraceRecord) (~160 B per
// slot, 40 KiB at the default depth of 256), allocated once at engine
// construction and never grown. Writers never allocate.

// DefaultTraceDepth is the flight-recorder capacity when
// Options.TraceDepth is zero.
const DefaultTraceDepth = 256

// TraceRecord is one flight-recorder entry: the stage-clock readout and
// shape of a single dispatched micro-batch. All *Nanos fields are
// monotonic wall-time slices of the batch's lifecycle; QueueWaitNanos is
// the longest any of the batch's tasks sat in the admission queue before
// dispatcher pickup, and DispatchNanos spans batch assembly (first task
// picked up → worker start).
type TraceRecord struct {
	// Seq is the record's 1-based ticket in arrival order; the ring
	// retains the highest-Seq records.
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"` // wall clock at worker pickup

	// Model and Replica name the engine slot that served the batch in a
	// registry/router deployment (model "default", replica 0 standalone).
	Model   string `json:"model,omitempty"`
	Replica int    `json:"replica"`

	BatchSize int `json:"batch_size"` // graphs across the batch's tasks
	Tasks     int `json:"tasks"`      // queued tasks the batch coalesced

	QueueWaitNanos int64 `json:"queue_wait_ns"`
	DispatchNanos  int64 `json:"dispatch_ns"`
	PlanNanos      int64 `json:"plan_ns"`
	EncodeNanos    int64 `json:"encode_ns"`
	ClassifyNanos  int64 `json:"classify_ns"`
	EscalateNanos  int64 `json:"escalate_ns"`
	TotalNanos     int64 `json:"total_ns"` // worker pickup → results posted

	// PlanPairs/PlanDistinct are the batch's operand-plan dedup stats;
	// their ratio is the basis-table amortization this batch achieved.
	PlanPairs    int `json:"plan_pairs"`
	PlanDistinct int `json:"plan_distinct"`

	// Cascade reports whether two-stage classification was active;
	// Stage1/Escalated split the batch's graphs by where they were
	// decided.
	Cascade   bool `json:"cascade"`
	Stage1    int  `json:"stage1"`
	Escalated int  `json:"escalated"`

	// ModelReloads is the engine's reload counter at worker pickup — the
	// model version the batch was computed under.
	ModelReloads uint64 `json:"model_reloads"`
	// Kernel is the SIMD kernel tier serving the hot paths.
	Kernel string `json:"kernel,omitempty"`
}

// traceSlot guards one ring entry. Slots are locked individually: two
// writers contend only when they race for tickets a full ring apart
// (depth batches in flight simultaneously — in practice never), and a
// reader's try-lock skips, rather than stalls, a slot mid-write, so the
// worker hot path sees an uncontended lock: one atomic ticket, one
// uncontended Lock/Unlock, one struct copy per dispatched batch.
type traceSlot struct {
	mu  sync.Mutex
	seq uint64 // ticket published in this slot; 0 = never written
	rec TraceRecord
}

// flightRecorder is the fixed-size trace ring. The ticket counter is the
// only shared write point; slot bodies are guarded per-slot.
type flightRecorder struct {
	seq   atomic.Uint64
	slots []traceSlot
	mask  uint64
}

// newFlightRecorder rounds depth up to a power of two (masking beats
// modulo on the record path) with DefaultTraceDepth for zero.
func newFlightRecorder(depth int) *flightRecorder {
	if depth <= 0 {
		depth = DefaultTraceDepth
	}
	n := 1
	for n < depth {
		n <<= 1
	}
	return &flightRecorder{slots: make([]traceSlot, n), mask: uint64(n - 1)}
}

// depth is the ring capacity.
func (r *flightRecorder) depth() int { return len(r.slots) }

// record claims the next ticket and publishes rec (with Seq stamped)
// into its slot, overwriting the record depth tickets older.
func (r *flightRecorder) record(rec *TraceRecord) {
	t := r.seq.Add(1)
	rec.Seq = t
	s := &r.slots[(t-1)&r.mask]
	s.mu.Lock()
	s.seq = t
	s.rec = *rec
	s.mu.Unlock()
}

// snapshot copies out the retained records, newest first. Slots a writer
// holds mid-update are skipped (their record is being replaced), as are
// slots whose ticket moved past the snapshot window — the returned
// records are each internally consistent.
func (r *flightRecorder) snapshot() []TraceRecord {
	hi := r.seq.Load()
	n := uint64(len(r.slots))
	out := make([]TraceRecord, 0, min(hi, n))
	lo := uint64(1)
	if hi > n {
		lo = hi - n + 1
	}
	for t := hi; t >= lo; t-- {
		s := &r.slots[(t-1)&r.mask]
		if !s.mu.TryLock() {
			continue
		}
		if s.seq == t {
			out = append(out, s.rec)
		}
		s.mu.Unlock()
	}
	return out
}

// Traces returns the flight recorder's retained per-batch trace
// records, newest first — the payload of GET /debug/traces.
func (e *Engine) Traces() []TraceRecord {
	return e.rec.snapshot()
}

// TraceDepth returns the flight recorder's capacity in records.
func (e *Engine) TraceDepth() int { return e.rec.depth() }
